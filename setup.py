"""Legacy setup shim.

The primary build configuration lives in ``pyproject.toml``; this file only
enables ``python setup.py develop`` on environments whose setuptools lacks
PEP-660 editable-install support (no ``wheel`` package available).
"""

from setuptools import setup

setup()
