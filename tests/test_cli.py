"""Tests for the repro-bench command-line interface."""

import pytest

from repro.workflows.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_args(self):
        args = build_parser().parse_args(["run", "tiny", "numpy", "--naive"])
        assert args.size == "tiny"
        assert args.backend == "numpy"
        assert args.naive

    def test_paper_sizes_not_runnable(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "paper_medium", "numpy"])

    def test_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "tiny", "cuda"])


class TestCommands:
    def test_figures(self, capsys, tmp_path):
        assert main(["figures", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Fig 4" in out and "Fig 6" in out
        assert (tmp_path / "fig5_full_benchmark.txt").exists()

    def test_run_numpy(self, capsys):
        assert main(["run", "tiny", "numpy", "--no-mapmaking"]) == 0
        out = capsys.readouterr().out
        assert "wall time" in out

    def test_run_accel(self, capsys):
        assert main(["run", "tiny", "omp_target", "--no-mapmaking"]) == 0
        out = capsys.readouterr().out
        assert "virtual device time" in out
        assert "kernel launches" in out

    def test_sweep(self, capsys):
        assert main(["sweep"]) == 0
        assert "OOM" in capsys.readouterr().out

    def test_sweep_no_mps(self, capsys):
        assert main(["sweep", "--no-mps"]) == 0
        assert "MPS OFF" in capsys.readouterr().out

    def test_loc(self, capsys):
        assert main(["loc"]) == 0
        out = capsys.readouterr().out
        assert "Fig 2" in out and "Fig 3" in out

    def test_kernels(self, capsys):
        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        assert "pixels_healpix" in out
        assert "omp_target" in out
        assert "cov_accum_diag_hits" in out
