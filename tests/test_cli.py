"""Tests for the repro-bench command-line interface."""

import pytest

from repro.workflows.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_args(self):
        args = build_parser().parse_args(["run", "tiny", "numpy", "--naive"])
        assert args.size == "tiny"
        assert args.backend == "numpy"
        assert args.naive

    def test_paper_sizes_not_runnable(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "paper_medium", "numpy"])

    def test_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "tiny", "cuda"])

    def test_seed_flag_on_run_and_trace_and_faults(self):
        assert build_parser().parse_args(["run", "tiny", "numpy", "--seed", "3"]).seed == 3
        assert build_parser().parse_args(["trace", "tiny", "jax", "--seed", "4"]).seed == 4
        args = build_parser().parse_args(
            ["faults", "tiny", "jax", "--plan", "transient-transfer", "--seed", "5"]
        )
        assert args.seed == 5
        assert args.plan == "transient-transfer"

    def test_unknown_fault_plan_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["faults", "tiny", "jax", "--plan", "nope"])

    def test_ingest_args(self):
        args = build_parser().parse_args(
            ["ingest", "--smoke", "--procs", "1,4", "--budget", "4096"]
        )
        assert args.smoke
        assert args.procs == "1,4"
        assert args.budget == 4096
        assert args.size == "tiny"
        assert args.backend == "numpy"


class TestCommands:
    def test_figures(self, capsys, tmp_path):
        assert main(["figures", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Fig 4" in out and "Fig 6" in out
        assert (tmp_path / "fig5_full_benchmark.txt").exists()

    def test_run_numpy(self, capsys):
        assert main(["run", "tiny", "numpy", "--no-mapmaking"]) == 0
        out = capsys.readouterr().out
        assert "wall time" in out

    def test_run_accel(self, capsys):
        assert main(["run", "tiny", "omp_target", "--no-mapmaking"]) == 0
        out = capsys.readouterr().out
        assert "virtual device time" in out
        assert "kernel launches" in out

    def test_sweep(self, capsys):
        assert main(["sweep"]) == 0
        assert "OOM" in capsys.readouterr().out

    def test_sweep_no_mps(self, capsys):
        assert main(["sweep", "--no-mps"]) == 0
        assert "MPS OFF" in capsys.readouterr().out

    def test_loc(self, capsys):
        assert main(["loc"]) == 0
        out = capsys.readouterr().out
        assert "Fig 2" in out and "Fig 3" in out

    def test_kernels(self, capsys):
        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        assert "pixels_healpix" in out
        assert "omp_target" in out
        assert "cov_accum_diag_hits" in out
        assert "MISSING" not in out
        assert "no spec" not in out

    def test_kernels_json(self, capsys):
        import json

        assert main(["kernels", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro-kernels/1"
        by_name = {k["name"]: k for k in doc["kernels"]}
        # The 12 paper + extension kernels are all spec'd and complete;
        # synthetic kernels registered by other tests may add more rows.
        assert len(by_name) >= 12
        for name in ("scan_map", "build_noise_weighted", "cov_accum_diag_hits"):
            rec = by_name[name]
            assert rec["complete"]
            assert rec["spec"] is not None
            assert rec["missing"] == []
            assert set(rec["implementations"]) == {
                "python", "numpy", "jax", "omp_target"
            }
            assert rec["fallback_order"][0] == "jax"
        assert by_name["scan_map"]["spec"]["outputs"] == ["tod"]

    def test_run_with_seed_changes_realization(self, capsys):
        assert main(["run", "tiny", "numpy", "--no-mapmaking", "--seed", "2"]) == 0
        assert "wall time" in capsys.readouterr().out

    def test_kernels_reports_batching_coverage(self, capsys):
        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        assert "megabatch" in out
        assert "batching rules:" in out
        assert "UNWAIVED" not in out

    def test_kernels_json_batching_rules(self, capsys):
        import json

        assert main(["kernels", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        br = doc["batching_rules"]
        assert len(br["primitives"]) >= 60
        assert all(br["primitives"].values())
        assert br["holes"] == []
        by_name = {k["name"]: k for k in doc["kernels"]}
        assert "omp_target" in by_name["pointing_detector"]["megabatch"]
        assert "jax" in by_name["build_noise_weighted"]["megabatch"]
        assert by_name["pointing_detector"]["spec"]["megabatch"] is True

    def test_megabatch_smoke(self, capsys, tmp_path):
        import json

        out_json = tmp_path / "mb.json"
        assert main(["megabatch", "--smoke", "--json", str(out_json)]) == 0
        out = capsys.readouterr().out
        assert "launch reduction" in out
        assert "maps bitwise identical across plans: yes" in out
        doc = json.loads(out_json.read_text())
        assert doc["schema"] == "repro-megabatch/1"
        assert doc["identical"] is True
        assert doc["launch_reduction"] > 1.0
        assert doc["launches"]["megabatch"] < doc["launches"]["compiled"]
        assert doc["launches"]["megabatch"] < doc["launches"]["eager"]
        assert doc["batching_rules"]["holes"] == []
        assert set(doc["virtual_seconds"]) == {
            "naive", "hybrid", "compiled", "megabatch"
        }


class TestFaultsCommand:
    def test_faults_recovers_and_exits_zero(self, capsys):
        rc = main(
            ["faults", "tiny", "jax", "--plan", "oom-then-recover", "--no-mapmaking"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "bitwise identical" in out
        assert "oom at pool.allocate" in out
        assert "crc32" in out

    def test_faults_exports_trace(self, capsys, tmp_path):
        rc = main(
            [
                "faults",
                "tiny",
                "omp_target",
                "--plan",
                "transient-transfer",
                "--no-mapmaking",
                "--out",
                str(tmp_path),
            ]
        )
        assert rc == 0
        traces = list(tmp_path.glob("trace_*transient-transfer.json"))
        assert len(traces) == 1
        assert "retries" in capsys.readouterr().out


class TestFailureExitCode:
    def test_workflow_failure_exits_nonzero_with_stderr(self, capsys, monkeypatch):
        from repro.workflows import cli as cli_mod

        def boom(*args, **kwargs):
            raise RuntimeError("simulated workflow failure")

        monkeypatch.setattr(cli_mod, "run_satellite_benchmark", boom)
        rc = main(["run", "tiny", "numpy"])
        captured = capsys.readouterr()
        assert rc == 1
        assert "simulated workflow failure" in captured.err

    def test_faults_failure_exits_nonzero(self, capsys, monkeypatch):
        from repro.workflows import cli as cli_mod

        def boom(*args, **kwargs):
            raise RuntimeError("injection gone wrong")

        monkeypatch.setattr(cli_mod, "run_fault_injection_benchmark", boom)
        rc = main(["faults", "tiny", "jax"])
        assert rc == 1
        assert "injection gone wrong" in capsys.readouterr().err

    def test_ingest_bad_procs_rejected(self, capsys):
        rc = main(["ingest", "--smoke", "--procs", "zero"])
        assert rc == 1
        assert "--procs" in capsys.readouterr().err

    def test_ingest_parity_mismatch_exits_nonzero(self, capsys, monkeypatch):
        from repro.workflows import ingest as ingest_mod

        fake = {
            "chunk_samples": 128,
            "host_budget_bytes": 4096,
            "stream_windows": 8,
            "scrub": {"chunks_checked": 10, "in_flight": [], "quarantined": []},
            "eager_identical": False,
            "elastic": {},
            "identical": False,
        }
        monkeypatch.setattr(
            ingest_mod, "run_ingest_benchmark", lambda **kw: fake
        )
        rc = main(["ingest", "--smoke"])
        captured = capsys.readouterr()
        assert rc == 1
        assert "DIFFERS" in captured.out
        assert "diverged" in captured.err
