"""Tests for repro.workflows.chaos: the randomized-fault soak harness.

The harness's own contract: plan generation is a pure function of the
seed (the replay guarantee CI failures depend on), the menu stays within
the bitwise-recoverable fault space, and a short soak upholds all three
invariants (parity, zero leaks, bounded recovery counters).
"""

import pytest

from repro.resilience.faults import FaultKind
from repro.workflows.chaos import CHAOS_MENU, generate_plan, run_chaos_soak

pytestmark = pytest.mark.usefixtures("leak_sentinel")


class TestPlanGeneration:
    def test_same_seed_same_plan(self):
        """The replay contract: a seed IS the schedule."""
        for seed in (0, 1, 7, 42, 12345):
            assert generate_plan(seed) == generate_plan(seed)

    def test_plans_are_leg_scoped_and_named(self):
        for seed in range(8):
            plans = generate_plan(seed)
            assert 1 <= len(plans) <= 3
            for leg, plan in plans.items():
                assert leg in ("device", "elastic", "serve", "store")
                assert plan.name == f"chaos-{seed}-{leg}"
                assert plan.seed == seed
                assert plan.specs  # never an empty plan

    def test_seeds_cover_multiple_legs(self):
        legs = {leg for seed in range(16) for leg in generate_plan(seed)}
        assert len(legs) >= 2, f"16 seeds only ever targeted {legs}"

    def test_menu_is_curated(self):
        """Every menu entry stays in the bitwise-recoverable fault space;
        the two excluded sites are documented, not drawn."""
        sites = set()
        for entry in CHAOS_MENU:
            assert entry["leg"] in ("device", "elastic", "serve", "store")
            assert isinstance(entry["kind"], FaultKind)
            sites.add(entry["site"])
        assert "ompshim.target_region" not in sites
        assert "serve.request" not in sites

    def test_heartbeat_loss_can_couple_a_stall(self):
        """Some seed must generate the mute+stall coupling (the schedule
        that forces a genuine lease expiry and steal)."""
        coupled = False
        for seed in range(64):
            for plan in generate_plan(seed).values():
                kinds = [s.kind for s in plan.specs]
                if (
                    FaultKind.HEARTBEAT_LOSS in kinds
                    and FaultKind.TASK_STALL in kinds
                ):
                    coupled = True
        assert coupled


class TestSoak:
    def test_one_seed_upholds_the_invariants(self):
        report = run_chaos_soak(seeds=[1])
        assert report["schema"] == "repro-chaos/1"
        assert report["ok"], report["results"][0]["problems"]
        (result,) = report["results"]
        assert result["legs"], "the seed targeted no leg at all"
        for leg in result["legs"]:
            assert leg["error"] is None
            assert leg["bitwise"]
        assert result["leaks"] == {"shm": [], "processes": []}
