"""Tests for repro.resilience: deterministic injection + recovery.

The contract under test: same plan + same seed = same faults, bit for
bit; and under the recovery plane the satellite workflow's maps come out
**bitwise identical** to a fault-free run whenever recovery keeps
execution on the device.
"""

import numpy as np
import pytest

from repro import obs, resilience
from repro.accel import MemoryPool, OutOfDeviceMemoryError, SimulatedDevice
from repro.accel.errors import (
    DeviceLostError,
    KernelLaunchError,
    TransferCorruptionError,
    TransferError,
)
from repro.core.dispatch import (
    ImplementationType,
    FALLBACK_ORDER,
    fallback_chain,
    get_kernel,
    kernel_registry,
    use_implementation,
)
from repro.core.data import Data
from repro.core.observation import Observation
from repro.core.pipeline import MovementPolicy, Pipeline
from repro.core.operator import Operator
from repro.core import fake_hexagon_focalplane
from repro.obs.events import EventType
from repro.ompshim import OmpTargetRuntime
from repro.ompshim.errors import TargetRegionError
from repro.resilience import (
    BreakerState,
    CircuitBreaker,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    ResilienceConfig,
    RetryPolicy,
    named_plan,
    plan_names,
)
from repro.workflows.satellite import SIZES, run_fault_injection_benchmark


TINY = SIZES["tiny"]


# ---------------------------------------------------------------------------
# Fault plans and the injector


class TestFaultSpecs:
    def test_nth_is_one_based_and_exact(self):
        plan = FaultPlan(
            "p", (FaultSpec(site="device.launch", kind=FaultKind.LAUNCH_FAIL, nth=(3,)),)
        )
        inj = FaultInjector(plan)
        fired = [inj.poll("device.launch") is not None for _ in range(5)]
        assert fired == [False, False, True, False, False]

    def test_every_fires_periodically(self):
        plan = FaultPlan(
            "p", (FaultSpec(site="device.launch", kind=FaultKind.DEVICE_STALL, every=2),)
        )
        inj = FaultInjector(plan)
        fired = [inj.poll("device.launch") is not None for _ in range(6)]
        assert fired == [False, True, False, True, False, True]

    def test_max_fires_caps_a_spec(self):
        plan = FaultPlan(
            "p",
            (
                FaultSpec(
                    site="device.launch",
                    kind=FaultKind.LAUNCH_FAIL,
                    every=1,
                    max_fires=2,
                ),
            ),
        )
        inj = FaultInjector(plan)
        fired = sum(inj.poll("device.launch") is not None for _ in range(10))
        assert fired == 2

    def test_wrong_site_kind_pairing_rejected(self):
        with pytest.raises(ValueError, match="cannot fire at site"):
            FaultSpec(site="pool.allocate", kind=FaultKind.LAUNCH_FAIL, nth=(1,))

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown injection site"):
            FaultSpec(site="nope", kind=FaultKind.OOM, nth=(1,))

    def test_spec_that_never_fires_rejected(self):
        with pytest.raises(ValueError, match="never fires"):
            FaultSpec(site="pool.allocate", kind=FaultKind.OOM)

    def test_probabilistic_replay_is_exact(self):
        plan = FaultPlan(
            "p",
            (
                FaultSpec(
                    site="transfer.h2d", kind=FaultKind.TRANSFER_FAIL, probability=0.3
                ),
            ),
            seed=7,
        )
        runs = []
        for _ in range(2):
            inj = FaultInjector(plan)
            runs.append([inj.poll("transfer.h2d") is not None for _ in range(200)])
        assert runs[0] == runs[1]
        assert any(runs[0])  # p=0.3 over 200 calls fires

    def test_different_seed_different_stream(self):
        base = FaultPlan(
            "p",
            (
                FaultSpec(
                    site="transfer.h2d", kind=FaultKind.TRANSFER_FAIL, probability=0.3
                ),
            ),
        )
        a = FaultInjector(base.with_seed(1))
        b = FaultInjector(base.with_seed(2))
        sa = [a.poll("transfer.h2d") is not None for _ in range(200)]
        sb = [b.poll("transfer.h2d") is not None for _ in range(200)]
        assert sa != sb

    def test_rng_stream_survives_earlier_spec_firing(self):
        # A deterministic nth spec firing must not skip the probability
        # draw of a later spec, or replay desynchronises.
        prob = FaultSpec(
            site="transfer.h2d", kind=FaultKind.TRANSFER_CORRUPT, probability=0.5
        )
        with_nth = FaultPlan(
            "a",
            (
                FaultSpec(
                    site="transfer.h2d", kind=FaultKind.TRANSFER_FAIL, nth=(1,)
                ),
                prob,
            ),
            seed=3,
        )
        without = FaultPlan("b", (prob,), seed=3)
        ia, ib = FaultInjector(with_nth), FaultInjector(without)
        ia.poll("transfer.h2d")
        ib.poll("transfer.h2d")
        sa = [ia.poll("transfer.h2d") is not None for _ in range(50)]
        sb = [ib.poll("transfer.h2d") is not None for _ in range(50)]
        assert sa == sb

    def test_named_plans_exist_and_unknown_is_helpful(self):
        for name in ("oom-then-recover", "transient-transfer", "device-loss"):
            assert name in plan_names()
            assert named_plan(name, seed=5).seed == 5
        with pytest.raises(KeyError, match="oom-then-recover"):
            named_plan("no-such-plan")


# ---------------------------------------------------------------------------
# Recovery primitives


class TestRetryPolicy:
    def test_exponential_growth_within_jitter(self):
        import random

        policy = RetryPolicy(base_delay_s=1.0, multiplier=2.0, jitter=0.5)
        rng = random.Random(0)
        for attempt, nominal in [(1, 1.0), (2, 2.0), (3, 4.0)]:
            d = policy.delay(attempt, rng)
            assert 0.5 * nominal <= d <= 1.5 * nominal

    def test_no_jitter_is_deterministic(self):
        import random

        policy = RetryPolicy(base_delay_s=1.0, multiplier=3.0, jitter=0.0)
        assert policy.delay(3, random.Random(0)) == pytest.approx(9.0)


class TestCircuitBreaker:
    def test_trips_after_threshold_and_half_open_probe(self):
        br = CircuitBreaker("k", failure_threshold=2, cooldown_s=1.0)
        assert br.allow(0.0)
        assert br.record_failure(0.0) is None
        assert br.record_failure(0.0) == "opened"
        assert br.state is BreakerState.OPEN
        assert not br.allow(0.5)  # still cooling down
        assert br.allow(1.5)  # the half-open probe
        assert br.state is BreakerState.HALF_OPEN
        assert not br.allow(1.5)  # only one probe in flight
        assert br.record_success() == "closed"
        assert br.state is BreakerState.CLOSED

    def test_failed_probe_reopens_with_fresh_cooldown(self):
        br = CircuitBreaker("k", failure_threshold=1, cooldown_s=1.0)
        br.record_failure(0.0)
        assert br.allow(1.5)
        assert br.record_failure(1.5) == "opened"
        assert not br.allow(2.0)
        assert br.allow(2.6)


class TestBackoffVirtualClock:
    def test_backoff_charges_virtual_time_not_real(self):
        import time

        dev = SimulatedDevice(memory_bytes=1 << 20)
        t0 = time.monotonic()
        with resilience.resilient(seed=1) as ctrl:
            ctrl.bind_clock(dev.clock)
            for attempt in range(1, 4):
                ctrl.backoff("site", attempt, RuntimeError("x"))
        assert time.monotonic() - t0 < 0.5  # no real sleeping
        assert dev.clock.region_time("resilience_backoff") > 0


# ---------------------------------------------------------------------------
# Device-layer injection


class TestDeviceFaults:
    def _device(self):
        return SimulatedDevice(memory_bytes=1 << 20)

    def test_transient_transfer_retries_to_success(self):
        plan = FaultPlan(
            "t",
            (
                FaultSpec(
                    site="transfer.h2d",
                    kind=FaultKind.TRANSFER_FAIL,
                    nth=(1,),
                    max_fires=1,
                ),
            ),
        )
        dev = self._device()
        host = np.arange(64, dtype=np.float64)
        out = np.zeros_like(host)
        with resilience.resilient(plan) as ctrl:
            ctrl.bind_clock(dev.clock)
            buf = dev.alloc(host.nbytes)
            dev.update_device(buf, host)
            dev.update_host(buf, out)
        assert np.array_equal(host, out)
        assert ctrl.counters["retries"] == 1
        assert dev.clock.region_time("resilience_backoff") > 0

    def test_corruption_detected_by_checksum_and_retried(self):
        plan = FaultPlan(
            "c",
            (
                FaultSpec(
                    site="transfer.h2d",
                    kind=FaultKind.TRANSFER_CORRUPT,
                    nth=(1,),
                    max_fires=1,
                ),
            ),
        )
        dev = self._device()
        host = np.arange(64, dtype=np.float64)
        with resilience.resilient(plan) as ctrl:
            ctrl.bind_clock(dev.clock)
            buf = dev.alloc(host.nbytes)
            dev.update_device(buf, host)
            out = np.zeros_like(host)
            dev.update_host(buf, out)
        assert np.array_equal(host, out)
        assert ctrl.counters["retries"] == 1

    def test_persistent_transfer_failure_exhausts_and_raises(self):
        plan = FaultPlan(
            "t",
            (
                FaultSpec(
                    site="transfer.h2d", kind=FaultKind.TRANSFER_FAIL, every=1
                ),
            ),
        )
        dev = self._device()
        host = np.arange(8, dtype=np.float64)
        with resilience.resilient(plan) as ctrl:
            ctrl.bind_clock(dev.clock)
            buf = dev.alloc(host.nbytes)
            with pytest.raises(TransferError, match="injected fault"):
                dev.update_device(buf, host)
        assert ctrl.counters["retries"] == ctrl.config.retry.max_attempts - 1

    def test_device_loss_guards_and_revive(self):
        plan = FaultPlan(
            "l",
            (
                FaultSpec(
                    site="device.launch",
                    kind=FaultKind.DEVICE_LOST,
                    nth=(1,),
                    max_fires=1,
                ),
            ),
        )
        dev = self._device()
        host = np.arange(16, dtype=np.float64)
        with resilience.resilient(plan) as ctrl:
            ctrl.bind_clock(dev.clock)
            buf = dev.alloc(host.nbytes)
            dev.update_device(buf, host)
            with pytest.raises(DeviceLostError):
                dev.launch("k", 1e-6)
            assert dev.lost
            # Scrambled device data must not leak back to the host.
            with pytest.raises(DeviceLostError):
                dev.update_host(buf, np.zeros_like(host))
            dev.revive()
            assert not dev.lost
            assert dev.allocated_bytes == 0
            dev.launch("k", 1e-6)  # fresh device works

    def test_stall_charges_virtual_time_only(self):
        plan = FaultPlan(
            "s",
            (
                FaultSpec(
                    site="device.launch",
                    kind=FaultKind.DEVICE_STALL,
                    every=1,
                    stall_seconds=2e-3,
                ),
            ),
        )
        dev = self._device()
        with resilience.resilient(plan) as ctrl:
            ctrl.bind_clock(dev.clock)
            dev.launch("k", 1e-6)
        assert dev.clock.region_time("fault_stall") == pytest.approx(2e-3)

    def test_injected_pool_oom_and_fragmentation_pressure(self):
        plan = FaultPlan(
            "o",
            (
                FaultSpec(site="pool.allocate", kind=FaultKind.OOM, nth=(1,)),
                FaultSpec(site="pool.allocate", kind=FaultKind.FRAGMENT, nth=(2,)),
            ),
        )
        pool = MemoryPool(1 << 20)
        with resilience.resilient(plan):
            with pytest.raises(OutOfDeviceMemoryError, match="external memory"):
                pool.allocate(64)
            with pytest.raises(OutOfDeviceMemoryError, match="fragmentation"):
                pool.allocate(64)
            assert pool.allocate(64) == 0  # plan exhausted; normal service

    def test_target_region_failure_is_transient_kernel_error(self):
        plan = FaultPlan(
            "tr",
            (
                FaultSpec(
                    site="ompshim.target_region", kind=FaultKind.TARGET_FAIL, nth=(1,)
                ),
            ),
        )
        rt = OmpTargetRuntime(SimulatedDevice(memory_bytes=1 << 20))
        with resilience.resilient(plan) as ctrl:
            ctrl.bind_clock(rt.device.clock)
            with pytest.raises(TargetRegionError) as e:
                rt.target_teams_distribute_parallel_for(
                    "k", (1, 1, 4), lambda i, j, k: None
                )
        assert isinstance(e.value, KernelLaunchError)  # classifies transient


# ---------------------------------------------------------------------------
# Dispatch-level fallback chain


def _register_synthetic(name, impls):
    from repro.kernels import ArgSpec, KernelSpec

    if kernel_registry.spec(name) is None:
        # Synthetic kernels: one plain argument, excluded from the parity
        # sweep, and all implementations waived for coverage purposes.
        kernel_registry.register_spec(
            KernelSpec(
                name,
                args=(ArgSpec("x"),),
                interval_batched=False,
                parity=False,
                waive_impls=("python", "numpy", "jax", "omp_target"),
            )
        )
    for impl, fn in impls.items():
        if not kernel_registry.has(name, impl):
            kernel_registry.register(name, impl, fn)


class TestDispatchFallback:
    def test_fallback_order_constant(self):
        assert FALLBACK_ORDER == (
            ImplementationType.JAX,
            ImplementationType.OMP_TARGET,
            ImplementationType.NUMPY,
            ImplementationType.PYTHON,
        )

    def test_chain_filters_to_registered(self):
        chain = fallback_chain("scan_map", ImplementationType.JAX)
        assert chain[0] is ImplementationType.JAX
        assert all(kernel_registry.has("scan_map", i) for i in chain)

    def test_get_kernel_unwraps_to_raw_impl_when_everything_off(self):
        fn = get_kernel("scan_map", ImplementationType.NUMPY)
        # The BoundKernel wrapper carries the raw implementation untouched:
        # no resilience chain, no tracing closure.
        assert fn.fn is kernel_registry.get("scan_map", ImplementationType.NUMPY)
        assert fn._tracer is None

    def test_transient_failure_retries_in_place(self):
        calls = {"n": 0}

        def flaky(x, accel=None, use_accel=False):
            calls["n"] += 1
            if calls["n"] < 3:
                raise KernelLaunchError("synthetic transient")
            return x + 1

        _register_synthetic(
            "__res_flaky",
            {
                ImplementationType.JAX: flaky,
                ImplementationType.NUMPY: lambda x, accel=None, use_accel=False: x + 1,
            },
        )
        with resilience.resilient(FaultPlan("none", ())) as ctrl:
            assert get_kernel("__res_flaky", ImplementationType.JAX)(41) == 42
        assert calls["n"] == 3
        assert ctrl.counters["retries"] == 2
        assert "fallbacks" not in ctrl.counters

    def test_persistent_failure_falls_back_down_the_chain(self):
        def broken(x, accel=None, use_accel=False):
            raise KernelLaunchError("permanently flaky")

        _register_synthetic(
            "__res_broken",
            {
                ImplementationType.JAX: broken,
                ImplementationType.NUMPY: lambda x, accel=None, use_accel=False: x + 1,
            },
        )
        with resilience.resilient(FaultPlan("none", ())) as ctrl:
            assert get_kernel("__res_broken", ImplementationType.JAX)(41) == 42
        assert ctrl.counters["fallbacks"] == 1
        assert ctrl.counters["breaker_opens"] == 1
        assert ctrl.report()["breakers"]["__res_broken:jax"] == "open"

    def test_open_breaker_skips_straight_to_fallback(self):
        calls = {"jax": 0, "numpy": 0}

        def broken(x, accel=None, use_accel=False):
            calls["jax"] += 1
            raise KernelLaunchError("permanently flaky")

        def solid(x, accel=None, use_accel=False):
            calls["numpy"] += 1
            return x

        _register_synthetic(
            "__res_skip",
            {ImplementationType.JAX: broken, ImplementationType.NUMPY: solid},
        )
        with resilience.resilient(FaultPlan("none", ())) as ctrl:
            get_kernel("__res_skip", ImplementationType.JAX)(0)
            jax_calls_first_round = calls["jax"]
            get_kernel("__res_skip", ImplementationType.JAX)(0)
        # Open breaker: the second resolution never touched the jax impl.
        assert calls["jax"] == jax_calls_first_round
        assert calls["numpy"] == 2
        assert ctrl.counters["breaker_skips"] >= 1

    def test_exhausted_chain_raises_last_error(self):
        def broken(x, accel=None, use_accel=False):
            raise KernelLaunchError("nothing works")

        _register_synthetic("__res_dead", {ImplementationType.JAX: broken})
        with resilience.resilient(FaultPlan("none", ())):
            with pytest.raises(KernelLaunchError, match="nothing works"):
                get_kernel("__res_dead", ImplementationType.JAX)(0)


# ---------------------------------------------------------------------------
# Pipeline-level recovery (eviction, host fallback, checkpoint/resume)


class _AddOne(Operator):
    """Synthetic accelerated operator: key += 1 on every observation."""

    def __init__(self, key: str, name=None):
        super().__init__(name=name or f"AddOne[{key}]")
        self.key = key

    def requires(self):
        return {"shared": [self.key], "detdata": [], "meta": []}

    def provides(self):
        return {"shared": [self.key], "detdata": [], "meta": []}

    def supports_accel(self):
        return True

    def exec(self, data, use_accel=False, accel=None):
        for ob in data.obs:
            if use_accel:
                accel.device_view(ob.shared[self.key])[:] += 1.0
                accel.device.launch("add_one", 1e-7)
            else:
                ob.shared[self.key][:] += 1.0


def _tiny_data(n_samples=256, keys=("a", "b"), fill=1.0):
    fp = fake_hexagon_focalplane(n_pixels=1)
    ob = Observation(fp, n_samples=n_samples, name="synth")
    for key in keys:
        ob.create_shared(key, (n_samples,))
        ob.shared[key][:] = fill
    data = Data()
    data.obs = [ob]
    return data


class TestPipelineRecovery:
    def test_real_oom_evicts_lru_and_retries(self):
        # Device fits one array (plus alignment), not two: entering stage 2
        # must evict stage 1's array, which is outside the working set.
        n = 1024
        nbytes = n * 8
        data = _tiny_data(n_samples=n)
        rt = OmpTargetRuntime(SimulatedDevice(memory_bytes=nbytes + 512))
        pipe = Pipeline(
            [_AddOne("a"), _AddOne("b")],
            implementation=ImplementationType.OMP_TARGET,
            accel=rt,
        )
        with resilience.resilient(seed=0) as ctrl:
            ctrl.bind_clock(rt.device.clock)
            pipe.apply(data)
        assert ctrl.counters["evictions"] >= 1
        ob = data.obs[0]
        assert np.all(ob.shared["a"] == 2.0)
        assert np.all(ob.shared["b"] == 2.0)
        assert rt.device.allocated_bytes == 0  # pipeline cleaned up

    def test_oversized_working_set_falls_back_to_host(self):
        n = 1024
        data = _tiny_data(n_samples=n, keys=("a",))
        rt = OmpTargetRuntime(SimulatedDevice(memory_bytes=1024))  # too small
        pipe = Pipeline(
            [_AddOne("a")],
            implementation=ImplementationType.OMP_TARGET,
            accel=rt,
        )
        with resilience.resilient(seed=0) as ctrl:
            ctrl.bind_clock(rt.device.clock)
            pipe.apply(data)
        assert ctrl.counters["fallbacks"] >= 1
        assert ctrl.counters["retries"] >= 1  # backed off before giving up
        assert np.all(data.obs[0].shared["a"] == 2.0)

    def test_device_loss_resumes_from_checkpoint(self):
        plan = FaultPlan(
            "loss",
            (
                FaultSpec(
                    site="device.launch",
                    kind=FaultKind.DEVICE_LOST,
                    nth=(2,),
                    max_fires=1,
                ),
            ),
        )
        data = _tiny_data(n_samples=256)
        rt = OmpTargetRuntime(SimulatedDevice(memory_bytes=1 << 20))
        pipe = Pipeline(
            [_AddOne("a"), _AddOne("b")],
            implementation=ImplementationType.OMP_TARGET,
            accel=rt,
        )
        with resilience.resilient(plan) as ctrl:
            ctrl.bind_clock(rt.device.clock)
            pipe.apply(data)
        # Stage 2's launch was lost; the stage re-ran exactly once -- no
        # double-increment, no lost stage-1 work.
        assert ctrl.counters["device_recoveries"] == 1
        assert np.all(data.obs[0].shared["a"] == 2.0)
        assert np.all(data.obs[0].shared["b"] == 2.0)
        report = ctrl.report()
        assert report["checkpoints"] == 2
        assert report["last_checkpoint"]["fields"] == ["b"]

    def test_checkpoint_manifest_records_stages(self):
        data = _tiny_data(n_samples=64)
        rt = OmpTargetRuntime(SimulatedDevice(memory_bytes=1 << 20))
        pipe = Pipeline(
            [_AddOne("a"), _AddOne("b")],
            implementation=ImplementationType.OMP_TARGET,
            accel=rt,
        )
        with resilience.resilient(seed=0) as ctrl:
            ctrl.bind_clock(rt.device.clock)
            pipe.apply(data)
        ops = [c["op"] for c in ctrl.checkpoints]
        assert ops == ["AddOne[a]", "AddOne[b]"]
        assert [c["stage"] for c in ctrl.checkpoints] == [0, 1]


# ---------------------------------------------------------------------------
# End-to-end: the satellite workflow under named plans


class TestSatelliteRecoveryBitwise:
    @pytest.mark.parametrize(
        "plan_name", ["oom-then-recover", "transient-transfer", "corrupt-transfer"]
    )
    def test_jax_recovery_is_bitwise_identical(self, plan_name):
        report = run_fault_injection_benchmark(
            TINY, ImplementationType.JAX, plan_name=plan_name, seed=1, mapmaking=False
        )
        assert report["counters"]["faults_injected"] >= 1
        assert report["all_identical"]
        cmp = report["maps"]["zmap"]
        assert cmp["max_abs_diff"] == 0.0
        assert cmp["crc32_clean"] == cmp["crc32_faulted"]

    def test_omp_target_region_failure_recovers(self):
        report = run_fault_injection_benchmark(
            TINY,
            ImplementationType.OMP_TARGET,
            plan_name="target-flaky",
            seed=1,
            mapmaking=False,
        )
        assert report["counters"]["faults_injected"] == 1
        assert report["counters"]["retries"] >= 1
        assert report["all_identical"]

    def test_device_loss_resume_end_to_end(self):
        report = run_fault_injection_benchmark(
            TINY,
            ImplementationType.JAX,
            plan_name="device-loss",
            seed=1,
            mapmaking=False,
        )
        assert report["counters"]["device_recoveries"] == 1
        assert report["all_identical"]

    def test_replay_is_deterministic(self):
        a = run_fault_injection_benchmark(
            TINY, ImplementationType.JAX, plan_name="flaky-launch", seed=9,
            mapmaking=False,
        )
        b = run_fault_injection_benchmark(
            TINY, ImplementationType.JAX, plan_name="flaky-launch", seed=9,
            mapmaking=False,
        )
        assert a["faults"] == b["faults"]
        assert a["counters"] == b["counters"]

    def test_recovery_decisions_visible_in_trace(self):
        tracer = obs.Tracer()
        run_fault_injection_benchmark(
            TINY,
            ImplementationType.JAX,
            plan_name="oom-then-recover",
            seed=0,
            mapmaking=False,
            tracer=tracer,
        )
        faults = tracer.events_of(EventType.FAULT_INJECTED)
        retries = tracer.events_of(EventType.RETRY)
        checkpoints = tracer.events_of(EventType.CHECKPOINT)
        assert len(faults) == 1
        assert faults[0].name == "pool.allocate"
        assert faults[0].attrs["kind"] == "oom"
        assert len(retries) >= 1
        assert len(checkpoints) >= 1
        assert tracer.metrics.counters["resilience.faults_injected"].value == 1


# ---------------------------------------------------------------------------
# Zero cost when off


class TestZeroCostWhenOff:
    def test_no_controller_installed_by_default(self):
        assert resilience.active_controller() is None

    def test_context_restores_previous_state(self):
        with resilience.resilient() as outer:
            assert resilience.active_controller() is outer
            with resilience.resilient() as inner:
                assert resilience.active_controller() is inner
            assert resilience.active_controller() is outer
        assert resilience.active_controller() is None

    def test_device_paths_identical_when_off(self):
        dev = SimulatedDevice(memory_bytes=1 << 20)
        host = np.arange(32, dtype=np.float64)
        buf = dev.alloc(host.nbytes)
        dev.update_device(buf, host)
        out = np.zeros_like(host)
        dev.update_host(buf, out)
        dev.launch("k", 1e-6)
        assert np.array_equal(host, out)
        assert dev.clock.region_time("resilience_backoff") == 0.0
        assert dev.clock.region_time("fault_stall") == 0.0

    def test_recovery_only_mode_runs_clean_workloads_untouched(self):
        # A controller with no plan injects nothing and leaves the result
        # of a healthy run alone.
        data = _tiny_data(n_samples=64, keys=("a",))
        rt = OmpTargetRuntime(SimulatedDevice(memory_bytes=1 << 20))
        pipe = Pipeline(
            [_AddOne("a")], implementation=ImplementationType.OMP_TARGET, accel=rt
        )
        with resilience.resilient() as ctrl:
            ctrl.bind_clock(rt.device.clock)
            pipe.apply(data)
        assert ctrl.counters.get("faults_injected", 0) == 0
        assert np.all(data.obs[0].shared["a"] == 2.0)
