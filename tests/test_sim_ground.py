"""Tests for the ground-telescope simulation."""

import numpy as np
import pytest

from repro.core import Data, ImplementationType, fake_hexagon_focalplane, use_implementation
from repro.healpix import npix as healpix_npix
from repro.math import qa
from repro.ops import (
    DefaultNoiseModel,
    PixelsHealpix,
    PointingDetector,
    ScanMap,
    SimGround,
    StokesWeights,
    create_fake_sky,
)
from repro.ops.sim_ground import azimuth_sawtooth
from repro.utils.constants import DEG2RAD


class TestAzimuthSawtooth:
    def _scan(self, n=2000, rate=10.0):
        times = np.arange(n) / rate
        return times, *azimuth_sawtooth(
            times, az_min_deg=40.0, az_max_deg=70.0, scan_rate_deg_s=2.0, turnaround_s=1.5
        )

    def test_range(self):
        _, az, _, _ = self._scan()
        assert az.min() >= 40.0 * DEG2RAD - 1e-12
        assert az.max() <= 70.0 * DEG2RAD + 1e-12

    def test_reaches_both_ends(self):
        _, az, _, _ = self._scan()
        assert np.isclose(az.min(), 40.0 * DEG2RAD)
        assert np.isclose(az.max(), 70.0 * DEG2RAD)

    def test_scan_rate_constant_during_sweeps(self):
        times, az, right, turn = self._scan()
        sweep = ~turn
        dt = np.diff(times)[0]
        rates = np.abs(np.diff(az)) / dt / DEG2RAD
        # Interior sweep samples move at the commanded rate.
        interior = sweep[:-1] & sweep[1:] & (right[:-1] == right[1:])
        assert np.allclose(rates[interior], 2.0, atol=1e-9)

    def test_turnarounds_exist_and_dwell(self):
        _, az, _, turn = self._scan()
        assert turn.any() and (~turn).any()
        # During turnaround the azimuth parks at an end.
        ends = np.isclose(az[turn], 40.0 * DEG2RAD) | np.isclose(az[turn], 70.0 * DEG2RAD)
        assert ends.all()

    def test_direction_flag(self):
        _, az, right, turn = self._scan()
        inc = np.diff(az) > 0
        interior = ~turn[:-1] & ~turn[1:] & (right[:-1] == right[1:])
        assert np.array_equal(inc[interior], right[:-1][interior])

    def test_bad_args(self):
        t = np.arange(10.0)
        with pytest.raises(ValueError):
            azimuth_sawtooth(t, 70, 40, 1.0, 1.0)
        with pytest.raises(ValueError):
            azimuth_sawtooth(t, 40, 70, 0.0, 1.0)
        with pytest.raises(ValueError):
            azimuth_sawtooth(t, 40, 70, 1.0, -1.0)


@pytest.fixture
def ground_data():
    fp = fake_hexagon_focalplane(n_pixels=2, sample_rate=20.0)
    d = Data()
    SimGround(
        fp,
        n_observations=1,
        n_samples=4000,
        az_min_deg=30.0,
        az_max_deg=80.0,
        el_deg=45.0,
        scan_rate_deg_s=2.0,
        turnaround_s=1.0,
    ).apply(d)
    DefaultNoiseModel().apply(d)
    return d


class TestSimGround:
    def test_shared_and_intervals(self, ground_data):
        ob = ground_data.obs[0]
        assert {"times", "boresight", "flags"} <= set(ob.shared)
        for key in ("scan", "scan_left", "scan_right", "turnaround"):
            assert key in ob.intervals

    def test_interval_partition(self, ground_data):
        ob = ground_data.obs[0]
        n = ob.n_samples
        scan = ob.intervals["scan"].mask(n)
        turn = ob.intervals["turnaround"].mask(n)
        left = ob.intervals["scan_left"].mask(n)
        right = ob.intervals["scan_right"].mask(n)
        assert np.array_equal(scan, ~turn)
        assert np.array_equal(left | right, scan)
        assert not np.any(left & right)

    def test_turnarounds_flagged(self, ground_data):
        ob = ground_data.obs[0]
        turn = ob.intervals["turnaround"].mask(ob.n_samples)
        assert np.all(ob.shared["flags"][turn] & SimGround.SHARED_FLAG_TURNAROUND)
        assert not np.any(ob.shared["flags"][~turn])

    def test_constant_elevation(self, ground_data):
        ob = ground_data.obs[0]
        theta, _ = qa.to_position(ob.shared["boresight"])
        assert np.allclose(theta, (90.0 - 45.0) * DEG2RAD, atol=1e-9)

    def test_boresight_unit(self, ground_data):
        assert np.allclose(qa.amplitude(ground_data.obs[0].shared["boresight"]), 1.0)

    def test_full_chain_through_kernels(self, ground_data):
        """The ground data flows through the same ported kernels."""
        d = ground_data
        d["sky_map"] = create_fake_sky(16, seed=8)
        for impl in (ImplementationType.NUMPY, ImplementationType.JAX):
            with use_implementation(impl):
                PointingDetector(shared_flag_mask=2).apply(d)
                PixelsHealpix(nside=16, nest=True, shared_flag_mask=2).apply(d)
                StokesWeights(mode="IQU").apply(d)
                ScanMap(det_data=f"signal_{impl.value}", zero=True).apply(d)
        np.testing.assert_allclose(
            d.obs[0].detdata["signal_jax"],
            d.obs[0].detdata["signal_numpy"],
            atol=1e-10,
        )
        scan = d.obs[0].intervals["scan"].mask(d.obs[0].n_samples)
        assert d.obs[0].detdata["signal_numpy"][:, scan].std() > 0

    def test_sky_drift(self):
        """Earth rotation drifts the scan across the sky between hours."""
        fp = fake_hexagon_focalplane(n_pixels=1, sample_rate=1.0)
        d = Data()
        SimGround(fp, n_observations=2, n_samples=3600).apply(d)
        _, phi_a = qa.to_position(d.obs[0].shared["boresight"])
        _, phi_b = qa.to_position(d.obs[1].shared["boresight"])
        # One hour later the same scan pattern points elsewhere.
        assert not np.allclose(phi_a.mean(), phi_b.mean(), atol=1e-3)

    def test_bad_args(self):
        fp = fake_hexagon_focalplane(n_pixels=1)
        with pytest.raises(ValueError):
            SimGround(fp, n_observations=0)
        with pytest.raises(ValueError):
            SimGround(fp, el_deg=0.0)
        with pytest.raises(ValueError):
            SimGround(fp, el_deg=95.0)
