"""Tests for the pipeline compiler: planning, parity, fusion, recovery.

The compiled path's one hard promise is bitwise identity with the eager
pipeline — same maps, same timestreams, under every backend, loop order,
memory pressure, and injected fault these tests can throw at it.  The
performance claims (transfers elided, launches fused, copies overlapped)
are asserted against the virtual clock.
"""

import numpy as np
import pytest

from repro import obs, resilience
from repro.accel import SimulatedDevice
from repro.compilepipe import (
    build_plan,
    lower_workflow,
    plan_report,
    render_plan,
    transfer_seconds,
)
from repro.core import Data, ImplementationType, Pipeline, fake_hexagon_focalplane
from repro.core.pipeline import LoopOrder
from repro.healpix import npix as healpix_npix
from repro.obs.events import EventType
from repro.ompshim import OmpTargetRuntime
from repro.ops import (
    BuildNoiseWeighted,
    DefaultNoiseModel,
    NoiseWeight,
    PixelsHealpix,
    PointingDetector,
    ScanMap,
    SimNoise,
    SimSatellite,
    StokesWeights,
    create_fake_sky,
)
from repro.resilience.plans import named_plan

NSIDE = 16


def make_data(n_samples=400, n_obs=2):
    fp = fake_hexagon_focalplane(n_pixels=1, sample_rate=10.0)
    d = Data()
    SimSatellite(
        fp, n_observations=n_obs, n_samples=n_samples, scan_samples=150, gap_samples=10
    ).apply(d)
    DefaultNoiseModel().apply(d)
    d["sky_map"] = create_fake_sky(NSIDE, seed=1)
    SimNoise().apply(d)
    return d


def processing_ops():
    return [
        PointingDetector(),
        PixelsHealpix(nside=NSIDE, nest=True),
        StokesWeights(mode="IQU"),
        ScanMap(),
        NoiseWeight(),
        BuildNoiseWeighted(n_pix=healpix_npix(NSIDE), nnz=3, use_det_weights=False),
    ]


def fresh_runtime(memory_bytes=1 << 28):
    return OmpTargetRuntime(SimulatedDevice(memory_bytes=memory_bytes))


def run_pipeline(
    plan,
    impl=ImplementationType.OMP_TARGET,
    order=LoopOrder.OPERATOR_MAJOR,
    memory_bytes=1 << 28,
    ops=None,
    tracer=None,
):
    d = make_data()
    rt = fresh_runtime(memory_bytes)
    p = Pipeline(
        ops if ops is not None else processing_ops(),
        implementation=impl,
        plan=plan,
        order=order,
    )
    if tracer is not None:
        with obs.tracing(tracer):
            p.exec(d, use_accel=True, accel=rt)
    else:
        p.exec(d, use_accel=True, accel=rt)
    return d, p, rt


def assert_bitwise_equal(da, db):
    for ob_a, ob_b in zip(da.obs, db.obs):
        for k in ob_a.detdata:
            assert np.array_equal(ob_a.detdata[k], ob_b.detdata[k]), k
        for k in ob_a.shared:
            assert np.array_equal(ob_a.shared[k], ob_b.shared[k]), k
    assert np.array_equal(da["zmap"], db["zmap"])


class TestPlanStructure:
    def test_lowering_covers_all_stages_and_buffers(self):
        d = make_data()
        ops = processing_ops()
        for op in ops:
            op.ensure_outputs(d)
        ir = lower_workflow(ops, [d])
        assert len(ir.stages) == len(ops)
        labels = set(ir.buffers)
        # Every staged product of the chain appears in the IR.
        for expect in ("ob0.detdata.quats", "ob0.detdata.pixels", "meta.zmap",
                       "meta.sky_map", "ob0.shared.boresight"):
            assert expect in labels, sorted(labels)

    def test_zero_fill_outputs_are_elided(self):
        d = make_data()
        ir = lower_workflow(processing_ops(), [d])
        plan = build_plan(ir)
        # quats/pixels/weights are zero-filled pure outputs and zmap is a
        # zero-filled accumulator: all first-touch H2Ds become memsets.
        for label in ("ob0.detdata.quats", "ob0.detdata.pixels",
                      "ob0.detdata.weights", "meta.zmap"):
            assert plan.buffers[label].first_touch == "elide", label
        assert plan.transfers_elided > 0

    def test_nonzero_host_data_is_never_elided(self):
        d = make_data()
        ir = lower_workflow(processing_ops(), [d])
        plan = build_plan(ir)
        # The simulated signal and boresight hold real data: must copy.
        for label in ("ob0.detdata.signal", "ob0.shared.boresight",
                      "meta.sky_map"):
            assert plan.buffers[label].first_touch in ("prefetch", "sync"), label

    def test_cross_operator_fusion_group_exists(self):
        d = make_data()
        plan = build_plan(lower_workflow(processing_ops(), [d]))
        assert plan.fused_groups >= 1
        group = plan.groups[0]
        # The elementwise/gather prefix fuses; the scatter accumulation
        # (build_noise_weighted) never joins.
        assert group.n_stages >= 2
        scatter_stage = len(processing_ops()) - 1
        assert scatter_stage not in group.stage_indices

    def test_drains_deferred_to_last_device_use(self):
        d = make_data()
        plan = build_plan(lower_workflow(processing_ops(), [d]))
        life = plan.ir.buffers["ob0.detdata.pixels"]
        bp = plan.buffers["ob0.detdata.pixels"]
        assert bp.drain_after == life.last_device_use
        assert bp.drain_after > life.first_device_use

    def test_plan_report_and_render(self):
        d = make_data()
        plan = build_plan(lower_workflow(processing_ops(), [d]))
        rep = plan_report(plan)
        assert rep["totals"]["transfers_elided"] == plan.transfers_elided
        assert len(rep["stages"]) == len(plan.stages)
        text = render_plan(plan)
        assert "fused" in text and "elide" in text


class TestCompiledParity:
    @pytest.mark.parametrize(
        "impl", [ImplementationType.OMP_TARGET, ImplementationType.JAX]
    )
    @pytest.mark.parametrize(
        "order", [LoopOrder.OPERATOR_MAJOR, LoopOrder.OBSERVATION_MAJOR]
    )
    def test_bitwise_identical_to_eager(self, impl, order):
        de, _, _ = run_pipeline("eager", impl=impl, order=order)
        dc, pc, _ = run_pipeline("compiled", impl=impl, order=order)
        assert_bitwise_equal(de, dc)
        assert pc.last_plan is not None
        assert pc.last_plan.executed["transfers_elided"] > 0

    def test_executed_matches_static_plan(self):
        _, p, _ = run_pipeline("compiled")
        plan = p.last_plan
        assert plan.executed["transfers_elided"] == plan.transfers_elided
        assert plan.executed["launches_elided"] == plan.launches_elided
        assert plan.executed["spills"] == 0

    def test_obs_metrics_and_events(self):
        tracer = obs.Tracer()
        run_pipeline("compiled", tracer=tracer)
        m = tracer.metrics
        assert m.counter("pipeline.plans").value == 1
        assert m.counter("pipeline.transfers_elided").value > 0
        assert m.counter("pipeline.fused_groups").value >= 1
        assert m.counter("pipeline.overlap_seconds").value > 0
        plan_events = tracer.events_of(EventType.PLAN)
        overlap_events = tracer.events_of(EventType.OVERLAP)
        assert len(plan_events) == 1 and len(overlap_events) == 1
        assert overlap_events[0].dur > 0

    def test_invalid_plan_rejected(self):
        with pytest.raises(ValueError, match="plan"):
            Pipeline(processing_ops(), plan="jitted")

    def test_compiled_beats_hybrid_exposed_transfer(self):
        # Same problem, eager-HYBRID vs compiled: the plan must strictly
        # reduce exposed transfer time (elision + overlap).
        _, _, rt_e = run_pipeline("eager")
        _, _, rt_c = run_pipeline("compiled")
        assert transfer_seconds(rt_c.device.clock) < transfer_seconds(
            rt_e.device.clock
        )

    def test_runtime_released_after_run(self):
        _, _, rt = run_pipeline("compiled")
        assert len(rt.present) == 0
        assert rt.device.pool.allocated_bytes == 0


class TestCompiledResilience:
    def test_device_loss_parity(self):
        def run(plan):
            d = make_data()
            rt = fresh_runtime()
            p = Pipeline(
                processing_ops(),
                implementation=ImplementationType.OMP_TARGET,
                plan=plan,
            )
            with resilience.resilient(named_plan("device-loss")) as ctrl:
                ctrl.bind_clock(rt.device.clock)
                p.exec(d, use_accel=True, accel=rt)
            return d, ctrl

        de, ce = run("eager")
        dc, cc = run("compiled")
        assert_bitwise_equal(de, dc)
        assert ce.counters.get("device_recoveries") == 1
        assert cc.counters.get("device_recoveries") == 1

    def test_oom_spills_by_liveness_with_labels(self):
        cap = 220_000
        de, _, _ = run_pipeline("eager", memory_bytes=1 << 28)
        tracer = obs.Tracer()
        with resilience.resilient() as ctrl:
            dc, p, rt = run_pipeline(
                "compiled", memory_bytes=cap, tracer=tracer
            )
        assert_bitwise_equal(de, dc)
        assert p.last_plan.executed["spills"] > 0
        evicts = tracer.events_of(EventType.EVICT)
        assert evicts, "expected EVICT events under memory pressure"
        for ev in evicts:
            assert ev.attrs.get("label"), ev.attrs
            assert ev.attrs.get("policy") == "liveness"

    def test_oom_spill_without_controller_emits_labeled_evict(self):
        tracer = obs.Tracer()
        de, _, _ = run_pipeline("eager")
        dc, p, _ = run_pipeline("compiled", memory_bytes=220_000, tracer=tracer)
        assert_bitwise_equal(de, dc)
        evicts = tracer.events_of(EventType.EVICT)
        assert evicts
        assert all(ev.attrs.get("label") for ev in evicts)

    def test_eager_eviction_carries_label(self):
        tracer = obs.Tracer()
        with resilience.resilient() as ctrl:
            d = make_data()
            rt = fresh_runtime(220_000)
            ctrl.bind_clock(rt.device.clock)
            p = Pipeline(
                processing_ops(), implementation=ImplementationType.OMP_TARGET
            )
            with obs.tracing(tracer):
                p.exec(d, use_accel=True, accel=rt)
        evicts = tracer.events_of(EventType.EVICT)
        assert evicts
        assert all(ev.attrs.get("label") for ev in evicts)


class TestJaxFusionDiamond:
    """Diamond dependencies in jaxshim fusion: duplicate-or-bail."""

    def _graph(self, fn, *args):
        from repro.jaxshim import make_graph

        return make_graph(fn)(*args)

    def test_diamond_inside_one_group_does_not_escape(self):
        # One producer, two elementwise consumers, rejoined — all four
        # equations fuse into a single group, so the shared intermediate
        # lives in registers and only the graph output escapes.
        from repro.jaxshim.fusion import escaping_outputs, fusion_groups

        g = self._graph(lambda x: (x * 2.0 + 1.0) + (x * 2.0) * 3.0, np.zeros(64))
        groups = fusion_groups(g)
        assert len(groups) == 1
        esc = escaping_outputs(g, groups[0])
        out_uids = {a.uid for a in g.out_atoms if hasattr(a, "uid")}
        assert esc == out_uids
        produced = {g.eqns[i].out.uid for i in groups[0]}
        interior = produced - out_uids
        assert interior, "expected interior diamond values"
        assert not (interior & esc)

    def test_consumer_outside_group_forces_escape(self):
        # The producer feeds one in-group consumer (reduction closes the
        # group) and one consumer in the next group: duplicate-or-bail
        # says the value must be materialized — it escapes group 0.
        from repro.jaxshim import jnp
        from repro.jaxshim.fusion import escaping_outputs, fusion_groups

        g = self._graph(
            lambda x: (jnp.sum(x * 2.0 + 1.0), (x * 2.0) * 3.0), np.zeros(64)
        )
        groups = fusion_groups(g)
        assert len(groups) >= 2
        # CSE collapses the two x*2.0 into one producer; find it: the var
        # consumed by equations in more than one group.
        consumer_groups = {}
        for gi, grp in enumerate(groups):
            for ei in grp:
                for a in g.eqns[ei].inputs:
                    if hasattr(a, "uid"):
                        consumer_groups.setdefault(a.uid, set()).add(gi)
        shared = [u for u, gs in consumer_groups.items() if len(gs) > 1]
        assert shared, "expected a cross-group shared value"
        producer_uid = shared[0]
        home = next(
            gi
            for gi, grp in enumerate(groups)
            if any(g.eqns[ei].out.uid == producer_uid for ei in grp)
        )
        assert producer_uid in escaping_outputs(g, groups[home])

    def test_escaping_value_is_charged_in_group_cost(self):
        # Same split diamond: group 0's byte cost must include the
        # escaping intermediate's materialization.
        from repro.jaxshim import jnp
        from repro.jaxshim.fusion import (
            escaping_outputs,
            fusion_groups,
            group_cost,
        )

        n = 64
        g = self._graph(
            lambda x: (jnp.sum(x * 2.0 + 1.0), (x * 2.0) * 3.0), np.zeros(n)
        )
        groups = fusion_groups(g)
        esc0 = escaping_outputs(g, groups[0])
        _, bytes0 = group_cost(g, groups[0])
        esc_bytes = sum(
            g.eqns[i].out.aval.nbytes
            for i in groups[0]
            if g.eqns[i].out.uid in esc0
        )
        assert esc_bytes > 0
        # input x (n doubles) + every escaping output, nothing less.
        assert bytes0 >= n * 8 + esc_bytes

    def test_fully_private_chain_charges_no_intermediates(self):
        from repro.jaxshim.fusion import fusion_groups, group_cost

        n = 64
        g = self._graph(lambda x: x * 2.0 + 1.0, np.zeros(n))
        groups = fusion_groups(g)
        assert len(groups) == 1
        _, nbytes = group_cost(g, groups[0])
        # Input + output arrays plus the two scalar constants; the x*2.0
        # intermediate is free.
        assert nbytes == 2 * n * 8 + 2 * 8


class TestOrderingProperty:
    """Randomized operator orders + memory caps: compiled stays honest."""

    # Partial order on the 6-op chain (indices into processing_ops()):
    # pointing before pixels/weights; pixels+weights before scan/build.
    _AFTER = {1: {0}, 2: {0}, 3: {0, 1, 2}, 5: {0, 1, 2}, 4: set(), 0: set()}

    @classmethod
    def _topo_order(cls, picks):
        """Build a random topological order from a list of choice indices."""
        remaining = set(range(6))
        order = []
        for pick in picks:
            ready = sorted(
                op for op in remaining if cls._AFTER[op] <= set(order)
            )
            op = ready[pick % len(ready)]
            order.append(op)
            remaining.discard(op)
        return order

    def _run(self, perm, plan, memory_bytes):
        d = make_data(n_samples=200, n_obs=1)
        ops = processing_ops()
        rt = fresh_runtime(memory_bytes)
        p = Pipeline(
            [ops[i] for i in perm],
            implementation=ImplementationType.OMP_TARGET,
            plan=plan,
        )
        tracer = obs.Tracer()
        with resilience.resilient() as ctrl:
            ctrl.bind_clock(rt.device.clock)
            with obs.tracing(tracer):
                p.exec(d, use_accel=True, accel=rt)
        # Normalize to the field name: the compiled planner labels buffers
        # "ob0.detdata.pixels" while eager stage-in labels them "pixels".
        alloc_labels = {
            ev.attrs["label"].split("#")[0].split(".")[-1]
            for ev in tracer.events_of(EventType.ALLOC)
            if "label" in ev.attrs
        }
        return d, alloc_labels

    def test_random_orders_and_caps(self):
        hypothesis = pytest.importorskip("hypothesis")
        from hypothesis import HealthCheck, given, settings
        from hypothesis import strategies as st

        @settings(
            max_examples=12,
            deadline=None,
            suppress_health_check=[HealthCheck.too_slow],
        )
        @given(
            picks=st.lists(
                st.integers(min_value=0, max_value=5), min_size=6, max_size=6
            ),
            cap=st.sampled_from([1 << 28, 400_000, 220_000]),
        )
        def prop(picks, cap):
            perm = self._topo_order(picks)
            de, labels_e = self._run(perm, "eager", cap)
            dc, labels_c = self._run(perm, "compiled", cap)
            assert_bitwise_equal(de, dc)
            # The compiled plan must never stage a buffer the eager
            # pipeline wouldn't touch.
            assert labels_c <= labels_e, labels_c - labels_e

        prop()


class TestMovementComparison:
    def test_compiled_saving_exceeds_hybrid(self):
        from repro.workflows.satellite import SIZES, run_movement_comparison

        r = run_movement_comparison(SIZES["small"])
        assert r["identical"]
        hybrid = r["policies"]["hybrid"]
        compiled = r["policies"]["compiled"]
        assert compiled["transfer_saving"] > hybrid["transfer_saving"]
        assert compiled["transfers_elided"] > 0
        assert compiled["fused_groups"] >= 1
        assert compiled["overlap_seconds"] > 0
        assert compiled["kernels_launched"] < hybrid["kernels_launched"]

    def test_movement_model_ordering(self):
        from repro.accel.transfer import TransferModel
        from repro.perfmodel import estimate_movement

        d = make_data()
        plan = build_plan(lower_workflow(processing_ops(), [d]))
        est = estimate_movement(plan, TransferModel())
        assert est["naive"].exposed_seconds > est["hybrid"].exposed_seconds
        assert est["hybrid"].exposed_seconds > est["compiled"].exposed_seconds
        assert est["naive"].total_copies > est["hybrid"].total_copies
        assert est["compiled"].h2d_copies < est["hybrid"].h2d_copies
