"""Tests for the OpenMP Target Offload shim."""

import numpy as np
import pytest

from repro.accel import SimulatedDevice
from repro.ompshim import MapClause, MappingError, NotPresentError, OmpTargetRuntime


@pytest.fixture
def rt():
    return OmpTargetRuntime(SimulatedDevice(memory_bytes=1 << 24))


class TestDeviceAPI:
    def test_alloc_free(self, rt):
        buf = rt.omp_target_alloc(1024)
        assert rt.device.allocated_bytes >= 1024
        rt.omp_target_free(buf)
        assert rt.device.allocated_bytes == 0

    def test_memcpy_roundtrip(self, rt):
        host = np.arange(128, dtype=np.float64)
        buf = rt.omp_target_alloc(host.nbytes)
        rt.omp_target_memcpy(buf, host, host.nbytes, "h2d")
        out = np.zeros_like(host)
        rt.omp_target_memcpy(out, buf, host.nbytes, "d2h")
        assert np.array_equal(out, host)

    def test_memcpy_bad_direction(self, rt):
        buf = rt.omp_target_alloc(8)
        with pytest.raises(MappingError):
            rt.omp_target_memcpy(buf, np.zeros(1), 8, "sideways")

    def test_memcpy_wrong_operands(self, rt):
        buf = rt.omp_target_alloc(8)
        with pytest.raises(MappingError):
            rt.omp_target_memcpy(np.zeros(1), np.zeros(1), 8, "h2d")
        with pytest.raises(MappingError):
            rt.omp_target_memcpy(buf, buf, 8, "d2h")

    def test_memcpy_oversize(self, rt):
        buf = rt.omp_target_alloc(8)
        with pytest.raises(MappingError):
            rt.omp_target_memcpy(buf, np.zeros(1), 4096, "h2d")

    def test_num_devices(self, rt):
        assert rt.omp_get_num_devices() == 1


class TestPresentTable:
    def test_enter_exit_roundtrip(self, rt):
        x = np.arange(16.0)
        rt.target_enter_data(to=[x])
        assert rt.is_present(x)
        view = rt.device_view(x)
        assert np.array_equal(view, x)
        rt.target_exit_data(release=[x])
        assert not rt.is_present(x)
        assert rt.device.allocated_bytes == 0

    def test_not_present_raises(self, rt):
        with pytest.raises(NotPresentError):
            rt.device_view(np.zeros(4))
        with pytest.raises(NotPresentError):
            rt.target_update_from(np.zeros(4))

    def test_refcounting(self, rt):
        x = np.arange(8.0)
        rt.target_enter_data(to=[x])
        rt.target_enter_data(to=[x])  # nested: refcount 2
        rt.target_exit_data(release=[x])
        assert rt.is_present(x)  # still mapped
        rt.target_exit_data(release=[x])
        assert not rt.is_present(x)

    def test_nested_entry_does_not_recopy(self, rt):
        x = np.arange(8.0)
        rt.target_enter_data(to=[x])
        n = rt.device.clock.region_count("accel_data_update_device")
        rt.target_enter_data(to=[x])  # present: no transfer
        assert rt.device.clock.region_count("accel_data_update_device") == n
        rt.target_exit_data(release=[x])
        rt.target_exit_data(release=[x])

    def test_refcount_underflow(self, rt):
        x = np.arange(8.0)
        rt.target_enter_data(to=[x])
        rt.target_exit_data(release=[x])
        with pytest.raises((NotPresentError, MappingError)):
            rt.target_exit_data(release=[x])

    def test_exit_from_copies_back(self, rt):
        x = np.zeros(8)
        rt.target_enter_data(to=[x])
        rt.device_view(x)[:] = 5.0
        rt.target_exit_data(from_=[x])
        assert np.all(x == 5.0)

    def test_delete_discards(self, rt):
        x = np.zeros(8)
        rt.target_enter_data(to=[x])
        rt.device_view(x)[:] = 5.0
        rt.target_exit_data(delete=[x])
        assert np.all(x == 0.0)
        assert not rt.is_present(x)

    def test_alloc_clause_no_copy(self, rt):
        x = np.full(8, 3.0)
        rt.target_enter_data(alloc=[x])
        # alloc: device storage is zero-initialized, host value not copied.
        assert np.all(rt.device_view(x) == 0.0)
        rt.target_exit_data(release=[x])

    def test_noncontiguous_rejected(self, rt):
        x = np.zeros((4, 4))[:, ::2]
        with pytest.raises(MappingError):
            rt.target_enter_data(to=[x])

    def test_non_array_rejected(self, rt):
        with pytest.raises(MappingError):
            rt.target_enter_data(to=[[1, 2, 3]])

    def test_update_to_from(self, rt):
        x = np.zeros(4)
        rt.target_enter_data(to=[x])
        x[:] = 7.0
        rt.target_update_to(x)
        assert np.all(rt.device_view(x) == 7.0)
        rt.device_view(x)[:] = 9.0
        rt.target_update_from(x)
        assert np.all(x == 9.0)
        rt.target_exit_data(release=[x])


class TestTargetDataRegion:
    def test_tofrom_region(self, rt):
        x = np.arange(8.0)
        with rt.target_data(tofrom=[x]):
            dv = rt.device_view(x)
            dv *= 2.0
        assert np.allclose(x, np.arange(8.0) * 2)
        assert rt.device.allocated_bytes == 0

    def test_to_region_no_copy_back(self, rt):
        x = np.arange(8.0)
        with rt.target_data(to=[x]):
            rt.device_view(x)[:] = -1.0
        assert np.allclose(x, np.arange(8.0))

    def test_from_region_allocates_then_copies_back(self, rt):
        out = np.zeros(8)
        with rt.target_data(from_=[out]):
            rt.device_view(out)[:] = 4.0
        assert np.all(out == 4.0)

    def test_nested_regions(self, rt):
        x = np.zeros(8)
        with rt.target_data(tofrom=[x]):
            with rt.target_data(to=[x]):
                rt.device_view(x)[:] = 1.0
            assert rt.is_present(x)
        assert np.all(x == 1.0)

    def test_region_frees_on_exception(self, rt):
        x = np.zeros(8)
        with pytest.raises(RuntimeError, match="boom"):
            with rt.target_data(tofrom=[x]):
                raise RuntimeError("boom")
        assert not rt.is_present(x)
        assert rt.device.allocated_bytes == 0

    def test_transfers_charged(self, rt):
        x = np.zeros(1 << 16)
        with rt.target_data(tofrom=[x]):
            pass
        assert rt.device.clock.region_time("accel_data_update_device") > 0
        assert rt.device.clock.region_time("accel_data_update_host") > 0


class TestKernelLaunch:
    def test_collapse3_executes_body(self, rt):
        data = np.zeros((2, 3, 8))
        with rt.target_data(tofrom=[data]):
            d = rt.device_view(data)

            def body(i, j, k):
                d[i, j, k] = i * 100 + j * 10 + k

            rt.target_teams_distribute_parallel_for("k", (2, 3, 8), body)
        i, j, k = np.meshgrid(np.arange(2), np.arange(3), np.arange(8), indexing="ij")
        assert np.array_equal(data, i * 100 + j * 10 + k)

    def test_interval_guard_pattern(self, rt):
        """The paper's padding guard: lanes beyond the interval are no-ops."""
        data = np.zeros((1, 2, 10))
        stops = np.array([4, 7])
        with rt.target_data(tofrom=[data]):
            d = rt.device_view(data)

            def body(i, j, k):
                mask = k < stops[j]  # the in-loop conditional
                d[i, j, k[mask]] = 1.0

            rt.target_teams_distribute_parallel_for("k", (1, 2, 10), body)
        assert data[0, 0].sum() == 4
        assert data[0, 1].sum() == 7

    def test_launch_charges_device(self, rt):
        rt.target_teams_distribute_parallel_for(
            "mykernel", (4, 4, 1024), lambda i, j, k: None
        )
        assert rt.device.clock.region_time("mykernel") > 0
        assert rt.device.kernels_launched == 1

    def test_cost_scales_with_grid(self, rt):
        rt.target_teams_distribute_parallel_for("small", (1, 1, 1024), lambda i, j, k: None)
        rt.target_teams_distribute_parallel_for("big", (8, 8, 1024), lambda i, j, k: None)
        assert rt.device.clock.region_time("big") > rt.device.clock.region_time("small")

    def test_negative_grid_rejected(self, rt):
        with pytest.raises(ValueError):
            rt.target_teams_distribute_parallel_for("k", (-1, 1, 1), lambda i, j, k: None)

    def test_reset(self, rt):
        x = np.zeros(8)
        rt.target_enter_data(to=[x])
        rt.target_teams_distribute_parallel_for("k", (1, 1, 8), lambda i, j, k: None)
        rt.reset()
        assert not rt.is_present(x)
        assert rt.device.allocated_bytes == 0
        assert rt.device.clock.now == 0.0


class TestMapClauseEnum:
    def test_values(self):
        assert MapClause.TO.value == "to"
        assert MapClause.TOFROM.value == "tofrom"
