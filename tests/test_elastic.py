"""Unit tests for repro.parallel.elastic: the pool's scheduling contract.

These exercise :class:`ElasticPool` with cheap file-touching tasks (no
satellite pipeline), pinning the mechanics the integration tests rely on:
config validation, the run/report shape, task-failure escalation, the
abort protocol, and :class:`TaskCheckpoint` durability.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.parallel import (
    ElasticAborted,
    ElasticConfig,
    ElasticPool,
    TaskCheckpoint,
)

pytestmark = pytest.mark.usefixtures("leak_sentinel")

#: Fast but safe scheduler knobs for unit runs.
QUICK = ElasticConfig(lease_s=2.0, heartbeat_s=0.1, total_timeout_s=30.0)


def _touch_task(wid, task_id, root):
    """Pure producer: its only output is the file named by ``task_id``."""
    Path(root, f"task_{task_id}").write_text(str(wid))


def _flaky_task(wid, task_id, root):
    if task_id == "bad":
        raise ValueError("boom")
    _touch_task(wid, task_id, root)


class TestConfig:
    def test_heartbeat_must_undercut_lease(self):
        with pytest.raises(ValueError, match="shorter than the lease"):
            ElasticConfig(lease_s=1.0, heartbeat_s=1.0)

    def test_periods_must_be_positive(self):
        with pytest.raises(ValueError):
            ElasticConfig(lease_s=0.0)
        with pytest.raises(ValueError):
            ElasticConfig(hedge_s=-1.0)

    def test_attempt_bounds(self):
        with pytest.raises(ValueError):
            ElasticConfig(max_task_attempts=0)
        with pytest.raises(ValueError):
            ElasticConfig(max_hedges_per_task=-1)


class TestPool:
    def test_needs_at_least_one_worker(self):
        with pytest.raises(ValueError, match="at least one worker"):
            ElasticPool(_touch_task, n_workers=0)

    def test_rejects_duplicate_task_ids(self, tmp_path):
        pool = ElasticPool(_touch_task, args=(tmp_path,), n_workers=1, config=QUICK)
        with pytest.raises(ValueError, match="unique"):
            pool.run(["a", "a"])

    def test_runs_every_task_exactly_once(self, tmp_path):
        tasks = [f"t{i}" for i in range(6)]
        pool = ElasticPool(_touch_task, args=(tmp_path,), n_workers=2, config=QUICK)
        report = pool.run(tasks)
        assert report.complete
        assert sorted(report.committed) == sorted(tasks)
        assert report.workers_spawned == 2
        assert {p.name for p in tmp_path.iterdir()} == {
            f"task_{t}" for t in tasks
        }
        # A clean run steals, hedges, and respawns nothing.
        for counter in ("steals", "hedges", "respawns", "lease_expiries"):
            assert report.counters.get(counter, 0) == 0

    def test_persistent_failure_escalates(self, tmp_path):
        cfg = ElasticConfig(
            lease_s=2.0, heartbeat_s=0.1, max_task_attempts=2, total_timeout_s=30.0
        )
        pool = ElasticPool(_flaky_task, args=(tmp_path,), n_workers=2, config=cfg)
        with pytest.raises(RuntimeError, match="failed 2 times.*boom"):
            pool.run(["ok1", "bad", "ok2"])

    def test_abort_raises_with_the_partial_report(self, tmp_path):
        tasks = [f"t{i}" for i in range(8)]
        pool = ElasticPool(_touch_task, args=(tmp_path,), n_workers=2, config=QUICK)
        committed_live = []
        with pytest.raises(ElasticAborted) as excinfo:
            pool.run(tasks, on_commit=committed_live.append, abort_after_commits=2)
        report = excinfo.value.report
        assert not report.complete
        assert len(report.committed) >= 2
        assert sorted(report.committed) == sorted(committed_live)
        assert sorted(report.incomplete) == sorted(
            set(tasks) - set(report.committed)
        )


class TestTaskCheckpoint:
    def test_memory_roundtrip(self):
        store = TaskCheckpoint()
        arr = np.arange(6, dtype=np.float64).reshape(2, 3)
        store.save(4, arr)
        assert 4 in store
        assert 5 not in store
        assert store.task_ids() == [4]
        assert np.array_equal(store.load(4), arr)
        # The store owns a copy: mutating the source must not reach it.
        arr[:] = -1.0
        assert store.load(4)[0, 0] == 0.0

    def test_disk_persistence_survives_a_new_process(self, tmp_path):
        root = tmp_path / "ckpt"
        store = TaskCheckpoint(root)
        for tid in (2, 0, 7):
            store.save(tid, np.full((3,), float(tid)))
        reborn = TaskCheckpoint(root)  # what a resuming process would see
        assert reborn.task_ids() == [0, 2, 7]
        assert len(reborn) == 3
        for tid in (0, 2, 7):
            assert np.array_equal(reborn.load(tid), np.full((3,), float(tid)))

    def test_save_commits_atomically(self, tmp_path):
        root = tmp_path / "ckpt"
        store = TaskCheckpoint(root)
        store.save(1, np.arange(4.0))
        # No tmp file survives a completed save.
        assert sorted(p.name for p in root.iterdir()) == ["task_000001.npy"]

    def test_kill_mid_write_discards_only_the_torn_file(self, tmp_path):
        """A writer killed mid-save must not poison the resume.

        Simulates the on-disk state such a kill leaves: one good
        checkpoint, one checkpoint whose bytes are a truncated prefix
        (killed mid-overwrite on a non-atomic filesystem), and one
        in-flight ``.tmp-`` file that never renamed.  Resume keeps the
        good file, discards and unlinks the rest.
        """
        root = tmp_path / "ckpt"
        store = TaskCheckpoint(root)
        store.save(1, np.arange(5.0))
        store.save(2, np.arange(7.0))
        good = (root / "task_000001.npy").read_bytes()
        (root / "task_000002.npy").write_bytes(good[:9])
        (root / ".tmp-task_000003.npy").write_bytes(b"\x93NUMPY-partial")

        reborn = TaskCheckpoint(root)
        assert reborn.task_ids() == [1]
        assert np.array_equal(reborn.load(1), np.arange(5.0))
        assert sorted(reborn.discarded) == [
            ".tmp-task_000003.npy",
            "task_000002.npy",
        ]
        # The corrupt artifacts are gone: the tasks simply rerun.
        assert sorted(p.name for p in root.iterdir()) == ["task_000001.npy"]
        # And a fresh save of the discarded task works normally.
        reborn.save(2, np.arange(7.0))
        assert TaskCheckpoint(root).task_ids() == [1, 2]
