"""repro.store: crash consistency, integrity, and streamed parity.

Covers the chunk format's failure diagnostics, the atomic commit
protocol (a torn write can never damage the live generation), manifest
fallback to the retained previous generation, scrub quarantine +
producer regeneration, and the acceptance matrix: streamed runs --
eager, compiled, and elastic with 1 and 4 workers -- bitwise identical
to their all-in-memory oracles for any window size.
"""

import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.core import Data, ImplementationType
from repro.core.pipeline import MovementPolicy
from repro.ompshim import OmpTargetRuntime
from repro.ops import create_fake_sky
from repro.parallel.satellite import make_satellite_data_shard
from repro.resilience import resilient
from repro.resilience.faults import FaultKind, FaultPlan, FaultSpec
from repro.store import (
    ObservationStore,
    StoreIntegrityError,
    StoreTornWrite,
    StreamConfig,
    commit_chunk,
    read_chunk_header,
    stream_pipeline,
    verify_chunk,
)
from repro.store.manifest import MANIFEST_NAME, load_manifest
from repro.workflows.ingest import ingest_satellite_store, run_streamed_elastic
from repro.workflows.satellite import (
    SIZES,
    SizeSpec,
    satellite_processing_pipeline,
)

pytestmark = pytest.mark.usefixtures("leak_sentinel")

_NNZ = 3
_TINY = SIZES["tiny"]
#: Four observations so the elastic leg genuinely runs four workers.
_PAR_SIZE = SizeSpec("store_par", 4, 2, 512, 16)
#: One small observation for per-example property-test stores.
_PROP_SIZE = SizeSpec("store_prop", 1, 1, 256, 8)


def _ingest(tmp_path, size=_TINY, realization=0, chunk_samples=128):
    return ingest_satellite_store(
        Path(tmp_path) / "store", size, realization, chunk_samples
    )


def _sky(size, realization=0):
    return create_fake_sky(size.nside, nnz=_NNZ, seed=realization + 11)


def _stream_oracle(size, realization=0):
    """Continuous accumulation over the full in-memory dataset."""
    data = make_satellite_data_shard(
        size,
        list(range(size.n_observations)),
        realization=realization,
        sky=_sky(size, realization),
    )
    pipe = satellite_processing_pipeline(
        size.nside, implementation=ImplementationType.NUMPY
    )
    pipe.apply(data)
    return np.array(data["zmap"])


def _plan(site, kind, **kw):
    return FaultPlan(
        name=f"test-{site}", specs=(FaultSpec(site=site, kind=kind, **kw),), seed=0
    )


# -- chunk format diagnostics --------------------------------------------------


def _write_chunk(directory, payload=None):
    path = Path(directory) / "detdata__signal__w0000.chunk"
    if payload is None:
        payload = np.arange(48, dtype=np.float64).reshape(4, 12)
    commit_chunk(
        path,
        {"key": "detdata/signal", "window": 0, "start": 0, "stop": 12, "generation": 1},
        payload,
    )
    return path, payload


def test_chunk_roundtrip(tmp_path):
    path, payload = _write_chunk(tmp_path)
    header = verify_chunk(path)
    assert header["key"] == "detdata/signal"
    assert header["generation"] == 1
    assert header["dtype"] == "float64"
    assert header["shape"] == [4, 12]


def test_chunk_bad_magic_named(tmp_path):
    path, _ = _write_chunk(tmp_path)
    blob = path.read_bytes()
    path.write_bytes(b"XXXX" + blob[4:])
    with pytest.raises(StoreIntegrityError, match="bad magic"):
        read_chunk_header(path)


def test_chunk_truncation_named(tmp_path):
    path, _ = _write_chunk(tmp_path)
    blob = path.read_bytes()
    path.write_bytes(blob[:6])
    with pytest.raises(StoreIntegrityError, match="truncated in header frame"):
        read_chunk_header(path)
    path.write_bytes(blob[:-5])
    with pytest.raises(StoreIntegrityError, match="payload truncated"):
        read_chunk_header(path)


def test_chunk_header_bitflip_named(tmp_path):
    path, _ = _write_chunk(tmp_path)
    blob = bytearray(path.read_bytes())
    blob[10] ^= 0x01  # inside the header JSON
    path.write_bytes(bytes(blob))
    with pytest.raises(StoreIntegrityError, match="header CRC mismatch"):
        read_chunk_header(path)


def test_chunk_payload_bitflip_named(tmp_path):
    path, _ = _write_chunk(tmp_path)
    blob = bytearray(path.read_bytes())
    blob[-3] ^= 0x40
    path.write_bytes(bytes(blob))
    read_chunk_header(path)  # framing is still sound
    with pytest.raises(StoreIntegrityError, match="payload CRC mismatch"):
        verify_chunk(path)


def test_chunk_missing_named(tmp_path):
    with pytest.raises(StoreIntegrityError, match="missing"):
        read_chunk_header(Path(tmp_path) / "nope.chunk")


# -- commit atomicity ----------------------------------------------------------


def test_torn_write_never_touches_live_chunk(tmp_path):
    path, payload = _write_chunk(tmp_path)
    before = path.read_bytes()
    with resilient(
        _plan("store.write", FaultKind.TORN_WRITE, nth=(1,), max_fires=1, offset=17)
    ):
        with pytest.raises(StoreTornWrite, match="17 bytes"):
            commit_chunk(
                path,
                {
                    "key": "detdata/signal",
                    "window": 0,
                    "start": 0,
                    "stop": 12,
                    "generation": 2,
                },
                payload * 2.0,
            )
    assert path.read_bytes() == before
    shadow = path.parent / f".shadow-{path.name}"
    assert shadow.exists() and shadow.stat().st_size == 17
    shadow.unlink()


@settings(max_examples=12, deadline=None, database=None)
@given(offset=st.integers(min_value=0, max_value=500_000))
def test_commit_atomicity_property(offset):
    """Kill the writer at any byte offset: the previous generation survives
    and the scrub names exactly the one in-flight chunk."""
    with tempfile.TemporaryDirectory(prefix="repro-store-prop-") as tmp:
        store = _ingest(tmp, size=_PROP_SIZE, chunk_samples=64)
        doc = store.manifest(0)
        akey = sorted(doc["arrays"])[0]
        entry = doc["arrays"][akey]
        chunk = entry["chunks"][0]
        chunks_dir = Path(tmp) / "store" / "obs_0000" / "chunks"
        path = chunks_dir / chunk["file"]
        before = path.read_bytes()

        kind = entry["kind"]
        arr = store.load_observation(0)
        src = (arr.shared if kind == "shared" else arr.detdata)[entry["key"]]
        start, stop = int(chunk["start"]), int(chunk["stop"])
        window = src[start:stop] if kind == "shared" else src[:, start:stop]
        with resilient(
            _plan(
                "store.write",
                FaultKind.TORN_WRITE,
                nth=(1,),
                max_fires=1,
                offset=offset,
            )
        ):
            with pytest.raises(StoreTornWrite):
                commit_chunk(
                    path,
                    {
                        "key": akey,
                        "window": 0,
                        "start": start,
                        "stop": stop,
                        "generation": 2,
                    },
                    np.asarray(window) * 2.0,
                )

        # The live chunk is bitwise intact; reopening scrubs away exactly
        # the one in-flight shadow and nothing is quarantined.
        assert path.read_bytes() == before
        reopened = ObservationStore.open(Path(tmp) / "store")
        report = reopened.scrub_report
        assert report.in_flight == [chunk["file"]]
        assert report.quarantined == [] and report.regenerated == []
        header = verify_chunk(path)
        assert int(header["generation"]) == 1


def test_spill_retries_torn_writes(tmp_path):
    with resilient(
        _plan("store.write", FaultKind.TORN_WRITE, nth=(3,), max_fires=1)
    ) as ctrl:
        store = _ingest(tmp_path)
        counters = ctrl.report()["counters"]
    assert counters["store.commit_retries"] == 1
    assert counters["faults_injected"] == 1
    assert ObservationStore.open(store.root).scrub_report.clean


# -- manifests -----------------------------------------------------------------


def test_manifest_torn_write_falls_back_to_prev(tmp_path):
    store = _ingest(tmp_path)
    obs_dir = store.root / "obs_0000"
    doc = dict(store.manifest(0))
    with resilient(
        _plan("store.manifest", FaultKind.TORN_WRITE, nth=(1,), max_fires=1)
    ):
        from repro.store import commit_manifest

        with pytest.raises(StoreTornWrite):
            commit_manifest(obs_dir, doc)
    # manifest.json is now truncated garbage; .prev holds the last good one.
    loaded, fallback = load_manifest(obs_dir)
    assert fallback is not None and "not valid JSON" in fallback
    assert loaded["name"] == doc["name"]

    # Open heals: the fallback is recorded and a clean manifest recommitted.
    reopened = ObservationStore.open(store.root)
    fallbacks = reopened.scrub_report.manifest_fallbacks
    assert [f["obs"] for f in fallbacks] == ["obs_0000"]
    doc2, fallback2 = load_manifest(obs_dir)
    assert fallback2 is None and doc2["name"] == doc["name"]


def test_manifest_version_rejected(tmp_path):
    store = _ingest(tmp_path)
    obs_dir = store.root / "obs_0000"
    import json

    raw = json.loads((obs_dir / MANIFEST_NAME).read_text())
    raw["format"] = 99
    (obs_dir / MANIFEST_NAME).write_text(json.dumps(raw))
    (obs_dir / f"{MANIFEST_NAME}.prev").unlink(missing_ok=True)
    with pytest.raises(StoreIntegrityError, match="format version 99"):
        ObservationStore.open(store.root)


# -- scrub ---------------------------------------------------------------------


def test_scrub_clean_store(tmp_path):
    store = _ingest(tmp_path)
    report = ObservationStore.open(store.root).scrub_report
    assert report.clean
    assert report.chunks_checked > 0


def test_scrub_quarantines_orphan_chunk(tmp_path):
    store = _ingest(tmp_path)
    chunks_dir = store.root / "obs_0000" / "chunks"
    stray = chunks_dir / "detdata__ghost__w0000.chunk"
    commit_chunk(
        stray,
        {"key": "detdata/ghost", "window": 0, "start": 0, "stop": 4, "generation": 1},
        np.zeros(4),
    )
    report = ObservationStore.open(store.root).scrub_report
    assert [q["chunk"] for q in report.quarantined] == [stray.name]
    assert not stray.exists()
    assert (store.root / "obs_0000" / "quarantine" / stray.name).exists()


def test_scrub_regenerates_bitrot_from_producer(tmp_path):
    store = _ingest(tmp_path)
    doc = store.manifest(0)
    chunk = doc["arrays"]["detdata/signal"]["chunks"][1]
    path = store.root / "obs_0000" / "chunks" / chunk["file"]
    blob = bytearray(path.read_bytes())
    blob[-9] ^= 0x40
    path.write_bytes(bytes(blob))

    reopened = ObservationStore.open(store.root)
    report = reopened.scrub_report
    assert [q["chunk"] for q in report.quarantined] == [chunk["file"]]
    assert report.regenerated == [chunk["file"]]
    assert verify_chunk(path)["key"] == "detdata/signal"
    # The regenerated bytes match the originals exactly.
    ref = make_satellite_data_shard(
        _TINY, [0], realization=0, sky=_sky(_TINY)
    ).obs[0]
    got = reopened.load_observation(0)
    assert np.array_equal(got.detdata["signal"], ref.detdata["signal"])


def test_scrub_without_producer_names_chunk(tmp_path):
    store = ObservationStore.create(tmp_path / "bare", chunk_samples=128)
    ob = make_satellite_data_shard(_TINY, [0], realization=0, sky=_sky(_TINY)).obs[0]
    store.spill_observation(ob)  # no producer registered in the manifest
    doc = store.manifest(0)
    chunk = doc["arrays"]["detdata/signal"]["chunks"][0]
    path = store.root / "obs_0000" / "chunks" / chunk["file"]
    blob = bytearray(path.read_bytes())
    blob[-1] ^= 0x01
    path.write_bytes(bytes(blob))
    with pytest.raises(
        StoreIntegrityError,
        match=r"obs_0000 chunk\(s\) .*no producer is registered",
    ):
        ObservationStore.open(store.root)


def test_scrub_unknown_producer_names_known(tmp_path):
    store = ObservationStore.create(tmp_path / "bare", chunk_samples=128)
    ob = make_satellite_data_shard(_TINY, [0], realization=0, sky=_sky(_TINY)).obs[0]
    store.spill_observation(ob, producer={"name": "who-dis", "args": {}})
    doc = store.manifest(0)
    chunk = doc["arrays"]["detdata/signal"]["chunks"][0]
    path = store.root / "obs_0000" / "chunks" / chunk["file"]
    blob = bytearray(path.read_bytes())
    blob[-1] ^= 0x01
    path.write_bytes(bytes(blob))
    with pytest.raises(
        StoreIntegrityError, match=r"'who-dis' is not registered"
    ):
        ObservationStore.open(store.root)


def test_store_index_version_rejected(tmp_path):
    store = _ingest(tmp_path)
    import json

    raw = json.loads((store.root / "store.json").read_text())
    raw["format"] = 41
    (store.root / "store.json").write_text(json.dumps(raw))
    with pytest.raises(StoreIntegrityError, match="format version 41"):
        ObservationStore.open(store.root)


# -- roundtrip and windows -----------------------------------------------------


def test_load_observation_roundtrip(tmp_path):
    store = _ingest(tmp_path)
    ref = make_satellite_data_shard(
        _TINY, [0, 1], realization=0, sky=_sky(_TINY)
    )
    for iobs in range(2):
        got = store.load_observation(iobs)
        want = ref.obs[iobs]
        assert got.name == want.name and got.n_samples == want.n_samples
        for key in want.shared:
            assert np.array_equal(got.shared[key], want.shared[key])
        for key in want.detdata:
            assert np.array_equal(got.detdata[key], want.detdata[key])
        for key in want.intervals:
            assert (
                got.intervals[key].as_arrays()[0].tolist()
                == want.intervals[key].as_arrays()[0].tolist()
            )


def test_windows_are_chunk_aligned(tmp_path):
    store = _ingest(tmp_path, chunk_samples=128)
    assert store.windows(0, 128) == [(s, s + 128) for s in range(0, 1024, 128)]
    # Rounded down to whole chunks, never below one chunk.
    assert store.windows(0, 300) == [(0, 256), (256, 512), (512, 768), (768, 1024)]
    assert store.windows(0, 5) == store.windows(0, 128)
    assert store.windows(0) == store.windows(0, 128)


def test_window_views_are_copy_on_write(tmp_path):
    store = _ingest(tmp_path)
    ob = store.window_observation(0, 0, 256)
    before = store.root.joinpath(
        "obs_0000", "chunks", "detdata__signal__w0000.chunk"
    ).read_bytes()
    ob.detdata["signal"][:] = -1.0
    after = store.root.joinpath(
        "obs_0000", "chunks", "detdata__signal__w0000.chunk"
    ).read_bytes()
    assert before == after


def test_stream_config_validation():
    with pytest.raises(ValueError, match="host_budget_bytes"):
        StreamConfig(host_budget_bytes=0)
    with pytest.raises(ValueError, match="window_samples"):
        StreamConfig(window_samples=-1)
    with pytest.raises(ValueError, match="offset"):
        FaultSpec(site="store.write", kind=FaultKind.TORN_WRITE, nth=(1,), offset=-1)


# -- streamed parity: the acceptance matrix ------------------------------------


@pytest.mark.parametrize("window_samples", [128, 256, 1024, None])
def test_streamed_eager_bitwise_parity(tmp_path, window_samples):
    store = _ingest(tmp_path)
    oracle = _stream_oracle(_TINY)
    pipe = satellite_processing_pipeline(
        _TINY.nside, implementation=ImplementationType.NUMPY
    )
    out = stream_pipeline(
        store,
        pipe,
        meta={"sky_map": _sky(_TINY)},
        config=StreamConfig(window_samples=window_samples),
    )
    assert np.array_equal(out["zmap"], oracle)
    if window_samples == 128:
        assert out.stream_windows == 16


def test_streamed_budget_bitwise_parity(tmp_path):
    store = _ingest(tmp_path)
    budget = store.bytes_per_sample(0) * _TINY.n_samples // 4
    pipe = satellite_processing_pipeline(
        _TINY.nside, implementation=ImplementationType.NUMPY
    )
    out = stream_pipeline(
        store,
        pipe,
        meta={"sky_map": _sky(_TINY)},
        config=StreamConfig(host_budget_bytes=budget),
    )
    assert out.stream_windows >= 8
    assert np.array_equal(out["zmap"], _stream_oracle(_TINY))


def test_streamed_compiled_bitwise_parity(tmp_path):
    store = _ingest(tmp_path)

    def compiled_pipe():
        accel = OmpTargetRuntime()
        p = satellite_processing_pipeline(
            _TINY.nside,
            implementation=ImplementationType.OMP_TARGET,
            accel=accel,
            policy=MovementPolicy.HYBRID,
        )
        p.plan = "compiled"
        return p, accel

    data = make_satellite_data_shard(_TINY, [0, 1], realization=0, sky=_sky(_TINY))
    cp, caccel = compiled_pipe()
    cp.exec(data, use_accel=True, accel=caccel)

    sp, saccel = compiled_pipe()
    out = stream_pipeline(
        store,
        sp,
        meta={"sky_map": _sky(_TINY)},
        config=StreamConfig(window_samples=256),
        use_accel=True,
        accel=saccel,
    )
    assert np.array_equal(out["zmap"], data["zmap"])


@pytest.mark.parametrize("n_procs", [1, 4])
def test_streamed_elastic_bitwise_parity(tmp_path, n_procs):
    store = _ingest(tmp_path, size=_PAR_SIZE, chunk_samples=128)
    # The elastic oracle: per-observation partials summed in fixed order.
    oracle = None
    for iobs in range(_PAR_SIZE.n_observations):
        d = make_satellite_data_shard(
            _PAR_SIZE, [iobs], realization=0, sky=_sky(_PAR_SIZE)
        )
        p = satellite_processing_pipeline(
            _PAR_SIZE.nside, implementation=ImplementationType.NUMPY
        )
        p.apply(d)
        oracle = d["zmap"].copy() if oracle is None else oracle + d["zmap"]

    out = run_streamed_elastic(
        store.root, n_procs=n_procs, window_samples=128, scrub=True
    )
    assert out["n_workers"] == n_procs
    assert np.array_equal(out["zmap"], oracle)


def test_streamed_bitrot_recovers_bitwise(tmp_path):
    store = _ingest(tmp_path)
    oracle = _stream_oracle(_TINY)
    with resilient(
        _plan("store.read", FaultKind.BIT_FLIP, nth=(2,), max_fires=1)
    ) as ctrl:
        pipe = satellite_processing_pipeline(
            _TINY.nside, implementation=ImplementationType.NUMPY
        )
        out = stream_pipeline(
            store,
            pipe,
            meta={"sky_map": _sky(_TINY)},
            config=StreamConfig(window_samples=256),
        )
        counters = ctrl.report()["counters"]
    assert counters["faults_injected"] == 1
    assert counters["store.chunks_quarantined"] == 1
    assert counters["store.chunks_regenerated"] == 1
    assert np.array_equal(out["zmap"], oracle)


def test_store_events_and_metrics(tmp_path):
    tracer = obs.Tracer()
    with obs.tracing(tracer):
        store = _ingest(tmp_path)
        ObservationStore.open(store.root)
    kinds = {e.type for e in tracer.events}
    from repro.obs.events import EventType

    assert EventType.STORE_COMMIT in kinds
    assert EventType.STORE_SCRUB in kinds
    assert tracer.metrics.counters["store.chunks_written"].value > 0
    assert tracer.metrics.counters["store.chunks_scrubbed"].value > 0
