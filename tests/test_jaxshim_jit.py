"""Tests for jit: tracing, caching, purity errors, donation, fusion."""

import numpy as np
import pytest

from repro.jaxshim import config, jit, jnp
from repro.jaxshim.errors import (
    ConcretizationError,
    ShapeError,
    TracerArrayConversionError,
    TracerError,
)


@pytest.fixture(autouse=True)
def x64_mode():
    with config.temporarily(enable_x64=True):
        yield


class TestJitBasics:
    def test_matches_eager(self):
        def f(a, b):
            return jnp.sum(jnp.sin(a) * b + jnp.where(a > 1.0, a, 0.0))

        x = np.linspace(0, 3, 50)
        assert np.isclose(jit(f)(x, x), f(x, x))

    def test_multiple_outputs_pytree(self):
        @jit
        def f(a):
            return {"double": a * 2, "pair": (a + 1, a - 1)}

        out = f(np.arange(3.0))
        assert np.allclose(out["double"], [0, 2, 4])
        assert np.allclose(out["pair"][0], [1, 2, 3])

    def test_pytree_inputs(self):
        @jit
        def f(d):
            return d["x"] + d["y"]

        out = f({"x": np.ones(3), "y": np.full(3, 2.0)})
        assert np.allclose(out, 3.0)

    def test_constant_output(self):
        @jit
        def f(a):
            return np.float64(7.0)

        assert f(np.zeros(2)) == 7.0

    def test_scalar_arg_traced(self):
        @jit
        def f(a, s):
            return a * s

        assert np.allclose(f(np.arange(3.0), 2.0), [0, 2, 4])
        assert f.n_traces == 1
        f(np.arange(3.0), 5.0)  # same shapes: no retrace
        assert f.n_traces == 1

    def test_kwargs_rejected(self):
        @jit
        def f(a):
            return a

        with pytest.raises(TypeError):
            f(a=np.zeros(2))


class TestJitCache:
    def test_retrace_per_shape(self):
        @jit
        def f(a):
            return a * 2

        f(np.zeros(3))
        f(np.zeros(3))
        assert f.n_traces == 1
        f(np.zeros(4))
        assert f.n_traces == 2
        f(np.zeros((3, 1)))
        assert f.n_traces == 3
        assert f.cache_size == 3

    def test_retrace_per_dtype(self):
        @jit
        def f(a):
            return a + a

        f(np.zeros(3, dtype=np.float64))
        f(np.zeros(3, dtype=np.int64))
        assert f.n_traces == 2

    def test_static_args_in_key(self):
        @jit
        def f(a, n):
            return a * n

        f2 = jit(f.fn, static_argnums=(1,))
        f2(np.zeros(3), 2)
        f2(np.zeros(3), 2)
        assert f2.n_traces == 1
        f2(np.zeros(3), 3)  # different static value: retrace
        assert f2.n_traces == 2

    def test_static_arg_enables_python_control_flow(self):
        @jit
        def f(a):
            # This would raise ConcretizationError on a traced value...
            return a

        g = jit(lambda a, flag: a * 2 if flag else a, static_argnums=(1,))
        assert np.allclose(g(np.ones(2), True), 2.0)
        assert np.allclose(g(np.ones(2), False), 1.0)
        assert g.n_traces == 2

    def test_compiled_for_introspection(self):
        @jit
        def f(a):
            return jnp.exp(a) * 2 + 1

        x = np.zeros(8)
        assert f.compiled_for(x) is None
        f(x)
        exe = f.compiled_for(x)
        assert exe is not None
        assert exe.n_calls == 1
        assert exe.n_eqns >= 3

    def test_called_with_tracers_inlines(self):
        inner = jit(lambda a: a * 2)

        @jit
        def outer(a):
            return inner(a) + 1

        assert np.allclose(outer(np.ones(2)), 3.0)
        # inner was inlined into outer's trace, not compiled separately.
        assert inner.n_traces == 0

    def test_x64_flag_in_key(self):
        @jit
        def f(a):
            return a * 1.5

        f(np.zeros(3))
        with config.temporarily(enable_x64=False):
            out = f(np.zeros(3))
            assert out.dtype == np.float32
        assert f.n_traces == 2


class TestPurityAndErrors:
    def test_mutation_raises(self):
        @jit
        def f(a):
            a[0] = 1.0
            return a

        with pytest.raises(TracerError, match="at\\[idx\\]|immutable"):
            f(np.zeros(3))

    def test_bool_concretization(self):
        @jit
        def f(a):
            if a[0] > 0:
                return a
            return -a

        with pytest.raises(ConcretizationError):
            f(np.ones(3))

    def test_int_float_concretization(self):
        @jit
        def f(a):
            return float(a[0])

        with pytest.raises(ConcretizationError):
            f(np.ones(3))

    def test_boolean_mask_raises_shape_error(self):
        @jit
        def f(a):
            return a[a > 0]

        with pytest.raises(ShapeError, match="data-dependent"):
            f(np.arange(4.0))

    def test_array_conversion_raises(self):
        @jit
        def f(a):
            return np.asarray(a).sum()

        with pytest.raises(TracerArrayConversionError):
            f(np.ones(3))

    def test_iteration_over_leading_axis_allowed(self):
        @jit
        def f(a):
            total = jnp.zeros(())
            for row in a:  # static length: fine
                total = total + jnp.sum(row)
            return total

        assert np.isclose(f(np.ones((3, 4))), 12.0)

    def test_closure_leak_detected(self):
        leaked = []

        @jit
        def f(a):
            leaked.append(a)
            return a * 2

        f(np.ones(2))

        @jit
        def g(b):
            return leaked[0] + b  # tracer from f's (finished) trace

        with pytest.raises(TracerError):
            g(np.ones(2))


class TestFunctionalUpdates:
    def test_at_set_dynamic(self):
        @jit
        def f(a, idx, v):
            return a.at[idx].set(v)

        out = f(np.zeros(5), np.array([1, 3]), np.array([7.0, 8.0]))
        assert np.allclose(out, [0, 7, 0, 8, 0])

    def test_at_add_duplicates(self):
        @jit
        def f(a, idx):
            return a.at[idx].add(1.0)

        out = f(np.zeros(3), np.array([0, 0, 0, 2]))
        assert np.allclose(out, [3, 0, 1])

    def test_at_static_slice(self):
        @jit
        def f(a):
            return a.at[1:3].set(9.0)

        assert np.allclose(f(np.zeros(5)), [0, 9, 9, 0, 0])

    def test_at_static_add(self):
        @jit
        def f(a):
            return a.at[0].add(1.0)

        assert np.allclose(f(np.zeros(2)), [1, 0])

    def test_at_2d_dynamic(self):
        @jit
        def f(z, i, j, v):
            return z.at[i, j].add(v)

        z = np.zeros((2, 3))
        out = f(z, np.array([0, 1, 0]), np.array([2, 1, 2]), np.ones(3))
        expect = np.zeros((2, 3))
        expect[0, 2] = 2
        expect[1, 1] = 1
        assert np.allclose(out, expect)

    def test_at_min_max(self):
        @jit
        def f(a, idx, v):
            return a.at[idx].min(v), a.at[idx].max(v)

        lo, hi = f(np.full(3, 5.0), np.array([0, 1]), np.array([1.0, 9.0]))
        assert np.allclose(lo, [1, 5, 5])
        assert np.allclose(hi, [5, 9, 5])

    def test_input_not_mutated(self):
        base = np.zeros(3)

        @jit
        def f(a):
            return a.at[0].set(1.0)

        f(base)
        assert np.all(base == 0)


class TestDonation:
    def test_donated_bytes_tracked(self):
        @jit
        def f(a, b):
            return a + b

        g = jit(f.fn, donate_argnums=(0,))
        x = np.zeros(1000)
        g(x, x)
        exe = g.compiled_for(x, x)
        assert exe.donated_bytes_last_call == x.nbytes

    def test_static_and_donated_conflict(self):
        with pytest.raises(ValueError):
            jit(lambda a: a, static_argnums=(0,), donate_argnums=(0,))


class TestGraphOptimization:
    def test_dce_removes_dead_code(self):
        @jit
        def f(a):
            dead = jnp.exp(a) * 123.0  # noqa: F841 - intentionally unused
            return a + 1

        f(np.zeros(4))
        exe = f.compiled_for(np.zeros(4))
        names = [e.prim.name for e in exe.graph.eqns]
        assert "exp" not in names

    def test_cse_merges_duplicates(self):
        @jit
        def f(a):
            return jnp.sin(a) + jnp.sin(a)

        f(np.zeros(4))
        exe = f.compiled_for(np.zeros(4))
        names = [e.prim.name for e in exe.graph.eqns]
        assert names.count("sin") == 1

    def test_fusion_reduces_launches(self):
        @jit
        def f(a):
            return jnp.sum(jnp.sqrt(a * a + 1.0) - jnp.cos(a))

        f(np.zeros(16))
        exe = f.compiled_for(np.zeros(16))
        # Elementwise chain + reduction fuse into a single kernel.
        assert exe.n_kernels == 1
        assert exe.n_eqns > 1

    def test_scatter_breaks_fusion(self):
        @jit
        def f(a, idx):
            b = a * 2
            c = b.at[idx].add(1.0)
            return c * 3

        f(np.zeros(8), np.array([0, 1]))
        exe = f.compiled_for(np.zeros(8), np.array([0, 1]))
        assert exe.n_kernels >= 3

    def test_optimized_graph_still_correct(self):
        def f(a):
            dead = jnp.exp(a)  # noqa: F841
            s = jnp.sin(a)
            return s + s + jnp.sum(a)

        x = np.linspace(0, 1, 9)
        assert np.allclose(jit(f)(x), f(x))
