"""Tests for noise estimation: recover the simulated PSD parameters."""

import numpy as np
import pytest

from repro.core import Data, fake_hexagon_focalplane
from repro.noise import white_noise_psd
from repro.ops import DefaultNoiseModel, NoiseEstim, SimNoise, SimSatellite
from repro.ops.noise_estim import fit_oof_psd


class TestFitOofPsd:
    def test_recovers_white_level(self):
        freqs = np.linspace(0.01, 5.0, 400)
        fit = fit_oof_psd(freqs, white_noise_psd(freqs, net=2.0))
        assert fit.net == pytest.approx(2.0, rel=0.05)

    def test_recovers_knee(self):
        from repro.noise import oof_psd

        freqs = np.linspace(0.005, 5.0, 800)
        psd = oof_psd(freqs, net=1.0, fknee=0.3, fmin=1e-6, alpha=1.0)
        fit = fit_oof_psd(freqs, psd)
        assert fit.net == pytest.approx(1.0, rel=0.05)
        assert fit.fknee == pytest.approx(0.3, rel=0.2)
        assert fit.alpha == pytest.approx(1.0, rel=0.2)

    def test_recovers_steeper_slope(self):
        from repro.noise import oof_psd

        freqs = np.linspace(0.005, 5.0, 800)
        psd = oof_psd(freqs, net=0.5, fknee=0.2, fmin=1e-6, alpha=2.0)
        fit = fit_oof_psd(freqs, psd)
        assert fit.alpha == pytest.approx(2.0, rel=0.25)

    def test_fit_psd_evaluates(self):
        freqs = np.linspace(0.01, 5.0, 100)
        fit = fit_oof_psd(freqs, white_noise_psd(freqs, 1.0))
        out = fit.psd(freqs)
        assert out.shape == freqs.shape
        assert np.all(out > 0)

    def test_too_few_bins(self):
        with pytest.raises(ValueError):
            fit_oof_psd(np.linspace(0.1, 1, 4), np.ones(4))


class TestNoiseEstimOperator:
    def _data(self, fknee, n_samples=120000):
        fp = fake_hexagon_focalplane(
            n_pixels=1, sample_rate=10.0, net=1.5, fknee=fknee
        )
        d = Data()
        SimSatellite(
            fp, n_observations=1, n_samples=n_samples, scan_samples=n_samples,
            gap_samples=0, flag_fraction=0.0,
        ).apply(d)
        DefaultNoiseModel().apply(d)
        SimNoise().apply(d)
        return d

    def test_recovers_simulated_net(self):
        d = self._data(fknee=1e-5)
        NoiseEstim(nperseg=4096).apply(d)
        fits = d.obs[0].noise_fit
        for det, fit in fits.items():
            assert fit.net == pytest.approx(1.5, rel=0.1)

    def test_recovers_simulated_knee(self):
        d = self._data(fknee=0.4)
        NoiseEstim(nperseg=8192).apply(d)
        for fit in d.obs[0].noise_fit.values():
            assert fit.fknee == pytest.approx(0.4, rel=0.5)
            assert fit.net == pytest.approx(1.5, rel=0.15)

    def test_periodograms_stored(self):
        d = self._data(fknee=1e-5, n_samples=20000)
        NoiseEstim(nperseg=1024).apply(d)
        psds = d.obs[0].noise_fit_psd
        for det, (freqs, psd) in psds.items():
            assert freqs.shape == psd.shape
            assert np.all(psd >= 0)

    def test_traits(self):
        op = NoiseEstim()
        assert "signal" in op.requires()["detdata"]
        assert "noise_fit" in op.provides()["meta"]
