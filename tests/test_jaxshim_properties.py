"""Property-based tests of the jaxshim transformation semantics.

Hypothesis generates random programs from the primitive set and checks
the core contracts:

* ``jit(f)(x) == f(x)``        (compilation preserves semantics)
* ``vmap(f)(xs) == stack(map(f, xs))``   (batching preserves semantics)
* graph optimization passes never change results.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jaxshim import config, jit, jnp, vmap

N = 6  # vector length of generated programs
B = 4  # vmap batch size


@pytest.fixture(autouse=True)
def x64_mode():
    with config.temporarily(enable_x64=True):
        yield


# A little expression language: each op maps (a, b) -> array, built only
# from total functions (no division by data, no log of data).
_BINOPS = [
    lambda a, b: jnp.add(a, b),
    lambda a, b: jnp.subtract(a, b),
    lambda a, b: jnp.multiply(a, b),
    lambda a, b: jnp.minimum(a, b),
    lambda a, b: jnp.maximum(a, b),
    lambda a, b: jnp.arctan2(a, b),
    lambda a, b: jnp.where(a > b, a, b),
]
_UNOPS = [
    lambda a: jnp.sin(a),
    lambda a: jnp.cos(a),
    lambda a: jnp.abs(a),
    lambda a: jnp.sqrt(jnp.abs(a) + 1.0),
    lambda a: jnp.exp(jnp.clip(a, -3.0, 3.0)),
    lambda a: jnp.negative(a),
    lambda a: a * 2.0 + 1.0,
    lambda a: jnp.floor(a),
]


@st.composite
def programs(draw):
    """A random closed expression over two vector inputs."""
    n_steps = draw(st.integers(2, 8))
    steps = []
    for _ in range(n_steps):
        if draw(st.booleans()):
            steps.append(("bin", draw(st.integers(0, len(_BINOPS) - 1))))
        else:
            steps.append(("un", draw(st.integers(0, len(_UNOPS) - 1))))
    reduce_at_end = draw(st.booleans())

    def f(x, y):
        vals = [x, y]
        for kind, idx in steps:
            if kind == "bin":
                vals.append(_BINOPS[idx](vals[-1], vals[-2]))
            else:
                vals.append(_UNOPS[idx](vals[-1]))
        out = vals[-1]
        return jnp.sum(out) if reduce_at_end else out

    return f


finite_vectors = st.lists(
    st.floats(min_value=-10, max_value=10, allow_nan=False), min_size=N, max_size=N
).map(lambda v: np.array(v))


class TestJitEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(f=programs(), x=finite_vectors, y=finite_vectors)
    def test_jit_matches_eager(self, f, x, y):
        eager = f(x, y)
        compiled = jit(f)(x, y)
        np.testing.assert_allclose(compiled, eager, rtol=1e-12, atol=1e-12)

    @settings(max_examples=30, deadline=None)
    @given(f=programs(), x=finite_vectors, y=finite_vectors)
    def test_jit_is_idempotent_across_calls(self, f, x, y):
        jf = jit(f)
        first = jf(x, y)
        second = jf(x, y)
        np.testing.assert_array_equal(np.asarray(first), np.asarray(second))
        assert jf.n_traces == 1

    @settings(max_examples=30, deadline=None)
    @given(f=programs(), x=finite_vectors, y=finite_vectors)
    def test_optimized_graph_has_no_dead_or_duplicate_eqns(self, f, x, y):
        jf = jit(f)
        jf(x, y)
        exe = jf.compiled_for(x, y)
        graph = exe.graph
        # DCE: every equation's output reaches the outputs.
        from repro.jaxshim.core import Var

        used = {a.uid for a in graph.out_atoms if isinstance(a, Var)}
        for eqn in reversed(graph.eqns):
            assert eqn.out.uid in used
            used.update(a.uid for a in eqn.inputs if isinstance(a, Var))
        # Fusion groups tile the equation list exactly once.
        covered = sorted(i for g in exe.groups for i in g)
        assert covered == list(range(len(graph.eqns)))


class TestVmapEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(
        f=programs(),
        data=st.lists(
            st.tuples(finite_vectors, finite_vectors), min_size=B, max_size=B
        ),
    )
    def test_vmap_matches_loop(self, f, data):
        xs = np.stack([d[0] for d in data])
        ys = np.stack([d[1] for d in data])
        batched = vmap(f)(xs, ys)
        looped = np.stack([np.asarray(f(x, y)) for x, y in data])
        np.testing.assert_allclose(np.asarray(batched), looped, rtol=1e-12, atol=1e-12)

    @settings(max_examples=30, deadline=None)
    @given(
        f=programs(),
        data=st.lists(
            st.tuples(finite_vectors, finite_vectors), min_size=B, max_size=B
        ),
    )
    def test_vmap_inside_jit_matches_loop(self, f, data):
        xs = np.stack([d[0] for d in data])
        ys = np.stack([d[1] for d in data])
        compiled = jit(lambda a, b: vmap(f)(a, b))(xs, ys)
        looped = np.stack([np.asarray(f(x, y)) for x, y in data])
        np.testing.assert_allclose(np.asarray(compiled), looped, rtol=1e-12, atol=1e-12)


class TestScatterGatherProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        idx=st.lists(st.integers(0, N - 1), min_size=1, max_size=12),
        base=finite_vectors,
        vals=st.lists(
            st.floats(min_value=-5, max_value=5, allow_nan=False),
            min_size=1,
            max_size=12,
        ),
    )
    def test_scatter_add_matches_numpy(self, idx, base, vals):
        k = min(len(idx), len(vals))
        idx_arr = np.array(idx[:k])
        val_arr = np.array(vals[:k])
        expect = base.copy()
        np.add.at(expect, idx_arr, val_arr)

        eager = jnp.scatter_add(base, idx_arr, val_arr)
        compiled = jit(lambda b, i, v: b.at[i].add(v))(base, idx_arr, val_arr)
        np.testing.assert_allclose(eager, expect, rtol=1e-12)
        np.testing.assert_allclose(compiled, expect, rtol=1e-12)

    @settings(max_examples=60, deadline=None)
    @given(
        idx=st.lists(st.integers(-2, N + 2), min_size=1, max_size=8),
        base=finite_vectors,
    )
    def test_take_clips_out_of_range(self, idx, base):
        idx_arr = np.array(idx)
        out = jnp.take(base, idx_arr)
        clipped = np.clip(idx_arr, 0, N - 1)
        np.testing.assert_array_equal(np.asarray(out), base[clipped])

    @settings(max_examples=40, deadline=None)
    @given(base=finite_vectors, idx=st.integers(0, N - 1), v=st.floats(-5, 5))
    def test_set_then_get_roundtrip(self, base, idx, v):
        @jit
        def set_get(b, i, val):
            updated = b.at[i].set(val)
            return jnp.take(updated, i)

        out = set_get(base, np.array([idx]), np.array([v]))
        np.testing.assert_allclose(np.asarray(out), [v])

    @settings(max_examples=40, deadline=None)
    @given(base=finite_vectors)
    def test_functional_update_never_mutates(self, base):
        snapshot = base.copy()
        jnp.scatter_set(base, np.array([0]), np.array([99.0]))
        jit(lambda b: b.at[0].set(99.0))(base)
        np.testing.assert_array_equal(base, snapshot)
