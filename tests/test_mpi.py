"""Tests for the MPI abstraction and modeled process layouts."""

import numpy as np
import pytest

from repro.mpi import NodeSpec, SerialComm, SimWorld, ToastComm


class TestSerialComm:
    def test_identity_collectives(self):
        comm = SerialComm()
        assert comm.rank == 0
        assert comm.size == 1
        assert comm.bcast({"x": 1}) == {"x": 1}
        assert comm.allreduce(5) == 5
        assert comm.gather("a") == ["a"]
        assert comm.allgather("a") == ["a"]
        comm.barrier()

    def test_allreduce_array_copies(self):
        comm = SerialComm()
        arr = np.arange(4.0)
        out = comm.allreduce_array(arr)
        assert np.array_equal(out, arr)
        out[0] = 99.0
        assert arr[0] == 0.0  # reduction must not alias the input

    def test_unknown_op_raises(self):
        comm = SerialComm()
        with pytest.raises(ValueError):
            comm.allreduce(1, op="xor")
        with pytest.raises(ValueError):
            comm.allreduce_array(np.ones(3), op="xor")

    def test_bad_root_raises(self):
        comm = SerialComm()
        with pytest.raises(ValueError):
            comm.bcast(1, root=1)

    def test_split_returns_serial(self):
        assert SerialComm().split(0).size == 1


class TestToastComm:
    def test_serial_default(self):
        tc = ToastComm()
        assert tc.n_groups == 1
        assert tc.group == 0
        assert tc.group_rank == 0

    def test_bad_group_size(self):
        with pytest.raises(ValueError):
            ToastComm(group_size=2)  # does not divide serial world of 1

    def test_distribute_observations_serial(self):
        tc = ToastComm()
        assert tc.distribute_observations(5) == [0, 1, 2, 3, 4]

    def test_distribute_observations_negative(self):
        with pytest.raises(ValueError):
            ToastComm().distribute_observations(-1)

    def test_distribute_uniform_exact(self):
        blocks = ToastComm.distribute_uniform(10, 2)
        assert blocks == [(0, 5), (5, 5)]

    def test_distribute_uniform_remainder_front_loaded(self):
        blocks = ToastComm.distribute_uniform(10, 3)
        assert blocks == [(0, 4), (4, 3), (7, 3)]
        assert sum(c for _, c in blocks) == 10

    def test_distribute_uniform_more_chunks_than_items(self):
        blocks = ToastComm.distribute_uniform(2, 4)
        assert sum(c for _, c in blocks) == 2
        assert len(blocks) == 4

    def test_distribute_uniform_bad_chunks(self):
        with pytest.raises(ValueError):
            ToastComm.distribute_uniform(10, 0)

    def test_distribute_discrete_covers_all(self):
        weights = [3, 1, 4, 1, 5, 9, 2, 6]
        blocks = ToastComm.distribute_discrete(weights, 3)
        assert blocks[0][0] == 0
        total = sum(c for _, c in blocks)
        assert total == len(weights)
        # Blocks are contiguous.
        for (f1, c1), (f2, _) in zip(blocks, blocks[1:]):
            assert f1 + c1 == f2

    def test_distribute_discrete_roughly_balanced(self):
        weights = [1.0] * 100
        blocks = ToastComm.distribute_discrete(weights, 4)
        counts = [c for _, c in blocks]
        assert max(counts) - min(counts) <= 2

    def test_distribute_discrete_negative_weight(self):
        with pytest.raises(ValueError):
            ToastComm.distribute_discrete([1.0, -1.0], 2)


class TestSimWorld:
    def test_defaults_are_perlmutter(self):
        w = SimWorld()
        assert w.node.cores == 64
        assert w.node.gpus == 4
        assert w.n_procs == 16
        assert w.threads_per_proc == 4

    def test_fig4_sweep_layouts(self):
        # The paper's Fig 4 sweep: 1..64 processes on one node, threads
        # shrinking so total compute is fixed.
        for procs in (1, 2, 4, 8, 16, 32, 64):
            w = SimWorld(n_nodes=1, procs_per_node=procs)
            assert w.n_procs == procs
            assert w.threads_per_proc == 64 // procs
            assert w.procs_per_gpu == procs / 4

    def test_fig5_layout(self):
        w = SimWorld(n_nodes=8, procs_per_node=16)
        assert w.n_procs == 128
        assert w.threads_per_proc == 4

    def test_too_many_procs(self):
        with pytest.raises(ValueError):
            SimWorld(n_nodes=1, procs_per_node=65)

    def test_bad_counts(self):
        with pytest.raises(ValueError):
            SimWorld(n_nodes=0)
        with pytest.raises(ValueError):
            SimWorld(procs_per_node=0)

    def test_no_gpu_node(self):
        w = SimWorld(node=NodeSpec(cores=64, gpus=0), procs_per_node=4)
        with pytest.raises(ValueError):
            _ = w.procs_per_gpu

    def test_bad_node_spec(self):
        with pytest.raises(ValueError):
            NodeSpec(cores=0)
        with pytest.raises(ValueError):
            NodeSpec(cpu_memory_bytes=0)

    def test_describe(self):
        assert "GPU" in SimWorld().describe()
