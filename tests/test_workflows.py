"""Tests for the satellite workflow assembly and figure reports."""

import numpy as np
import pytest

from repro.accel import SimulatedDevice
from repro.core import ImplementationType, MovementPolicy
from repro.kernels import BENCHMARK_KERNELS, KERNEL_NAMES
from repro.ompshim import OmpTargetRuntime
from repro.perfmodel import Backend
from repro.workflows.report import (
    fig2_loc_total,
    fig3_loc_per_kernel,
    fig4_process_sweep,
    fig5_full_benchmark,
    fig6_per_kernel,
    loc_per_kernel,
    loc_totals,
)
from repro.workflows.satellite import (
    SIZES,
    make_satellite_data,
    run_satellite_benchmark,
    satellite_processing_pipeline,
)


class TestSizes:
    def test_paper_medium_matches_5e9_samples(self):
        # §4: medium uses 5e9 samples (~1 TB).
        size = SIZES["paper_medium"]
        assert size.total_samples == pytest.approx(5.0e9, rel=0.01)
        assert size.total_bytes == pytest.approx(1.0e12, rel=0.01)

    def test_paper_large_is_10x_medium(self):
        assert SIZES["paper_large"].total_samples == pytest.approx(
            10 * SIZES["paper_medium"].total_samples, rel=0.01
        )

    def test_detector_count_couple_thousand(self):
        # "a typical instrument configuration with a couple thousand
        # detectors".
        assert 1000 <= SIZES["paper_medium"].n_detectors <= 4000

    def test_live_sizes_are_small(self):
        for name in ("tiny", "small", "medium_scaled"):
            assert SIZES[name].total_samples < 10_000_000


class TestMakeData:
    def test_contents(self):
        data = make_satellite_data(SIZES["tiny"])
        assert len(data.obs) == SIZES["tiny"].n_observations
        assert "sky_map" in data
        ob = data.obs[0]
        assert "boresight" in ob.shared
        assert "signal" in ob.detdata
        assert ob.detdata["signal"].std() > 0  # noise present

    def test_optional_pieces(self):
        data = make_satellite_data(SIZES["tiny"], with_noise=False, with_sky=False)
        assert "sky_map" not in data
        assert "signal" not in data.obs[0].detdata

    def test_realizations_differ(self):
        a = make_satellite_data(SIZES["tiny"], realization=0)
        b = make_satellite_data(SIZES["tiny"], realization=1)
        assert not np.array_equal(
            a.obs[0].detdata["signal"], b.obs[0].detdata["signal"]
        )

    def test_deterministic(self):
        a = make_satellite_data(SIZES["tiny"])
        b = make_satellite_data(SIZES["tiny"])
        np.testing.assert_array_equal(
            a.obs[0].detdata["signal"], b.obs[0].detdata["signal"]
        )


class TestPipelineAssembly:
    def test_operator_order(self):
        pipe = satellite_processing_pipeline(nside=16)
        names = [op.name for op in pipe.operators]
        assert names.index("pointing_detector") < names.index("pixels_healpix")
        assert names.index("pixels_healpix") < names.index("scan_map")
        assert names.index("noise_weight") < names.index("build_noise_weighted")

    def test_all_gpu_capable(self):
        pipe = satellite_processing_pipeline(nside=16)
        assert all(op.supports_accel() for op in pipe.operators)


class TestRunBenchmark:
    def test_result_keys(self):
        res = run_satellite_benchmark(SIZES["tiny"], ImplementationType.NUMPY)
        for key in ("zmap", "destriped_map", "wall_seconds", "mapmaker_iterations"):
            assert key in res

    def test_accel_adds_accounting(self):
        rt = OmpTargetRuntime(SimulatedDevice(memory_bytes=1 << 28))
        res = run_satellite_benchmark(
            SIZES["tiny"], ImplementationType.OMP_TARGET, accel=rt
        )
        assert res["virtual_seconds"] > 0
        assert "pixels_healpix" in res["virtual_regions"]
        assert res["kernels_launched"] > 0

    def test_policies_agree(self):
        rt1 = OmpTargetRuntime(SimulatedDevice(memory_bytes=1 << 28))
        a = run_satellite_benchmark(
            SIZES["tiny"],
            ImplementationType.OMP_TARGET,
            accel=rt1,
            policy=MovementPolicy.HYBRID,
        )
        rt2 = OmpTargetRuntime(SimulatedDevice(memory_bytes=1 << 28))
        b = run_satellite_benchmark(
            SIZES["tiny"],
            ImplementationType.OMP_TARGET,
            accel=rt2,
            policy=MovementPolicy.NAIVE,
        )
        np.testing.assert_allclose(a["zmap"], b["zmap"], atol=1e-12)

    def test_no_mapmaking_mode(self):
        res = run_satellite_benchmark(
            SIZES["tiny"], ImplementationType.NUMPY, mapmaking=False
        )
        assert "destriped_map" not in res
        assert np.any(res["zmap"] != 0)


class TestLocReports:
    def test_loc_per_kernel_covers_everything(self):
        for impl in ("cpu_baseline", "jax", "omp_target"):
            per = loc_per_kernel(impl)
            assert set(per) == set(KERNEL_NAMES)
            assert all(v > 0 for v in per.values())

    def test_loc_totals_consistent(self):
        for impl in ("cpu_baseline", "jax", "omp_target"):
            kernel, total = loc_totals(impl)
            assert total > kernel > 0
            assert kernel == sum(loc_per_kernel(impl).values())

    def test_fig2_rows(self):
        text, rows = fig2_loc_total()
        assert set(rows) == {"cpu_baseline", "jax", "omp_target"}
        assert "Fig 2" in text

    def test_fig3_table(self):
        text, per = fig3_loc_per_kernel()
        assert "pixels_healpix" in text
        assert per["omp_target"]["scan_map"] > 0


class TestFigureReports:
    def test_fig4_text_marks_oom(self):
        text, sweep = fig4_process_sweep()
        assert "OOM" in text
        assert len(sweep) == 21

    def test_fig4_no_mps_variant(self):
        text, _ = fig4_process_sweep(mps_enabled=False)
        assert "MPS OFF" in text

    def test_fig5_contains_backends(self):
        text, times = fig5_full_benchmark()
        assert "JAX (GPU)" in text
        assert "Amdahl" in text
        assert times[Backend.OMP] < times[Backend.JAX]

    def test_fig6_rows(self):
        text, times = fig6_per_kernel()
        for name in BENCHMARK_KERNELS:
            assert name in text
        assert "accel_data_update_device" in text
        assert set(times) == {"cpu", "jax", "omp"}
