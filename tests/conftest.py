"""Shared fixtures: the process/shm/store leak sentinel.

Every multiprocess layer in this repo promises leak-free teardown --
worker pools drain or terminate their children, slabs are unlinked by
their owners, crash paths run under ``slab_until_registered``.  The
``leak_sentinel`` fixture turns that promise into a per-test gate:
any test that leaves a live child process, a ``/dev/shm`` slab
segment, or orphaned store state (an undrained shadow chunk, a chunk
file no manifest references) behind fails, naming what leaked.

Opt in per module with::

    pytestmark = pytest.mark.usefixtures("leak_sentinel")

(applied to ``test_parallel.py``, ``test_serve.py``, and
``test_store.py`` -- the suites that spawn processes, create segments,
or commit chunks).
"""

import gc
import multiprocessing as mp
import os
import time

import pytest

_SHM_DIR = "/dev/shm"

#: Seconds to let multiprocessing finalizers settle before declaring a
#: leak: queue feeder threads and resource-tracker unlinks are async.
_SETTLE_S = 5.0


def _shm_entries():
    try:
        return set(os.listdir(_SHM_DIR))
    except OSError:
        return set()


@pytest.fixture
def leak_sentinel():
    """Fail the test if it leaks processes, shm segments, or store state."""
    from repro.store import leak_report, reset_leak_registry

    # Each test audits only its own stores.
    reset_leak_registry()
    shm_before = _shm_entries()
    children_before = {p.pid for p in mp.active_children()}

    yield

    store_leaks = leak_report()
    reset_leak_registry()

    deadline = time.monotonic() + _SETTLE_S
    leaked_procs = leaked_shm = None
    while time.monotonic() < deadline:
        gc.collect()
        # sem.mp-* entries are multiprocessing's own semaphores, reclaimed
        # at interpreter finalization; only slab segments count as leaks.
        leaked_shm = sorted(
            e for e in _shm_entries() - shm_before if not e.startswith("sem.mp-")
        )
        leaked_procs = sorted(
            p.pid for p in mp.active_children() if p.pid not in children_before
        )
        if not leaked_shm and not leaked_procs:
            break
        time.sleep(0.1)

    problems = []
    if leaked_procs:
        problems.append(f"live child processes {leaked_procs}")
    if leaked_shm:
        problems.append(f"/dev/shm segments {leaked_shm}")
    if store_leaks:
        problems.append(f"store state ({'; '.join(store_leaks)})")
    if problems:
        pytest.fail(f"test leaked: {'; '.join(problems)}", pytrace=False)
