"""Smoke tests: every example script runs to completion.

Examples are part of the public deliverable; these tests keep them from
rotting as the library evolves.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def run_example(name: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )


def test_examples_discovered():
    assert len(EXAMPLES) >= 5
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name):
    args = ("tiny", "omp_target") if name == "satellite_benchmark.py" else ()
    result = run_example(name, *args)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must produce output"


def test_satellite_benchmark_rejects_bad_backend():
    result = run_example("satellite_benchmark.py", "tiny", "cuda")
    assert result.returncode != 0
