"""Tests for asynchronous submission and host/device overlap."""

import numpy as np
import pytest

from repro.accel import SimulatedDevice
from repro.ompshim import OmpTargetRuntime


@pytest.fixture
def dev():
    return SimulatedDevice(memory_bytes=1 << 22)


class TestDeviceAsync:
    def test_async_returns_immediately(self, dev):
        t0 = dev.clock.now
        dev.launch_async("k", 1.0)
        # Host paid only the submission overhead, not the kernel second.
        assert dev.clock.now - t0 < 1e-3
        assert dev.busy_until > dev.clock.now

    def test_synchronize_waits(self, dev):
        dev.launch_async("k", 1.0)
        dev.synchronize()
        assert np.isclose(dev.clock.now, 1.0 + dev.spec.kernel_launch_overhead_s)
        assert dev.busy_until == dev.clock.now
        assert dev.clock.region_time("device_synchronize") > 0.9

    def test_overlap_with_host_work(self, dev):
        """Host work during an async kernel is hidden."""
        dev.launch_async("k", 1.0)
        dev.clock.charge("host_work", 0.8)  # overlaps the kernel
        dev.synchronize()
        # Total ~= max(kernel, host) not their sum.
        assert dev.clock.now < 1.1

    def test_back_to_back_async_queue(self, dev):
        dev.launch_async("a", 0.5)
        dev.launch_async("b", 0.5)  # queues behind a
        dev.synchronize()
        assert dev.clock.now >= 1.0

    def test_sync_launch_waits_for_async(self, dev):
        dev.launch_async("a", 1.0)
        dev.launch("b", 0.1)
        # b could only run after a finished.
        assert dev.clock.now >= 1.1

    def test_transfers_synchronize(self, dev):
        buf = dev.alloc(64)
        dev.launch_async("k", 0.5)
        dev.update_host(buf, np.zeros(8))
        assert dev.clock.now >= 0.5

    def test_synchronize_idempotent(self, dev):
        dev.launch_async("k", 0.2)
        dev.synchronize()
        t = dev.clock.now
        dev.synchronize()
        assert dev.clock.now == t

    def test_reset_clears_queue(self, dev):
        dev.launch_async("k", 5.0)
        dev.reset_all()
        assert dev.busy_until == 0.0

    def test_bad_args(self, dev):
        with pytest.raises(ValueError):
            dev.launch_async("k", -1.0)
        with pytest.raises(ValueError):
            dev.launch_async("k", 1.0, n_launches=0)


class TestRuntimeNowait:
    def test_nowait_results_after_taskwait(self):
        rt = OmpTargetRuntime(SimulatedDevice(memory_bytes=1 << 22))
        x = np.zeros((1, 1, 64))
        with rt.target_data(tofrom=[x]):
            d = rt.device_view(x)

            def body(i, j, k):
                d[i, j, k] = 7.0

            rt.target_teams_distribute_parallel_for(
                "k", (1, 1, 64), body, nowait=True
            )
            rt.taskwait()
        assert np.all(x == 7.0)

    def test_nowait_overlap_beats_sync(self):
        """A submit-then-host-work loop is faster with nowait."""

        def run(nowait):
            rt = OmpTargetRuntime(SimulatedDevice(memory_bytes=1 << 22))
            for _ in range(4):
                rt.target_teams_distribute_parallel_for(
                    "k",
                    (64, 64, 4096),
                    lambda i, j, k: None,
                    bytes_per_iteration=200.0,
                    nowait=nowait,
                )
                rt.device.clock.charge("host_side_work", 1e-3)
            rt.taskwait()
            return rt.device.clock.now

        assert run(True) < run(False)

    def test_exit_data_waits_for_async_kernels(self):
        rt = OmpTargetRuntime(SimulatedDevice(memory_bytes=1 << 22))
        x = np.zeros(64)
        rt.target_enter_data(to=[x])
        rt.target_teams_distribute_parallel_for(
            "k", (1, 1, 64), lambda i, j, k: None, nowait=True
        )
        busy = rt.device.busy_until
        assert busy > rt.device.clock.now
        rt.target_exit_data(from_=[x])  # the copy-back must sync first
        assert rt.device.clock.now >= busy
