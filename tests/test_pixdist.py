"""Tests for the distributed pixel domain (submaps)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pixdist import PixelDistribution


class TestConstruction:
    def test_submap_sizing(self):
        pd = PixelDistribution(n_pix=1000, n_submap=10)
        assert pd.submap_pixels == 100
        assert pd.n_local_submaps == 0

    def test_ragged_last_submap(self):
        pd = PixelDistribution(n_pix=1001, n_submap=10)
        assert pd.submap_pixels == 101

    def test_bad_args(self):
        with pytest.raises(ValueError):
            PixelDistribution(0)
        with pytest.raises(ValueError):
            PixelDistribution(10, n_submap=0)
        with pytest.raises(ValueError):
            PixelDistribution(10, n_submap=11)


class TestCoverage:
    def test_cover_allocates_hit_submaps(self):
        pd = PixelDistribution(n_pix=1000, n_submap=10)
        pd.cover(np.array([5, 150, 151, 999]))
        assert pd.n_local_submaps == 3  # submaps 0, 1, 9
        assert set(pd.local_submaps.tolist()) == {0, 1, 9}

    def test_cover_ignores_negative(self):
        pd = PixelDistribution(n_pix=100, n_submap=10)
        pd.cover(np.array([-1, -1, 55]))
        assert pd.n_local_submaps == 1

    def test_cover_idempotent(self):
        pd = PixelDistribution(n_pix=100, n_submap=10)
        pd.cover(np.array([5]))
        pd.cover(np.array([7]))
        assert pd.n_local_submaps == 1

    def test_cover_all(self):
        pd = PixelDistribution(n_pix=100, n_submap=10)
        pd.cover_all()
        assert pd.n_local_submaps == 10
        assert pd.memory_savings() == 0.0

    def test_memory_savings(self):
        pd = PixelDistribution(n_pix=1000, n_submap=10)
        pd.cover(np.array([0]))
        assert pd.memory_savings() == pytest.approx(0.9)

    def test_out_of_range_pixel(self):
        pd = PixelDistribution(n_pix=100, n_submap=10)
        with pytest.raises(ValueError):
            pd.submap_of(np.array([100]))


class TestTranslation:
    def test_roundtrip(self):
        pd = PixelDistribution(n_pix=1000, n_submap=10)
        pix = np.array([5, 150, 151, 999, -1])
        pd.cover(pix)
        local = pd.global_to_local(pix)
        assert local[-1] == -1
        back = pd.local_to_global(local)
        np.testing.assert_array_equal(back, pix)

    def test_uncovered_raises(self):
        pd = PixelDistribution(n_pix=1000, n_submap=10)
        pd.cover(np.array([5]))
        with pytest.raises(ValueError, match="uncovered"):
            pd.global_to_local(np.array([500]))

    def test_local_indices_compact(self):
        pd = PixelDistribution(n_pix=1000, n_submap=10)
        pd.cover(np.array([950]))
        local = pd.global_to_local(np.array([950]))
        assert 0 <= local[0] < pd.n_local_pixels

    @settings(max_examples=60, deadline=None)
    @given(
        pix=st.lists(st.integers(0, 999), min_size=1, max_size=40),
        n_submap=st.integers(1, 50),
    )
    def test_roundtrip_property(self, pix, n_submap):
        pd = PixelDistribution(n_pix=1000, n_submap=n_submap)
        arr = np.array(pix, dtype=np.int64)
        pd.cover(arr)
        np.testing.assert_array_equal(pd.local_to_global(pd.global_to_local(arr)), arr)


class TestMapStorage:
    def test_zeros_shape(self):
        pd = PixelDistribution(n_pix=1000, n_submap=10)
        pd.cover(np.array([0, 500]))
        assert pd.zeros(nnz=3).shape == (200, 3)
        assert pd.zeros().shape == (200,)

    def test_expand_restrict_roundtrip(self):
        pd = PixelDistribution(n_pix=1000, n_submap=10)
        pd.cover(np.array([50, 450, 950]))
        rng = np.random.default_rng(1)
        local = rng.normal(size=(pd.n_local_pixels, 3))
        full = pd.expand(local)
        assert full.shape == (1000, 3)
        np.testing.assert_array_equal(pd.restrict(full), local)

    def test_expand_fills_uncovered(self):
        pd = PixelDistribution(n_pix=100, n_submap=10)
        pd.cover(np.array([0]))
        full = pd.expand(np.ones(pd.n_local_pixels), fill=-5.0)
        assert np.all(full[:10] == 1.0)
        assert np.all(full[10:] == -5.0)

    def test_shape_mismatches(self):
        pd = PixelDistribution(n_pix=100, n_submap=10)
        pd.cover(np.array([0]))
        with pytest.raises(ValueError):
            pd.expand(np.zeros(3))
        with pytest.raises(ValueError):
            pd.restrict(np.zeros(99))


class TestKernelIntegration:
    def test_local_maps_through_kernels(self):
        """Kernels operate on local submap indices transparently."""
        import repro.kernels  # noqa: F401  (populate the registry)
        from repro.core.dispatch import ImplementationType, kernel_registry

        n_pix = 12 * 16 * 16
        pd = PixelDistribution(n_pix=n_pix, n_submap=64)
        rng = np.random.default_rng(3)
        # Pointing hits a small sky patch (a few submaps).
        global_pix = rng.integers(0, n_pix // 16, (3, 200))
        pd.cover(global_pix)
        assert pd.memory_savings() > 0.5

        local_pix = pd.global_to_local(global_pix)
        weights = rng.normal(size=(3, 200, 3))
        tod = rng.normal(size=(3, 200))
        starts = np.array([0], dtype=np.int64)
        stops = np.array([200], dtype=np.int64)

        # Accumulate into a LOCAL map via the ported kernel.
        zlocal = pd.zeros(nnz=3)
        fn = kernel_registry.get("build_noise_weighted", ImplementationType.NUMPY)
        fn(
            zmap=zlocal,
            pixels=local_pix,
            weights=weights,
            tod=tod,
            det_scale=np.ones(3),
            starts=starts,
            stops=stops,
        )
        # Reference: accumulate into the FULL map with global pixels.
        zfull = np.zeros((n_pix, 3))
        fn(
            zmap=zfull,
            pixels=global_pix,
            weights=weights,
            tod=tod,
            det_scale=np.ones(3),
            starts=starts,
            stops=stops,
        )
        np.testing.assert_allclose(pd.expand(zlocal), zfull, atol=1e-12)
