"""Tests for observation/map serialization."""

import numpy as np
import pytest

from repro.core import Data, fake_hexagon_focalplane
from repro.io import (
    load_data,
    load_map,
    load_observation,
    save_data,
    save_map,
    save_observation,
)
from repro.ops import DefaultNoiseModel, SimNoise, SimSatellite, create_fake_sky


@pytest.fixture
def data():
    fp = fake_hexagon_focalplane(n_pixels=2, sample_rate=10.0)
    d = Data()
    SimSatellite(fp, n_observations=2, n_samples=500).apply(d)
    DefaultNoiseModel().apply(d)
    SimNoise().apply(d)
    d["sky_map"] = create_fake_sky(8, seed=1)
    d["not_an_array"] = {"config": True}
    return d


class TestObservationRoundtrip:
    def test_roundtrip_arrays(self, data, tmp_path):
        ob = data.obs[0]
        path = save_observation(ob, tmp_path / "obs0")
        assert path.suffix == ".npz"
        back = load_observation(path)
        assert back.name == ob.name
        assert back.uid == ob.uid
        assert back.n_samples == ob.n_samples
        for key in ob.shared:
            np.testing.assert_array_equal(back.shared[key], ob.shared[key])
        for key in ob.detdata:
            np.testing.assert_array_equal(back.detdata[key], ob.detdata[key])

    def test_roundtrip_intervals(self, data, tmp_path):
        ob = data.obs[0]
        back = load_observation(save_observation(ob, tmp_path / "obs0"))
        assert back.intervals["scan"] == ob.intervals["scan"]

    def test_roundtrip_focalplane(self, data, tmp_path):
        ob = data.obs[0]
        back = load_observation(save_observation(ob, tmp_path / "obs0"))
        assert back.detectors == ob.detectors
        np.testing.assert_allclose(
            back.focalplane.quat_array(), ob.focalplane.quat_array()
        )
        np.testing.assert_allclose(
            back.focalplane.detector_weights(), ob.focalplane.detector_weights()
        )

    def test_bad_format_rejected(self, tmp_path):
        import json

        header = np.frombuffer(json.dumps({"format": 99}).encode(), dtype=np.uint8)
        np.savez(tmp_path / "bad.npz", _header=header, _fp_quats=np.zeros((1, 4)))
        with pytest.raises(ValueError, match="format version 99"):
            load_observation(tmp_path / "bad.npz")

    def test_version_error_names_supported_versions(self, tmp_path):
        import json

        header = np.frombuffer(json.dumps({"format": 99}).encode(), dtype=np.uint8)
        np.savez(tmp_path / "bad.npz", _header=header, _fp_quats=np.zeros((1, 4)))
        with pytest.raises(ValueError, match=r"reads versions \{1, 2\}"):
            load_observation(tmp_path / "bad.npz")

    def test_corrupt_array_fails_naming_the_key(self, data, tmp_path):
        """A flipped bit in one stored array is caught by its checksum."""
        path = save_observation(data.obs[0], tmp_path / "obs0")
        with np.load(path) as volume:
            arrays = {k: np.array(volume[k]) for k in volume.files}
        arrays["detdata/signal"][0, 3] += 1.0e-9  # rot, header untouched
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError, match=r"'detdata/signal' CRC mismatch"):
            load_observation(path)

    def test_format1_volume_without_checksums_loads(self, data, tmp_path):
        """Pre-checksum volumes (format 1) stay readable."""
        import json

        ob = data.obs[0]
        path = save_observation(ob, tmp_path / "obs0")
        with np.load(path) as volume:
            arrays = {k: np.array(volume[k]) for k in volume.files}
        header = json.loads(bytes(arrays.pop("_header").tobytes()).decode())
        header["format"] = 1
        del header["checksums"]
        arrays["_header"] = np.frombuffer(
            json.dumps(header).encode(), dtype=np.uint8
        )
        np.savez_compressed(path, **arrays)
        back = load_observation(path)
        np.testing.assert_array_equal(
            back.detdata["signal"], ob.detdata["signal"]
        )


class TestDataRoundtrip:
    def test_roundtrip(self, data, tmp_path):
        save_data(data, tmp_path / "vol")
        back = load_data(tmp_path / "vol")
        assert len(back.obs) == len(data.obs)
        np.testing.assert_array_equal(back["sky_map"], data["sky_map"])
        np.testing.assert_array_equal(
            back.obs[1].detdata["signal"], data.obs[1].detdata["signal"]
        )

    def test_non_array_meta_skipped(self, data, tmp_path):
        save_data(data, tmp_path / "vol")
        back = load_data(tmp_path / "vol")
        assert "not_an_array" not in back

    def test_index_written(self, data, tmp_path):
        save_data(data, tmp_path / "vol")
        assert (tmp_path / "vol" / "index.json").exists()

    def test_index_version_error_names_versions(self, data, tmp_path):
        import json

        save_data(data, tmp_path / "vol")
        index_path = tmp_path / "vol" / "index.json"
        index = json.loads(index_path.read_text())
        index["format"] = 7
        index_path.write_text(json.dumps(index))
        with pytest.raises(
            ValueError, match=r"version 7; this build reads versions \{1, 2\}"
        ):
            load_data(tmp_path / "vol")

    def test_corrupt_meta_file_fails_naming_the_key(self, data, tmp_path):
        save_data(data, tmp_path / "vol")
        target = tmp_path / "vol" / "meta_sky_map.npy"
        blob = bytearray(target.read_bytes())
        blob[-2] ^= 0x10
        target.write_bytes(bytes(blob))
        with pytest.raises(ValueError, match=r"'sky_map' CRC mismatch"):
            load_data(tmp_path / "vol")

    def test_processing_continues_after_reload(self, data, tmp_path):
        """Loaded data flows through the pipeline identically."""
        from repro.healpix import npix as healpix_npix
        from repro.ops import PixelsHealpix, PointingDetector

        save_data(data, tmp_path / "vol")
        back = load_data(tmp_path / "vol")
        for d in (data, back):
            PointingDetector().apply(d)
            PixelsHealpix(nside=8, nest=True).apply(d)
        np.testing.assert_array_equal(
            back.obs[0].detdata["pixels"], data.obs[0].detdata["pixels"]
        )


class TestMapRoundtrip:
    def test_roundtrip(self, tmp_path):
        sky = create_fake_sky(16, seed=2)
        path = save_map(sky, tmp_path / "sky", nside=16, nest=True)
        m, nside, nest = load_map(path)
        np.testing.assert_array_equal(m, sky)
        assert nside == 16
        assert nest is True

    def test_ring_flag(self, tmp_path):
        path = save_map(np.zeros((12, 3)), tmp_path / "m", nside=1, nest=False)
        _, _, nest = load_map(path)
        assert nest is False
