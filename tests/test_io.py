"""Tests for observation/map serialization."""

import numpy as np
import pytest

from repro.core import Data, fake_hexagon_focalplane
from repro.io import (
    load_data,
    load_map,
    load_observation,
    save_data,
    save_map,
    save_observation,
)
from repro.ops import DefaultNoiseModel, SimNoise, SimSatellite, create_fake_sky


@pytest.fixture
def data():
    fp = fake_hexagon_focalplane(n_pixels=2, sample_rate=10.0)
    d = Data()
    SimSatellite(fp, n_observations=2, n_samples=500).apply(d)
    DefaultNoiseModel().apply(d)
    SimNoise().apply(d)
    d["sky_map"] = create_fake_sky(8, seed=1)
    d["not_an_array"] = {"config": True}
    return d


class TestObservationRoundtrip:
    def test_roundtrip_arrays(self, data, tmp_path):
        ob = data.obs[0]
        path = save_observation(ob, tmp_path / "obs0")
        assert path.suffix == ".npz"
        back = load_observation(path)
        assert back.name == ob.name
        assert back.uid == ob.uid
        assert back.n_samples == ob.n_samples
        for key in ob.shared:
            np.testing.assert_array_equal(back.shared[key], ob.shared[key])
        for key in ob.detdata:
            np.testing.assert_array_equal(back.detdata[key], ob.detdata[key])

    def test_roundtrip_intervals(self, data, tmp_path):
        ob = data.obs[0]
        back = load_observation(save_observation(ob, tmp_path / "obs0"))
        assert back.intervals["scan"] == ob.intervals["scan"]

    def test_roundtrip_focalplane(self, data, tmp_path):
        ob = data.obs[0]
        back = load_observation(save_observation(ob, tmp_path / "obs0"))
        assert back.detectors == ob.detectors
        np.testing.assert_allclose(
            back.focalplane.quat_array(), ob.focalplane.quat_array()
        )
        np.testing.assert_allclose(
            back.focalplane.detector_weights(), ob.focalplane.detector_weights()
        )

    def test_bad_format_rejected(self, tmp_path):
        import json

        header = np.frombuffer(json.dumps({"format": 99}).encode(), dtype=np.uint8)
        np.savez(tmp_path / "bad.npz", _header=header, _fp_quats=np.zeros((1, 4)))
        with pytest.raises(ValueError, match="format"):
            load_observation(tmp_path / "bad.npz")


class TestDataRoundtrip:
    def test_roundtrip(self, data, tmp_path):
        save_data(data, tmp_path / "vol")
        back = load_data(tmp_path / "vol")
        assert len(back.obs) == len(data.obs)
        np.testing.assert_array_equal(back["sky_map"], data["sky_map"])
        np.testing.assert_array_equal(
            back.obs[1].detdata["signal"], data.obs[1].detdata["signal"]
        )

    def test_non_array_meta_skipped(self, data, tmp_path):
        save_data(data, tmp_path / "vol")
        back = load_data(tmp_path / "vol")
        assert "not_an_array" not in back

    def test_index_written(self, data, tmp_path):
        save_data(data, tmp_path / "vol")
        assert (tmp_path / "vol" / "index.json").exists()

    def test_processing_continues_after_reload(self, data, tmp_path):
        """Loaded data flows through the pipeline identically."""
        from repro.healpix import npix as healpix_npix
        from repro.ops import PixelsHealpix, PointingDetector

        save_data(data, tmp_path / "vol")
        back = load_data(tmp_path / "vol")
        for d in (data, back):
            PointingDetector().apply(d)
            PixelsHealpix(nside=8, nest=True).apply(d)
        np.testing.assert_array_equal(
            back.obs[0].detdata["pixels"], data.obs[0].detdata["pixels"]
        )


class TestMapRoundtrip:
    def test_roundtrip(self, tmp_path):
        sky = create_fake_sky(16, seed=2)
        path = save_map(sky, tmp_path / "sky", nside=16, nest=True)
        m, nside, nest = load_map(path)
        np.testing.assert_array_equal(m, sky)
        assert nside == 16
        assert nest is True

    def test_ring_flag(self, tmp_path):
        path = save_map(np.zeros((12, 3)), tmp_path / "m", nside=1, nest=False)
        _, _, nest = load_map(path)
        assert nest is False
