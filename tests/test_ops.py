"""Tests for the operators: simulation, processing, map-making."""

import numpy as np
import pytest

from repro.core import Data, ImplementationType, fake_hexagon_focalplane, use_implementation
from repro.healpix import npix as healpix_npix
from repro.math import qa
from repro.ops import (
    BuildNoiseWeighted,
    BinMap,
    Copy,
    CovarianceAndHits,
    DefaultNoiseModel,
    Delete,
    MapMaker,
    MemoryCounter,
    NoiseWeight,
    PixelsHealpix,
    PointingDetector,
    ScanMap,
    SimNoise,
    SimSatellite,
    StokesWeights,
    create_fake_sky,
)
from repro.ops.sim_satellite import satellite_boresight

NSIDE = 16
NPIX = healpix_npix(NSIDE)


@pytest.fixture
def data():
    fp = fake_hexagon_focalplane(n_pixels=2, sample_rate=10.0)
    d = Data()
    SimSatellite(fp, n_observations=2, n_samples=600, scan_samples=150, gap_samples=20).apply(d)
    DefaultNoiseModel().apply(d)
    return d


class TestSimSatellite:
    def test_observations_created(self, data):
        assert len(data.obs) == 2
        ob = data.obs[0]
        assert set(ob.shared) == {"times", "boresight", "hwp_angle", "flags"}
        assert "scan" in ob.intervals

    def test_boresight_unit_quaternions(self, data):
        q = data.obs[0].shared["boresight"]
        assert np.allclose(qa.amplitude(q), 1.0)

    def test_boresight_moves(self, data):
        d = qa.rotate_zaxis(data.obs[0].shared["boresight"])
        # Consecutive directions differ (the telescope spins).
        step = np.linalg.norm(np.diff(d, axis=0), axis=1)
        assert np.all(step > 0)

    def test_sky_coverage(self):
        # Over a full precession period the cycloid covers a large sky
        # fraction (a key property of the satellite strategy).
        times = np.linspace(0, 3600.0, 200000)
        bore = satellite_boresight(times)
        from repro.healpix import vec2pix

        pix = vec2pix(8, qa.rotate_zaxis(bore))
        # One precession period covers the ring within prec+spin = 90
        # degrees of the anti-solar axis: about half the sphere (the yearly
        # orbital drift completes coverage over a mission).
        assert len(np.unique(pix)) > 0.45 * healpix_npix(8)

    def test_gap_samples_flagged(self, data):
        ob = data.obs[0]
        scan_mask = ob.intervals["scan"].mask(ob.n_samples)
        flags = ob.shared["flags"]
        assert np.all(flags[~scan_mask] & SimSatellite.SHARED_FLAG_REPOINT)

    def test_hwp_angle_range(self, data):
        hwp = data.obs[0].shared["hwp_angle"]
        assert np.all(hwp >= 0) and np.all(hwp < 2 * np.pi)

    def test_observation_distribution(self):
        fp = fake_hexagon_focalplane(n_pixels=1)
        d = Data()
        SimSatellite(fp, n_observations=5, n_samples=100).apply(d)
        assert [ob.uid for ob in d.obs] == [0, 1, 2, 3, 4]

    def test_bad_args(self):
        fp = fake_hexagon_focalplane(n_pixels=1)
        with pytest.raises(ValueError):
            SimSatellite(fp, n_observations=0)


class TestSimNoise:
    def test_noise_added(self, data):
        SimNoise().apply(data)
        sig = data.obs[0].detdata["signal"]
        assert sig.std() > 0

    def test_reproducible(self, data):
        SimNoise().apply(data)
        first = data.obs[0].detdata["signal"].copy()
        data.obs[0].detdata["signal"][:] = 0.0
        SimNoise().apply(data)
        assert np.array_equal(data.obs[0].detdata["signal"], first)

    def test_realizations_differ(self, data):
        SimNoise(realization=0).apply(data)
        a = data.obs[0].detdata["signal"].copy()
        data.obs[0].detdata["signal"][:] = 0.0
        SimNoise(realization=1).apply(data)
        assert not np.array_equal(data.obs[0].detdata["signal"], a)

    def test_detectors_independent(self, data):
        SimNoise().apply(data)
        sig = data.obs[0].detdata["signal"]
        corr = np.corrcoef(sig[0], sig[1])[0, 1]
        assert abs(corr) < 0.2

    def test_requires_noise_model(self):
        fp = fake_hexagon_focalplane(n_pixels=1)
        d = Data()
        SimSatellite(fp, n_observations=1, n_samples=100).apply(d)
        with pytest.raises(RuntimeError):
            SimNoise().apply(d)


class TestPointingChain:
    def _run_chain(self, data, impl=ImplementationType.NUMPY):
        with use_implementation(impl):
            PointingDetector().apply(data)
            PixelsHealpix(nside=NSIDE, nest=True).apply(data)
            StokesWeights(mode="IQU").apply(data)

    def test_quats_created(self, data):
        self._run_chain(data)
        q = data.obs[0].detdata["quats"]
        assert q.shape == (2 * 2, 600, 4)
        scan_mask = data.obs[0].intervals["scan"].mask(600)
        assert np.allclose(qa.amplitude(q[:, scan_mask]), 1.0)

    def test_pixels_in_range(self, data):
        self._run_chain(data)
        pix = data.obs[0].detdata["pixels"]
        scan_mask = data.obs[0].intervals["scan"].mask(600)
        inside = pix[:, scan_mask]
        assert np.all(inside < NPIX)
        assert np.all(inside >= -1)

    def test_flagged_samples_negative_pixel(self, data):
        self._run_chain(data)
        ob = data.obs[0]
        flagged = (ob.shared["flags"] & 1) != 0
        scan_mask = ob.intervals["scan"].mask(600)
        both = flagged & scan_mask
        if np.any(both):
            assert np.all(ob.detdata["pixels"][:, both] == -1)

    def test_weights_structure(self, data):
        self._run_chain(data)
        w = data.obs[0].detdata["weights"]
        scan_mask = data.obs[0].intervals["scan"].mask(600)
        assert np.allclose(w[:, scan_mask, 0], 1.0)  # I weight = cal
        qsum = w[:, scan_mask, 1] ** 2 + w[:, scan_mask, 2] ** 2
        assert np.allclose(qsum, 1.0)  # eps=0: Q^2+U^2 = eta^2 = 1

    def test_stokes_mode_I(self, data):
        PointingDetector().apply(data)
        StokesWeights(mode="I", weights="wI").apply(data)
        w = data.obs[0].detdata["wI"]
        scan_mask = data.obs[0].intervals["scan"].mask(600)
        assert np.allclose(w[:, scan_mask], 1.0)

    def test_stokes_bad_mode(self):
        with pytest.raises(ValueError):
            StokesWeights(mode="IQUV")


class TestScanAndBin:
    def _full_chain(self, data):
        data["sky_map"] = create_fake_sky(NSIDE, seed=5)
        PointingDetector().apply(data)
        PixelsHealpix(nside=NSIDE, nest=True).apply(data)
        StokesWeights(mode="IQU").apply(data)
        ScanMap().apply(data)

    def test_scan_map_signal(self, data):
        self._full_chain(data)
        sig = data.obs[0].detdata["signal"]
        scan_mask = data.obs[0].intervals["scan"].mask(600)
        assert sig[:, scan_mask].std() > 0

    def test_scan_map_needs_map(self, data):
        PointingDetector().apply(data)
        PixelsHealpix(nside=NSIDE).apply(data)
        StokesWeights(mode="IQU").apply(data)
        with pytest.raises(RuntimeError):
            ScanMap().apply(data)

    def test_noise_weight_scales(self, data):
        self._full_chain(data)
        before = data.obs[0].detdata["signal"].copy()
        NoiseWeight().apply(data)
        after = data.obs[0].detdata["signal"]
        w = data.obs[0].focalplane.detector_weights()
        scan_mask = data.obs[0].intervals["scan"].mask(600)
        assert np.allclose(after[:, scan_mask], before[:, scan_mask] * w[:, None])

    def test_build_noise_weighted_accumulates(self, data):
        self._full_chain(data)
        NoiseWeight().apply(data)
        BuildNoiseWeighted(n_pix=NPIX, nnz=3).apply(data)
        assert np.any(data["zmap"] != 0)

    def test_covariance_and_hits(self, data):
        self._full_chain(data)
        CovarianceAndHits(n_pix=NPIX, nnz=3).apply(data)
        hits = data["hits"]
        scan_samples = sum(
            ob.intervals["scan"].n_samples * ob.n_detectors for ob in data.obs
        )
        flagged = sum(
            int(
                np.sum(
                    (ob.shared["flags"] & 1 != 0) & ob.intervals["scan"].mask(ob.n_samples)
                )
            )
            * ob.n_detectors
            for ob in data.obs
        )
        assert hits.sum() == scan_samples - flagged

    def test_binmap_recovers_sky(self):
        """Noiseless binned map equals the input sky on well-hit pixels."""
        fp = fake_hexagon_focalplane(n_pixels=4, sample_rate=10.0)
        d = Data()
        SimSatellite(
            fp, n_observations=3, n_samples=4000, scan_samples=1000, gap_samples=10,
            flag_fraction=0.0,
        ).apply(d)
        DefaultNoiseModel().apply(d)
        d["sky_map"] = create_fake_sky(8, seed=3)
        PointingDetector().apply(d)
        PixelsHealpix(nside=8, nest=True).apply(d)
        StokesWeights(mode="IQU").apply(d)
        ScanMap().apply(d)
        NoiseWeight().apply(d)
        n_pix = healpix_npix(8)
        # NoiseWeight already applied N^-1: do not weight again.
        BuildNoiseWeighted(n_pix=n_pix, nnz=3, use_det_weights=False).apply(d)
        CovarianceAndHits(n_pix=n_pix, nnz=3).apply(d)
        BinMap().apply(d)
        binned = d["binned_map"]
        hits = d["hits"]
        well_hit = (hits > 20) & np.any(binned != 0, axis=1)
        assert well_hit.sum() > 10
        np.testing.assert_allclose(
            binned[well_hit], d["sky_map"][well_hit], rtol=1e-6, atol=1e-8
        )


class TestMapMaker:
    def test_destriping_reduces_offsets(self):
        """Inject a strong per-detector offset drift; destriping removes it."""
        fp = fake_hexagon_focalplane(n_pixels=2, sample_rate=10.0)
        d = Data()
        SimSatellite(
            fp, n_observations=2, n_samples=2000, scan_samples=500, gap_samples=10,
            flag_fraction=0.0,
        ).apply(d)
        DefaultNoiseModel().apply(d)
        d["sky_map"] = create_fake_sky(8, seed=9)
        PointingDetector().apply(d)
        PixelsHealpix(nside=8, nest=True).apply(d)
        StokesWeights(mode="IQU").apply(d)
        ScanMap().apply(d)
        # Add step-like baseline drifts that the offset template models.
        for ob in d.obs:
            steps = np.repeat(
                np.linspace(-3, 3, 20), ob.n_samples // 20 + 1
            )[: ob.n_samples]
            ob.detdata["signal"] += steps

        mapper = MapMaker(n_pix=healpix_npix(8), step_length=100, max_iterations=25)
        mapper.apply(d)
        assert mapper.n_iterations_run > 0
        amps = d["amplitudes"]
        assert amps.std() > 0.1  # it actually fit the injected steps
        # The destriped map should be close to the sky on well-hit pixels.
        CovarianceAndHits(n_pix=healpix_npix(8), nnz=3).apply(d)
        hits = d["hits"]
        m = d["destriped_map"]
        good = (hits > 50) & np.any(m != 0, axis=1)
        assert good.sum() > 10
        resid = m[good, 0] - d["sky_map"][good, 0]
        raw_offset_scale = 3.0
        assert np.abs(resid).mean() < 0.2 * raw_offset_scale

    def test_mapmaker_runs_all_impls(self):
        fp = fake_hexagon_focalplane(n_pixels=1, sample_rate=10.0)
        base = None
        for impl in (
            ImplementationType.NUMPY,
            ImplementationType.JAX,
            ImplementationType.OMP_TARGET,
        ):
            d = Data()
            SimSatellite(fp, n_observations=1, n_samples=500, flag_fraction=0.0).apply(d)
            DefaultNoiseModel().apply(d)
            d["sky_map"] = create_fake_sky(8, seed=2)
            with use_implementation(impl):
                PointingDetector().apply(d)
                PixelsHealpix(nside=8, nest=True).apply(d)
                StokesWeights(mode="IQU").apply(d)
                ScanMap().apply(d)
                MapMaker(n_pix=healpix_npix(8), step_length=100, max_iterations=5).apply(d)
            if base is None:
                base = d["destriped_map"]
            else:
                np.testing.assert_allclose(d["destriped_map"], base, atol=1e-8)


class TestUtilityOps:
    def test_copy(self, data):
        SimNoise().apply(data)
        Copy("signal", "signal_backup").apply(data)
        ob = data.obs[0]
        assert np.array_equal(ob.detdata["signal_backup"], ob.detdata["signal"])
        ob.detdata["signal"][:] = 0
        assert not np.array_equal(ob.detdata["signal_backup"], ob.detdata["signal"])

    def test_delete(self, data):
        SimNoise().apply(data)
        data["junk"] = np.zeros(3)
        Delete(detdata=["signal"], shared=["hwp_angle"], meta=["junk"]).apply(data)
        assert "signal" not in data.obs[0].detdata
        assert "hwp_angle" not in data.obs[0].shared
        assert "junk" not in data

    def test_memory_counter(self, data):
        SimNoise().apply(data)
        mc = MemoryCounter()
        mc.apply(data)
        expected = sum(ob.memory_bytes() for ob in data.obs)
        assert mc.total_bytes == expected

    def test_build_noise_weighted_needs_npix(self):
        with pytest.raises(ValueError):
            BuildNoiseWeighted(n_pix=0)
        with pytest.raises(ValueError):
            CovarianceAndHits(n_pix=0)
