"""Tests for jaxshim <-> simulated-device integration and the PRNG."""

import numpy as np
import pytest

from repro.accel import OutOfDeviceMemoryError, SimulatedDevice
from repro.jaxshim import (
    PRNGKey,
    attach_device,
    config,
    current_device,
    detach_device,
    jit,
    jnp,
    normal,
    split,
    uniform,
)
from repro.jaxshim.devices import preallocated_bytes
from repro.jaxshim.prng import fold_in


@pytest.fixture(autouse=True)
def clean_device():
    detach_device()
    with config.temporarily(enable_x64=True):
        yield
    detach_device()


class TestDeviceAttachment:
    def test_attach_detach(self):
        dev = SimulatedDevice(memory_bytes=1 << 24)
        with config.temporarily(preallocate_memory=False):
            attach_device(dev)
            assert current_device() is dev
            detach_device()
            assert current_device() is None

    def test_preallocation_grabs_pool(self):
        dev = SimulatedDevice(memory_bytes=1 << 24)
        with config.temporarily(preallocate_memory=True):
            attach_device(dev)
            assert preallocated_bytes() >= int(0.7 * (1 << 24))
            assert dev.allocated_bytes == preallocated_bytes()
            detach_device()
        assert dev.allocated_bytes == 0

    def test_preallocation_off(self):
        dev = SimulatedDevice(memory_bytes=1 << 24)
        with config.temporarily(preallocate_memory=False):
            attach_device(dev)
            assert preallocated_bytes() == 0

    def test_two_preallocating_runtimes_oom(self):
        # Why the paper disabled preallocation when oversubscribing GPUs:
        # two JAX processes each grabbing 75% cannot share a device.
        dev = SimulatedDevice(memory_bytes=1 << 24)
        with config.temporarily(preallocate_memory=True):
            attach_device(dev)
            held = preallocated_bytes()
            assert held > 0
            with pytest.raises(OutOfDeviceMemoryError):
                dev.alloc(int(0.75 * (1 << 24)))

    def test_compile_charged_once(self):
        dev = SimulatedDevice(memory_bytes=1 << 24)
        with config.temporarily(preallocate_memory=False):
            attach_device(dev)

            @jit
            def f(a):
                return jnp.sum(a * 2 + 1)

            x = np.zeros(64)
            f(x)
            compile_time = dev.clock.region_time("jit_compile")
            assert compile_time > 0
            f(x)
            assert dev.clock.region_time("jit_compile") == compile_time

    def test_execution_charges_launches(self):
        dev = SimulatedDevice(memory_bytes=1 << 24)
        with config.temporarily(preallocate_memory=False):
            attach_device(dev)

            @jit
            def f(a):
                return jnp.sqrt(a) + jnp.sin(a)

            f(np.ones(128))
            assert dev.kernels_launched >= 1
            assert dev.clock.region_time("f") > 0

    def test_fusion_means_fewer_launches_than_eqns(self):
        dev = SimulatedDevice(memory_bytes=1 << 24)
        with config.temporarily(preallocate_memory=False):
            attach_device(dev)

            @jit
            def chain(a):
                for _ in range(10):
                    a = a * 1.01 + 0.1
                return a

            chain(np.ones(64))
            exe = chain.compiled_for(np.ones(64))
            assert exe.n_eqns >= 10
            assert dev.kernels_launched == exe.n_kernels
            assert exe.n_kernels < exe.n_eqns

    def test_modeled_time_scales_with_size(self):
        dev = SimulatedDevice(memory_bytes=1 << 28)
        with config.temporarily(preallocate_memory=False):
            attach_device(dev)

            @jit
            def f(a):
                return a * 2.0

            f(np.zeros(1000))
            exe_small = f.compiled_for(np.zeros(1000))
            f(np.zeros(1000_000))
            exe_big = f.compiled_for(np.zeros(1000_000))
            assert exe_big.modeled_execution_time(dev) > exe_small.modeled_execution_time(dev)


class TestPRNG:
    def test_key_shape(self):
        k = PRNGKey(0)
        assert k.shape == (2,)
        assert k.dtype == np.uint64

    def test_determinism(self):
        k = PRNGKey(7)
        assert np.array_equal(normal(k, (10,)), normal(k, (10,)))
        assert np.array_equal(uniform(k, (10,)), uniform(k, (10,)))

    def test_seed_changes_stream(self):
        assert not np.array_equal(normal(PRNGKey(1), (10,)), normal(PRNGKey(2), (10,)))

    def test_split_independent(self):
        k1, k2 = split(PRNGKey(3))
        assert not np.array_equal(k1, k2)
        assert not np.array_equal(normal(k1, (10,)), normal(k2, (10,)))

    def test_split_num(self):
        keys = split(PRNGKey(5), num=7)
        assert keys.shape == (7, 2)
        assert len({tuple(k) for k in keys.tolist()}) == 7

    def test_split_bad_num(self):
        with pytest.raises(ValueError):
            split(PRNGKey(0), num=0)

    def test_fold_in(self):
        k = PRNGKey(1)
        ka = fold_in(k, 10)
        kb = fold_in(k, 11)
        assert not np.array_equal(ka, kb)
        assert np.array_equal(fold_in(k, 10), ka)

    def test_bad_key_rejected(self):
        with pytest.raises(ValueError):
            normal(np.zeros(3), (2,))

    def test_uniform_range(self):
        u = uniform(PRNGKey(9), (1000,))
        assert np.all(u >= 0) and np.all(u < 1)

    def test_normal_moments(self):
        g = normal(PRNGKey(11), (200000,))
        assert abs(g.mean()) < 0.02
        assert abs(g.std() - 1) < 0.02

    def test_normal_inside_jit(self):
        @jit
        def f(key):
            return jnp.sum(normal(key, (100,)))

        k = PRNGKey(13)
        assert np.isclose(f(k), normal(k, (100,)).sum())
        assert np.isclose(f(k), f(k))

    def test_shapes(self):
        assert normal(PRNGKey(0), ()).shape == ()
        assert normal(PRNGKey(0), (2, 3)).shape == (2, 3)
