"""Tests for the core framework: observation model, dispatch, timing."""

import io

import numpy as np
import pytest

from repro.core import (
    Data,
    Focalplane,
    GlobalTimers,
    ImplementationType,
    Observation,
    Timer,
    default_implementation,
    fake_hexagon_focalplane,
    function_timer,
    global_timers,
    kernel_registry,
    use_implementation,
)
from repro.core.dispatch import KernelRegistry
from repro.core.timing import merge_timing_csv
from repro.math.intervals import IntervalList


@pytest.fixture
def fp():
    return fake_hexagon_focalplane(n_pixels=3, sample_rate=10.0)


class TestFocalplane:
    def test_detector_count(self, fp):
        assert fp.n_detectors == 6  # dual-polarization pixels

    def test_detector_names_unique(self, fp):
        assert len(set(fp.detectors)) == 6

    def test_quat_array_shape_and_norm(self, fp):
        q = fp.quat_array()
        assert q.shape == (6, 4)
        assert np.allclose(np.linalg.norm(q, axis=1), 1.0)

    def test_ab_detectors_orthogonal_pol(self, fp):
        # A and B of the same pixel differ by 90 degrees in psi.
        psi_a = fp.psi_pol["D000A"]
        psi_b = fp.psi_pol["D000B"]
        assert np.isclose(abs(psi_b - psi_a), np.pi / 2)

    def test_detector_weights_positive(self, fp):
        w = fp.detector_weights()
        assert w.shape == (6,)
        assert np.all(w > 0)

    def test_noise_model_detectors(self, fp):
        nm = fp.noise_model(n_freq=32)
        assert set(nm.detectors) == set(fp.detectors)

    def test_bad_args(self):
        with pytest.raises(ValueError):
            fake_hexagon_focalplane(n_pixels=0)
        with pytest.raises(ValueError):
            Focalplane(sample_rate=0.0)
        with pytest.raises(ValueError):
            Focalplane(sample_rate=1.0, detectors=["x"], detector_quats={})


class TestObservation:
    def test_create_shared_and_detdata(self, fp):
        ob = Observation(fp, 100, name="t")
        times = ob.create_shared("times", (100,))
        assert times.shape == (100,)
        sig = ob.create_detdata("signal")
        assert sig.shape == (6, 100)
        q = ob.create_detdata("quats", sample_shape=(4,))
        assert q.shape == (6, 100, 4)

    def test_duplicate_keys_raise(self, fp):
        ob = Observation(fp, 10)
        ob.create_shared("x", (10,))
        with pytest.raises(KeyError):
            ob.create_shared("x", (10,))
        ob.create_detdata("y")
        with pytest.raises(KeyError):
            ob.create_detdata("y")

    def test_shared_shape_checked(self, fp):
        ob = Observation(fp, 10)
        with pytest.raises(ValueError):
            ob.create_shared("x", (5,))
        with pytest.raises(ValueError):
            ob.set_shared("x", np.zeros(5))

    def test_ensure_detdata_idempotent(self, fp):
        ob = Observation(fp, 10)
        a = ob.ensure_detdata("sig")
        a[:] = 3.0
        b = ob.ensure_detdata("sig")
        assert b is a
        with pytest.raises(ValueError):
            ob.ensure_detdata("sig", sample_shape=(4,))

    def test_intervals_bounds_checked(self, fp):
        ob = Observation(fp, 10)
        with pytest.raises(ValueError):
            ob.set_intervals("bad", IntervalList([(0, 20)]))
        ob.set_intervals("ok", IntervalList([(0, 10)]))
        starts, stops = ob.interval_arrays("ok")
        assert starts.tolist() == [0]

    def test_interval_arrays_none_is_full_span(self, fp):
        ob = Observation(fp, 42)
        starts, stops = ob.interval_arrays(None)
        assert (starts[0], stops[0]) == (0, 42)

    def test_memory_bytes(self, fp):
        ob = Observation(fp, 100)
        ob.create_detdata("signal")
        assert ob.memory_bytes() == 6 * 100 * 8

    def test_uid_stable(self, fp):
        assert Observation(fp, 1, name="a").uid == Observation(fp, 1, name="a").uid

    def test_bad_samples(self, fp):
        with pytest.raises(ValueError):
            Observation(fp, 0)


class TestData:
    def test_meta_mapping(self):
        d = Data()
        d["map"] = np.zeros(4)
        assert "map" in d
        assert d["map"].shape == (4,)

    def test_totals(self, fp):
        d = Data()
        d.obs.append(Observation(fp, 10))
        d.obs.append(Observation(fp, 20))
        assert d.n_samples_total == 30
        assert len(d) == 2


class TestDispatch:
    def test_default_is_numpy(self):
        assert default_implementation() is ImplementationType.NUMPY

    def test_nesting(self):
        with use_implementation(ImplementationType.JAX):
            assert default_implementation() is ImplementationType.JAX
            with use_implementation(ImplementationType.PYTHON):
                assert default_implementation() is ImplementationType.PYTHON
            assert default_implementation() is ImplementationType.JAX
        assert default_implementation() is ImplementationType.NUMPY

    def test_registry_duplicate_rejected(self):
        reg = KernelRegistry(require_specs=False)
        reg.register("k", ImplementationType.NUMPY, lambda: None)
        with pytest.raises(ValueError):
            reg.register("k", ImplementationType.NUMPY, lambda: None)

    def test_fallback_to_numpy(self):
        reg = KernelRegistry(require_specs=False)
        fn = lambda: "cpu"  # noqa: E731
        reg.register("k", ImplementationType.NUMPY, fn)
        assert reg.get("k", ImplementationType.JAX) is fn
        with pytest.raises(KeyError):
            reg.get("k", ImplementationType.JAX, allow_fallback=False)

    def test_unknown_kernel(self):
        with pytest.raises(KeyError):
            KernelRegistry().get("nope", ImplementationType.NUMPY)

    def test_strict_registry_requires_spec(self):
        reg = KernelRegistry()  # require_specs is the default
        with pytest.raises(ValueError, match="KernelSpec"):
            reg.register("k", ImplementationType.NUMPY, lambda: None)

    def test_real_registry_fully_specced(self):
        from repro.kernels import kernel_registry as reg

        assert all(reg.spec(name) is not None for name in reg.kernels())

    def test_real_registry_complete(self):
        from repro.kernels import KERNEL_NAMES

        assert set(kernel_registry.kernels()) >= set(KERNEL_NAMES)


class TestTiming:
    def test_timer_context(self):
        with Timer() as t:
            sum(range(1000))
        assert t.elapsed > 0

    def test_timer_not_started(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_timer_double_start(self):
        t = Timer().start()
        with pytest.raises(RuntimeError, match="already running"):
            t.start()
        # The original interval survives the failed start.
        assert t.stop() >= 0

    def test_timer_restart_after_stop(self):
        t = Timer().start()
        t.stop()
        t.start()  # legal: accumulates a second interval
        assert t.stop() >= 0

    def test_function_timer_records(self):
        @function_timer
        def snoozer():
            return 42

        before = global_timers.calls("TestTiming.test_function_timer_records.<locals>.snoozer")
        snoozer()
        after = global_timers.calls("TestTiming.test_function_timer_records.<locals>.snoozer")
        assert after == before + 1

    def test_dump_and_merge_csv(self, tmp_path):
        t1 = GlobalTimers()
        t1.record("kernel_a", 1.0)
        t1.record("kernel_b", 2.0)
        t2 = GlobalTimers()
        t2.record("kernel_a", 0.5)
        p1, p2 = tmp_path / "cpu.csv", tmp_path / "gpu.csv"
        t1.dump_csv(p1)
        t2.dump_csv(p2)
        merged = merge_timing_csv([p1, p2], labels=["cpu", "gpu"])
        assert "kernel_a" in merged
        assert "gpu/cpu" in merged
        assert "0.5" in merged

    def test_dump_to_stream(self):
        t = GlobalTimers()
        t.record("x", 1.5)
        buf = io.StringIO()
        t.dump_csv(buf)
        assert "x,1.5" in buf.getvalue()

    def test_merge_requires_paths(self):
        with pytest.raises(ValueError):
            merge_timing_csv([])

    def test_merge_disjoint_timer_sets(self, tmp_path):
        """Files with disjoint timer names merge with blank cells."""
        t1 = GlobalTimers()
        t1.record("only_in_first", 1.0)
        t1.record("in_both", 2.0)
        t2 = GlobalTimers()
        t2.record("in_both", 1.0)
        t2.record("only_in_second", 3.0)
        p1, p2 = tmp_path / "one.csv", tmp_path / "two.csv"
        t1.dump_csv(p1)
        t2.dump_csv(p2)
        merged = merge_timing_csv([p1, p2])
        lines = {ln.split()[0]: ln for ln in merged.splitlines() if ln.strip()}
        assert "only_in_first" in lines and "only_in_second" in lines
        # Missing totals (and their ratios) render as blank "-" cells.
        assert lines["only_in_first"].split()[2] == "-"
        assert lines["only_in_second"].split()[1] == "-"
        assert lines["only_in_second"].split()[3] == "-"

    def test_merge_tolerates_blank_cells(self, tmp_path):
        p1 = tmp_path / "partial.csv"
        p1.write_text(
            "name,total_seconds,calls\nkernel_a,1.5,3\nkernel_b,,1\n,2.0,1\n"
        )
        p2 = tmp_path / "full.csv"
        t2 = GlobalTimers()
        t2.record("kernel_a", 3.0)
        t2.dump_csv(p2)
        merged = merge_timing_csv([p1, p2])
        assert "kernel_a" in merged
        # The blank-total row and the nameless row are skipped, not fatal.
        assert "kernel_b" not in merged

    def test_render(self):
        t = GlobalTimers()
        t.record("abc", 1.0)
        assert "abc" in t.render()
