"""Tests for megabatch execution: stacked detector×observation launches.

The megabatch path's one hard promise mirrors the compiled pipeline's:
bitwise-identical results to eager per-observation dispatch, for every
backend, every grouping of observations into launch units, and every
worker count of the parallel pool — while launching strictly fewer
kernels.  These tests pin that promise at each layer: the collector
(kernel-level stacking), the pipeline (plan="megabatch" host and accel
paths), the planner (static launch accounting), the perf model (the
launches-saved term), the jaxshim (vmap batching rules and padded-shape
JIT cache buckets), and the parallel pool.
"""

import numpy as np
import pytest

from repro.compilepipe import build_plan, lower_workflow
from repro.compilepipe.planner import eager_launches, planned_launch_elisions
from repro.core import Data, ImplementationType, Pipeline
from repro.core.dispatch import get_kernel, megabatch_collection, use_implementation
from repro.jaxshim import PRNGKey, normal, split, uniform, vmap
from repro.jaxshim.primitives import BATCHING_WAIVERS, batching_coverage
from repro.kernels import MegabatchCollector, kernel_registry
from repro.kernels.common import pad_intervals, pad_intervals_grouped, pad_intervals_stacked
from repro.kernels.spec import ArgRole
from repro.workflows.microbench import kernel_cases

from tests.test_compilepipe import (
    assert_bitwise_equal,
    fresh_runtime,
    make_data,
    processing_ops,
)

MEGABATCH_KERNELS = [
    "pointing_detector",
    "stokes_weights_I",
    "stokes_weights_IQU",
    "pixels_healpix",
    "scan_map",
    "noise_weight",
    "build_noise_weighted",
    "cov_accum_diag_hits",
    "cov_accum_diag_invnpp",
]

ACCEL_IMPLS = [ImplementationType.JAX, ImplementationType.OMP_TARGET]

#: Interval shapes for the collector group: one member with *zero*
#: intervals exercises the degenerate-row / anchor-redirect path.
GROUP_KINDS = ["irregular", "full", "empty", "irregular"]


def _build_group(name, spec, kinds=GROUP_KINDS, seed0=1000):
    """Per-observation call args for one kernel, GLOBAL args shared."""
    gnames = [a.name for a in spec.args if a.role == ArgRole.GLOBAL]
    obs = []
    for i, kind in enumerate(kinds):
        factory = kernel_cases(
            n_det=3, n_samp=96, intervals=kind, seed=seed0 + 37 * i
        )[name]
        args, outputs = factory()
        obs.append((args, list(outputs)))
    # Scatter kernels accumulate into one shared map: alias the GLOBALs.
    for g in gnames:
        for args, _ in obs[1:]:
            args[g] = obs[0][0][g]
    return obs, gnames


def _clone_group(obs, gnames):
    """Deep-copy a group, preserving GLOBAL aliasing between members."""
    gmap, out = {}, []
    for args, outputs in obs:
        a2 = {}
        for k, v in args.items():
            if k in gnames and isinstance(v, np.ndarray):
                if id(v) not in gmap:
                    gmap[id(v)] = np.copy(v)
                a2[k] = gmap[id(v)]
            elif isinstance(v, np.ndarray):
                a2[k] = np.copy(v)
            else:
                a2[k] = v
        out.append((a2, outputs))
    return out


class TestCollectorParity:
    """Kernel-level: one stacked launch == k eager launches, bitwise."""

    @pytest.mark.parametrize("impl", ACCEL_IMPLS, ids=lambda i: i.value)
    @pytest.mark.parametrize("name", MEGABATCH_KERNELS)
    def test_stacked_flush_matches_eager(self, impl, name):
        spec = kernel_registry.spec(name)
        base, gnames = _build_group(name, spec)
        eager = _clone_group(base, gnames)
        mb = _clone_group(base, gnames)
        fn = get_kernel(name, impl)

        for args, _ in eager:
            fn(**args, accel=None, use_accel=False)

        coll = MegabatchCollector()
        with megabatch_collection(coll):
            for args, _ in mb:
                fn(**args, accel=None, use_accel=False)

        # The group really stacked — a replay would make the test vacuous.
        assert coll.stacked_launches >= 1
        assert coll.replayed_calls == 0
        assert coll.launches_elided == len(GROUP_KINDS) - coll.stacked_launches

        for i, ((ea, outs), (ma, _)) in enumerate(zip(eager, mb)):
            for k in outs:
                assert ea[k].tobytes() == ma[k].tobytes(), (name, impl, i, k)

    @pytest.mark.parametrize("impl", ACCEL_IMPLS, ids=lambda i: i.value)
    def test_single_call_group_is_passthrough(self, impl):
        """k == 1 replays eagerly — no stacking overhead, same bytes."""
        name = "pointing_detector"
        spec = kernel_registry.spec(name)
        base, gnames = _build_group(name, spec, kinds=["irregular"])
        eager = _clone_group(base, gnames)
        mb = _clone_group(base, gnames)
        fn = get_kernel(name, impl)
        fn(**eager[0][0], accel=None, use_accel=False)
        coll = MegabatchCollector()
        with megabatch_collection(coll):
            fn(**mb[0][0], accel=None, use_accel=False)
        assert coll.launches_elided == 0
        for k in eager[0][1]:
            assert eager[0][0][k].tobytes() == mb[0][0][k].tobytes()

    def test_zero_interval_observation_untouched(self):
        """An obs with no valid samples must not be written at all."""
        name = "pointing_detector"
        spec = kernel_registry.spec(name)
        base, gnames = _build_group(name, spec, kinds=["irregular", "empty"])
        mb = _clone_group(base, gnames)
        before = {k: np.copy(mb[1][0][k]) for k in mb[1][1]}
        fn = get_kernel(name, ImplementationType.JAX)
        with megabatch_collection(MegabatchCollector()):
            for args, _ in mb:
                fn(**args, accel=None, use_accel=False)
        for k, v in before.items():
            assert v.tobytes() == mb[1][0][k].tobytes(), k


class TestPipelineParity:
    """Pipeline(plan="megabatch") is bitwise-identical to eager."""

    @pytest.mark.parametrize("impl", ACCEL_IMPLS, ids=lambda i: i.value)
    @pytest.mark.parametrize("group", [None, 1, 2, 3])
    def test_accel_parity(self, impl, group):
        d_eager = make_data(n_obs=3)
        Pipeline(processing_ops(), implementation=impl).exec(
            d_eager, use_accel=True, accel=fresh_runtime()
        )
        d = make_data(n_obs=3)
        p = Pipeline(
            processing_ops(),
            implementation=impl,
            plan="megabatch",
            megabatch_group=group,
        )
        p.exec(d, use_accel=True, accel=fresh_runtime())
        assert_bitwise_equal(d_eager, d)

    @pytest.mark.parametrize(
        "impl",
        [ImplementationType.NUMPY, ImplementationType.JAX, ImplementationType.OMP_TARGET],
        ids=lambda i: i.value,
    )
    @pytest.mark.parametrize("group", [None, 2])
    def test_host_parity(self, impl, group):
        d_eager = make_data(n_obs=3)
        Pipeline(processing_ops(), implementation=impl).exec(d_eager)
        d = make_data(n_obs=3)
        Pipeline(
            processing_ops(),
            implementation=impl,
            plan="megabatch",
            megabatch_group=group,
        ).exec(d)
        assert_bitwise_equal(d_eager, d)

    def test_random_groupings_parity(self):
        """Property: ANY grouping of observations gives identical maps."""
        rng = np.random.default_rng(7)
        d_eager = make_data(n_obs=4)
        Pipeline(
            processing_ops(), implementation=ImplementationType.OMP_TARGET
        ).exec(d_eager, use_accel=True, accel=fresh_runtime())
        for group in rng.integers(1, 5, size=4):
            d = make_data(n_obs=4)
            Pipeline(
                processing_ops(),
                implementation=ImplementationType.OMP_TARGET,
                plan="megabatch",
                megabatch_group=int(group),
            ).exec(d, use_accel=True, accel=fresh_runtime())
            assert_bitwise_equal(d_eager, d)

    def test_megabatch_group_validation(self):
        with pytest.raises(ValueError):
            Pipeline(processing_ops(), plan="megabatch", megabatch_group=0)
        with pytest.raises(ValueError):
            Pipeline(processing_ops(), plan="bogus")

    def test_megabatch_units_chunking(self):
        d = make_data(n_obs=5)
        units = Pipeline.megabatch_units(d, 2)
        assert [len(u.obs) for u in units] == [2, 2, 1]
        assert sum(len(u.obs) for u in units) == len(d.obs)
        (whole,) = Pipeline.megabatch_units(d, None)
        assert len(whole.obs) == 5


class TestLaunchAccounting:
    """Static plan, executed counters, and the perf-model term agree."""

    def _run(self, group):
        d = make_data(n_obs=3)
        p = Pipeline(
            processing_ops(),
            implementation=ImplementationType.OMP_TARGET,
            plan="megabatch",
            megabatch_group=group,
        )
        p.exec(d, use_accel=True, accel=fresh_runtime())
        return p.last_plan

    def test_omp_executed_matches_static(self):
        for group in (None, 1, 2, 3):
            plan = self._run(group)
            assert plan.executed["launches_elided"] == plan.launches_elided, group

    def test_launches_monotone_in_group_size(self):
        """Bigger launch units never launch more kernels."""
        elided = [self._run(g).launches_elided for g in (1, 2, 3, None)]
        assert elided == sorted(elided)
        assert elided[-1] > elided[0]

    def test_planner_megabatch_beats_fusion_alone(self):
        d = make_data(n_obs=3)
        ops = processing_ops()
        for op in ops:
            op.ensure_outputs(d)
        ir = lower_workflow(ops, [d])
        with use_implementation(ImplementationType.OMP_TARGET):
            plain = build_plan(ir, megabatch=False)
            mb = build_plan(ir, megabatch=True)
        assert mb.launches_elided > plain.launches_elided
        assert eager_launches(ir) - mb.launches_elided > 0

    def test_estimate_movement_has_megabatch_leg(self):
        from repro.accel.transfer import TransferModel
        from repro.perfmodel import estimate_movement

        d = make_data(n_obs=3)
        ops = processing_ops()
        for op in ops:
            op.ensure_outputs(d)
        with use_implementation(ImplementationType.OMP_TARGET):
            plan = build_plan(lower_workflow(ops, [d]))
            est = estimate_movement(plan, TransferModel())
        assert set(est) == {"naive", "hybrid", "compiled", "megabatch"}
        mb, comp = est["megabatch"], est["compiled"]
        # Movement identical to compiled; the win is the launch term.
        assert mb.total_bytes == comp.total_bytes
        assert mb.total_copies == comp.total_copies
        assert mb.launches < comp.launches <= est["hybrid"].launches
        assert mb.launch_seconds < comp.launch_seconds
        assert mb.launch_seconds == pytest.approx(mb.launches * 5.0e-6)


class TestParallelMegabatch:
    """The pool: identical maps for any plan × worker count."""

    @pytest.mark.parametrize("n_procs", [1, 3])
    def test_parallel_megabatch_matches_parallel_eager(self, n_procs):
        from repro.parallel.satellite import run_parallel_satellite
        from repro.workflows.satellite import SIZES

        size = SIZES["tiny"]
        base = run_parallel_satellite(
            size, ImplementationType.OMP_TARGET, n_procs=2, plan="eager"
        )["zmap"]
        out = run_parallel_satellite(
            size, ImplementationType.OMP_TARGET, n_procs=n_procs, plan="megabatch"
        )["zmap"]
        assert np.asarray(base).tobytes() == np.asarray(out).tobytes()


class TestJitCacheBuckets:
    """Padded megabatch shapes hash into pow2 buckets: no per-count churn."""

    def test_no_evictions_across_group_sizes(self):
        from repro.kernels.jax import megabatch as jmb

        name = "pointing_detector"
        spec = kernel_registry.spec(name)
        fn = get_kernel(name, ImplementationType.JAX)
        jf = jmb._pointing_detector_mb
        traces0, evict0 = jf.n_traces, jf.cache_evictions
        for k in (2, 3, 4, 5, 3, 2):
            base, gnames = _build_group(
                name, spec, kinds=["irregular"] * k, seed0=500
            )
            grp = _clone_group(base, gnames)
            with megabatch_collection(MegabatchCollector()):
                for args, _ in grp:
                    fn(**args, accel=None, use_accel=False)
        # Obs counts 2..5 pad to pow2 buckets {2, 4, 8}: at most three
        # fresh traces, and never an eviction when a count recurs.
        assert jf.n_traces - traces0 <= 3
        assert jf.cache_evictions - evict0 == 0


class TestBatchingRuleCoverage:
    def test_every_primitive_has_a_batching_rule(self):
        cov = batching_coverage()
        assert len(cov) >= 60
        holes = {n for n, ok in cov.items() if not ok}
        assert holes <= set(BATCHING_WAIVERS), sorted(holes - set(BATCHING_WAIVERS))

    def test_vmap_random_bits_matches_per_key_loop(self):
        keys = split(PRNGKey(42), 5)
        for fn, shape in ((normal, (8,)), (uniform, (3, 4))):
            batched = np.asarray(vmap(lambda k: fn(k, shape))(keys))
            looped = np.stack([np.asarray(fn(keys[i], shape)) for i in range(5)])
            assert batched.tobytes() == looped.tobytes(), fn.__name__


class TestPadIntervals:
    """Regression: zero-length observations and forced padding dims."""

    def test_empty_interval_list(self):
        idx, valid, max_len = pad_intervals(
            np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
        )
        assert idx.shape == (0, 0) and valid.shape == (0, 0) and max_len == 0

    def test_empty_with_forced_dims(self):
        idx, valid, max_len = pad_intervals(
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            max_len=4,
            n_intervals=2,
        )
        assert idx.shape == (2, 4)
        assert not valid.any()
        assert (idx == 0).all()  # padding rows index sample 0: always in range

    def test_forced_dims_pad_real_intervals(self):
        starts = np.array([0, 10], dtype=np.int64)
        stops = np.array([3, 12], dtype=np.int64)
        idx, valid, max_len = pad_intervals(starts, stops, max_len=5, n_intervals=4)
        assert idx.shape == (4, 5) and max_len == 5
        assert valid[:2].sum() == 5  # 3 + 2 real samples
        assert not valid[2:].any()
        assert np.array_equal(idx[0, :3], [0, 1, 2])

    def test_grouped_padding_row_is_masked(self):
        starts = np.array([[0, 5], [0, 0]], dtype=np.int64)
        stops = np.array([[3, 8], [4, 0]], dtype=np.int64)
        idx, valid, max_len = pad_intervals_grouped(starts, stops)
        assert idx.shape == (2, 2, max_len)
        assert not valid[1, 1].any()  # the (0, 0) padding row
        assert valid[1, 0].sum() == 4

    def test_stacked_group_with_empty_member(self):
        idx, valid, max_len = pad_intervals_stacked(
            [np.array([0], dtype=np.int64), np.zeros(0, dtype=np.int64)],
            [np.array([6], dtype=np.int64), np.zeros(0, dtype=np.int64)],
        )
        assert idx.shape == (2, 1, 6) and max_len == 6
        assert valid[0].sum() == 6
        assert not valid[1].any()
