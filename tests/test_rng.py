"""Unit and property tests for the Threefry counter-based RNG."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rng import gaussian, random, rotl64, threefry2x64, uniform01, uniform_m11
from repro.rng.threefry import KS_PARITY, ROTATIONS, threefry2x64_stream

u64 = st.integers(min_value=0, max_value=2**64 - 1)


def reference_threefry2x64(ctr, key, rounds=20):
    """Independent scalar implementation using Python integers (the oracle
    for the vectorized NumPy implementation)."""
    mask = (1 << 64) - 1

    def rotl(x, n):
        return ((x << n) | (x >> (64 - n))) & mask

    ks = [key[0] & mask, key[1] & mask, 0x1BD11BDAA9FC1A22 ^ key[0] ^ key[1]]
    x0 = (ctr[0] + ks[0]) & mask
    x1 = (ctr[1] + ks[1]) & mask
    for r in range(rounds):
        x0 = (x0 + x1) & mask
        x1 = rotl(x1, ROTATIONS[r % 8])
        x1 ^= x0
        if (r + 1) % 4 == 0:
            j = (r + 1) // 4
            x0 = (x0 + ks[j % 3]) & mask
            x1 = (x1 + ks[(j + 1) % 3] + j) & mask
    return x0, x1


class TestRotl:
    def test_simple(self):
        assert rotl64(np.uint64(1), 1) == 2
        assert rotl64(np.uint64(1 << 63), 1) == 1

    @settings(max_examples=50, deadline=None)
    @given(x=u64, n=st.integers(1, 63))
    def test_rotation_is_bijective(self, x, n):
        v = np.uint64(x)
        back = rotl64(rotl64(v, n), 64 - n)
        assert back == v


class TestThreefryCore:
    @settings(max_examples=100, deadline=None)
    @given(c0=u64, c1=u64, k0=u64, k1=u64)
    def test_matches_scalar_oracle(self, c0, c1, k0, k1):
        x0, x1 = threefry2x64(c0, c1, k0, k1)
        r0, r1 = reference_threefry2x64((c0, c1), (k0, k1))
        assert int(x0) == r0 and int(x1) == r1

    def test_vectorized_matches_scalar(self):
        rng = np.random.default_rng(7)
        c1 = rng.integers(0, 2**63, 64, dtype=np.uint64)
        x0, x1 = threefry2x64(np.uint64(3), c1, np.uint64(11), np.uint64(13))
        for i in range(64):
            s0, s1 = threefry2x64(np.uint64(3), c1[i], np.uint64(11), np.uint64(13))
            assert x0[i] == s0 and x1[i] == s1

    def test_parity_constant(self):
        assert int(KS_PARITY) == 0x1BD11BDAA9FC1A22

    def test_counter_sensitivity(self):
        a = threefry2x64(0, 0, 0, 0)
        b = threefry2x64(0, 1, 0, 0)
        assert a[0] != b[0] or a[1] != b[1]

    def test_key_sensitivity(self):
        a = threefry2x64(5, 6, 0, 0)
        b = threefry2x64(5, 6, 0, 1)
        assert a[0] != b[0] or a[1] != b[1]

    def test_bad_rounds(self):
        with pytest.raises(ValueError):
            threefry2x64(0, 0, 0, 0, rounds=0)
        with pytest.raises(ValueError):
            threefry2x64(0, 0, 0, 0, rounds=33)


class TestStream:
    def test_deterministic(self):
        a = threefry2x64_stream(100, key=(1, 2), counter=(3, 4))
        b = threefry2x64_stream(100, key=(1, 2), counter=(3, 4))
        assert np.array_equal(a, b)

    def test_counter_offset_slices_stream(self):
        # Starting at counter c1+k must reproduce the tail of the stream
        # (block-aligned: each counter yields two words).
        full = threefry2x64_stream(40, key=(9, 9), counter=(0, 0))
        tail = threefry2x64_stream(20, key=(9, 9), counter=(0, 10))
        assert np.array_equal(full[20:], tail)

    def test_odd_length(self):
        assert len(threefry2x64_stream(7, key=(0, 1))) == 7

    def test_zero_length(self):
        assert len(threefry2x64_stream(0, key=(0, 1))) == 0

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            threefry2x64_stream(-1, key=(0, 1))


class TestDistributions:
    def test_uniform01_range(self):
        u = uniform01(10000, key=(1, 2))
        assert np.all(u >= 0.0) and np.all(u < 1.0)

    def test_uniform01_moments(self):
        u = uniform01(200000, key=(1, 2))
        assert abs(u.mean() - 0.5) < 0.005
        assert abs(u.var() - 1.0 / 12.0) < 0.002

    def test_uniform_m11_range_and_mean(self):
        u = uniform_m11(200000, key=(3, 4))
        assert np.all(u >= -1.0) and np.all(u < 1.0)
        assert abs(u.mean()) < 0.01

    def test_gaussian_moments(self):
        g = gaussian(400000, key=(5, 6))
        assert abs(g.mean()) < 0.01
        assert abs(g.std() - 1.0) < 0.01
        # Fourth moment of a standard normal is 3.
        assert abs(np.mean(g**4) - 3.0) < 0.1

    def test_gaussian_no_nan_inf(self):
        g = gaussian(100000, key=(0, 0))
        assert np.all(np.isfinite(g))

    def test_gaussian_pairwise_prefix_stable(self):
        # Extending the draw must not change earlier samples.
        a = gaussian(10, key=(8, 8))
        b = gaussian(100, key=(8, 8))
        assert np.array_equal(a, b[:10])

    def test_uniform_prefix_stable(self):
        a = uniform01(11, key=(8, 9))
        b = uniform01(64, key=(8, 9))
        assert np.array_equal(a, b[:11])

    def test_independent_streams_uncorrelated(self):
        a = gaussian(100000, key=(1, 0))
        b = gaussian(100000, key=(2, 0))
        corr = np.corrcoef(a, b)[0, 1]
        assert abs(corr) < 0.01

    def test_random_dispatch(self):
        assert np.array_equal(
            random(50, key=(1, 2), sampler="uniform_01"), uniform01(50, key=(1, 2))
        )
        assert np.array_equal(
            random(50, key=(1, 2), sampler="gaussian"), gaussian(50, key=(1, 2))
        )

    def test_random_unknown_sampler(self):
        with pytest.raises(ValueError):
            random(10, sampler="cauchy")

    def test_negative_n_raises(self):
        with pytest.raises(ValueError):
            gaussian(-5, key=(0, 0))

    @settings(max_examples=30, deadline=None)
    @given(k0=u64, k1=u64, c0=u64)
    def test_determinism_property(self, k0, k1, c0):
        a = uniform01(16, key=(k0, k1), counter=(c0, 0))
        b = uniform01(16, key=(k0, k1), counter=(c0, 0))
        assert np.array_equal(a, b)
