"""Unit and property tests for the HEALPix substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import healpix as hp

NSIDES = [1, 2, 4, 16, 64, 256]

theta_strategy = st.floats(min_value=0.0, max_value=np.pi, allow_nan=False)
phi_strategy = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False)
order_strategy = st.integers(min_value=0, max_value=10)


class TestGeometry:
    def test_npix(self):
        assert hp.npix(1) == 12
        assert hp.npix(2) == 48
        assert hp.npix(256) == 786432

    def test_ncap(self):
        assert hp.ncap(1) == 0
        assert hp.ncap(4) == 24

    def test_nring(self):
        assert hp.nring(1) == 3
        assert hp.nring(4) == 15

    def test_orders(self):
        assert hp.nside2order(1) == 0
        assert hp.nside2order(1024) == 10
        assert hp.order2nside(5) == 32

    def test_bad_nside(self):
        for bad in (0, 3, 12, -2):
            with pytest.raises(ValueError):
                hp.check_nside(bad)
        with pytest.raises(ValueError):
            hp.order2nside(-1)

    def test_pixel_area_sums_to_sphere(self):
        for nside in (1, 8, 64):
            assert np.isclose(hp.pixel_area(nside) * hp.npix(nside), 4 * np.pi)


class TestBits:
    @settings(max_examples=100, deadline=None)
    @given(v=st.integers(min_value=0, max_value=2**31 - 1))
    def test_spread_compress_roundtrip(self, v):
        arr = np.array([v], dtype=np.uint64)
        assert hp.compress_bits(hp.spread_bits(arr))[0] == v

    def test_spread_even_positions_only(self):
        out = int(hp.spread_bits(np.array([0b111], dtype=np.uint64))[0])
        assert out == 0b10101

    def test_interleave_known(self):
        from repro.healpix.bits import xyf2nest, nest2xyf

        # face 0, order 2 (nside 4): pixel (x=3, y=1) -> morton 0b0111 = 7
        pix = xyf2nest(np.array([3]), np.array([1]), np.array([0]), 2)
        assert pix[0] == 0b0111
        ix, iy, face = nest2xyf(pix, 2)
        assert (ix[0], iy[0], face[0]) == (3, 1, 0)


class TestRingScheme:
    @pytest.mark.parametrize("nside", NSIDES)
    def test_center_roundtrip(self, nside):
        pix = np.arange(hp.npix(nside))
        theta, phi = hp.pix2ang_ring(nside, pix)
        assert np.array_equal(hp.ang2pix_ring(nside, theta, phi), pix)

    def test_poles(self):
        # theta=0 must land in the first ring (pixels 0..3).
        assert hp.ang2pix_ring(16, 0.0, 0.3) < 4
        # theta=pi in the last ring.
        assert hp.ang2pix_ring(16, np.pi, 0.3) >= hp.npix(16) - 4

    def test_known_values_nside1(self):
        # For nside=1 the 12 base pixels: north cap 0-3, equator 4-7, south 8-11.
        north = hp.ang2pix_ring(1, 0.1, np.array([0.1, 1.7, 3.3, 4.9]))
        assert sorted(north.tolist()) == [0, 1, 2, 3]
        equator = hp.ang2pix_ring(1, np.pi / 2, np.array([0.0, np.pi / 2]))
        assert np.all((equator >= 4) & (equator < 8))

    def test_ring_pixel_counts(self):
        # Count pixels per ring via pix2ang z values for nside=4.
        nside = 4
        theta, _ = hp.pix2ang_ring(nside, np.arange(hp.npix(nside)))
        _, counts = np.unique(np.round(np.cos(theta), 12), return_counts=True)
        # nside=4 has 4*nside-1 = 15 rings: caps of 4, 8, 12 pixels on each
        # side and 9 equatorial-belt rings of 4*nside = 16 pixels.
        expected = [4, 8, 12] + [16] * 9 + [12, 8, 4]
        assert sorted(counts.tolist()) == sorted(expected)

    def test_out_of_range_pixel_raises(self):
        with pytest.raises(ValueError):
            hp.pix2ang_ring(4, np.array([hp.npix(4)]))
        with pytest.raises(ValueError):
            hp.pix2ang_ring(4, np.array([-1]))

    def test_bad_theta_raises(self):
        with pytest.raises(ValueError):
            hp.ang2pix_ring(4, np.array([-0.1]), np.array([0.0]))


class TestNestScheme:
    @pytest.mark.parametrize("nside", NSIDES)
    def test_center_roundtrip(self, nside):
        pix = np.arange(hp.npix(nside))
        theta, phi = hp.pix2ang_nest(nside, pix)
        assert np.array_equal(hp.ang2pix_nest(nside, theta, phi), pix)

    @pytest.mark.parametrize("nside", NSIDES)
    def test_ring_nest_bijection(self, nside):
        pix = np.arange(hp.npix(nside))
        nest = hp.ring2nest(nside, pix)
        assert np.array_equal(np.sort(nest), pix)  # a permutation
        assert np.array_equal(hp.nest2ring(nside, nest), pix)

    @pytest.mark.parametrize("nside", NSIDES)
    def test_schemes_agree_on_angles(self, nside):
        rng = np.random.default_rng(5)
        theta = rng.uniform(0, np.pi, 500)
        phi = rng.uniform(-np.pi, 3 * np.pi, 500)
        ring = hp.ang2pix_ring(nside, theta, phi)
        nest = hp.ang2pix_nest(nside, theta, phi)
        assert np.array_equal(hp.ring2nest(nside, ring), nest)

    def test_nside1_nest_equals_ring_faces(self):
        # At nside=1 both schemes enumerate the 12 base faces; the NESTED
        # order is the face order.
        pix = np.arange(12)
        theta_n, phi_n = hp.pix2ang_nest(1, pix)
        theta_r, phi_r = hp.pix2ang_ring(1, hp.nest2ring(1, pix))
        assert np.allclose(theta_n, theta_r)
        assert np.allclose(phi_n, phi_r)

    def test_nested_locality(self):
        # Children of a NESTED pixel at order k live in the same parent:
        # pix >> 2 maps the four children to one coarse pixel.
        nside = 8
        pix = np.arange(hp.npix(nside))
        theta, phi = hp.pix2ang_nest(nside, pix)
        coarse = hp.ang2pix_nest(nside // 2, theta, phi)
        assert np.array_equal(coarse, pix >> 2)


class TestPropertyBased:
    @settings(max_examples=150, deadline=None)
    @given(theta=theta_strategy, phi=phi_strategy, order=order_strategy)
    def test_ring_pixel_in_range(self, theta, phi, order):
        nside = 1 << order
        pix = hp.ang2pix_ring(nside, theta, phi)
        assert 0 <= pix < hp.npix(nside)

    @settings(max_examples=150, deadline=None)
    @given(theta=theta_strategy, phi=phi_strategy, order=order_strategy)
    def test_nest_matches_ring_via_conversion(self, theta, phi, order):
        nside = 1 << order
        ring = hp.ang2pix_ring(nside, theta, phi)
        nest = hp.ang2pix_nest(nside, theta, phi)
        assert hp.nest2ring(nside, np.array([nest]))[0] == ring

    @settings(max_examples=100, deadline=None)
    @given(theta=theta_strategy, phi=phi_strategy)
    def test_center_distance_bounded(self, theta, phi):
        # The pixel center must be within ~2x the pixel radius of the input.
        nside = 64
        pix = hp.ang2pix_ring(nside, theta, phi)
        tc, pc = hp.pix2ang_ring(nside, np.array([pix]))
        v1 = hp.ang2vec(theta, phi)
        v2 = hp.ang2vec(tc[0], pc[0])
        angle = np.arccos(np.clip(np.dot(v1, v2), -1, 1))
        max_radius = 2.5 * np.sqrt(hp.pixel_area(nside))
        assert angle < max_radius


class TestVectors:
    def test_ang2vec_unit(self):
        rng = np.random.default_rng(2)
        theta = rng.uniform(0, np.pi, 100)
        phi = rng.uniform(0, 2 * np.pi, 100)
        v = hp.ang2vec(theta, phi)
        assert np.allclose(np.linalg.norm(v, axis=-1), 1.0)

    def test_vec2ang_roundtrip(self):
        rng = np.random.default_rng(3)
        theta = rng.uniform(0.01, np.pi - 0.01, 100)
        phi = rng.uniform(-np.pi + 0.01, np.pi - 0.01, 100)
        t2, p2 = hp.vec2ang(hp.ang2vec(theta, phi))
        assert np.allclose(t2, theta)
        assert np.allclose(p2, phi)

    def test_vec2ang_normalizes(self):
        t, p = hp.vec2ang(np.array([0.0, 0.0, 10.0]))
        assert np.isclose(t, 0.0)

    def test_zero_vector_raises(self):
        with pytest.raises(ValueError):
            hp.vec2ang(np.zeros(3))

    def test_vec2pix_matches_ang2pix(self):
        rng = np.random.default_rng(4)
        theta = rng.uniform(0, np.pi, 200)
        phi = rng.uniform(0, 2 * np.pi, 200)
        vec = hp.ang2vec(theta, phi)
        for nest in (False, True):
            assert np.array_equal(
                hp.vec2pix(64, vec, nest=nest), hp.ang2pix(64, theta, phi, nest=nest)
            )

    def test_pix2vec_unit(self):
        v = hp.pix2vec(8, np.arange(hp.npix(8)))
        assert np.allclose(np.linalg.norm(v, axis=-1), 1.0)


class TestDispatchAPI:
    def test_ang2pix_dispatch(self):
        theta, phi = 1.0, 2.0
        assert hp.ang2pix(8, theta, phi, nest=False) == hp.ang2pix_ring(8, theta, phi)
        assert hp.ang2pix(8, theta, phi, nest=True) == hp.ang2pix_nest(8, theta, phi)

    def test_pix2ang_dispatch(self):
        pix = np.arange(48)
        assert np.allclose(hp.pix2ang(2, pix)[0], hp.pix2ang_ring(2, pix)[0])
        assert np.allclose(hp.pix2ang(2, pix, nest=True)[0], hp.pix2ang_nest(2, pix)[0])


class TestQueryDisc:
    def test_full_sphere(self):
        pix = hp.query_disc(8, 1.0, 2.0, np.pi)
        assert len(pix) == hp.npix(8)

    def test_zero_radius_contains_at_most_center_pixel(self):
        pix = hp.query_disc(8, 0.7, 1.3, 0.0)
        assert len(pix) <= 1

    def test_center_pixel_included(self):
        nside = 16
        p = hp.ang2pix_ring(nside, 0.9, 2.1)
        theta, phi = hp.pix2ang_ring(nside, np.array([p]))
        pix = hp.query_disc(nside, theta[0], phi[0], 0.05)
        assert p in pix

    def test_area_scales_with_radius(self):
        nside = 32
        small = hp.query_disc(nside, 1.2, 0.5, 0.1)
        big = hp.query_disc(nside, 1.2, 0.5, 0.3)
        assert set(small.tolist()) <= set(big.tolist())
        # Pixel counts follow the solid-angle ratio (2pi(1-cos r)).
        ratio = len(big) / len(small)
        expected = (1 - np.cos(0.3)) / (1 - np.cos(0.1))
        assert abs(ratio - expected) / expected < 0.15

    def test_nest_matches_ring(self):
        ring = hp.query_disc(16, 0.8, 0.9, 0.2, nest=False)
        nest = hp.query_disc(16, 0.8, 0.9, 0.2, nest=True)
        assert np.array_equal(np.sort(hp.ring2nest(16, ring)), nest)

    def test_all_members_within_radius(self):
        nside, radius = 16, 0.25
        pix = hp.query_disc(nside, 1.0, -1.0, radius)
        center = hp.ang2vec(1.0, -1.0)
        vecs = hp.pix2vec(nside, pix)
        dist = np.arccos(np.clip(vecs @ center, -1, 1))
        assert np.all(dist <= radius + 1e-12)

    def test_bad_args(self):
        with pytest.raises(ValueError):
            hp.query_disc(8, 0.5, 0.5, -0.1)
        with pytest.raises(ValueError):
            hp.pixel_distances(8, np.zeros(3))
        with pytest.raises(ValueError):
            hp.pixel_distances(8, np.zeros(4))
