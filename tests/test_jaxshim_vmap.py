"""Tests for vmap: batching rules, composition with jit, kernels' patterns."""

import numpy as np
import pytest

from repro.jaxshim import config, jit, jnp, vmap


@pytest.fixture(autouse=True)
def x64_mode():
    with config.temporarily(enable_x64=True):
        yield


RNG = np.random.default_rng(99)


class TestElementwiseBatching:
    def test_simple(self):
        out = vmap(lambda r: r * 2 + 1)(np.arange(6.0).reshape(2, 3))
        assert np.allclose(out, np.arange(6.0).reshape(2, 3) * 2 + 1)

    def test_matches_loop(self):
        def f(x, y):
            return jnp.sin(x) * y + jnp.sqrt(jnp.abs(x - y))

        xs = RNG.normal(size=(5, 7))
        ys = RNG.normal(size=(5, 7))
        batched = vmap(f)(xs, ys)
        looped = np.stack([f(x, y) for x, y in zip(xs, ys)])
        assert np.allclose(batched, looped)

    def test_unbatched_argument(self):
        def f(row, shared):
            return row + shared

        xs = RNG.normal(size=(4, 3))
        s = np.ones(3)
        out = vmap(f, in_axes=(0, None))(xs, s)
        assert np.allclose(out, xs + s)

    def test_scalar_payloads(self):
        out = vmap(lambda a, b: a * b)(np.arange(3.0), np.arange(3.0))
        assert np.allclose(out, [0, 1, 4])

    def test_rank_mismatch_alignment(self):
        # batched matrix (B, 2, 3) times batched vector (B, 3): the vector
        # broadcasts against the trailing axis per batch element.
        def f(m, v):
            return m * v

        ms = RNG.normal(size=(4, 2, 3))
        vs = RNG.normal(size=(4, 3))
        out = vmap(f)(ms, vs)
        looped = np.stack([m * v for m, v in zip(ms, vs)])
        assert np.allclose(out, looped)


class TestAxesOptions:
    def test_in_axes_one(self):
        xs = RNG.normal(size=(3, 5))
        out = vmap(lambda c: jnp.sum(c), in_axes=1)(xs)
        assert np.allclose(out, xs.sum(axis=0))

    def test_out_axes(self):
        xs = RNG.normal(size=(4, 3))
        out = vmap(lambda r: r * 2, out_axes=1)(xs)
        assert out.shape == (3, 4)
        assert np.allclose(out, (xs * 2).T)

    def test_in_axes_length_mismatch(self):
        with pytest.raises(ValueError):
            vmap(lambda a, b: a + b, in_axes=(0,))(np.zeros(2), np.zeros(2))

    def test_all_none_raises(self):
        with pytest.raises(ValueError):
            vmap(lambda a: a, in_axes=(None,))(np.zeros(2))

    def test_inconsistent_batch_size(self):
        with pytest.raises(ValueError):
            vmap(lambda a, b: a + b)(np.zeros((2, 3)), np.zeros((4, 3)))

    def test_unbatched_output_broadcasts(self):
        def f(row, shared):
            return shared * 2  # independent of the batched input

        out = vmap(f, in_axes=(0, None))(np.zeros((5, 2)), np.ones(2))
        assert out.shape == (5, 2)
        assert np.allclose(out, 2.0)


class TestReductionBatching:
    def test_sum_axis_none(self):
        xs = RNG.normal(size=(6, 4))
        assert np.allclose(vmap(jnp.sum)(xs), xs.sum(axis=1))

    def test_sum_specific_axis(self):
        xs = RNG.normal(size=(2, 3, 4))
        out = vmap(lambda m: jnp.sum(m, axis=1))(xs)
        assert np.allclose(out, xs.sum(axis=2))

    def test_min_max_mean(self):
        xs = RNG.normal(size=(3, 8))
        assert np.allclose(vmap(jnp.min)(xs), xs.min(axis=1))
        assert np.allclose(vmap(jnp.max)(xs), xs.max(axis=1))
        assert np.allclose(vmap(jnp.mean)(xs), xs.mean(axis=1))


class TestGatherScatterBatching:
    def test_take_batched_indices(self):
        table = np.arange(10.0)
        idxs = np.array([[0, 3], [9, 9], [5, 1]])
        out = vmap(lambda i: jnp.take(table, i), in_axes=0)(idxs)
        assert np.allclose(out, table[idxs])

    def test_take_batched_table(self):
        tables = RNG.normal(size=(3, 6))
        idx = np.array([5, 0, 2])
        out = vmap(lambda t: jnp.take(t, idx))(tables)
        assert np.allclose(out, tables[:, idx])

    def test_take_both_batched(self):
        tables = RNG.normal(size=(4, 6))
        idxs = RNG.integers(0, 6, size=(4, 3))
        out = vmap(lambda t, i: jnp.take(t, i))(tables, idxs)
        looped = np.stack([t[i] for t, i in zip(tables, idxs)])
        assert np.allclose(out, looped)

    def test_scatter_add_batched(self):
        def one(z, i, v):
            return jnp.scatter_add(z, i, v)

        zs = np.zeros((2, 5))
        idxs = np.array([[0, 0], [4, 2]])
        vals = np.ones((2, 2))
        out = vmap(one)(zs, idxs, vals)
        expect = np.zeros((2, 5))
        expect[0, 0] = 2
        expect[1, 4] = 1
        expect[1, 2] = 1
        assert np.allclose(out, expect)

    def test_scatter_unbatched_operand(self):
        # Each batch element scatters into its own copy of a shared base.
        def one(i, v, base):
            return jnp.scatter_add(base, i, v)

        idxs = np.array([[0], [1]])
        vals = np.ones((2, 1))
        out = vmap(one, in_axes=(0, 0, None))(idxs, vals, np.zeros(3))
        assert np.allclose(out, [[1, 0, 0], [0, 1, 0]])

    def test_static_slice_batching(self):
        xs = RNG.normal(size=(4, 10))
        out = vmap(lambda r: r[2:5])(xs)
        assert np.allclose(out, xs[:, 2:5])

    def test_static_scatter_batching(self):
        def one(r):
            return r.at[1:3].set(0.0)

        # .at on numpy arrays goes through vmap's tracer.
        xs = np.ones((2, 4))
        out = vmap(one)(xs)
        assert np.allclose(out, [[1, 0, 0, 1], [1, 0, 0, 1]])


class TestMatmulBatching:
    def test_matrix_vector(self):
        ms = RNG.normal(size=(3, 4, 5))
        vs = RNG.normal(size=(3, 5))
        out = vmap(jnp.matmul)(ms, vs)
        looped = np.stack([m @ v for m, v in zip(ms, vs)])
        assert np.allclose(out, looped)

    def test_vector_vector(self):
        a = RNG.normal(size=(6, 4))
        b = RNG.normal(size=(6, 4))
        out = vmap(jnp.dot)(a, b)
        assert np.allclose(out, np.einsum("bi,bi->b", a, b))

    def test_unbatched_matrix(self):
        m = RNG.normal(size=(4, 5))
        vs = RNG.normal(size=(3, 5))
        out = vmap(lambda v: jnp.matmul(m, v), in_axes=0)(vs)
        assert np.allclose(out, vs @ m.T)


class TestComposition:
    def test_vmap_inside_jit(self):
        @jit
        def f(m, w):
            return vmap(lambda r: jnp.sum(r * w), in_axes=0)(m)

        m = RNG.normal(size=(5, 3))
        w = np.arange(3.0)
        assert np.allclose(f(m, w), m @ w)
        assert f.n_traces == 1
        f(m, w)
        assert f.n_traces == 1

    def test_nested_vmap(self):
        def inner(x, y):
            return x * y

        xs = RNG.normal(size=(2, 3))
        ys = RNG.normal(size=(2, 3))
        out = vmap(vmap(inner))(xs, ys)
        assert np.allclose(out, xs * ys)

    def test_vmap_of_jit_inlines(self):
        inner = jit(lambda r: r * 2)
        out = vmap(inner)(np.arange(6.0).reshape(2, 3))
        assert np.allclose(out, np.arange(6.0).reshape(2, 3) * 2)

    def test_triple_loop_pattern(self):
        """The paper's kernel shape: vmap over detectors, then intervals."""

        def per_interval(data, amp):
            return data + amp

        def per_detector(det_data, det_amps):
            return vmap(per_interval)(det_data, det_amps)

        data = RNG.normal(size=(3, 4, 16))  # (det, interval, sample)
        amps = RNG.normal(size=(3, 4))

        out = jit(lambda d, a: vmap(per_detector)(d, a))(data, amps)
        assert np.allclose(out, data + amps[:, :, None])
