"""Error-message quality (paper §3.3).

The paper contrasts the two toolchains' debugging experiences: JAX's
error messages were helpful; the OpenMP toolchain gave "minimalist, often
seemingly unrelated" errors or segfaults.  The shims' errors are part of
the reproduced programming models, so their *content* is under test:
every restriction must explain itself and point at the remedy.
"""

import numpy as np
import pytest

from repro.jaxshim import jit, jnp
from repro.jaxshim.errors import (
    ConcretizationError,
    ShapeError,
    TracerArrayConversionError,
    TracerError,
)
from repro.ompshim import NotPresentError, OmpTargetRuntime
from repro.accel import SimulatedDevice


def _message(excinfo) -> str:
    return str(excinfo.value)


class TestJaxshimErrorMessages:
    def test_mutation_error_names_the_remedy(self):
        @jit
        def f(a):
            a[0] = 1.0
            return a

        with pytest.raises(TracerError) as e:
            f(np.zeros(2))
        msg = _message(e)
        # The exact alternative the paper quotes: x.at[idx].set(y).
        assert ".at[idx].set(y)" in msg
        assert "immutable" in msg

    def test_concretization_error_suggests_where_and_static_args(self):
        @jit
        def f(a):
            if a[0] > 0:
                return a
            return -a

        with pytest.raises(ConcretizationError) as e:
            f(np.ones(2))
        msg = _message(e)
        assert "jnp.where" in msg
        assert "static argument" in msg

    def test_mask_error_explains_padding(self):
        @jit
        def f(a):
            return a[a > 0]

        with pytest.raises(ShapeError) as e:
            f(np.arange(3.0))
        msg = _message(e)
        assert "data-dependent" in msg
        assert "pads" in msg or "pad" in msg  # points at the TOAST workaround

    def test_conversion_error_actionable(self):
        @jit
        def f(a):
            return np.asarray(a)

        with pytest.raises(TracerArrayConversionError) as e:
            f(np.ones(2))
        assert "jit" in _message(e)

    def test_shape_mismatch_reports_shapes(self):
        @jit
        def f(a, b):
            return a + b

        with pytest.raises(ShapeError) as e:
            f(np.zeros(3), np.zeros(4))
        msg = _message(e)
        assert "(3,)" in msg and "(4,)" in msg


class TestOmpshimErrorMessages:
    def test_not_present_points_at_mapping(self):
        rt = OmpTargetRuntime(SimulatedDevice(memory_bytes=1 << 20))
        with pytest.raises(NotPresentError) as e:
            rt.device_view(np.zeros(4))
        msg = _message(e)
        # Where the real toolchain would segfault, the shim says what to do.
        assert "target_enter_data" in msg or "target_data" in msg
        assert "not present" in msg

    def test_oom_reports_capacity_and_fragmentation(self):
        from repro.accel import MemoryPool, OutOfDeviceMemoryError

        pool = MemoryPool(1024)
        pool.allocate(1024)
        with pytest.raises(OutOfDeviceMemoryError) as e:
            pool.allocate(512)
        msg = _message(e)
        assert "512" in msg  # the request
        assert "1024" in msg  # the capacity
        assert "fragment" in msg


class TestPoolFreeDiagnostics:
    """A bad ``free`` must say where the offset sits, not just reject it."""

    def _pool(self):
        from repro.accel import MemoryPool

        return MemoryPool(1 << 16, alignment=256)

    def test_free_inside_live_block_names_the_block_start(self):
        from repro.accel.errors import InvalidFreeError

        pool = self._pool()
        off = pool.allocate(1024)
        with pytest.raises(InvalidFreeError) as e:
            pool.free(off + 64)
        msg = _message(e)
        assert f"inside the live block [{off}, {off + 1024})" in msg
        assert "not at its start" in msg
        assert f"({off} for this block)" in msg  # the remedy
        assert "allocs" in msg  # pool stats context

    def test_double_free_points_at_nearest_live_block(self):
        from repro.accel.errors import InvalidFreeError

        pool = self._pool()
        a = pool.allocate(256)
        b = pool.allocate(256)
        pool.free(a)
        with pytest.raises(InvalidFreeError) as e:
            pool.free(a)
        msg = _message(e)
        assert "double-free" in msg
        assert f"[{b}, {b + 256})" in msg  # the nearest live block

    def test_free_on_empty_pool_mentions_no_live_allocations(self):
        from repro.accel.errors import InvalidFreeError

        pool = self._pool()
        with pytest.raises(InvalidFreeError) as e:
            pool.free(512)
        msg = _message(e)
        assert "no live allocations" in msg


class TestDispatchErrorMessages:
    def test_missing_impl_lists_registered_implementations(self):
        from repro.core.dispatch import (
            ImplementationType,
            get_kernel,
            kernel_registry,
        )

        # scan_map registers all four implementations; use a synthetic
        # kernel with a known subset so the listing is under test.
        from repro.kernels import ArgSpec, KernelSpec

        name = "__err_quality_partial"
        if not kernel_registry.has(name, ImplementationType.NUMPY):
            kernel_registry.register_spec(
                KernelSpec(
                    name,
                    args=(ArgSpec("x"),),
                    interval_batched=False,
                    parity=False,
                    waive_impls=("python", "numpy", "jax", "omp_target"),
                )
            )
            impl_fn = lambda x, accel=None, use_accel=False: None  # noqa: E731
            kernel_registry.register(name, ImplementationType.NUMPY, impl_fn)
            kernel_registry.register(name, ImplementationType.PYTHON, impl_fn)
        with pytest.raises(KeyError) as e:
            kernel_registry.resolve(name, ImplementationType.JAX, allow_fallback=False)
        msg = _message(e)
        assert "no jax implementation" in msg
        assert "registered: numpy, python" in msg

    def test_unknown_kernel_lists_known_kernels(self):
        from repro.core.dispatch import ImplementationType, kernel_registry

        with pytest.raises(KeyError) as e:
            kernel_registry.resolve("__no_such_kernel", ImplementationType.NUMPY)
        assert "known" in _message(e)
