"""Error-message quality (paper §3.3).

The paper contrasts the two toolchains' debugging experiences: JAX's
error messages were helpful; the OpenMP toolchain gave "minimalist, often
seemingly unrelated" errors or segfaults.  The shims' errors are part of
the reproduced programming models, so their *content* is under test:
every restriction must explain itself and point at the remedy.
"""

import numpy as np
import pytest

from repro.jaxshim import jit, jnp
from repro.jaxshim.errors import (
    ConcretizationError,
    ShapeError,
    TracerArrayConversionError,
    TracerError,
)
from repro.ompshim import NotPresentError, OmpTargetRuntime
from repro.accel import SimulatedDevice


def _message(excinfo) -> str:
    return str(excinfo.value)


class TestJaxshimErrorMessages:
    def test_mutation_error_names_the_remedy(self):
        @jit
        def f(a):
            a[0] = 1.0
            return a

        with pytest.raises(TracerError) as e:
            f(np.zeros(2))
        msg = _message(e)
        # The exact alternative the paper quotes: x.at[idx].set(y).
        assert ".at[idx].set(y)" in msg
        assert "immutable" in msg

    def test_concretization_error_suggests_where_and_static_args(self):
        @jit
        def f(a):
            if a[0] > 0:
                return a
            return -a

        with pytest.raises(ConcretizationError) as e:
            f(np.ones(2))
        msg = _message(e)
        assert "jnp.where" in msg
        assert "static argument" in msg

    def test_mask_error_explains_padding(self):
        @jit
        def f(a):
            return a[a > 0]

        with pytest.raises(ShapeError) as e:
            f(np.arange(3.0))
        msg = _message(e)
        assert "data-dependent" in msg
        assert "pads" in msg or "pad" in msg  # points at the TOAST workaround

    def test_conversion_error_actionable(self):
        @jit
        def f(a):
            return np.asarray(a)

        with pytest.raises(TracerArrayConversionError) as e:
            f(np.ones(2))
        assert "jit" in _message(e)

    def test_shape_mismatch_reports_shapes(self):
        @jit
        def f(a, b):
            return a + b

        with pytest.raises(ShapeError) as e:
            f(np.zeros(3), np.zeros(4))
        msg = _message(e)
        assert "(3,)" in msg and "(4,)" in msg


class TestOmpshimErrorMessages:
    def test_not_present_points_at_mapping(self):
        rt = OmpTargetRuntime(SimulatedDevice(memory_bytes=1 << 20))
        with pytest.raises(NotPresentError) as e:
            rt.device_view(np.zeros(4))
        msg = _message(e)
        # Where the real toolchain would segfault, the shim says what to do.
        assert "target_enter_data" in msg or "target_data" in msg
        assert "not present" in msg

    def test_oom_reports_capacity_and_fragmentation(self):
        from repro.accel import MemoryPool, OutOfDeviceMemoryError

        pool = MemoryPool(1024)
        pool.allocate(1024)
        with pytest.raises(OutOfDeviceMemoryError) as e:
            pool.allocate(512)
        msg = _message(e)
        assert "512" in msg  # the request
        assert "1024" in msg  # the capacity
        assert "fragment" in msg
