"""Tests for the simulated accelerator: clock, pool, buffers, device."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel import (
    DeviceBuffer,
    DeviceSpec,
    GpuSharingModel,
    InvalidFreeError,
    MemoryPool,
    OutOfDeviceMemoryError,
    SimulatedDevice,
    TransferError,
    TransferModel,
    VirtualClock,
)


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_advance(self):
        c = VirtualClock()
        c.advance(1.5)
        c.advance(0.5)
        assert c.now == 2.0

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1)
        with pytest.raises(ValueError):
            VirtualClock().charge("x", -1)

    def test_regions(self):
        c = VirtualClock()
        with c.region("a"):
            c.advance(1.0)
        with c.region("b"):
            c.advance(2.0)
        assert c.region_time("a") == 1.0
        assert c.region_time("b") == 2.0
        assert c.now == 3.0

    def test_nested_regions_charge_innermost(self):
        c = VirtualClock()
        with c.region("outer"):
            c.advance(1.0)
            with c.region("inner"):
                c.advance(2.0)
        assert c.region_time("outer") == 1.0
        assert c.region_time("inner") == 2.0

    def test_charge_and_counts(self):
        c = VirtualClock()
        c.charge("k", 0.1)
        c.charge("k", 0.2)
        assert np.isclose(c.region_time("k"), 0.3)
        assert c.region_count("k") == 2

    def test_reset(self):
        c = VirtualClock()
        c.charge("k", 1.0)
        c.reset()
        assert c.now == 0.0
        assert c.regions() == {}


class TestMemoryPool:
    def test_alloc_free_roundtrip(self):
        p = MemoryPool(4096)
        off = p.allocate(100)
        assert p.allocated_bytes == 256  # rounded to alignment
        p.free(off)
        assert p.allocated_bytes == 0
        p.verify()

    def test_alignment(self):
        p = MemoryPool(4096)
        a = p.allocate(1)
        b = p.allocate(1)
        assert a % 256 == 0 and b % 256 == 0
        assert b - a == 256

    def test_out_of_memory(self):
        p = MemoryPool(1024)
        p.allocate(1024)
        with pytest.raises(OutOfDeviceMemoryError):
            p.allocate(1)

    def test_reuse_after_free(self):
        p = MemoryPool(1024)
        a = p.allocate(1024)
        p.free(a)
        b = p.allocate(1024)
        assert b == a

    def test_coalescing(self):
        p = MemoryPool(3 * 256)
        a = p.allocate(256)
        b = p.allocate(256)
        c = p.allocate(256)
        p.free(a)
        p.free(c)
        p.free(b)  # middle free must merge everything back into one block
        assert p.stats().n_blocks_free == 1
        d = p.allocate(3 * 256)
        assert d == 0

    def test_double_free_raises(self):
        p = MemoryPool(1024)
        a = p.allocate(100)
        p.free(a)
        with pytest.raises(InvalidFreeError):
            p.free(a)

    def test_bogus_free_raises(self):
        with pytest.raises(InvalidFreeError):
            MemoryPool(1024).free(0)

    def test_high_water(self):
        p = MemoryPool(4096)
        a = p.allocate(1024)
        b = p.allocate(1024)
        p.free(a)
        p.free(b)
        assert p.high_water_bytes == 2048

    def test_fragmentation_oom(self):
        # Free bytes exist but no block is big enough.
        p = MemoryPool(4 * 256)
        offs = [p.allocate(256) for _ in range(4)]
        p.free(offs[0])
        p.free(offs[2])
        with pytest.raises(OutOfDeviceMemoryError):
            p.allocate(512)
        p.verify()

    def test_bad_args(self):
        with pytest.raises(ValueError):
            MemoryPool(0)
        with pytest.raises(ValueError):
            MemoryPool(100, alignment=3)
        with pytest.raises(ValueError):
            MemoryPool(1024).allocate(0)

    @settings(max_examples=60, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(st.booleans(), st.integers(1, 2000)), min_size=1, max_size=40
        )
    )
    def test_invariants_under_random_workload(self, ops):
        p = MemoryPool(64 * 1024)
        live = []
        for is_alloc, size in ops:
            if is_alloc or not live:
                try:
                    live.append(p.allocate(size))
                except OutOfDeviceMemoryError:
                    pass
            else:
                p.free(live.pop(size % len(live)))
            p.verify()
        for off in live:
            p.free(off)
        p.verify()
        assert p.allocated_bytes == 0


class TestDeviceBuffer:
    def test_write_read_roundtrip(self):
        buf = DeviceBuffer(0, 1024)
        data = np.arange(64, dtype=np.float64)
        buf.write_from(data)
        out = np.zeros_like(data)
        buf.read_into(out)
        assert np.array_equal(out, data)

    def test_typed_view_aliases_storage(self):
        buf = DeviceBuffer(0, 1024)
        view = buf.array(np.float64, (16,))
        view[:] = 7.0
        out = np.zeros(16)
        buf.read_into(out)
        assert np.all(out == 7.0)

    def test_view_too_large_raises(self):
        buf = DeviceBuffer(0, 64)
        with pytest.raises(TransferError):
            buf.array(np.float64, (100,))

    def test_write_too_large_raises(self):
        buf = DeviceBuffer(0, 64)
        with pytest.raises(TransferError):
            buf.write_from(np.zeros(100))

    def test_zero(self):
        buf = DeviceBuffer(0, 64)
        buf.write_from(np.ones(8))
        buf.zero()
        out = np.empty(8)
        buf.read_into(out)
        assert np.all(out == 0)

    def test_use_after_free_raises(self):
        buf = DeviceBuffer(0, 64)
        buf.mark_freed()
        with pytest.raises(TransferError):
            buf.write_from(np.zeros(1))
        with pytest.raises(TransferError):
            buf.array(np.float64, (1,))

    def test_noncontiguous_read_raises(self):
        buf = DeviceBuffer(0, 1024)
        host = np.zeros((8, 8))[:, ::2]
        with pytest.raises(TransferError):
            buf.read_into(host)


class TestTransferModel:
    def test_latency_floor(self):
        tm = TransferModel(latency_s=1e-5, bandwidth_bps=1e9)
        assert tm.time(0) == 1e-5

    def test_bandwidth_term(self):
        tm = TransferModel(latency_s=0.0, bandwidth_bps=1e9)
        assert np.isclose(tm.time(10**9), 1.0)

    def test_batched(self):
        tm = TransferModel(latency_s=1e-6, bandwidth_bps=1e9)
        assert np.isclose(tm.batched_time([1000, 1000]), 2 * tm.time(1000))

    def test_bad_args(self):
        with pytest.raises(ValueError):
            TransferModel(latency_s=-1)
        with pytest.raises(ValueError):
            TransferModel(bandwidth_bps=0)
        with pytest.raises(ValueError):
            TransferModel().time(-1)


class TestGpuSharing:
    def test_exclusive_is_one(self):
        assert GpuSharingModel(1, True).kernel_time_multiplier() == 1.0
        assert GpuSharingModel(1, False).kernel_time_multiplier() == 1.0

    def test_no_mps_serializes(self):
        # The paper: without MPS the driver context-switches, capping
        # performance to one process per device.
        assert GpuSharingModel(4, False).kernel_time_multiplier() == 4.0

    def test_mps_mild_contention(self):
        m = GpuSharingModel(4, True, contention=0.05).kernel_time_multiplier()
        assert 1.0 < m < 1.5

    def test_mps_always_at_least_as_fast(self):
        for p in (1, 2, 4, 8, 16):
            with_mps = GpuSharingModel(p, True).kernel_time_multiplier()
            without = GpuSharingModel(p, False).kernel_time_multiplier()
            assert with_mps <= without

    def test_bad_args(self):
        with pytest.raises(ValueError):
            GpuSharingModel(0, True)
        with pytest.raises(ValueError):
            GpuSharingModel(1, True, contention=1.0)


class TestSimulatedDevice:
    def test_default_spec_is_a100(self):
        dev = SimulatedDevice()
        assert "A100" in dev.spec.name
        assert dev.pool.capacity == 40 * 1024**3

    def test_alloc_free_accounting(self):
        dev = SimulatedDevice(memory_bytes=1 << 20)
        buf = dev.alloc(1000)
        assert dev.live_buffers == 1
        assert dev.allocated_bytes >= 1000
        dev.free(buf)
        assert dev.live_buffers == 0
        assert dev.allocated_bytes == 0

    def test_free_foreign_buffer_raises(self):
        dev = SimulatedDevice(memory_bytes=1 << 20)
        rogue = DeviceBuffer(0, 64)
        with pytest.raises(InvalidFreeError):
            dev.free(rogue)

    def test_transfers_charge_clock(self):
        dev = SimulatedDevice(memory_bytes=1 << 20)
        buf = dev.alloc(8 * 1024)
        host = np.arange(1024, dtype=np.float64)
        dev.update_device(buf, host)
        out = np.zeros_like(host)
        dev.update_host(buf, out)
        assert np.array_equal(out, host)
        assert dev.clock.region_time("accel_data_update_device") > 0
        assert dev.clock.region_time("accel_data_update_host") > 0

    def test_reset_charges_and_zeroes(self):
        dev = SimulatedDevice(memory_bytes=1 << 20)
        buf = dev.alloc(64)
        buf.write_from(np.ones(8))
        dev.reset(buf)
        out = np.empty(8)
        buf.read_into(out)
        assert np.all(out == 0)
        assert dev.clock.region_time("accel_data_reset") > 0

    def test_launch_records_time_and_count(self):
        dev = SimulatedDevice(memory_bytes=1 << 20)
        dev.launch("my_kernel", 1.0e-3)
        assert dev.kernels_launched == 1
        assert dev.clock.region_time("my_kernel") >= 1.0e-3

    def test_launch_applies_sharing(self):
        dev = SimulatedDevice(memory_bytes=1 << 20)
        dev.sharing = GpuSharingModel(procs_per_gpu=4, mps_enabled=False)
        dev.launch("k", 1.0e-3)
        assert dev.clock.region_time("k") >= 4.0e-3

    def test_launch_bad_args(self):
        dev = SimulatedDevice(memory_bytes=1 << 20)
        with pytest.raises(ValueError):
            dev.launch("k", -1.0)
        with pytest.raises(ValueError):
            dev.launch("k", 1.0, n_launches=0)

    def test_oom_on_small_device(self):
        dev = SimulatedDevice(memory_bytes=1024)
        with pytest.raises(OutOfDeviceMemoryError):
            dev.alloc(10_000)

    def test_reset_all(self):
        dev = SimulatedDevice(memory_bytes=1 << 20)
        dev.alloc(100)
        dev.launch("k", 1e-3)
        dev.reset_all()
        assert dev.live_buffers == 0
        assert dev.clock.now == 0.0
        assert dev.kernels_launched == 0

    def test_bad_spec(self):
        with pytest.raises(ValueError):
            DeviceSpec(memory_bytes=0)
        with pytest.raises(ValueError):
            DeviceSpec(kernel_launch_overhead_s=-1)


class TestAllocationPolicies:
    def test_bad_policy(self):
        with pytest.raises(ValueError):
            MemoryPool(1024, policy="worst_fit")

    def test_best_fit_picks_tightest_block(self):
        # Carve the arena into free blocks of 512 and 256 with live
        # separators, then ask for 256: best-fit must take the 256 block.
        p = MemoryPool(2048, policy="best_fit")
        a = p.allocate(512)
        sep1 = p.allocate(256)
        b = p.allocate(256)
        sep2 = p.allocate(256)
        p.free(a)  # free block of 512 at offset 0
        p.free(b)  # free block of 256 in the middle
        off = p.allocate(256)
        assert off == 512 + 256  # the tight block, not the 512 one
        p.verify()
        p.free(off)
        p.free(sep1)
        p.free(sep2)
        p.verify()

    def test_first_fit_picks_lowest_block(self):
        p = MemoryPool(2048, policy="first_fit")
        a = p.allocate(512)
        sep1 = p.allocate(256)
        b = p.allocate(256)
        p.allocate(256)
        p.free(a)
        p.free(b)
        assert p.allocate(256) == 0  # first fit: the low 512 block

    def test_best_fit_survives_fragmentation_first_fit_does_not(self):
        # A workload where best-fit keeps a large block intact: free
        # blocks of 256 and 1024 exist; a stream of 256-allocations under
        # first-fit nibbles the 1024 block (it comes first), while
        # best-fit preserves it for the final 1024 request.
        def build(policy):
            p = MemoryPool(2048, alignment=256, policy=policy)
            big = p.allocate(1024)       # offset 0
            keep = p.allocate(512)       # separator
            small = p.allocate(256)      # offset 1536
            p.free(big)
            p.free(small)
            return p, keep

        p_best, _ = build("best_fit")
        p_best.allocate(256)             # goes to the tight 256 block
        assert p_best.allocate(1024) == 0  # the big block survived

        p_first, _ = build("first_fit")
        p_first.allocate(256)            # nibbles the 1024 block
        with pytest.raises(OutOfDeviceMemoryError):
            p_first.allocate(1024)

    @settings(max_examples=40, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(st.booleans(), st.integers(1, 2000)), min_size=1, max_size=40
        )
    )
    def test_best_fit_invariants(self, ops):
        p = MemoryPool(64 * 1024, policy="best_fit")
        live = []
        for is_alloc, size in ops:
            if is_alloc or not live:
                try:
                    live.append(p.allocate(size))
                except OutOfDeviceMemoryError:
                    pass
            else:
                p.free(live.pop(size % len(live)))
            p.verify()
        for off in live:
            p.free(off)
        p.verify()
        assert p.allocated_bytes == 0
