"""Tests for jaxshim fundamentals: pytrees, config, eager ops, errors."""

import numpy as np
import pytest

from repro.jaxshim import ShapedArray, config, jnp
from repro.jaxshim.errors import ShapeError
from repro.jaxshim.pytree import tree_flatten, tree_map, tree_unflatten


@pytest.fixture(autouse=True)
def x64_mode():
    with config.temporarily(enable_x64=True):
        yield


class TestPytree:
    def test_flatten_leaf(self):
        leaves, td = tree_flatten(5)
        assert leaves == [5]
        assert td.n_leaves == 1

    def test_flatten_nested(self):
        tree = {"b": [1, 2], "a": (3, {"x": 4})}
        leaves, td = tree_flatten(tree)
        # dict keys sorted: a before b.
        assert leaves == [3, 4, 1, 2]
        assert tree_unflatten(td, leaves) == tree

    def test_unflatten_wrong_count(self):
        _, td = tree_flatten((1, 2))
        with pytest.raises(ValueError):
            tree_unflatten(td, [1, 2, 3])

    def test_tree_map(self):
        assert tree_map(lambda x: x * 2, {"a": 1, "b": (2, 3)}) == {"a": 2, "b": (4, 6)}

    def test_none_is_leaf(self):
        leaves, td = tree_flatten([None, 1])
        assert leaves == [None, 1]


class TestConfig:
    def test_defaults_match_jax(self):
        # JAX defaults: x64 off, preallocation on -- the paper flips both.
        fresh_x64 = config.enable_x64  # fixture set True; check the knobs exist
        assert isinstance(fresh_x64, bool)
        assert config.preallocate_fraction == 0.75

    def test_canonical_dtype_demotes(self):
        with config.temporarily(enable_x64=False):
            assert config.canonical_dtype(np.float64) == np.float32
            assert config.canonical_dtype(np.int64) == np.int32
            assert config.canonical_dtype(np.float32) == np.float32

    def test_canonical_dtype_x64_passthrough(self):
        assert config.canonical_dtype(np.float64) == np.float64

    def test_unknown_flag(self):
        with pytest.raises(AttributeError):
            config.update("nonexistent", 1)

    def test_temporarily_restores(self):
        before = config.enable_x64
        with config.temporarily(enable_x64=not before):
            assert config.enable_x64 != before
        assert config.enable_x64 == before


class TestShapedArray:
    def test_properties(self):
        a = ShapedArray((3, 4), np.float64)
        assert a.size == 12
        assert a.ndim == 2
        assert a.nbytes == 96

    def test_repr(self):
        assert repr(ShapedArray((2,), np.float32)) == "float32[2]"

    def test_frozen(self):
        a = ShapedArray((2,), np.float64)
        with pytest.raises(Exception):
            a.shape = (3,)


class TestEagerOps:
    """Outside any transformation, jnp behaves exactly like numpy."""

    def test_arithmetic(self):
        x = np.arange(5.0)
        assert np.allclose(jnp.add(x, 1.0), x + 1)
        assert np.allclose(jnp.multiply(x, x), x * x)
        assert np.allclose(jnp.sqrt(x), np.sqrt(x))
        assert np.allclose(jnp.arctan2(x, 1 + x), np.arctan2(x, 1 + x))

    def test_comparisons_bool(self):
        x = np.arange(5.0)
        out = jnp.greater(x, 2.0)
        assert out.dtype == bool
        assert out.sum() == 2

    def test_where(self):
        x = np.arange(5.0)
        assert np.allclose(jnp.where(x > 2, x, 0.0), [0, 0, 0, 3, 4])

    def test_reductions(self):
        x = np.arange(12.0).reshape(3, 4)
        assert jnp.sum(x) == 66.0
        assert np.allclose(jnp.sum(x, axis=1), x.sum(axis=1))
        assert jnp.max(x) == 11.0
        assert np.allclose(jnp.mean(x, axis=0), x.mean(axis=0))

    def test_take_clips(self):
        x = np.arange(5.0)
        out = jnp.take(x, np.array([0, 7, -1]))
        # mode="clip": 7 -> 4; -1 clips to 0 in clip mode.
        assert np.allclose(out, [0.0, 4.0, 0.0])

    def test_scatter_add_duplicates(self):
        out = jnp.scatter_add(np.zeros(4), np.array([1, 1, 2]), np.ones(3))
        assert np.allclose(out, [0, 2, 1, 0])

    def test_scatter_set(self):
        out = jnp.scatter_set(np.zeros(4), np.array([0, 3]), np.array([5.0, 6.0]))
        assert np.allclose(out, [5, 0, 0, 6])

    def test_scatter_does_not_mutate_input(self):
        base = np.zeros(4)
        jnp.scatter_add(base, np.array([0]), np.array([1.0]))
        assert np.all(base == 0)

    def test_shape_ops(self):
        x = np.arange(6.0)
        assert jnp.reshape(x, (2, 3)).shape == (2, 3)
        assert jnp.transpose(x.reshape(2, 3)).shape == (3, 2)
        assert jnp.moveaxis(np.zeros((2, 3, 4)), 0, 2).shape == (3, 4, 2)
        assert jnp.expand_dims(x, 0).shape == (1, 6)
        assert jnp.squeeze(np.zeros((1, 6))).shape == (6,)
        assert jnp.broadcast_to(x, (4, 6)).shape == (4, 6)

    def test_stack_concatenate(self):
        a, b = np.zeros(3), np.ones(3)
        assert jnp.stack([a, b]).shape == (2, 3)
        assert jnp.concatenate([a, b]).shape == (6,)
        with pytest.raises(ValueError):
            jnp.concatenate([])

    def test_matmul(self):
        a = np.arange(6.0).reshape(2, 3)
        b = np.arange(12.0).reshape(3, 4)
        assert np.allclose(jnp.matmul(a, b), a @ b)
        v = np.arange(3.0)
        assert np.allclose(jnp.dot(v, v), v @ v)

    def test_astype(self):
        x = jnp.astype(np.arange(3.0), np.int64)
        assert x.dtype == np.int64

    def test_creation_dtypes(self):
        assert jnp.zeros(3).dtype == np.float64  # x64 on
        with config.temporarily(enable_x64=False):
            assert jnp.zeros(3).dtype == np.float32
            assert jnp.arange(3).dtype == np.int32

    def test_squeeze_bad_axis(self):
        with pytest.raises(ShapeError):
            jnp.squeeze(np.zeros((2, 3)), axis=0)

    def test_bad_reshape(self):
        # Eagerly, NumPy's own error surfaces; under jit the shape rule
        # raises the shim's ShapeError at trace time (see the jit tests).
        with pytest.raises((ShapeError, ValueError)):
            jnp.reshape(np.zeros(5), (2, 3))

    def test_bad_reshape_under_jit(self):
        from repro.jaxshim import jit

        @jit
        def f(a):
            return jnp.reshape(a, (2, 3))

        with pytest.raises(ShapeError):
            f(np.zeros(5))

    def test_at_helper_on_numpy(self):
        from repro.jaxshim.numpy_api import at

        out = at(np.zeros(4))[np.array([2])].set(np.array([9.0]))
        assert np.allclose(out, [0, 0, 9, 0])

    def test_bitwise_and_shift(self):
        x = np.array([0b1100], dtype=np.int64)
        assert jnp.bitwise_and(x, 0b1010)[0] == 0b1000
        assert jnp.left_shift(x, 1)[0] == 0b11000
        assert jnp.right_shift(x, 2)[0] == 0b11
