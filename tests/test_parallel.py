"""Tests for repro.parallel: shared-memory sharding across live processes.

The load-bearing contract: the reduced noise-weighted map is **bitwise
identical** for any worker count, and stays bitwise identical when a
worker is crash-injected mid-shard and recovered -- because every shard is
a pure function of its seeded inputs and the parent reduces per-observation
partials in fixed observation order.
"""

import numpy as np
import pytest

from repro import obs, resilience
from repro.core.dispatch import ImplementationType
from repro.mpi.simworld import SimWorld
from repro.parallel import (
    CRASH_EXIT_CODE,
    ElasticAborted,
    ElasticConfig,
    ProcessEngine,
    SharedSlab,
    SubsetComm,
    TaskCheckpoint,
    run_parallel_satellite,
    slab_until_registered,
)
from repro.resilience import named_plan
from repro.workflows.satellite import SizeSpec

pytestmark = pytest.mark.usefixtures("leak_sentinel")

#: Small enough for CI, big enough to shard 4 ways.
SIZE = SizeSpec("par_test", 4, 2, 512, 16)

#: Short leases/hedges so injected stalls genuinely expire leases and
#: trigger hedging within CI-friendly wall clock.
TIGHT = ElasticConfig(
    lease_s=0.5, heartbeat_s=0.1, hedge_s=0.2, total_timeout_s=60.0
)

#: Hedging pushed out of reach: the only recovery for a silent worker is
#: lease expiry + steal (what the heartbeat-loss test pins down).
STEAL_ONLY = ElasticConfig(
    lease_s=0.4, heartbeat_s=0.1, hedge_s=30.0, total_timeout_s=60.0
)


def _run(n_procs, **kw):
    out = run_parallel_satellite(
        SIZE, implementation=ImplementationType.NUMPY, n_procs=n_procs, **kw
    )
    return out


class TestSharedSlab:
    def test_roundtrip_attach(self):
        with SharedSlab.create(
            {"a": ((4, 3), np.float64), "b": ((7,), np.int64)}
        ) as slab:
            slab.array("a")[:] = 2.5
            slab.array("b")[:] = np.arange(7)
            other = SharedSlab.attach(slab.spec)
            assert np.array_equal(other.array("a"), np.full((4, 3), 2.5))
            assert np.array_equal(other.array("b"), np.arange(7))
            other.array("b")[0] = -9
            assert slab.array("b")[0] == -9
            other.close()

    def test_arrays_start_zeroed_and_aligned(self):
        with SharedSlab.create({"x": ((5, 5), np.float64)}) as slab:
            assert not slab.array("x").any()
            for _, offset, _, _ in slab.spec.layout:
                assert offset % 64 == 0

    def test_unknown_array_name(self):
        with SharedSlab.create({"x": ((2,), np.float64)}) as slab:
            with pytest.raises(KeyError):
                slab.array("y")


class TestSlabLeakGuard:
    """The create->register crash window must not strand /dev/shm segments."""

    def test_crash_before_registration_unlinks_the_segment(self):
        """A worker that dies between allocating its result slab and
        registering it (the ``parallel.worker`` fault site) must leave no
        shared-memory segment behind -- the guard's ``finally`` unlinks it."""
        plan = named_plan("worker-crash", seed=5)
        spec = None
        with resilience.resilient(plan) as ctrl:
            with pytest.raises(RuntimeError, match="crashed"):
                with slab_until_registered({"zmap": ((8, 3), np.float64)}) as slab:
                    spec = slab.spec
                    # Poll the site like a live worker does; the plan's
                    # WORKER_CRASH is behavioural, so act on it by dying
                    # before mark_registered() -- the leak window.
                    for _ in range(4):
                        if ctrl.check("parallel.worker", rank=0) is not None:
                            raise RuntimeError("worker crashed mid-setup")
        assert spec is not None, "the slab was created before the crash"
        with pytest.raises(FileNotFoundError):
            SharedSlab.attach(spec)  # unlinked, not leaked

    def test_registered_slab_survives_the_guard(self):
        with slab_until_registered({"x": ((4,), np.float64)}) as slab:
            slab.array("x")[:] = 7.0
            spec = slab.spec
            slab.mark_registered()
        other = SharedSlab.attach(spec)  # registration kept the segment alive
        try:
            assert np.array_equal(other.array("x"), np.full(4, 7.0))
        finally:
            other.close()
        # unlink() is owner-gated: the attached handle can't destroy the
        # segment, only the creating slab (the durable owner) can.
        other.unlink()
        slab.close()
        slab.unlink()
        with pytest.raises(FileNotFoundError):
            SharedSlab.attach(spec)  # the owner's unlink destroyed it

    def test_unlink_is_idempotent(self):
        slab = SharedSlab.create({"x": ((2,), np.float64)})
        slab.close()
        slab.unlink()
        slab.unlink()  # second unlink is a no-op, not an error


class TestSharding:
    def test_subset_comm_returns_fixed_indices(self):
        comm = SubsetComm([1, 3])
        assert comm.distribute_observations(5) == [1, 3]
        with pytest.raises(ValueError):
            comm.distribute_observations(3)  # index 3 out of range

    def test_worker_layout_drops_empty_shards(self):
        world = SimWorld(n_nodes=1, procs_per_node=4)
        layout = world.worker_layout(3)
        # 3 observations over 4 ranks: one rank is empty and gets no worker.
        assert len(layout) == 3
        covered = sorted(i for _, shard in layout for i in shard)
        assert covered == [0, 1, 2]
        ranks = [rank for rank, _ in layout]
        assert ranks == sorted(ranks)

    def test_shard_observations_partition(self):
        world = SimWorld(n_nodes=1, procs_per_node=3)
        shards = world.shard_observations(7)
        assert len(shards) == 3
        flat = [i for shard in shards for i in shard]
        assert flat == list(range(7))


class TestDeterminism:
    def test_worker_count_does_not_change_the_map(self):
        serial = _run(1)
        sharded = _run(4)
        assert serial["n_workers"] == 1
        assert sharded["n_workers"] == 4
        assert serial["zmap"].tobytes() == sharded["zmap"].tobytes()
        assert np.any(serial["zmap"])  # a real map, not zeros == zeros

    def test_static_and_elastic_schedulers_agree_bitwise(self):
        elastic = _run(2)
        static = _run(2, scheduler="static")
        assert elastic["scheduler"] == "elastic"
        assert static["scheduler"] == "static"
        assert elastic["zmap"].tobytes() == static["zmap"].tobytes()

    def test_matches_single_process_workflow(self):
        """The parallel path reproduces the serial workflow's zmap.

        Not bit for bit: the serial pipeline accumulates every observation
        into one running map, while the parallel path sums fixed-order
        per-observation partials -- a different floating-point association.
        Bitwise identity is guaranteed across *worker counts*, and this
        cross-check pins the two paths to ULP-level agreement.
        """
        from repro.workflows.satellite import (
            make_satellite_data,
            satellite_processing_pipeline,
        )

        data = make_satellite_data(SIZE)
        pipe = satellite_processing_pipeline(
            SIZE.nside, implementation=ImplementationType.NUMPY
        )
        pipe.apply(data)
        parallel = _run(2)
        serial = np.asarray(data["zmap"])
        np.testing.assert_allclose(serial, parallel["zmap"], rtol=1e-12, atol=1e-12)


class TestCrashRecovery:
    def test_injected_crash_recovers_bitwise(self):
        clean = _run(2)
        plan = named_plan("worker-crash", seed=5)
        with resilience.resilient(plan) as ctrl:
            faulted = _run(2)
        assert faulted["crash_injected_ranks"], "plan should have fired"
        assert faulted["recovered_ranks"] == faulted["crash_injected_ranks"]
        assert ctrl.counters.get("worker_recoveries") == 1
        assert clean["zmap"].tobytes() == faulted["zmap"].tobytes()

    def test_no_controller_means_no_injection(self):
        out = _run(2)
        assert out["crash_injected_ranks"] == []
        assert out["recovered_ranks"] == []


class TestElasticFaults:
    """Stealing, hedging, and lease expiry under injected faults.

    Every scenario must end with a map bitwise identical to the clean run:
    tasks are pure producers into per-observation slab slots and the
    reduction order is fixed, so no steal/hedge/revival schedule may
    change a byte.
    """

    def test_heartbeat_loss_expires_the_lease_and_steals(self):
        clean = _run(2)
        plan = named_plan("heartbeat-loss", seed=3)
        with resilience.resilient(plan) as ctrl:
            faulted = _run(2, elastic_config=STEAL_ONLY)
        counters = faulted["elastic"]["counters"]
        assert counters.get("lease_expiries", 0) >= 1
        assert counters.get("steals", 0) >= 1
        assert ctrl.counters.get("lease_expiries", 0) >= 1
        assert clean["zmap"].tobytes() == faulted["zmap"].tobytes()

    def test_straggler_is_hedged(self):
        clean = _run(2)
        plan = named_plan("straggler", seed=3)
        with resilience.resilient(plan) as ctrl:
            faulted = _run(2, elastic_config=TIGHT)
        counters = faulted["elastic"]["counters"]
        assert counters.get("hedges", 0) >= 1
        assert ctrl.counters.get("hedges", 0) >= 1
        assert clean["zmap"].tobytes() == faulted["zmap"].tobytes()

    def test_elastic_storm_recovers_bitwise(self):
        """Crash + heartbeat loss + straggler in one run."""
        clean = _run(2)
        plan = named_plan("elastic-storm", seed=3)
        with resilience.resilient(plan):
            faulted = _run(2, elastic_config=TIGHT)
        assert faulted["crash_injected_ranks"], "the storm's crash never armed"
        assert clean["zmap"].tobytes() == faulted["zmap"].tobytes()


class TestCheckpointResume:
    """A mid-ensemble kill composed with a worker crash must resume clean."""

    def test_kill_mid_ensemble_then_resume_is_byte_identical(self, tmp_path):
        clean = _run(2)
        root = tmp_path / "ckpt"

        # First run: a worker crash is live AND the parent is killed after
        # the third commit (an external SIGKILL, modeled as ElasticAborted).
        store = TaskCheckpoint(root)
        plan = named_plan("worker-crash", seed=5)
        with resilience.resilient(plan):
            with pytest.raises(ElasticAborted) as excinfo:
                _run(2, checkpoint=store, abort_after_commits=3)
        report = excinfo.value.report
        assert not report.complete
        assert len(store) >= 3  # every commit checkpointed before the kill

        # Resume in a "new process": a fresh store re-reads the .npy files.
        resumed_store = TaskCheckpoint(root)
        assert resumed_store.task_ids() == store.task_ids()
        out = _run(2, checkpoint=resumed_store)
        assert sorted(out["resumed_tasks"]) == store.task_ids()
        assert out["elastic"]["committed"] == SIZE.n_observations - len(store)
        assert clean["zmap"].tobytes() == out["zmap"].tobytes()

    def test_fully_checkpointed_run_spawns_no_workers(self, tmp_path):
        store = TaskCheckpoint(tmp_path / "ckpt")
        first = _run(2, checkpoint=store)
        assert len(store) == SIZE.n_observations
        again = _run(2, checkpoint=store)
        assert again["n_workers"] == 0
        assert sorted(again["resumed_tasks"]) == store.task_ids()
        assert first["zmap"].tobytes() == again["zmap"].tobytes()


class TestObservability:
    def test_worker_events_merge_into_parent_trace(self):
        with obs.tracing() as tracer:
            out = _run(2)
        workers = {
            e.attrs["worker"] for e in tracer.events if "worker" in e.attrs
        }
        assert len(workers) == out["n_workers"]
        spans = [e for e in tracer.events if e.name.startswith("shard_obs_")]
        assert len(spans) == SIZE.n_observations
        assert tracer.metrics.gauges["parallel.workers"].value == 2.0


class TestEngine:
    def test_crash_exit_code_is_nonzero(self):
        assert CRASH_EXIT_CODE != 0

    def test_engine_rejects_unknown_start_method(self):
        with pytest.raises(ValueError):
            ProcessEngine(start_method="no-such-method")
