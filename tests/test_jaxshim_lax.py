"""Tests for the lax control-flow primitives."""

import numpy as np
import pytest

from repro.jaxshim import config, jit, jnp, vmap
from repro.jaxshim import lax
from repro.jaxshim.errors import ConcretizationError, ShapeError


@pytest.fixture(autouse=True)
def x64_mode():
    with config.temporarily(enable_x64=True):
        yield


class TestSelect:
    def test_eager(self):
        out = lax.select(np.array([True, False]), np.ones(2), np.zeros(2))
        assert np.allclose(out, [1, 0])


class TestCond:
    def test_concrete_pred_runs_one_branch(self):
        calls = []

        def t(x):
            calls.append("t")
            return x + 1

        def f(x):
            calls.append("f")
            return x - 1

        assert lax.cond(True, t, f, np.zeros(2))[0] == 1
        assert calls == ["t"]

    def test_traced_pred_selects(self):
        @jit
        def g(x):
            return lax.cond(jnp.sum(x) > 0, lambda v: v * 2, lambda v: v * 3, x)

        assert np.allclose(g(np.ones(3)), 2.0)
        assert np.allclose(g(-np.ones(3)), -3.0)
        assert g.n_traces == 1  # one graph covers both outcomes

    def test_traced_pred_pytree_outputs(self):
        @jit
        def g(x):
            return lax.cond(
                x[0] > 0,
                lambda v: {"a": v, "b": (v + 1,)},
                lambda v: {"a": -v, "b": (v - 1,)},
                x,
            )

        out = g(np.array([1.0, 2.0]))
        assert np.allclose(out["a"], [1.0, 2.0])
        assert np.allclose(out["b"][0], [2.0, 3.0])

    def test_mismatched_structures_raise(self):
        @jit
        def g(x):
            return lax.cond(x[0] > 0, lambda v: (v, v), lambda v: v, x)

        with pytest.raises(ShapeError):
            g(np.ones(2))

    def test_mismatched_shapes_raise(self):
        @jit
        def g(x):
            return lax.cond(x[0] > 0, lambda v: v, lambda v: v[:1], x)

        with pytest.raises(ShapeError):
            g(np.ones(3))


class TestForiLoop:
    def test_eager(self):
        out = lax.fori_loop(0, 5, lambda i, v: v + i, 0.0)
        assert out == 10.0

    def test_under_jit(self):
        @jit
        def g(x):
            return lax.fori_loop(0, 4, lambda i, v: v * x, jnp.ones(()))

        assert np.isclose(g(np.asarray(2.0)), 16.0)

    def test_traced_bounds_rejected(self):
        @jit
        def g(n, x):
            return lax.fori_loop(0, n, lambda i, v: v + 1, x)

        with pytest.raises(ConcretizationError):
            g(np.asarray(3), np.zeros(()))

    def test_empty_range(self):
        assert lax.fori_loop(3, 3, lambda i, v: v + 1, 7.0) == 7.0


class TestScan:
    def test_cumsum(self):
        def step(carry, x):
            carry = carry + x
            return carry, carry

        final, ys = lax.scan(step, 0.0, np.arange(5.0))
        assert final == 10.0
        assert np.allclose(ys, np.cumsum(np.arange(5.0)))

    def test_under_jit(self):
        @jit
        def g(xs):
            return lax.scan(lambda c, x: (c + x, c), 0.0, xs)

        final, ys = g(np.arange(4.0))
        assert final == 6.0
        assert np.allclose(ys, [0, 0, 1, 3])

    def test_pytree_carry_and_ys(self):
        def step(carry, x):
            s, n = carry
            return (s + x, n + 1), {"running": s + x}

        (total, count), ys = lax.scan(step, (0.0, 0), np.arange(3.0))
        assert total == 3.0 and count == 3
        assert np.allclose(ys["running"], [0, 1, 3])

    def test_length_only(self):
        final, ys = lax.scan(lambda c, _: (c + 1, c), 0, None, length=4)
        assert final == 4
        assert np.allclose(ys, [0, 1, 2, 3])

    def test_mismatched_leading_axes(self):
        with pytest.raises(ShapeError):
            lax.scan(lambda c, x: (c, c), 0.0, (np.zeros(3), np.zeros(4)))

    def test_needs_inputs(self):
        with pytest.raises(ValueError):
            lax.scan(lambda c, x: (c, c), 0.0, None)

    def test_composes_with_vmap(self):
        def cumsum_row(row):
            return lax.scan(lambda c, x: (c + x, c + x), 0.0, row)[1]

        m = np.arange(12.0).reshape(3, 4)
        out = vmap(cumsum_row)(m)
        assert np.allclose(out, np.cumsum(m, axis=1))


class TestWhileLoop:
    def test_eager(self):
        out = lax.while_loop(lambda v: v < 10, lambda v: v * 2, 1)
        assert out == 16

    def test_traced_condition_rejected(self):
        @jit
        def g(x):
            return lax.while_loop(lambda v: jnp.sum(v) < 10, lambda v: v + 1, x)

        with pytest.raises(ConcretizationError):
            g(np.zeros(3))
