"""Pipeline integration tests: hybrid data movement, policies, dispatch."""

import numpy as np
import pytest

from repro.accel import SimulatedDevice
from repro.core import (
    Data,
    ImplementationType,
    MovementPolicy,
    Pipeline,
    fake_hexagon_focalplane,
)
from repro.core.operator import Operator
from repro.healpix import npix as healpix_npix
from repro.ompshim import OmpTargetRuntime
from repro.ops import (
    BuildNoiseWeighted,
    DefaultNoiseModel,
    NoiseWeight,
    PixelsHealpix,
    PointingDetector,
    ScanMap,
    SimNoise,
    SimSatellite,
    StokesWeights,
    create_fake_sky,
)

NSIDE = 16


def make_data(n_samples=400, n_obs=1):
    fp = fake_hexagon_focalplane(n_pixels=1, sample_rate=10.0)
    d = Data()
    SimSatellite(
        fp, n_observations=n_obs, n_samples=n_samples, scan_samples=150, gap_samples=10
    ).apply(d)
    DefaultNoiseModel().apply(d)
    d["sky_map"] = create_fake_sky(NSIDE, seed=1)
    SimNoise().apply(d)
    return d


def processing_ops():
    return [
        PointingDetector(),
        PixelsHealpix(nside=NSIDE, nest=True),
        StokesWeights(mode="IQU"),
        ScanMap(),
        NoiseWeight(),
        BuildNoiseWeighted(n_pix=healpix_npix(NSIDE), nnz=3, use_det_weights=False),
    ]


def fresh_runtime():
    return OmpTargetRuntime(SimulatedDevice(memory_bytes=1 << 28))


class TestPipelineBasics:
    def test_cpu_pipeline_runs(self):
        d = make_data()
        Pipeline(processing_ops(), implementation=ImplementationType.NUMPY).apply(d)
        assert np.any(d["zmap"] != 0)

    def test_traits_aggregate(self):
        pipe = Pipeline(processing_ops())
        prov = pipe.provides()
        assert "quats" in prov["detdata"]
        assert "zmap" in prov["meta"]
        req = pipe.requires()
        # Keys provided by earlier ops are not external requirements.
        assert "quats" not in req["detdata"]
        assert "boresight" in req["shared"]

    def test_supports_accel(self):
        assert Pipeline(processing_ops()).supports_accel()

    @pytest.mark.parametrize(
        "impl", [ImplementationType.JAX, ImplementationType.OMP_TARGET]
    )
    def test_accel_matches_cpu(self, impl):
        d_cpu = make_data()
        Pipeline(processing_ops(), implementation=ImplementationType.NUMPY).apply(d_cpu)

        d_gpu = make_data()
        Pipeline(processing_ops(), implementation=impl, accel=fresh_runtime()).apply(d_gpu)

        np.testing.assert_allclose(d_gpu["zmap"], d_cpu["zmap"], atol=1e-10)
        ob_cpu, ob_gpu = d_cpu.obs[0], d_gpu.obs[0]
        np.testing.assert_allclose(
            ob_gpu.detdata["signal"], ob_cpu.detdata["signal"], atol=1e-10
        )


class TestDataMovement:
    def test_device_clean_after_pipeline(self):
        rt = fresh_runtime()
        d = make_data()
        Pipeline(
            processing_ops(), implementation=ImplementationType.OMP_TARGET, accel=rt
        ).apply(d)
        # "any data left on the GPU is deleted" (paper 3.2.2).
        assert rt.device.allocated_bytes == 0
        assert len(rt.present) == 0

    def test_hybrid_fewer_transfers_than_naive(self):
        rt_hybrid = fresh_runtime()
        d1 = make_data()
        Pipeline(
            processing_ops(),
            implementation=ImplementationType.OMP_TARGET,
            accel=rt_hybrid,
            policy=MovementPolicy.HYBRID,
        ).apply(d1)

        rt_naive = fresh_runtime()
        d2 = make_data()
        Pipeline(
            processing_ops(),
            implementation=ImplementationType.OMP_TARGET,
            accel=rt_naive,
            policy=MovementPolicy.NAIVE,
        ).apply(d2)

        h2d_hybrid = rt_hybrid.device.clock.region_count("accel_data_update_device")
        h2d_naive = rt_naive.device.clock.region_count("accel_data_update_device")
        assert h2d_hybrid < h2d_naive
        # Both produce the same physics.
        np.testing.assert_allclose(d1["zmap"], d2["zmap"], atol=1e-12)
        # And less modeled transfer time overall: the paper's ~40% argument.
        t_hybrid = rt_hybrid.device.clock.region_time("accel_data_update_device")
        t_naive = rt_naive.device.clock.region_time("accel_data_update_device")
        assert t_hybrid < t_naive

    def test_cpu_op_in_gpu_pipeline_syncs(self):
        """A CPU-only operator between GPU ops forces a round trip."""

        class CpuDoubler(Operator):
            def requires(self):
                return {"shared": [], "detdata": ["signal"], "meta": []}

            def provides(self):
                return {"shared": [], "detdata": ["signal"], "meta": []}

            def supports_accel(self):
                return False

            def exec(self, data, use_accel=False, accel=None):
                assert not use_accel
                for ob in data.obs:
                    ob.detdata["signal"] *= 2.0

        ops = [
            PointingDetector(),
            PixelsHealpix(nside=NSIDE, nest=True),
            StokesWeights(mode="IQU"),
            ScanMap(),
            CpuDoubler(name="cpu_doubler"),
            NoiseWeight(),
            BuildNoiseWeighted(
                n_pix=healpix_npix(NSIDE), nnz=3, use_det_weights=False
            ),
        ]
        rt = fresh_runtime()
        d_gpu = make_data()
        Pipeline(ops, implementation=ImplementationType.OMP_TARGET, accel=rt).apply(d_gpu)

        # CPU reference with the same doubling.
        d_cpu = make_data()
        Pipeline(
            [
                PointingDetector(),
                PixelsHealpix(nside=NSIDE, nest=True),
                StokesWeights(mode="IQU"),
                ScanMap(),
            ],
            implementation=ImplementationType.NUMPY,
        ).apply(d_cpu)
        for ob in d_cpu.obs:
            ob.detdata["signal"] *= 2.0
        Pipeline(
            [
                NoiseWeight(),
                BuildNoiseWeighted(
                    n_pix=healpix_npix(NSIDE), nnz=3, use_det_weights=False
                ),
            ],
            implementation=ImplementationType.NUMPY,
        ).apply(d_cpu)

        np.testing.assert_allclose(d_gpu["zmap"], d_cpu["zmap"], atol=1e-10)

    def test_no_accel_runtime_means_cpu_fallback(self):
        # Accel implementation selected but no runtime given: host fallback.
        d = make_data()
        Pipeline(processing_ops(), implementation=ImplementationType.OMP_TARGET).apply(d)
        assert np.any(d["zmap"] != 0)

    def test_exception_in_operator_propagates(self):
        class Boom(Operator):
            def supports_accel(self):
                return True

            def exec(self, data, use_accel=False, accel=None):
                raise RuntimeError("boom")

        rt = fresh_runtime()
        d = make_data()
        with pytest.raises(RuntimeError, match="boom"):
            Pipeline(
                [PointingDetector(), Boom()],
                implementation=ImplementationType.OMP_TARGET,
                accel=rt,
            ).apply(d)


class TestJaxPipelineDeviceAccounting:
    def test_jit_compile_charged_once_across_repeats(self):
        rt = fresh_runtime()
        # An unusual sample count: the module-level jit caches are keyed on
        # shapes, so this forces a fresh trace regardless of test order.
        d = make_data(n_samples=413)
        pipe = Pipeline(
            processing_ops(), implementation=ImplementationType.JAX, accel=rt
        )
        pipe.apply(d)
        compile_after_first = rt.device.clock.region_time("jit_compile")
        assert compile_after_first > 0
        # Second identical run: cached executables, no recompilation.
        d2 = make_data(n_samples=413)
        pipe.apply(d2)
        assert rt.device.clock.region_time("jit_compile") == compile_after_first

    def test_kernels_launched_on_device(self):
        rt = fresh_runtime()
        d = make_data()
        Pipeline(processing_ops(), implementation=ImplementationType.JAX, accel=rt).apply(d)
        assert rt.device.kernels_launched > 0


class TestLoopOrder:
    """The §3.2.2 looping patterns: observation-major vs operator-major."""

    def test_orders_produce_identical_results(self):
        from repro.core import LoopOrder

        d1 = make_data(n_obs=3)
        Pipeline(
            processing_ops(),
            implementation=ImplementationType.NUMPY,
            order=LoopOrder.OPERATOR_MAJOR,
        ).apply(d1)

        d2 = make_data(n_obs=3)
        Pipeline(
            processing_ops(),
            implementation=ImplementationType.NUMPY,
            order=LoopOrder.OBSERVATION_MAJOR,
        ).apply(d2)

        np.testing.assert_allclose(d2["zmap"], d1["zmap"], atol=1e-12)
        for ob1, ob2 in zip(d1.obs, d2.obs):
            np.testing.assert_allclose(
                ob2.detdata["signal"], ob1.detdata["signal"], atol=1e-12
            )

    def test_orders_agree_on_accel(self):
        from repro.core import LoopOrder

        d1 = make_data(n_obs=3)
        Pipeline(
            processing_ops(),
            implementation=ImplementationType.OMP_TARGET,
            accel=fresh_runtime(),
            order=LoopOrder.OPERATOR_MAJOR,
        ).apply(d1)

        d2 = make_data(n_obs=3)
        rt2 = fresh_runtime()
        Pipeline(
            processing_ops(),
            implementation=ImplementationType.OMP_TARGET,
            accel=rt2,
            order=LoopOrder.OBSERVATION_MAJOR,
        ).apply(d2)

        np.testing.assert_allclose(d2["zmap"], d1["zmap"], atol=1e-12)
        assert rt2.device.allocated_bytes == 0  # clean exit per observation

    def test_observation_major_lower_device_footprint(self):
        """One observation resident at a time: lower device high-water."""
        from repro.core import LoopOrder

        def high_water(order):
            rt = fresh_runtime()
            d = make_data(n_obs=4, n_samples=2000)
            Pipeline(
                processing_ops(),
                implementation=ImplementationType.OMP_TARGET,
                accel=rt,
                order=order,
            ).apply(d)
            return rt.device.pool.high_water_bytes

        assert high_water(LoopOrder.OBSERVATION_MAJOR) < high_water(
            LoopOrder.OPERATOR_MAJOR
        )

    def test_finalize_runs_once(self):
        """The cross-observation reduction happens once, after all units."""
        from repro.core import LoopOrder

        d = make_data(n_obs=2)
        pipe = Pipeline(
            processing_ops(),
            implementation=ImplementationType.NUMPY,
            order=LoopOrder.OBSERVATION_MAJOR,
        )
        pipe.apply(d)
        # zmap accumulated contributions from both observations.
        d_single = make_data(n_obs=1)
        Pipeline(
            processing_ops(), implementation=ImplementationType.NUMPY
        ).apply(d_single)
        assert not np.allclose(d["zmap"], d_single["zmap"])
