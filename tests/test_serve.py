"""Tests for repro.serve: the multi-tenant array-serving plane.

The load-bearing contracts, in rough dependency order: the wire layer
classifies dead peers vs application errors; the coalescing table runs
each key's computation exactly once under concurrency; admission control
rejects deterministically and trips per-client breakers; and the
assembled plane serves byte-identical arrays through coalescing,
eviction, request drops, and node crashes -- because producers are pure,
any node's answer equals the serverless reference.
"""

import threading

import numpy as np
import pytest

from repro import obs, resilience
from repro.core import ImplementationType
from repro.obs import EventType
from repro.resilience import BreakerState, named_plan
from repro.serve import (
    ArrayHandle,
    Broker,
    CoalesceTable,
    IntegrityError,
    NoNodesError,
    PeerUnavailableError,
    ProductKey,
    QuotaExceededError,
    QuotaLedger,
    QuotaPolicy,
    RemoteCallError,
    RpcServer,
    ServeClient,
    ServeNode,
    SliceSpec,
    call,
    local_plane,
    route_order,
)
from repro.workflows.products import get_product, product_names
from repro.workflows.satellite import SIZES

pytestmark = pytest.mark.usefixtures("leak_sentinel")

KEY = ProductKey("satellite/zmap", "tiny")


@pytest.fixture(autouse=True)
def _no_leaked_state():
    """Tests must leave tracing and resilience disabled (process default)."""
    yield
    assert obs.active_tracer() is None, "a test leaked an active tracer"
    assert resilience.active_controller() is None, "a test leaked a controller"
    obs.set_tracer(None)
    resilience.set_controller(None)


@pytest.fixture(scope="module")
def reference():
    """The serverless answer every served byte must equal."""
    product = get_product("satellite/zmap")
    return product.producer(SIZES["tiny"], ImplementationType.NUMPY, 0)


def _fanout(n, fn):
    """Run ``fn(i)`` on n threads behind a barrier; returns results in order."""
    results, errors = [None] * n, [None] * n
    barrier = threading.Barrier(n)

    def one(i):
        try:
            barrier.wait(timeout=30)
            results[i] = fn(i)
        except BaseException as e:  # noqa: BLE001 - re-raised below
            errors[i] = e

    threads = [threading.Thread(target=one, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    for e in errors:
        if e is not None:
            raise e
    return results


class TestHandles:
    def test_product_key_requires_namespace(self):
        with pytest.raises(ValueError):
            ProductKey("zmap", "tiny")
        with pytest.raises(ValueError):
            ProductKey("satellite/zmap", "tiny", realization=-1)

    def test_product_key_namespace_and_describe(self):
        key = ProductKey("satellite/zmap", "tiny", backend="jax", realization=3)
        assert key.namespace == "satellite"
        assert key.describe() == "satellite/zmap@tiny/jax/r3"

    def test_keys_are_the_coalescing_unit(self):
        assert KEY == ProductKey("satellite/zmap", "tiny")
        assert hash(KEY) == hash(ProductKey("satellite/zmap", "tiny"))
        assert KEY != ProductKey("satellite/zmap", "tiny", realization=1)

    def test_slice_spec_windows(self):
        spec = SliceSpec.rows(2, 9)
        assert spec.as_slices() == (slice(2, 9),)
        assert spec.describe() == "[2:9]"
        assert SliceSpec().describe() == "[:]"
        x = np.arange(24).reshape(8, 3)
        assert np.array_equal(x[spec.as_slices()], x[2:9])

    def test_slice_spec_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            SliceSpec(bounds=((-1, 4),))
        with pytest.raises(ValueError):
            SliceSpec(bounds=((5, 2),))

    def test_handle_element_count(self):
        h = ArrayHandle("h1", KEY, (12, 3), "<f8", "node-a")
        assert h.n_elements == 36
        assert "h1" in h.describe()


class TestRouteOrder:
    NODES = ["node-a", "node-b", "node-c"]

    def test_permutation_invariant_and_complete(self):
        order = route_order("some/key@tiny", self.NODES)
        assert sorted(order) == sorted(self.NODES)
        assert route_order("some/key@tiny", list(reversed(self.NODES))) == order

    def test_different_keys_spread(self):
        primaries = {
            route_order(f"satellite/zmap@tiny/numpy/r{r}", self.NODES)[0]
            for r in range(32)
        }
        assert len(primaries) > 1  # rendezvous actually spreads keys

    def test_losing_a_node_only_remaps_its_keys(self):
        keys = [f"k{r}" for r in range(20)]
        before = {k: route_order(k, self.NODES)[0] for k in keys}
        survivors = [n for n in self.NODES if n != "node-b"]
        after = {k: route_order(k, survivors)[0] for k in keys}
        for k in keys:
            if before[k] != "node-b":
                assert after[k] == before[k]


class TestCoalesceTable:
    def test_concurrent_requests_one_run(self):
        table = CoalesceTable()
        runs = []

        def compute():
            runs.append(1)
            return "value"

        results = _fanout(8, lambda i: table.run("k", compute))
        assert len(runs) == 1
        assert all(v == "value" for v, _ in results)
        assert sum(1 for _, led in results if led) == 1
        assert table.stats()["runs"] == 1

    def test_failures_are_not_cached(self):
        table = CoalesceTable()
        attempts = []

        def boom():
            attempts.append(1)
            raise RuntimeError("transient")

        with pytest.raises(RuntimeError):
            table.run("k", boom)
        value, led = table.run("k", lambda: 42)  # a new leader is elected
        assert (value, led) == (42, True)
        assert len(attempts) == 1

    def test_cache_and_invalidate(self):
        table = CoalesceTable()
        table.run("k", lambda: 1)
        assert table.cached("k") is not None
        value, led = table.run("k", lambda: 2)
        assert (value, led) == (1, False)  # served from cache, not recomputed
        assert table.invalidate("k")
        value, led = table.run("k", lambda: 2)
        assert (value, led) == (2, True)

    def test_lru_eviction(self):
        table = CoalesceTable(max_cached=2)
        for k in "abc":
            table.run(k, lambda: k)
        assert table.cached("a") is None  # oldest out
        assert table.cached("b") is not None and table.cached("c") is not None
        assert table.stats()["evicted"] == 1


class TestQuota:
    def test_inflight_cap(self):
        ledger = QuotaLedger(QuotaPolicy(max_inflight=2))
        ledger.admit("c")
        ledger.admit("c")
        with pytest.raises(QuotaExceededError) as err:
            ledger.admit("c")
        assert err.value.reason == "inflight"
        ledger.release("c")
        ledger.admit("c")  # freed capacity admits again

    def test_request_budget(self):
        ledger = QuotaLedger(QuotaPolicy(max_requests=2))
        for _ in range(2):
            ledger.admit("c")
            ledger.release("c")
        with pytest.raises(QuotaExceededError) as err:
            ledger.admit("c")
        assert err.value.reason == "budget"

    def test_abuse_breaker_opens_then_cools_down(self):
        policy = QuotaPolicy(
            max_inflight=1, breaker_threshold=2, breaker_cooldown=3.0
        )
        ledger = QuotaLedger(policy)
        ledger.admit("c")  # holds the single slot for the whole test
        for _ in range(2):
            with pytest.raises(QuotaExceededError):
                ledger.admit("c")
        assert ledger.breaker_state("c") is BreakerState.OPEN
        with pytest.raises(QuotaExceededError) as err:
            ledger.admit("c")
        assert err.value.reason == "breaker_open"  # refused before quota math
        ledger.release("c")
        for _ in range(4):  # advance the admissions clock past the cooldown
            try:
                ledger.admit("c")
                ledger.release("c")
                break
            except QuotaExceededError:
                pass
        assert ledger.breaker_state("c") is not BreakerState.OPEN

    def test_clients_are_isolated(self):
        ledger = QuotaLedger(QuotaPolicy(max_inflight=1))
        ledger.admit("a")
        ledger.admit("b")  # a's open slot does not count against b
        with pytest.raises(QuotaExceededError):
            ledger.admit("a")


class TestWire:
    def test_roundtrip_and_error_kinds(self):
        class Refused(RuntimeError):
            wire_kind = "refused"

        def handler(request):
            if request["op"] == "echo":
                return {"got": request["x"]}
            raise Refused("no")

        server = RpcServer(handler).start()
        try:
            assert call(server.address, "echo", x=[1, 2]) == {"got": [1, 2]}
            with pytest.raises(RemoteCallError) as err:
                call(server.address, "nope")
            assert err.value.kind == "refused"
        finally:
            server.stop()

    def test_dead_peer_classifies(self):
        server = RpcServer(lambda r: r).start()
        address = server.address
        server.stop()
        with pytest.raises(PeerUnavailableError):
            call(address, "ping", timeout_s=2.0)


class TestServeNode:
    def test_produce_fetch_roundtrip(self, reference):
        node = ServeNode("n1")
        try:
            handle = node.produce(KEY)
            assert handle.shape == reference.shape
            assert np.array_equal(node.fetch(handle.handle_id), reference)
            band = node.fetch(handle.handle_id, SliceSpec.rows(3, 11))
            assert np.array_equal(band, reference[3:11])
        finally:
            node.shutdown()

    def test_produce_coalesces_to_one_run(self):
        node = ServeNode("n1")
        try:
            handles = _fanout(6, lambda i: node.produce(KEY))
            assert len({h.handle_id for h in handles}) == 1
            assert node.stats()["counters"]["produces"] == 1
        finally:
            node.shutdown()

    def test_unknown_requests_classify(self):
        node = ServeNode("n1")
        try:
            from repro.serve.node import BadRequestError, UnknownHandleError

            with pytest.raises(BadRequestError):
                node.produce(ProductKey("nope/zmap", "tiny"))
            with pytest.raises(BadRequestError):
                node.produce(ProductKey("satellite/zmap", "no-such-size"))
            with pytest.raises(BadRequestError):
                node.produce(ProductKey("satellite/zmap", "tiny", backend="cuda"))
            with pytest.raises(UnknownHandleError):
                node.fetch("n1-h9999")
        finally:
            node.shutdown()

    def test_elastic_produce_matches_direct_compute(self, reference):
        """A node routing its pipeline through the elastic pool serves the
        same bytes as the serverless producer (serve x parallel compose)."""
        node = ServeNode("n1", elastic_workers=2)
        try:
            handle = node.produce(KEY)
            assert np.array_equal(node.fetch(handle.handle_id), reference)
            assert node.stats()["counters"].get("elastic_produces") == 1
        finally:
            node.shutdown()

    def test_eviction_unlinks_the_slab(self):
        from repro.parallel import SharedSlab

        node = ServeNode("n1", max_cached_products=1)
        try:
            h0 = node.produce(KEY)
            spec0 = node._store[h0.handle_id].slab.spec
            node.produce(ProductKey("satellite/zmap", "tiny", realization=1))
            assert node.stats()["products_stored"] == 1
            with pytest.raises(FileNotFoundError):
                SharedSlab.attach(spec0)  # the evicted segment is gone
        finally:
            node.shutdown()


class TestProducts:
    def test_registry_lists_satellite_products(self):
        names = product_names()
        assert "satellite/zmap" in names
        assert "satellite/sky" in names
        from repro.workflows.products import namespaces

        assert "satellite" in namespaces()

    def test_producer_is_pure(self, reference):
        product = get_product("satellite/zmap")
        again = product.producer(SIZES["tiny"], ImplementationType.NUMPY, 0)
        assert reference.tobytes() == again.tobytes()
        assert np.any(reference)  # a real map, not zeros == zeros

    def test_shape_matches_producer(self, reference):
        product = get_product("satellite/zmap")
        assert product.shape(SIZES["tiny"]) == reference.shape


class TestPlane:
    """The assembled in-process plane: broker + nodes + clients."""

    def test_roundtrip_matches_serverless(self, reference):
        with local_plane(n_nodes=2) as (broker, nodes, make_client):
            client = make_client("c0")
            assert np.array_equal(client.request(KEY), reference)
            band = client.request(KEY, SliceSpec.rows(1, 7))
            assert np.array_equal(band, reference[1:7])

    def test_concurrent_overlapping_patches_coalesce(self, reference):
        """The tentpole determinism gate: N clients, overlapping patches,
        byte-identical slices, exactly one pipeline run in the trace."""
        npix = reference.shape[0]
        q = max(1, npix // 4)
        windows = [
            None,
            SliceSpec.rows(0, 3 * q),
            SliceSpec.rows(q, npix),
            SliceSpec.rows(q, 3 * q),
            SliceSpec.rows(0, npix),
            None,
        ]
        with obs.tracing() as tracer:
            with local_plane(n_nodes=2) as (broker, nodes, make_client):
                clients = [make_client(f"c{i}") for i in range(len(windows))]
                results = _fanout(
                    len(windows), lambda i: clients[i].request(KEY, windows[i])
                )
        for win, got in zip(windows, results):
            want = reference if win is None else reference[win.as_slices()]
            assert got.tobytes() == want.tobytes()
        produces = tracer.events_of(EventType.SERVE_PRODUCE)
        assert len(produces) == 1  # exactly one pipeline run for all six
        assert tracer.metrics.counters["serve.requests"].value == len(windows)

    def test_failover_after_injected_node_crash(self, reference):
        plan = named_plan("serve-node-crash", seed=0)
        with obs.tracing() as tracer:
            with resilience.resilient(plan):
                with local_plane(n_nodes=2) as (broker, nodes, make_client):
                    primary = route_order(
                        KEY.describe(), [n.node_id for n in nodes]
                    )[0]
                    client = make_client("c0")
                    got = client.request(KEY)  # crashes primary mid-produce
        assert np.array_equal(got, reference)
        stats = broker.stats()
        assert stats["nodes"][primary]["breaker"] == "open"
        survivor = next(n for n in stats["nodes"] if n != primary)
        assert stats["nodes"][survivor]["produces"] == 1
        assert tracer.events_of(EventType.SERVE_FAILOVER)

    def test_crashed_node_does_not_fail_other_inflight_clients(self, reference):
        plan = named_plan("serve-node-crash", seed=0)
        with resilience.resilient(plan):
            with local_plane(n_nodes=2) as (broker, nodes, make_client):
                clients = [make_client(f"c{i}") for i in range(4)]
                results = _fanout(4, lambda i: clients[i].request(KEY))
        for got in results:
            assert np.array_equal(got, reference)

    def test_quota_rejection_and_event(self):
        """Admission gates resolves (the control plane); a second *resolve*
        past the budget is refused.  Cached-handle fetches go straight to
        the node and are deliberately not metered here."""
        policy = QuotaPolicy(max_requests=1)
        with obs.tracing() as tracer:
            with local_plane(n_nodes=1, policy=policy) as (broker, _, make_client):
                client = make_client("greedy")
                client.request(KEY)
                with pytest.raises(QuotaExceededError) as err:
                    client.request(ProductKey("satellite/zmap", "tiny", realization=1))
        assert err.value.reason == "budget"
        rejects = tracer.events_of(EventType.SERVE_REJECT)
        assert len(rejects) == 1
        assert rejects[0].attrs["client"] == "greedy"
        assert tracer.metrics.counters["serve.rejections"].value == 1

    def test_injected_request_drops_are_retried(self, reference):
        plan = named_plan("serve-flaky", seed=0)
        with resilience.resilient(plan):
            with local_plane(n_nodes=1) as (broker, _, make_client):
                client = make_client("c0")
                first = client.request(KEY)
                second = client.request(KEY)  # this one hits the drop
        assert np.array_equal(first, reference)
        assert np.array_equal(second, reference)
        assert client.stats()["counters"].get("drops", 0) >= 1

    def test_eviction_forces_fresh_resolve_not_blame(self, reference):
        key1 = ProductKey("satellite/zmap", "tiny", realization=1)
        with local_plane(n_nodes=1, max_cached_products=1) as (
            broker,
            nodes,
            make_client,
        ):
            client = make_client("c0")
            assert np.array_equal(client.request(KEY), reference)
            client.request(key1)  # evicts KEY's slab on the single node
            again = client.request(KEY)  # stale handle -> fresh resolve
            assert np.array_equal(again, reference)
            stats = broker.stats()
            assert stats["nodes"][nodes[0].node_id]["breaker"] == "closed"
            assert client.stats()["counters"]["failovers"] == 1

    def test_no_nodes_is_a_clean_error(self):
        broker = Broker()
        with pytest.raises(NoNodesError):
            broker.resolve(KEY, "c0")

    def test_checksum_guards_full_reads(self, reference):
        with local_plane(n_nodes=1) as (broker, nodes, make_client):
            client = make_client("c0")
            handle = broker.resolve(KEY, "c0")
            nodes[0]._store[handle.handle_id].array[0, 0] += 1.0  # corrupt
            with pytest.raises(IntegrityError):
                client.request(KEY)


class TestTraceCorrelation:
    def test_one_trace_id_broker_to_node_to_kernel(self):
        with obs.tracing() as tracer:
            with local_plane(n_nodes=2) as (broker, nodes, make_client):
                make_client("cli").request(KEY, SliceSpec.rows(0, 4))
        request = tracer.events_of(EventType.SERVE_REQUEST)[0]
        tid = request.trace_id
        assert tid == "cli-0001"
        for etype in (
            EventType.SERVE_RESOLVE,
            EventType.SERVE_PRODUCE,
            EventType.SERVE_SLICE,
        ):
            events = tracer.events_of(etype)
            assert events, f"no {etype} event"
            assert all(e.trace_id == tid for e in events)
        # The pipeline's own spans, emitted deep inside produce, carry it too.
        spans = [e for e in tracer.events_of(EventType.SPAN) if e.trace_id == tid]
        assert spans, "no kernel/pipeline spans correlated to the request"

    def test_trace_ids_are_deterministic_per_client(self):
        with local_plane(n_nodes=1) as (broker, nodes, make_client):
            client = make_client("cli")
            with obs.tracing() as tracer:
                client.request(KEY)
                client.request(KEY, SliceSpec.rows(0, 2))
        ids = [e.trace_id for e in tracer.events_of(EventType.SERVE_REQUEST)]
        assert ids == ["cli-0001", "cli-0002"]
