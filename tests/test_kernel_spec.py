"""KernelSpec contracts: declaration, registration validation, and the
layers derived from specs (dispatch fallback policy, BoundKernel call
checking, operator data traits, microbench coverage enforcement)."""

import numpy as np
import pytest

from repro.core.dispatch import (
    BoundKernel,
    ImplementationType,
    KernelRegistry,
    fallback_chain,
    kernel_call_validation_active,
    kernel_registry,
    validate_kernel_calls,
)
from repro.core.operator import Operator
from repro.kernels import ArgRole, ArgSpec, Intent, KernelSpec
from repro.obs import Tracer

NUMPY = ImplementationType.NUMPY
JAX = ImplementationType.JAX


def simple_spec(name="k", **kw):
    args = kw.pop(
        "args", (ArgSpec("x", intent=Intent.INOUT, role=ArgRole.DETDATA),)
    )
    return KernelSpec(name=name, args=args, interval_batched=False, **kw)


class TestArgSpecDeclaration:
    def test_reserved_name_rejected(self):
        with pytest.raises(ValueError, match="reserved"):
            ArgSpec("accel")

    def test_non_identifier_name_rejected(self):
        with pytest.raises(ValueError, match="identifier"):
            ArgSpec("not a name")

    def test_non_intent_rejected(self):
        with pytest.raises(TypeError, match="Intent"):
            ArgSpec("x", intent="inout")

    def test_written_scalar_rejected(self):
        # A scalar cannot be written in place; OUT/INOUT need array roles.
        with pytest.raises(ValueError, match="array role"):
            ArgSpec("x", intent=Intent.OUT, role=ArgRole.SCALAR)

    def test_dtype_on_scalar_rejected(self):
        with pytest.raises(ValueError, match="not an array role"):
            ArgSpec("x", role=ArgRole.SCALAR, dtype=np.float64)

    def test_rank_shape_disagreement_rejected(self):
        with pytest.raises(ValueError, match="rank"):
            ArgSpec("x", role=ArgRole.DETDATA, shape=("n_det",), rank=2)

    def test_rank_defaults_to_shape_length(self):
        a = ArgSpec("x", role=ArgRole.DETDATA, shape=("n_det", "n_samp"))
        assert a.rank == 2

    def test_bad_shape_entry_rejected(self):
        with pytest.raises(TypeError, match="shape"):
            ArgSpec("x", role=ArgRole.DETDATA, shape=(1.5,))

    def test_bogus_dtype_fails_at_declaration(self):
        with pytest.raises(TypeError):
            ArgSpec("x", role=ArgRole.DETDATA, dtype="not-a-dtype")


class TestKernelSpecDeclaration:
    def test_duplicate_argument_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            KernelSpec("k", args=(ArgSpec("x"), ArgSpec("x")), interval_batched=False)

    def test_interval_batched_requires_starts_stops(self):
        with pytest.raises(ValueError, match="interval_batched"):
            KernelSpec("k", args=(ArgSpec("x"),), interval_batched=True)

    def test_args_must_be_a_tuple_of_argspecs(self):
        with pytest.raises(TypeError):
            KernelSpec("k", args=[ArgSpec("x")], interval_batched=False)
        with pytest.raises(TypeError):
            KernelSpec("k", args=("x",), interval_batched=False)

    def test_intent_accessors(self):
        spec = KernelSpec(
            "k",
            args=(
                ArgSpec("a", intent=Intent.IN, role=ArgRole.DETDATA),
                ArgSpec("b", intent=Intent.OUT, role=ArgRole.DETDATA),
                ArgSpec("c", intent=Intent.INOUT, role=ArgRole.GLOBAL),
                ArgSpec("s", intent=Intent.IN, role=ArgRole.SCALAR),
            ),
            interval_batched=False,
        )
        assert spec.input_names() == ["a", "c", "s"]
        assert spec.output_names() == ["b", "c"]
        assert [a.name for a in spec.array_args()] == ["a", "b", "c"]
        with pytest.raises(KeyError, match="no argument"):
            spec.arg("missing")


class TestImplValidation:
    SPEC = KernelSpec(
        "vk", args=(ArgSpec("x"), ArgSpec("y")), interval_batched=False
    )

    def test_matching_signature_passes(self):
        self.SPEC.validate_impl(lambda x, y, accel=None, use_accel=False: None)

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError, match="does not match"):
            self.SPEC.validate_impl(lambda x, accel=None, use_accel=False: None)

    def test_wrong_order_rejected(self):
        with pytest.raises(ValueError, match="does not match"):
            self.SPEC.validate_impl(lambda y, x, accel=None, use_accel=False: None)

    def test_missing_reserved_params_rejected(self):
        with pytest.raises(ValueError, match="does not match"):
            self.SPEC.validate_impl(lambda x, y: None)

    def test_var_args_rejected(self):
        with pytest.raises(ValueError, match="not allowed"):
            self.SPEC.validate_impl(lambda x, y, **kw: None)

    def test_reserved_params_need_defaults(self):
        with pytest.raises(ValueError, match="default"):
            self.SPEC.validate_impl(lambda x, y, accel, use_accel=False: None)


class TestRegistrySpecEnforcement:
    def test_impl_without_spec_rejected(self):
        reg = KernelRegistry()
        with pytest.raises(ValueError, match="KernelSpec"):
            reg.register("k", NUMPY, lambda x, accel=None, use_accel=False: None)

    def test_mismatched_impl_rejected_at_registration(self):
        reg = KernelRegistry()
        reg.register_spec(simple_spec())
        with pytest.raises(ValueError, match="does not match"):
            reg.register("k", NUMPY, lambda wrong, accel=None, use_accel=False: None)

    def test_duplicate_spec_rejected(self):
        reg = KernelRegistry()
        reg.register_spec(simple_spec())
        with pytest.raises(ValueError, match="already has a KernelSpec"):
            reg.register_spec(simple_spec())

    def test_spec_after_implementations_rejected(self):
        reg = KernelRegistry(require_specs=False)
        reg.register("k", NUMPY, lambda x, accel=None, use_accel=False: None)
        with pytest.raises(ValueError, match="before any implementation"):
            reg.register_spec(simple_spec())

    def test_non_spec_object_rejected(self):
        reg = KernelRegistry()
        with pytest.raises(TypeError, match="KernelSpec"):
            reg.register_spec(object())


class TestFallbackEligibility:
    def _registry(self):
        reg = KernelRegistry()
        reg.register_spec(simple_spec("pinned", fallback_eligible=False))
        reg.register_spec(simple_spec("free"))
        for name in ("pinned", "free"):
            reg.register(name, NUMPY, lambda x, accel=None, use_accel=False: None)
            reg.register(name, JAX, lambda x, accel=None, use_accel=False: None)
        return reg

    def test_chain_stops_at_requested(self):
        reg = self._registry()
        assert fallback_chain("pinned", JAX, registry=reg) == [JAX]
        assert fallback_chain("free", JAX, registry=reg) == [JAX, NUMPY]

    def test_resolve_refuses_substitution(self):
        reg = self._registry()
        with pytest.raises(KeyError, match="omp_target"):
            reg.resolve("pinned", ImplementationType.OMP_TARGET)
        fn, resolved = reg.resolve("free", ImplementationType.OMP_TARGET)
        assert resolved is NUMPY


TYPED_SPEC = KernelSpec(
    "typed",
    args=(
        ArgSpec(
            "tod",
            intent=Intent.INOUT,
            role=ArgRole.DETDATA,
            dtype=np.float64,
            shape=("n_det", "n_samp"),
        ),
        ArgSpec(
            "weights",
            intent=Intent.IN,
            role=ArgRole.DETDATA,
            dtype=np.float64,
            shape=("n_det", "n_samp", 3),
        ),
        ArgSpec("cal", intent=Intent.IN, role=ArgRole.SCALAR),
        ArgSpec(
            "flags",
            intent=Intent.IN,
            role=ArgRole.SHARED,
            dtype=np.uint8,
            shape=("n_samp",),
            optional=True,
        ),
    ),
    interval_batched=False,
)


def typed_args(n_det=2, n_samp=5):
    return dict(
        tod=np.zeros((n_det, n_samp)),
        weights=np.zeros((n_det, n_samp, 3)),
        cal=1.0,
        flags=np.zeros(n_samp, dtype=np.uint8),
    )


class TestCallValidation:
    def test_valid_call_resolves_dims(self):
        dims = TYPED_SPEC.validate_call((), typed_args(n_det=4, n_samp=7))
        assert dims == {"n_det": 4, "n_samp": 7}

    def test_wrong_dtype_raises_type_error(self):
        args = typed_args()
        args["tod"] = args["tod"].astype(np.float32)
        with pytest.raises(TypeError, match="dtype"):
            TYPED_SPEC.validate_call((), args)

    def test_wrong_rank_raises_value_error(self):
        args = typed_args()
        args["weights"] = np.zeros((2, 5))
        with pytest.raises(ValueError, match="rank"):
            TYPED_SPEC.validate_call((), args)

    def test_fixed_dim_enforced(self):
        args = typed_args()
        args["weights"] = np.zeros((2, 5, 4))
        with pytest.raises(ValueError, match="axis 2"):
            TYPED_SPEC.validate_call((), args)

    def test_inconsistent_symbolic_dims_raise(self):
        args = typed_args()
        args["flags"] = np.zeros(99, dtype=np.uint8)
        with pytest.raises(ValueError, match="n_samp"):
            TYPED_SPEC.validate_call((), args)

    def test_required_array_cannot_be_none(self):
        args = typed_args()
        args["tod"] = None
        with pytest.raises(TypeError, match="required"):
            TYPED_SPEC.validate_call((), args)

    def test_optional_array_may_be_none(self):
        args = typed_args()
        args["flags"] = None
        TYPED_SPEC.validate_call((), args)

    def test_unknown_argument_rejected(self):
        args = typed_args()
        args["bogus"] = 1
        with pytest.raises(TypeError, match="unexpected"):
            TYPED_SPEC.validate_call((), args)

    def test_positional_and_keyword_merge(self):
        args = typed_args()
        dims = TYPED_SPEC.validate_call(
            (args["tod"],), {k: v for k, v in args.items() if k != "tod"}
        )
        assert dims["n_det"] == 2
        with pytest.raises(TypeError, match="duplicate"):
            TYPED_SPEC.validate_call((args["tod"],), args)


class TestBoundKernel:
    def _bound(self, tracer=None):
        calls = []
        fn = lambda **kw: calls.append(kw)  # noqa: E731
        return BoundKernel("typed", TYPED_SPEC, fn, NUMPY, tracer=tracer), calls

    def test_validation_off_by_default(self):
        bound, calls = self._bound()
        assert not kernel_call_validation_active()
        args = typed_args()
        args["tod"] = args["tod"].astype(np.float32)  # would fail validation
        bound(**args)
        assert len(calls) == 1

    def test_validation_toggle_catches_bad_calls(self):
        bound, calls = self._bound()
        args = typed_args()
        args["tod"] = args["tod"].astype(np.float32)
        with validate_kernel_calls():
            assert kernel_call_validation_active()
            with pytest.raises(TypeError, match="dtype"):
                bound(**args)
            bound(**typed_args())  # a conforming call still goes through
        assert not kernel_call_validation_active()
        assert len(calls) == 1

    def test_bytes_moved_counts_by_intent(self):
        args = typed_args(n_det=2, n_samp=5)
        read, written = TYPED_SPEC.bytes_moved((), args)
        tod, weights, flags = args["tod"], args["weights"], args["flags"]
        assert read == tod.nbytes + weights.nbytes + flags.nbytes
        assert written == tod.nbytes  # only the INOUT arg is written

    def test_tracer_records_bytes_counters(self):
        tracer = Tracer()
        bound, _ = self._bound(tracer=tracer)
        args = typed_args()
        bound(**args)
        read = tracer.metrics.counters["kernel.typed.bytes_read"].value
        written = tracer.metrics.counters["kernel.typed.bytes_written"].value
        assert read == args["tod"].nbytes + args["weights"].nbytes + args["flags"].nbytes
        assert written == args["tod"].nbytes

    def test_raw_impl_reachable(self):
        bound, _ = self._bound()
        assert bound.__wrapped__ is bound.fn


class _ScanLike(Operator):
    """Toy operator binding the real ``scan_map`` spec."""

    def kernel_bindings(self):
        return {
            "scan_map": {
                "map_data": "sky",
                "pixels": "pix",
                "weights": "w",
                "tod": "signal",
            }
        }


class TestOperatorDerivedTraits:
    def test_requires_provides_from_intents(self):
        op = _ScanLike()
        assert op.requires() == {
            "shared": [],
            "detdata": ["pix", "w", "signal"],
            "meta": ["sky"],
        }
        assert op.provides() == {"shared": [], "detdata": ["signal"], "meta": []}

    def test_staging_intents_pull_and_push(self):
        pull, push = _ScanLike().staging_intents()
        assert pull == {"shared": [], "detdata": ["pix", "w", "signal"]}
        assert push == {"shared": [], "detdata": ["signal"]}

    def test_supports_accel_derived_from_registry(self):
        assert _ScanLike().supports_accel()

    def test_unknown_kernel_binding_fails_loudly(self):
        class Bad(Operator):
            def kernel_bindings(self):
                return {"no_such_kernel": {"x": "y"}}

        with pytest.raises(KeyError, match="no KernelSpec"):
            Bad().requires()

    def test_non_bindable_role_fails_loudly(self):
        class Bad(Operator):
            def kernel_bindings(self):
                return {"scan_map": {"data_scale": "x"}}

        with pytest.raises(ValueError, match="data_scale"):
            Bad().requires()

    def test_operator_without_bindings_has_empty_traits(self):
        op = Operator()
        assert op.requires() == {"shared": [], "detdata": [], "meta": []}
        assert not op.supports_accel()


class TestMicrobenchCoverage:
    def test_registered_kernel_without_builder_fails(self):
        from repro.workflows.microbench import kernel_cases

        reg = KernelRegistry()
        reg.register_spec(simple_spec("kernel_without_builder"))
        reg.register(
            "kernel_without_builder",
            NUMPY,
            lambda x, accel=None, use_accel=False: None,
        )
        with pytest.raises(RuntimeError, match="kernel_without_builder"):
            kernel_cases(registry=reg)

    def test_stale_builders_fail(self):
        from repro.workflows.microbench import kernel_cases

        # An empty registry leaves every builder stale.
        with pytest.raises(RuntimeError, match="unregistered"):
            kernel_cases(registry=KernelRegistry())

    def test_real_registry_is_fully_covered(self):
        from repro.workflows.microbench import kernel_cases

        cases = kernel_cases()
        expected = {
            name
            for name in kernel_registry.kernels()
            if kernel_registry.spec(name).parity
        }
        assert set(cases) == expected
