"""Cross-implementation kernel consistency.

Every kernel must produce identical results (to float tolerance) in all
four implementations, on irregular intervals, with flags, against the
pure-Python oracle.
"""

import numpy as np
import pytest

from repro.accel import SimulatedDevice
from repro.core.dispatch import ImplementationType, kernel_registry
from repro.kernels import EXTENSION_KERNELS  # noqa: F401  (registers kernels)
from repro.math import qa
from repro.ompshim import OmpTargetRuntime

IMPLS = [
    ImplementationType.PYTHON,
    ImplementationType.NUMPY,
    ImplementationType.JAX,
    ImplementationType.OMP_TARGET,
]

# Registry-driven, not hand-enumerated: every registered kernel whose spec
# opts into parity testing is swept.  Computed at collection time, before
# any test registers synthetic kernels.
KERNEL_NAMES = sorted(
    name for name in kernel_registry.kernels() if kernel_registry.spec(name).parity
)

N_DET = 3
N_SAMP = 120
NNZ = 3
NSIDE = 16

# Irregular interval pattern exercising the padding/guard logic.
STARTS = np.array([0, 25, 60, 110], dtype=np.int64)
STOPS = np.array([20, 55, 100, 120], dtype=np.int64)

RNG = np.random.default_rng(314159)


def make_quats():
    theta = RNG.uniform(0.1, np.pi - 0.1, (N_DET, N_SAMP))
    phi = RNG.uniform(-np.pi, np.pi, (N_DET, N_SAMP))
    pa = RNG.uniform(-np.pi, np.pi, (N_DET, N_SAMP))
    return qa.from_angles(theta, phi, pa)


def make_flags():
    flags = np.zeros(N_SAMP, dtype=np.uint8)
    flags[RNG.choice(N_SAMP, 15, replace=False)] |= 1
    flags[RNG.choice(N_SAMP, 10, replace=False)] |= 2
    return flags


def run_impl(name, impl, args_factory, use_accel=False):
    """Run one kernel implementation on freshly-built arguments."""
    fn = kernel_registry.get(name, impl, allow_fallback=False)
    args, outputs = args_factory()
    accel = None
    if use_accel:
        accel = OmpTargetRuntime(SimulatedDevice(memory_bytes=1 << 26))
        mapped = [a for a in args.values() if isinstance(a, np.ndarray)]
        accel.target_enter_data(to=mapped)
        fn(**args, accel=accel, use_accel=True)
        for arr in mapped:
            accel.target_update_from(arr)
        accel.target_exit_data(release=mapped)
    else:
        fn(**args, accel=None, use_accel=False)
    return [args[k] for k in outputs]


# Argument factories build fresh inputs/outputs per call so in-place
# mutation cannot leak between implementations.

def pointing_detector_args():
    rng1 = np.random.default_rng(6)
    fp = qa.from_angles(
        rng1.uniform(0.0, 0.1, N_DET),
        rng1.uniform(0, 1, N_DET),
        rng1.uniform(0, 1, N_DET),
    )
    rng2 = np.random.default_rng(7)
    bore = qa.from_angles(
        rng2.uniform(0.1, np.pi - 0.1, N_SAMP),
        rng2.uniform(-np.pi, np.pi, N_SAMP),
        np.zeros(N_SAMP),
    )
    flags = np.zeros(N_SAMP, dtype=np.uint8)
    flags[::7] = 1
    return (
        dict(
            fp_quats=fp,
            boresight=bore,
            quats_out=np.zeros((N_DET, N_SAMP, 4)),
            starts=STARTS,
            stops=STOPS,
            shared_flags=flags,
            mask=1,
        ),
        ["quats_out"],
    )


def stokes_I_args():
    return (
        dict(
            weights_out=np.zeros((N_DET, N_SAMP)),
            cal=1.25,
            starts=STARTS,
            stops=STOPS,
        ),
        ["weights_out"],
    )


def stokes_IQU_args():
    rng2 = np.random.default_rng(8)
    quats = qa.from_angles(
        rng2.uniform(0.1, np.pi - 0.1, (N_DET, N_SAMP)),
        rng2.uniform(-np.pi, np.pi, (N_DET, N_SAMP)),
        rng2.uniform(-np.pi, np.pi, (N_DET, N_SAMP)),
    )
    return (
        dict(
            quats=quats,
            weights_out=np.zeros((N_DET, N_SAMP, 3)),
            hwp_angle=rng2.uniform(0, 2 * np.pi, N_SAMP),
            epsilon=np.array([0.0, 0.05, 0.1]),
            cal=1.1,
            starts=STARTS,
            stops=STOPS,
        ),
        ["weights_out"],
    )


def pixels_args(nest):
    rng2 = np.random.default_rng(9)
    quats = qa.from_angles(
        rng2.uniform(0.01, np.pi - 0.01, (N_DET, N_SAMP)),
        rng2.uniform(-np.pi, np.pi, (N_DET, N_SAMP)),
        np.zeros((N_DET, N_SAMP)),
    )
    flags = np.zeros(N_SAMP, dtype=np.uint8)
    flags[::11] = 2
    return (
        dict(
            quats=quats,
            pixels_out=np.zeros((N_DET, N_SAMP), dtype=np.int64),
            nside=NSIDE,
            nest=nest,
            starts=STARTS,
            stops=STOPS,
            shared_flags=flags,
            mask=2,
        ),
        ["pixels_out"],
    )


def scan_map_args():
    rng2 = np.random.default_rng(10)
    npix = 12 * NSIDE * NSIDE
    pixels = rng2.integers(0, npix, (N_DET, N_SAMP))
    pixels[0, 5] = -1  # flagged pointing
    return (
        dict(
            map_data=rng2.normal(size=(npix, NNZ)),
            pixels=pixels,
            weights=rng2.normal(size=(N_DET, N_SAMP, NNZ)),
            tod=np.ones((N_DET, N_SAMP)),
            starts=STARTS,
            stops=STOPS,
            data_scale=0.5,
            should_zero=False,
            should_subtract=False,
        ),
        ["tod"],
    )


def scan_map_zero_subtract_args():
    args, outs = scan_map_args()
    args["should_zero"] = True
    args["should_subtract"] = True
    return args, outs


def noise_weight_args():
    rng2 = np.random.default_rng(11)
    return (
        dict(
            tod=rng2.normal(size=(N_DET, N_SAMP)),
            det_weights=np.array([0.5, 1.0, 2.0]),
            starts=STARTS,
            stops=STOPS,
        ),
        ["tod"],
    )


def build_noise_weighted_args():
    rng2 = np.random.default_rng(12)
    npix = 12 * NSIDE * NSIDE
    pixels = rng2.integers(0, 50, (N_DET, N_SAMP))  # few pixels: duplicates
    pixels[1, 30] = -1
    flags = np.zeros(N_SAMP, dtype=np.uint8)
    flags[::13] = 1
    return (
        dict(
            zmap=np.zeros((npix, NNZ)),
            pixels=pixels,
            weights=rng2.normal(size=(N_DET, N_SAMP, NNZ)),
            tod=rng2.normal(size=(N_DET, N_SAMP)),
            det_scale=np.array([1.0, 0.7, 1.3]),
            starts=STARTS,
            stops=STOPS,
            shared_flags=flags,
            mask=1,
        ),
        ["zmap"],
    )


STEP = 16
N_AMP_DET = (N_SAMP + STEP - 1) // STEP


def offset_add_args():
    rng2 = np.random.default_rng(13)
    return (
        dict(
            step_length=STEP,
            amplitudes=rng2.normal(size=N_DET * N_AMP_DET),
            amp_offsets=np.arange(N_DET, dtype=np.int64) * N_AMP_DET,
            tod=rng2.normal(size=(N_DET, N_SAMP)),
            starts=STARTS,
            stops=STOPS,
        ),
        ["tod"],
    )


def offset_project_args():
    rng2 = np.random.default_rng(14)
    return (
        dict(
            step_length=STEP,
            tod=rng2.normal(size=(N_DET, N_SAMP)),
            amplitudes=np.zeros(N_DET * N_AMP_DET),
            amp_offsets=np.arange(N_DET, dtype=np.int64) * N_AMP_DET,
            starts=STARTS,
            stops=STOPS,
        ),
        ["amplitudes"],
    )


def precond_args():
    rng2 = np.random.default_rng(15)
    n = N_DET * N_AMP_DET
    return (
        dict(
            offset_var=rng2.uniform(0.5, 2.0, n),
            amp_in=rng2.normal(size=n),
            amp_out=np.zeros(n),
        ),
        ["amp_out"],
    )


def cov_hits_args():
    rng2 = np.random.default_rng(16)
    npix = 12 * NSIDE * NSIDE
    pixels = rng2.integers(0, 50, (N_DET, N_SAMP))
    pixels[2, 12] = -1
    return (
        dict(
            hits=np.zeros(npix, dtype=np.int64),
            pixels=pixels,
            starts=STARTS,
            stops=STOPS,
        ),
        ["hits"],
    )


def cov_invnpp_args():
    rng2 = np.random.default_rng(17)
    npix = 12 * NSIDE * NSIDE
    pixels = rng2.integers(0, 50, (N_DET, N_SAMP))
    pixels[0, 44] = -1
    nblock = NNZ * (NNZ + 1) // 2
    return (
        dict(
            invnpp=np.zeros((npix, nblock)),
            pixels=pixels,
            weights=rng2.normal(size=(N_DET, N_SAMP, NNZ)),
            det_scale=np.array([1.0, 0.8, 1.2]),
            starts=STARTS,
            stops=STOPS,
        ),
        ["invnpp"],
    )


CASES = {
    "pointing_detector": pointing_detector_args,
    "stokes_weights_I": stokes_I_args,
    "stokes_weights_IQU": stokes_IQU_args,
    "pixels_healpix": lambda: pixels_args(nest=False),
    "scan_map": scan_map_args,
    "noise_weight": noise_weight_args,
    "build_noise_weighted": build_noise_weighted_args,
    "template_offset_add_to_signal": offset_add_args,
    "template_offset_project_signal": offset_project_args,
    "template_offset_apply_diag_precond": precond_args,
    "cov_accum_diag_hits": cov_hits_args,
    "cov_accum_diag_invnpp": cov_invnpp_args,
}


class TestRegistryCompleteness:
    def test_all_kernels_have_all_impls(self):
        for name in KERNEL_NAMES:
            impls = kernel_registry.implementations(name)
            spec = kernel_registry.spec(name)
            waived = {ImplementationType(w) for w in spec.waive_impls}
            missing = (set(IMPLS) - set(impls)) - waived
            assert not missing, f"{name} missing implementations: {sorted(missing)}"

    def test_every_kernel_has_a_spec(self):
        for name in kernel_registry.kernels():
            assert kernel_registry.spec(name) is not None, f"{name} has no spec"

    def test_case_table_covers_all_kernels(self):
        assert set(CASES) == set(KERNEL_NAMES)


@pytest.mark.parametrize("name", KERNEL_NAMES)
@pytest.mark.parametrize(
    "impl", [ImplementationType.NUMPY, ImplementationType.JAX, ImplementationType.OMP_TARGET]
)
def test_impl_matches_python_oracle(name, impl):
    reference = run_impl(name, ImplementationType.PYTHON, CASES[name])
    candidate = run_impl(name, impl, CASES[name])
    for ref, out in zip(reference, candidate):
        np.testing.assert_allclose(out, ref, rtol=1e-12, atol=1e-12)


@pytest.mark.parametrize("name", KERNEL_NAMES)
@pytest.mark.parametrize("impl", [ImplementationType.JAX, ImplementationType.OMP_TARGET])
def test_accel_path_matches_oracle(name, impl):
    """The device path (mapped arrays, device views) agrees too."""
    reference = run_impl(name, ImplementationType.PYTHON, CASES[name])
    candidate = run_impl(name, impl, CASES[name], use_accel=True)
    for ref, out in zip(reference, candidate):
        np.testing.assert_allclose(out, ref, rtol=1e-12, atol=1e-12)


def test_pixels_nest_consistency():
    reference = run_impl(
        "pixels_healpix", ImplementationType.PYTHON, lambda: pixels_args(nest=True)
    )
    for impl in (ImplementationType.NUMPY, ImplementationType.JAX, ImplementationType.OMP_TARGET):
        out = run_impl("pixels_healpix", impl, lambda: pixels_args(nest=True))
        np.testing.assert_array_equal(out[0], reference[0])


def test_scan_map_zero_subtract_modes():
    reference = run_impl(
        "scan_map", ImplementationType.PYTHON, scan_map_zero_subtract_args
    )
    for impl in (ImplementationType.NUMPY, ImplementationType.JAX, ImplementationType.OMP_TARGET):
        out = run_impl("scan_map", impl, scan_map_zero_subtract_args)
        np.testing.assert_allclose(out[0], reference[0], rtol=1e-12)


def test_outside_intervals_untouched():
    """Samples outside every interval must never be written."""
    sentinel_args, _ = noise_weight_args()
    gap_mask = np.ones(N_SAMP, dtype=bool)
    for a, b in zip(STARTS, STOPS):
        gap_mask[a:b] = False
    for impl in IMPLS:
        args, _ = noise_weight_args()
        before = args["tod"].copy()
        fn = kernel_registry.get("noise_weight", impl, allow_fallback=False)
        fn(**args)
        np.testing.assert_array_equal(args["tod"][:, gap_mask], before[:, gap_mask])


def test_empty_intervals_no_op():
    empty = np.array([], dtype=np.int64)
    for impl in IMPLS:
        args, _ = noise_weight_args()
        args["starts"] = empty
        args["stops"] = empty
        before = args["tod"].copy()
        fn = kernel_registry.get("noise_weight", impl, allow_fallback=False)
        fn(**args)
        np.testing.assert_array_equal(args["tod"], before)


def build_noise_weighted_detflags_args():
    rng2 = np.random.default_rng(42)
    npix = 12 * NSIDE * NSIDE
    pixels = rng2.integers(0, 50, (N_DET, N_SAMP))
    det_flags = np.zeros((N_DET, N_SAMP), dtype=np.uint8)
    det_flags[0, ::5] = 1
    det_flags[2, 40:60] = 2
    flags = np.zeros(N_SAMP, dtype=np.uint8)
    flags[::17] = 1
    return (
        dict(
            zmap=np.zeros((npix, NNZ)),
            pixels=pixels,
            weights=rng2.normal(size=(N_DET, N_SAMP, NNZ)),
            tod=rng2.normal(size=(N_DET, N_SAMP)),
            det_scale=np.array([1.0, 0.7, 1.3]),
            starts=STARTS,
            stops=STOPS,
            shared_flags=flags,
            mask=1,
            det_flags=det_flags,
            det_mask=3,
        ),
        ["zmap"],
    )


class TestDetectorFlags:
    """TOAST's kernels also honour per-detector flags; all four
    implementations must apply them identically."""

    @pytest.mark.parametrize(
        "impl",
        [ImplementationType.NUMPY, ImplementationType.JAX, ImplementationType.OMP_TARGET],
    )
    def test_det_flags_match_oracle(self, impl):
        ref = run_impl(
            "build_noise_weighted",
            ImplementationType.PYTHON,
            build_noise_weighted_detflags_args,
        )
        out = run_impl("build_noise_weighted", impl, build_noise_weighted_detflags_args)
        np.testing.assert_allclose(out[0], ref[0], rtol=1e-12, atol=1e-12)

    def test_det_flags_change_result(self):
        flagged = run_impl(
            "build_noise_weighted",
            ImplementationType.NUMPY,
            build_noise_weighted_detflags_args,
        )

        def unflagged_args():
            args, outs = build_noise_weighted_detflags_args()
            args["det_flags"] = None
            args["det_mask"] = 0
            return args, outs

        plain = run_impl("build_noise_weighted", ImplementationType.NUMPY, unflagged_args)
        assert not np.allclose(flagged[0], plain[0])
