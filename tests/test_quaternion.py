"""Unit and property tests for repro.math.quaternion."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.math import qa

RNG = np.random.default_rng(20230712)


def random_quats(n):
    q = RNG.normal(size=(n, 4))
    return qa.normalize(q)


angles = st.floats(min_value=-np.pi, max_value=np.pi, allow_nan=False)
colatitudes = st.floats(min_value=1e-3, max_value=np.pi - 1e-3, allow_nan=False)


class TestBasicAlgebra:
    def test_null_quat_is_identity(self):
        v = np.array([1.0, 2.0, 3.0])
        assert np.allclose(qa.rotate(qa.null_quat, v), v)

    def test_amplitude_of_unit(self):
        q = random_quats(32)
        assert np.allclose(qa.amplitude(q), 1.0)

    def test_normalize_zero_raises(self):
        with pytest.raises(ValueError):
            qa.normalize(np.zeros(4))

    def test_bad_trailing_axis_raises(self):
        with pytest.raises(ValueError):
            qa.mult(np.zeros(3), np.zeros(3))
        with pytest.raises(ValueError):
            qa.rotate(qa.null_quat, np.zeros(4))

    def test_mult_identity(self):
        q = random_quats(8)
        assert np.allclose(qa.mult(q, qa.null_quat), q)
        assert np.allclose(qa.mult(qa.null_quat, q), q)

    def test_mult_inverse_gives_identity(self):
        q = random_quats(16)
        prod = qa.mult(q, qa.inv(q))
        assert np.allclose(prod[:, :3], 0.0, atol=1e-12)
        assert np.allclose(np.abs(prod[:, 3]), 1.0)

    def test_mult_associative(self):
        a, b, c = random_quats(5), random_quats(5), random_quats(5)
        left = qa.mult(qa.mult(a, b), c)
        right = qa.mult(a, qa.mult(b, c))
        assert np.allclose(left, right)

    def test_mult_broadcasts(self):
        q1 = random_quats(10)
        q0 = random_quats(1)[0]
        out = qa.mult(q0, q1)
        assert out.shape == (10, 4)
        for i in range(10):
            assert np.allclose(out[i], qa.mult(q0, q1[i]))


class TestRotation:
    def test_rotate_preserves_norm(self):
        q = random_quats(64)
        v = RNG.normal(size=(64, 3))
        out = qa.rotate(q, v)
        assert np.allclose(
            np.linalg.norm(out, axis=-1), np.linalg.norm(v, axis=-1)
        )

    def test_rotate_composition_matches_mult(self):
        p, q = random_quats(16), random_quats(16)
        v = RNG.normal(size=(16, 3))
        assert np.allclose(
            qa.rotate(qa.mult(p, q), v), qa.rotate(p, qa.rotate(q, v)), atol=1e-12
        )

    def test_rotate_zaxis_matches_general(self):
        q = random_quats(64)
        z = np.array([0.0, 0.0, 1.0])
        assert np.allclose(qa.rotate_zaxis(q), qa.rotate(q, z), atol=1e-12)

    def test_rotate_xaxis_matches_general(self):
        q = random_quats(64)
        x = np.array([1.0, 0.0, 0.0])
        assert np.allclose(qa.rotate_xaxis(q), qa.rotate(q, x), atol=1e-12)

    def test_axis_angle_90deg_about_z(self):
        q = qa.from_axisangle(np.array([0.0, 0.0, 1.0]), np.pi / 2)
        v = qa.rotate(q, np.array([1.0, 0.0, 0.0]))
        assert np.allclose(v, [0.0, 1.0, 0.0], atol=1e-12)


class TestAxisAngle:
    def test_roundtrip(self):
        axis = RNG.normal(size=(32, 3))
        axis /= np.linalg.norm(axis, axis=-1, keepdims=True)
        angle = RNG.uniform(0.1, np.pi - 0.1, 32)
        q = qa.from_axisangle(axis, angle)
        axis2, angle2 = qa.to_axisangle(q)
        assert np.allclose(angle2, angle)
        assert np.allclose(axis2, axis, atol=1e-9)

    def test_identity_convention(self):
        axis, angle = qa.to_axisangle(qa.null_quat)
        assert np.isclose(angle, 0.0)
        assert np.allclose(axis, [0.0, 0.0, 1.0])


class TestAngles:
    @settings(max_examples=60, deadline=None)
    @given(theta=colatitudes, phi=angles, pa=angles)
    def test_angle_roundtrip_property(self, theta, phi, pa):
        q = qa.from_angles(theta, phi, pa)
        t, p, a = qa.to_angles(q)
        assert np.isclose(t, theta, atol=1e-9)
        assert np.isclose(np.mod(p - phi + np.pi, 2 * np.pi) - np.pi, 0.0, atol=1e-9)
        assert np.isclose(np.mod(a - pa + np.pi, 2 * np.pi) - np.pi, 0.0, atol=1e-9)

    def test_to_position_matches_to_angles(self):
        q = random_quats(128)
        t1, p1 = qa.to_position(q)
        t2, p2, _ = qa.to_angles(q)
        assert np.allclose(t1, t2)
        assert np.allclose(p1, p2)

    def test_pole_orientation_does_not_crash(self):
        q = qa.from_angles(0.0, 0.0, 0.3)
        t, p, a = qa.to_angles(q)
        assert np.isclose(t, 0.0, atol=1e-12)
        assert np.isfinite(a)

    def test_from_angles_direction(self):
        theta, phi = 0.7, 1.1
        q = qa.from_angles(theta, phi, 0.0)
        d = qa.rotate_zaxis(q)
        expected = [
            np.sin(theta) * np.cos(phi),
            np.sin(theta) * np.sin(phi),
            np.cos(theta),
        ]
        assert np.allclose(d, expected)


class TestFromVectors:
    def test_maps_v1_to_v2(self):
        v1 = RNG.normal(size=(16, 3))
        v1 /= np.linalg.norm(v1, axis=-1, keepdims=True)
        v2 = RNG.normal(size=(16, 3))
        v2 /= np.linalg.norm(v2, axis=-1, keepdims=True)
        q = qa.from_vectors(v1, v2)
        assert np.allclose(qa.rotate(q, v1), v2, atol=1e-9)

    def test_antiparallel_raises(self):
        v = np.array([0.0, 0.0, 1.0])
        with pytest.raises(ValueError):
            qa.from_vectors(v, -v)


class TestSlerp:
    def test_endpoints(self):
        times = np.array([0.0, 1.0])
        quats = qa.from_angles(np.array([0.3, 1.2]), np.zeros(2), np.zeros(2))
        out = qa.slerp(np.array([0.0, 1.0]), times, quats)
        assert np.allclose(np.abs(np.sum(out * quats, axis=-1)), 1.0)

    def test_midpoint_bisects_angle(self):
        times = np.array([0.0, 1.0])
        quats = qa.from_angles(np.array([0.2, 0.8]), np.zeros(2), np.zeros(2))
        out = qa.slerp(np.array([0.5]), times, quats)
        t, _, _ = qa.to_angles(out)
        assert np.isclose(t[0], 0.5, atol=1e-9)

    def test_constant_angular_velocity(self):
        times = np.array([0.0, 1.0])
        quats = qa.from_angles(np.array([0.1, 1.1]), np.zeros(2), np.zeros(2))
        targets = np.linspace(0.0, 1.0, 21)
        out = qa.slerp(targets, times, quats)
        t, _, _ = qa.to_angles(out)
        assert np.allclose(np.diff(t), np.diff(t)[0], atol=1e-9)

    def test_unit_output(self):
        times = np.linspace(0, 1, 5)
        quats = qa.normalize(RNG.normal(size=(5, 4)))
        out = qa.slerp(np.linspace(0, 1, 33), times, quats)
        assert np.allclose(qa.amplitude(out), 1.0)

    def test_out_of_range_raises(self):
        times = np.array([0.0, 1.0])
        quats = random_quats(2)
        with pytest.raises(ValueError):
            qa.slerp(np.array([1.5]), times, quats)

    def test_nonmonotonic_times_raise(self):
        times = np.array([0.0, 0.0])
        quats = random_quats(2)
        with pytest.raises(ValueError):
            qa.slerp(np.array([0.0]), times, quats)

    def test_short_path_taken(self):
        # q and -q describe the same rotation; slerp must not swing the long
        # way when the stored signs differ.
        q0 = qa.from_angles(0.3, 0.0, 0.0)
        q1 = -qa.from_angles(0.4, 0.0, 0.0)
        out = qa.slerp(np.array([0.5]), np.array([0.0, 1.0]), np.vstack([q0, q1]))
        t, _, _ = qa.to_angles(out)
        assert np.isclose(t[0], 0.35, atol=1e-9)
