"""Systematic parity: every jnp function against NumPy, eager and jitted.

One table-driven test per public function keeps the whole surface honest:
``f_numpy(x) == jnp_f(x) == jit(jnp_f)(x)`` (x64 mode, so dtypes match
NumPy exactly).
"""

import numpy as np
import pytest

from repro.jaxshim import config, jit, jnp

V = np.linspace(-2.0, 2.0, 7)
POS = np.linspace(0.5, 3.0, 7)
M = np.arange(12.0).reshape(3, 4)
INT = np.array([3, 1, 4, 1, 5], dtype=np.int64)
BITS = np.array([0b1100, 0b1010, 0b0110], dtype=np.int64)
BOOL = np.array([True, False, True])

# (name, jnp call, numpy reference call)
UNARY_CASES = [
    ("negative", lambda f: f.negative(V), lambda: np.negative(V)),
    ("abs", lambda f: f.abs(V), lambda: np.abs(V)),
    ("sign", lambda f: f.sign(V), lambda: np.sign(V)),
    ("sqrt", lambda f: f.sqrt(POS), lambda: np.sqrt(POS)),
    ("exp", lambda f: f.exp(V), lambda: np.exp(V)),
    ("log", lambda f: f.log(POS), lambda: np.log(POS)),
    ("sin", lambda f: f.sin(V), lambda: np.sin(V)),
    ("cos", lambda f: f.cos(V), lambda: np.cos(V)),
    ("tan", lambda f: f.tan(V), lambda: np.tan(V)),
    ("arcsin", lambda f: f.arcsin(V / 3), lambda: np.arcsin(V / 3)),
    ("arccos", lambda f: f.arccos(V / 3), lambda: np.arccos(V / 3)),
    ("arctan", lambda f: f.arctan(V), lambda: np.arctan(V)),
    ("floor", lambda f: f.floor(V), lambda: np.floor(V)),
    ("ceil", lambda f: f.ceil(V), lambda: np.ceil(V)),
    ("round", lambda f: f.round(V), lambda: np.round(V)),
    ("isfinite", lambda f: f.isfinite(V), lambda: np.isfinite(V)),
    ("isnan", lambda f: f.isnan(V), lambda: np.isnan(V)),
    ("logical_not", lambda f: f.logical_not(BOOL), lambda: np.logical_not(BOOL)),
    ("bitwise_not", lambda f: f.bitwise_not(BITS), lambda: np.bitwise_not(BITS)),
    ("cumsum", lambda f: f.cumsum(V), lambda: np.cumsum(V)),
    ("diff", lambda f: f.diff(V), lambda: np.diff(V)),
    ("ravel", lambda f: f.ravel(M), lambda: np.ravel(M)),
    ("transpose", lambda f: f.transpose(M), lambda: np.transpose(M)),
    ("expand_dims", lambda f: f.expand_dims(V, 0), lambda: np.expand_dims(V, 0)),
    ("squeeze", lambda f: f.squeeze(V[None, :]), lambda: np.squeeze(V[None, :])),
    ("sum", lambda f: f.sum(M, axis=1), lambda: np.sum(M, axis=1)),
    ("prod", lambda f: f.prod(POS), lambda: np.prod(POS)),
    ("mean", lambda f: f.mean(M, axis=0), lambda: np.mean(M, axis=0)),
    ("min", lambda f: f.min(M), lambda: np.min(M)),
    ("max", lambda f: f.max(M, axis=1), lambda: np.max(M, axis=1)),
    ("any", lambda f: f.any(BOOL), lambda: np.any(BOOL)),
    ("all", lambda f: f.all(BOOL), lambda: np.all(BOOL)),
    (
        "moveaxis",
        lambda f: f.moveaxis(np.zeros((2, 3, 4)), 0, 2),
        lambda: np.moveaxis(np.zeros((2, 3, 4)), 0, 2),
    ),
    ("swapaxes", lambda f: f.swapaxes(M, 0, 1), lambda: np.swapaxes(M, 0, 1)),
    (
        "broadcast_to",
        lambda f: f.broadcast_to(V, (3, 7)),
        lambda: np.broadcast_to(V, (3, 7)),
    ),
    ("reshape", lambda f: f.reshape(M, (4, 3)), lambda: np.reshape(M, (4, 3))),
    ("tile", lambda f: f.tile(V, 2), lambda: np.tile(V, 2)),
]

BINARY_CASES = [
    ("add", lambda f: f.add(V, POS), lambda: np.add(V, POS)),
    ("subtract", lambda f: f.subtract(V, POS), lambda: np.subtract(V, POS)),
    ("multiply", lambda f: f.multiply(V, POS), lambda: np.multiply(V, POS)),
    ("divide", lambda f: f.divide(V, POS), lambda: np.divide(V, POS)),
    ("floor_divide", lambda f: f.floor_divide(INT, 2), lambda: np.floor_divide(INT, 2)),
    ("remainder", lambda f: f.remainder(INT, 3), lambda: np.remainder(INT, 3)),
    ("power", lambda f: f.power(POS, 2.0), lambda: np.power(POS, 2.0)),
    ("arctan2", lambda f: f.arctan2(V, POS), lambda: np.arctan2(V, POS)),
    ("minimum", lambda f: f.minimum(V, 0.0), lambda: np.minimum(V, 0.0)),
    ("maximum", lambda f: f.maximum(V, 0.0), lambda: np.maximum(V, 0.0)),
    ("less", lambda f: f.less(V, 0.0), lambda: np.less(V, 0.0)),
    ("less_equal", lambda f: f.less_equal(V, 0.0), lambda: np.less_equal(V, 0.0)),
    ("greater", lambda f: f.greater(V, 0.0), lambda: np.greater(V, 0.0)),
    (
        "greater_equal",
        lambda f: f.greater_equal(V, 0.0),
        lambda: np.greater_equal(V, 0.0),
    ),
    ("equal", lambda f: f.equal(INT, 1), lambda: np.equal(INT, 1)),
    ("not_equal", lambda f: f.not_equal(INT, 1), lambda: np.not_equal(INT, 1)),
    (
        "logical_and",
        lambda f: f.logical_and(BOOL, ~BOOL),
        lambda: np.logical_and(BOOL, ~BOOL),
    ),
    (
        "logical_or",
        lambda f: f.logical_or(BOOL, ~BOOL),
        lambda: np.logical_or(BOOL, ~BOOL),
    ),
    ("bitwise_and", lambda f: f.bitwise_and(BITS, 0b1010), lambda: np.bitwise_and(BITS, 0b1010)),
    ("bitwise_or", lambda f: f.bitwise_or(BITS, 0b0001), lambda: np.bitwise_or(BITS, 0b0001)),
    ("bitwise_xor", lambda f: f.bitwise_xor(BITS, 0b1111), lambda: np.bitwise_xor(BITS, 0b1111)),
    ("left_shift", lambda f: f.left_shift(BITS, 2), lambda: np.left_shift(BITS, 2)),
    ("right_shift", lambda f: f.right_shift(BITS, 1), lambda: np.right_shift(BITS, 1)),
    ("matmul", lambda f: f.matmul(M, M.T), lambda: np.matmul(M, M.T)),
    ("dot_1d", lambda f: f.dot(V, V), lambda: np.dot(V, V)),
    ("take", lambda f: f.take(V, INT), lambda: np.take(V, INT, mode="clip")),
    (
        "where",
        lambda f: f.where(V > 0, V, -1.0),
        lambda: np.where(V > 0, V, -1.0),
    ),
    ("clip", lambda f: f.clip(V, -1.0, 1.0), lambda: np.clip(V, -1.0, 1.0)),
    (
        "concatenate",
        lambda f: f.concatenate([V, POS]),
        lambda: np.concatenate([V, POS]),
    ),
    ("stack", lambda f: f.stack([V, POS], axis=1), lambda: np.stack([V, POS], axis=1)),
]

ALL_CASES = UNARY_CASES + BINARY_CASES


@pytest.fixture(autouse=True)
def x64_mode():
    with config.temporarily(enable_x64=True):
        yield


@pytest.mark.parametrize("name,jnp_call,np_call", ALL_CASES, ids=[c[0] for c in ALL_CASES])
def test_eager_matches_numpy(name, jnp_call, np_call):
    np.testing.assert_allclose(np.asarray(jnp_call(jnp)), np_call(), rtol=1e-14)


@pytest.mark.parametrize("name,jnp_call,np_call", ALL_CASES, ids=[c[0] for c in ALL_CASES])
def test_jit_matches_numpy(name, jnp_call, np_call):
    compiled = jit(lambda _: jnp_call(jnp))
    out = compiled(np.zeros(1))
    np.testing.assert_allclose(np.asarray(out), np_call(), rtol=1e-14)


@pytest.mark.parametrize("name,jnp_call,np_call", ALL_CASES, ids=[c[0] for c in ALL_CASES])
def test_dtypes_match_numpy(name, jnp_call, np_call):
    # In x64 mode the shim's dtype semantics are exactly NumPy's.
    ours = np.asarray(jnp_call(jnp))
    ref = np.asarray(np_call())
    assert ours.dtype == ref.dtype, f"{name}: {ours.dtype} != {ref.dtype}"
