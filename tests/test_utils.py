"""Tests for utils: table rendering, formatting, logging, LoC counting."""

import numpy as np
import pytest

from repro.utils import Table, format_bytes, format_seconds, get_logger
from repro.utils.cloc import LineCount, count_source
from repro.utils.logging import set_global_level


class TestFormatting:
    def test_seconds_units(self):
        assert format_seconds(0) == "0 s"
        assert "ns" in format_seconds(5e-9)
        assert "us" in format_seconds(5e-6)
        assert "ms" in format_seconds(5e-3)
        assert format_seconds(5.0) == "5.00 s"
        assert "min" in format_seconds(300.0)
        assert "h" in format_seconds(10000.0)

    def test_seconds_negative(self):
        assert format_seconds(-2.0) == "-2.00 s"

    def test_bytes_units(self):
        assert format_bytes(10) == "10 B"
        assert "KiB" in format_bytes(2048)
        assert "MiB" in format_bytes(5 * 1024**2)
        assert "GiB" in format_bytes(40 * 1024**3)
        assert "TiB" in format_bytes(10 * 1024**4)

    def test_bytes_negative(self):
        assert format_bytes(-2048).startswith("-")


class TestTable:
    def test_render_contains_cells(self):
        t = Table(["a", "b"], title="demo")
        t.add_row(["x", 1.5])
        out = t.render()
        assert "demo" in out and "x" in out and "1.5" in out

    def test_row_width_mismatch(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_empty_columns_raise(self):
        with pytest.raises(ValueError):
            Table([])

    def test_none_renders_dash(self):
        t = Table(["a"])
        t.add_row([None])
        assert "-" in t.render()

    def test_alignment_stable(self):
        t = Table(["name", "value"])
        t.add_row(["longest-label", 1])
        t.add_row(["x", 100])
        lines = t.render().splitlines()
        assert len(set(len(l) for l in lines[-2:])) == 1


class TestLogger:
    def test_get_logger_cached(self):
        assert get_logger("x") is get_logger("x")
        assert get_logger("x", rank=1) is not get_logger("x")

    def test_levels(self, capsys):
        set_global_level("ERROR")
        log = get_logger("quiet-test")
        log.info("hidden")
        log.error("shown")
        err = capsys.readouterr().err
        assert "hidden" not in err
        assert "shown" in err
        set_global_level("WARNING")

    def test_nonzero_rank_suppressed(self, capsys):
        set_global_level("INFO")
        log = get_logger("ranked-test", rank=3)
        log.info("invisible")
        assert "invisible" not in capsys.readouterr().err
        set_global_level("WARNING")

    def test_bad_level(self):
        with pytest.raises(ValueError):
            set_global_level("LOUD")


class TestCloc:
    def test_blank_and_comment(self):
        src = "\n# comment\nx = 1\n\n"
        c = count_source(src)
        assert c.blank == 2
        assert c.comment == 1
        assert c.code == 1

    def test_docstring_counts_as_comment(self):
        src = 'def f():\n    """doc\n    string"""\n    return 1\n'
        c = count_source(src)
        assert c.comment == 2
        assert c.code == 2

    def test_module_docstring(self):
        src = '"""module doc."""\nx = 2\n'
        c = count_source(src)
        assert c.comment == 1 and c.code == 1

    def test_inline_comment_is_code(self):
        c = count_source("x = 1  # trailing\n")
        assert c.code == 1 and c.comment == 0

    def test_string_assignment_is_code(self):
        c = count_source('x = "not a docstring"\n')
        assert c.code == 1

    def test_multiline_statement(self):
        src = "x = (1 +\n     2 +\n     3)\n"
        c = count_source(src)
        assert c.code == 3

    def test_total(self):
        src = "# c\n\nx=1\n"
        c = count_source(src)
        assert c.total == 3

    def test_addition(self):
        a = LineCount(code=1, comment=2, blank=3)
        b = LineCount(code=10, comment=20, blank=30)
        s = a + b
        assert (s.code, s.comment, s.blank) == (11, 22, 33)

    def test_broken_source_fallback(self):
        c = count_source("def broken(:\n    x\n")
        assert c.total == 2

    def test_count_tree(self, tmp_path):
        from repro.utils.cloc import count_file, count_tree

        (tmp_path / "a.py").write_text("x = 1\n")
        sub = tmp_path / "pkg"
        sub.mkdir()
        (sub / "b.py").write_text("# only comment\n")
        counts = count_tree(tmp_path)
        assert set(counts) == {"a.py", "pkg/b.py"}
        assert counts["a.py"].code == 1
        assert count_file(tmp_path / "a.py").code == 1
