"""Fragmentation stress tests for the device memory pool.

The paper's hand-written pool (§3.1.2) lives or dies on free-list
correctness under adversarial alloc/free interleavings.  These tests walk
known-nasty patterns through ``verify()`` and drive a seeded random
property test: after every operation, ``allocated_bytes + free ==
capacity`` and the free list stays sorted, coalesced, and non-overlapping.
"""

import random

import pytest

from repro.accel import MemoryPool, OutOfDeviceMemoryError
from repro.accel.errors import InvalidFreeError


CAP = 1 << 16
ALIGN = 256


def _pool(policy="first_fit"):
    return MemoryPool(CAP, alignment=ALIGN, policy=policy)


class TestInterleavings:
    def test_free_every_other_then_refill_holes(self):
        pool = _pool()
        offsets = [pool.allocate(ALIGN) for _ in range(CAP // ALIGN)]
        pool.verify()
        for off in offsets[::2]:
            pool.free(off)
            pool.verify()
        # The holes are single blocks: same-size allocations must land in
        # them (no capacity was lost to bookkeeping).
        for _ in range(len(offsets) // 2):
            pool.allocate(ALIGN)
        pool.verify()
        assert pool.allocated_bytes == CAP
        with pytest.raises(OutOfDeviceMemoryError):
            pool.allocate(1)

    def test_coalescing_merges_across_both_neighbours(self):
        pool = _pool()
        a = pool.allocate(ALIGN)
        b = pool.allocate(ALIGN)
        c = pool.allocate(ALIGN)
        pool.allocate(ALIGN)  # pin the right edge
        pool.free(a)
        pool.free(c)
        assert pool.stats().n_blocks_free == 3  # a-hole, c-hole, tail
        pool.free(b)  # merges a+b+c into one block
        pool.verify()
        assert pool.stats().n_blocks_free == 2

    def test_lifo_and_fifo_free_orders_restore_one_block(self):
        for order in (lambda xs: xs, lambda xs: xs[::-1]):
            pool = _pool()
            offsets = [pool.allocate(3 * ALIGN) for _ in range(16)]
            for off in order(offsets):
                pool.free(off)
                pool.verify()
            assert pool.allocated_bytes == 0
            assert pool.stats().n_blocks_free == 1

    def test_best_fit_prefers_tightest_hole(self):
        pool = _pool(policy="best_fit")
        big = pool.allocate(4 * ALIGN)
        pool.allocate(ALIGN)
        small = pool.allocate(ALIGN)
        pool.allocate(ALIGN)
        pool.free(big)
        pool.free(small)
        pool.verify()
        # A 1-block request must land in the tight hole, not the big one.
        assert pool.allocate(ALIGN) == small
        pool.verify()

    def test_interleaved_sizes_tile_exactly(self):
        pool = _pool()
        live = []
        for i in range(1, 32):
            live.append(pool.allocate(i * 100))
        for off in live[::3]:
            pool.free(off)
        pool.verify()
        stats = pool.stats()
        assert stats.allocated + stats.free == CAP


class TestRandomOperationsProperty:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("policy", ["first_fit", "best_fit"])
    def test_thousand_random_ops_keep_invariants(self, seed, policy):
        rng = random.Random(seed)
        pool = MemoryPool(CAP, alignment=ALIGN, policy=policy)
        live = []
        for _ in range(1000):
            if live and (rng.random() < 0.45 or pool.allocated_bytes > CAP // 2):
                off = live.pop(rng.randrange(len(live)))
                pool.free(off)
            else:
                size = rng.randint(1, CAP // 16)
                try:
                    live.append(pool.allocate(size))
                except OutOfDeviceMemoryError:
                    pass  # legitimate under pressure; state must still hold
            pool.verify()
            stats = pool.stats()
            assert stats.allocated + stats.free == stats.capacity
            assert pool.allocated_bytes == sum(pool.size_of(o) for o in live)
        for off in live:
            pool.free(off)
        pool.verify()
        assert pool.allocated_bytes == 0
        assert pool.stats().n_blocks_free == 1

    @pytest.mark.parametrize("seed", [7, 8])
    def test_random_double_frees_always_rejected(self, seed):
        rng = random.Random(seed)
        pool = _pool()
        live = [pool.allocate(rng.randint(1, 2048)) for _ in range(32)]
        rng.shuffle(live)
        freed = []
        for off in live[:16]:
            pool.free(off)
            freed.append(off)
        for off in freed:
            with pytest.raises(InvalidFreeError):
                pool.free(off)
        pool.verify()
