"""Tests for noise PSD models and FFT-based synthesis."""

import numpy as np
import pytest
from scipy import signal as sps

from repro.noise import AnalyticNoiseModel, oof_psd, white_noise_psd
from repro.noise.psd import NoiseModel
from repro.noise.sim import simulate_noise_timestream


class TestPSDModels:
    def test_white_level(self):
        f = np.linspace(0, 5, 100)
        psd = white_noise_psd(f, net=2.0)
        assert np.allclose(psd, 4.0)

    def test_oof_high_frequency_plateau(self):
        f = np.linspace(0, 5, 1000)
        psd = oof_psd(f, net=1.5, fknee=0.05, fmin=1e-5, alpha=1.0)
        assert np.isclose(psd[-1], 1.5**2, rtol=0.05)

    def test_oof_rises_below_knee(self):
        f = np.array([0.001, 0.01, 0.1, 1.0])
        psd = oof_psd(f, net=1.0, fknee=0.1, fmin=1e-6, alpha=1.0)
        assert np.all(np.diff(psd) < 0)  # decreasing with frequency

    def test_oof_knee_definition(self):
        # At f = fknee the PSD is ~2x the white level (for fmin << fknee).
        psd = oof_psd(np.array([0.1]), net=1.0, fknee=0.1, fmin=1e-9, alpha=1.0)
        assert np.isclose(psd[0], 2.0, rtol=1e-3)

    def test_oof_finite_at_zero(self):
        psd = oof_psd(np.array([0.0]), net=1.0, fknee=0.1, fmin=1e-4, alpha=1.0)
        assert np.isfinite(psd[0])

    def test_oof_bad_args(self):
        f = np.linspace(0, 1, 10)
        with pytest.raises(ValueError):
            oof_psd(f, 1.0, fknee=-1.0, fmin=1e-5, alpha=1.0)
        with pytest.raises(ValueError):
            oof_psd(f, 1.0, fknee=0.1, fmin=0.0, alpha=1.0)
        with pytest.raises(ValueError):
            oof_psd(np.array([-1.0]), 1.0, fknee=0.1, fmin=1e-5, alpha=1.0)


class TestNoiseModel:
    def _model(self):
        dets = ("d0", "d1")
        return AnalyticNoiseModel(
            rate=10.0,
            detector_names=dets,
            net={d: 1.0 for d in dets},
            fknee={"d0": 0.0, "d1": 0.1},
            fmin={d: 1e-5 for d in dets},
            alpha={d: 1.0 for d in dets},
        )

    def test_psd_grid(self):
        nm = self._model()
        assert nm.freqs[0] == 0.0
        assert np.isclose(nm.freqs[-1], 5.0)
        assert nm.psd("d0").shape == nm.freqs.shape

    def test_detector_weight_white(self):
        nm = self._model()
        # d0 is pure white at NET=1, rate=10: weight = 1/(1*10) = 0.1
        assert np.isclose(nm.detector_weight("d0"), 0.1, rtol=0.05)

    def test_weight_lower_for_noisier_detector(self):
        nm = self._model()
        assert nm.detector_weight("d1") <= nm.detector_weight("d0") * 1.01

    def test_mismatched_psd_raises(self):
        with pytest.raises(ValueError):
            NoiseModel(["a"], np.linspace(0, 1, 10), {"a": np.ones(5)})

    def test_negative_psd_raises(self):
        with pytest.raises(ValueError):
            NoiseModel(["a"], np.linspace(0, 1, 10), {"a": -np.ones(10)})

    def test_bad_rate_raises(self):
        with pytest.raises(ValueError):
            AnalyticNoiseModel(rate=0.0, detector_names=("a",))


class TestNoiseSynthesis:
    def test_deterministic(self):
        f = np.linspace(0, 5, 64)
        psd = white_noise_psd(f, 1.0)
        a = simulate_noise_timestream(1000, 10.0, f, psd, key=(1, 2))
        b = simulate_noise_timestream(1000, 10.0, f, psd, key=(1, 2))
        assert np.array_equal(a, b)

    def test_key_changes_stream(self):
        f = np.linspace(0, 5, 64)
        psd = white_noise_psd(f, 1.0)
        a = simulate_noise_timestream(1000, 10.0, f, psd, key=(1, 2))
        b = simulate_noise_timestream(1000, 10.0, f, psd, key=(1, 3))
        assert not np.array_equal(a, b)

    def test_white_variance(self):
        # White PSD NET^2=1 at rate 10 -> variance = NET^2 * rate / 2 = 5.
        f = np.linspace(0, 5, 64)
        psd = white_noise_psd(f, 1.0)
        tod = simulate_noise_timestream(200000, 10.0, f, psd, key=(3, 4))
        assert np.isclose(tod.var(), 5.0, rtol=0.05)

    def test_zero_mean(self):
        f = np.linspace(0, 5, 64)
        psd = white_noise_psd(f, 1.0)
        tod = simulate_noise_timestream(200000, 10.0, f, psd, key=(5, 6))
        assert abs(tod.mean()) < 0.05

    def test_spectrum_matches_target(self):
        # Welch periodogram of synthesized 1/f noise must follow the PSD.
        rate = 10.0
        nm = AnalyticNoiseModel(
            rate=rate,
            detector_names=("d",),
            net={"d": 1.0},
            fknee={"d": 0.2},
            fmin={"d": 1e-4},
            alpha={"d": 1.0},
        )
        tod = simulate_noise_timestream(
            2**17, rate, nm.freqs, nm.psd("d"), key=(7, 8)
        )
        f_est, p_est = sps.welch(tod, fs=rate, nperseg=4096)
        target = np.interp(f_est, nm.freqs, nm.psd("d"))
        sel = (f_est > 0.05) & (f_est < 4.0)
        ratio = p_est[sel] / target[sel]
        assert abs(np.median(ratio) - 1.0) < 0.2

    def test_white_spectrum_flat(self):
        rate = 8.0
        f = np.linspace(0, 4, 64)
        psd = white_noise_psd(f, 1.0)
        tod = simulate_noise_timestream(2**16, rate, f, psd, key=(9, 1))
        f_est, p_est = sps.welch(tod, fs=rate, nperseg=2048)
        sel = f_est > 0.1
        assert abs(np.median(p_est[sel]) - 1.0) < 0.15

    def test_bad_args(self):
        f = np.linspace(0, 5, 16)
        psd = white_noise_psd(f, 1.0)
        with pytest.raises(ValueError):
            simulate_noise_timestream(0, 10.0, f, psd, key=(0, 0))
        with pytest.raises(ValueError):
            simulate_noise_timestream(10, -1.0, f, psd, key=(0, 0))
        with pytest.raises(ValueError):
            simulate_noise_timestream(10, 10.0, f, psd[:-1], key=(0, 0))
        with pytest.raises(ValueError):
            simulate_noise_timestream(10, 10.0, f, psd, key=(0, 0), oversample=0)

    def test_different_counters_differ(self):
        f = np.linspace(0, 5, 64)
        psd = white_noise_psd(f, 1.0)
        a = simulate_noise_timestream(128, 10.0, f, psd, key=(1, 1), counter=(0, 0))
        b = simulate_noise_timestream(128, 10.0, f, psd, key=(1, 1), counter=(1, 0))
        assert not np.array_equal(a, b)
