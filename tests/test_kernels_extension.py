"""Consistency tests for the extension kernels (paper §5 future work).

``cov_accum_diag_hits`` and ``cov_accum_diag_invnpp`` were among the >30
unported kernels in the paper; this reproduction ports them, so they get
the same four-way consistency treatment as the original ten.
"""

import numpy as np
import pytest

from repro.accel import SimulatedDevice
from repro.core.dispatch import ImplementationType, kernel_registry
from repro.kernels import EXTENSION_KERNELS
from repro.ompshim import OmpTargetRuntime

N_DET = 3
N_SAMP = 150
NNZ = 3
N_PIX = 64

STARTS = np.array([0, 40, 90], dtype=np.int64)
STOPS = np.array([30, 80, 150], dtype=np.int64)

IMPLS = [
    ImplementationType.PYTHON,
    ImplementationType.NUMPY,
    ImplementationType.JAX,
    ImplementationType.OMP_TARGET,
]


def hits_args():
    rng = np.random.default_rng(21)
    pixels = rng.integers(0, N_PIX, (N_DET, N_SAMP))
    pixels[0, 3] = -1
    pixels[2, 100] = -1
    return dict(
        hits=np.zeros(N_PIX, dtype=np.int64),
        pixels=pixels,
        starts=STARTS,
        stops=STOPS,
    )


def invnpp_args():
    rng = np.random.default_rng(22)
    pixels = rng.integers(0, N_PIX, (N_DET, N_SAMP))
    pixels[1, 50] = -1
    return dict(
        invnpp=np.zeros((N_PIX, NNZ * (NNZ + 1) // 2)),
        pixels=pixels,
        weights=rng.normal(size=(N_DET, N_SAMP, NNZ)),
        det_scale=np.array([1.0, 0.5, 2.0]),
        starts=STARTS,
        stops=STOPS,
    )


CASES = {
    "cov_accum_diag_hits": (hits_args, "hits"),
    "cov_accum_diag_invnpp": (invnpp_args, "invnpp"),
}


class TestRegistry:
    def test_extension_kernels_registered(self):
        for name in EXTENSION_KERNELS:
            assert set(kernel_registry.implementations(name)) == set(IMPLS)


@pytest.mark.parametrize("name", EXTENSION_KERNELS)
@pytest.mark.parametrize(
    "impl",
    [ImplementationType.NUMPY, ImplementationType.JAX, ImplementationType.OMP_TARGET],
)
def test_matches_python_oracle(name, impl):
    factory, out_key = CASES[name]
    ref_args = factory()
    kernel_registry.get(name, ImplementationType.PYTHON, allow_fallback=False)(**ref_args)
    args = factory()
    kernel_registry.get(name, impl, allow_fallback=False)(**args)
    np.testing.assert_allclose(args[out_key], ref_args[out_key], rtol=1e-12, atol=1e-12)


@pytest.mark.parametrize("name", EXTENSION_KERNELS)
@pytest.mark.parametrize(
    "impl", [ImplementationType.JAX, ImplementationType.OMP_TARGET]
)
def test_accel_path_matches(name, impl):
    factory, out_key = CASES[name]
    ref_args = factory()
    kernel_registry.get(name, ImplementationType.PYTHON, allow_fallback=False)(**ref_args)

    args = factory()
    rt = OmpTargetRuntime(SimulatedDevice(memory_bytes=1 << 26))
    arrays = [v for v in args.values() if isinstance(v, np.ndarray)]
    rt.target_enter_data(to=arrays)
    kernel_registry.get(name, impl, allow_fallback=False)(**args, accel=rt, use_accel=True)
    for arr in arrays:
        rt.target_update_from(arr)
    rt.target_exit_data(release=arrays)
    np.testing.assert_allclose(args[out_key], ref_args[out_key], rtol=1e-12, atol=1e-12)


class TestSemantics:
    def test_hits_total(self):
        args = hits_args()
        kernel_registry.get("cov_accum_diag_hits", ImplementationType.NUMPY)(**args)
        in_intervals = sum(b - a for a, b in zip(STARTS, STOPS)) * N_DET
        flagged = 2  # the two pixels set to -1 fall inside intervals
        assert args["hits"].sum() == in_intervals - flagged

    def test_invnpp_diag_nonnegative(self):
        args = invnpp_args()
        kernel_registry.get("cov_accum_diag_invnpp", ImplementationType.NUMPY)(**args)
        inv = args["invnpp"]
        # Packed triangle for nnz=3: columns 0, 3, 5 are the diagonal.
        for c in (0, 3, 5):
            assert np.all(inv[:, c] >= 0)

    def test_invnpp_matches_direct_outer_product(self):
        args = invnpp_args()
        kernel_registry.get("cov_accum_diag_invnpp", ImplementationType.NUMPY)(**args)
        # Independent dense reconstruction.
        expected = np.zeros_like(args["invnpp"])
        tri = [(i, j) for i in range(NNZ) for j in range(i, NNZ)]
        ref = invnpp_args()
        for idet in range(N_DET):
            for a, b in zip(STARTS, STOPS):
                for s in range(a, b):
                    p = ref["pixels"][idet, s]
                    if p < 0:
                        continue
                    w = ref["weights"][idet, s]
                    for c, (i, j) in enumerate(tri):
                        expected[p, c] += ref["det_scale"][idet] * w[i] * w[j]
        np.testing.assert_allclose(args["invnpp"], expected, rtol=1e-12)

    def test_empty_intervals(self):
        empty = np.array([], dtype=np.int64)
        for impl in IMPLS:
            args = hits_args()
            args["starts"] = empty
            args["stops"] = empty
            kernel_registry.get("cov_accum_diag_hits", impl, allow_fallback=False)(**args)
            assert args["hits"].sum() == 0


class TestOperatorIntegration:
    def test_covariance_op_uses_kernels_on_accel(self):
        from repro.core import Data, ImplementationType, fake_hexagon_focalplane, use_implementation
        from repro.healpix import npix as healpix_npix
        from repro.ops import (
            CovarianceAndHits,
            DefaultNoiseModel,
            PixelsHealpix,
            PointingDetector,
            SimSatellite,
            StokesWeights,
        )

        def build():
            fp = fake_hexagon_focalplane(n_pixels=1, sample_rate=10.0)
            d = Data()
            SimSatellite(fp, n_observations=1, n_samples=300, flag_fraction=0.0).apply(d)
            DefaultNoiseModel().apply(d)
            PointingDetector().apply(d)
            PixelsHealpix(nside=8, nest=True).apply(d)
            StokesWeights(mode="IQU").apply(d)
            return d

        d_cpu = build()
        CovarianceAndHits(n_pix=healpix_npix(8), nnz=3).apply(d_cpu)

        rt = OmpTargetRuntime(SimulatedDevice(memory_bytes=1 << 26))
        d_gpu = build()
        op = CovarianceAndHits(n_pix=healpix_npix(8), nnz=3)
        assert op.supports_accel()
        with use_implementation(ImplementationType.OMP_TARGET):
            op.ensure_outputs(d_gpu)
            # Stage the detector data like the pipeline would.
            arrays = [d_gpu.obs[0].detdata["pixels"], d_gpu.obs[0].detdata["weights"]]
            rt.target_enter_data(to=arrays)
            op.exec(d_gpu, use_accel=True, accel=rt)
            rt.target_exit_data(release=arrays)
            op.finalize(d_gpu)

        np.testing.assert_array_equal(d_gpu["hits"], d_cpu["hits"])
        np.testing.assert_allclose(d_gpu["inv_cov"], d_cpu["inv_cov"], rtol=1e-12)
        assert rt.device.clock.region_time("cov_accum_diag_invnpp") > 0
