"""Tests for the repro.obs tracing & metrics subsystem."""

import csv
import io
import json

import pytest

from repro import obs
from repro.accel import SimulatedDevice
from repro.core import ImplementationType
from repro.obs import ClockDomain, Event, EventType, NullTracer, Tracer
from repro.ompshim import OmpTargetRuntime
from repro.workflows.satellite import SIZES, run_satellite_benchmark

ACCEL_BACKENDS = [ImplementationType.JAX, ImplementationType.OMP_TARGET]


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    """Every test must leave tracing disabled (the process default)."""
    yield
    assert obs.active_tracer() is None, "a test leaked an active tracer"
    obs.set_tracer(None)


def run_traced(backend, size="tiny", mapmaking=False):
    """The satellite workflow under tracing; returns (tracer, runtime)."""
    accel = OmpTargetRuntime(SimulatedDevice())
    with obs.tracing() as tracer:
        run_satellite_benchmark(
            SIZES[size], backend, accel=accel, mapmaking=mapmaking
        )
    return tracer, accel


class TestTracerCore:
    def test_disabled_by_default(self):
        assert obs.active_tracer() is None
        assert isinstance(obs.current_tracer(), NullTracer)

    def test_tracing_installs_and_restores(self):
        outer = Tracer()
        with obs.tracing(outer) as t:
            assert t is outer
            assert obs.active_tracer() is outer
            with obs.tracing() as inner:
                assert inner is not outer
                assert obs.active_tracer() is inner
            assert obs.active_tracer() is outer
        assert obs.active_tracer() is None

    def test_span_nesting_and_event(self):
        t = Tracer()
        with t.span("outer"):
            assert t.current_span.name == "outer"
            with t.span("inner", tag="x") as sp:
                assert sp.depth == 1
        spans = t.events_of(EventType.SPAN)
        assert [e.name for e in spans] == ["inner", "outer"]  # closed inner-first
        inner = spans[0]
        assert inner.clock is ClockDomain.HOST
        assert inner.attrs["parent"] == "outer"
        assert inner.attrs["tag"] == "x"
        assert inner.dur >= 0

    def test_trace_decorator(self):
        t = Tracer()

        @t.trace(name="work")
        def work(x):
            return x + 1

        assert work(1) == 2
        assert [e.name for e in t.events_of(EventType.SPAN)] == ["work"]

    def test_bounded_buffer_drops_oldest(self):
        t = Tracer(max_events=100)
        for i in range(250):
            t.emit(Event(EventType.ALLOC, f"e{i}", ts=float(i)))
        assert len(t.events) <= 100
        assert t.dropped > 0
        # Metrics survive buffer drops: aggregate independently of events.
        t2 = Tracer(max_events=10)
        for i in range(50):
            t2.device_event(EventType.KERNEL_LAUNCH, "k", ts=float(i), dur=1.0)
        assert t2.metrics.kernels["k"].calls == 50

    def test_null_tracer_is_noop(self):
        nt = NullTracer()
        with nt.span("anything"):
            pass
        assert nt.trace(lambda: 1)() == 1
        assert nt.events_of(EventType.SPAN) == []

    def test_event_validation(self):
        with pytest.raises(ValueError):
            Event(EventType.ALLOC, "bad", ts=-1.0)
        with pytest.raises(ValueError):
            Event(EventType.ALLOC, "bad", ts=0.0, dur=-1.0)

    def test_counters_and_gauges(self):
        t = Tracer()
        t.metrics.count("bytes", 10)
        t.metrics.count("bytes", 5)
        t.metrics.gauge_set("level", 3.0)
        t.metrics.gauge_set("level", 1.0)
        assert t.metrics.counters["bytes"].value == 15
        assert t.metrics.counters["bytes"].samples == 2
        assert t.metrics.gauges["level"].value == 1.0
        assert t.metrics.gauges["level"].peak == 3.0


class TestDeviceEventStream:
    """One test per required event type, for both accelerated backends."""

    @pytest.mark.parametrize("backend", ACCEL_BACKENDS, ids=lambda b: b.value)
    def test_kernel_launch_events(self, backend):
        tracer, accel = run_traced(backend)
        launches = tracer.events_of(EventType.KERNEL_LAUNCH)
        assert launches
        assert all(e.clock is ClockDomain.DEVICE for e in launches)
        assert sum(e.attrs.get("n_launches", 1) for e in launches) == (
            accel.device.kernels_launched
        )

    @pytest.mark.parametrize("backend", ACCEL_BACKENDS, ids=lambda b: b.value)
    def test_h2d_events(self, backend):
        tracer, _ = run_traced(backend)
        h2d = tracer.events_of(EventType.H2D)
        assert h2d
        assert all(e.attrs["nbytes"] > 0 and e.dur > 0 for e in h2d)

    @pytest.mark.parametrize("backend", ACCEL_BACKENDS, ids=lambda b: b.value)
    def test_d2h_events(self, backend):
        tracer, _ = run_traced(backend)
        d2h = tracer.events_of(EventType.D2H)
        assert d2h
        assert all(e.attrs["nbytes"] > 0 and e.dur > 0 for e in d2h)

    @pytest.mark.parametrize("backend", ACCEL_BACKENDS, ids=lambda b: b.value)
    def test_alloc_events(self, backend):
        tracer, _ = run_traced(backend)
        allocs = tracer.events_of(EventType.ALLOC)
        assert allocs
        assert all(e.attrs["nbytes"] > 0 for e in allocs)
        assert all("pool_allocated_bytes" in e.attrs for e in allocs)

    @pytest.mark.parametrize("backend", ACCEL_BACKENDS, ids=lambda b: b.value)
    def test_free_events(self, backend):
        tracer, _ = run_traced(backend)
        frees = tracer.events_of(EventType.FREE)
        assert frees
        # The hybrid pipeline releases everything it mapped at the end.
        assert len(frees) == len(tracer.events_of(EventType.ALLOC))

    @pytest.mark.parametrize("backend", ACCEL_BACKENDS, ids=lambda b: b.value)
    def test_virtual_timestamps_monotone(self, backend):
        """The five required types arrive in non-decreasing virtual time."""
        tracer, _ = run_traced(backend)
        required = {
            EventType.KERNEL_LAUNCH,
            EventType.H2D,
            EventType.D2H,
            EventType.ALLOC,
            EventType.FREE,
        }
        seen = set()
        last = -1.0
        for e in tracer.events:
            if e.clock is ClockDomain.DEVICE and e.type in required:
                assert e.ts >= last, f"{e} went backwards past {last}"
                last = e.ts
                seen.add(e.type)
        assert seen == required

    @pytest.mark.parametrize("backend", ACCEL_BACKENDS, ids=lambda b: b.value)
    def test_pipeline_stage_events(self, backend):
        tracer, _ = run_traced(backend)
        stages = tracer.events_of(EventType.PIPELINE_STAGE)
        # Six operators in the satellite processing pipeline.
        assert len(stages) == 6
        assert all(e.clock is ClockDomain.DEVICE for e in stages)

    def test_jit_compile_cache_events(self):
        import numpy as np

        from repro.jaxshim import jit

        with obs.tracing() as tracer:
            fn = jit(lambda x: x * 2.0 + 1.0)
            fn(np.ones(8))
            fn(np.ones(8))  # same signature: cache hit
            fn(np.ones(16))  # new shape: second miss
        compiles = tracer.events_of(EventType.COMPILE)
        assert [e.attrs["cache_hit"] for e in compiles] == [False, True, False]
        miss = compiles[0]
        assert miss.attrs["n_eqns"] > 0 and miss.dur >= 0
        assert tracer.metrics.counters["jit.cache_misses"].value == 2
        assert tracer.metrics.counters["jit.cache_hits"].value == 1

    def test_omp_target_region_events(self):
        tracer, _ = run_traced(ImplementationType.OMP_TARGET)
        regions = tracer.events_of(EventType.TARGET_REGION)
        names = {e.name for e in regions}
        assert "target_enter_data" in names
        assert any(n.startswith("target_teams.") for n in names)
        assert "datamap.enter" in names and "datamap.exit" in names

    def test_kernel_resolve_events(self):
        tracer, _ = run_traced(ImplementationType.OMP_TARGET)
        resolves = tracer.events_of(EventType.KERNEL_RESOLVE)
        assert resolves
        assert all(e.attrs["requested"] == "omp_target" for e in resolves)


class TestMetricsAgreement:
    @pytest.mark.parametrize("backend", ACCEL_BACKENDS, ids=lambda b: b.value)
    def test_kernel_seconds_match_clock_accounting(self, backend):
        """Per-kernel virtual-second totals agree with the device clock."""
        tracer, accel = run_traced(backend)
        clock = accel.device.clock
        assert tracer.metrics.kernels, "no kernels aggregated"
        for name, stats in tracer.metrics.kernels.items():
            assert stats.virtual_seconds == pytest.approx(
                clock.region_time(name), abs=1e-9
            )
            assert stats.calls == clock.region_count(name)

    @pytest.mark.parametrize("backend", ACCEL_BACKENDS, ids=lambda b: b.value)
    def test_transfer_bytes_match_events(self, backend):
        tracer, _ = run_traced(backend)
        h2d_total = sum(e.attrs["nbytes"] for e in tracer.events_of(EventType.H2D))
        assert tracer.metrics.counters["transfer.h2d_bytes"].value == h2d_total

    def test_pool_peak_gauge(self):
        tracer, accel = run_traced(ImplementationType.OMP_TARGET)
        peak = tracer.metrics.gauges["pool.allocated_bytes"].peak
        assert 0 < peak <= accel.device.pool.capacity


class TestExporters:
    def test_chrome_trace_is_valid_json(self, tmp_path):
        tracer, _ = run_traced(ImplementationType.JAX)
        path = obs.write_chrome_trace(tracer, tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        assert events
        for ev in events:
            assert {"name", "ph", "ts", "pid"} <= set(ev)
            # M = process/thread-name metadata (worker tracks)
            assert ev["ph"] in ("X", "i", "C", "M")
            if ev["ph"] == "X":
                assert ev["dur"] >= 0
        cats = {e.get("cat") for e in events}
        for wanted in ("kernel_launch", "h2d", "d2h", "alloc", "free"):
            assert wanted in cats

    def test_kernel_csv_matches_device_accounting(self, tmp_path):
        tracer, accel = run_traced(ImplementationType.OMP_TARGET)
        path = tmp_path / "kernels.csv"
        obs.write_kernel_metrics_csv(tracer, path)
        with open(path, newline="") as fh:
            rows = list(csv.DictReader(fh))
        assert rows
        clock = accel.device.clock
        for row in rows:
            assert float(row["total_seconds"]) == pytest.approx(
                clock.region_time(row["name"]), abs=1e-9
            )

    def test_kernel_csv_merges_with_timing_csv(self, tmp_path):
        from repro.core.timing import GlobalTimers, merge_timing_csv

        tracer, _ = run_traced(ImplementationType.OMP_TARGET)
        p1 = tmp_path / "device.csv"
        obs.write_kernel_metrics_csv(tracer, p1)
        host = GlobalTimers()
        host.record("host_only_timer", 1.0)
        p2 = tmp_path / "host.csv"
        host.dump_csv(p2)
        merged = merge_timing_csv([p1, p2], labels=["device", "host"])
        assert "host_only_timer" in merged

    def test_render_summary(self):
        tracer, _ = run_traced(ImplementationType.JAX)
        text = obs.render_summary(tracer)
        assert "kernels (virtual device time)" in text
        assert "H2D moved" in text
        assert "event census" in text

    def test_csv_to_stream(self):
        tracer, _ = run_traced(ImplementationType.OMP_TARGET)
        buf = io.StringIO()
        obs.write_kernel_metrics_csv(tracer, buf)
        header = buf.getvalue().splitlines()[0]
        assert header.startswith("name,total_seconds,calls,mean_seconds,max_seconds")


class TestTraceIds:
    """Request-scoped trace ids: ambient stamping and exporter columns."""

    def test_trace_context_stamps_emitted_events(self):
        t = Tracer()
        t.emit(Event(EventType.ALLOC, "before", ts=0.0))
        with t.trace_context("req-1"):
            t.emit(Event(EventType.ALLOC, "during", ts=1.0))
            with t.span("inner"):
                pass
        t.emit(Event(EventType.ALLOC, "after", ts=2.0))
        by_name = {e.name: e.trace_id for e in t.events}
        assert by_name == {
            "before": None,
            "during": "req-1",
            "inner": "req-1",
            "after": None,
        }

    def test_explicit_trace_id_is_not_overwritten(self):
        t = Tracer()
        with t.trace_context("ambient"):
            t.emit(Event(EventType.ALLOC, "e", ts=0.0, trace_id="explicit"))
        assert t.events[0].trace_id == "explicit"

    def test_contexts_nest_and_restore(self):
        t = Tracer()
        with t.trace_context("outer"):
            assert t.current_trace_id == "outer"
            with t.trace_context("inner"):
                assert t.current_trace_id == "inner"
            assert t.current_trace_id == "outer"
        assert t.current_trace_id is None

    def test_default_is_none_and_costs_nothing(self):
        t = Tracer()
        assert t.current_trace_id is None
        t.emit(Event(EventType.ALLOC, "e", ts=0.0))
        assert t.events[0].trace_id is None

    def test_null_tracer_has_the_surface(self):
        nt = NullTracer()
        assert nt.current_trace_id is None
        with nt.trace_context("x"):
            pass

    def test_chrome_trace_carries_trace_id_args(self, tmp_path):
        t = Tracer()
        with t.trace_context("req-9"):
            t.emit(Event(EventType.ALLOC, "tagged", ts=0.0))
        t.emit(Event(EventType.ALLOC, "untagged", ts=1.0))
        path = obs.write_chrome_trace(t, tmp_path / "trace.json")
        events = {
            e["name"]: e
            for e in json.loads(path.read_text())["traceEvents"]
            if e["ph"] != "M"
        }
        assert events["tagged"]["args"]["trace_id"] == "req-9"
        assert "trace_id" not in events["untagged"].get("args", {})

    def test_events_csv_has_trace_id_column(self, tmp_path):
        t = Tracer()
        with t.trace_context("req-3"):
            t.emit(Event(EventType.ALLOC, "tagged", ts=0.0, attrs={"k": 1}))
        t.emit(Event(EventType.ALLOC, "untagged", ts=1.0))
        path = tmp_path / "events.csv"
        obs.write_events_csv(t, path)
        with open(path, newline="") as fh:
            rows = {r["name"]: r for r in csv.DictReader(fh)}
        assert rows["tagged"]["trace_id"] == "req-3"
        assert rows["untagged"]["trace_id"] == ""
        assert "k=1" in rows["tagged"]["attrs"]


class TestCliTrace:
    def test_trace_subcommand(self, capsys, tmp_path):
        from repro.workflows.cli import main

        out = tmp_path / "traces"
        assert main(["trace", "tiny", "jax", "--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "chrome trace" in stdout
        trace_files = list(out.glob("trace_*.json"))
        csv_files = list(out.glob("kernels_*.csv"))
        assert len(trace_files) == 1 and len(csv_files) == 1
        doc = json.loads(trace_files[0].read_text())
        assert doc["traceEvents"]
        # Tracing must not stay enabled after the command returns.
        assert obs.active_tracer() is None

    def test_trace_subcommand_numpy_backend(self, capsys, tmp_path):
        from repro.workflows.cli import main

        out = tmp_path / "traces"
        assert main(
            ["trace", "tiny", "numpy", "--out", str(out), "--no-mapmaking"]
        ) == 0
        # No device: still a valid (host-only) trace.
        doc = json.loads(next(out.glob("trace_*.json")).read_text())
        assert doc["traceEvents"]


class TestZeroCostWhenDisabled:
    def test_no_events_without_tracer(self):
        accel = OmpTargetRuntime(SimulatedDevice())
        run_satellite_benchmark(SIZES["tiny"], ImplementationType.OMP_TARGET,
                                accel=accel, mapmaking=False)
        # Nothing to assert on a tracer -- the invariant is that no global
        # tracer exists and nothing crashed with hooks compiled in.
        assert obs.active_tracer() is None

    def test_get_kernel_has_no_tracing_closure_when_disabled(self):
        from repro.core.dispatch import get_kernel, kernel_registry

        fn = get_kernel("scan_map", ImplementationType.NUMPY)
        # The BoundKernel wraps the raw implementation with no tracer
        # attached -- calls go straight through.
        assert fn.fn is kernel_registry.get("scan_map", ImplementationType.NUMPY)
        assert fn._tracer is None
