"""Unit and property tests for repro.math.intervals."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.math import Interval, IntervalList
from repro.math.intervals import regular_intervals


spans_strategy = st.lists(
    st.tuples(st.integers(0, 200), st.integers(0, 60)).map(lambda t: (t[0], t[0] + t[1])),
    max_size=12,
)


class TestInterval:
    def test_length(self):
        assert len(Interval(3, 10)) == 7

    def test_empty_ok(self):
        assert len(Interval(5, 5)) == 0

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            Interval(5, 3)
        with pytest.raises(ValueError):
            Interval(-1, 3)

    def test_overlaps(self):
        a = Interval(0, 10)
        assert a.overlaps(Interval(5, 15))
        assert not a.overlaps(Interval(10, 20))  # half-open: touching is disjoint

    def test_contains(self):
        iv = Interval(2, 5)
        assert iv.contains(2) and iv.contains(4)
        assert not iv.contains(5) and not iv.contains(1)


class TestIntervalListNormalization:
    def test_sorted_and_merged(self):
        il = IntervalList([(10, 20), (0, 5), (18, 25)])
        assert [(iv.first, iv.last) for iv in il] == [(0, 5), (10, 25)]

    def test_touching_merged(self):
        il = IntervalList([(0, 5), (5, 10)])
        assert len(il) == 1
        assert il[0] == Interval(0, 10)

    def test_empty_dropped(self):
        il = IntervalList([(3, 3), (7, 9)])
        assert len(il) == 1

    @settings(max_examples=100, deadline=None)
    @given(spans=spans_strategy)
    def test_normalized_invariants(self, spans):
        il = IntervalList(spans)
        for a, b in zip(il, list(il)[1:]):
            assert a.last < b.first  # disjoint and strictly ordered
        for iv in il:
            assert len(iv) > 0


class TestMaskRoundtrip:
    @settings(max_examples=100, deadline=None)
    @given(spans=spans_strategy)
    def test_mask_roundtrip(self, spans):
        il = IntervalList(spans)
        n = 300
        assert IntervalList.from_mask(il.mask(n)) == il

    def test_mask_counts(self):
        il = IntervalList([(0, 3), (10, 12)])
        m = il.mask(20)
        assert m.sum() == il.n_samples == 5

    def test_from_mask_rejects_2d(self):
        with pytest.raises(ValueError):
            IntervalList.from_mask(np.zeros((2, 2), dtype=bool))


class TestSetAlgebra:
    @settings(max_examples=100, deadline=None)
    @given(a=spans_strategy, b=spans_strategy)
    def test_union_matches_mask_or(self, a, b):
        n = 300
        ia, ib = IntervalList(a), IntervalList(b)
        assert ia.union(ib) == IntervalList.from_mask(ia.mask(n) | ib.mask(n))

    @settings(max_examples=100, deadline=None)
    @given(a=spans_strategy, b=spans_strategy)
    def test_intersection_matches_mask_and(self, a, b):
        n = 300
        ia, ib = IntervalList(a), IntervalList(b)
        assert ia.intersection(ib) == IntervalList.from_mask(ia.mask(n) & ib.mask(n))

    @settings(max_examples=100, deadline=None)
    @given(a=spans_strategy)
    def test_invert_matches_mask_not(self, a):
        n = 300
        ia = IntervalList(a)
        assert ia.invert(n) == IntervalList.from_mask(~ia.mask(n))

    @settings(max_examples=50, deadline=None)
    @given(a=spans_strategy)
    def test_double_invert_is_identity_within_range(self, a):
        n = 300
        ia = IntervalList(a)
        assert ia.invert(n).invert(n) == IntervalList.from_mask(ia.mask(n))

    def test_shift(self):
        il = IntervalList([(0, 3), (8, 10)]).shift(5)
        assert [(iv.first, iv.last) for iv in il] == [(5, 8), (13, 15)]


class TestArrays:
    def test_as_arrays_dtype_and_values(self):
        il = IntervalList([(0, 4), (9, 11)])
        starts, stops = il.as_arrays()
        assert starts.dtype == np.int64 and stops.dtype == np.int64
        assert starts.tolist() == [0, 9]
        assert stops.tolist() == [4, 11]

    def test_from_arrays_roundtrip(self):
        il = IntervalList([(2, 6), (10, 20)])
        assert IntervalList.from_arrays(*il.as_arrays()) == il

    def test_from_arrays_mismatched_raises(self):
        with pytest.raises(ValueError):
            IntervalList.from_arrays([0, 1], [2])

    def test_max_length(self):
        il = IntervalList([(0, 4), (9, 20)])
        assert il.max_length == 11
        assert IntervalList([]).max_length == 0


class TestRegularIntervals:
    def test_no_gaps_covers_everything(self):
        il = regular_intervals(100, 10)
        assert il.n_samples == 100
        assert len(il) == 1  # touching intervals merge

    def test_with_gaps(self):
        il = regular_intervals(100, 10, gap_length=5)
        assert all(len(iv) <= 10 for iv in il)
        assert len(il) == 7
        assert il[0] == Interval(0, 10)
        assert il[1] == Interval(15, 25)

    def test_truncated_tail(self):
        il = regular_intervals(18, 10, gap_length=2)
        assert il[-1] == Interval(12, 18)

    def test_bad_args(self):
        with pytest.raises(ValueError):
            regular_intervals(10, 0)
        with pytest.raises(ValueError):
            regular_intervals(10, 5, gap_length=-1)
