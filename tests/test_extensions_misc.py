"""Tests for smaller extensions: time intervals, common-mode noise,
device presets, make_graph, cumsum/diff/tile."""

import numpy as np
import pytest

from repro.accel import DEVICE_PRESETS, SimulatedDevice
from repro.core import Data, fake_hexagon_focalplane
from repro.jaxshim import config, jit, jnp, make_graph, vmap
from repro.math.intervals import IntervalList
from repro.ops import DefaultNoiseModel, SimNoise, SimSatellite


class TestTimeIntervals:
    def test_from_time_ranges(self):
        times = np.arange(10.0) * 0.5  # 0.0 .. 4.5
        il = IntervalList.from_time_ranges(times, [(1.0, 2.0), (3.0, 10.0)])
        assert [(iv.first, iv.last) for iv in il] == [(2, 4), (6, 10)]

    def test_roundtrip_time_ranges(self):
        times = np.arange(20.0)
        il = IntervalList([(2, 5), (10, 15)])
        ranges = il.time_ranges(times)
        assert ranges == [(2.0, 4.0), (10.0, 14.0)]

    def test_inverted_range_rejected(self):
        with pytest.raises(ValueError):
            IntervalList.from_time_ranges(np.arange(5.0), [(3.0, 1.0)])

    def test_nonmonotonic_times_rejected(self):
        with pytest.raises(ValueError):
            IntervalList.from_time_ranges(np.array([0.0, 2.0, 1.0]), [(0, 1)])

    def test_interval_beyond_times(self):
        with pytest.raises(ValueError):
            IntervalList([(0, 100)]).time_ranges(np.arange(10.0))


class TestCommonModeNoise:
    def _corr(self, common_mode):
        # Nearly-white detectors: with strong 1/f noise the few low-
        # frequency modes dominate and sample correlations of *independent*
        # streams fluctuate at the +-0.2 level, masking the effect.
        fp = fake_hexagon_focalplane(n_pixels=2, sample_rate=10.0, fknee=1e-6)
        d = Data()
        SimSatellite(fp, n_observations=1, n_samples=20000).apply(d)
        DefaultNoiseModel().apply(d)
        SimNoise(common_mode=common_mode).apply(d)
        sig = d.obs[0].detdata["signal"]
        return np.corrcoef(sig[0], sig[1])[0, 1]

    def test_no_common_mode_uncorrelated(self):
        assert abs(self._corr(0.0)) < 0.1

    def test_common_mode_correlates(self):
        assert self._corr(2.0) > 0.5

    def test_strength_monotone(self):
        assert self._corr(3.0) > self._corr(0.5)

    def test_negative_strength_rejected(self):
        with pytest.raises(ValueError):
            SimNoise(common_mode=-1.0)

    def test_deterministic(self):
        fp = fake_hexagon_focalplane(n_pixels=1, sample_rate=10.0)

        def run():
            d = Data()
            SimSatellite(fp, n_observations=1, n_samples=500).apply(d)
            DefaultNoiseModel().apply(d)
            SimNoise(common_mode=1.0).apply(d)
            return d.obs[0].detdata["signal"].copy()

        np.testing.assert_array_equal(run(), run())


class TestDevicePresets:
    def test_presets_exist(self):
        for name in ("A100-40GB", "V100-16GB", "H100-80GB", "MI250X-GCD"):
            assert name in DEVICE_PRESETS

    def test_presets_build_devices(self):
        for name, spec in DEVICE_PRESETS.items():
            dev = SimulatedDevice(spec=spec, memory_bytes=1 << 20)
            buf = dev.alloc(1024)
            dev.free(buf)

    def test_bandwidth_ordering(self):
        p = DEVICE_PRESETS
        assert (
            p["V100-16GB"].memory_bandwidth_bps
            < p["A100-40GB"].memory_bandwidth_bps
            < p["H100-80GB"].memory_bandwidth_bps
        )

    def test_capacities(self):
        assert DEVICE_PRESETS["A100-40GB"].memory_bytes == 40 * 1024**3
        assert DEVICE_PRESETS["H100-80GB"].memory_bytes == 80 * 1024**3


class TestMakeGraph:
    def test_renders_program(self):
        with config.temporarily(enable_x64=True):
            g = make_graph(lambda x: jnp.sum(x * 2.0 + 1.0))(np.zeros(4))
        text = repr(g)
        assert "multiply" in text
        assert "reduce_sum" in text
        assert "float64[4]" in text

    def test_optimized(self):
        with config.temporarily(enable_x64=True):
            g = make_graph(lambda x: (jnp.sin(x) + jnp.sin(x), jnp.exp(x))[0])(
                np.zeros(3)
            )
        names = [e.prim.name for e in g.eqns]
        assert names.count("sin") == 1  # CSE ran
        assert "exp" not in names  # DCE ran

    def test_static_argnums(self):
        with config.temporarily(enable_x64=True):
            g = make_graph(lambda x, n: x * n, static_argnums=(1,))(np.zeros(3), 4)
        assert len(g.in_vars) == 1


class TestNewJnpOps:
    @pytest.fixture(autouse=True)
    def x64(self):
        with config.temporarily(enable_x64=True):
            yield

    def test_cumsum_axis(self):
        x = np.arange(12.0).reshape(3, 4)
        assert np.allclose(jnp.cumsum(x, axis=1), np.cumsum(x, axis=1))
        assert np.allclose(jit(lambda a: jnp.cumsum(a, axis=0))(x), np.cumsum(x, axis=0))

    def test_cumsum_vmap(self):
        x = np.arange(12.0).reshape(3, 4)
        assert np.allclose(vmap(jnp.cumsum)(x), np.cumsum(x, axis=1))

    def test_cumsum_breaks_fusion(self):
        @jit
        def f(a):
            return jnp.cumsum(a * 2) + 1

        f(np.zeros(8))
        exe = f.compiled_for(np.zeros(8))
        assert exe.n_kernels >= 2

    def test_diff(self):
        x = np.array([1.0, 4.0, 9.0, 16.0])
        assert np.allclose(jnp.diff(x), np.diff(x))
        assert np.allclose(jit(jnp.diff)(x), np.diff(x))

    def test_diff_2d_axis(self):
        x = np.arange(12.0).reshape(3, 4)
        assert np.allclose(jnp.diff(x, axis=0), np.diff(x, axis=0))

    def test_tile(self):
        x = np.arange(3.0)
        assert np.allclose(jnp.tile(x, 2), np.tile(x, 2))
        with pytest.raises(ValueError):
            jnp.tile(x, 0)
