"""Bitwise parity: batched ``numpy`` kernels vs the ``python`` oracle.

The numpy backend rewrites every per-detector/per-interval Python loop as
one batched pass over flattened interval samples.  The contract is not
"numerically close" -- it is **bit-identical**: same operation order on the
same lanes, so ``tobytes()`` matches.  The suite sweeps detector counts
(including 1 and a prime), interval shapes (irregular, one full span, and
no spans at all), and flag masks on/off.
"""

import numpy as np
import pytest

from repro.core.dispatch import ImplementationType
from repro.kernels import kernel_registry
from repro.workflows.microbench import kernel_cases, make_intervals, run_kernel_case

# Registry-driven, not hand-enumerated: every registered kernel whose spec
# opts into parity is swept.  Computed at collection time, before any test
# can register synthetic kernels.
KERNELS = [
    name for name in kernel_registry.kernels() if kernel_registry.spec(name).parity
]

DET_COUNTS = [1, 3, 17]
INTERVAL_KINDS = ["irregular", "full", "empty"]


def _assert_bitwise(name, py_outs, np_outs):
    assert len(py_outs) == len(np_outs)
    for a, b in zip(py_outs, np_outs):
        assert a.shape == b.shape, f"{name}: shape {a.shape} != {b.shape}"
        assert a.dtype == b.dtype, f"{name}: dtype {a.dtype} != {b.dtype}"
        if not np.array_equal(a, b):
            bad = np.flatnonzero(a.ravel() != b.ravel())
            raise AssertionError(
                f"{name}: {bad.size} of {a.size} elements differ "
                f"(first at flat index {bad[0]})"
            )
        # array_equal treats -0.0 == 0.0; the real contract is the bytes.
        assert a.tobytes() == b.tobytes(), f"{name}: bit pattern differs"


@pytest.mark.parametrize("intervals", INTERVAL_KINDS)
@pytest.mark.parametrize("n_det", DET_COUNTS)
@pytest.mark.parametrize("kernel", KERNELS)
def test_numpy_matches_python_bitwise(kernel, n_det, intervals):
    factory = kernel_cases(n_det=n_det, n_samp=120, intervals=intervals)[kernel]
    py = run_kernel_case(kernel, ImplementationType.PYTHON, factory)
    npy = run_kernel_case(kernel, ImplementationType.NUMPY, factory)
    _assert_bitwise(kernel, py, npy)


@pytest.mark.parametrize("kernel", KERNELS)
def test_numpy_matches_python_without_flags(kernel):
    factory = kernel_cases(n_det=3, n_samp=96, with_flags=False)[kernel]
    py = run_kernel_case(kernel, ImplementationType.PYTHON, factory)
    npy = run_kernel_case(kernel, ImplementationType.NUMPY, factory)
    _assert_bitwise(kernel, py, npy)


def test_empty_intervals_leave_outputs_untouched():
    """With no intervals every in-place kernel must be a strict no-op."""
    cases = kernel_cases(n_det=2, n_samp=64, intervals="empty")
    for name, factory in cases.items():
        if name == "template_offset_apply_diag_precond":
            continue  # operates on amplitudes, not on interval samples
        args, outputs = factory()
        before = {k: np.copy(args[k]) for k in outputs}
        out_arrays = run_kernel_case(name, ImplementationType.NUMPY, factory)
        for key, arr in zip(outputs, out_arrays):
            assert arr.tobytes() == before[key].tobytes(), (
                f"{name}: wrote to {key} despite empty interval list"
            )


def test_flatten_intervals_orders_samples():
    from repro.kernels.common import flatten_intervals

    starts = np.array([0, 10, 20], dtype=np.int64)
    stops = np.array([3, 12, 21], dtype=np.int64)
    flat = flatten_intervals(starts, stops)
    assert flat.tolist() == [0, 1, 2, 10, 11, 20]
    e = np.zeros(0, dtype=np.int64)
    assert flatten_intervals(e, e).size == 0


def test_flatten_intervals_degenerate_spans():
    """Zero-length and inverted spans flatten to nothing, like range()."""
    from repro.kernels.common import flatten_intervals, pad_intervals

    starts = np.array([5, 10, 30, 40], dtype=np.int64)
    stops = np.array([5, 13, 25, 40], dtype=np.int64)  # empty, ok, inverted, empty
    assert flatten_intervals(starts, stops).tolist() == [10, 11, 12]
    # All-degenerate lists produce an empty flat index, not an error.
    assert flatten_intervals(starts, starts).size == 0
    idx, valid, max_len = pad_intervals(starts, starts)
    assert not valid.any() and max_len == 0


@pytest.mark.parametrize(
    "kernel", ["build_noise_weighted", "cov_accum_diag_hits", "cov_accum_diag_invnpp", "scan_map"]
)
def test_fully_masked_observation_is_parity_noop(kernel):
    """Every sample flagged/invalid: no scatter work, outputs match oracle.

    Regression for the batched kernels allocating full contribution
    arrays (and issuing zero-length scatters) when an observation is
    fully flag-masked.
    """
    factory = kernel_cases(n_det=3, n_samp=64)[kernel]

    def masked_factory():
        args, outputs = factory()
        if "shared_flags" in args and args["shared_flags"] is not None:
            args["shared_flags"][:] = 0xFF
            args["mask"] = 0xFF
        # Invalidate every pixel as well: covers kernels without flags.
        if "pixels" in args:
            args["pixels"][:] = -1
        return args, outputs

    py = run_kernel_case(kernel, ImplementationType.PYTHON, masked_factory)
    npy = run_kernel_case(kernel, ImplementationType.NUMPY, masked_factory)
    _assert_bitwise(kernel, py, npy)
    # Accumulating outputs stay exactly zero.
    args, outputs = masked_factory()
    for key, arr in zip(outputs, run_kernel_case(kernel, ImplementationType.NUMPY, masked_factory)):
        if key in ("zmap", "hits", "invnpp"):
            assert not arr.any(), f"{kernel}: accumulated into {key} despite full mask"


def test_make_intervals_kinds():
    starts, stops = make_intervals(128, "full")
    assert starts.tolist() == [0] and stops.tolist() == [128]
    starts, stops = make_intervals(128, "irregular")
    assert np.all(stops > starts) and np.all(stops <= 128)
    starts, stops = make_intervals(128, "empty")
    assert starts.size == 0 and stops.size == 0
