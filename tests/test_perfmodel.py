"""Tests asserting the performance model reproduces the paper's relations."""

import numpy as np
import pytest

from repro.mpi import SimWorld
from repro.perfmodel import (
    ACCEL_DATA_CALIBRATION,
    AMDAHL_BOUND,
    FULL_BENCHMARK,
    KERNEL_CALIBRATION,
    Backend,
    MemoryModel,
    accel_runtime,
    cpu_runtime,
    full_benchmark_runtimes,
    per_kernel_times,
    process_sweep,
    speedup_anchor,
)
from repro.perfmodel.calibration import CPU_MODEL

TB = 1.0e12


class TestKernelCalibration:
    def test_covers_benchmark_kernels(self):
        from repro.kernels import BENCHMARK_KERNELS

        assert set(KERNEL_CALIBRATION) == set(BENCHMARK_KERNELS)

    def test_paper_speedup_extremes_jax(self):
        # §4.2: JAX from 1.5x (offset_add) to 45x (offset_project).
        assert KERNEL_CALIBRATION["template_offset_add_to_signal"].jax_speedup == 1.5
        assert KERNEL_CALIBRATION["template_offset_project_signal"].jax_speedup == 45.0
        assert KERNEL_CALIBRATION["stokes_weights_IQU"].jax_speedup == 18.0
        assert KERNEL_CALIBRATION["pixels_healpix"].jax_speedup == 11.0

    def test_paper_speedup_extremes_omp(self):
        # §4.2: OMP from 5x to 61x; pixels_healpix 41x; offset_project 19x.
        assert KERNEL_CALIBRATION["template_offset_add_to_signal"].omp_speedup == 5.0
        assert KERNEL_CALIBRATION["stokes_weights_IQU"].omp_speedup == 61.0
        assert KERNEL_CALIBRATION["pixels_healpix"].omp_speedup == 41.0
        assert KERNEL_CALIBRATION["template_offset_project_signal"].omp_speedup == 19.0

    def test_omp_faster_than_jax_on_average(self):
        # §4.2: OMP "on average 2.4x faster than JAX" per kernel.
        ratios = [
            k.jax_speedup and k.omp_speedup / k.jax_speedup
            for k in KERNEL_CALIBRATION.values()
        ]
        assert 2.0 < np.mean(ratios) < 2.8

    def test_offset_project_is_the_jax_win(self):
        # The one kernel where JAX beats OMP (XLA's linear-algebra rewrite).
        k = KERNEL_CALIBRATION["template_offset_project_signal"]
        assert k.jax_speedup > k.omp_speedup

    def test_seconds_dispatch(self):
        k = KERNEL_CALIBRATION["scan_map"]
        assert k.seconds("cpu") == k.cpu_seconds
        assert k.seconds("jax") == k.cpu_seconds / k.jax_speedup
        with pytest.raises(ValueError):
            k.seconds("cuda")

    def test_amdahl_bound_at_reference_configuration(self):
        # §4: the 16-process medium configuration is bounded at ~3x.
        t16 = cpu_runtime(16)
        non_ported = t16 - CPU_MODEL["ported_seconds"]
        bound = t16 / non_ported
        assert abs(bound - AMDAHL_BOUND) < 0.35


class TestCpuCurve:
    def test_monotone_decreasing(self):
        times = [cpu_runtime(p) for p in (1, 2, 4, 8, 16, 32, 64)]
        assert all(a > b for a, b in zip(times, times[1:]))

    def test_dominated_by_serial_at_low_counts(self):
        # §4.1: "the decrease is explained by ... serial operations
        # parallelized by the addition of more processes".
        assert cpu_runtime(1) / cpu_runtime(64) > 3.0

    def test_scale(self):
        assert cpu_runtime(16, size_scale=2.0) == 2 * cpu_runtime(16)

    def test_bad_procs(self):
        with pytest.raises(ValueError):
            cpu_runtime(0)


class TestSweepAnchors:
    def test_jax_peak_at_8(self):
        # §4.1: JAX peaks at 2.4x with 8 processes (2 per GPU).
        assert speedup_anchor(Backend.JAX, 8) == 2.4
        assert speedup_anchor(Backend.JAX, 16) == 2.3
        assert speedup_anchor(Backend.JAX, 32) == 2.0

    def test_omp_consistently_faster(self):
        # §4.1: OMP "is consistently ~20% faster" than JAX.
        for p in (2, 4, 8, 16, 32):
            sj = speedup_anchor(Backend.JAX, p)
            so = speedup_anchor(Backend.OMP, p)
            assert so > sj
            assert 1.05 < so / sj < 1.35

    def test_omp_peak(self):
        assert speedup_anchor(Backend.OMP, 8) == 2.9
        assert speedup_anchor(Backend.OMP, 16) == 2.7
        assert speedup_anchor(Backend.OMP, 32) == 2.3

    def test_oom_points(self):
        assert speedup_anchor(Backend.JAX, 1) is None
        assert speedup_anchor(Backend.JAX, 64) is None
        assert speedup_anchor(Backend.OMP, 64) is None
        assert speedup_anchor(Backend.OMP, 1) is not None  # fits (§4.1)

    def test_interpolation(self):
        s = speedup_anchor(Backend.JAX, 12)
        assert 2.3 < s < 2.4

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            speedup_anchor(Backend.JAX, 128)

    def test_cpu_is_unity(self):
        assert speedup_anchor(Backend.CPU, 8) == 1.0


class TestMemoryModel:
    def test_fig4_oom_pattern(self):
        mm = MemoryModel()
        data = 1.0 * TB  # medium: ~1 TB on one node
        fits = {
            (b, p): mm.fits(b, SimWorld(1, p), data)
            for b in ("jax", "omp")
            for p in (1, 8, 16, 32, 64)
        }
        assert not fits[("jax", 1)]  # JAX OOM at 1 process
        assert fits[("omp", 1)]  # OMP fits at 1 process
        assert not fits[("jax", 64)]  # both OOM at 64
        assert not fits[("omp", 64)]
        for p in (8, 16, 32):
            assert fits[("jax", p)]
            assert fits[("omp", p)]

    def test_jax_footprint_larger(self):
        mm = MemoryModel()
        w = SimWorld(1, 16)
        assert mm.footprint_per_gpu("jax", w, TB) > mm.footprint_per_gpu("omp", w, TB)

    def test_fig5_large_fits(self):
        # Large: 10 TB over 8 nodes at 16 procs/node -- both fit.
        mm = MemoryModel()
        w = SimWorld(8, 16)
        per_node = 10 * TB / 8
        assert mm.fits("jax", w, per_node)
        assert mm.fits("omp", w, per_node)

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            MemoryModel().fits("tpu", SimWorld(1, 4), TB)


class TestAccelRuntime:
    def test_oom_returns_none(self):
        w = SimWorld(1, 64)
        t = accel_runtime(
            Backend.JAX, w, memory=MemoryModel(), data_bytes_per_node=TB
        )
        assert t is None

    def test_faster_than_cpu_where_valid(self):
        for p in (8, 16, 32):
            w = SimWorld(1, p)
            for b in (Backend.JAX, Backend.OMP):
                assert accel_runtime(b, w) < cpu_runtime(p)

    def test_jax_cpu_backend_slower(self):
        # §4.2: JAX's CPU backend is 7.4x slower than the baseline.
        w = SimWorld(1, 16)
        t = accel_runtime(Backend.JAX_CPU_BACKEND, w)
        assert np.isclose(t / cpu_runtime(16), 7.4)

    def test_mps_required_for_omp_oversubscription(self):
        # §3.1.2: without MPS, OMP performance caps at 1 proc/device.
        w16 = SimWorld(1, 16)
        with_mps = accel_runtime(Backend.OMP, w16, mps_enabled=True)
        without = accel_runtime(Backend.OMP, w16, mps_enabled=False)
        assert without > with_mps
        w4 = SimWorld(1, 4)
        assert np.isclose(without, accel_runtime(Backend.OMP, w4, mps_enabled=True))

    def test_mps_irrelevant_for_jax(self):
        # §3.1.3: "MPS was not needed ... with JAX".
        w = SimWorld(1, 16)
        assert accel_runtime(Backend.JAX, w, mps_enabled=False) == accel_runtime(
            Backend.JAX, w, mps_enabled=True
        )


class TestProcessSweep:
    def test_shape(self):
        sweep = process_sweep()
        assert len(sweep) == 7 * 3
        oom = [(pt.backend, pt.n_procs) for pt in sweep if pt.runtime_s is None]
        assert (Backend.JAX, 1) in oom
        assert (Backend.JAX, 64) in oom
        assert (Backend.OMP, 64) in oom
        assert (Backend.OMP, 1) not in oom

    def test_peak_speedups(self):
        sweep = {(pt.backend, pt.n_procs): pt for pt in process_sweep()}
        jax_valid = {
            p: sweep[(Backend.JAX, p)].speedup
            for p in (2, 4, 8, 16, 32)
        }
        assert max(jax_valid, key=jax_valid.get) == 8
        omp_valid = {
            p: sweep[(Backend.OMP, p)].speedup for p in (1, 2, 4, 8, 16, 32)
        }
        assert max(omp_valid, key=omp_valid.get) == 8


class TestFullBenchmark:
    def test_fig5_speedups(self):
        times = full_benchmark_runtimes()
        assert np.isclose(times[Backend.CPU] / times[Backend.JAX], 2.28)
        assert np.isclose(times[Backend.CPU] / times[Backend.OMP], 2.58)
        assert times[Backend.OMP] < times[Backend.JAX] < times[Backend.CPU]
        assert times[Backend.JAX_CPU_BACKEND] > times[Backend.CPU]

    def test_omp_within_20_percent_of_jax(self):
        # Conclusion: JAX "is within 20% of OpenMP Target Offload's
        # efficiency".
        ratio = FULL_BENCHMARK["omp_speedup"] / FULL_BENCHMARK["jax_speedup"]
        assert 1.05 < ratio < 1.25


class TestPerKernelTable:
    def test_cpu_rows(self):
        t = per_kernel_times(Backend.CPU)
        assert t["stokes_weights_IQU"] == 90.0
        assert "accel_data_update_device" not in t

    def test_gpu_rows_include_data_movement(self):
        for b in (Backend.JAX, Backend.OMP):
            t = per_kernel_times(b)
            assert "accel_data_update_device" in t
            assert "accel_data_reset" in t

    def test_jax_cheaper_data_movement(self):
        # §4.2: "JAX spends significantly less time updating device data
        # ... and resetting device buffers".
        tj = per_kernel_times(Backend.JAX)
        to = per_kernel_times(Backend.OMP)
        assert tj["accel_data_update_device"] < to["accel_data_update_device"]
        assert tj["accel_data_reset"] < to["accel_data_reset"]

    def test_data_movement_small(self):
        # "most of the data operations barely register on the plot".
        for b in (Backend.JAX, Backend.OMP):
            t = per_kernel_times(b)
            movement = sum(v for k, v in t.items() if k.startswith("accel_data"))
            kernels = sum(v for k, v in t.items() if not k.startswith("accel_data"))
            assert movement < 0.5 * kernels

    def test_kernel_ordering_preserved(self):
        # The most expensive CPU kernels benefit most (§4.2's narrative).
        tc = per_kernel_times(Backend.CPU)
        tj = per_kernel_times(Backend.JAX)
        assert tj["template_offset_project_signal"] < tj["template_offset_add_to_signal"]
        assert tc["template_offset_project_signal"] > tc["template_offset_add_to_signal"]

    def test_bad_backend(self):
        with pytest.raises(ValueError):
            per_kernel_times(Backend.JAX_CPU_BACKEND)


class TestEnergyModel:
    def test_gpu_runs_less_total_energy(self):
        # Paper intro: GPUs lower energy consumption -- despite higher
        # node power, the faster run wins on joules.
        from repro.perfmodel import Backend, full_benchmark_energy

        energy = full_benchmark_energy()
        assert energy[Backend.OMP] < energy[Backend.CPU]
        assert energy[Backend.JAX] < energy[Backend.CPU]
        assert energy[Backend.OMP] < energy[Backend.JAX]

    def test_energy_scales_with_time(self):
        from repro.perfmodel import Backend, energy_per_run

        assert energy_per_run(Backend.CPU, 2.0) == 2 * energy_per_run(Backend.CPU, 1.0)

    def test_gpu_active_power_higher(self):
        from repro.perfmodel import NodePower

        p = NodePower()
        assert p.node_watts(1.0) > p.node_watts(0.15) > p.node_watts(0.0)
        with pytest.raises(ValueError):
            p.node_watts(1.5)

    def test_bad_args(self):
        from repro.perfmodel import Backend, NodePower, energy_per_run

        with pytest.raises(ValueError):
            NodePower(cpu_w=-1)
        with pytest.raises(ValueError):
            NodePower(gpu_idle_w=500.0, gpu_active_w=400.0)
        with pytest.raises(ValueError):
            energy_per_run(Backend.CPU, -1.0)

    def test_energy_ratio_bounded_by_speedup(self):
        # The energy win is smaller than the speedup (GPUs draw more).
        from repro.perfmodel import Backend, full_benchmark_energy

        energy = full_benchmark_energy()
        ratio = energy[Backend.CPU] / energy[Backend.OMP]
        assert 1.0 < ratio < 2.58
