"""stokes_weights_I, vectorized CPU implementation."""

from ...core.dispatch import ImplementationType, kernel


@kernel("stokes_weights_I", ImplementationType.NUMPY)
def stokes_weights_I(
    weights_out,
    cal,
    starts,
    stops,
    accel=None,
    use_accel=False,
):
    for start, stop in zip(starts, stops):
        weights_out[:, start:stop] = cal
