"""stokes_weights_I, batched CPU implementation."""

from ...core.dispatch import ImplementationType, kernel
from ..common import flatten_intervals


@kernel("stokes_weights_I", ImplementationType.NUMPY)
def stokes_weights_I(
    weights_out,
    cal,
    starts,
    stops,
    accel=None,
    use_accel=False,
):
    flat = flatten_intervals(starts, stops)
    if flat.size == 0:
        return
    weights_out[:, flat] = cal
