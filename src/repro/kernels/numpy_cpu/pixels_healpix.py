"""pixels_healpix, batched CPU implementation.

The branch-heavy kernel the paper singles out (§4.2): here the branches
become one masked write over the ``(n_det, n_flat)`` working set.
"""

import numpy as np

from ...core.dispatch import ImplementationType, kernel
from ...healpix import ang2pix
from ...math import qa
from ..common import flatten_intervals


@kernel("pixels_healpix", ImplementationType.NUMPY)
def pixels_healpix(
    quats,
    pixels_out,
    nside,
    nest,
    starts,
    stops,
    shared_flags=None,
    mask=0,
    accel=None,
    use_accel=False,
):
    flat = flatten_intervals(starts, stops)
    if flat.size == 0:
        return
    theta, phi = qa.to_position(quats[:, flat])
    pix = ang2pix(nside, theta, phi, nest=nest)
    if shared_flags is not None and mask:
        flagged = (shared_flags[flat] & mask) != 0
        pix = np.where(flagged[None, :], np.int64(-1), pix)
    pixels_out[:, flat] = pix
