"""pixels_healpix, vectorized CPU implementation."""

import numpy as np

from ...core.dispatch import ImplementationType, kernel
from ...healpix import ang2pix
from ...math import qa


@kernel("pixels_healpix", ImplementationType.NUMPY)
def pixels_healpix(
    quats,
    pixels_out,
    nside,
    nest,
    starts,
    stops,
    shared_flags=None,
    mask=0,
    accel=None,
    use_accel=False,
):
    n_det = quats.shape[0]
    for idet in range(n_det):
        for start, stop in zip(starts, stops):
            theta, phi = qa.to_position(quats[idet, start:stop])
            pix = ang2pix(nside, theta, phi, nest=nest)
            if shared_flags is not None and mask:
                flagged = (shared_flags[start:stop] & mask) != 0
                pix = np.where(flagged, np.int64(-1), pix)
            pixels_out[idet, start:stop] = pix
