"""scan_map, batched CPU implementation.

Row-gathers the map at every (detector, sample) pixel in one pass.  The
Stokes contraction accumulates component by component in the reference
order, and flagged lanes are excluded with ``where=`` so untouched samples
keep their exact bits.
"""

import numpy as np

from ...core.dispatch import ImplementationType, kernel
from ..common import flatten_intervals


@kernel("scan_map", ImplementationType.NUMPY)
def scan_map(
    map_data,
    pixels,
    weights,
    tod,
    starts,
    stops,
    data_scale=1.0,
    should_zero=False,
    should_subtract=False,
    accel=None,
    use_accel=False,
):
    flat = flatten_intervals(starts, stops)
    if flat.size == 0:
        return
    nnz = map_data.shape[1]
    pix = pixels[:, flat]
    good = pix >= 0
    if not good.any():
        # Every in-interval sample is invalid: no map gather to do.  The
        # zeroing side effect still applies to in-interval lanes.
        if should_zero:
            tod[:, flat] = 0.0
        return
    safe = np.where(good, pix, 0)
    gathered = map_data[safe]
    w = weights[:, flat]
    sampled = np.zeros(pix.shape, dtype=np.float64)
    for k in range(nnz):
        sampled += gathered[..., k] * w[..., k]
    value = sampled * data_scale

    out = tod[:, flat]
    if should_zero:
        out[...] = 0.0
    if should_subtract:
        np.subtract(out, value, out=out, where=good)
    else:
        np.add(out, value, out=out, where=good)
    tod[:, flat] = out
