"""scan_map, vectorized CPU implementation."""

import numpy as np

from ...core.dispatch import ImplementationType, kernel


@kernel("scan_map", ImplementationType.NUMPY)
def scan_map(
    map_data,
    pixels,
    weights,
    tod,
    starts,
    stops,
    data_scale=1.0,
    should_zero=False,
    should_subtract=False,
    accel=None,
    use_accel=False,
):
    n_det = pixels.shape[0]
    for idet in range(n_det):
        for start, stop in zip(starts, stops):
            pix = pixels[idet, start:stop]
            good = pix >= 0
            safe = np.where(good, pix, 0)
            # Row-gather then contract against the Stokes weights.
            sampled = np.einsum(
                "sk,sk->s", map_data[safe], weights[idet, start:stop]
            )
            value = np.where(good, sampled, 0.0) * data_scale
            if should_zero:
                tod[idet, start:stop] = 0.0
            if should_subtract:
                tod[idet, start:stop] -= value
            else:
                tod[idet, start:stop] += value
