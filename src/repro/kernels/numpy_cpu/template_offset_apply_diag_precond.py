"""template_offset_apply_diag_precond, vectorized CPU implementation."""

import numpy as np

from ...core.dispatch import ImplementationType, kernel


@kernel("template_offset_apply_diag_precond", ImplementationType.NUMPY)
def template_offset_apply_diag_precond(
    offset_var,
    amp_in,
    amp_out,
    accel=None,
    use_accel=False,
):
    np.multiply(amp_in, offset_var, out=amp_out)
