"""stokes_weights_IQU, vectorized CPU implementation."""

import numpy as np

from ...core.dispatch import ImplementationType, kernel
from ...math import qa


@kernel("stokes_weights_IQU", ImplementationType.NUMPY)
def stokes_weights_IQU(
    quats,
    weights_out,
    hwp_angle,
    epsilon,
    cal,
    starts,
    stops,
    accel=None,
    use_accel=False,
):
    n_det = quats.shape[0]
    eta = (1.0 - epsilon) / (1.0 + epsilon)
    for idet in range(n_det):
        for start, stop in zip(starts, stops):
            _, _, pa = qa.to_angles(quats[idet, start:stop])
            angle = pa
            if hwp_angle is not None:
                angle = angle + 2.0 * hwp_angle[start:stop]
            weights_out[idet, start:stop, 0] = cal
            weights_out[idet, start:stop, 1] = cal * eta[idet] * np.cos(2.0 * angle)
            weights_out[idet, start:stop, 2] = cal * eta[idet] * np.sin(2.0 * angle)
