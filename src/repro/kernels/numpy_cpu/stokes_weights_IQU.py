"""stokes_weights_IQU, batched CPU implementation.

Position angles for all detectors and in-interval samples are recovered in
one elementwise pass; the I/Q/U weight products keep the reference's
left-to-right multiplication order so results match bitwise.
"""

import numpy as np

from ...core.dispatch import ImplementationType, kernel
from ...math import qa
from ..common import flatten_intervals


@kernel("stokes_weights_IQU", ImplementationType.NUMPY)
def stokes_weights_IQU(
    quats,
    weights_out,
    hwp_angle,
    epsilon,
    cal,
    starts,
    stops,
    accel=None,
    use_accel=False,
):
    flat = flatten_intervals(starts, stops)
    if flat.size == 0:
        return
    eta = (1.0 - epsilon) / (1.0 + epsilon)
    _, _, pa = qa.to_angles(quats[:, flat])
    angle = pa
    if hwp_angle is not None:
        angle = angle + 2.0 * hwp_angle[flat]
    weights_out[:, flat, 0] = cal
    weights_out[:, flat, 1] = cal * eta[:, None] * np.cos(2.0 * angle)
    weights_out[:, flat, 2] = cal * eta[:, None] * np.sin(2.0 * angle)
