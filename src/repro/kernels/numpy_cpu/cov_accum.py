"""cov_accum_diag_hits / cov_accum_diag_invnpp, vectorized CPU."""

import numpy as np

from ...core.dispatch import ImplementationType, kernel


@kernel("cov_accum_diag_hits", ImplementationType.NUMPY)
def cov_accum_diag_hits(
    hits,
    pixels,
    starts,
    stops,
    accel=None,
    use_accel=False,
):
    n_det = pixels.shape[0]
    for idet in range(n_det):
        for start, stop in zip(starts, stops):
            pix = pixels[idet, start:stop]
            good = pix >= 0
            np.add.at(hits, pix[good], 1)


@kernel("cov_accum_diag_invnpp", ImplementationType.NUMPY)
def cov_accum_diag_invnpp(
    invnpp,
    pixels,
    weights,
    det_scale,
    starts,
    stops,
    accel=None,
    use_accel=False,
):
    n_det = pixels.shape[0]
    nnz = weights.shape[2]
    tri = [(i, j) for i in range(nnz) for j in range(i, nnz)]
    for idet in range(n_det):
        g = det_scale[idet]
        for start, stop in zip(starts, stops):
            pix = pixels[idet, start:stop]
            good = pix >= 0
            w = weights[idet, start:stop][good]
            p = pix[good]
            # Outer-product upper triangle, accumulated per pixel.
            outer = np.stack([g * w[:, i] * w[:, j] for i, j in tri], axis=1)
            np.add.at(invnpp, p, outer)
