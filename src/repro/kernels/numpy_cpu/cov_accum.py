"""cov_accum_diag_hits / cov_accum_diag_invnpp, batched CPU.

Both accumulate with a single filtered ``np.add.at`` in detector-major,
sample order (the reference order); the invnpp outer-product triangle
keeps the reference's ``(g * w_i) * w_j`` multiplication order.
"""

import numpy as np

from ...core.dispatch import ImplementationType, kernel
from ..common import flatten_intervals


@kernel("cov_accum_diag_hits", ImplementationType.NUMPY)
def cov_accum_diag_hits(
    hits,
    pixels,
    starts,
    stops,
    accel=None,
    use_accel=False,
):
    flat = flatten_intervals(starts, stops)
    if flat.size == 0:
        return
    pix = pixels[:, flat]
    good = pix >= 0
    if not good.any():
        return
    np.add.at(hits, pix[good], 1)


@kernel("cov_accum_diag_invnpp", ImplementationType.NUMPY)
def cov_accum_diag_invnpp(
    invnpp,
    pixels,
    weights,
    det_scale,
    starts,
    stops,
    accel=None,
    use_accel=False,
):
    flat = flatten_intervals(starts, stops)
    if flat.size == 0:
        return
    nnz = weights.shape[2]
    tri = [(i, j) for i in range(nnz) for j in range(i, nnz)]
    pix = pixels[:, flat]
    good = pix >= 0
    if not good.any():
        return
    # Build the outer-product triangle only for surviving lanes; nonzero's
    # row-major order keeps the reference's detector-major scatter order.
    det_idx, lane_idx = np.nonzero(good)
    w = weights[det_idx, flat[lane_idx]]
    g = det_scale[det_idx]
    outer = np.stack([g * w[:, i] * w[:, j] for i, j in tri], axis=-1)
    np.add.at(invnpp, pix[det_idx, lane_idx], outer)
