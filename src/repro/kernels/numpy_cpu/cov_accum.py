"""cov_accum_diag_hits / cov_accum_diag_invnpp, batched CPU.

Both accumulate with a single filtered ``np.add.at`` in detector-major,
sample order (the reference order); the invnpp outer-product triangle
keeps the reference's ``(g * w_i) * w_j`` multiplication order.
"""

import numpy as np

from ...core.dispatch import ImplementationType, kernel
from ..common import flatten_intervals


@kernel("cov_accum_diag_hits", ImplementationType.NUMPY)
def cov_accum_diag_hits(
    hits,
    pixels,
    starts,
    stops,
    accel=None,
    use_accel=False,
):
    flat = flatten_intervals(starts, stops)
    if flat.size == 0:
        return
    pix = pixels[:, flat]
    good = pix >= 0
    np.add.at(hits, pix[good], 1)


@kernel("cov_accum_diag_invnpp", ImplementationType.NUMPY)
def cov_accum_diag_invnpp(
    invnpp,
    pixels,
    weights,
    det_scale,
    starts,
    stops,
    accel=None,
    use_accel=False,
):
    flat = flatten_intervals(starts, stops)
    if flat.size == 0:
        return
    nnz = weights.shape[2]
    tri = [(i, j) for i in range(nnz) for j in range(i, nnz)]
    pix = pixels[:, flat]
    good = pix >= 0
    w = weights[:, flat]
    g = det_scale[:, None]
    outer = np.stack([g * w[..., i] * w[..., j] for i, j in tri], axis=-1)
    np.add.at(invnpp, pix[good], outer[good])
