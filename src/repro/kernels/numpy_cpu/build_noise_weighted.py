"""build_noise_weighted, vectorized CPU implementation.

The scatter-accumulation uses ``np.add.at`` (unbuffered) so duplicate
pixels within one interval accumulate correctly, as the atomic adds of the
compiled kernel do.
"""

import numpy as np

from ...core.dispatch import ImplementationType, kernel


@kernel("build_noise_weighted", ImplementationType.NUMPY)
def build_noise_weighted(
    zmap,
    pixels,
    weights,
    tod,
    det_scale,
    starts,
    stops,
    shared_flags=None,
    mask=0,
    det_flags=None,
    det_mask=0,
    accel=None,
    use_accel=False,
):
    n_det = pixels.shape[0]
    for idet in range(n_det):
        scale = det_scale[idet]
        for start, stop in zip(starts, stops):
            pix = pixels[idet, start:stop]
            good = pix >= 0
            if shared_flags is not None and mask:
                good = good & ((shared_flags[start:stop] & mask) == 0)
            if det_flags is not None and det_mask:
                good = good & ((det_flags[idet, start:stop] & det_mask) == 0)
            z = scale * tod[idet, start:stop]
            contrib = z[:, None] * weights[idet, start:stop]
            contrib = np.where(good[:, None], contrib, 0.0)
            np.add.at(zmap, np.where(good, pix, 0), contrib)
