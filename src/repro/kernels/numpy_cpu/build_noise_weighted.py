"""build_noise_weighted, batched CPU implementation.

One flattened scatter-accumulation: flagged and invalid samples are
filtered out (not zero-padded), and ``np.add.at`` applies the surviving
contributions in sample-major (detector inner) order -- exactly the order
the scalar reference visits, so duplicate-pixel accumulation is bitwise
identical to it, and windowed streaming over the sample axis reproduces the
full-observation sum for any window size.
"""

import numpy as np

from ...core.dispatch import ImplementationType, kernel
from ..common import flatten_intervals


@kernel("build_noise_weighted", ImplementationType.NUMPY)
def build_noise_weighted(
    zmap,
    pixels,
    weights,
    tod,
    det_scale,
    starts,
    stops,
    shared_flags=None,
    mask=0,
    det_flags=None,
    det_mask=0,
    accel=None,
    use_accel=False,
):
    flat = flatten_intervals(starts, stops)
    if flat.size == 0:
        return
    pix = pixels[:, flat]
    good = pix >= 0
    if shared_flags is not None and mask:
        good &= ((shared_flags[flat] & mask) == 0)[None, :]
    if det_flags is not None and det_mask:
        good &= (det_flags[:, flat] & det_mask) == 0
    if not good.any():
        # Fully flag-masked: no scatter work to build.
        return
    # Compress to the surviving lanes before computing contributions --
    # transposing before np.nonzero enumerates lanes sample-major
    # (detector inner), preserving the canonical scatter order.
    lane_idx, det_idx = np.nonzero(good.T)
    samp = flat[lane_idx]
    z = det_scale[det_idx] * tod[det_idx, samp]
    contrib = z[:, None] * weights[det_idx, samp]
    np.add.at(zmap, pix[det_idx, lane_idx], contrib)
