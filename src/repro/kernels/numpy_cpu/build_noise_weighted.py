"""build_noise_weighted, batched CPU implementation.

One flattened scatter-accumulation: flagged and invalid samples are
filtered out (not zero-padded), and ``np.add.at`` applies the surviving
contributions in detector-major, sample order -- exactly the order the
scalar reference visits, so duplicate-pixel accumulation is bitwise
identical to it.
"""

import numpy as np

from ...core.dispatch import ImplementationType, kernel
from ..common import flatten_intervals


@kernel("build_noise_weighted", ImplementationType.NUMPY)
def build_noise_weighted(
    zmap,
    pixels,
    weights,
    tod,
    det_scale,
    starts,
    stops,
    shared_flags=None,
    mask=0,
    det_flags=None,
    det_mask=0,
    accel=None,
    use_accel=False,
):
    flat = flatten_intervals(starts, stops)
    if flat.size == 0:
        return
    pix = pixels[:, flat]
    good = pix >= 0
    if shared_flags is not None and mask:
        good &= ((shared_flags[flat] & mask) == 0)[None, :]
    if det_flags is not None and det_mask:
        good &= (det_flags[:, flat] & det_mask) == 0
    z = det_scale[:, None] * tod[:, flat]
    contrib = z[..., None] * weights[:, flat]
    np.add.at(zmap, pix[good], contrib[good])
