"""pointing_detector, batched CPU implementation.

One quaternion multiply over the full ``(n_det, n_flat)`` working set; the
quaternion algebra is elementwise, so batching keeps results bitwise
identical to the per-sample reference.
"""

import numpy as np

from ...core.dispatch import ImplementationType, kernel
from ...math import qa
from ..common import flatten_intervals


@kernel("pointing_detector", ImplementationType.NUMPY)
def pointing_detector(
    fp_quats,
    boresight,
    quats_out,
    starts,
    stops,
    shared_flags=None,
    mask=0,
    accel=None,
    use_accel=False,
):
    flat = flatten_intervals(starts, stops)
    if flat.size == 0:
        return
    rotated = qa.mult(boresight[flat][None, :, :], fp_quats[:, None, :])
    if shared_flags is not None and mask:
        flagged = (shared_flags[flat] & mask) != 0
        rotated = np.where(flagged[None, :, None], fp_quats[:, None, :], rotated)
    quats_out[:, flat] = rotated
