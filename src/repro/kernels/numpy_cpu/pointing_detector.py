"""pointing_detector, vectorized CPU implementation."""

import numpy as np

from ...core.dispatch import ImplementationType, kernel
from ...math import qa


@kernel("pointing_detector", ImplementationType.NUMPY)
def pointing_detector(
    fp_quats,
    boresight,
    quats_out,
    starts,
    stops,
    shared_flags=None,
    mask=0,
    accel=None,
    use_accel=False,
):
    n_det = fp_quats.shape[0]
    for idet in range(n_det):
        fp = fp_quats[idet]
        for start, stop in zip(starts, stops):
            rotated = qa.mult(boresight[start:stop], fp)
            if shared_flags is not None and mask:
                flagged = (shared_flags[start:stop] & mask) != 0
                rotated = np.where(flagged[:, None], fp, rotated)
            quats_out[idet, start:stop] = rotated
