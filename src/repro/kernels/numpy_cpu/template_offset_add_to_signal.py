"""template_offset_add_to_signal, vectorized CPU implementation."""

import numpy as np

from ...core.dispatch import ImplementationType, kernel


@kernel("template_offset_add_to_signal", ImplementationType.NUMPY)
def template_offset_add_to_signal(
    step_length,
    amplitudes,
    amp_offsets,
    tod,
    starts,
    stops,
    accel=None,
    use_accel=False,
):
    n_det = tod.shape[0]
    for idet in range(n_det):
        offset = amp_offsets[idet]
        for start, stop in zip(starts, stops):
            samples = np.arange(start, stop, dtype=np.int64)
            amp = offset + samples // step_length
            tod[idet, start:stop] += amplitudes[amp]
