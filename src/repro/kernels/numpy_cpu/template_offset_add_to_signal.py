"""template_offset_add_to_signal, batched CPU implementation."""

from ...core.dispatch import ImplementationType, kernel
from ..common import flatten_intervals


@kernel("template_offset_add_to_signal", ImplementationType.NUMPY)
def template_offset_add_to_signal(
    step_length,
    amplitudes,
    amp_offsets,
    tod,
    starts,
    stops,
    accel=None,
    use_accel=False,
):
    flat = flatten_intervals(starts, stops)
    if flat.size == 0:
        return
    amp = amp_offsets[:, None] + flat[None, :] // step_length
    tod[:, flat] += amplitudes[amp]
