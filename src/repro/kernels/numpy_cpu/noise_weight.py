"""noise_weight, vectorized CPU implementation."""

from ...core.dispatch import ImplementationType, kernel


@kernel("noise_weight", ImplementationType.NUMPY)
def noise_weight(
    tod,
    det_weights,
    starts,
    stops,
    accel=None,
    use_accel=False,
):
    for start, stop in zip(starts, stops):
        tod[:, start:stop] *= det_weights[:, None]
