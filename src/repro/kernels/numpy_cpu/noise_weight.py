"""noise_weight, batched CPU implementation."""

from ...core.dispatch import ImplementationType, kernel
from ..common import flatten_intervals


@kernel("noise_weight", ImplementationType.NUMPY)
def noise_weight(
    tod,
    det_weights,
    starts,
    stops,
    accel=None,
    use_accel=False,
):
    flat = flatten_intervals(starts, stops)
    if flat.size == 0:
        return
    tod[:, flat] *= det_weights[:, None]
