"""Vectorized NumPy implementations: the "compiled CPU" baseline.

These stand in for the original OpenMP-parallel C++ kernels: the sample
loop is vectorized (SIMD-like), detectors and intervals remain explicit
loops (thread-like).  They define the performance and correctness baseline
every ported implementation is compared against.
"""

from . import (  # noqa: F401  (registration side effects)
    pointing_detector,
    stokes_weights_I,
    stokes_weights_IQU,
    pixels_healpix,
    scan_map,
    noise_weight,
    build_noise_weighted,
    template_offset_add_to_signal,
    template_offset_project_signal,
    template_offset_apply_diag_precond,
    cov_accum,
)
