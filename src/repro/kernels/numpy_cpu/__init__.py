"""Vectorized NumPy implementations: the "compiled CPU" baseline.

These stand in for the original OpenMP-parallel C++ kernels.  Every kernel
is one batched NumPy pass over the ``(n_det, n_flat_samples)`` working set
produced by :func:`repro.kernels.common.flatten_intervals`: the sample,
interval, *and* detector loops are all vectorized, and scatter
accumulations run in the same detector-major order as the scalar reference
loops, so results stay bitwise identical to the ``python`` oracle.  They
define the performance and correctness baseline every ported
implementation is compared against.
"""

from . import (  # noqa: F401  (registration side effects)
    pointing_detector,
    stokes_weights_I,
    stokes_weights_IQU,
    pixels_healpix,
    scan_map,
    noise_weight,
    build_noise_weighted,
    template_offset_add_to_signal,
    template_offset_project_signal,
    template_offset_apply_diag_precond,
    cov_accum,
)
