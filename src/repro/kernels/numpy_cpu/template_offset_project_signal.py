"""template_offset_project_signal, vectorized CPU implementation."""

import numpy as np

from ...core.dispatch import ImplementationType, kernel


@kernel("template_offset_project_signal", ImplementationType.NUMPY)
def template_offset_project_signal(
    step_length,
    tod,
    amplitudes,
    amp_offsets,
    starts,
    stops,
    accel=None,
    use_accel=False,
):
    n_det = tod.shape[0]
    for idet in range(n_det):
        offset = amp_offsets[idet]
        for start, stop in zip(starts, stops):
            samples = np.arange(start, stop, dtype=np.int64)
            amp = offset + samples // step_length
            np.add.at(amplitudes, amp, tod[idet, start:stop])
