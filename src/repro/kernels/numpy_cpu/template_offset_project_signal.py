"""template_offset_project_signal, batched CPU implementation.

The transpose of add_to_signal as one ordered scatter: ``np.add.at``
accumulates detector-major, sample order -- the reference loop order -- so
the blocked dot products agree bitwise.
"""

import numpy as np

from ...core.dispatch import ImplementationType, kernel
from ..common import flatten_intervals


@kernel("template_offset_project_signal", ImplementationType.NUMPY)
def template_offset_project_signal(
    step_length,
    tod,
    amplitudes,
    amp_offsets,
    starts,
    stops,
    accel=None,
    use_accel=False,
):
    flat = flatten_intervals(starts, stops)
    if flat.size == 0:
        return
    amp = amp_offsets[:, None] + flat[None, :] // step_length
    np.add.at(amplitudes, amp, tod[:, flat])
