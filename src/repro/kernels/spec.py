"""Declarative kernel contracts (the single source of truth per kernel).

The paper's dispatch system (§3.2.1) keeps four interchangeable
implementations per kernel; its pipelines (§3.2.2) stage data to the
device from hand-maintained operator traits.  Both need the same
information -- what arguments a kernel takes, which are read and which
are written, and what kind of data each one is.  A :class:`KernelSpec`
states that once, declaratively, and everything else derives from it:

* ``KernelRegistry.register`` validates every backend implementation's
  signature (argument names and order) against the spec, so the four
  backends cannot drift apart;
* operators derive their accel ``requires``/``provides`` traits from the
  spec args they bind to observation keys;
* pipelines derive staging sets (what to h2d before a stage, what to
  mark dirty for d2h after) from argument :class:`Intent`;
* the microbenchmark and parity suites iterate the registry, so a kernel
  registered without a spec or without coverage fails loudly;
* ``get_kernel`` returns a ``BoundKernel`` that can check dtypes/shapes
  against the spec (off by default -- hot paths pay nothing) and
  attribute bytes-moved metrics from intents.

This module depends only on the standard library and numpy so it can be
imported from anywhere (dispatch, operators, tests) without cycles.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Intent", "ArgRole", "ArgSpec", "KernelSpec"]


class Intent(Enum):
    """Whether a kernel argument is read, written, or both.

    Intents drive data movement: ``IN``/``INOUT`` args must be valid on
    the device before launch (h2d), ``OUT``/``INOUT`` args are dirty on
    the device afterwards (d2h at the next sync point).
    """

    IN = "in"
    OUT = "out"
    INOUT = "inout"

    @property
    def reads(self) -> bool:
        return self is not Intent.OUT

    @property
    def writes(self) -> bool:
        return self is not Intent.IN


class ArgRole(Enum):
    """What kind of data an argument carries.

    The role decides which observation category a bound key belongs to
    (``detdata``/``shared``/``global`` -> pipeline ``meta``) and which
    args are plain scalars or framework-internal arrays.
    """

    #: Per-detector timestream data, shape leading with ``n_det``.
    DETDATA = "detdata"
    #: Telescope-wide data shared by all detectors (boresight, flags).
    SHARED = "shared"
    #: Cross-observation global products (maps, hit counts, amplitudes).
    GLOBAL = "global"
    #: Static focalplane properties (detector quats, weights, epsilon).
    FOCALPLANE = "focalplane"
    #: Interval sample ranges (``starts``/``stops`` index arrays).
    INTERVALS = "intervals"
    #: A plain scalar parameter (mask bits, calibration factor, flags).
    SCALAR = "scalar"
    #: Derived index/metadata arrays computed by the calling operator
    #: (e.g. per-detector amplitude offsets), staged by the caller.
    DERIVED = "derived"


#: Roles whose values are numpy arrays (everything but plain scalars).
_ARRAY_ROLES = frozenset(
    {
        ArgRole.DETDATA,
        ArgRole.SHARED,
        ArgRole.GLOBAL,
        ArgRole.FOCALPLANE,
        ArgRole.INTERVALS,
        ArgRole.DERIVED,
    }
)

#: Trailing parameters every kernel implementation must accept.
RESERVED_PARAMS = ("accel", "use_accel")

#: Valid :attr:`ArgSpec.batch` values: how a megabatch (observation-
#: stacked) launch treats the argument.  ``"stack"`` args gain a leading
#: ``n_obs`` axis (per-observation data); ``"broadcast"`` args are passed
#: once, shared by every stacked observation (scalars, and GLOBAL
#: accumulators the stacked kernel updates in observation order).
BATCH_AXES = frozenset({"stack", "broadcast"})

#: Role-derived default batch axis: per-observation data stacks, global
#: products and scalars broadcast.
_DEFAULT_BATCH = {
    ArgRole.DETDATA: "stack",
    ArgRole.SHARED: "stack",
    ArgRole.FOCALPLANE: "stack",
    ArgRole.INTERVALS: "stack",
    ArgRole.DERIVED: "stack",
    ArgRole.GLOBAL: "broadcast",
    ArgRole.SCALAR: "broadcast",
}

#: Valid :attr:`KernelSpec.fusion_kind` values.
FUSION_KINDS = frozenset({"elementwise", "gather", "scatter", "reduction", "opaque"})

#: Kinds safe to merge into one fused launch: per-lane output depends only
#: on per-lane (or gathered, read-only) inputs, so back-to-back kernels
#: over the same iteration space compose without a grid-wide barrier.
_FUSIBLE_KINDS = frozenset({"elementwise", "gather"})


@dataclass(frozen=True)
class ArgSpec:
    """One kernel argument: name, direction, role, and optional typing.

    ``dtype`` is any numpy dtype-like; ``shape`` is a tuple mixing ints
    (exact sizes) and strings (symbolic dims such as ``"n_det"`` that
    must agree across all args of one call).  ``rank`` defaults to
    ``len(shape)`` when a shape is given.
    """

    name: str
    intent: Intent = Intent.IN
    role: ArgRole = ArgRole.SCALAR
    dtype: Optional[Any] = None
    shape: Optional[Tuple[Any, ...]] = None
    rank: Optional[int] = None
    optional: bool = False
    #: How a megabatch launch treats the argument: ``"stack"`` (leading
    #: ``n_obs`` axis) or ``"broadcast"`` (shared across the group).
    #: ``None`` derives the axis from the role (see ``_DEFAULT_BATCH``).
    batch: Optional[str] = None

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name.isidentifier():
            raise ValueError(f"argument name must be an identifier, got {self.name!r}")
        if self.name in RESERVED_PARAMS:
            raise ValueError(
                f"argument name {self.name!r} is reserved; every kernel gets "
                f"trailing {RESERVED_PARAMS} parameters implicitly"
            )
        if not isinstance(self.intent, Intent):
            raise TypeError(
                f"argument {self.name!r}: intent must be an Intent, got "
                f"{self.intent!r} (use Intent.IN / Intent.OUT / Intent.INOUT)"
            )
        if not isinstance(self.role, ArgRole):
            raise TypeError(
                f"argument {self.name!r}: role must be an ArgRole, got {self.role!r}"
            )
        if self.intent.writes and not self.is_array:
            raise ValueError(
                f"argument {self.name!r}: intent {self.intent.value!r} requires an "
                f"array role (a {self.role.value} argument cannot be written in place)"
            )
        if self.shape is not None:
            if not isinstance(self.shape, tuple) or not all(
                isinstance(d, (int, str)) for d in self.shape
            ):
                raise TypeError(
                    f"argument {self.name!r}: shape must be a tuple of ints and "
                    f"dim-name strings, got {self.shape!r}"
                )
            if self.rank is None:
                object.__setattr__(self, "rank", len(self.shape))
            elif self.rank != len(self.shape):
                raise ValueError(
                    f"argument {self.name!r}: rank {self.rank} disagrees with "
                    f"shape {self.shape!r} (length {len(self.shape)})"
                )
        if self.dtype is not None:
            # Normalize eagerly so a bogus dtype fails at declaration time.
            object.__setattr__(self, "dtype", np.dtype(self.dtype))
        if (self.dtype is not None or self.shape is not None) and not self.is_array:
            raise ValueError(
                f"argument {self.name!r}: dtype/shape given but role "
                f"{self.role.value!r} is not an array role"
            )
        if self.batch is None:
            object.__setattr__(self, "batch", _DEFAULT_BATCH[self.role])
        elif self.batch not in BATCH_AXES:
            raise ValueError(
                f"argument {self.name!r}: batch must be one of "
                f"{sorted(BATCH_AXES)}, got {self.batch!r}"
            )
        if self.batch == "stack" and not self.is_array:
            raise ValueError(
                f"argument {self.name!r}: batch='stack' requires an array "
                f"role; a {self.role.value} argument can only broadcast"
            )

    @property
    def is_array(self) -> bool:
        return self.role in _ARRAY_ROLES


@dataclass(frozen=True)
class KernelSpec:
    """The declarative contract for one kernel name.

    ``interval_batched`` kernels take ``starts``/``stops`` interval
    arrays and only touch samples inside them.  ``fallback_eligible``
    controls whether dispatch may silently substitute the NUMPY
    implementation (and whether the resilience fallback chain may walk
    past the requested implementation).  ``parity=False`` excludes a
    kernel (e.g. synthetic test kernels) from the registry-driven parity
    and microbench sweeps; ``waive_impls`` lists implementations the
    kernel deliberately does not provide, consumed by the
    ``repro-bench kernels`` coverage check.
    """

    name: str
    args: Tuple[ArgSpec, ...]
    interval_batched: bool = True
    fallback_eligible: bool = True
    parity: bool = True
    waive_impls: Tuple[str, ...] = ()
    #: Whether a stacked (observation-leading) megabatch entry path is
    #: meaningful for this kernel.  When true, backends may register a
    #: megabatch implementation (same signature, ``"stack"`` args carry
    #: a leading ``n_obs`` axis, intervals arrive as ``(n_obs, n_ivl)``
    #: padded slabs) and the collector may group this kernel's
    #: per-observation calls into one launch.
    megabatch: bool = False
    #: Dataflow shape for the fusion pass: ``"elementwise"`` kernels map
    #: each output sample from the matching input sample, ``"gather"``
    #: reads at indexed locations, ``"scatter"`` writes at indexed
    #: locations (a fusion barrier: output order matters), ``"reduction"``
    #: collapses an axis, ``"opaque"`` promises nothing.
    fusion_kind: str = "opaque"
    doc: str = ""
    _by_name: Dict[str, ArgSpec] = field(
        init=False, repr=False, compare=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ValueError(f"kernel name must be a non-empty string, got {self.name!r}")
        if not isinstance(self.args, tuple):
            raise TypeError(
                f"kernel {self.name!r}: args must be a tuple of ArgSpec, "
                f"got {type(self.args).__name__}"
            )
        by_name: Dict[str, ArgSpec] = {}
        for a in self.args:
            if not isinstance(a, ArgSpec):
                raise TypeError(
                    f"kernel {self.name!r}: args must be ArgSpec instances, got {a!r}"
                )
            if a.name in by_name:
                raise ValueError(f"kernel {self.name!r}: duplicate argument {a.name!r}")
            by_name[a.name] = a
        if self.interval_batched:
            missing = [n for n in ("starts", "stops") if n not in by_name]
            if missing:
                raise ValueError(
                    f"kernel {self.name!r}: interval_batched requires "
                    f"{missing} interval arguments"
                )
        bad = [i for i in self.waive_impls if not isinstance(i, str)]
        if bad:
            raise TypeError(
                f"kernel {self.name!r}: waive_impls must be implementation "
                f"value strings, got {bad!r}"
            )
        if self.fusion_kind not in FUSION_KINDS:
            raise ValueError(
                f"kernel {self.name!r}: fusion_kind must be one of "
                f"{sorted(FUSION_KINDS)}, got {self.fusion_kind!r}"
            )
        if self.megabatch and not self.interval_batched:
            raise ValueError(
                f"kernel {self.name!r}: megabatch=True requires "
                f"interval_batched (stacking pads per-observation intervals)"
            )
        object.__setattr__(self, "_by_name", by_name)

    # -- introspection -------------------------------------------------------

    def arg_names(self) -> List[str]:
        return [a.name for a in self.args]

    def arg(self, name: str) -> ArgSpec:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"kernel {self.name!r} has no argument {name!r}; "
                f"arguments: {self.arg_names()}"
            ) from None

    def has_arg(self, name: str) -> bool:
        return name in self._by_name

    def array_args(self) -> List[ArgSpec]:
        return [a for a in self.args if a.is_array]

    def batch_axes(self) -> Dict[str, str]:
        """Per-argument megabatch treatment (``"stack"``/``"broadcast"``)."""
        return {a.name: a.batch for a in self.args}

    def stacked_names(self) -> List[str]:
        """Arguments that gain a leading ``n_obs`` axis when megabatched."""
        return [a.name for a in self.args if a.batch == "stack"]

    def broadcast_names(self) -> List[str]:
        """Arguments shared across a megabatch group (scalars, globals)."""
        return [a.name for a in self.args if a.batch == "broadcast"]

    def input_names(self) -> List[str]:
        """Arguments read by the kernel (``IN`` and ``INOUT``)."""
        return [a.name for a in self.args if a.intent.reads]

    def output_names(self) -> List[str]:
        """Arguments written by the kernel (``OUT`` and ``INOUT``)."""
        return [a.name for a in self.args if a.intent.writes]

    # -- liveness / fusibility queries (pipeline compiler) -------------------

    @property
    def fusible(self) -> bool:
        """Whether this kernel may join a fused launch group."""
        return self.fusion_kind in _FUSIBLE_KINDS

    def pure_outputs(self) -> List[str]:
        """Arguments written without being read (``OUT`` only).

        These are the residency planner's memset-elision candidates: the
        device never reads the staged bytes, so when the host copy is
        known-zero an on-device reset replaces the H2D transfer.
        """
        return [a.name for a in self.args if a.intent is Intent.OUT]

    def reads_arg(self, name: str) -> bool:
        return self.has_arg(name) and self.arg(name).intent.reads

    def writes_arg(self, name: str) -> bool:
        return self.has_arg(name) and self.arg(name).intent.writes

    # -- implementation validation ------------------------------------------

    def validate_impl(self, fn: Any, impl: str = "?") -> None:
        """Check ``fn``'s signature against this spec; raise on mismatch.

        Every implementation must take exactly the spec's arguments, in
        order, followed by ``accel=None, use_accel=False`` -- the shared
        calling convention that lets the four backends interchange.
        """
        try:
            sig = inspect.signature(fn)
        except (TypeError, ValueError) as e:
            raise ValueError(
                f"kernel {self.name!r} [{impl}]: cannot inspect signature of "
                f"{fn!r}: {e}"
            ) from None
        params = list(sig.parameters.values())
        bad_kinds = [
            p.name
            for p in params
            if p.kind
            not in (
                inspect.Parameter.POSITIONAL_OR_KEYWORD,
                inspect.Parameter.POSITIONAL_ONLY,
            )
        ]
        if bad_kinds:
            raise ValueError(
                f"kernel {self.name!r} [{impl}]: *args/**kwargs/keyword-only "
                f"parameters {bad_kinds} are not allowed; spell out the spec "
                f"arguments so dispatch can validate them"
            )
        expected = self.arg_names() + list(RESERVED_PARAMS)
        got = [p.name for p in params]
        if got != expected:
            raise ValueError(
                f"kernel {self.name!r} [{impl}]: signature {got} does not match "
                f"its KernelSpec {expected} (same names, same order, ending "
                f"with {RESERVED_PARAMS})"
            )
        for reserved in RESERVED_PARAMS:
            if sig.parameters[reserved].default is inspect.Parameter.empty:
                raise ValueError(
                    f"kernel {self.name!r} [{impl}]: parameter {reserved!r} "
                    f"must have a default (accel=None, use_accel=False)"
                )

    # -- call validation -----------------------------------------------------

    def bind_call(self, args: Sequence[Any], kwargs: Mapping[str, Any]) -> Dict[str, Any]:
        """Map a call's positional + keyword values onto spec arg names."""
        names = self.arg_names()
        if len(args) > len(names):
            raise TypeError(
                f"kernel {self.name!r}: got {len(args)} positional arguments, "
                f"spec declares {len(names)}"
            )
        merged: Dict[str, Any] = dict(zip(names, args))
        for key, value in kwargs.items():
            if key in RESERVED_PARAMS:
                continue
            if key not in self._by_name:
                raise TypeError(
                    f"kernel {self.name!r}: unexpected argument {key!r}; "
                    f"arguments: {names}"
                )
            if key in merged:
                raise TypeError(f"kernel {self.name!r}: duplicate argument {key!r}")
            merged[key] = value
        return merged

    def validate_call(
        self, args: Sequence[Any] = (), kwargs: Optional[Mapping[str, Any]] = None
    ) -> Dict[str, int]:
        """Check dtypes/ranks/shape relations of one call against the spec.

        Returns the resolved symbolic dimension sizes (``n_det`` etc.).
        Raises ``TypeError`` for wrong kinds/dtypes and ``ValueError``
        for shape violations.  Arguments absent from the call (using the
        kernel's own defaults) are skipped.
        """
        merged = self.bind_call(args, kwargs or {})
        dims: Dict[str, int] = {}
        for a in self.args:
            if a.name not in merged:
                continue
            value = merged[a.name]
            if value is None:
                if a.optional or not a.is_array:
                    continue
                raise TypeError(
                    f"kernel {self.name!r}: argument {a.name!r} is required "
                    f"(got None)"
                )
            if not a.is_array:
                continue
            if not isinstance(value, np.ndarray):
                raise TypeError(
                    f"kernel {self.name!r}: argument {a.name!r} must be a "
                    f"numpy array, got {type(value).__name__}"
                )
            if a.dtype is not None and value.dtype != a.dtype:
                raise TypeError(
                    f"kernel {self.name!r}: argument {a.name!r} has dtype "
                    f"{value.dtype}, spec requires {a.dtype}"
                )
            if a.rank is not None and value.ndim != a.rank:
                raise ValueError(
                    f"kernel {self.name!r}: argument {a.name!r} has rank "
                    f"{value.ndim}, spec requires {a.rank} {a.shape or ''}"
                )
            if a.shape is not None:
                for axis, dim in enumerate(a.shape):
                    size = value.shape[axis]
                    if isinstance(dim, int):
                        if size != dim:
                            raise ValueError(
                                f"kernel {self.name!r}: argument {a.name!r} "
                                f"axis {axis} has size {size}, spec requires {dim}"
                            )
                    elif dim in dims:
                        if size != dims[dim]:
                            raise ValueError(
                                f"kernel {self.name!r}: argument {a.name!r} "
                                f"axis {axis} ({dim}) has size {size}, but "
                                f"{dim}={dims[dim]} elsewhere in this call"
                            )
                    else:
                        dims[dim] = size
        return dims

    # -- data-movement accounting -------------------------------------------

    def bytes_moved(
        self, args: Sequence[Any] = (), kwargs: Optional[Mapping[str, Any]] = None
    ) -> Tuple[int, int]:
        """(bytes read, bytes written) implied by one call's intents.

        Sums ``nbytes`` of array arguments by intent -- the per-kernel
        data-movement attribution the obs layer records.  INOUT counts
        on both sides.
        """
        try:
            merged = self.bind_call(args, kwargs or {})
        except TypeError:
            return 0, 0
        read = written = 0
        for a in self.args:
            value = merged.get(a.name)
            if not isinstance(value, np.ndarray):
                continue
            if a.intent.reads:
                read += value.nbytes
            if a.intent.writes:
                written += value.nbytes
        return read, written
