"""KernelSpec declarations for every kernel in the reproduction.

Imported by :mod:`repro.kernels` *before* the backend subpackages, so
that every ``@kernel`` registration is validated against its spec at
import time.  A new kernel starts here: declare its contract once, then
register the four implementations against it (see
``docs/porting_guide.md``).

Symbolic shape dims used below:

* ``n_det``   -- detectors in the observation
* ``n_samp``  -- samples per detector
* ``n_ivl``   -- intervals in the batch
* ``n_pix``   -- pixels in the (sub)map
* ``nnz``     -- non-zero Stokes weights per sample (3 for IQU)
* ``n_block`` -- packed upper-triangle block size (nnz*(nnz+1)/2)
* ``n_amp``   -- template amplitudes
"""

from __future__ import annotations

import numpy as np

from ..core.dispatch import kernel_registry
from .spec import ArgRole, ArgSpec, Intent, KernelSpec

__all__ = ["KERNEL_SPECS"]


def _intervals() -> tuple:
    return (
        ArgSpec("starts", Intent.IN, ArgRole.INTERVALS, np.int64, ("n_ivl",)),
        ArgSpec("stops", Intent.IN, ArgRole.INTERVALS, np.int64, ("n_ivl",)),
    )


KERNEL_SPECS = (
    KernelSpec(
        "pointing_detector",
        args=(
            ArgSpec("fp_quats", Intent.IN, ArgRole.FOCALPLANE, np.float64, ("n_det", 4)),
            ArgSpec("boresight", Intent.IN, ArgRole.SHARED, np.float64, ("n_samp", 4)),
            ArgSpec("quats_out", Intent.OUT, ArgRole.DETDATA, np.float64, ("n_det", "n_samp", 4)),
            *_intervals(),
            ArgSpec("shared_flags", Intent.IN, ArgRole.SHARED, np.uint8, ("n_samp",), optional=True),
            ArgSpec("mask", Intent.IN, ArgRole.SCALAR),
        ),
        megabatch=True,
        fusion_kind="elementwise",
        doc="Rotate focalplane detector quaternions by the boresight pointing.",
    ),
    KernelSpec(
        "stokes_weights_I",
        args=(
            ArgSpec("weights_out", Intent.OUT, ArgRole.DETDATA, np.float64, ("n_det", "n_samp")),
            ArgSpec("cal", Intent.IN, ArgRole.SCALAR),
            *_intervals(),
        ),
        megabatch=True,
        fusion_kind="elementwise",
        doc="Intensity-only Stokes weights (a calibrated constant).",
    ),
    KernelSpec(
        "stokes_weights_IQU",
        args=(
            ArgSpec("quats", Intent.IN, ArgRole.DETDATA, np.float64, ("n_det", "n_samp", 4)),
            ArgSpec("weights_out", Intent.OUT, ArgRole.DETDATA, np.float64, ("n_det", "n_samp", 3)),
            ArgSpec("hwp_angle", Intent.IN, ArgRole.SHARED, np.float64, ("n_samp",), optional=True),
            ArgSpec("epsilon", Intent.IN, ArgRole.FOCALPLANE, np.float64, ("n_det",)),
            ArgSpec("cal", Intent.IN, ArgRole.SCALAR),
            *_intervals(),
        ),
        megabatch=True,
        fusion_kind="elementwise",
        doc="I/Q/U Stokes weights from detector orientation and HWP angle.",
    ),
    KernelSpec(
        "pixels_healpix",
        args=(
            ArgSpec("quats", Intent.IN, ArgRole.DETDATA, np.float64, ("n_det", "n_samp", 4)),
            ArgSpec("pixels_out", Intent.OUT, ArgRole.DETDATA, np.int64, ("n_det", "n_samp")),
            ArgSpec("nside", Intent.IN, ArgRole.SCALAR),
            ArgSpec("nest", Intent.IN, ArgRole.SCALAR),
            *_intervals(),
            ArgSpec("shared_flags", Intent.IN, ArgRole.SHARED, np.uint8, ("n_samp",), optional=True),
            ArgSpec("mask", Intent.IN, ArgRole.SCALAR),
        ),
        megabatch=True,
        fusion_kind="elementwise",
        doc="HEALPix pixel indices from detector pointing quaternions.",
    ),
    KernelSpec(
        "scan_map",
        args=(
            ArgSpec("map_data", Intent.IN, ArgRole.GLOBAL, np.float64, ("n_pix", "nnz")),
            ArgSpec("pixels", Intent.IN, ArgRole.DETDATA, np.int64, ("n_det", "n_samp")),
            ArgSpec("weights", Intent.IN, ArgRole.DETDATA, np.float64, ("n_det", "n_samp", "nnz")),
            ArgSpec("tod", Intent.INOUT, ArgRole.DETDATA, np.float64, ("n_det", "n_samp")),
            *_intervals(),
            ArgSpec("data_scale", Intent.IN, ArgRole.SCALAR),
            ArgSpec("should_zero", Intent.IN, ArgRole.SCALAR),
            ArgSpec("should_subtract", Intent.IN, ArgRole.SCALAR),
        ),
        megabatch=True,
        fusion_kind="gather",
        doc="Scan a sky map into (or out of) detector timestreams.",
    ),
    KernelSpec(
        "noise_weight",
        args=(
            ArgSpec("tod", Intent.INOUT, ArgRole.DETDATA, np.float64, ("n_det", "n_samp")),
            ArgSpec("det_weights", Intent.IN, ArgRole.FOCALPLANE, np.float64, ("n_det",)),
            *_intervals(),
        ),
        megabatch=True,
        fusion_kind="elementwise",
        doc="Scale timestreams by per-detector inverse noise weights.",
    ),
    KernelSpec(
        "build_noise_weighted",
        args=(
            ArgSpec("zmap", Intent.INOUT, ArgRole.GLOBAL, np.float64, ("n_pix", "nnz")),
            ArgSpec("pixels", Intent.IN, ArgRole.DETDATA, np.int64, ("n_det", "n_samp")),
            ArgSpec("weights", Intent.IN, ArgRole.DETDATA, np.float64, ("n_det", "n_samp", "nnz")),
            ArgSpec("tod", Intent.IN, ArgRole.DETDATA, np.float64, ("n_det", "n_samp")),
            ArgSpec("det_scale", Intent.IN, ArgRole.FOCALPLANE, np.float64, ("n_det",)),
            *_intervals(),
            ArgSpec("shared_flags", Intent.IN, ArgRole.SHARED, np.uint8, ("n_samp",), optional=True),
            ArgSpec("mask", Intent.IN, ArgRole.SCALAR),
            ArgSpec("det_flags", Intent.IN, ArgRole.DETDATA, np.uint8, ("n_det", "n_samp"), optional=True),
            ArgSpec("det_mask", Intent.IN, ArgRole.SCALAR),
        ),
        megabatch=True,
        fusion_kind="scatter",
        doc="Accumulate noise-weighted timestreams into a Z map.",
    ),
    KernelSpec(
        "template_offset_add_to_signal",
        args=(
            ArgSpec("step_length", Intent.IN, ArgRole.SCALAR),
            ArgSpec("amplitudes", Intent.IN, ArgRole.GLOBAL, np.float64, ("n_amp",)),
            ArgSpec("amp_offsets", Intent.IN, ArgRole.DERIVED, np.int64, ("n_det",)),
            ArgSpec("tod", Intent.INOUT, ArgRole.DETDATA, np.float64, ("n_det", "n_samp")),
            *_intervals(),
        ),
        fusion_kind="gather",
        doc="Add step-function template offsets into timestreams.",
    ),
    KernelSpec(
        "template_offset_project_signal",
        args=(
            ArgSpec("step_length", Intent.IN, ArgRole.SCALAR),
            ArgSpec("tod", Intent.IN, ArgRole.DETDATA, np.float64, ("n_det", "n_samp")),
            ArgSpec("amplitudes", Intent.INOUT, ArgRole.GLOBAL, np.float64, ("n_amp",)),
            ArgSpec("amp_offsets", Intent.IN, ArgRole.DERIVED, np.int64, ("n_det",)),
            *_intervals(),
        ),
        fusion_kind="scatter",
        doc="Project timestreams onto template offset amplitudes.",
    ),
    KernelSpec(
        "template_offset_apply_diag_precond",
        args=(
            ArgSpec("offset_var", Intent.IN, ArgRole.DERIVED, np.float64, ("n_amp",)),
            ArgSpec("amp_in", Intent.IN, ArgRole.GLOBAL, np.float64, ("n_amp",)),
            ArgSpec("amp_out", Intent.OUT, ArgRole.GLOBAL, np.float64, ("n_amp",)),
        ),
        interval_batched=False,
        fusion_kind="elementwise",
        doc="Diagonal preconditioner over template amplitudes.",
    ),
    KernelSpec(
        "cov_accum_diag_hits",
        args=(
            ArgSpec("hits", Intent.INOUT, ArgRole.GLOBAL, np.int64, ("n_pix",)),
            ArgSpec("pixels", Intent.IN, ArgRole.DETDATA, np.int64, ("n_det", "n_samp")),
            *_intervals(),
        ),
        megabatch=True,
        fusion_kind="scatter",
        doc="Accumulate per-pixel hit counts.",
    ),
    KernelSpec(
        "cov_accum_diag_invnpp",
        args=(
            ArgSpec("invnpp", Intent.INOUT, ArgRole.GLOBAL, np.float64, ("n_pix", "n_block")),
            ArgSpec("pixels", Intent.IN, ArgRole.DETDATA, np.int64, ("n_det", "n_samp")),
            ArgSpec("weights", Intent.IN, ArgRole.DETDATA, np.float64, ("n_det", "n_samp", "nnz")),
            ArgSpec("det_scale", Intent.IN, ArgRole.FOCALPLANE, np.float64, ("n_det",)),
            *_intervals(),
        ),
        megabatch=True,
        fusion_kind="scatter",
        doc="Accumulate the packed diagonal inverse pixel-noise covariance.",
    ),
)

for _spec in KERNEL_SPECS:
    kernel_registry.register_spec(_spec)
