"""The ten ported TOAST kernels, in four implementations each.

Paper §3.1.1 lists the kernels; every implementation preserves the same
call signature (as the port "carefully preserved the API of the original
code"):

========================================  =============================================
kernel                                    role
========================================  =============================================
``pointing_detector``                     boresight -> detector pointing quaternions
``stokes_weights_I``                      trivial intensity weights
``stokes_weights_IQU``                    I/Q/U detector response weights
``pixels_healpix``                        pointing -> HEALPix pixel numbers
``scan_map``                              sky map -> timestream
``noise_weight``                          scale timestreams by detector weights
``build_noise_weighted``                  accumulate weighted timestreams onto a map
``template_offset_add_to_signal``         offset amplitudes -> timestream
``template_offset_project_signal``        timestream -> offset amplitudes
``template_offset_apply_diag_precond``    diagonal preconditioner on amplitudes
========================================  =============================================

Implementations (see :class:`repro.core.dispatch.ImplementationType`):

* ``python`` -- readable scalar loops; the correctness oracle;
* ``numpy`` -- vectorized "compiled CPU" baseline;
* ``jax`` -- jaxshim port (pure, padded, jit+vmap);
* ``omp_target`` -- ompshim port (explicit mapping, collapse(3), guards).

Importing this package registers everything into the kernel registry.
"""

from ..core.dispatch import get_kernel, kernel_registry
from .megabatch import MegabatchCollector
from .spec import ArgRole, ArgSpec, Intent, KernelSpec

# Register every KernelSpec first: implementations registering below are
# validated against their spec, and an implementation without a spec is
# rejected outright.
from . import specs as _specs  # noqa: F401

# Import the implementation packages for their registration side effects.
from . import python as _python  # noqa: F401
from . import numpy_cpu as _numpy_cpu  # noqa: F401
from . import jax as _jax  # noqa: F401
from . import omp as _omp  # noqa: F401

#: Kernel names in the paper's listing order.
KERNEL_NAMES = [
    "pointing_detector",
    "stokes_weights_I",
    "stokes_weights_IQU",
    "pixels_healpix",
    "scan_map",
    "noise_weight",
    "build_noise_weighted",
    "template_offset_add_to_signal",
    "template_offset_project_signal",
    "template_offset_apply_diag_precond",
]

#: The paper's stated next step ("In the short term, we want to port more
#: kernels", §5): two of the >30 unported kernels, ported here in all four
#: implementations as the reproduction's extension.
EXTENSION_KERNELS = [
    "cov_accum_diag_hits",
    "cov_accum_diag_invnpp",
]

#: The 8 kernels exercised by the satellite benchmark (the other two are
#: used by other CMB experiments; paper footnote 6).
BENCHMARK_KERNELS = [
    k
    for k in KERNEL_NAMES
    if k not in ("stokes_weights_I", "template_offset_apply_diag_precond")
]

__all__ = [
    "KERNEL_NAMES",
    "BENCHMARK_KERNELS",
    "EXTENSION_KERNELS",
    "get_kernel",
    "kernel_registry",
    "ArgRole",
    "ArgSpec",
    "Intent",
    "KernelSpec",
    "MegabatchCollector",
]
