"""template_offset_project_signal, python reference implementation.

The transpose of add_to_signal: accumulate each sample into the amplitude
of the step it falls in (a blocked dot product between the timestream and
the step basis functions).
"""

from ...core.dispatch import ImplementationType, kernel


@kernel("template_offset_project_signal", ImplementationType.PYTHON)
def template_offset_project_signal(
    step_length,
    tod,
    amplitudes,
    amp_offsets,
    starts,
    stops,
    accel=None,
    use_accel=False,
):
    n_det = tod.shape[0]
    for idet in range(n_det):
        offset = amp_offsets[idet]
        for start, stop in zip(starts, stops):
            for s in range(start, stop):
                amp = offset + s // step_length
                amplitudes[amp] += tod[idet, s]
