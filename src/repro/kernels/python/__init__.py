"""Pure-Python loop implementations: the readable correctness oracle.

These follow the structure of the original C++ kernels line by line --
a triple loop over detectors, intervals, and samples -- with scalar
arithmetic in the loop body.  They are intentionally simple and slow;
every other implementation is validated against them on small problems.
"""

from . import (  # noqa: F401  (registration side effects)
    pointing_detector,
    stokes_weights_I,
    stokes_weights_IQU,
    pixels_healpix,
    scan_map,
    noise_weight,
    build_noise_weighted,
    template_offset_add_to_signal,
    template_offset_project_signal,
    template_offset_apply_diag_precond,
    cov_accum,
)
