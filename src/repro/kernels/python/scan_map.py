"""scan_map, python reference implementation.

Sample a pixelized sky map into timestreams: for each sample, the dot
product of the map values at its pixel with its Stokes weights.  Negative
pixels (flagged pointing) contribute nothing.
"""

from ...core.dispatch import ImplementationType, kernel


@kernel("scan_map", ImplementationType.PYTHON)
def scan_map(
    map_data,
    pixels,
    weights,
    tod,
    starts,
    stops,
    data_scale=1.0,
    should_zero=False,
    should_subtract=False,
    accel=None,
    use_accel=False,
):
    n_det = pixels.shape[0]
    nnz = map_data.shape[1]
    for idet in range(n_det):
        for start, stop in zip(starts, stops):
            for s in range(start, stop):
                if should_zero:
                    tod[idet, s] = 0.0
                pix = pixels[idet, s]
                if pix < 0:
                    continue
                value = 0.0
                for k in range(nnz):
                    value += map_data[pix, k] * weights[idet, s, k]
                value *= data_scale
                if should_subtract:
                    tod[idet, s] -= value
                else:
                    tod[idet, s] += value
