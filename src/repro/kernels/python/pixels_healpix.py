"""pixels_healpix, python reference implementation.

Translate detector pointing quaternions into HEALPix pixel numbers, one
sample at a time.  Flagged samples get pixel -1 (ignored downstream).
This is the branch-heavy kernel the paper singles out (§4.2).
"""

import numpy as np

from ...core.dispatch import ImplementationType, kernel
from ...healpix import ang2pix
from ...math import qa


@kernel("pixels_healpix", ImplementationType.PYTHON)
def pixels_healpix(
    quats,
    pixels_out,
    nside,
    nest,
    starts,
    stops,
    shared_flags=None,
    mask=0,
    accel=None,
    use_accel=False,
):
    n_det = quats.shape[0]
    for idet in range(n_det):
        for start, stop in zip(starts, stops):
            for s in range(start, stop):
                if shared_flags is not None and (int(shared_flags[s]) & mask) != 0:
                    pixels_out[idet, s] = -1
                    continue
                theta, phi = qa.to_position(quats[idet, s])
                pixels_out[idet, s] = ang2pix(nside, theta, phi, nest=nest)
