"""stokes_weights_IQU, python reference implementation.

Detector response to intensity and linear polarization: from each pointing
quaternion recover the position angle of the detector's polarization axis,
add the half-wave-plate rotation, and form (I, Q, U) weights with the
polarization efficiency eta = (1 - eps) / (1 + eps).
"""

import numpy as np

from ...core.dispatch import ImplementationType, kernel
from ...math import qa


@kernel("stokes_weights_IQU", ImplementationType.PYTHON)
def stokes_weights_IQU(
    quats,
    weights_out,
    hwp_angle,
    epsilon,
    cal,
    starts,
    stops,
    accel=None,
    use_accel=False,
):
    n_det = quats.shape[0]
    for idet in range(n_det):
        eta = (1.0 - epsilon[idet]) / (1.0 + epsilon[idet])
        for start, stop in zip(starts, stops):
            for s in range(start, stop):
                _, _, pa = qa.to_angles(quats[idet, s])
                angle = pa
                if hwp_angle is not None:
                    angle = angle + 2.0 * hwp_angle[s]
                weights_out[idet, s, 0] = cal
                weights_out[idet, s, 1] = cal * eta * np.cos(2.0 * angle)
                weights_out[idet, s, 2] = cal * eta * np.sin(2.0 * angle)
