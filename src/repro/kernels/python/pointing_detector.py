"""pointing_detector, python reference implementation.

Expand boresight pointing into per-detector pointing: for every sample in
every interval, rotate the focalplane offset by the boresight attitude.
Samples whose shared flags intersect the mask keep the bare focalplane
quaternion (no valid boresight).
"""

import numpy as np

from ...core.dispatch import ImplementationType, kernel
from ...math import qa


@kernel("pointing_detector", ImplementationType.PYTHON)
def pointing_detector(
    fp_quats,
    boresight,
    quats_out,
    starts,
    stops,
    shared_flags=None,
    mask=0,
    accel=None,
    use_accel=False,
):
    n_det = fp_quats.shape[0]
    for idet in range(n_det):
        for start, stop in zip(starts, stops):
            for s in range(start, stop):
                flagged = (
                    shared_flags is not None and (int(shared_flags[s]) & mask) != 0
                )
                if flagged:
                    quats_out[idet, s] = fp_quats[idet]
                else:
                    quats_out[idet, s] = qa.mult(boresight[s], fp_quats[idet])
