"""noise_weight, python reference implementation.

Scale each detector's timestream by its inverse-variance noise weight.
"""

from ...core.dispatch import ImplementationType, kernel


@kernel("noise_weight", ImplementationType.PYTHON)
def noise_weight(
    tod,
    det_weights,
    starts,
    stops,
    accel=None,
    use_accel=False,
):
    n_det = tod.shape[0]
    for idet in range(n_det):
        w = det_weights[idet]
        for start, stop in zip(starts, stops):
            for s in range(start, stop):
                tod[idet, s] *= w
