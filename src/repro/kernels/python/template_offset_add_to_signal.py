"""template_offset_add_to_signal, python reference implementation.

Scan a step-wise noise offset solution onto timestreams: each sample gets
the amplitude of the step it falls in.  Detector ``d``'s amplitude block
begins at ``amp_offsets[d]``; a step covers ``step_length`` samples.
"""

from ...core.dispatch import ImplementationType, kernel


@kernel("template_offset_add_to_signal", ImplementationType.PYTHON)
def template_offset_add_to_signal(
    step_length,
    amplitudes,
    amp_offsets,
    tod,
    starts,
    stops,
    accel=None,
    use_accel=False,
):
    n_det = tod.shape[0]
    for idet in range(n_det):
        offset = amp_offsets[idet]
        for start, stop in zip(starts, stops):
            for s in range(start, stop):
                amp = offset + s // step_length
                tod[idet, s] += amplitudes[amp]
