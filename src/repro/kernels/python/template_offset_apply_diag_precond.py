"""template_offset_apply_diag_precond, python reference implementation.

Apply the diagonal preconditioner of the offset-amplitude linear system:
an elementwise product of the amplitude vector with per-amplitude
variances.
"""

from ...core.dispatch import ImplementationType, kernel


@kernel("template_offset_apply_diag_precond", ImplementationType.PYTHON)
def template_offset_apply_diag_precond(
    offset_var,
    amp_in,
    amp_out,
    accel=None,
    use_accel=False,
):
    n_amp = amp_in.shape[0]
    for i in range(n_amp):
        amp_out[i] = amp_in[i] * offset_var[i]
