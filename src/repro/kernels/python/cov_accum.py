"""cov_accum_diag_hits / cov_accum_diag_invnpp, python reference.

Two of the >30 kernels the paper left unported ("In the short term, we
want to port more kernels", §5): hit-count accumulation and the packed
upper-triangle inverse pixel-noise covariance.  This reproduction ports
them in all four implementations as the paper's stated next step.
"""

from ...core.dispatch import ImplementationType, kernel


@kernel("cov_accum_diag_hits", ImplementationType.PYTHON)
def cov_accum_diag_hits(
    hits,
    pixels,
    starts,
    stops,
    accel=None,
    use_accel=False,
):
    n_det = pixels.shape[0]
    for idet in range(n_det):
        for start, stop in zip(starts, stops):
            for s in range(start, stop):
                pix = pixels[idet, s]
                if pix < 0:
                    continue
                hits[pix] += 1


@kernel("cov_accum_diag_invnpp", ImplementationType.PYTHON)
def cov_accum_diag_invnpp(
    invnpp,
    pixels,
    weights,
    det_scale,
    starts,
    stops,
    accel=None,
    use_accel=False,
):
    n_det = pixels.shape[0]
    nnz = weights.shape[2]
    for idet in range(n_det):
        g = det_scale[idet]
        for start, stop in zip(starts, stops):
            for s in range(start, stop):
                pix = pixels[idet, s]
                if pix < 0:
                    continue
                c = 0
                for i in range(nnz):
                    for j in range(i, nnz):
                        invnpp[pix, c] += g * weights[idet, s, i] * weights[idet, s, j]
                        c += 1
