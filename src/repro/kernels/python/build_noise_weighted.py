"""build_noise_weighted, python reference implementation.

Accumulate noise-weighted timestreams onto a sky map: for each unflagged
sample with a valid pixel, add ``det_weight * stokes_weight * signal`` into
the map's (pixel, component) entries.

Accumulation order is sample-major (samples outer, detectors inner).  This
is the repo-wide canonical scatter order: because floating-point addition is
non-associative, windowed streaming over the sample axis is only bitwise
identical to a full-observation run if contributions land in ascending
sample order regardless of where window boundaries fall.
"""

from ...core.dispatch import ImplementationType, kernel


@kernel("build_noise_weighted", ImplementationType.PYTHON)
def build_noise_weighted(
    zmap,
    pixels,
    weights,
    tod,
    det_scale,
    starts,
    stops,
    shared_flags=None,
    mask=0,
    det_flags=None,
    det_mask=0,
    accel=None,
    use_accel=False,
):
    n_det = pixels.shape[0]
    nnz = zmap.shape[1]
    for start, stop in zip(starts, stops):
        for s in range(start, stop):
            if shared_flags is not None and (int(shared_flags[s]) & mask) != 0:
                continue
            for idet in range(n_det):
                if det_flags is not None and (int(det_flags[idet, s]) & det_mask) != 0:
                    continue
                pix = pixels[idet, s]
                if pix < 0:
                    continue
                z = det_scale[idet] * tod[idet, s]
                for k in range(nnz):
                    zmap[pix, k] += z * weights[idet, s, k]
