"""stokes_weights_I, python reference implementation.

The trivial intensity-only response: every sample's weight is the
calibration factor.
"""

from ...core.dispatch import ImplementationType, kernel


@kernel("stokes_weights_I", ImplementationType.PYTHON)
def stokes_weights_I(
    weights_out,
    cal,
    starts,
    stops,
    accel=None,
    use_accel=False,
):
    n_det = weights_out.shape[0]
    for idet in range(n_det):
        for start, stop in zip(starts, stops):
            for s in range(start, stop):
                weights_out[idet, s] = cal
