"""Shared helpers for the kernel implementations."""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

__all__ = [
    "check_intervals",
    "pad_intervals",
    "flatten_intervals",
    "resolve_view",
    "host_parallel_for_collapse3",
    "launcher_for",
]


def check_intervals(starts: np.ndarray, stops: np.ndarray, n_samples: int) -> None:
    """Validate interval arrays against the sample count."""
    starts = np.asarray(starts)
    stops = np.asarray(stops)
    if starts.shape != stops.shape or starts.ndim != 1:
        raise ValueError("interval starts/stops must be matching 1-D arrays")
    if len(starts) and (
        np.any(starts < 0) or np.any(stops < starts) or np.any(stops > n_samples)
    ):
        raise ValueError("intervals out of range")


def pad_intervals(
    starts: np.ndarray, stops: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Pad variable-length intervals to the maximum length (paper §3.1.3).

    Returns ``(sample_index, valid_mask, max_length)`` where
    ``sample_index`` has shape (n_intervals, max_length).  Out-of-interval
    lanes are *clamped to the last valid sample* of their interval, so
    non-accumulating kernels can let the padding lanes do "dummy work"
    (recomputing the last sample's value) exactly as the paper describes;
    accumulating kernels must zero their contribution using ``valid_mask``.
    """
    starts = np.asarray(starts, dtype=np.int64)
    stops = np.asarray(stops, dtype=np.int64)
    if len(starts) == 0:
        return np.zeros((0, 0), dtype=np.int64), np.zeros((0, 0), dtype=bool), 0
    # Degenerate (empty or inverted) intervals contribute no valid lanes,
    # mirroring the scalar reference's empty range().
    lengths = np.maximum(stops - starts, 0)
    max_len = int(lengths.max())
    lanes = np.arange(max_len, dtype=np.int64)
    raw = starts[:, None] + lanes[None, :]
    valid = lanes[None, :] < lengths[:, None]
    clamped = np.minimum(raw, np.maximum(stops[:, None] - 1, starts[:, None]))
    return clamped, valid, max_len


def flatten_intervals(starts: np.ndarray, stops: np.ndarray) -> np.ndarray:
    """Concatenated sample indices of every interval, in interval order.

    The batched CPU kernels use this to collapse the per-detector and
    per-interval Python loops into a single NumPy pass: gathering a
    ``(n_det, n_samples)`` array at ``[:, flatten_intervals(...)]`` yields
    the ``(n_det, n_flat)`` working set covering exactly the in-interval
    samples, with lanes ascending in sample order.  Each scatter kernel
    then enumerates this working set in the same order as its scalar
    reference, so ordered scatter-accumulations (``np.add.at``) stay
    bitwise identical to it -- most references are detector-major, while
    ``build_noise_weighted`` is sample-major (detector inner) so windowed
    streaming over the sample axis reproduces the full-run accumulation.

    The construction itself is vectorized (no Python loop over intervals);
    zero-length intervals contribute nothing.
    """
    starts = np.asarray(starts, dtype=np.int64)
    stops = np.asarray(stops, dtype=np.int64)
    if len(starts) == 0:
        return np.zeros(0, dtype=np.int64)
    # Empty (start == stop) and inverted (stop < start) intervals both
    # flatten to nothing, exactly like the reference's ``range(start, stop)``.
    lengths = np.maximum(stops - starts, 0)
    total = int(lengths.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    # Lane j of the flat index lives in interval k at in-interval offset
    # j - cum[k]; its sample index is starts[k] + (j - cum[k]).
    cum = np.concatenate((np.zeros(1, dtype=np.int64), np.cumsum(lengths)[:-1]))
    return np.repeat(starts - cum, lengths) + np.arange(total, dtype=np.int64)


def resolve_view(accel, arr: np.ndarray, use_accel: bool) -> np.ndarray:
    """The array a kernel should operate on.

    With acceleration, mapped host arrays resolve to their device views
    (dereferencing the device pointer); otherwise the host array is used
    directly (OpenMP's host-fallback behaviour).
    """
    if use_accel and accel is not None and accel.is_present(arr):
        return accel.device_view(arr)
    return arr


def host_parallel_for_collapse3(
    name: str,
    grid: Tuple[int, int, int],
    body: Callable[[int, int, np.ndarray], None],
    flops_per_iteration: float = 10.0,
    bytes_per_iteration: float = 24.0,
) -> None:
    """Host fallback of the collapse(3) launcher (no device, no charge)."""
    n_outer, n_middle, n_inner = (int(g) for g in grid)
    k_vec = np.arange(n_inner, dtype=np.int64)
    for i in range(n_outer):
        for j in range(n_middle):
            body(i, j, k_vec)


def launcher_for(accel, use_accel: bool) -> Callable:
    """Pick the device or host collapse(3) launcher."""
    if use_accel and accel is not None:
        return accel.target_teams_distribute_parallel_for
    return host_parallel_for_collapse3
