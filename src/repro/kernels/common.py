"""Shared helpers for the kernel implementations."""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

__all__ = [
    "check_intervals",
    "pad_intervals",
    "pad_intervals_grouped",
    "pad_intervals_stacked",
    "flatten_intervals",
    "resolve_view",
    "host_parallel_for_collapse3",
    "launcher_for",
]


def check_intervals(starts: np.ndarray, stops: np.ndarray, n_samples: int) -> None:
    """Validate interval arrays against the sample count."""
    starts = np.asarray(starts)
    stops = np.asarray(stops)
    if starts.shape != stops.shape or starts.ndim != 1:
        raise ValueError("interval starts/stops must be matching 1-D arrays")
    if len(starts) and (
        np.any(starts < 0) or np.any(stops < starts) or np.any(stops > n_samples)
    ):
        raise ValueError("intervals out of range")


def pad_intervals(
    starts: np.ndarray,
    stops: np.ndarray,
    max_len: Optional[int] = None,
    n_intervals: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Pad variable-length intervals to the maximum length (paper §3.1.3).

    Returns ``(sample_index, valid_mask, max_length)`` where
    ``sample_index`` has shape (n_intervals, max_length).  Out-of-interval
    lanes are *clamped to the last valid sample* of their interval, so
    non-accumulating kernels can let the padding lanes do "dummy work"
    (recomputing the last sample's value) exactly as the paper describes;
    accumulating kernels must zero their contribution using ``valid_mask``.

    ``max_len`` / ``n_intervals`` pad the slab out to a caller-imposed
    shape (megabatch stacking pads every group member to a common
    ``(n_intervals, max_len)``).  Padding rows and lanes are all-masked
    and index sample 0, which is always in range; an observation with an
    *empty* interval list therefore contributes an all-masked slab rather
    than a (0, 0)-shaped error.
    """
    starts = np.asarray(starts, dtype=np.int64)
    stops = np.asarray(stops, dtype=np.int64)
    n_ivl = len(starts) if n_intervals is None else int(n_intervals)
    if n_ivl < len(starts):
        raise ValueError("n_intervals smaller than the interval list")
    if len(starts) == 0:
        forced = 0 if max_len is None else int(max_len)
        return (
            np.zeros((n_ivl, forced), dtype=np.int64),
            np.zeros((n_ivl, forced), dtype=bool),
            forced,
        )
    # Degenerate (empty or inverted) intervals contribute no valid lanes,
    # mirroring the scalar reference's empty range().
    lengths = np.maximum(stops - starts, 0)
    out_len = int(lengths.max()) if max_len is None else int(max_len)
    if out_len < int(lengths.max()):
        raise ValueError("max_len smaller than the longest interval")
    lanes = np.arange(out_len, dtype=np.int64)
    raw = starts[:, None] + lanes[None, :]
    valid = lanes[None, :] < lengths[:, None]
    clamped = np.minimum(raw, np.maximum(stops[:, None] - 1, starts[:, None]))
    # Clamp degenerate rows (start == stop at the sample-count boundary)
    # into range: every lane there is masked anyway.
    np.clip(clamped, 0, None, out=clamped)
    if n_ivl > len(starts):
        pad_rows = n_ivl - len(starts)
        clamped = np.concatenate(
            (clamped, np.zeros((pad_rows, out_len), dtype=np.int64)), axis=0
        )
        valid = np.concatenate(
            (valid, np.zeros((pad_rows, out_len), dtype=bool)), axis=0
        )
    return clamped, valid, out_len


def pad_intervals_grouped(
    starts: np.ndarray, stops: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Pad already-stacked ``(n_obs, n_ivl)`` interval slabs.

    The megabatch collector hands kernels their group's starts/stops as
    rectangular slabs with degenerate ``(0, 0)`` padding rows; this is
    the stacked analogue of :func:`pad_intervals`, returning
    ``(sample_index, valid_mask, max_length)`` with a leading ``n_obs``
    axis and one group-wide ``max_length``.
    """
    starts = np.asarray(starts, dtype=np.int64)
    stops = np.asarray(stops, dtype=np.int64)
    if starts.ndim != 2 or starts.shape != stops.shape:
        raise ValueError("grouped starts/stops must be matching 2-D slabs")
    n_obs, n_ivl = starts.shape
    idx, valid, max_len = pad_intervals(starts.reshape(-1), stops.reshape(-1))
    return (
        idx.reshape(n_obs, n_ivl, max_len),
        valid.reshape(n_obs, n_ivl, max_len),
        max_len,
    )


def pad_intervals_stacked(
    starts_list, stops_list
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Pad a *group* of per-observation interval lists to one common slab.

    Returns ``(sample_index, valid_mask, max_length)`` with shape
    ``(n_obs, n_intervals_max, max_length)``.  Every member is padded to
    the group-wide interval count and interval length; observations with
    fewer (or zero) intervals contribute all-masked rows, so a megabatch
    launch can iterate one rectangular grid and mask rather than branch.
    """
    if len(starts_list) != len(stops_list):
        raise ValueError("starts/stops group lists must have equal length")
    if len(starts_list) == 0:
        return (
            np.zeros((0, 0, 0), dtype=np.int64),
            np.zeros((0, 0, 0), dtype=bool),
            0,
        )
    starts_list = [np.asarray(s, dtype=np.int64) for s in starts_list]
    stops_list = [np.asarray(s, dtype=np.int64) for s in stops_list]
    n_ivl = max(len(s) for s in starts_list)
    max_len = 0
    for starts, stops in zip(starts_list, stops_list):
        if len(starts):
            max_len = max(max_len, int(np.maximum(stops - starts, 0).max()))
    idx_rows = []
    valid_rows = []
    for starts, stops in zip(starts_list, stops_list):
        idx, valid, _ = pad_intervals(
            starts, stops, max_len=max_len, n_intervals=n_ivl
        )
        idx_rows.append(idx)
        valid_rows.append(valid)
    return np.stack(idx_rows, axis=0), np.stack(valid_rows, axis=0), max_len


def flatten_intervals(starts: np.ndarray, stops: np.ndarray) -> np.ndarray:
    """Concatenated sample indices of every interval, in interval order.

    The batched CPU kernels use this to collapse the per-detector and
    per-interval Python loops into a single NumPy pass: gathering a
    ``(n_det, n_samples)`` array at ``[:, flatten_intervals(...)]`` yields
    the ``(n_det, n_flat)`` working set covering exactly the in-interval
    samples, with lanes ascending in sample order.  Each scatter kernel
    then enumerates this working set in the same order as its scalar
    reference, so ordered scatter-accumulations (``np.add.at``) stay
    bitwise identical to it -- most references are detector-major, while
    ``build_noise_weighted`` is sample-major (detector inner) so windowed
    streaming over the sample axis reproduces the full-run accumulation.

    The construction itself is vectorized (no Python loop over intervals);
    zero-length intervals contribute nothing.
    """
    starts = np.asarray(starts, dtype=np.int64)
    stops = np.asarray(stops, dtype=np.int64)
    if len(starts) == 0:
        return np.zeros(0, dtype=np.int64)
    # Empty (start == stop) and inverted (stop < start) intervals both
    # flatten to nothing, exactly like the reference's ``range(start, stop)``.
    lengths = np.maximum(stops - starts, 0)
    total = int(lengths.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    # Lane j of the flat index lives in interval k at in-interval offset
    # j - cum[k]; its sample index is starts[k] + (j - cum[k]).
    cum = np.concatenate((np.zeros(1, dtype=np.int64), np.cumsum(lengths)[:-1]))
    return np.repeat(starts - cum, lengths) + np.arange(total, dtype=np.int64)


def resolve_view(accel, arr: np.ndarray, use_accel: bool) -> np.ndarray:
    """The array a kernel should operate on.

    With acceleration, mapped host arrays resolve to their device views
    (dereferencing the device pointer); otherwise the host array is used
    directly (OpenMP's host-fallback behaviour).
    """
    if use_accel and accel is not None and accel.is_present(arr):
        return accel.device_view(arr)
    return arr


def host_parallel_for_collapse3(
    name: str,
    grid: Tuple[int, int, int],
    body: Callable[[int, int, np.ndarray], None],
    flops_per_iteration: float = 10.0,
    bytes_per_iteration: float = 24.0,
) -> None:
    """Host fallback of the collapse(3) launcher (no device, no charge)."""
    n_outer, n_middle, n_inner = (int(g) for g in grid)
    k_vec = np.arange(n_inner, dtype=np.int64)
    for i in range(n_outer):
        for j in range(n_middle):
            body(i, j, k_vec)


def launcher_for(accel, use_accel: bool) -> Callable:
    """Pick the device or host collapse(3) launcher."""
    if use_accel and accel is not None:
        return accel.target_teams_distribute_parallel_for
    return host_parallel_for_collapse3
