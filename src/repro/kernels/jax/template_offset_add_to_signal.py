"""template_offset_add_to_signal, jaxshim implementation."""

from ...core.dispatch import ImplementationType, kernel
from ...jaxshim import jit, jnp, vmap
from ..common import pad_intervals, resolve_view


@jit(static_argnums=(0,))
def _offset_add_compiled(step_length, amplitudes, amp_offsets, tod, flat, valid):
    step_of_sample = flat // step_length

    def per_detector(offset, tod_row):
        amp_idx = offset + step_of_sample
        vals = jnp.take(amplitudes, amp_idx)
        # Padding lanes duplicate a valid sample index: their contribution
        # must be zero or the duplicate scatter would double-add.
        vals = jnp.where(valid, vals, 0.0)
        return tod_row.at[flat].add(vals)

    return vmap(per_detector)(amp_offsets, tod)


@kernel("template_offset_add_to_signal", ImplementationType.JAX)
def template_offset_add_to_signal(
    step_length,
    amplitudes,
    amp_offsets,
    tod,
    starts,
    stops,
    accel=None,
    use_accel=False,
):
    idx, valid, max_len = pad_intervals(starts, stops)
    if max_len == 0:
        return
    out = resolve_view(accel, tod, use_accel)
    out[:] = _offset_add_compiled(
        int(step_length),
        resolve_view(accel, amplitudes, use_accel),
        resolve_view(accel, amp_offsets, use_accel),
        out,
        idx.reshape(-1),
        valid.reshape(-1),
    )
