"""pixels_healpix, jaxshim implementation.

The in-loop branches of the compiled kernel become fully evaluated
``jnp.where`` selections -- the transformation the paper credits for this
kernel's relatively modest JAX speedup (§4.2).
"""

import numpy as np

from ...core.dispatch import ImplementationType, kernel
from ...jaxshim import jit, jnp, vmap
from ..common import pad_intervals, resolve_view
from . import qarray
from .healpix_jax import ang2pix_nest_jnp, ang2pix_ring_jnp


@jit(static_argnums=(2, 3))
def _pixels_healpix_compiled(quats, pixels, nside, nest, flat, flagged):
    def per_detector(q_row, pix_row):
        q = jnp.take(q_row, flat)
        theta, phi = qarray.to_position(q)
        if nest:
            pix = ang2pix_nest_jnp(nside, theta, phi)
        else:
            pix = ang2pix_ring_jnp(nside, theta, phi)
        pix = jnp.where(flagged, jnp.astype(-1, jnp.int64), pix)
        return pix_row.at[flat].set(pix)

    return vmap(per_detector)(quats, pixels)


@kernel("pixels_healpix", ImplementationType.JAX)
def pixels_healpix(
    quats,
    pixels_out,
    nside,
    nest,
    starts,
    stops,
    shared_flags=None,
    mask=0,
    accel=None,
    use_accel=False,
):
    idx, _, max_len = pad_intervals(starts, stops)
    if max_len == 0:
        return
    flat = idx.reshape(-1)
    if shared_flags is not None and mask:
        flagged = (shared_flags[flat] & mask) != 0
    else:
        flagged = np.zeros(flat.shape, dtype=bool)

    out = resolve_view(accel, pixels_out, use_accel)
    out[:] = _pixels_healpix_compiled(
        resolve_view(accel, quats, use_accel),
        out,
        int(nside),
        bool(nest),
        flat,
        flagged,
    )
