"""HEALPix ang2pix expressed in pure jnp operations (traceable).

Branch-free: both the equatorial and polar formulas evaluate on every
sample and ``jnp.where`` selects -- the JAX way to express the
conditional-heavy pixelization the paper discusses (pixels_healpix "has
many branches ... known to be expensive on GPU", §4.2).
"""

from __future__ import annotations

import numpy as np

from ...jaxshim import jnp

__all__ = ["ang2pix_ring_jnp", "ang2pix_nest_jnp"]

_TWOTHIRD = 2.0 / 3.0


def _zphi(theta, phi):
    z = jnp.cos(theta)
    tt = jnp.remainder(phi * (2.0 / np.pi), 4.0)
    tt = jnp.where(tt >= 4.0, 0.0, tt)
    return z, tt


def ang2pix_ring_jnp(nside: int, theta, phi):
    """RING pixel indices; ``nside`` is static (baked into the trace)."""
    z, tt = _zphi(theta, phi)
    za = jnp.abs(z)
    ncap = 2 * nside * (nside - 1)
    npix = 12 * nside * nside

    # Equatorial-belt formula, evaluated on all lanes.
    temp1 = nside * (0.5 + tt)
    temp2 = nside * (z * 0.75)
    jp_e = jnp.astype(temp1 - temp2, jnp.int64)
    jm_e = jnp.astype(temp1 + temp2, jnp.int64)
    ir_e = nside + 1 + jp_e - jm_e
    kshift = 1 - jnp.bitwise_and(ir_e, 1)
    ip_e = jnp.right_shift(jp_e + jm_e - nside + kshift + 1, 1)
    ip_e = jnp.remainder(ip_e, 4 * nside)
    pix_e = ncap + (ir_e - 1) * 4 * nside + ip_e

    # Polar-cap formula, evaluated on all lanes.
    tp = tt - jnp.floor(tt)
    tmp = nside * jnp.sqrt(3.0 * (1.0 - za))
    jp_p = jnp.astype(tp * tmp, jnp.int64)
    jm_p = jnp.astype((1.0 - tp) * tmp, jnp.int64)
    ir_p = jp_p + jm_p + 1
    ip_p = jnp.astype(tt * jnp.astype(ir_p, jnp.float64), jnp.int64)
    ip_p = jnp.remainder(ip_p, 4 * ir_p)
    pix_north = 2 * ir_p * (ir_p - 1) + ip_p
    pix_south = npix - 2 * ir_p * (ir_p + 1) + ip_p
    pix_p = jnp.where(z > 0, pix_north, pix_south)

    return jnp.where(za <= _TWOTHIRD, pix_e, pix_p)


def _spread_bits_jnp(v):
    """Morton spread of the low 32 bits (uint64 lanes)."""
    m32 = np.uint64(0x00000000FFFFFFFF)
    masks = [
        np.uint64(0x0000FFFF0000FFFF),
        np.uint64(0x00FF00FF00FF00FF),
        np.uint64(0x0F0F0F0F0F0F0F0F),
        np.uint64(0x3333333333333333),
        np.uint64(0x5555555555555555),
    ]
    shifts = [16, 8, 4, 2, 1]
    x = jnp.bitwise_and(jnp.astype(v, jnp.uint64), m32)
    for mask, shift in zip(masks, shifts):
        # Shift amounts must stay uint64: a signed literal cannot be
        # safely coerced against uint64 lanes.
        x = jnp.bitwise_and(
            jnp.bitwise_or(x, jnp.left_shift(x, np.uint64(shift))), mask
        )
    return x


def ang2pix_nest_jnp(nside: int, theta, phi):
    """NESTED pixel indices; ``nside`` is static (power of two)."""
    order = int(nside).bit_length() - 1
    z, tt = _zphi(theta, phi)
    za = jnp.abs(z)

    # Equatorial face coordinates.
    temp1 = nside * (0.5 + tt)
    temp2 = nside * (z * 0.75)
    jp_e = jnp.astype(temp1 - temp2, jnp.int64)
    jm_e = jnp.astype(temp1 + temp2, jnp.int64)
    ifp = jnp.right_shift(jp_e, order)
    ifm = jnp.right_shift(jm_e, order)
    face_e = jnp.where(
        jnp.equal(ifp, ifm),
        jnp.bitwise_and(ifp, 3) + 4,
        jnp.where(ifp < ifm, jnp.bitwise_and(ifp, 3), jnp.bitwise_and(ifm, 3) + 8),
    )
    ix_e = jnp.bitwise_and(jm_e, nside - 1)
    iy_e = (nside - 1) - jnp.bitwise_and(jp_e, nside - 1)

    # Polar face coordinates.
    ntt = jnp.minimum(jnp.astype(tt, jnp.int64), 3)
    tp = tt - jnp.astype(ntt, jnp.float64)
    tmp = nside * jnp.sqrt(3.0 * (1.0 - za))
    jp_p = jnp.minimum(jnp.astype(tp * tmp, jnp.int64), nside - 1)
    jm_p = jnp.minimum(jnp.astype((1.0 - tp) * tmp, jnp.int64), nside - 1)
    north = z >= 0
    face_p = jnp.where(north, ntt, ntt + 8)
    ix_p = jnp.where(north, nside - 1 - jm_p, jp_p)
    iy_p = jnp.where(north, nside - 1 - jp_p, jm_p)

    eq = za <= _TWOTHIRD
    face = jnp.where(eq, face_e, face_p)
    ix = jnp.where(eq, ix_e, ix_p)
    iy = jnp.where(eq, iy_e, iy_p)

    morton = jnp.bitwise_or(
        _spread_bits_jnp(ix), jnp.left_shift(_spread_bits_jnp(iy), np.uint64(1))
    )
    return jnp.left_shift(face, 2 * order) + jnp.astype(morton, jnp.int64)
