"""template_offset_apply_diag_precond, jaxshim implementation."""

from ...core.dispatch import ImplementationType, kernel
from ...jaxshim import jit, jnp
from ..common import resolve_view


@jit
def _apply_precond_compiled(offset_var, amp_in):
    return amp_in * offset_var


@kernel("template_offset_apply_diag_precond", ImplementationType.JAX)
def template_offset_apply_diag_precond(
    offset_var,
    amp_in,
    amp_out,
    accel=None,
    use_accel=False,
):
    out = resolve_view(accel, amp_out, use_accel)
    out[:] = _apply_precond_compiled(
        resolve_view(accel, offset_var, use_accel),
        resolve_view(accel, amp_in, use_accel),
    )
