"""pointing_detector, jaxshim implementation."""

import numpy as np

from ...core.dispatch import ImplementationType, kernel
from ...jaxshim import jit, jnp, vmap
from ..common import pad_intervals, resolve_view
from . import qarray


@jit
def _pointing_detector_compiled(fp_quats, boresight, quats, flat, flagged):
    bore = jnp.take(boresight, flat)  # (M, 4) gathered boresight samples

    def per_detector(fp, out_row):
        rotated = qarray.mult(bore, fp)
        rotated = jnp.where(flagged[:, None], fp, rotated)
        return out_row.at[flat].set(rotated)

    return vmap(per_detector)(fp_quats, quats)


@kernel("pointing_detector", ImplementationType.JAX)
def pointing_detector(
    fp_quats,
    boresight,
    quats_out,
    starts,
    stops,
    shared_flags=None,
    mask=0,
    accel=None,
    use_accel=False,
):
    idx, _, max_len = pad_intervals(starts, stops)
    if max_len == 0:
        return
    flat = idx.reshape(-1)
    if shared_flags is not None and mask:
        flagged = (shared_flags[flat] & mask) != 0
    else:
        flagged = np.zeros(flat.shape, dtype=bool)

    out = resolve_view(accel, quats_out, use_accel)
    out[:] = _pointing_detector_compiled(
        resolve_view(accel, fp_quats, use_accel),
        resolve_view(accel, boresight, use_accel),
        out,
        flat,
        flagged,
    )
