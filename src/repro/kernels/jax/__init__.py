"""jaxshim kernel implementations (the paper's JAX port).

Ported in the paper's two steps -- C++ to NumPy, then NumPy to JAX --
"turning loops into calls to vmap ... and removing side effects".
Variable-length intervals are padded to the maximum interval length
(a static shape at trace time); out-of-interval lanes are clamped onto the
last valid sample so they do the paper's "dummy work", and accumulating
kernels mask those lanes to zero.

Importing this package applies the port's two JAX configuration changes
(§3.1.3): 64-bit arithmetic on, device memory preallocation off.
"""

from ...jaxshim import config

# The paper's "only two modifications to JAX default settings".
config.update("enable_x64", True)
config.update("preallocate_memory", False)

from . import (  # noqa: F401,E402  (registration side effects)
    pointing_detector,
    stokes_weights_I,
    stokes_weights_IQU,
    pixels_healpix,
    scan_map,
    noise_weight,
    build_noise_weighted,
    template_offset_add_to_signal,
    template_offset_project_signal,
    template_offset_apply_diag_precond,
    cov_accum,
)
from . import megabatch  # noqa: F401,E402  (stacked registration side effects)
