"""Megabatch (observation-stacked) jaxshim kernels.

Each entry point keeps the per-observation signature — ``"stack"``
arguments simply carry a leading ``n_obs`` axis and intervals arrive as
``(n_obs, n_ivl)`` padded slabs — and lowers to a *single* traced
launch via the shim's real batching rules: the per-observation compiled
functions are wrapped in one more ``vmap`` over the observation axis,
so nested detector×observation batching composes into stacked
primitives instead of Python loops (the whole-program transformation
the paper credits for JAX's launch-overhead amortization).

Scatter kernels cannot be blind outer-vmaps: vmapping the whole
per-observation function would batch the GLOBAL accumulator too,
producing per-observation copies instead of the eager loop's sequential
updates.  They instead vmap only the contribution *computation* and
commit with one top-level scatter-add whose lanes are ordered
observation-major, then in each observation's canonical order
(sample-major detector-inner for ``build_noise_weighted``,
detector-major for the covariance accumulators) — exactly the sequence
the eager loop performs, so accumulation is bitwise identical.
"""

import numpy as np

from ...core.dispatch import ImplementationType, megabatch_kernel
from ...jaxshim import jit, jnp, vmap
from ..common import pad_intervals_grouped, resolve_view
from .build_noise_weighted import _build_noise_weighted_compiled
from .noise_weight import _noise_weight_compiled
from .pixels_healpix import _pixels_healpix_compiled
from .pointing_detector import _pointing_detector_compiled
from .scan_map import _scan_map_compiled
from .stokes_weights_I import _stokes_I_compiled
from .stokes_weights_IQU import _stokes_IQU_compiled

JAX = ImplementationType.JAX


def _flat_lanes(starts, stops):
    """(flat index, valid mask, max_len, rows-with-work) per group member.

    Invalid lanes — interval padding *and* whole degenerate rows padded
    in by shorter group members — are redirected to the observation's
    first valid sample, so a set-style kernel's "dummy work" rewrites a
    value some valid lane also writes (the eager clamping convention,
    extended across the group's rectangular slab).  Observations with no
    valid lanes at all (``any_valid`` False) must not be written back:
    their eager call was a no-op.
    """
    idx, valid, max_len = pad_intervals_grouped(starts, stops)
    n_obs = idx.shape[0]
    flat = idx.reshape(n_obs, -1)
    vmask = valid.reshape(n_obs, -1)
    if max_len == 0:
        return flat, vmask, 0, np.zeros(n_obs, dtype=bool)
    any_valid = vmask.any(axis=1)
    anchor = np.where(
        any_valid, flat[np.arange(n_obs), np.argmax(vmask, axis=1)], 0
    )
    flat = np.where(vmask, flat, anchor[:, None])
    return flat, vmask, max_len, any_valid


def _gather_rows(shared, flat):
    """Per-observation gather of a stacked shared array at flat lanes."""
    return np.take_along_axis(np.asarray(shared), flat, axis=1)


# -- elementwise / gather: outer vmap over the per-observation kernels ------


@jit
def _pointing_detector_mb(fp_quats, boresight, quats, flat, flagged):
    return vmap(_pointing_detector_compiled)(
        fp_quats, boresight, quats, flat, flagged
    )


@megabatch_kernel("pointing_detector", JAX)
def pointing_detector(
    fp_quats,
    boresight,
    quats_out,
    starts,
    stops,
    shared_flags=None,
    mask=0,
    accel=None,
    use_accel=False,
):
    flat, _, max_len, rows = _flat_lanes(starts, stops)
    if max_len == 0:
        return
    if shared_flags is not None and mask:
        flagged = (_gather_rows(shared_flags, flat) & mask) != 0
    else:
        flagged = np.zeros(flat.shape, dtype=bool)
    result = np.asarray(
        _pointing_detector_mb(fp_quats, boresight, quats_out, flat, flagged)
    )
    quats_out[rows] = result[rows]


@megabatch_kernel("stokes_weights_I", JAX)
def stokes_weights_I(
    weights_out,
    cal,
    starts,
    stops,
    accel=None,
    use_accel=False,
):
    flat, _, max_len, rows = _flat_lanes(starts, stops)
    if max_len == 0:
        return
    result = np.asarray(_stokes_I_mb(weights_out, flat, float(cal)))
    weights_out[rows] = result[rows]


@jit(static_argnums=(2,))
def _stokes_I_mb(weights, flat, cal):
    return vmap(lambda w, fl: _stokes_I_compiled(w, fl, cal))(weights, flat)


@jit(static_argnums=(5,))
def _stokes_IQU_mb(quats, weights, hwp, epsilon, flat, cal):
    return vmap(
        lambda q, w, h, e, fl: _stokes_IQU_compiled(q, w, h, e, fl, cal)
    )(quats, weights, hwp, epsilon, flat)


@megabatch_kernel("stokes_weights_IQU", JAX)
def stokes_weights_IQU(
    quats,
    weights_out,
    hwp_angle,
    epsilon,
    cal,
    starts,
    stops,
    accel=None,
    use_accel=False,
):
    flat, _, max_len, rows = _flat_lanes(starts, stops)
    if max_len == 0:
        return
    n_obs, _, n_samples = quats.shape[:3]
    hwp = (
        hwp_angle
        if hwp_angle is not None
        else np.zeros((n_obs, n_samples))
    )
    result = np.asarray(
        _stokes_IQU_mb(quats, weights_out, hwp, epsilon, flat, float(cal))
    )
    weights_out[rows] = result[rows]


@jit(static_argnums=(2, 3))
def _pixels_healpix_mb(quats, pixels, nside, nest, flat, flagged):
    return vmap(
        lambda q, p, fl, fg: _pixels_healpix_compiled(q, p, nside, nest, fl, fg)
    )(quats, pixels, flat, flagged)


@megabatch_kernel("pixels_healpix", JAX)
def pixels_healpix(
    quats,
    pixels_out,
    nside,
    nest,
    starts,
    stops,
    shared_flags=None,
    mask=0,
    accel=None,
    use_accel=False,
):
    flat, _, max_len, rows = _flat_lanes(starts, stops)
    if max_len == 0:
        return
    if shared_flags is not None and mask:
        flagged = (_gather_rows(shared_flags, flat) & mask) != 0
    else:
        flagged = np.zeros(flat.shape, dtype=bool)
    result = np.asarray(
        _pixels_healpix_mb(
            quats, pixels_out, int(nside), bool(nest), flat, flagged
        )
    )
    pixels_out[rows] = result[rows]


@jit(static_argnums=(6, 7, 8))
def _scan_map_mb(
    map_data, pixels, weights, tod, flat, valid, should_zero, should_subtract, data_scale
):
    return vmap(
        lambda p, w, t, fl, v: _scan_map_compiled(
            map_data, p, w, t, fl, v, should_zero, should_subtract, data_scale
        )
    )(pixels, weights, tod, flat, valid)


@megabatch_kernel("scan_map", JAX)
def scan_map(
    map_data,
    pixels,
    weights,
    tod,
    starts,
    stops,
    data_scale=1.0,
    should_zero=False,
    should_subtract=False,
    accel=None,
    use_accel=False,
):
    flat, valid, max_len, rows = _flat_lanes(starts, stops)
    if max_len == 0:
        return
    result = np.asarray(
        _scan_map_mb(
            resolve_view(accel, map_data, use_accel),
            pixels,
            weights,
            tod,
            flat,
            valid,
            bool(should_zero),
            bool(should_subtract),
            float(data_scale),
        )
    )
    tod[rows] = result[rows]


@jit
def _noise_weight_mb(tod, det_weights, flat):
    return vmap(_noise_weight_compiled)(tod, det_weights, flat)


@megabatch_kernel("noise_weight", JAX)
def noise_weight(
    tod,
    det_weights,
    starts,
    stops,
    accel=None,
    use_accel=False,
):
    flat, _, max_len, rows = _flat_lanes(starts, stops)
    if max_len == 0:
        return
    result = np.asarray(_noise_weight_mb(tod, det_weights, flat))
    tod[rows] = result[rows]


# -- scatter: vmapped contributions, one ordered top-level commit -----------


@jit
def _build_noise_weighted_mb(
    zmap, pixels, weights, tod, det_scale, good_det, flat, good_lane
):
    def per_obs(pix_o, w_o, tod_o, scale_o, gdet_o, flat_o, glane_o):
        def per_detector(pix_row, w_row, tod_row, scale, good_row):
            pix = jnp.take(pix_row, flat_o)
            good = jnp.logical_and(pix >= 0, glane_o)
            good = jnp.logical_and(good, good_row)
            z = scale * jnp.take(tod_row, flat_o)
            contrib = z[:, None] * jnp.take(w_row, flat_o)
            contrib = jnp.where(good[:, None], contrib, 0.0)
            return jnp.where(good, pix, 0), contrib

        pix_all, contrib_all = vmap(per_detector)(
            pix_o, w_o, tod_o, scale_o, gdet_o
        )
        # Each observation's canonical order: sample-major, detector inner.
        return jnp.transpose(pix_all), jnp.transpose(contrib_all, (1, 0, 2))

    pix_t, contrib_t = vmap(per_obs)(
        pixels, weights, tod, det_scale, good_det, flat, good_lane
    )
    n_obs, n_lane, n_det = pix_t.shape
    nnz = contrib_t.shape[3]
    n_total = n_obs * n_lane * n_det
    # One scatter whose lane order is observation-major then the eager
    # per-observation sequence: the accumulation is bitwise identical to
    # running the group members one at a time.
    return zmap.at[jnp.reshape(pix_t, (n_total,))].add(
        jnp.reshape(contrib_t, (n_total, nnz))
    )


@megabatch_kernel("build_noise_weighted", JAX)
def build_noise_weighted(
    zmap,
    pixels,
    weights,
    tod,
    det_scale,
    starts,
    stops,
    shared_flags=None,
    mask=0,
    det_flags=None,
    det_mask=0,
    accel=None,
    use_accel=False,
):
    flat, valid, max_len, _rows = _flat_lanes(starts, stops)
    if max_len == 0:
        return
    good_lane = valid
    if shared_flags is not None and mask:
        good_lane = good_lane & ((_gather_rows(shared_flags, flat) & mask) == 0)
    n_obs, n_det = pixels.shape[:2]
    if det_flags is not None and det_mask:
        good_det = np.stack(
            [
                (det_flags[i][:, flat[i]] & det_mask) == 0
                for i in range(n_obs)
            ]
        )
    else:
        good_det = np.ones((n_obs, n_det, flat.shape[1]), dtype=bool)
    out = resolve_view(accel, zmap, use_accel)
    out[:] = _build_noise_weighted_mb(
        out, pixels, weights, tod, det_scale, good_det, flat, good_lane
    )


@jit
def _cov_hits_mb(hits, pixels, flat, valid):
    def per_obs(pix_o, flat_o, valid_o):
        def per_detector(pix_row):
            pix = jnp.take(pix_row, flat_o)
            good = jnp.logical_and(pix >= 0, valid_o)
            return jnp.where(good, pix, 0), jnp.where(good, 1, 0)

        return vmap(per_detector)(pix_o)

    pix_all, one_all = vmap(per_obs)(pixels, flat, valid)
    n_obs, n_det, n_lane = pix_all.shape
    n_total = n_obs * n_det * n_lane
    # Observation-major, detector-major: the eager kernel's own order.
    return hits.at[jnp.reshape(pix_all, (n_total,))].add(
        jnp.reshape(one_all, (n_total,))
    )


@megabatch_kernel("cov_accum_diag_hits", JAX)
def cov_accum_diag_hits(
    hits,
    pixels,
    starts,
    stops,
    accel=None,
    use_accel=False,
):
    flat, valid, max_len, _rows = _flat_lanes(starts, stops)
    if max_len == 0:
        return
    out = resolve_view(accel, hits, use_accel)
    out[:] = _cov_hits_mb(out, pixels, flat, valid)


@jit(static_argnums=(4,))
def _cov_invnpp_mb(invnpp, pixels, weights, det_scale, nnz, flat, valid):
    tri = [(i, j) for i in range(nnz) for j in range(i, nnz)]

    def per_obs(pix_o, w_o, scale_o, flat_o, valid_o):
        def per_detector(pix_row, w_row, g):
            pix = jnp.take(pix_row, flat_o)
            good = jnp.logical_and(pix >= 0, valid_o)
            w = jnp.take(w_row, flat_o)
            cols = [g * w[:, i] * w[:, j] for i, j in tri]
            outer = jnp.stack(cols, axis=1)
            outer = jnp.where(good[:, None], outer, 0.0)
            return jnp.where(good, pix, 0), outer

        return vmap(per_detector)(pix_o, w_o, scale_o)

    pix_all, outer_all = vmap(per_obs)(pixels, weights, det_scale, flat, valid)
    n_obs, n_det, n_lane = pix_all.shape
    n_tri = outer_all.shape[3]
    n_total = n_obs * n_det * n_lane
    return invnpp.at[jnp.reshape(pix_all, (n_total,))].add(
        jnp.reshape(outer_all, (n_total, n_tri))
    )


@megabatch_kernel("cov_accum_diag_invnpp", JAX)
def cov_accum_diag_invnpp(
    invnpp,
    pixels,
    weights,
    det_scale,
    starts,
    stops,
    accel=None,
    use_accel=False,
):
    flat, valid, max_len, _rows = _flat_lanes(starts, stops)
    if max_len == 0:
        return
    out = resolve_view(accel, invnpp, use_accel)
    out[:] = _cov_invnpp_mb(
        out,
        pixels,
        weights,
        det_scale,
        int(weights.shape[3]),
        flat,
        valid,
    )
