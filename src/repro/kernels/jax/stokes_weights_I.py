"""stokes_weights_I, jaxshim implementation."""

from ...core.dispatch import ImplementationType, kernel
from ...jaxshim import jit, jnp, vmap
from ..common import pad_intervals, resolve_view


@jit
def _stokes_I_compiled(weights, flat, cal):
    def per_detector(row):
        return row.at[flat].set(cal)

    return vmap(per_detector)(weights)


@kernel("stokes_weights_I", ImplementationType.JAX)
def stokes_weights_I(
    weights_out,
    cal,
    starts,
    stops,
    accel=None,
    use_accel=False,
):
    idx, _, max_len = pad_intervals(starts, stops)
    if max_len == 0:
        return
    out = resolve_view(accel, weights_out, use_accel)
    out[:] = _stokes_I_compiled(out, idx.reshape(-1), float(cal))
