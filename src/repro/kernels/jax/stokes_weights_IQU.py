"""stokes_weights_IQU, jaxshim implementation."""

import numpy as np

from ...core.dispatch import ImplementationType, kernel
from ...jaxshim import jit, jnp, vmap
from ..common import pad_intervals, resolve_view
from . import qarray


@jit
def _stokes_IQU_compiled(quats, weights, hwp, epsilon, flat, cal):
    hwp_flat = jnp.take(hwp, flat)

    def per_detector(q_row, eps, w_row):
        q = jnp.take(q_row, flat)  # (M, 4)
        eta = (1.0 - eps) / (1.0 + eps)
        angle = qarray.position_angle(q) + 2.0 * hwp_flat
        w_i = jnp.broadcast_to(cal, angle.shape)
        w_q = cal * eta * jnp.cos(2.0 * angle)
        w_u = cal * eta * jnp.sin(2.0 * angle)
        return w_row.at[flat].set(jnp.stack([w_i, w_q, w_u], axis=1))

    return vmap(per_detector)(quats, epsilon, weights)


@kernel("stokes_weights_IQU", ImplementationType.JAX)
def stokes_weights_IQU(
    quats,
    weights_out,
    hwp_angle,
    epsilon,
    cal,
    starts,
    stops,
    accel=None,
    use_accel=False,
):
    idx, _, max_len = pad_intervals(starts, stops)
    if max_len == 0:
        return
    n_samples = quats.shape[1]
    hwp = hwp_angle if hwp_angle is not None else np.zeros(n_samples)
    out = resolve_view(accel, weights_out, use_accel)
    out[:] = _stokes_IQU_compiled(
        resolve_view(accel, quats, use_accel),
        out,
        resolve_view(accel, hwp, use_accel),
        resolve_view(accel, epsilon, use_accel),
        idx.reshape(-1),
        float(cal),
    )
