"""build_noise_weighted, jaxshim implementation.

All detectors' contributions are computed with vmap, then a single
scatter-add accumulates them into the shared map -- the functional
replacement for the compiled kernel's atomic adds.  The scatter lanes are
transposed to sample-major (detector inner) order before the add: this is
the repo-wide canonical accumulation order, which makes windowed streaming
over the sample axis bitwise identical to a full-observation run.
"""

import numpy as np

from ...core.dispatch import ImplementationType, kernel
from ...jaxshim import jit, jnp, vmap
from ..common import pad_intervals, resolve_view


@jit
def _build_noise_weighted_compiled(
    zmap, pixels, weights, tod, det_scale, good_det, flat, good_lane
):
    def per_detector(pix_row, w_row, tod_row, scale, good_row):
        pix = jnp.take(pix_row, flat)
        good = jnp.logical_and(pix >= 0, good_lane)
        good = jnp.logical_and(good, good_row)
        z = scale * jnp.take(tod_row, flat)
        contrib = z[:, None] * jnp.take(w_row, flat)  # (M, nnz)
        contrib = jnp.where(good[:, None], contrib, 0.0)
        return jnp.where(good, pix, 0), contrib

    pix_all, contrib_all = vmap(per_detector)(
        pixels, weights, tod, det_scale, good_det
    )
    n_total = pix_all.shape[0] * pix_all.shape[1]
    nnz = contrib_all.shape[2]
    # Transpose so samples are the outer reshape axis: the scatter then
    # applies contributions sample-major, detector inner.
    pix_t = jnp.transpose(pix_all)
    contrib_t = jnp.transpose(contrib_all, (1, 0, 2))
    return zmap.at[jnp.reshape(pix_t, (n_total,))].add(
        jnp.reshape(contrib_t, (n_total, nnz))
    )


@kernel("build_noise_weighted", ImplementationType.JAX)
def build_noise_weighted(
    zmap,
    pixels,
    weights,
    tod,
    det_scale,
    starts,
    stops,
    shared_flags=None,
    mask=0,
    det_flags=None,
    det_mask=0,
    accel=None,
    use_accel=False,
):
    idx, valid, max_len = pad_intervals(starts, stops)
    if max_len == 0:
        return
    flat = idx.reshape(-1)
    good_lane = valid.reshape(-1)
    if shared_flags is not None and mask:
        good_lane = good_lane & ((shared_flags[flat] & mask) == 0)
    # Per-detector goodness, gathered onto the padded lanes.
    if det_flags is not None and det_mask:
        good_det = (det_flags[:, flat] & det_mask) == 0
    else:
        good_det = np.ones((pixels.shape[0], flat.shape[0]), dtype=bool)

    out = resolve_view(accel, zmap, use_accel)
    out[:] = _build_noise_weighted_compiled(
        out,
        resolve_view(accel, pixels, use_accel),
        resolve_view(accel, weights, use_accel),
        resolve_view(accel, tod, use_accel),
        resolve_view(accel, det_scale, use_accel),
        good_det,
        flat,
        good_lane,
    )
