"""noise_weight, jaxshim implementation."""

from ...core.dispatch import ImplementationType, kernel
from ...jaxshim import jit, jnp, vmap
from ..common import pad_intervals, resolve_view


@jit
def _noise_weight_compiled(tod, det_weights, flat):
    def per_detector(row, w):
        scaled = jnp.take(row, flat) * w
        # set (not multiply): padding lanes duplicate a valid sample and
        # must write the same value, not scale it twice.
        return row.at[flat].set(scaled)

    return vmap(per_detector)(tod, det_weights)


@kernel("noise_weight", ImplementationType.JAX)
def noise_weight(
    tod,
    det_weights,
    starts,
    stops,
    accel=None,
    use_accel=False,
):
    idx, _, max_len = pad_intervals(starts, stops)
    if max_len == 0:
        return
    out = resolve_view(accel, tod, use_accel)
    out[:] = _noise_weight_compiled(
        out, resolve_view(accel, det_weights, use_accel), idx.reshape(-1)
    )
