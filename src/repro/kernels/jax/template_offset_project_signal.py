"""template_offset_project_signal, jaxshim implementation.

The kernel the XLA compiler rewrites best (§4.2: a 45x speedup, beating
the OpenMP port): the per-step dot products become a batched gather plus
one large scatter-add.
"""

from ...core.dispatch import ImplementationType, kernel
from ...jaxshim import jit, jnp, vmap
from ..common import pad_intervals, resolve_view


@jit(static_argnums=(0,))
def _offset_project_compiled(step_length, tod, amp_offsets, amplitudes, flat, valid):
    step_of_sample = flat // step_length

    def per_detector(offset, tod_row):
        vals = jnp.where(valid, jnp.take(tod_row, flat), 0.0)
        return offset + step_of_sample, vals

    amp_idx, vals = vmap(per_detector)(amp_offsets, tod)
    n_total = amp_idx.shape[0] * amp_idx.shape[1]
    return amplitudes.at[jnp.reshape(amp_idx, (n_total,))].add(
        jnp.reshape(vals, (n_total,))
    )


@kernel("template_offset_project_signal", ImplementationType.JAX)
def template_offset_project_signal(
    step_length,
    tod,
    amplitudes,
    amp_offsets,
    starts,
    stops,
    accel=None,
    use_accel=False,
):
    idx, valid, max_len = pad_intervals(starts, stops)
    if max_len == 0:
        return
    out = resolve_view(accel, amplitudes, use_accel)
    out[:] = _offset_project_compiled(
        int(step_length),
        resolve_view(accel, tod, use_accel),
        resolve_view(accel, amp_offsets, use_accel),
        out,
        idx.reshape(-1),
        valid.reshape(-1),
    )
