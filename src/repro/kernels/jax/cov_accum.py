"""cov_accum_diag_hits / cov_accum_diag_invnpp, jaxshim implementation."""

from ...core.dispatch import ImplementationType, kernel
from ...jaxshim import jit, jnp, vmap
from ..common import pad_intervals, resolve_view


@jit
def _cov_hits_compiled(hits, pixels, flat, valid):
    def per_detector(pix_row):
        pix = jnp.take(pix_row, flat)
        good = jnp.logical_and(pix >= 0, valid)
        return jnp.where(good, pix, 0), jnp.where(good, 1, 0)

    pix_all, one_all = vmap(per_detector)(pixels)
    n_total = pix_all.shape[0] * pix_all.shape[1]
    return hits.at[jnp.reshape(pix_all, (n_total,))].add(
        jnp.reshape(one_all, (n_total,))
    )


@kernel("cov_accum_diag_hits", ImplementationType.JAX)
def cov_accum_diag_hits(
    hits,
    pixels,
    starts,
    stops,
    accel=None,
    use_accel=False,
):
    idx, valid, max_len = pad_intervals(starts, stops)
    if max_len == 0:
        return
    out = resolve_view(accel, hits, use_accel)
    out[:] = _cov_hits_compiled(
        out,
        resolve_view(accel, pixels, use_accel),
        idx.reshape(-1),
        valid.reshape(-1),
    )


@jit(static_argnums=(4,))
def _cov_invnpp_compiled(invnpp, pixels, weights, det_scale, nnz, flat, valid):
    tri = [(i, j) for i in range(nnz) for j in range(i, nnz)]

    def per_detector(pix_row, w_row, g):
        pix = jnp.take(pix_row, flat)
        good = jnp.logical_and(pix >= 0, valid)
        w = jnp.take(w_row, flat)  # (M, nnz)
        cols = [g * w[:, i] * w[:, j] for i, j in tri]
        outer = jnp.stack(cols, axis=1)
        outer = jnp.where(good[:, None], outer, 0.0)
        return jnp.where(good, pix, 0), outer

    pix_all, outer_all = vmap(per_detector)(pixels, weights, det_scale)
    n_total = pix_all.shape[0] * pix_all.shape[1]
    n_tri = outer_all.shape[2]
    return invnpp.at[jnp.reshape(pix_all, (n_total,))].add(
        jnp.reshape(outer_all, (n_total, n_tri))
    )


@kernel("cov_accum_diag_invnpp", ImplementationType.JAX)
def cov_accum_diag_invnpp(
    invnpp,
    pixels,
    weights,
    det_scale,
    starts,
    stops,
    accel=None,
    use_accel=False,
):
    idx, valid, max_len = pad_intervals(starts, stops)
    if max_len == 0:
        return
    out = resolve_view(accel, invnpp, use_accel)
    out[:] = _cov_invnpp_compiled(
        out,
        resolve_view(accel, pixels, use_accel),
        resolve_view(accel, weights, use_accel),
        resolve_view(accel, det_scale, use_accel),
        int(weights.shape[2]),
        idx.reshape(-1),
        valid.reshape(-1),
    )
