"""scan_map, jaxshim implementation.

The per-sample map lookup becomes a gather plus a weighted contraction --
the kind of kernel XLA is free to re-express as linear algebra (§4.2 notes
this for the offset projection kernel).
"""

from ...core.dispatch import ImplementationType, kernel
from ...jaxshim import jit, jnp, vmap
from ..common import pad_intervals, resolve_view


@jit(static_argnums=(6, 7))
def _scan_map_compiled(
    map_data, pixels, weights, tod, flat, valid, should_zero, should_subtract, data_scale
):
    def per_detector(pix_row, w_row, tod_row):
        pix = jnp.take(pix_row, flat)
        good = jnp.logical_and(pix >= 0, valid)
        sampled = jnp.take(map_data, jnp.where(good, pix, 0))  # (M, nnz)
        w = jnp.take(w_row, flat)  # (M, nnz)
        value = jnp.sum(sampled * w, axis=1) * data_scale
        value = jnp.where(good, value, 0.0)
        if should_subtract:
            value = -value
        if should_zero:
            tod_row = tod_row.at[flat].set(0.0)
        return tod_row.at[flat].add(value)

    return vmap(per_detector)(pixels, weights, tod)


@kernel("scan_map", ImplementationType.JAX)
def scan_map(
    map_data,
    pixels,
    weights,
    tod,
    starts,
    stops,
    data_scale=1.0,
    should_zero=False,
    should_subtract=False,
    accel=None,
    use_accel=False,
):
    idx, valid, max_len = pad_intervals(starts, stops)
    if max_len == 0:
        return
    out = resolve_view(accel, tod, use_accel)
    out[:] = _scan_map_compiled(
        resolve_view(accel, map_data, use_accel),
        resolve_view(accel, pixels, use_accel),
        resolve_view(accel, weights, use_accel),
        out,
        idx.reshape(-1),
        valid.reshape(-1),
        bool(should_zero),
        bool(should_subtract),
        float(data_scale),
    )
