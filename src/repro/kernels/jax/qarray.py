"""Quaternion algebra expressed in jnp operations (traceable).

The same math as :mod:`repro.math.quaternion`, written against the jaxshim
API so it can run inside jit/vmap transformations.
"""

from __future__ import annotations

from ...jaxshim import jnp

__all__ = ["mult", "rotate_zaxis", "rotate_xaxis", "to_position", "position_angle"]


def mult(p, q):
    """Hamilton product over (..., 4) arrays."""
    px, py, pz, pw = p[..., 0], p[..., 1], p[..., 2], p[..., 3]
    qx, qy, qz, qw = q[..., 0], q[..., 1], q[..., 2], q[..., 3]
    return jnp.stack(
        [
            pw * qx + px * qw + py * qz - pz * qy,
            pw * qy - px * qz + py * qw + pz * qx,
            pw * qz + px * qy - py * qx + pz * qw,
            pw * qw - px * qx - py * qy - pz * qz,
        ],
        axis=-1,
    )


def rotate_zaxis(q):
    """Direction vector: the unit z axis rotated by q."""
    x, y, z, w = q[..., 0], q[..., 1], q[..., 2], q[..., 3]
    return jnp.stack(
        [2.0 * (x * z + w * y), 2.0 * (y * z - w * x), 1.0 - 2.0 * (x * x + y * y)],
        axis=-1,
    )


def rotate_xaxis(q):
    """Orientation vector: the unit x axis rotated by q."""
    x, y, z, w = q[..., 0], q[..., 1], q[..., 2], q[..., 3]
    return jnp.stack(
        [1.0 - 2.0 * (y * y + z * z), 2.0 * (x * y + w * z), 2.0 * (x * z - w * y)],
        axis=-1,
    )


def to_position(q):
    """(theta, phi) of the rotated z axis."""
    d = rotate_zaxis(q)
    z = jnp.clip(d[..., 2], -1.0, 1.0)
    return jnp.arccos(z), jnp.arctan2(d[..., 1], d[..., 0])


def position_angle(q):
    """The polarization position angle (see qa.to_angles' derivation)."""
    d = rotate_zaxis(q)
    o = rotate_xaxis(q)
    dx, dy, dz = d[..., 0], d[..., 1], d[..., 2]
    ox, oy, oz = o[..., 0], o[..., 1], o[..., 2]
    pa_y = oy * dx - ox * dy
    pa_x = oz * (dx * dx + dy * dy) - dz * (ox * dx + oy * dy)
    polar = (dx * dx + dy * dy) < 1.0e-24
    return jnp.where(
        polar, jnp.arctan2(oy, ox), jnp.arctan2(pa_y, -pa_x)
    )
