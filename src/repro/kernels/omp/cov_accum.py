"""cov_accum_diag_hits / cov_accum_diag_invnpp, OpenMP Target Offload."""

import numpy as np

from ...core.dispatch import ImplementationType, kernel
from ..common import launcher_for, resolve_view


@kernel("cov_accum_diag_hits", ImplementationType.OMP_TARGET)
def cov_accum_diag_hits(
    hits,
    pixels,
    starts,
    stops,
    accel=None,
    use_accel=False,
):
    n_det = pixels.shape[0]
    n_ivl = len(starts)
    max_len = int(np.max(stops - starts)) if n_ivl else 0
    if max_len == 0:
        return

    d_hits = resolve_view(accel, hits, use_accel)
    d_pix = resolve_view(accel, pixels, use_accel)

    def body(idet, iivl, lanes):
        start = starts[iivl]
        stop = stops[iivl]
        s = start + lanes[lanes < stop - start]
        pix = d_pix[idet, s]
        good = pix >= 0
        np.add.at(d_hits, pix[good], 1)

    launcher_for(accel, use_accel)(
        "cov_accum_diag_hits",
        (n_det, n_ivl, max_len),
        body,
        flops_per_iteration=2.0,
        bytes_per_iteration=24.0,
    )


@kernel("cov_accum_diag_invnpp", ImplementationType.OMP_TARGET)
def cov_accum_diag_invnpp(
    invnpp,
    pixels,
    weights,
    det_scale,
    starts,
    stops,
    accel=None,
    use_accel=False,
):
    n_det = pixels.shape[0]
    n_ivl = len(starts)
    max_len = int(np.max(stops - starts)) if n_ivl else 0
    if max_len == 0:
        return
    nnz = weights.shape[2]
    tri = [(i, j) for i in range(nnz) for j in range(i, nnz)]

    d_inv = resolve_view(accel, invnpp, use_accel)
    d_pix = resolve_view(accel, pixels, use_accel)
    d_wts = resolve_view(accel, weights, use_accel)
    d_scale = resolve_view(accel, det_scale, use_accel)

    def body(idet, iivl, lanes):
        start = starts[iivl]
        stop = stops[iivl]
        s = start + lanes[lanes < stop - start]
        pix = d_pix[idet, s]
        good = pix >= 0
        p = pix[good]
        w = d_wts[idet, s][good]
        g = d_scale[idet]
        outer = np.stack([g * w[:, i] * w[:, j] for i, j in tri], axis=1)
        np.add.at(d_inv, p, outer)

    launcher_for(accel, use_accel)(
        "cov_accum_diag_invnpp",
        (n_det, n_ivl, max_len),
        body,
        flops_per_iteration=18.0,
        bytes_per_iteration=104.0,
    )
