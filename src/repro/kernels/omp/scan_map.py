"""scan_map, OpenMP Target Offload implementation."""

import numpy as np

from ...core.dispatch import ImplementationType, kernel
from ..common import launcher_for, resolve_view


@kernel("scan_map", ImplementationType.OMP_TARGET)
def scan_map(
    map_data,
    pixels,
    weights,
    tod,
    starts,
    stops,
    data_scale=1.0,
    should_zero=False,
    should_subtract=False,
    accel=None,
    use_accel=False,
):
    n_det = pixels.shape[0]
    n_ivl = len(starts)
    max_len = int(np.max(stops - starts)) if n_ivl else 0
    if max_len == 0:
        return

    d_map = resolve_view(accel, map_data, use_accel)
    d_pix = resolve_view(accel, pixels, use_accel)
    d_wts = resolve_view(accel, weights, use_accel)
    d_tod = resolve_view(accel, tod, use_accel)

    def body(idet, iivl, lanes):
        start = starts[iivl]
        stop = stops[iivl]
        s = start + lanes[lanes < stop - start]
        pix = d_pix[idet, s]
        good = pix >= 0
        value = np.einsum("sk,sk->s", d_map[np.where(good, pix, 0)], d_wts[idet, s])
        value = np.where(good, value, 0.0) * data_scale
        if should_zero:
            d_tod[idet, s] = 0.0
        if should_subtract:
            d_tod[idet, s] -= value
        else:
            d_tod[idet, s] += value

    launcher_for(accel, use_accel)(
        "scan_map",
        (n_det, n_ivl, max_len),
        body,
        flops_per_iteration=8.0,
        bytes_per_iteration=72.0,
    )
