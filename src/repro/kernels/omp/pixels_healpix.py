"""pixels_healpix, OpenMP Target Offload implementation.

The compiled kernel keeps its branches (the equatorial/polar split); GPUs
handle them better here than in the JAX port because each team's lanes
usually fall on the same side of the branch (§4.2: 41x vs 11x).
"""

import numpy as np

from ...core.dispatch import ImplementationType, kernel
from ...healpix import ang2pix
from ..common import launcher_for, resolve_view


@kernel("pixels_healpix", ImplementationType.OMP_TARGET)
def pixels_healpix(
    quats,
    pixels_out,
    nside,
    nest,
    starts,
    stops,
    shared_flags=None,
    mask=0,
    accel=None,
    use_accel=False,
):
    n_det = quats.shape[0]
    n_ivl = len(starts)
    max_len = int(np.max(stops - starts)) if n_ivl else 0
    if max_len == 0:
        return

    d_quats = resolve_view(accel, quats, use_accel)
    d_out = resolve_view(accel, pixels_out, use_accel)
    d_flags = resolve_view(accel, shared_flags, use_accel) if shared_flags is not None else None

    def body(idet, iivl, lanes):
        start = starts[iivl]
        stop = stops[iivl]
        s = start + lanes[lanes < stop - start]
        q = d_quats[idet, s]
        x, y, z, w = q[:, 0], q[:, 1], q[:, 2], q[:, 3]
        dir_x = 2.0 * (x * z + w * y)
        dir_y = 2.0 * (y * z - w * x)
        dir_z = 1.0 - 2.0 * (x * x + y * y)
        theta = np.arccos(np.clip(dir_z, -1.0, 1.0))
        phi = np.arctan2(dir_y, dir_x)
        pix = ang2pix(nside, theta, phi, nest=nest)
        if d_flags is not None and mask:
            flagged = (d_flags[s] & mask) != 0
            pix = np.where(flagged, np.int64(-1), pix)
        d_out[idet, s] = pix

    launcher_for(accel, use_accel)(
        "pixels_healpix",
        (n_det, n_ivl, max_len),
        body,
        flops_per_iteration=80.0,
        bytes_per_iteration=48.0,
    )
