"""OpenMP Target Offload kernel implementations (the paper's OMP port).

Each kernel keeps the compiled-CPU loop structure and adds the offload
machinery (paper §3.1.2): the triple (detector, interval, sample) loop is
collapsed and launched over the device through
``target_teams_distribute_parallel_for``; intervals are iterated at the
precomputed maximum interval size with an in-loop guard cutting
out-of-interval work; data is dereferenced through mapped device pointers.

Without a runtime (``use_accel=False``) the kernels run on the host --
OpenMP's fallback behaviour when no device is available.
"""

from . import (  # noqa: F401  (registration side effects)
    pointing_detector,
    stokes_weights_I,
    stokes_weights_IQU,
    pixels_healpix,
    scan_map,
    noise_weight,
    build_noise_weighted,
    template_offset_add_to_signal,
    template_offset_project_signal,
    template_offset_apply_diag_precond,
    cov_accum,
)
from . import megabatch  # noqa: F401  (stacked registration side effects)
