"""template_offset_apply_diag_precond, OpenMP Target Offload implementation."""

import numpy as np

from ...core.dispatch import ImplementationType, kernel
from ..common import launcher_for, resolve_view


@kernel("template_offset_apply_diag_precond", ImplementationType.OMP_TARGET)
def template_offset_apply_diag_precond(
    offset_var,
    amp_in,
    amp_out,
    accel=None,
    use_accel=False,
):
    n_amp = amp_in.shape[0]
    if n_amp == 0:
        return

    d_var = resolve_view(accel, offset_var, use_accel)
    d_in = resolve_view(accel, amp_in, use_accel)
    d_out = resolve_view(accel, amp_out, use_accel)

    def body(i, j, lanes):
        d_out[lanes] = d_in[lanes] * d_var[lanes]

    launcher_for(accel, use_accel)(
        "template_offset_apply_diag_precond",
        (1, 1, n_amp),
        body,
        flops_per_iteration=1.0,
        bytes_per_iteration=24.0,
    )
