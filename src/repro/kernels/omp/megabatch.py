"""Megabatch (observation-stacked) OpenMP Target Offload kernels.

One launcher call covers the whole observation group: the collapse(3)
grid's outer dimension becomes ``n_obs * n_det`` and each iteration
derives ``(iobs, idet)`` by division — the OpenMP way of stacking a
batch axis without changing the loop nest (cf. the paper's collapse
clauses).  Intervals arrive as ``(n_obs, n_ivl)`` padded slabs whose
degenerate ``(0, 0)`` rows contribute no valid lanes, so observations
with fewer (or zero) intervals cost only empty guard slices.

Scatter kernels keep the eager accumulation sequence: the grid iterates
observation-major with each observation's canonical order inside
(``build_noise_weighted`` buffers contributions and commits one ordered
``np.add.at`` in observation-major, sample-major, detector-inner
order), so stacking is bitwise identical to running the group members
one at a time.
"""

import numpy as np

from ...core.dispatch import ImplementationType, megabatch_kernel
from ...healpix import ang2pix
from ..common import launcher_for, resolve_view
from .pointing_detector import _qa_mult_one
from .stokes_weights_IQU import _position_angle

OMP = ImplementationType.OMP_TARGET


def _grid(starts, stops, n_det):
    """(n_obs*n_det, n_ivl, max_len) launch grid over the stacked slabs."""
    starts = np.asarray(starts)
    n_obs, n_ivl = starts.shape
    max_len = int(np.max(stops - starts)) if starts.size else 0
    max_len = max(max_len, 0)
    return n_obs, (n_obs * n_det, n_ivl, max_len)


@megabatch_kernel("pointing_detector", OMP)
def pointing_detector(
    fp_quats,
    boresight,
    quats_out,
    starts,
    stops,
    shared_flags=None,
    mask=0,
    accel=None,
    use_accel=False,
):
    n_det = fp_quats.shape[1]
    n_obs, grid = _grid(starts, stops, n_det)
    if grid[2] == 0:
        return

    def body(i, iivl, lanes):
        iobs, idet = divmod(i, n_det)
        start = starts[iobs, iivl]
        stop = stops[iobs, iivl]
        s = start + lanes[lanes < stop - start]
        rotated = _qa_mult_one(boresight[iobs, s], fp_quats[iobs, idet])
        if shared_flags is not None and mask:
            flagged = (shared_flags[iobs, s] & mask) != 0
            rotated = np.where(flagged[:, None], fp_quats[iobs, idet], rotated)
        quats_out[iobs, idet, s] = rotated

    launcher_for(accel, use_accel)(
        "pointing_detector.megabatch",
        grid,
        body,
        flops_per_iteration=28.0,
        bytes_per_iteration=72.0,
    )


@megabatch_kernel("stokes_weights_I", OMP)
def stokes_weights_I(
    weights_out,
    cal,
    starts,
    stops,
    accel=None,
    use_accel=False,
):
    n_det = weights_out.shape[1]
    n_obs, grid = _grid(starts, stops, n_det)
    if grid[2] == 0:
        return

    def body(i, iivl, lanes):
        iobs, idet = divmod(i, n_det)
        start = starts[iobs, iivl]
        stop = stops[iobs, iivl]
        s = start + lanes[lanes < stop - start]
        weights_out[iobs, idet, s] = cal

    launcher_for(accel, use_accel)(
        "stokes_weights_I.megabatch",
        grid,
        body,
        flops_per_iteration=1.0,
        bytes_per_iteration=8.0,
    )


@megabatch_kernel("stokes_weights_IQU", OMP)
def stokes_weights_IQU(
    quats,
    weights_out,
    hwp_angle,
    epsilon,
    cal,
    starts,
    stops,
    accel=None,
    use_accel=False,
):
    n_det = quats.shape[1]
    n_obs, grid = _grid(starts, stops, n_det)
    if grid[2] == 0:
        return

    def body(i, iivl, lanes):
        iobs, idet = divmod(i, n_det)
        start = starts[iobs, iivl]
        stop = stops[iobs, iivl]
        s = start + lanes[lanes < stop - start]
        eta = (1.0 - epsilon[iobs, idet]) / (1.0 + epsilon[iobs, idet])
        angle = _position_angle(quats[iobs, idet, s])
        if hwp_angle is not None:
            angle = angle + 2.0 * hwp_angle[iobs, s]
        weights_out[iobs, idet, s, 0] = cal
        weights_out[iobs, idet, s, 1] = cal * eta * np.cos(2.0 * angle)
        weights_out[iobs, idet, s, 2] = cal * eta * np.sin(2.0 * angle)

    launcher_for(accel, use_accel)(
        "stokes_weights_IQU.megabatch",
        grid,
        body,
        flops_per_iteration=60.0,
        bytes_per_iteration=64.0,
    )


@megabatch_kernel("pixels_healpix", OMP)
def pixels_healpix(
    quats,
    pixels_out,
    nside,
    nest,
    starts,
    stops,
    shared_flags=None,
    mask=0,
    accel=None,
    use_accel=False,
):
    n_det = quats.shape[1]
    n_obs, grid = _grid(starts, stops, n_det)
    if grid[2] == 0:
        return

    def body(i, iivl, lanes):
        iobs, idet = divmod(i, n_det)
        start = starts[iobs, iivl]
        stop = stops[iobs, iivl]
        s = start + lanes[lanes < stop - start]
        q = quats[iobs, idet, s]
        x, y, z, w = q[:, 0], q[:, 1], q[:, 2], q[:, 3]
        dir_x = 2.0 * (x * z + w * y)
        dir_y = 2.0 * (y * z - w * x)
        dir_z = 1.0 - 2.0 * (x * x + y * y)
        theta = np.arccos(np.clip(dir_z, -1.0, 1.0))
        phi = np.arctan2(dir_y, dir_x)
        pix = ang2pix(nside, theta, phi, nest=nest)
        if shared_flags is not None and mask:
            flagged = (shared_flags[iobs, s] & mask) != 0
            pix = np.where(flagged, np.int64(-1), pix)
        pixels_out[iobs, idet, s] = pix

    launcher_for(accel, use_accel)(
        "pixels_healpix.megabatch",
        grid,
        body,
        flops_per_iteration=80.0,
        bytes_per_iteration=48.0,
    )


@megabatch_kernel("scan_map", OMP)
def scan_map(
    map_data,
    pixels,
    weights,
    tod,
    starts,
    stops,
    data_scale=1.0,
    should_zero=False,
    should_subtract=False,
    accel=None,
    use_accel=False,
):
    n_det = pixels.shape[1]
    n_obs, grid = _grid(starts, stops, n_det)
    if grid[2] == 0:
        return
    d_map = resolve_view(accel, map_data, use_accel)

    def body(i, iivl, lanes):
        iobs, idet = divmod(i, n_det)
        start = starts[iobs, iivl]
        stop = stops[iobs, iivl]
        s = start + lanes[lanes < stop - start]
        pix = pixels[iobs, idet, s]
        good = pix >= 0
        value = np.einsum(
            "sk,sk->s", d_map[np.where(good, pix, 0)], weights[iobs, idet, s]
        )
        value = np.where(good, value, 0.0) * data_scale
        if should_zero:
            tod[iobs, idet, s] = 0.0
        if should_subtract:
            tod[iobs, idet, s] -= value
        else:
            tod[iobs, idet, s] += value

    launcher_for(accel, use_accel)(
        "scan_map.megabatch",
        grid,
        body,
        flops_per_iteration=8.0,
        bytes_per_iteration=72.0,
    )


@megabatch_kernel("noise_weight", OMP)
def noise_weight(
    tod,
    det_weights,
    starts,
    stops,
    accel=None,
    use_accel=False,
):
    n_det = tod.shape[1]
    n_obs, grid = _grid(starts, stops, n_det)
    if grid[2] == 0:
        return

    def body(i, iivl, lanes):
        iobs, idet = divmod(i, n_det)
        start = starts[iobs, iivl]
        stop = stops[iobs, iivl]
        s = start + lanes[lanes < stop - start]
        tod[iobs, idet, s] *= det_weights[iobs, idet]

    launcher_for(accel, use_accel)(
        "noise_weight.megabatch",
        grid,
        body,
        flops_per_iteration=1.0,
        bytes_per_iteration=16.0,
    )


@megabatch_kernel("build_noise_weighted", OMP)
def build_noise_weighted(
    zmap,
    pixels,
    weights,
    tod,
    det_scale,
    starts,
    stops,
    shared_flags=None,
    mask=0,
    det_flags=None,
    det_mask=0,
    accel=None,
    use_accel=False,
):
    n_det = pixels.shape[1]
    n_obs, grid = _grid(starts, stops, n_det)
    n_ivl, max_len = grid[1], grid[2]
    if max_len == 0:
        return
    d_zmap = resolve_view(accel, zmap, use_accel)
    nnz = d_zmap.shape[1]
    # Padded lanes stay (pixel 0, contribution 0.0): a no-op add.
    pix_buf = np.zeros((n_obs, n_det, n_ivl, max_len), dtype=np.int64)
    contrib_buf = np.zeros(
        (n_obs, n_det, n_ivl, max_len, nnz), dtype=d_zmap.dtype
    )

    def body(i, iivl, lanes):
        iobs, idet = divmod(i, n_det)
        start = starts[iobs, iivl]
        stop = stops[iobs, iivl]
        valid = lanes < stop - start
        s = start + lanes[valid]
        pix = pixels[iobs, idet, s]
        good = pix >= 0
        if shared_flags is not None and mask:
            good = good & ((shared_flags[iobs, s] & mask) == 0)
        if det_flags is not None and det_mask:
            good = good & ((det_flags[iobs, idet, s] & det_mask) == 0)
        z = det_scale[iobs, idet] * tod[iobs, idet, s]
        pix_buf[iobs, idet, iivl, valid] = np.where(good, pix, 0)
        contrib_buf[iobs, idet, iivl, valid] = np.where(
            good[:, None], z[:, None] * weights[iobs, idet, s], 0.0
        )

    launcher_for(accel, use_accel)(
        "build_noise_weighted.megabatch",
        grid,
        body,
        flops_per_iteration=10.0,
        bytes_per_iteration=96.0,
    )

    # Ordered commit: observation-major, then each observation's
    # canonical sample-major detector-inner sequence.
    pix_all = pix_buf.transpose(0, 2, 3, 1).reshape(-1)
    contrib_all = contrib_buf.transpose(0, 2, 3, 1, 4).reshape(-1, nnz)
    np.add.at(d_zmap, pix_all, contrib_all)


@megabatch_kernel("cov_accum_diag_hits", OMP)
def cov_accum_diag_hits(
    hits,
    pixels,
    starts,
    stops,
    accel=None,
    use_accel=False,
):
    n_det = pixels.shape[1]
    n_obs, grid = _grid(starts, stops, n_det)
    if grid[2] == 0:
        return
    d_hits = resolve_view(accel, hits, use_accel)

    def body(i, iivl, lanes):
        iobs, idet = divmod(i, n_det)
        start = starts[iobs, iivl]
        stop = stops[iobs, iivl]
        s = start + lanes[lanes < stop - start]
        pix = pixels[iobs, idet, s]
        good = pix >= 0
        np.add.at(d_hits, pix[good], 1)

    launcher_for(accel, use_accel)(
        "cov_accum_diag_hits.megabatch",
        grid,
        body,
        flops_per_iteration=2.0,
        bytes_per_iteration=24.0,
    )


@megabatch_kernel("cov_accum_diag_invnpp", OMP)
def cov_accum_diag_invnpp(
    invnpp,
    pixels,
    weights,
    det_scale,
    starts,
    stops,
    accel=None,
    use_accel=False,
):
    n_det = pixels.shape[1]
    n_obs, grid = _grid(starts, stops, n_det)
    if grid[2] == 0:
        return
    nnz = weights.shape[3]
    tri = [(i, j) for i in range(nnz) for j in range(i, nnz)]
    d_inv = resolve_view(accel, invnpp, use_accel)

    def body(i, iivl, lanes):
        iobs, idet = divmod(i, n_det)
        start = starts[iobs, iivl]
        stop = stops[iobs, iivl]
        s = start + lanes[lanes < stop - start]
        pix = pixels[iobs, idet, s]
        good = pix >= 0
        p = pix[good]
        w = weights[iobs, idet, s][good]
        g = det_scale[iobs, idet]
        outer = np.stack([g * w[:, i] * w[:, j] for i, j in tri], axis=1)
        np.add.at(d_inv, p, outer)

    launcher_for(accel, use_accel)(
        "cov_accum_diag_invnpp.megabatch",
        grid,
        body,
        flops_per_iteration=18.0,
        bytes_per_iteration=104.0,
    )
