"""stokes_weights_I, OpenMP Target Offload implementation."""

import numpy as np

from ...core.dispatch import ImplementationType, kernel
from ..common import launcher_for, resolve_view


@kernel("stokes_weights_I", ImplementationType.OMP_TARGET)
def stokes_weights_I(
    weights_out,
    cal,
    starts,
    stops,
    accel=None,
    use_accel=False,
):
    n_det = weights_out.shape[0]
    n_ivl = len(starts)
    max_len = int(np.max(stops - starts)) if n_ivl else 0
    if max_len == 0:
        return

    d_out = resolve_view(accel, weights_out, use_accel)

    def body(idet, iivl, lanes):
        start = starts[iivl]
        stop = stops[iivl]
        s = start + lanes[lanes < stop - start]
        d_out[idet, s] = cal

    launcher_for(accel, use_accel)(
        "stokes_weights_I",
        (n_det, n_ivl, max_len),
        body,
        flops_per_iteration=1.0,
        bytes_per_iteration=8.0,
    )
