"""stokes_weights_IQU, OpenMP Target Offload implementation."""

import numpy as np

from ...core.dispatch import ImplementationType, kernel
from ..common import launcher_for, resolve_view


def _position_angle(q):
    """Position angle from pointing quaternions, lane-vectorized."""
    x, y, z, w = q[..., 0], q[..., 1], q[..., 2], q[..., 3]
    dx = 2.0 * (x * z + w * y)
    dy = 2.0 * (y * z - w * x)
    dz = 1.0 - 2.0 * (x * x + y * y)
    ox = 1.0 - 2.0 * (y * y + z * z)
    oy = 2.0 * (x * y + w * z)
    oz = 2.0 * (x * z - w * y)
    pa_y = oy * dx - ox * dy
    pa_x = oz * (dx * dx + dy * dy) - dz * (ox * dx + oy * dy)
    polar = (dx * dx + dy * dy) < 1.0e-24
    return np.where(polar, np.arctan2(oy, ox), np.arctan2(pa_y, -pa_x))


@kernel("stokes_weights_IQU", ImplementationType.OMP_TARGET)
def stokes_weights_IQU(
    quats,
    weights_out,
    hwp_angle,
    epsilon,
    cal,
    starts,
    stops,
    accel=None,
    use_accel=False,
):
    n_det = quats.shape[0]
    n_ivl = len(starts)
    max_len = int(np.max(stops - starts)) if n_ivl else 0
    if max_len == 0:
        return

    d_quats = resolve_view(accel, quats, use_accel)
    d_out = resolve_view(accel, weights_out, use_accel)
    d_hwp = resolve_view(accel, hwp_angle, use_accel) if hwp_angle is not None else None
    d_eps = resolve_view(accel, epsilon, use_accel)

    def body(idet, iivl, lanes):
        start = starts[iivl]
        stop = stops[iivl]
        s = start + lanes[lanes < stop - start]
        eta = (1.0 - d_eps[idet]) / (1.0 + d_eps[idet])
        angle = _position_angle(d_quats[idet, s])
        if d_hwp is not None:
            angle = angle + 2.0 * d_hwp[s]
        d_out[idet, s, 0] = cal
        d_out[idet, s, 1] = cal * eta * np.cos(2.0 * angle)
        d_out[idet, s, 2] = cal * eta * np.sin(2.0 * angle)

    launcher_for(accel, use_accel)(
        "stokes_weights_IQU",
        (n_det, n_ivl, max_len),
        body,
        flops_per_iteration=60.0,
        bytes_per_iteration=64.0,
    )
