"""template_offset_project_signal, OpenMP Target Offload implementation.

A straight loop with atomic accumulation -- the structure the paper notes
loses to XLA's linear-algebra rewriting on this particular kernel (§4.2).
"""

import numpy as np

from ...core.dispatch import ImplementationType, kernel
from ..common import launcher_for, resolve_view


@kernel("template_offset_project_signal", ImplementationType.OMP_TARGET)
def template_offset_project_signal(
    step_length,
    tod,
    amplitudes,
    amp_offsets,
    starts,
    stops,
    accel=None,
    use_accel=False,
):
    n_det = tod.shape[0]
    n_ivl = len(starts)
    max_len = int(np.max(stops - starts)) if n_ivl else 0
    if max_len == 0:
        return

    d_tod = resolve_view(accel, tod, use_accel)
    d_amp = resolve_view(accel, amplitudes, use_accel)
    d_off = resolve_view(accel, amp_offsets, use_accel)

    def body(idet, iivl, lanes):
        start = starts[iivl]
        stop = stops[iivl]
        s = start + lanes[lanes < stop - start]
        amp_idx = d_off[idet] + s // step_length
        np.add.at(d_amp, amp_idx, d_tod[idet, s])

    launcher_for(accel, use_accel)(
        "template_offset_project_signal",
        (n_det, n_ivl, max_len),
        body,
        flops_per_iteration=3.0,
        bytes_per_iteration=24.0,
    )
