"""noise_weight, OpenMP Target Offload implementation."""

import numpy as np

from ...core.dispatch import ImplementationType, kernel
from ..common import launcher_for, resolve_view


@kernel("noise_weight", ImplementationType.OMP_TARGET)
def noise_weight(
    tod,
    det_weights,
    starts,
    stops,
    accel=None,
    use_accel=False,
):
    n_det = tod.shape[0]
    n_ivl = len(starts)
    max_len = int(np.max(stops - starts)) if n_ivl else 0
    if max_len == 0:
        return

    d_tod = resolve_view(accel, tod, use_accel)
    d_w = resolve_view(accel, det_weights, use_accel)

    def body(idet, iivl, lanes):
        start = starts[iivl]
        stop = stops[iivl]
        s = start + lanes[lanes < stop - start]
        d_tod[idet, s] *= d_w[idet]

    launcher_for(accel, use_accel)(
        "noise_weight",
        (n_det, n_ivl, max_len),
        body,
        flops_per_iteration=1.0,
        bytes_per_iteration=16.0,
    )
