"""pointing_detector, OpenMP Target Offload implementation."""

import numpy as np

from ...core.dispatch import ImplementationType, kernel
from ..common import launcher_for, resolve_view


def _qa_mult_one(p, q):
    """Scalar-style quaternion product, vectorized over the sample lanes."""
    px, py, pz, pw = p[..., 0], p[..., 1], p[..., 2], p[..., 3]
    qx, qy, qz, qw = q[0], q[1], q[2], q[3]
    out = np.empty(p.shape[:-1] + (4,), dtype=np.float64)
    out[..., 0] = pw * qx + px * qw + py * qz - pz * qy
    out[..., 1] = pw * qy - px * qz + py * qw + pz * qx
    out[..., 2] = pw * qz + px * qy - py * qx + pz * qw
    out[..., 3] = pw * qw - px * qx - py * qy - pz * qz
    return out


@kernel("pointing_detector", ImplementationType.OMP_TARGET)
def pointing_detector(
    fp_quats,
    boresight,
    quats_out,
    starts,
    stops,
    shared_flags=None,
    mask=0,
    accel=None,
    use_accel=False,
):
    n_det = fp_quats.shape[0]
    n_ivl = len(starts)
    max_len = int(np.max(stops - starts)) if n_ivl else 0
    if max_len == 0:
        return

    d_fp = resolve_view(accel, fp_quats, use_accel)
    d_bore = resolve_view(accel, boresight, use_accel)
    d_out = resolve_view(accel, quats_out, use_accel)
    d_flags = resolve_view(accel, shared_flags, use_accel) if shared_flags is not None else None

    def body(idet, iivl, lanes):
        start = starts[iivl]
        stop = stops[iivl]
        s = start + lanes[lanes < stop - start]  # the interval guard
        rotated = _qa_mult_one(d_bore[s], d_fp[idet])
        if d_flags is not None and mask:
            flagged = (d_flags[s] & mask) != 0
            rotated = np.where(flagged[:, None], d_fp[idet], rotated)
        d_out[idet, s] = rotated

    launcher_for(accel, use_accel)(
        "pointing_detector",
        (n_det, n_ivl, max_len),
        body,
        flops_per_iteration=28.0,
        bytes_per_iteration=72.0,
    )
