"""build_noise_weighted, OpenMP Target Offload implementation.

Each (detector, interval) launcher iteration computes its contributions
into a private slice of a scratch buffer -- write-disjoint, so iteration
order is free, as it is on the device.  The map commit is a single
unbuffered scatter (``np.add.at``) over the scratch in sample-major
(detector inner) order, standing in for the device kernel's atomic adds
with the repo-wide canonical accumulation order -- the order that makes
windowed streaming over the sample axis bitwise identical to a
full-observation run.
"""

import numpy as np

from ...core.dispatch import ImplementationType, kernel
from ..common import launcher_for, resolve_view


@kernel("build_noise_weighted", ImplementationType.OMP_TARGET)
def build_noise_weighted(
    zmap,
    pixels,
    weights,
    tod,
    det_scale,
    starts,
    stops,
    shared_flags=None,
    mask=0,
    det_flags=None,
    det_mask=0,
    accel=None,
    use_accel=False,
):
    n_det = pixels.shape[0]
    n_ivl = len(starts)
    max_len = int(np.max(stops - starts)) if n_ivl else 0
    if max_len == 0:
        return

    d_zmap = resolve_view(accel, zmap, use_accel)
    d_pix = resolve_view(accel, pixels, use_accel)
    d_wts = resolve_view(accel, weights, use_accel)
    d_tod = resolve_view(accel, tod, use_accel)
    d_scale = resolve_view(accel, det_scale, use_accel)
    d_flags = resolve_view(accel, shared_flags, use_accel) if shared_flags is not None else None
    d_det_flags = resolve_view(accel, det_flags, use_accel) if det_flags is not None else None

    nnz = d_zmap.shape[1]
    # Padded lanes stay (pixel 0, contribution 0.0): a no-op add.
    pix_buf = np.zeros((n_det, n_ivl, max_len), dtype=np.int64)
    contrib_buf = np.zeros((n_det, n_ivl, max_len, nnz), dtype=d_zmap.dtype)

    def body(idet, iivl, lanes):
        start = starts[iivl]
        stop = stops[iivl]
        valid = lanes < stop - start
        s = start + lanes[valid]
        pix = d_pix[idet, s]
        good = pix >= 0
        if d_flags is not None and mask:
            good = good & ((d_flags[s] & mask) == 0)
        if d_det_flags is not None and det_mask:
            good = good & ((d_det_flags[idet, s] & det_mask) == 0)
        z = d_scale[idet] * d_tod[idet, s]
        pix_buf[idet, iivl, valid] = np.where(good, pix, 0)
        contrib_buf[idet, iivl, valid] = np.where(
            good[:, None], z[:, None] * d_wts[idet, s], 0.0
        )

    launcher_for(accel, use_accel)(
        "build_noise_weighted",
        (n_det, n_ivl, max_len),
        body,
        flops_per_iteration=10.0,
        bytes_per_iteration=96.0,
    )

    # Ordered commit: intervals are sorted and lanes ascend within each,
    # so this enumerates samples in ascending order with detectors inner.
    pix_all = pix_buf.transpose(1, 2, 0).reshape(-1)
    contrib_all = contrib_buf.transpose(1, 2, 0, 3).reshape(-1, nnz)
    np.add.at(d_zmap, pix_all, contrib_all)
