"""Megabatch collection: stack per-observation kernel calls into one launch.

The paper's central finding is that JAX's whole-program transformation
model amortizes launch and dispatch overhead in ways per-kernel offload
cannot.  Our operators, like TOAST's, loop over observations and call
each kernel once per observation — so dispatch, JIT-cache lookup, and
launch overhead scale linearly with workload count.  The
:class:`MegabatchCollector` removes that scaling without rewriting any
operator: installed around an operator's ``exec`` (via
:func:`repro.core.dispatch.megabatch_collection`), it intercepts the
per-observation :class:`~repro.core.dispatch.BoundKernel` calls, defers
them, and at flush time groups compatible calls — same kernel, same
implementation, same scalar parameters, same array shapes — into a
single stacked launch with a leading ``n_obs`` axis.

Batch axes come from the :class:`~repro.kernels.spec.KernelSpec`:
``"stack"`` arguments (detdata/shared/focalplane/derived) are resolved
to their device views and stacked; ``"broadcast"`` arguments (scalars
and GLOBAL accumulators) are passed through once.  Interval lists are
padded to a common ``(n_obs, n_ivl)`` slab with degenerate ``(0, 0)``
rows (an observation with an empty interval list contributes an
all-masked slab — see :func:`repro.kernels.common.pad_intervals`).

Bitwise parity is the gate: a stacked launch must reproduce the eager
per-observation sequence exactly.  Three rules make that hold:

* GLOBAL accumulators are broadcast (never copied per observation) and
  stacked scatter kernels commit contributions in *observation-major,
  sample-major, detector-inner* order — the same ordered ``np.add.at``
  sequence the eager loop produces.
* Groups that cannot stack (singleton, no megabatch implementation for
  the backend, or a stacked launch raising) replay the deferred calls
  one-by-one in deferral order through the normal eager path.
* Only calls with no data hazard against other pending kernels are
  deferred past each other; a conflict flushes the queue first.

JIT-cache bucketing: for JAX launches of kernels with no written
broadcast argument, the observation axis is padded to the next
power-of-two bucket (:func:`repro.jaxshim.config.next_batch_bucket`)
with all-masked rows, so the shim's trace-cache key — which hashes
argument shapes — repeats across nearby group sizes instead of
recompiling per observation-count change.  Scatter kernels run at the
exact group size: a padded row's masked lanes would add ``+0.0`` into
the accumulator, which is not bitwise-neutral against ``-0.0``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..core.dispatch import ImplementationType, kernel_registry
from ..obs import state as obs_state
from .common import resolve_view
from .spec import Intent

__all__ = ["MegabatchCollector", "stack_group_intervals"]


def stack_group_intervals(
    starts_list, stops_list
) -> Tuple[np.ndarray, np.ndarray]:
    """Pad per-observation interval lists to a common ``(n_obs, n_ivl)``.

    Shorter (or empty) lists pad with degenerate ``(0, 0)`` rows, which
    the padding machinery turns into all-masked lanes.
    """
    n_ivl = max((len(s) for s in starts_list), default=0)
    n_obs = len(starts_list)
    starts2 = np.zeros((n_obs, n_ivl), dtype=np.int64)
    stops2 = np.zeros((n_obs, n_ivl), dtype=np.int64)
    for i, (sa, so) in enumerate(zip(starts_list, stops_list)):
        sa = np.asarray(sa, dtype=np.int64)
        so = np.asarray(so, dtype=np.int64)
        starts2[i, : len(sa)] = sa
        stops2[i, : len(so)] = so
    return starts2, stops2


class _Deferred:
    """One intercepted kernel call, held until flush."""

    __slots__ = ("bound", "args", "kwargs", "merged", "reads", "writes")

    def __init__(self, bound, args, kwargs, merged):
        self.bound = bound
        self.args = args
        self.kwargs = kwargs
        self.merged = merged
        reads: set = set()
        writes: set = set()
        for a in bound.spec.args:
            value = merged.get(a.name)
            if not isinstance(value, np.ndarray):
                continue
            if a.intent.reads:
                reads.add(id(value))
            if a.intent.writes:
                writes.add(id(value))
        self.reads = reads
        self.writes = writes


class MegabatchCollector:
    """Defers megabatch-eligible kernel calls and flushes them stacked.

    One collector is installed per operator-exec region (the pipeline
    flushes at every operator boundary, so deferral never crosses a
    point where the host could observe kernel outputs).  Counters:

    * ``deferred_calls`` — per-observation calls intercepted;
    * ``stacked_launches`` — grouped launches issued;
    * ``replayed_calls`` — deferred calls executed eagerly (singleton
      groups, missing backend megabatch implementation, or recovery
      after a stacked failure);
    * ``launches_elided`` — device launches saved by stacking, measured
      against the device counter when one is attached.
    """

    def __init__(self, group_limit: Optional[int] = None) -> None:
        self.group_limit = group_limit
        self._pending: List[_Deferred] = []
        self._flushing = False
        self.deferred_calls = 0
        self.stacked_launches = 0
        self.replayed_calls = 0
        self.launches_elided = 0

    # -- interception --------------------------------------------------------

    def offer(self, bound, args, kwargs) -> bool:
        """Accept (and defer) a BoundKernel call, or decline it.

        Declined calls execute eagerly at the call site.  Accepting may
        first flush the queue if the new call has a read/write hazard
        against pending calls of a *different* kernel, or would stack a
        duplicate output array into an existing group.
        """
        if self._flushing:
            return False
        spec = bound.spec
        if spec is None or not getattr(spec, "megabatch", False):
            return False
        try:
            merged = spec.bind_call(args, kwargs)
        except TypeError:
            return False
        call = _Deferred(bound, args, kwargs, merged)
        if self._hazard(call):
            self.flush()
        self._pending.append(call)
        self.deferred_calls += 1
        return True

    def _hazard(self, call: _Deferred) -> bool:
        for other in self._pending:
            if other.bound.name != call.bound.name:
                # Cross-kernel reorder safety: grouping executes whole
                # buckets back-to-back, so any data dependence between
                # different kernels forces a flush first.
                if (
                    (other.writes & (call.reads | call.writes))
                    or (other.reads & call.writes)
                ):
                    return True
            else:
                # Same kernel writing the same non-broadcast array twice
                # cannot stack (the rows would race on write-back).
                for a in call.bound.spec.args:
                    if a.batch != "stack" or not a.intent.writes:
                        continue
                    value = call.merged.get(a.name)
                    ovalue = other.merged.get(a.name)
                    if (
                        isinstance(value, np.ndarray)
                        and isinstance(ovalue, np.ndarray)
                        and value is ovalue
                    ):
                        return True
        return False

    # -- flush ---------------------------------------------------------------

    def flush(self) -> None:
        """Execute every pending call, stacked where possible."""
        if self._flushing or not self._pending:
            return
        self._flushing = True
        try:
            pending, self._pending = self._pending, []
            buckets: Dict[tuple, List[_Deferred]] = {}
            order: List[tuple] = []
            for call in pending:
                sig = self._signature(call)
                if sig not in buckets:
                    buckets[sig] = []
                    order.append(sig)
                buckets[sig].append(call)
            for sig in order:
                calls = buckets[sig]
                if self.group_limit and self.group_limit > 1:
                    for i in range(0, len(calls), self.group_limit):
                        self._run_bucket(calls[i : i + self.group_limit])
                else:
                    self._run_bucket(calls)
        finally:
            self._flushing = False

    def _signature(self, call: _Deferred) -> tuple:
        """Grouping key: calls stack only when everything but the
        per-observation data agrees."""
        bound = call.bound
        kwargs = call.kwargs
        parts: List[Any] = [
            bound.name,
            bound.impl,
            bool(kwargs.get("use_accel", False)),
            id(kwargs.get("accel")),
        ]
        for a in bound.spec.args:
            if a.name not in call.merged:
                parts.append(("absent",))
                continue
            value = call.merged[a.name]
            if value is None:
                parts.append(("none",))
            elif not isinstance(value, np.ndarray):
                try:
                    hash(value)
                except TypeError:
                    parts.append(("scalar-id", id(value)))
                else:
                    parts.append(("scalar", value))
            elif a.role.value == "intervals":
                parts.append(("intervals",))
            elif a.batch == "broadcast":
                # Broadcast arrays must be the *same object* group-wide:
                # stacked accumulation into one GLOBAL is only eager-
                # equivalent when every member targets that array.
                parts.append(("broadcast", id(value)))
            else:
                parts.append(("stack", value.shape, str(value.dtype)))
        return tuple(parts)

    def _run_bucket(self, calls: List[_Deferred]) -> None:
        bound = calls[0].bound
        mb = kernel_registry.megabatch_impl(bound.name, bound.impl)
        if len(calls) == 1 or mb is None:
            self._replay(calls)
            return
        try:
            self._run_stacked(calls, mb)
        except Exception:
            tr = obs_state.active
            if tr is not None:
                tr.metrics.count("megabatch.stacked_failures")
            # Stacked implementations commit in-place GLOBAL updates
            # last, so a failed launch left no partial state; the eager
            # path (including its resilience wrappers) takes over.
            self._replay(calls)

    def _replay(self, calls: List[_Deferred]) -> None:
        for call in calls:
            call.bound(*call.args, **call.kwargs)
            self.replayed_calls += 1
        tr = obs_state.active
        if tr is not None:
            tr.metrics.count("megabatch.replayed_calls", len(calls))

    def _run_stacked(self, calls: List[_Deferred], mb) -> None:
        bound = calls[0].bound
        spec = bound.spec
        k = len(calls)
        accel = calls[0].kwargs.get("accel")
        use_accel = bool(calls[0].kwargs.get("use_accel", False))

        pad_rows = 0
        if bound.impl is ImplementationType.JAX and not any(
            a.batch == "broadcast" and a.intent.writes for a in spec.args
        ):
            from ..jaxshim.config import next_batch_bucket

            pad_rows = next_batch_bucket(k) - k

        stacked_kwargs: Dict[str, Any] = {}
        views: Dict[str, List[np.ndarray]] = {}
        interval_names = [a.name for a in spec.args if a.role.value == "intervals"]
        if interval_names:
            groups = {
                name: [np.asarray(c.merged[name]) for c in calls]
                + [np.zeros(0, dtype=np.int64)] * pad_rows
                for name in interval_names
            }
            starts2, stops2 = stack_group_intervals(
                groups[interval_names[0]], groups[interval_names[1]]
            )
            stacked_kwargs[interval_names[0]] = starts2
            stacked_kwargs[interval_names[1]] = stops2
        for a in spec.args:
            if a.name in interval_names or a.name not in calls[0].merged:
                continue
            value = calls[0].merged[a.name]
            if value is None or not isinstance(value, np.ndarray):
                stacked_kwargs[a.name] = value
                continue
            if a.batch == "broadcast":
                # Unresolved: the stacked implementation resolves the
                # device view itself, exactly like the eager one.
                stacked_kwargs[a.name] = value
                continue
            member_views = [
                resolve_view(accel, c.merged[a.name], use_accel) for c in calls
            ]
            stacked = np.stack(member_views, axis=0)
            if pad_rows:
                pad = np.zeros(
                    (pad_rows,) + stacked.shape[1:], dtype=stacked.dtype
                )
                stacked = np.concatenate((stacked, pad), axis=0)
            stacked_kwargs[a.name] = stacked
            if a.intent.writes:
                views[a.name] = member_views

        device = getattr(accel, "device", None) if use_accel else None
        before = getattr(device, "kernels_launched", 0) if device else 0
        tr = obs_state.active
        if tr is not None:
            with tr.span(
                f"kernel.{bound.name}.megabatch",
                impl=bound.impl.value,
                group=k,
            ):
                mb(**stacked_kwargs, accel=accel, use_accel=use_accel)
        else:
            mb(**stacked_kwargs, accel=accel, use_accel=use_accel)

        for name, member_views in views.items():
            stacked = stacked_kwargs[name]
            for i, view in enumerate(member_views):
                view[...] = stacked[i]

        per_launch = 1
        if device is not None:
            per_launch = max(1, getattr(device, "kernels_launched", 0) - before)
        elided = (k - 1) * per_launch
        self.stacked_launches += 1
        self.launches_elided += elided
        if tr is not None:
            tr.metrics.count("megabatch.stacked_launches")
            tr.metrics.count("megabatch.grouped_calls", k)
            tr.metrics.count("megabatch.launches_elided", elided)
            for call in calls:
                read, written = spec.bytes_moved(call.args, call.kwargs)
                if read:
                    tr.metrics.count(f"kernel.{bound.name}.bytes_read", read)
                if written:
                    tr.metrics.count(
                        f"kernel.{bound.name}.bytes_written", written
                    )
