"""Communicator interface plus the serial implementation.

The framework only uses a small MPI subset (the same one TOAST's pipelines
use): barrier, broadcast, reductions, gathers.  Codes are written against
:class:`Comm`; on one process everything degenerates to the obvious local
operation, exactly like TOAST with ``mpi4py`` missing.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

import numpy as np

__all__ = ["Comm", "SerialComm", "ToastComm"]


class Comm:
    """Abstract communicator."""

    @property
    def rank(self) -> int:
        raise NotImplementedError

    @property
    def size(self) -> int:
        raise NotImplementedError

    def barrier(self) -> None:
        raise NotImplementedError

    def bcast(self, obj: Any, root: int = 0) -> Any:
        raise NotImplementedError

    def allreduce(self, value: Any, op: str = "sum") -> Any:
        raise NotImplementedError

    def allreduce_array(self, arr: np.ndarray, op: str = "sum") -> np.ndarray:
        raise NotImplementedError

    def gather(self, obj: Any, root: int = 0) -> Optional[List[Any]]:
        raise NotImplementedError

    def allgather(self, obj: Any) -> List[Any]:
        raise NotImplementedError

    def split(self, color: int) -> "Comm":
        raise NotImplementedError


_REDUCE_OPS: dict[str, Callable] = {
    "sum": lambda values: sum(values[1:], values[0]),
    "min": min,
    "max": max,
    "prod": lambda values: np.prod(values),
}

_ARRAY_OPS: dict[str, Callable] = {
    "sum": lambda arrs: np.sum(arrs, axis=0),
    "min": lambda arrs: np.min(arrs, axis=0),
    "max": lambda arrs: np.max(arrs, axis=0),
}


class SerialComm(Comm):
    """A size-1 communicator: every collective is a local no-op/identity."""

    def __init__(self) -> None:
        self._rank = 0
        self._size = 1

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._size

    def barrier(self) -> None:
        return None

    def bcast(self, obj: Any, root: int = 0) -> Any:
        if root != 0:
            raise ValueError("serial communicator has only rank 0")
        return obj

    def allreduce(self, value: Any, op: str = "sum") -> Any:
        if op not in _REDUCE_OPS:
            raise ValueError(f"unknown reduction {op!r}")
        return value

    def allreduce_array(self, arr: np.ndarray, op: str = "sum") -> np.ndarray:
        if op not in _ARRAY_OPS:
            raise ValueError(f"unknown reduction {op!r}")
        return np.array(arr, copy=True)

    def gather(self, obj: Any, root: int = 0) -> Optional[List[Any]]:
        if root != 0:
            raise ValueError("serial communicator has only rank 0")
        return [obj]

    def allgather(self, obj: Any) -> List[Any]:
        return [obj]

    def split(self, color: int) -> "SerialComm":
        return SerialComm()


class ToastComm:
    """TOAST's two-level communicator layout.

    A world communicator is split into ``n_groups`` process groups; each
    group owns a disjoint set of observations.  Serial runs produce one
    group of one process.
    """

    def __init__(self, world: Optional[Comm] = None, group_size: Optional[int] = None):
        self.world = world if world is not None else SerialComm()
        size = self.world.size
        if group_size is None:
            group_size = size
        if group_size < 1 or size % group_size != 0:
            raise ValueError(
                f"group_size {group_size} must divide the world size {size}"
            )
        self.group_size = group_size
        self.n_groups = size // group_size
        self.group = self.world.rank // group_size
        self.group_rank = self.world.rank % group_size
        self.comm_group = self.world.split(self.group)

    def distribute_observations(self, n_obs: int) -> List[int]:
        """Indices of the observations owned by this process group.

        Uses the uniform block distribution TOAST applies when observations
        have equal weight.
        """
        if n_obs < 0:
            raise ValueError("n_obs must be non-negative")
        base = n_obs // self.n_groups
        extra = n_obs % self.n_groups
        first = self.group * base + min(self.group, extra)
        count = base + (1 if self.group < extra else 0)
        return list(range(first, first + count))

    @staticmethod
    def distribute_uniform(total: int, n_chunks: int) -> List[tuple[int, int]]:
        """Split ``total`` items into ``n_chunks`` (offset, count) blocks."""
        if n_chunks <= 0:
            raise ValueError("n_chunks must be positive")
        base = total // n_chunks
        extra = total % n_chunks
        out: List[tuple[int, int]] = []
        offset = 0
        for i in range(n_chunks):
            count = base + (1 if i < extra else 0)
            out.append((offset, count))
            offset += count
        return out

    @staticmethod
    def distribute_discrete(weights: Sequence[float], n_chunks: int) -> List[tuple[int, int]]:
        """Greedy block distribution of weighted items into contiguous chunks.

        Mirrors TOAST's ``distribute_discrete``: items keep their order and
        chunk boundaries are chosen so that chunk weights are as even as a
        contiguous split allows.
        """
        if n_chunks <= 0:
            raise ValueError("n_chunks must be positive")
        weights = [float(w) for w in weights]
        if any(w < 0 for w in weights):
            raise ValueError("weights must be non-negative")
        n = len(weights)
        if n_chunks > max(n, 1):
            n_chunks = max(n, 1)
        total = sum(weights)
        target = total / n_chunks if n_chunks else 0.0
        out: List[tuple[int, int]] = []
        offset = 0
        acc = 0.0
        for chunk in range(n_chunks):
            remaining_chunks = n_chunks - chunk
            remaining_items = n - offset
            # Always leave at least one item per remaining chunk.
            count = 0
            weight = 0.0
            while offset + count < n - (remaining_chunks - 1):
                w = weights[offset + count]
                # Stop when adding the item overshoots the target more than
                # stopping undershoots it (and we already have something).
                if count > 0 and acc + weight + w > target * (chunk + 1) + 0.5 * w:
                    break
                weight += w
                count += 1
            if remaining_items <= remaining_chunks:
                count = max(count, 1) if remaining_items > 0 else 0
            out.append((offset, count))
            offset += count
            acc += weight
        # Distribute any leftovers into the final chunk.
        if offset < n:
            first, cnt = out[-1]
            out[-1] = (first, cnt + (n - offset))
        return out
