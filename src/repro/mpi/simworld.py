"""Modeled process layouts for the paper's benchmark sweeps.

The paper's Figure 4 sweeps the number of processes on one Perlmutter GPU
node (64 CPU cores, 4 A100s) with the total compute held fixed -- threads
per process fall as processes rise.  Figure 5 uses 8 nodes with 16
processes per node and 4 threads each.  :class:`SimWorld` captures exactly
those layouts so the performance model can evaluate them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

__all__ = ["NodeSpec", "SimWorld"]


@dataclass(frozen=True)
class NodeSpec:
    """Hardware inventory of one node (defaults: a Perlmutter GPU node)."""

    cores: int = 64
    gpus: int = 4
    cpu_memory_bytes: int = 256 * 1024**3
    gpu_memory_bytes: int = 40 * 1024**3

    def __post_init__(self) -> None:
        if self.cores < 1 or self.gpus < 0:
            raise ValueError("a node needs >= 1 core and >= 0 GPUs")
        if self.cpu_memory_bytes <= 0 or self.gpu_memory_bytes < 0:
            raise ValueError("memory sizes must be positive")


@dataclass(frozen=True)
class SimWorld:
    """A modeled MPI world: nodes x processes, with derived thread counts."""

    n_nodes: int = 1
    procs_per_node: int = 16
    node: NodeSpec = NodeSpec()

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if self.procs_per_node < 1:
            raise ValueError("procs_per_node must be >= 1")
        if self.procs_per_node > self.node.cores:
            raise ValueError(
                f"cannot place {self.procs_per_node} processes on "
                f"{self.node.cores} cores"
            )

    @property
    def n_procs(self) -> int:
        return self.n_nodes * self.procs_per_node

    @property
    def threads_per_proc(self) -> int:
        """Fixed total compute: threads shrink as processes grow."""
        return self.node.cores // self.procs_per_node

    @property
    def procs_per_gpu(self) -> float:
        if self.node.gpus == 0:
            raise ValueError("this node has no GPUs")
        return self.procs_per_node / self.node.gpus

    def shard_observations(self, n_obs: int) -> List[List[int]]:
        """Observation indices owned by each modeled rank, in rank order.

        The same uniform block distribution :class:`~repro.mpi.comm.
        ToastComm` uses with one group per process, so a modeled rank's
        shard matches what a real MPI run of this layout would own.  The
        parallel engine maps each non-empty shard onto one live worker
        process.
        """
        from .comm import ToastComm

        blocks = ToastComm.distribute_uniform(n_obs, self.n_procs)
        return [list(range(off, off + cnt)) for off, cnt in blocks]

    def worker_layout(self, n_obs: int) -> List[Tuple[int, List[int]]]:
        """``(rank, observation indices)`` for ranks with work.

        Ranks beyond the observation count get empty shards and no live
        worker; the survivors keep their modeled rank id so traces and
        crash injection line up with the modeled world.
        """
        return [
            (rank, shard)
            for rank, shard in enumerate(self.shard_observations(n_obs))
            if shard
        ]

    def describe(self) -> str:
        return (
            f"{self.n_nodes} node(s) x {self.procs_per_node} proc(s) x "
            f"{self.threads_per_proc} thread(s), {self.node.gpus} GPU(s)/node"
        )
