"""MPI abstraction used by the framework.

TOAST runs from laptops (no MPI) to supercomputers (mpi4py); the paper's
benchmarks vary process counts on Perlmutter nodes.  This package provides:

* :class:`~repro.mpi.comm.Comm` -- the communicator interface the framework
  codes against, with a fully functional serial implementation (the same
  trick TOAST uses when mpi4py is absent);
* :class:`~repro.mpi.comm.ToastComm` -- the world/group split used to
  distribute observations across process groups;
* :class:`~repro.mpi.simworld.SimWorld` -- a *modeled* process layout
  (nodes x processes x threads x GPUs) consumed by the performance model to
  regenerate the paper's process-count sweeps without launching processes.
"""

from .comm import Comm, SerialComm, ToastComm
from .simworld import SimWorld, NodeSpec

__all__ = ["Comm", "SerialComm", "ToastComm", "SimWorld", "NodeSpec"]
