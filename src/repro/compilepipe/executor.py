"""Execute a compiled plan: residency, overlap, fusion, recovery.

The executor walks the planned stage sequence keeping a small dynamic
model of device state — which arrays are mapped, and whether the device
or the host holds the newer bytes.  Every planner decision is
re-validated against that model before it is acted on, so spills, device
loss, and injected faults can reshape execution without ever making it
wrong; the plan only decides *when* copies happen and *what* never needs
to move.

Numerically the compiled path is bitwise identical to the eager
pipeline: kernels execute unchanged against the same device views, in
the same order; elided H2D transfers are replaced by on-device memsets
of buffers whose host bytes are provably zero; and every device-written
array is drained back to the host by pipeline exit exactly as the eager
path does.  The parity suite pins this.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..accel.errors import DeviceLostError, OutOfDeviceMemoryError
from ..obs import state as obs_state
from ..obs.events import EventType
from ..resilience import state as res_state
from .lifetime import lower_workflow
from .planner import PipelinePlan, build_plan

__all__ = ["execute_compiled", "CompiledRun"]

#: Device-loss recoveries tolerated per stage (mirrors Pipeline's cap).
MAX_DEVICE_RECOVERIES = 3

#: Buffer coherence states.
_SYNCED = "synced"  # host and device agree
_DEVICE_NEWER = "device_newer"  # device copy is ahead (pending drain)
_HOST_NEWER = "host_newer"  # host copy is ahead (device copy stale)


class CompiledRun:
    """One execution of a compiled plan over one device runtime."""

    def __init__(self, pipeline, data, runtime):
        self.pipeline = pipeline
        self.data = data
        self.runtime = runtime
        self.device = runtime.device
        self.clock = runtime.device.clock
        # Work units exactly as the eager path would form them.
        from ..core.pipeline import LoopOrder

        self.megabatch = getattr(pipeline, "plan", "") == "megabatch"
        if self.megabatch:
            # Stacked launches need multi-observation units: one chunk of
            # megabatch_group observations per unit (None: all in one).
            self.units = pipeline.megabatch_units(
                data, getattr(pipeline, "megabatch_group", None)
            )
        elif pipeline.order is LoopOrder.OBSERVATION_MAJOR:
            self.units = pipeline.observation_units(data)
        else:
            self.units = [data]
        self.ir = lower_workflow(pipeline.operators, self.units)
        self.plan: PipelinePlan = build_plan(self.ir, megabatch=self.megabatch)
        # Dynamic device-state model.
        self._mapped: Dict[int, np.ndarray] = {}
        self._label: Dict[int, str] = {}
        self._status: Dict[int, str] = {}
        self._d2h_inflight: set[int] = set()
        self._fused_open = None
        # Actuals (the plan's static counts are verified against these).
        self.transfers_elided = 0
        self.launches_elided = 0
        self.spills = 0
        self.replans = 0

    # -- state helpers -------------------------------------------------------

    def _life(self, arr: np.ndarray):
        return self.ir.life_of(arr)

    def _emit_plan_event(self, replan: bool = False) -> None:
        tr = obs_state.active
        if tr is None:
            return
        tr.device_event(
            EventType.PLAN,
            self.pipeline.name,
            ts=self.clock.now,
            stages=len(self.plan.stages),
            buffers=len(self.plan.buffers),
            transfers_elided=0 if replan else self.plan.transfers_elided,
            fused_groups=0 if replan else self.plan.fused_groups,
            launches_elided=0 if replan else self.plan.launches_elided,
            replan=replan,
        )

    def _enter(self, arr: np.ndarray, label: str) -> None:
        self.runtime.target_enter_data(alloc=[arr], labels={id(arr): label})
        self._mapped[id(arr)] = arr
        self._label[id(arr)] = label

    def _ensure_on_device(
        self, arr: np.ndarray, label: str, elide: bool, sync: bool
    ) -> None:
        """Make the device copy of ``arr`` present and valid.

        ``elide``: the planner proved no host write precedes this first
        touch, so an all-zero host array maps to an on-device memset
        instead of an H2D copy (re-checked here — authoritative).
        ``sync``: block on the copy now instead of leaving it in flight.
        """
        key = id(arr)
        if key not in self._mapped:
            self._enter(arr, label)
            assoc = self.runtime.present.lookup(arr)
            if elide and not arr.any():
                # Freshly allocated device storage is already zero; the
                # memset still charges its on-device cost for honesty.
                self.device.reset(assoc.buffer)
                self.transfers_elided += 1
            else:
                self.device.update_device_async(assoc.buffer, arr)
                if sync:
                    self.device.wait_transfers("h2d")
            self._status[key] = _SYNCED
        elif self._status.get(key) == _HOST_NEWER:
            assoc = self.runtime.present.lookup(arr)
            self.device.update_device_async(assoc.buffer, arr)
            if sync:
                self.device.wait_transfers("h2d")
            self._status[key] = _SYNCED

    def _drain_async(self, arr: np.ndarray, coalesced: bool) -> None:
        """Submit the deferred D2H for a device-written array."""
        key = id(arr)
        if self._status.get(key) != _DEVICE_NEWER:
            return
        assoc = self.runtime.present.lookup(arr)
        self.device.update_host_async(assoc.buffer, arr, coalesced=coalesced)
        self._status[key] = _SYNCED
        self._d2h_inflight.add(key)

    def _sync_back(self, arr: np.ndarray) -> None:
        """Blocking D2H of a device-newer array (host reader needs it now)."""
        key = id(arr)
        if key in self._d2h_inflight:
            self.device.wait_transfers("d2h")
            self._d2h_inflight.clear()
        if self._status.get(key) == _DEVICE_NEWER:
            assoc = self.runtime.present.lookup(arr)
            self.device.update_host(assoc.buffer, arr)
            self._status[key] = _SYNCED

    def _release_all(self) -> None:
        for key in list(self._mapped):
            arr = self._mapped[key]
            self.runtime.target_exit_data(release=[arr])
            del self._mapped[key]
            self._label.pop(key, None)
            self._status.pop(key, None)
        self._d2h_inflight.clear()

    def _invalidate_all(self) -> None:
        """Device loss: residency is gone; host copies are what they are."""
        self._mapped.clear()
        self._label.clear()
        self._status.clear()
        self._d2h_inflight.clear()

    # -- spill-by-liveness ---------------------------------------------------

    def _spill_one(self, working: set, stage_idx: int, op_name: str, ctrl) -> bool:
        """Evict the mapped buffer with the farthest next device use."""
        candidates = [k for k in self._mapped if k not in working]
        if not candidates:
            return False

        def distance(key: int):
            life = self._life(self._mapped[key])
            nxt = life.next_device_use(stage_idx) if life is not None else None
            # No future device use sorts last (evict first); then farthest
            # next use; ties broken toward larger buffers.
            far = float("inf") if nxt is None else float(nxt)
            return (far, self._mapped[key].nbytes)

        victim = max(candidates, key=distance)
        arr = self._mapped[victim]
        label = self._label.get(victim, "?")
        if self._status.get(victim) == _DEVICE_NEWER:
            self._sync_back(arr)
        self.runtime.target_exit_data(release=[arr])
        del self._mapped[victim]
        self._label.pop(victim, None)
        self._status.pop(victim, None)
        self._d2h_inflight.discard(victim)
        self.spills += 1
        if ctrl is not None:
            ctrl.record_eviction(
                op_name,
                arr.nbytes,
                clock=self.clock,
                reason="device_oom",
                label=label,
                policy="liveness",
            )
        else:
            tr = obs_state.active
            if tr is not None:
                tr.device_event(
                    EventType.EVICT,
                    label,
                    ts=self.clock.now,
                    nbytes=arr.nbytes,
                    label=label,
                    policy="liveness",
                    reason="device_oom",
                )
        return True

    # -- stage bodies --------------------------------------------------------

    def _run_accel_stage(self, stage, sp) -> None:
        # Stage-in what this stage needs (elisions and async copies), then
        # drain the H2D stream: prefetched copies from earlier stages are
        # already hidden behind compute, so this exposes only the tail.
        for acc in stage.accesses:
            elide = acc.label in sp.stage_in_elide
            self._ensure_on_device(acc.array, acc.label, elide=elide, sync=False)
        # A device write to an array whose deferred D2H is still in flight
        # must wait for the copy (real hardware would corrupt the readback).
        if self._d2h_inflight and any(
            acc.writes and id(acc.array) in self._d2h_inflight
            for acc in stage.accesses
        ):
            self.device.wait_transfers("d2h")
            self._d2h_inflight.clear()
        self.device.wait_transfers("h2d")

        # Double-buffering: submit next stages' H2D while this stage
        # computes.  Prefetched buffers are first-touches, so entering and
        # copying now is safe — no earlier stage can still write them.
        for label in sp.prefetch:
            life = self.ir.buffers[label]
            self._ensure_on_device(life.array, label, elide=False, sync=False)

        group = self.plan.group_of(stage.index)
        if group is not None and group.stage_indices[0] == stage.index:
            self.device.begin_fused(group.name)
            self._fused_open = group
        with self.pipeline._stage(stage.op, self.runtime):
            if self.megabatch:
                from ..core.dispatch import megabatch_collection
                from ..kernels.megabatch import MegabatchCollector

                coll = MegabatchCollector()
                with megabatch_collection(coll):
                    stage.op.exec(stage.unit, use_accel=True, accel=self.runtime)
                # Stacking elisions compose with fusion's: the fused
                # region already sees the reduced (stacked) launch count.
                self.launches_elided += coll.launches_elided
            else:
                stage.op.exec(stage.unit, use_accel=True, accel=self.runtime)
        for acc in stage.accesses:
            if acc.writes:
                self._status[id(acc.array)] = _DEVICE_NEWER
        if group is not None and self._fused_open is group and (
            group.stage_indices[-1] == stage.index
        ):
            self.launches_elided += self.device.end_fused()
            self._fused_open = None

        # Deferred drains: last device use of device-written arrays —
        # submit now, coalesced, and let them run behind later compute.
        for label in sp.drain:
            life = self.ir.buffers[label]
            if id(life.array) in self._mapped:
                self._drain_async(life.array, coalesced=True)

    def _run_host_stage(self, stage) -> None:
        # Host readers need device-newer bytes synced back first.
        for acc in stage.accesses:
            if acc.reads:
                self._sync_back(acc.array)
        with self.pipeline._stage(stage.op):
            stage.op.exec(stage.unit, use_accel=False, accel=None)
        for acc in stage.accesses:
            key = id(acc.array)
            if acc.writes and key in self._mapped:
                # The eager pipeline refreshes the device copy here
                # unconditionally; the plan defers it to the next device
                # use — which may never come (a counted elision).
                self._status[key] = _HOST_NEWER

    def _run_stage_on_host_fallback(self, stage) -> None:
        """OOM last resort: run an accel stage's operator on the host."""
        for acc in stage.accesses:
            if acc.reads:
                self._sync_back(acc.array)
        with self.pipeline._stage(stage.op):
            stage.op.exec(stage.unit, use_accel=False, accel=None)
        for acc in stage.accesses:
            key = id(acc.array)
            if acc.writes and key in self._mapped:
                self._status[key] = _HOST_NEWER

    # -- the main loop -------------------------------------------------------

    def execute(self) -> PipelinePlan:
        ctrl = res_state.active
        h2d0 = (self.device.h2d_stream.busy_seconds, self.device.h2d_stream.waited_seconds)
        d2h0 = (self.device.d2h_stream.busy_seconds, self.device.d2h_stream.waited_seconds)
        self._emit_plan_event()

        for stage in self.ir.stages:
            sp = self.plan.stages[stage.index]
            working = {id(acc.array) for acc in stage.accesses}
            oom_backoffs = 0
            device_recoveries = 0
            while True:
                try:
                    if stage.accel:
                        self._run_accel_stage(stage, sp)
                    else:
                        self._run_host_stage(stage)
                    break
                except OutOfDeviceMemoryError as e:
                    if self._fused_open is not None:
                        self.device.abort_fused()
                        self._fused_open = None
                    if (
                        ctrl is None or ctrl.config.evict_on_oom
                    ) and self._spill_one(working, stage.index, stage.op.name, ctrl):
                        continue
                    if (
                        ctrl is not None
                        and oom_backoffs < ctrl.config.retry.max_attempts - 1
                    ):
                        oom_backoffs += 1
                        ctrl.backoff(
                            f"pipeline.{stage.op.name}", oom_backoffs, e, clock=self.clock
                        )
                        continue
                    if ctrl is None or not stage.accel:
                        raise
                    ctrl.record_host_fallback(
                        stage.op.name, "device_oom", clock=self.clock
                    )
                    self._run_stage_on_host_fallback(stage)
                    break
                except DeviceLostError:
                    if self._fused_open is not None:
                        self.device.abort_fused()
                        self._fused_open = None
                    if ctrl is None or not ctrl.config.checkpoint:
                        raise
                    if device_recoveries >= MAX_DEVICE_RECOVERIES:
                        raise
                    device_recoveries += 1
                    # Residency is garbage: recover the device, forget the
                    # model, and replan the rest of the run from host
                    # copies (current up to the last per-stage checkpoint).
                    self.runtime.recover_device()
                    self._invalidate_all()
                    self.replans += 1
                    ctrl.record_device_recovery(
                        stage.op.name, stage.index, clock=self.clock
                    )
                    self._emit_plan_event(replan=True)
                    continue

            if ctrl is not None and ctrl.config.checkpoint:
                # Host copies current up to here: the device-loss resume
                # point.  This forfeits D2H deferral across stages under a
                # controller — the price of recoverability, same as eager.
                for key, arr in list(self._mapped.items()):
                    if self._status.get(key) == _DEVICE_NEWER:
                        self._sync_back(arr)
                ctrl.record_checkpoint(
                    {
                        "pipeline": self.pipeline.name,
                        "op": stage.op.name,
                        "stage": stage.index,
                        "fields": sorted(
                            acc.key for acc in stage.accesses if acc.writes
                        ),
                    },
                    clock=self.clock,
                )

        # Pipeline exit: drain everything still device-newer, wait out the
        # streams, release the device.  Host bytes now match eager exactly.
        for key, arr in list(self._mapped.items()):
            if self._status.get(key) == _DEVICE_NEWER:
                self._drain_async(arr, coalesced=True)
        self.device.wait_transfers("both")
        self._release_all()

        h2d = self.device.h2d_stream
        d2h = self.device.d2h_stream
        overlap = max(
            0.0,
            (h2d.busy_seconds - h2d0[0]) - (h2d.waited_seconds - h2d0[1]),
        ) + max(
            0.0,
            (d2h.busy_seconds - d2h0[0]) - (d2h.waited_seconds - d2h0[1]),
        )
        tr = obs_state.active
        if tr is not None:
            tr.device_event(
                EventType.OVERLAP,
                self.pipeline.name,
                ts=self.clock.now,
                dur=overlap,
                transfers_elided=self.transfers_elided,
                launches_elided=self.launches_elided,
                spills=self.spills,
                replans=self.replans,
            )
        self.plan.executed.update(
            {
                "transfers_elided": float(self.transfers_elided),
                "launches_elided": float(self.launches_elided),
                "overlap_seconds": float(overlap),
                "spills": float(self.spills),
                "replans": float(self.replans),
            }
        )
        return self.plan


def execute_compiled(pipeline, data, runtime) -> PipelinePlan:
    """Plan and execute ``pipeline`` over ``data`` on ``runtime``."""
    run = CompiledRun(pipeline, data, runtime)
    return run.execute()
