"""repro.compilepipe: whole-workflow pipeline compilation.

The eager pipeline decides data movement one operator at a time; this
package lowers the *whole* workflow into a buffer-lifetime IR first and
derives a transfer schedule from it:

* H2D transfers of provably-zero first-touch buffers become on-device
  memsets (``lifetime`` + ``planner``);
* everything else is prefetched asynchronously behind the previous
  stage's compute, and device-written buffers drain back coalesced
  behind later compute (``executor`` + :mod:`repro.accel.streams`);
* adjacent lane-aligned kernels across operator boundaries merge into
  single fused launch regions (``fusion``).

Entry points: :func:`plan_workflow` for inspection (the ``repro-bench
plan`` subcommand), :func:`execute_compiled` for execution (what
``Pipeline(plan="compiled")`` calls).  The compiled path is bitwise
identical to eager; the parity suite in ``tests/test_compilepipe.py``
pins it, including under injected device loss.
"""

from .executor import CompiledRun, execute_compiled
from .fusion import FusedGroup, plan_fusion
from .lifetime import BufferLife, StageInfo, WorkflowIR, lower_workflow
from .planner import BufferPlan, PipelinePlan, StagePlan, build_plan, plan_workflow
from .report import plan_report, render_plan, transfer_seconds

__all__ = [
    "BufferLife",
    "BufferPlan",
    "CompiledRun",
    "FusedGroup",
    "PipelinePlan",
    "StageInfo",
    "StagePlan",
    "WorkflowIR",
    "build_plan",
    "execute_compiled",
    "lower_workflow",
    "plan_fusion",
    "plan_report",
    "plan_workflow",
    "render_plan",
    "transfer_seconds",
]
