"""Human- and machine-readable views of a compiled plan.

``plan_report`` turns a :class:`~repro.compilepipe.planner.PipelinePlan`
into the dict that ``repro-bench plan --json`` prints; ``render_plan``
formats the same information as the text schedule.  ``transfer_seconds``
extracts the exposed (non-overlapped) transfer cost of a run from its
virtual clock — the number the sweep's NAIVE / HYBRID / COMPILED
comparison is built on.
"""

from __future__ import annotations

from typing import Dict

from .planner import PipelinePlan

__all__ = ["plan_report", "render_plan", "transfer_seconds"]

#: Clock regions that represent *exposed* transfer time: synchronous
#: copies plus the waited-out tails of async copy streams.  Overlapped
#: stream time deliberately does not appear — hiding it is the point.
EXPOSED_TRANSFER_REGIONS = (
    "accel_data_update_device",
    "accel_data_update_host",
    "transfer_wait_h2d",
    "transfer_wait_d2h",
)


def transfer_seconds(clock) -> float:
    """Exposed transfer seconds accumulated on a virtual clock."""
    regions = clock.regions()
    return float(sum(regions.get(r, 0.0) for r in EXPOSED_TRANSFER_REGIONS))


def plan_report(plan: PipelinePlan) -> Dict:
    """The full planned schedule as plain data (JSON-serialisable)."""
    buffers = []
    for label, bp in sorted(plan.buffers.items()):
        buffers.append(
            {
                "label": label,
                "nbytes": bp.nbytes,
                "first_touch": bp.first_touch,
                "first_device_stage": bp.first_device_stage,
                "prefetch_at": bp.prefetch_at,
                "drain_after": bp.drain_after,
                "elided_h2d": bp.elided_h2d,
                "elided_d2h": bp.elided_d2h,
            }
        )
    stages = []
    for sp in plan.stages:
        group = plan.group_of(sp.index)
        stages.append(
            {
                "index": sp.index,
                "op": sp.name,
                "accel": sp.accel,
                "stage_in_sync": list(sp.stage_in_sync),
                "stage_in_elide": list(sp.stage_in_elide),
                "prefetch": list(sp.prefetch),
                "drain": list(sp.drain),
                "fused_group": group.name if group is not None else None,
            }
        )
    groups = []
    for g in plan.groups:
        groups.append(
            {
                "name": g.name,
                "stages": list(g.stage_indices),
                "kernels": list(g.kernel_names),
                "private": list(g.private_labels),
                "escaping": list(g.escaping_labels),
                "private_bytes": g.private_bytes,
            }
        )
    return {
        "stages": stages,
        "buffers": buffers,
        "fused_groups": groups,
        "totals": {
            "n_stages": len(plan.stages),
            "n_buffers": len(plan.buffers),
            "transfers_elided": plan.transfers_elided,
            "launches_elided": plan.launches_elided,
            "n_fused_groups": plan.fused_groups,
        },
        "executed": dict(plan.executed),
    }


def render_plan(plan: PipelinePlan) -> str:
    """The planned schedule as a readable text table."""
    rep = plan_report(plan)
    lines = []
    lines.append(
        f"compiled plan: {rep['totals']['n_stages']} stages, "
        f"{rep['totals']['n_buffers']} buffers, "
        f"{rep['totals']['transfers_elided']} transfers elided, "
        f"{rep['totals']['n_fused_groups']} fused groups "
        f"({rep['totals']['launches_elided']} launches elided)"
    )
    lines.append("")
    lines.append("stage schedule:")
    for st in rep["stages"]:
        mode = "accel" if st["accel"] else "host "
        parts = []
        if st["stage_in_elide"]:
            parts.append("elide " + ", ".join(st["stage_in_elide"]))
        if st["stage_in_sync"]:
            parts.append("sync-in " + ", ".join(st["stage_in_sync"]))
        if st["prefetch"]:
            parts.append("prefetch " + ", ".join(st["prefetch"]))
        if st["drain"]:
            parts.append("drain " + ", ".join(st["drain"]))
        if st["fused_group"]:
            parts.append(f"fused[{st['fused_group']}]")
        detail = "; ".join(parts) if parts else "-"
        lines.append(f"  [{st['index']:>3}] {mode} {st['op']:<24} {detail}")
    if rep["fused_groups"]:
        lines.append("")
        lines.append("fused groups:")
        for g in rep["fused_groups"]:
            lines.append(
                f"  {g['name']}: stages {g['stages']} kernels {g['kernels']}"
            )
            if g["private"]:
                lines.append(
                    f"    private intermediates: {g['private']} "
                    f"({g['private_bytes']} B stay in registers/cache)"
                )
            if g["escaping"]:
                lines.append(f"    escaping (materialized): {g['escaping']}")
    if rep["executed"]:
        lines.append("")
        lines.append("executed:")
        for k in sorted(rep["executed"]):
            lines.append(f"  {k} = {rep['executed'][k]:g}")
    return "\n".join(lines)
