"""The residency planner: buffer-lifetime IR -> a transfer schedule.

For every array the workflow touches, the planner decides, statically:

* **First touch** — how the array first reaches the device.  If its host
  bytes are all zero and no host stage writes it before its first device
  use, the H2D transfer is *elided*: the device buffer is allocated and
  memset on-device instead (``accel_data_reset``), which is bitwise
  identical and orders of magnitude cheaper than pushing zeros over the
  link.  Otherwise the copy is *prefetched* at the preceding stage so it
  overlaps that stage's compute, or staged synchronously when there is
  no room to prefetch (stage 0, or the previous stage itself touches the
  array on the host).
* **Residency** — once on the device the array stays there; re-stages
  the eager pipeline performs (meta arrays entered/exited by every
  operator exec, device refreshes after host writes nothing will read)
  are counted as elided.
* **Drain** — device-written arrays are read back once, asynchronously,
  after their last device use (coalesced bursts behind compute), rather
  than at every operator boundary.
* **Spill order** — under pool pressure the executor evicts the mapped
  buffer whose *next device use* is farthest in the future (Belady on
  the static schedule), falling back gracefully when nothing is
  evictable.

The plan is advisory: the executor re-validates every decision against
dynamic state (spills, device loss, injected faults), so a plan can
never make execution wrong — only fast.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .fusion import FusedGroup, plan_fusion
from .lifetime import WorkflowIR, lower_workflow

__all__ = [
    "BufferPlan",
    "StagePlan",
    "PipelinePlan",
    "build_plan",
    "plan_workflow",
    "eager_launches",
    "planned_launch_elisions",
]


@dataclass
class BufferPlan:
    """The planned movement for one array."""

    label: str
    nbytes: int
    #: "elide" (alloc + on-device memset), "prefetch" (async H2D at
    #: ``prefetch_at``), "sync" (blocking H2D at first device use), or
    #: "none" (never device-resident).
    first_touch: str
    first_device_stage: Optional[int]
    prefetch_at: Optional[int] = None
    #: Stage after which the deferred D2H drain is submitted (last device
    #: use of a device-written buffer); None when never device-written.
    drain_after: Optional[int] = None
    #: Eager-pipeline transfers this plan avoids for the buffer.
    elided_h2d: int = 0
    elided_d2h: int = 0


@dataclass
class StagePlan:
    """Planned transfer actions around one stage."""

    index: int
    name: str
    accel: bool
    #: Labels staged synchronously at stage start (first touch here).
    stage_in_sync: List[str] = field(default_factory=list)
    #: Labels whose H2D is elided into an on-device memset at this stage.
    stage_in_elide: List[str] = field(default_factory=list)
    #: Labels prefetched *during* this stage for a later stage's use.
    prefetch: List[str] = field(default_factory=list)
    #: Labels whose deferred D2H drain is submitted after this stage.
    drain: List[str] = field(default_factory=list)


@dataclass
class PipelinePlan:
    """The compiled schedule for one workflow execution."""

    ir: WorkflowIR
    buffers: Dict[str, BufferPlan]
    stages: List[StagePlan]
    groups: List[FusedGroup]
    transfers_elided: int = 0
    launches_elided: int = 0
    #: Filled by the executor as it runs.
    executed: Dict[str, float] = field(default_factory=dict)

    @property
    def fused_groups(self) -> int:
        return len(self.groups)

    def group_of(self, stage_index: int) -> Optional[FusedGroup]:
        for g in self.groups:
            if stage_index in g.stage_indices:
                return g
        return None


def _stacks(kernel_name: str, impl) -> bool:
    """Whether this kernel resolves to an implementation with a stacked
    (megabatch) entry path under the active implementation selection."""
    from ..core.dispatch import kernel_registry

    try:
        _, actual = kernel_registry.resolve(kernel_name, impl)
    except KeyError:
        return False
    return kernel_registry.has_megabatch(kernel_name, actual)


def eager_launches(ir: WorkflowIR) -> int:
    """Kernel launches the eager per-observation dispatch would perform."""
    total = 0
    for stage in ir.stages:
        if not stage.accel:
            continue
        n_obs = max(1, len(getattr(stage.unit, "obs", ())))
        total += max(1, len(stage.kernel_names)) * n_obs
    return total


def planned_launch_elisions(
    ir: WorkflowIR, groups, megabatch: bool = False, impl=None
) -> int:
    """Launches saved vs eager dispatch: fusion, plus stacking if asked.

    With ``megabatch``, each stage's kernels that resolve to a stacked
    implementation launch once per multi-observation work unit instead of
    once per observation — both inside fused groups (whose member counts
    shrink accordingly) and outside them.
    """
    if impl is None:
        from ..core.dispatch import default_implementation

        impl = default_implementation()

    def stage_launches(stage) -> int:
        n_obs = max(1, len(getattr(stage.unit, "obs", ())))
        if not stage.kernel_names:
            return n_obs
        if not megabatch:
            # Kernels launch once per observation in the stage's work unit.
            return len(stage.kernel_names) * n_obs
        return sum(
            1 if n_obs > 1 and _stacks(k, impl) else n_obs
            for k in stage.kernel_names
        )

    elided = 0
    for g in groups:
        member_launches = sum(stage_launches(ir.stages[i]) for i in g.stage_indices)
        elided += member_launches - 1
    if megabatch:
        # Stacking elisions: every accel stage's stackable kernels launch
        # once per chunk instead of once per observation, fused or not.
        for stage in ir.stages:
            if not stage.accel:
                continue
            n_obs = max(1, len(getattr(stage.unit, "obs", ())))
            if n_obs <= 1:
                continue
            elided += sum(
                n_obs - 1 for k in stage.kernel_names if _stacks(k, impl)
            )
    return elided


def build_plan(ir: WorkflowIR, megabatch: bool = False) -> PipelinePlan:
    """Derive the transfer schedule and fusion groups from the IR.

    With ``megabatch``, launch accounting assumes each stage's kernels
    with a stacked implementation launch once per multi-observation work
    unit instead of once per observation; the per-kernel stacking
    elisions are added on top of fusion's, matching what the megabatch
    collector reports at execution time.
    """
    groups = plan_fusion(ir)
    stage_plans = [
        StagePlan(index=s.index, name=s.op.name, accel=s.accel) for s in ir.stages
    ]
    buffer_plans: Dict[str, BufferPlan] = {}
    transfers_elided = 0

    for label, life in ir.buffers.items():
        first_dev = life.first_device_use
        bp = BufferPlan(
            label=label,
            nbytes=life.nbytes,
            first_touch="none",
            first_device_stage=first_dev,
        )
        if first_dev is not None:
            zero_safe = not life.host_written_before(first_dev)
            if zero_safe and not life.array.any():
                bp.first_touch = "elide"
                bp.elided_h2d += 1
                stage_plans[first_dev].stage_in_elide.append(label)
            else:
                prev = first_dev - 1
                if prev >= 0 and life.use_at(prev) is None:
                    bp.first_touch = "prefetch"
                    bp.prefetch_at = prev
                    stage_plans[prev].prefetch.append(label)
                else:
                    bp.first_touch = "sync"
                    stage_plans[first_dev].stage_in_sync.append(label)

            # Residency elisions vs the eager pipeline.  Eager re-enters
            # meta arrays around every operator exec (each op stages its
            # own globals), paying one H2D per device stage that reads
            # them and, for device-written ones, one D2H per device stage.
            # Compiled keeps them resident: one stage-in, one drain.
            device_uses = [u for u in life.uses if u.on_device]
            if life.category == "meta" and len(device_uses) > 1:
                reads_after_first = sum(1 for u in device_uses[1:] if u.reads)
                bp.elided_h2d += reads_after_first
                if life.device_written():
                    bp.elided_d2h += sum(1 for u in device_uses[:-1] if u.writes)
            # Host writes with no later device read: eager refreshes the
            # device copy anyway (update_to of every mapped pushed array);
            # compiled skips the dead transfer.
            for u in life.uses:
                if not u.on_device and u.writes and u.stage > first_dev:
                    if life.next_device_use(u.stage) is None:
                        bp.elided_h2d += 1

            if life.device_written():
                bp.drain_after = life.last_device_use
                stage_plans[life.last_device_use].drain.append(label)

        transfers_elided += bp.elided_h2d + bp.elided_d2h
        buffer_plans[label] = bp

    launches_elided = planned_launch_elisions(ir, groups, megabatch)

    return PipelinePlan(
        ir=ir,
        buffers=buffer_plans,
        stages=stage_plans,
        groups=groups,
        transfers_elided=transfers_elided,
        launches_elided=launches_elided,
    )


def plan_workflow(operators, units) -> PipelinePlan:
    """Lower and plan in one step (the CLI's entry point)."""
    return build_plan(lower_workflow(operators, units))
