"""Lowering: a workflow's operator sequence -> buffer-lifetime IR.

The eager pipeline plans staging per operator from ``staging_intents()``,
so it cannot see that the buffer it is about to H2D was zero-filled by
``ensure_outputs`` a microsecond ago, or that the map it D2H's after this
stage is read again by the very next one.  This module builds the view
the planner needs: every stage of the whole workflow (operator x work
unit), every array any stage touches, and for each array the full
use-list — which stages read it, which write it, and whether those
stages run on the device.

Lowering is purely static: it calls every operator's ``ensure_outputs``
up front (they only create zero-filled outputs, never read prior stages'
results) and resolves bindings from the KernelSpec registry, the same
source the eager pipeline's staging sets derive from.  Nothing executes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "Access",
    "StageInfo",
    "StageUse",
    "BufferLife",
    "WorkflowIR",
    "lower_workflow",
]

#: KernelSpec arg roles -> observation data categories (GLOBAL args live
#: in the pipeline ``meta`` dict).
_ROLE_CATEGORY = {"detdata": "detdata", "shared": "shared", "global": "meta"}


@dataclass
class Access:
    """One stage's use of one array."""

    label: str
    key: str
    category: str  # "shared" | "detdata" | "meta"
    array: np.ndarray
    reads: bool
    writes: bool


@dataclass
class StageInfo:
    """One (work unit, operator) step of the lowered workflow."""

    index: int
    unit_index: int
    op: object
    unit: object  # the Data view this stage executes against
    accel: bool
    accesses: List[Access]
    kernel_names: List[str]
    fusion_kinds: List[str]

    @property
    def fusible(self) -> bool:
        """Whether every kernel this stage launches may join a fused group."""
        return bool(self.fusion_kinds) and all(
            k in ("elementwise", "gather") for k in self.fusion_kinds
        )


@dataclass(frozen=True)
class StageUse:
    """One entry of a buffer's use-list."""

    stage: int
    reads: bool
    writes: bool
    on_device: bool


@dataclass
class BufferLife:
    """The lifetime of one array across the whole workflow."""

    label: str
    key: str
    category: str
    array: np.ndarray
    uses: List[StageUse] = field(default_factory=list)

    @property
    def nbytes(self) -> int:
        return int(self.array.nbytes)

    @property
    def first_use(self) -> int:
        return self.uses[0].stage

    @property
    def last_use(self) -> int:
        return self.uses[-1].stage

    @property
    def first_device_use(self) -> Optional[int]:
        for u in self.uses:
            if u.on_device:
                return u.stage
        return None

    @property
    def last_device_use(self) -> Optional[int]:
        for u in reversed(self.uses):
            if u.on_device:
                return u.stage
        return None

    def next_device_use(self, after: int) -> Optional[int]:
        """First device-stage index strictly after ``after``, or None.

        The liveness spill policy evicts the buffer whose next device use
        is farthest away (Belady's rule on the static schedule).
        """
        for u in self.uses:
            if u.on_device and u.stage > after:
                return u.stage
        return None

    def device_written(self) -> bool:
        return any(u.on_device and u.writes for u in self.uses)

    def host_written_before(self, stage: int) -> bool:
        """Any host-side write strictly before ``stage``?

        Guards the zero-elision check: the planner's ``array.any()`` probe
        is only authoritative for the first device use if no host stage
        can rewrite the bytes in between.
        """
        return any((not u.on_device) and u.writes and u.stage < stage for u in self.uses)

    def use_at(self, stage: int) -> Optional[StageUse]:
        for u in self.uses:
            if u.stage == stage:
                return u
        return None


@dataclass
class WorkflowIR:
    """The lowered workflow: ordered stages + per-array lifetimes."""

    stages: List[StageInfo]
    buffers: Dict[str, BufferLife]  # label -> life
    by_id: Dict[int, str]  # id(array) -> label

    def life_of(self, arr: np.ndarray) -> Optional[BufferLife]:
        label = self.by_id.get(id(arr))
        return self.buffers[label] if label is not None else None


def _fallback_accesses(op, unit, ob_index_of) -> List[Access]:
    """Accesses for operators without kernel bindings (requires/provides).

    Direction information is coarse — required keys count as reads,
    provided keys as reads+writes (matching the eager pipeline's
    pull-everything behaviour), so the plan never under-stages.
    """
    req, prov = op.requires(), op.provides()
    out: List[Access] = []
    seen: Dict[int, Access] = {}

    def add(category: str, key: str, arr: np.ndarray, reads: bool, writes: bool) -> None:
        acc = seen.get(id(arr))
        if acc is not None:
            acc.reads = acc.reads or reads
            acc.writes = acc.writes or writes
            return
        if category == "meta":
            label = f"meta.{key}"
        else:
            label = f"ob{ob_index_of[id(arr)]}.{category}.{key}"
        acc = Access(label, key, category, arr, reads, writes)
        seen[id(arr)] = acc
        out.append(acc)

    for traits, writes in ((req, False), (prov, True)):
        for category in ("shared", "detdata"):
            for key in traits.get(category, ()):
                for ob in unit.obs:
                    store = ob.shared if category == "shared" else ob.detdata
                    if key in store:
                        add(category, key, store[key], True, writes)
        for key in traits.get("meta", ()):
            if key in unit:
                arr = unit[key]
                if isinstance(arr, np.ndarray):
                    add("meta", key, arr, True, writes)
    return out


def _spec_accesses(op, bindings, unit, ob_index_of) -> Tuple[List[Access], List[str], List[str]]:
    """(accesses, kernel names, fusion kinds) from kernel bindings."""
    from ..core.dispatch import kernel_registry

    out: List[Access] = []
    seen: Dict[int, Access] = {}
    kernel_names: List[str] = []
    kinds: List[str] = []

    def add(category: str, key: str, arr: np.ndarray, reads: bool, writes: bool) -> None:
        acc = seen.get(id(arr))
        if acc is not None:
            acc.reads = acc.reads or reads
            acc.writes = acc.writes or writes
            return
        if category == "meta":
            label = f"meta.{key}"
        else:
            label = f"ob{ob_index_of[id(arr)]}.{category}.{key}"
        acc = Access(label, key, category, arr, reads, writes)
        seen[id(arr)] = acc
        out.append(acc)

    for kname in sorted(bindings):
        spec = kernel_registry.spec(kname)
        if spec is None:
            raise KeyError(
                f"operator {op.name!r} binds kernel {kname!r} with no KernelSpec"
            )
        kernel_names.append(kname)
        kinds.append(spec.fusion_kind)
        for arg_name, key in bindings[kname].items():
            if key is None:
                continue
            arg = spec.arg(arg_name)
            category = _ROLE_CATEGORY.get(arg.role.value)
            if category is None:
                continue
            if category == "meta":
                if key in unit and isinstance(unit[key], np.ndarray):
                    add(category, key, unit[key], arg.intent.reads, arg.intent.writes)
                continue
            for ob in unit.obs:
                store = ob.shared if category == "shared" else ob.detdata
                if key in store:
                    add(category, key, store[key], arg.intent.reads, arg.intent.writes)
    return out, kernel_names, kinds


def lower_workflow(operators, units) -> WorkflowIR:
    """Lower ``operators`` over ``units`` (ordered Data views) to IR.

    Stage order is the execution order: unit-major (all operators over
    unit 0, then unit 1, ...) matching ``LoopOrder.OBSERVATION_MAJOR``
    when units are single observations, and degenerating to the plain
    operator sequence for the single-unit ``OPERATOR_MAJOR`` case.
    """
    # Create every output up front so lowering can resolve all arrays.
    for unit in units:
        for op in operators:
            op.ensure_outputs(unit)

    # Stable global observation indices for labels.
    ob_index_of: Dict[int, int] = {}
    next_ob = 0
    ob_ids: Dict[int, int] = {}
    for unit in units:
        for ob in unit.obs:
            if id(ob) not in ob_ids:
                ob_ids[id(ob)] = next_ob
                next_ob += 1

    def index_arrays(unit) -> None:
        for ob in unit.obs:
            idx = ob_ids[id(ob)]
            for store in (ob.shared, ob.detdata):
                for key in store:
                    ob_index_of[id(store[key])] = idx

    stages: List[StageInfo] = []
    buffers: Dict[str, BufferLife] = {}
    by_id: Dict[int, str] = {}
    stage_idx = 0
    for unit_idx, unit in enumerate(units):
        index_arrays(unit)
        for op in operators:
            bindings = op.kernel_bindings()
            if bindings:
                accesses, knames, kinds = _spec_accesses(op, bindings, unit, ob_index_of)
            else:
                accesses = _fallback_accesses(op, unit, ob_index_of)
                knames, kinds = [], []
            accel = op.supports_accel()
            stage = StageInfo(
                index=stage_idx,
                unit_index=unit_idx,
                op=op,
                unit=unit,
                accel=accel,
                accesses=accesses,
                kernel_names=knames,
                fusion_kinds=kinds,
            )
            stages.append(stage)
            for acc in accesses:
                life = buffers.get(acc.label)
                if life is None:
                    life = BufferLife(acc.label, acc.key, acc.category, acc.array)
                    buffers[acc.label] = life
                    by_id[id(acc.array)] = acc.label
                elif life.array is not acc.array:
                    # Same label, different storage (should not happen for
                    # well-formed workflows) -- disambiguate by identity.
                    alt = f"{acc.label}#{id(acc.array):x}"
                    acc.label = alt
                    life = buffers.get(alt)
                    if life is None:
                        life = BufferLife(alt, acc.key, acc.category, acc.array)
                        buffers[alt] = life
                        by_id[id(acc.array)] = alt
                life.uses.append(
                    StageUse(stage_idx, acc.reads, acc.writes, on_device=accel)
                )
            stage_idx += 1
    return WorkflowIR(stages=stages, buffers=buffers, by_id=by_id)
