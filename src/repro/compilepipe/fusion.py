"""Cross-stage fusion: merge adjacent fusible kernels across operators.

:mod:`repro.jaxshim.fusion` fuses elementwise chains *within* one traced
function; operator boundaries are opaque to it.  Here the planner has the
whole workflow IR, so adjacent stages whose kernels are all lane-aligned
(``elementwise``, or ``gather`` whose gather source is group-external)
merge into one fused launch region: the device charges a single launch
overhead for the group, and intermediates that never escape the group
avoid a round trip through device HBM.

Safety rules (the duplicate-or-bail contract):

* ``scatter``/``reduction``/``opaque`` kernels never join a group — their
  output ordering or grid-wide dataflow needs the inter-kernel barrier.
* A ``gather`` stage joins only if none of the arrays it *reads through
  indices* (its GLOBAL-role inputs, e.g. the sky map) were written by an
  earlier member; lane-aligned reads of member outputs (pixels[d,s]
  produced by lane (d,s)) are safe.
* An intermediate produced inside a group counts as *private* (pool
  traffic elided) only when every consumer is inside the group and no
  host reader ever needs it; an escaping intermediate — including the
  diamond case where a second consumer sits outside the group — is
  materialized and claims no elision.  Execution always materializes
  device buffers, so "bail" is an accounting truth, never a correctness
  gamble.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set

from .lifetime import WorkflowIR

__all__ = ["FusedGroup", "plan_fusion"]


@dataclass
class FusedGroup:
    """A run of consecutive stages merged into one launch region."""

    name: str
    stage_indices: List[int]
    kernel_names: List[str]
    #: Labels of group-produced arrays consumed only inside the group and
    #: never read by the host: their HBM round trip between members is the
    #: fusion pass's pool-traffic win.
    private_labels: List[str] = field(default_factory=list)
    #: Labels of group-produced arrays with a consumer outside the group
    #: (or a host reader): materialized, no elision claimed.
    escaping_labels: List[str] = field(default_factory=list)
    private_bytes: int = 0

    @property
    def n_stages(self) -> int:
        return len(self.stage_indices)


def _gather_sources(stage) -> Set[int]:
    """ids of arrays a gather stage reads through indices (meta inputs)."""
    return {
        id(a.array) for a in stage.accesses if a.category == "meta" and a.reads
    }


def _classify_intermediates(ir: WorkflowIR, group: FusedGroup) -> None:
    """Fill the private/escaping label sets of a closed group."""
    members = set(group.stage_indices)
    last = max(members)
    for idx in group.stage_indices:
        stage = ir.stages[idx]
        for acc in stage.accesses:
            if not acc.writes:
                continue
            life = ir.buffers.get(acc.label)
            if life is None:
                continue
            # Written inside the group: where is it consumed?
            escapes = False
            for use in life.uses:
                if use.stage in members:
                    continue
                if use.stage > idx and (use.reads or not use.on_device):
                    escapes = True
                    break
            # Arrays every pipeline syncs back at exit (device-written
            # outputs the host will read) escape by definition unless a
            # later in-group stage is their last use AND nothing outside
            # reads them -- final outputs always escape to the host.
            if life.device_written() and life.last_use <= last:
                # No use after the group: the host still receives the
                # bytes at pipeline exit, so it escapes.
                escapes = True
            if escapes:
                if acc.label not in group.escaping_labels:
                    group.escaping_labels.append(acc.label)
            else:
                if acc.label not in group.private_labels:
                    group.private_labels.append(acc.label)
                    group.private_bytes += life.nbytes


def plan_fusion(ir: WorkflowIR, max_group: int = 8) -> List[FusedGroup]:
    """Greedy left-to-right grouping of consecutive fusible stages."""
    groups: List[FusedGroup] = []
    current: List[int] = []
    written_in_group: Set[int] = set()

    def close() -> None:
        nonlocal current, written_in_group
        if len(current) >= 2:
            first, last = current[0], current[-1]
            kernels: List[str] = []
            for idx in current:
                kernels.extend(ir.stages[idx].kernel_names)
            group = FusedGroup(
                name=f"stages{first}-{last}",
                stage_indices=list(current),
                kernel_names=kernels,
            )
            _classify_intermediates(ir, group)
            groups.append(group)
        current = []
        written_in_group = set()

    for stage in ir.stages:
        joinable = stage.accel and stage.fusible
        if joinable and len(current) >= max_group:
            close()
        if joinable and current:
            # Fusing across work units would interleave different
            # observations' launches; keep groups unit-local so the
            # schedule stays recognisable in traces.
            if ir.stages[current[-1]].unit_index != stage.unit_index:
                close()
        if joinable and "gather" in stage.fusion_kinds:
            # Bail if the gather source was produced inside the group:
            # indexed reads of in-flight data need the barrier.
            if _gather_sources(stage) & written_in_group:
                close()
        if not joinable:
            close()
            continue
        current.append(stage.index)
        for acc in stage.accesses:
            if acc.writes:
                written_in_group.add(id(acc.array))
    close()
    return groups
