"""The vmap trace: per-primitive batching over a leading axis.

Batch dims are normalized to axis 0 when values enter the trace, so every
batching rule only handles "batched at 0 or unbatched".  Rules are written
in terms of :func:`~repro.jaxshim.core.bind`, which is what lets
``vmap`` compose with ``jit`` (the payloads may themselves be jit tracers).
"""

from __future__ import annotations

from typing import Any, Dict, Sequence

from .core import Primitive, ShapedArray, Trace, Tracer, aval_of

__all__ = ["BatchTracer", "BatchTrace"]


class BatchTracer(Tracer):
    """A value carrying a leading batch axis invisible to the function."""

    def __init__(self, trace: "BatchTrace", payload: Any):
        self._trace = trace
        self.payload = payload

    @property
    def aval(self) -> ShapedArray:
        pa = aval_of(self.payload)
        if pa.ndim == 0:
            raise AssertionError("batch tracer payloads always carry a batch axis")
        return ShapedArray(pa.shape[1:], pa.dtype)

    def __repr__(self) -> str:
        return f"BatchTracer<{self.aval} batched {aval_of(self.payload).shape[0]}x>"


class BatchTrace(Trace):
    """Applies batching rules instead of the primitive itself."""

    def __init__(self, batch_size: int):
        super().__init__()
        self.batch_size = int(batch_size)

    def process(self, prim: Primitive, args: Sequence[Any], params: Dict[str, Any]):
        payloads = []
        bdims = []
        for a in args:
            if isinstance(a, BatchTracer) and a._trace is self:
                payloads.append(a.payload)
                bdims.append(0)
            else:
                payloads.append(a)
                bdims.append(None)
        if prim.batch_rule is None:
            raise NotImplementedError(
                f"primitive {prim.name!r} has no batching rule; rewrite the "
                "vmapped function to avoid it, or lift it out of vmap"
            )
        out, out_bdim = prim.batch_rule(payloads, bdims, **params)
        if out_bdim is None:
            return out
        assert out_bdim == 0, "batching rules must normalize the batch axis to 0"
        return BatchTracer(self, out)
