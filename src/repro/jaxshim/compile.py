"""Compiled executables: graph evaluation plus device cost accounting."""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

import numpy as np

from ..obs import state as obs_state
from .core import Graph, Var
from .devices import current_device
from .fusion import fusion_groups, group_cost

__all__ = ["CompiledFunction", "estimate_compile_time"]


def estimate_compile_time(n_eqns: int) -> float:
    """Modeled XLA compile time: a fixed front-end cost plus per-op work.

    Real XLA compiles of TOAST-sized kernels take tens to hundreds of
    milliseconds; the paper includes this JIT time in every reported
    runtime, so the model must charge it on first trace.
    """
    return 0.080 + 0.004 * n_eqns


class CompiledFunction:
    """An executable compiled graph.

    Evaluates equations in program order with NumPy.  When a simulated
    device is attached, each call charges modeled kernel time: one launch
    per fusion group, each costed with a roofline
    ``max(flops / peak, bytes / bandwidth)``.
    """

    def __init__(
        self,
        graph: Graph,
        name: str = "jit_fn",
        donated_in_idx: Optional[Set[int]] = None,
    ):
        self.graph = graph
        self.name = name
        self.donated_in_idx = donated_in_idx or set()
        self.groups = fusion_groups(graph)
        self.costs = [group_cost(graph, g) for g in self.groups]
        self.n_calls = 0
        self.donated_bytes_last_call = 0

    @property
    def n_kernels(self) -> int:
        """Kernel launches per call (after fusion)."""
        return len(self.groups)

    @property
    def n_eqns(self) -> int:
        return self.graph.n_eqns

    def modeled_execution_time(self, device) -> float:
        """Roofline seconds for one call on ``device`` (excl. launch cost)."""
        spec = device.spec
        total = 0.0
        for flops, nbytes in self.costs:
            total += max(flops / spec.peak_fp64_flops, nbytes / spec.memory_bandwidth_bps)
        return total

    def modeled_execution_time_unfused(self, device) -> float:
        """The counterfactual without fusion: one kernel per equation,
        every intermediate written to and read back from device memory.

        Quantifies what the paper credits the XLA compiler with ("fuse
        kernels and elide intermediate results", §2.3).
        """
        spec = device.spec
        total = 0.0
        for i, _ in enumerate(self.graph.eqns):
            flops, nbytes = group_cost(self.graph, [i])
            total += (
                max(flops / spec.peak_fp64_flops, nbytes / spec.memory_bandwidth_bps)
                + spec.kernel_launch_overhead_s
            )
        return total

    def __call__(self, *leaf_values: np.ndarray) -> List[np.ndarray]:
        if len(leaf_values) != len(self.graph.in_vars):
            raise TypeError(
                f"{self.name} expects {len(self.graph.in_vars)} array leaves, "
                f"got {len(leaf_values)}"
            )
        self.n_calls += 1

        device = current_device()
        if device is not None:
            device.launch(
                self.name,
                self.modeled_execution_time(device),
                n_launches=max(1, self.n_kernels),
            )

        env: dict[int, np.ndarray] = {}
        for var, val in zip(self.graph.in_vars, leaf_values):
            env[var.uid] = val

        if self.donated_in_idx:
            self.donated_bytes_last_call = sum(
                leaf_values[i].nbytes
                for i in self.donated_in_idx
                if i < len(leaf_values)
            )
        else:
            # Most compiled functions donate nothing; skip the per-call
            # generator walk entirely on that hot path.
            self.donated_bytes_last_call = 0

        tr = obs_state.active
        if tr is not None:
            # The launch itself was already traced by the device hook under
            # this executable's name; add the compiler-side aggregates.
            tr.metrics.count("jit.calls")
            if self.donated_bytes_last_call:
                tr.metrics.count("jit.donated_bytes", self.donated_bytes_last_call)

        for eqn in self.graph.eqns:
            args = [env[a.uid] if isinstance(a, Var) else a for a in eqn.inputs]
            env[eqn.out.uid] = eqn.prim.impl(*args, **eqn.params)

        outs: List[np.ndarray] = []
        for atom in self.graph.out_atoms:
            outs.append(env[atom.uid] if isinstance(atom, Var) else atom)
        return outs
