"""Splittable Threefry PRNG keys, like JAX's ``jax.random``.

Keys are ``uint64[2]`` arrays.  Draws are pure functions of the key and the
requested shape, so traced code stays deterministic and replayable -- the
same property TOAST's counter-based RNG provides on the C++ side
(:mod:`repro.rng` supplies the underlying Threefry cipher for both).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..rng import threefry2x64
from .core import Tracer, bind
from .primitives import random_bits_p

__all__ = ["PRNGKey", "split", "fold_in", "uniform", "normal"]


def PRNGKey(seed: int) -> np.ndarray:
    """Create a root key from an integer seed."""
    seed = int(seed)
    return np.array([seed >> 64, seed & ((1 << 64) - 1)], dtype=np.uint64)


def _check_key(key: np.ndarray) -> np.ndarray:
    if isinstance(key, Tracer):
        return key
    key = np.asarray(key)
    if key.shape != (2,) or key.dtype != np.uint64:
        raise ValueError(f"PRNG keys are uint64[2] arrays, got {key.dtype}{key.shape}")
    return key


def split(key: np.ndarray, num: int = 2) -> np.ndarray:
    """Derive ``num`` statistically independent child keys, shape (num, 2)."""
    key = _check_key(key)
    if isinstance(key, Tracer):
        raise ValueError("split requires a concrete key (call it outside jit)")
    if num < 1:
        raise ValueError("num must be >= 1")
    counters = np.arange(num, dtype=np.uint64)
    k0, k1 = threefry2x64(counters, np.uint64(0), key[0], key[1])
    return np.stack([k0, k1], axis=1)


def fold_in(key: np.ndarray, data: int) -> np.ndarray:
    """Mix an integer into a key (per-detector / per-observation streams)."""
    key = _check_key(key)
    if isinstance(key, Tracer):
        raise ValueError("fold_in requires a concrete key (call it outside jit)")
    k0, k1 = threefry2x64(np.uint64(data), np.uint64(0), key[0], key[1])
    return np.array([k0, k1], dtype=np.uint64)


def uniform(key: np.ndarray, shape: Tuple[int, ...] = ()) -> np.ndarray:
    """Uniform [0, 1) draws of the given static shape."""
    _check_key(key)
    return bind(random_bits_p, key, shape=tuple(shape), dist="uniform")


def normal(key: np.ndarray, shape: Tuple[int, ...] = ()) -> np.ndarray:
    """Standard normal draws of the given static shape."""
    _check_key(key)
    return bind(random_bits_p, key, shape=tuple(shape), dist="normal")
