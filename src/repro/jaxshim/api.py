"""The transformation API: :func:`jit` and :func:`vmap`.

These are the two transformations the TOAST port uses (paper §3.1.3: loops
become ``vmap`` calls and the resulting functions are ``jax.jit``-compiled
with static arguments such as the maximum interval size, and with output
memory donated for reuse).
"""

from __future__ import annotations

import functools
from collections import OrderedDict
from typing import Any, Callable, Optional, Sequence, Tuple

import numpy as np

from ..obs import state as obs_state
from ..obs.events import ClockDomain as ObsClockDomain
from ..obs.events import Event as ObsEvent
from ..obs.events import EventType as ObsEventType
from . import primitives as P
from .batching import BatchTrace, BatchTracer
from .compile import CompiledFunction, estimate_compile_time
from .config import config
from .core import ShapedArray, Tracer, bind, new_trace
from .devices import current_device
from .errors import JaxshimError
from .pytree import TreeDef, tree_flatten, tree_map, tree_unflatten
from .tracer import JitTrace

__all__ = ["jit", "vmap", "make_graph", "grad_not_supported"]


def make_graph(fn: Callable, static_argnums: Sequence[int] = ()) -> Callable:
    """Return a function that traces ``fn`` and returns its optimized graph
    (the shim's ``jax.make_jaxpr``): the "HLO" the compiler would consume.

    >>> print(make_graph(lambda x: (x * 2 + 1).sum())(np.zeros(4)))
    graph(%0:float64[4]):
      ...
    """

    def traced(*args):
        jf = JitFunction(fn, tuple(static_argnums))
        key, dyn_leaves, spans = jf._signature(args)
        exe, _ = jf._trace(args, dyn_leaves, spans)
        return exe.graph

    return traced


def grad_not_supported(fn: Callable) -> Callable:
    """Placeholder for ``jax.grad``.

    The paper uses JAX purely as a numerical kernel compiler; automatic
    differentiation is outside the reproduced scope, and asking for it
    should fail loudly rather than silently return garbage.
    """

    def raiser(*args, **kwargs):
        raise NotImplementedError(
            "automatic differentiation is not part of this reproduction: "
            "the paper evaluates JAX as a kernel compiler (jit + vmap), "
            "not as an autodiff system"
        )

    return raiser


def _canonicalize_leaf(leaf: Any) -> np.ndarray:
    arr = np.asarray(leaf)
    if arr.dtype == object:
        raise TypeError(
            f"jit arguments must be arrays or numbers, got {type(leaf).__name__}; "
            "mark non-array arguments static with static_argnums"
        )
    return arr.astype(config.canonical_dtype(arr.dtype), copy=False)


def _static_key(value: Any) -> Any:
    try:
        hash(value)
        return value
    except TypeError:
        return repr(value)


class JitFunction:
    """A traced-and-cached function (the object ``jit`` returns).

    Tracing happens once per signature -- the pytree structure, shapes and
    dtypes of dynamic arguments plus the values of static ones (paper
    §2.3.1: "subsequent runs will reuse the compiled function").
    """

    def __init__(
        self,
        fn: Callable,
        static_argnums: Tuple[int, ...] = (),
        donate_argnums: Tuple[int, ...] = (),
        name: Optional[str] = None,
    ):
        self.fn = fn
        self.static_argnums = tuple(sorted(set(int(i) for i in static_argnums)))
        self.donate_argnums = tuple(sorted(set(int(i) for i in donate_argnums)))
        overlap = set(self.static_argnums) & set(self.donate_argnums)
        if overlap:
            raise ValueError(f"arguments {sorted(overlap)} cannot be both static and donated")
        self.name = name or getattr(fn, "__name__", "jit_fn")
        #: Signature -> executable, in recency order (LRU at the front).
        self._cache: OrderedDict[Any, Tuple[CompiledFunction, TreeDef]] = OrderedDict()
        self.n_traces = 0
        self.cache_evictions = 0
        functools.update_wrapper(self, fn)

    # -- introspection --------------------------------------------------------

    @property
    def cache_size(self) -> int:
        return len(self._cache)

    def compiled_for(self, *args) -> Optional[CompiledFunction]:
        """The executable cached for this call signature, if any."""
        key, _, _ = self._signature(args)
        entry = self._cache.get(key)
        return entry[0] if entry else None

    # -- call -------------------------------------------------------------------

    def _signature(self, args):
        statics = []
        dyn_leaves: list[np.ndarray] = []
        dyn_tds: list[TreeDef] = []
        arg_leaf_spans: list[Tuple[int, int]] = []  # (first, count) per arg; (-1,0)=static
        for i, a in enumerate(args):
            if i in self.static_argnums:
                statics.append((i, _static_key(a)))
                arg_leaf_spans.append((-1, 0))
            else:
                leaves, td = tree_flatten(a)
                first = len(dyn_leaves)
                dyn_leaves.extend(_canonicalize_leaf(l) for l in leaves)
                dyn_tds.append(td)
                arg_leaf_spans.append((first, len(leaves)))
        key = (
            len(args),
            tuple(statics),
            tuple(dyn_tds),
            tuple((l.shape, str(l.dtype)) for l in dyn_leaves),
            config.enable_x64,
        )
        return key, dyn_leaves, arg_leaf_spans

    def _trace(self, args, dyn_leaves, arg_leaf_spans):
        self.n_traces += 1
        trace = JitTrace(self.name)
        with new_trace(trace):
            tracers = [trace.new_arg(ShapedArray(l.shape, l.dtype)) for l in dyn_leaves]
            call_args = []
            cursor = 0
            for i, a in enumerate(args):
                first, count = arg_leaf_spans[i]
                if first < 0:
                    call_args.append(a)
                else:
                    _, td = tree_flatten(a)
                    call_args.append(tree_unflatten(td, tracers[first : first + count]))
                    cursor += count
            out = self.fn(*call_args)
            out_leaves, out_tree = tree_flatten(out)
            graph = trace.finalize(out_leaves)

        from .fusion import optimize

        graph = optimize(graph)

        donated: set[int] = set()
        for argnum in self.donate_argnums:
            if argnum >= len(args):
                continue
            first, count = arg_leaf_spans[argnum]
            donated.update(range(first, first + count))

        exe = CompiledFunction(graph, name=self.name, donated_in_idx=donated)
        device = current_device()
        if device is not None:
            device.clock.charge("jit_compile", estimate_compile_time(graph.n_eqns))
        return exe, out_tree

    def __call__(self, *args, **kwargs):
        if kwargs:
            raise TypeError(
                f"{self.name}: pass arguments positionally to jit-compiled "
                "functions (keyword support is not implemented in the shim)"
            )
        # Called under an outer trace: inline, letting the outer trace record.
        flat_all, _ = tree_flatten(list(args))
        if builtins_any(isinstance(l, Tracer) for l in flat_all):
            return self.fn(*args)

        key, dyn_leaves, arg_leaf_spans = self._signature(args)
        entry = self._cache.get(key)
        obs_tr = obs_state.active
        if entry is None:
            if obs_tr is not None:
                t0 = obs_tr.now()
                entry = self._trace(args, dyn_leaves, arg_leaf_spans)
                obs_tr.emit(
                    ObsEvent(
                        ObsEventType.COMPILE,
                        self.name,
                        ts=t0,
                        dur=obs_tr.now() - t0,
                        clock=ObsClockDomain.HOST,
                        attrs={
                            "cache_hit": False,
                            "n_eqns": entry[0].n_eqns,
                            "n_kernels": entry[0].n_kernels,
                            "cache_size": len(self._cache) + 1,
                        },
                    )
                )
                obs_tr.metrics.count("jit.cache_misses")
            else:
                entry = self._trace(args, dyn_leaves, arg_leaf_spans)
            self._cache[key] = entry
            self._evict_lru(obs_tr)
        elif obs_tr is not None:
            obs_tr.emit(
                ObsEvent(
                    ObsEventType.COMPILE,
                    self.name,
                    ts=obs_tr.now(),
                    clock=ObsClockDomain.HOST,
                    attrs={"cache_hit": True, "cache_size": len(self._cache)},
                )
            )
            obs_tr.metrics.count("jit.cache_hits")
        if self._cache:
            self._cache.move_to_end(key)
        exe, out_tree = entry
        out_leaves = exe(*dyn_leaves)
        return tree_unflatten(out_tree, list(out_leaves))

    def _evict_lru(self, obs_tr) -> None:
        """Drop least-recently-used signatures beyond the configured bound."""
        limit = config.jit_cache_max_size
        if limit is None:
            return
        while len(self._cache) > max(1, int(limit)):
            self._cache.popitem(last=False)
            self.cache_evictions += 1
            if obs_tr is not None:
                obs_tr.metrics.count("jit.cache_evictions")


def jit(
    fn: Optional[Callable] = None,
    *,
    static_argnums: Sequence[int] = (),
    donate_argnums: Sequence[int] = (),
) -> Callable:
    """Trace-and-compile a pure function of arrays.

    Usable as ``@jit`` or ``jit(fn, static_argnums=(2,))``.  Static
    arguments become part of the cache key (e.g. the maximum interval size
    in the TOAST kernels); donated arguments release their buffers to the
    runtime for reuse as outputs.
    """
    if fn is None:
        return lambda f: JitFunction(f, tuple(static_argnums), tuple(donate_argnums))
    return JitFunction(fn, tuple(static_argnums), tuple(donate_argnums))


# --------------------------------------------------------------------------- #
# vmap
# --------------------------------------------------------------------------- #

import builtins

builtins_any = builtins.any


def _leaf_batch_size(leaf: Any, axis: int) -> int:
    shape = tuple(getattr(leaf, "shape", np.shape(leaf)))
    ax = axis + len(shape) if axis < 0 else axis
    if not 0 <= ax < len(shape):
        raise ValueError(f"vmap in_axis {axis} out of range for shape {shape}")
    return shape[ax]


def vmap(fn: Callable, in_axes: Any = 0, out_axes: int = 0) -> Callable:
    """Vectorize ``fn`` over one axis of its (batched) arguments.

    ``in_axes`` is an int applied to every argument, or a tuple with one
    entry per positional argument (ints or None for unbatched).  This is
    the transformation the port applies to the detector/interval loops
    (paper §3.1.3).
    """

    def wrapped(*args):
        if isinstance(in_axes, (tuple, list)):
            axes = tuple(in_axes)
            if len(axes) != len(args):
                raise ValueError(
                    f"vmap in_axes has {len(axes)} entries for {len(args)} arguments"
                )
        else:
            axes = (in_axes,) * len(args)

        batch_size: Optional[int] = None
        for a, ax in zip(args, axes):
            if ax is None:
                continue
            leaves, _ = tree_flatten(a)
            for leaf in leaves:
                b = _leaf_batch_size(leaf, ax)
                if batch_size is None:
                    batch_size = b
                elif b != batch_size:
                    raise ValueError(
                        f"inconsistent vmap batch sizes: {batch_size} vs {b}"
                    )
        if batch_size is None:
            raise ValueError("vmap needs at least one batched argument (in_axes not all None)")

        from .numpy_api import moveaxis

        trace = BatchTrace(batch_size)
        with new_trace(trace):
            in_vals = []
            for a, ax in zip(args, axes):
                if ax is None:
                    in_vals.append(a)
                else:
                    in_vals.append(
                        tree_map(
                            lambda l: BatchTracer(
                                trace, moveaxis(l, ax, 0) if ax != 0 else l
                            ),
                            a,
                        )
                    )
            out = fn(*in_vals)

            def unwrap(o):
                if isinstance(o, BatchTracer) and o._trace is trace:
                    payload = o.payload
                elif isinstance(o, Tracer) or isinstance(o, np.ndarray) or np.isscalar(o):
                    shape = tuple(getattr(o, "shape", np.shape(o)))
                    payload = bind(P.broadcast_to_p, o, shape=(batch_size,) + shape)
                else:
                    return o
                if out_axes != 0:
                    payload = moveaxis(payload, 0, out_axes)
                return payload

            result = tree_map(unwrap, out)
        return result

    functools.update_wrapper(wrapped, fn)
    return wrapped
