"""The jit trace: records primitive applications into a static graph."""

from __future__ import annotations

from typing import Any, Dict, Sequence

import numpy as np

from .core import Eqn, Graph, Primitive, ShapedArray, Trace, Tracer, Var, aval_of
from .errors import TracerError

__all__ = ["JitTracer", "JitTrace"]


class JitTracer(Tracer):
    """An abstract array: just a graph variable with shape and dtype."""

    def __init__(self, trace: "JitTrace", var: Var):
        self._trace = trace
        self.var = var

    @property
    def aval(self) -> ShapedArray:
        return self.var.aval

    def __repr__(self) -> str:
        return f"JitTracer<{self.aval}>"


class JitTrace(Trace):
    """Records equations while the user function runs on tracers."""

    def __init__(self, name: str = "jit_fn"):
        super().__init__()
        self.name = name
        self.eqns: list[Eqn] = []
        self.in_vars: list[Var] = []

    def new_arg(self, aval: ShapedArray) -> JitTracer:
        var = Var(aval)
        self.in_vars.append(var)
        return JitTracer(self, var)

    def process(self, prim: Primitive, args: Sequence[Any], params: Dict[str, Any]):
        inputs = []
        for a in args:
            if isinstance(a, JitTracer) and a._trace is self:
                inputs.append(a.var)
            elif isinstance(a, Tracer):
                raise TracerError(
                    f"a tracer from another transformation leaked into this "
                    f"jit trace (while applying {prim.name}). This usually "
                    "means a traced value was stored in a Python-level "
                    "variable or closure across jit boundaries; pass it as "
                    "an explicit function argument instead."
                )
            else:
                arr = np.asarray(a)
                # Mimic JAX's weak typing: captured Python/NumPy constants
                # follow the canonical precision instead of re-promoting
                # demoted operands.  uint64 is exempt (PRNG key words).
                if arr.dtype != np.uint64:
                    from .config import config

                    arr = arr.astype(config.canonical_dtype(arr.dtype), copy=False)
                inputs.append(arr)
        avals = [i.aval if isinstance(i, Var) else aval_of(i) for i in inputs]
        out_aval = prim.shape_rule(*avals, **params)
        out_var = Var(out_aval)
        self.eqns.append(Eqn(prim, inputs, dict(params), out_var))
        return JitTracer(self, out_var)

    def finalize(self, out_leaves: Sequence[Any]) -> Graph:
        """Build the graph once the user function has returned."""
        out_atoms = []
        for leaf in out_leaves:
            if isinstance(leaf, JitTracer) and leaf._trace is self:
                out_atoms.append(leaf.var)
            elif isinstance(leaf, Tracer):
                raise TracerError(
                    "a foreign tracer appeared in the outputs of a "
                    "jit-compiled function"
                )
            else:
                out_atoms.append(np.asarray(leaf))
        return Graph(in_vars=list(self.in_vars), eqns=list(self.eqns), out_atoms=out_atoms)
