"""Minimal pytree flatten/unflatten (tuples, lists, dicts, leaves).

jit and vmap accept nested containers of arrays; this module provides the
structural bookkeeping, like ``jax.tree_util`` but only for the container
types the kernels use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Tuple

__all__ = ["TreeDef", "tree_flatten", "tree_unflatten", "tree_map"]


@dataclass(frozen=True)
class TreeDef:
    """Structure descriptor: a nested spec mirroring the container shape.

    ``kind`` is one of "leaf", "tuple", "list", "dict"; ``children`` holds
    child TreeDefs; for dicts, ``keys`` records the (sorted) key order.
    """

    kind: str
    children: Tuple["TreeDef", ...] = ()
    keys: Tuple[Any, ...] = ()

    @property
    def n_leaves(self) -> int:
        if self.kind == "leaf":
            return 1
        return sum(c.n_leaves for c in self.children)


_LEAF = TreeDef("leaf")


def tree_flatten(tree: Any) -> Tuple[List[Any], TreeDef]:
    """Flatten ``tree`` into (leaves, treedef).  None is a leaf."""
    leaves: List[Any] = []

    def go(node: Any) -> TreeDef:
        if isinstance(node, tuple):
            return TreeDef("tuple", tuple(go(c) for c in node))
        if isinstance(node, list):
            return TreeDef("list", tuple(go(c) for c in node))
        if isinstance(node, dict):
            keys = tuple(sorted(node.keys()))
            return TreeDef("dict", tuple(go(node[k]) for k in keys), keys)
        leaves.append(node)
        return _LEAF

    treedef = go(tree)
    return leaves, treedef


def tree_unflatten(treedef: TreeDef, leaves: List[Any]) -> Any:
    """Inverse of :func:`tree_flatten`."""
    it = iter(leaves)

    def go(td: TreeDef) -> Any:
        if td.kind == "leaf":
            return next(it)
        if td.kind == "tuple":
            return tuple(go(c) for c in td.children)
        if td.kind == "list":
            return [go(c) for c in td.children]
        if td.kind == "dict":
            return {k: go(c) for k, c in zip(td.keys, td.children)}
        raise ValueError(f"unknown treedef kind {td.kind!r}")

    out = go(treedef)
    remainder = list(it)
    if remainder:
        raise ValueError(f"{len(remainder)} extra leaves for treedef")
    return out


def tree_map(fn, tree: Any) -> Any:
    """Apply ``fn`` to every leaf, preserving structure."""
    leaves, treedef = tree_flatten(tree)
    return tree_unflatten(treedef, [fn(leaf) for leaf in leaves])
