"""Graph optimization passes: DCE, CSE, and loop-fusion grouping.

The paper credits JAX's compiler with "fusing kernels and eliding
intermediate results" (§2.3); these passes are the shim's version.  The
fusion grouping also feeds the device model: one group = one kernel
launch, and fused intermediates cost no memory traffic.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

import numpy as np

from .core import Eqn, Graph, Var

__all__ = [
    "dead_code_elimination",
    "common_subexpression_elimination",
    "fusion_groups",
    "optimize",
    "group_cost",
    "escaping_outputs",
]

#: Kinds that may join an open fusion group.
_FUSABLE = {"elementwise", "gather", "shape"}
#: Kinds that may join a group but close it (XLA fuses elementwise
#: producers into a reduction but nothing fuses after the reduce).
_CLOSING = {"reduction"}


def dead_code_elimination(graph: Graph) -> Graph:
    """Drop equations whose outputs never reach the graph outputs.

    All primitives are pure, so unused computation is safely removable --
    one of the "wasteful copies" eliminations the paper leans on.
    """
    needed: Set[int] = {a.uid for a in graph.out_atoms if isinstance(a, Var)}
    kept: List[Eqn] = []
    for eqn in reversed(graph.eqns):
        if eqn.out.uid in needed:
            kept.append(eqn)
            for i in eqn.inputs:
                if isinstance(i, Var):
                    needed.add(i.uid)
    kept.reverse()
    return Graph(graph.in_vars, kept, graph.out_atoms)


def _atom_key(atom) -> Tuple:
    if isinstance(atom, Var):
        return ("v", atom.uid)
    arr = np.asarray(atom)
    if arr.nbytes <= 1024:
        return ("c", str(arr.dtype), arr.shape, arr.tobytes())
    return ("cid", id(atom))


def _params_key(params: dict) -> Tuple:
    return tuple(sorted((k, repr(v)) for k, v in params.items()))


def common_subexpression_elimination(graph: Graph) -> Graph:
    """Deduplicate structurally identical pure equations."""
    seen: Dict[Tuple, Var] = {}
    subst: Dict[int, Var] = {}
    kept: List[Eqn] = []

    def resolve(atom):
        if isinstance(atom, Var) and atom.uid in subst:
            return subst[atom.uid]
        return atom

    for eqn in graph.eqns:
        inputs = [resolve(i) for i in eqn.inputs]
        if eqn.prim.kind == "random":
            # Random draws are keyed deterministically so CSE *would* be
            # sound, but keep them distinct to match the one-draw-per-call
            # accounting of the cost model.
            kept.append(Eqn(eqn.prim, inputs, eqn.params, eqn.out))
            continue
        key = (eqn.prim.name, tuple(_atom_key(i) for i in inputs), _params_key(eqn.params))
        if key in seen:
            subst[eqn.out.uid] = seen[key]
        else:
            seen[key] = eqn.out
            kept.append(Eqn(eqn.prim, inputs, eqn.params, eqn.out))

    out_atoms = [resolve(a) for a in graph.out_atoms]
    return Graph(graph.in_vars, kept, out_atoms)


def fusion_groups(graph: Graph) -> List[List[int]]:
    """Partition equations into fused kernels (lists of eqn indices).

    Greedy producer-consumer fusion: an equation joins the open group when
    its kind is fusable and it consumes a value produced inside the group
    (or the group is empty); reductions join then close; scatters,
    contractions, and random draws stand alone.
    """
    groups: List[List[int]] = []
    current: List[int] = []
    touched: Set[int] = set()  # vars produced or consumed by the open group

    def close():
        nonlocal current, touched
        if current:
            groups.append(current)
        current = []
        touched = set()

    for i, eqn in enumerate(graph.eqns):
        kind = eqn.prim.kind
        if kind in _FUSABLE or kind in _CLOSING:
            # Vertical fusion (consume a group-produced value) or horizontal
            # fusion (share an operand with the group) both keep the chain.
            connected = not current or any(
                isinstance(a, Var) and a.uid in touched for a in eqn.inputs
            )
            if not connected:
                close()
            current.append(i)
            touched.add(eqn.out.uid)
            touched.update(a.uid for a in eqn.inputs if isinstance(a, Var))
            if kind in _CLOSING:
                close()
        else:
            close()
            groups.append([i])
    close()
    return groups


def escaping_outputs(graph: Graph, group: List[int]) -> Set[int]:
    """uids of group-produced values with a consumer outside the group.

    This is the duplicate-or-bail decision point for multi-consumer
    intermediates.  A value produced inside a group may be consumed by any
    number of in-group equations for free (diamond dependencies fuse — the
    value lives in registers and both consumers read it there).  The
    moment *any* consumer sits outside the group — a later fused kernel, a
    standalone scatter, or the graph outputs themselves — the value must
    be materialized to HBM and its bytes charged.  The pass never claims
    an elision for an escaping value, no matter how many in-group
    consumers it also has: materializing is always sound, so "bail" here
    is an accounting truth rather than a correctness gamble.
    """
    group_set = set(group)
    produced = {graph.eqns[i].out.uid for i in group}
    escaping: Set[int] = set()
    for a in graph.out_atoms:
        if isinstance(a, Var) and a.uid in produced:
            escaping.add(a.uid)
    for j, e in enumerate(graph.eqns):
        if j in group_set:
            continue
        for a in e.inputs:
            if isinstance(a, Var) and a.uid in produced:
                escaping.add(a.uid)
    return escaping


def group_cost(graph: Graph, group: List[int]) -> Tuple[float, int]:
    """(flops, bytes) of one fused kernel.

    Bytes counts only group inputs produced outside the group plus outputs
    consumed outside it (see :func:`escaping_outputs`): fusion elides
    intermediate memory traffic.
    """
    eqns = [graph.eqns[i] for i in group]
    produced = {e.out.uid for e in eqns}
    flops = sum(e.prim.flops_per_element * e.out.aval.size for e in eqns)

    in_bytes = 0
    seen: Set[Tuple] = set()
    for e in eqns:
        for a in e.inputs:
            if isinstance(a, Var):
                if a.uid in produced or ("v", a.uid) in seen:
                    continue
                seen.add(("v", a.uid))
                in_bytes += a.aval.nbytes
            else:
                key = ("cid", id(a))
                if key in seen:
                    continue
                seen.add(key)
                in_bytes += np.asarray(a).nbytes

    escaping = escaping_outputs(graph, group)
    out_bytes = sum(e.out.aval.nbytes for e in eqns if e.out.uid in escaping)
    return flops, in_bytes + out_bytes


def optimize(graph: Graph) -> Graph:
    """The standard pass pipeline: CSE then DCE."""
    return dead_code_elimination(common_subexpression_elimination(graph))
