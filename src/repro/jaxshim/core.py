"""Core machinery: abstract values, tracers, primitives, and the graph IR.

The design is a compact version of JAX's: a stack of active *traces*; a
:func:`bind` entry point through which every ``jnp`` operation flows; when
no trace is active the NumPy implementation runs eagerly, otherwise the
innermost trace interprets the operation (recording an equation for jit,
applying a batching rule for vmap).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .errors import ConcretizationError, MutationError, TracerArrayConversionError

__all__ = [
    "ShapedArray",
    "Primitive",
    "Tracer",
    "Trace",
    "bind",
    "aval_of",
    "Var",
    "Eqn",
    "Graph",
    "new_trace",
]


# --------------------------------------------------------------------------- #
# Abstract values
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class ShapedArray:
    """Static shape + dtype: everything the compiler knows about an array."""

    shape: Tuple[int, ...]
    dtype: np.dtype

    def __post_init__(self) -> None:
        object.__setattr__(self, "shape", tuple(int(s) for s in self.shape))
        object.__setattr__(self, "dtype", np.dtype(self.dtype))

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def size(self) -> int:
        out = 1
        for s in self.shape:
            out *= s
        return out

    @property
    def nbytes(self) -> int:
        return self.size * self.dtype.itemsize

    def __repr__(self) -> str:
        dims = ",".join(str(s) for s in self.shape)
        return f"{self.dtype.name}[{dims}]"


def aval_of(value: Any) -> ShapedArray:
    """Abstract value of a concrete array, scalar, or tracer."""
    if isinstance(value, Tracer):
        return value.aval
    arr = np.asarray(value)
    return ShapedArray(arr.shape, arr.dtype)


# --------------------------------------------------------------------------- #
# Primitives
# --------------------------------------------------------------------------- #


@dataclass
class Primitive:
    """One compiler primitive.

    Attributes
    ----------
    name:
        HLO-style operation name.
    impl:
        Concrete NumPy implementation.
    shape_rule:
        ``(*avals, **params) -> ShapedArray`` abstract evaluation.
    batch_rule:
        ``(args, bdims, **params) -> (out, out_bdim)`` vmap rule; ``args``
        are payload values (possibly tracers of an outer trace) and
        ``bdims`` the batched-axis index or None per argument.
    kind:
        Fusion class: "elementwise" ops fuse with neighbours; "gather",
        "scatter", "reduction", "contraction", "shape", "random", "other"
        end fusion groups (a simplified XLA loop-fusion policy).
    flops_per_element:
        Arithmetic cost per output element for the roofline model.
    """

    name: str
    impl: Callable[..., np.ndarray]
    shape_rule: Callable[..., ShapedArray]
    batch_rule: Optional[Callable[..., Tuple[Any, Optional[int]]]] = None
    kind: str = "other"
    flops_per_element: float = 1.0

    def bind(self, *args: Any, **params: Any) -> Any:
        return bind(self, *args, **params)

    def __repr__(self) -> str:
        return f"Primitive({self.name})"


# --------------------------------------------------------------------------- #
# Traces and tracers
# --------------------------------------------------------------------------- #

_trace_stack: List["Trace"] = []


class Trace:
    """One active transformation (jit tracing or vmap batching)."""

    def __init__(self) -> None:
        self.level: int = -1

    def process(self, prim: Primitive, args: Sequence[Any], params: Dict[str, Any]) -> Any:
        raise NotImplementedError


class new_trace:
    """Context manager pushing a trace onto the stack with the next level."""

    def __init__(self, trace: Trace):
        self.trace = trace

    def __enter__(self) -> Trace:
        self.trace.level = len(_trace_stack)
        _trace_stack.append(self.trace)
        return self.trace

    def __exit__(self, *exc) -> None:
        popped = _trace_stack.pop()
        assert popped is self.trace, "trace stack corrupted"


def bind(prim: Primitive, *args: Any, **params: Any) -> Any:
    """Apply a primitive: eagerly, or via the innermost owning trace."""
    top: Optional[Trace] = None
    for a in args:
        if isinstance(a, Tracer):
            t = a._trace
            if top is None or t.level > top.level:
                top = t
    if top is None:
        return prim.impl(*args, **params)
    return top.process(prim, args, params)


class Tracer:
    """Base class for abstract arrays flowing through transformations.

    Subclasses provide ``aval`` and ``_trace``.  All NumPy-like operator
    overloads route through :func:`bind`; the Python-coercion dunders raise
    the descriptive errors the programming model demands.
    """

    _trace: Trace

    # Make NumPy defer binary operations to the tracer's reflected dunders
    # instead of coercing it via __array__ (which must raise).
    __array_ufunc__ = None
    __array_priority__ = 100.0

    @property
    def aval(self) -> ShapedArray:
        raise NotImplementedError

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.aval.shape

    @property
    def dtype(self) -> np.dtype:
        return self.aval.dtype

    @property
    def ndim(self) -> int:
        return self.aval.ndim

    @property
    def size(self) -> int:
        return self.aval.size

    # -- purity and concretization guards -----------------------------------

    def __setitem__(self, idx, value) -> None:
        raise MutationError()

    def __bool__(self) -> bool:
        raise ConcretizationError("bool()")

    def __int__(self) -> int:
        raise ConcretizationError("int()")

    def __float__(self) -> float:
        raise ConcretizationError("float()")

    def __index__(self) -> int:
        raise ConcretizationError("using as an index")

    def __iter__(self):
        # Iterating a known-length leading axis is legal (shape is static).
        if self.ndim == 0:
            raise ConcretizationError("iterating a scalar")
        return (self[i] for i in range(self.shape[0]))

    def __len__(self) -> int:
        if self.ndim == 0:
            raise TypeError("len() of a scalar array")
        return self.shape[0]

    def __array__(self, dtype=None):
        raise TracerArrayConversionError()

    # -- operator overloads (filled in by numpy_api at import time) ----------

    _ops: Dict[str, Callable] = {}

    def _binop(self, name: str, other: Any, reverse: bool = False) -> Any:
        fn = Tracer._ops[name]
        if reverse:
            return fn(other, self)
        return fn(self, other)

    def __add__(self, o):
        return self._binop("add", o)

    def __radd__(self, o):
        return self._binop("add", o, True)

    def __sub__(self, o):
        return self._binop("subtract", o)

    def __rsub__(self, o):
        return self._binop("subtract", o, True)

    def __mul__(self, o):
        return self._binop("multiply", o)

    def __rmul__(self, o):
        return self._binop("multiply", o, True)

    def __truediv__(self, o):
        return self._binop("divide", o)

    def __rtruediv__(self, o):
        return self._binop("divide", o, True)

    def __floordiv__(self, o):
        return self._binop("floor_divide", o)

    def __rfloordiv__(self, o):
        return self._binop("floor_divide", o, True)

    def __mod__(self, o):
        return self._binop("remainder", o)

    def __rmod__(self, o):
        return self._binop("remainder", o, True)

    def __pow__(self, o):
        return self._binop("power", o)

    def __rpow__(self, o):
        return self._binop("power", o, True)

    def __neg__(self):
        return Tracer._ops["negative"](self)

    def __abs__(self):
        return Tracer._ops["abs"](self)

    def __lt__(self, o):
        return self._binop("less", o)

    def __le__(self, o):
        return self._binop("less_equal", o)

    def __gt__(self, o):
        return self._binop("greater", o)

    def __ge__(self, o):
        return self._binop("greater_equal", o)

    def __eq__(self, o):
        return self._binop("equal", o)

    def __ne__(self, o):
        return self._binop("not_equal", o)

    def __hash__(self):
        raise ConcretizationError("hashing")

    def __and__(self, o):
        return self._binop("bitwise_and", o)

    def __rand__(self, o):
        return self._binop("bitwise_and", o, True)

    def __or__(self, o):
        return self._binop("bitwise_or", o)

    def __ror__(self, o):
        return self._binop("bitwise_or", o, True)

    def __xor__(self, o):
        return self._binop("bitwise_xor", o)

    def __rxor__(self, o):
        return self._binop("bitwise_xor", o, True)

    def __invert__(self):
        return Tracer._ops["bitwise_not"](self)

    def __lshift__(self, o):
        return self._binop("left_shift", o)

    def __rshift__(self, o):
        return self._binop("right_shift", o)

    def __matmul__(self, o):
        return self._binop("matmul", o)

    def __getitem__(self, idx):
        return Tracer._ops["getitem"](self, idx)

    # -- numpy-like conveniences ------------------------------------------------

    def astype(self, dtype):
        return Tracer._ops["astype"](self, dtype)

    def sum(self, axis=None):
        return Tracer._ops["sum"](self, axis)

    def min(self, axis=None):
        return Tracer._ops["min"](self, axis)

    def max(self, axis=None):
        return Tracer._ops["max"](self, axis)

    def mean(self, axis=None):
        return Tracer._ops["mean"](self, axis)

    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return Tracer._ops["reshape"](self, shape)

    def ravel(self):
        return Tracer._ops["reshape"](self, (-1,))

    @property
    def at(self):
        return Tracer._ops["at"](self)

    @property
    def T(self):
        return Tracer._ops["transpose"](self)


# --------------------------------------------------------------------------- #
# Graph IR ("HLO")
# --------------------------------------------------------------------------- #

_var_counter = itertools.count()


@dataclass(eq=False)
class Var:
    """A single-assignment graph variable."""

    aval: ShapedArray
    uid: int = field(default_factory=lambda: next(_var_counter))

    def __repr__(self) -> str:
        return f"%{self.uid}:{self.aval}"


Atom = Union[Var, np.ndarray]


@dataclass(eq=False)
class Eqn:
    """One graph equation: ``out = prim(*inputs, **params)``."""

    prim: Primitive
    inputs: List[Atom]
    params: Dict[str, Any]
    out: Var

    def __repr__(self) -> str:
        ins = ", ".join(
            repr(i) if isinstance(i, Var) else f"const{np.shape(i)}" for i in self.inputs
        )
        return f"{self.out!r} = {self.prim.name}({ins})"


@dataclass(eq=False)
class Graph:
    """A traced function body: the static data-dependency graph.

    ``in_vars`` are the flattened dynamic inputs; ``out_atoms`` the
    flattened outputs (vars or captured constants); equations are in
    topological (program) order.
    """

    in_vars: List[Var]
    eqns: List[Eqn]
    out_atoms: List[Atom]

    def __repr__(self) -> str:
        lines = [f"graph({', '.join(map(repr, self.in_vars))}):"]
        lines += [f"  {e!r}" for e in self.eqns]
        outs = ", ".join(
            repr(o) if isinstance(o, Var) else f"const{np.shape(o)}" for o in self.out_atoms
        )
        lines.append(f"  return {outs}")
        return "\n".join(lines)

    @property
    def n_eqns(self) -> int:
        return len(self.eqns)
