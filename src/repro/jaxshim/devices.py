"""Attachment point between jaxshim and the simulated accelerator.

Mirrors JAX process-level behaviour: when a device is present, compiled
calls charge compile and execution time to it, and (by default) a large
fraction of device memory is *preallocated* as a pool -- the behaviour the
paper had to disable to oversubscribe GPUs (§3.1.3).
"""

from __future__ import annotations

from typing import Optional

from ..accel import DeviceBuffer, SimulatedDevice
from .config import config

__all__ = ["attach_device", "detach_device", "current_device", "preallocated_bytes"]

_device: Optional[SimulatedDevice] = None
_prealloc_buffer: Optional[DeviceBuffer] = None


def attach_device(device: SimulatedDevice) -> None:
    """Make compiled functions run "on" this device.

    With ``config.preallocate_memory`` (the JAX default), grabs
    ``config.preallocate_fraction`` of the device pool immediately -- which
    is exactly why several JAX processes cannot naively share one GPU.
    """
    global _device, _prealloc_buffer
    detach_device()
    _device = device
    if config.preallocate_memory:
        want = int(config.preallocate_fraction * device.pool.capacity)
        # Preallocation failure is fatal in JAX; keep that behaviour.
        _prealloc_buffer = device.alloc(want)


def detach_device() -> None:
    """Detach (and release any preallocated pool)."""
    global _device, _prealloc_buffer
    if _prealloc_buffer is not None and _device is not None:
        if not _prealloc_buffer.freed:
            _device.free(_prealloc_buffer)
    _prealloc_buffer = None
    _device = None


def current_device() -> Optional[SimulatedDevice]:
    return _device


def preallocated_bytes() -> int:
    """How much device memory the attached runtime holds preallocated."""
    if _prealloc_buffer is None or _prealloc_buffer.freed:
        return 0
    return _prealloc_buffer.nbytes
