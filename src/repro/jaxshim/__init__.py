"""jaxshim -- a miniature JAX built on NumPy.

The paper ports TOAST kernels to JAX: pure functions over immutable arrays,
traced once per static shape signature, compiled by XLA, with ``vmap``
vectorizing the detector/interval loops.  No JAX exists in this
environment, so this package rebuilds the *programming model* the paper
evaluates:

* a NumPy-like ``jnp`` namespace whose operations either execute eagerly
  or record into a static graph ("HLO") while tracing;
* :func:`jit` -- trace-and-cache compilation keyed on shapes/dtypes and
  static arguments, with ``donate_argnums`` buffer donation;
* :func:`vmap` -- vectorization via per-primitive batching rules;
* functional updates (``x.at[idx].set(v)``) in place of mutation, with the
  purity errors JAX raises on in-place assignment;
* graph optimization passes (dead-code elimination, common-subexpression
  elimination, elementwise fusion) whose fused-group count drives the
  simulated device's kernel-launch accounting;
* a Threefry ``PRNGKey`` reusing :mod:`repro.rng`;
* the two configuration switches the paper flips: 64-bit mode and device
  memory preallocation.

Execution is NumPy underneath; when a :class:`repro.accel.SimulatedDevice`
is attached, compiled calls charge modeled compile, launch, and roofline
execution time to its virtual clock.
"""

from . import numpy_api as jnp  # noqa: F401  (the conventional alias)
from . import lax  # noqa: F401  (structured control flow)
from .api import jit, make_graph, vmap, grad_not_supported
from .config import config
from .core import ShapedArray, Tracer
from .devices import attach_device, current_device, detach_device
from .errors import (
    ConcretizationError,
    JaxshimError,
    ShapeError,
    TracerArrayConversionError,
    TracerError,
)
from .prng import PRNGKey, normal, split, uniform

__all__ = [
    "jnp",
    "lax",
    "jit",
    "vmap",
    "make_graph",
    "grad_not_supported",
    "config",
    "ShapedArray",
    "Tracer",
    "attach_device",
    "detach_device",
    "current_device",
    "JaxshimError",
    "TracerError",
    "ConcretizationError",
    "TracerArrayConversionError",
    "ShapeError",
    "PRNGKey",
    "split",
    "uniform",
    "normal",
]
