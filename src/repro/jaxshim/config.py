"""Global configuration switches.

The paper's only two changes to JAX defaults (§3.1.3): enabling 64-bit
floating point and disabling device memory preallocation.  Both exist here
with JAX's defaults (x64 off, preallocation on).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

import numpy as np

__all__ = ["config", "next_batch_bucket"]


def next_batch_bucket(n: int) -> int:
    """The power-of-two shape bucket ``n`` pads up to.

    The jit signature cache keys on exact argument shapes, so a megabatch
    whose observation count varies run-to-run would retrace (and, past
    ``jit_cache_max_size``, *evict*) per distinct count.  Padding the
    stacked batch axis to the next power of two makes nearby group sizes
    hash to the same (padded-shape, dtype) signature: at most
    ``log2(n_obs_max)`` traces ever exist per kernel.
    """
    if n <= 1:
        return 1
    return 1 << (int(n - 1).bit_length())


class _Config:
    """Mutable global configuration (mirrors ``jax.config``)."""

    def __init__(self) -> None:
        self.enable_x64 = False
        #: Fraction of device memory grabbed up front when a device is
        #: attached with preallocation on (the real default is 0.75).
        self.preallocate_memory = True
        self.preallocate_fraction = 0.75
        #: Per-function bound on the jit signature cache.  Long-running
        #: pipelines that sweep shapes (interval padding, detector counts)
        #: would otherwise grow every JitFunction's cache without limit;
        #: beyond the bound the least-recently-used signature is evicted
        #: and recompiles on next use.  ``None`` disables the bound.
        self.jit_cache_max_size = 256

    def update(self, name: str, value) -> None:
        if not hasattr(self, name):
            raise AttributeError(f"unknown config flag {name!r}")
        setattr(self, name, value)

    @contextmanager
    def temporarily(self, **flags) -> Iterator[None]:
        """Set flags inside a block, restoring previous values after."""
        saved = {k: getattr(self, k) for k in flags}
        for k, v in flags.items():
            self.update(k, v)
        try:
            yield
        finally:
            for k, v in saved.items():
                setattr(self, k, v)

    # -- dtype canonicalization ------------------------------------------------

    def canonical_dtype(self, dtype: np.dtype) -> np.dtype:
        """The dtype arrays take at the jit boundary.

        Without x64, JAX demotes 64-bit types to 32-bit; with x64 enabled
        (as the paper's port runs) dtypes pass through unchanged.
        """
        dtype = np.dtype(dtype)
        if self.enable_x64:
            return dtype
        demotions = {
            np.dtype(np.float64): np.dtype(np.float32),
            np.dtype(np.int64): np.dtype(np.int32),
            np.dtype(np.uint64): np.dtype(np.uint32),
            np.dtype(np.complex128): np.dtype(np.complex64),
        }
        return demotions.get(dtype, dtype)

    def default_float(self) -> np.dtype:
        return np.dtype(np.float64) if self.enable_x64 else np.dtype(np.float32)

    def default_int(self) -> np.dtype:
        return np.dtype(np.int64) if self.enable_x64 else np.dtype(np.int32)


config = _Config()
