"""``jnp`` -- the NumPy-like public namespace (paper §2.3: "an
array-oriented library reminiscent of NumPy").

Every function routes through :func:`~repro.jaxshim.core.bind`: on concrete
arrays it executes eagerly with NumPy; under ``jit`` it records graph
equations; under ``vmap`` it applies batching rules.
"""

from __future__ import annotations

import builtins as _builtins
from typing import Any, Optional, Sequence, Tuple, Union

import numpy as np

builtins_any = _builtins.any
builtins_all = _builtins.all

from . import primitives as P
from .config import config
from .core import Tracer, bind
from .errors import ShapeError

__all__ = [
    "pi",
    "inf",
    "newaxis",
    "float32",
    "float64",
    "int32",
    "int64",
    "uint64",
    "bool_",
    "asarray",
    "array",
    "zeros",
    "ones",
    "full",
    "zeros_like",
    "ones_like",
    "full_like",
    "arange",
    "linspace",
    "add",
    "subtract",
    "multiply",
    "divide",
    "floor_divide",
    "remainder",
    "mod",
    "power",
    "negative",
    "abs",
    "absolute",
    "sign",
    "sqrt",
    "exp",
    "log",
    "sin",
    "cos",
    "tan",
    "arcsin",
    "arccos",
    "arctan",
    "arctan2",
    "floor",
    "ceil",
    "round",
    "minimum",
    "maximum",
    "clip",
    "less",
    "less_equal",
    "greater",
    "greater_equal",
    "equal",
    "not_equal",
    "logical_and",
    "logical_or",
    "logical_not",
    "bitwise_and",
    "bitwise_or",
    "bitwise_xor",
    "bitwise_not",
    "left_shift",
    "right_shift",
    "isfinite",
    "isnan",
    "where",
    "take",
    "scatter_set",
    "scatter_add",
    "sum",
    "prod",
    "cumsum",
    "diff",
    "tile",
    "mean",
    "min",
    "max",
    "any",
    "all",
    "dot",
    "matmul",
    "reshape",
    "ravel",
    "transpose",
    "moveaxis",
    "swapaxes",
    "expand_dims",
    "squeeze",
    "broadcast_to",
    "concatenate",
    "stack",
    "astype",
]

pi = np.pi
inf = np.inf
newaxis = None

float32 = np.float32
float64 = np.float64
int32 = np.int32
int64 = np.int64
uint64 = np.uint64
bool_ = np.bool_

ArrayLike = Union[np.ndarray, Tracer, float, int, bool]


def _shape_of(x: Any) -> Tuple[int, ...]:
    return tuple(getattr(x, "shape", np.shape(x)))


def _ndim_of(x: Any) -> int:
    return getattr(x, "ndim", np.ndim(x))


# --------------------------------------------------------------------------- #
# Creation (eager: constants become graph literals when mixed with tracers)
# --------------------------------------------------------------------------- #


def asarray(x: ArrayLike, dtype=None) -> Any:
    """Convert to an array; tracers pass through (with optional cast)."""
    if isinstance(x, Tracer):
        if dtype is not None and np.dtype(dtype) != x.dtype:
            return astype(x, dtype)
        return x
    out = np.asarray(x, dtype=dtype)
    if dtype is None:
        out = out.astype(config.canonical_dtype(out.dtype), copy=False)
    return out


def array(x: ArrayLike, dtype=None) -> Any:
    return asarray(x, dtype=dtype)


def _default_dtype(dtype) -> np.dtype:
    if dtype is not None:
        return np.dtype(dtype)
    return config.default_float()


def zeros(shape, dtype=None) -> np.ndarray:
    return np.zeros(shape, dtype=_default_dtype(dtype))


def ones(shape, dtype=None) -> np.ndarray:
    return np.ones(shape, dtype=_default_dtype(dtype))


def full(shape, value, dtype=None) -> np.ndarray:
    return np.full(shape, value, dtype=_default_dtype(dtype))


def zeros_like(x: ArrayLike, dtype=None) -> np.ndarray:
    return np.zeros(_shape_of(x), dtype=np.dtype(dtype) if dtype else _dtype_of(x))


def ones_like(x: ArrayLike, dtype=None) -> np.ndarray:
    return np.ones(_shape_of(x), dtype=np.dtype(dtype) if dtype else _dtype_of(x))


def full_like(x: ArrayLike, value, dtype=None) -> np.ndarray:
    return np.full(_shape_of(x), value, dtype=np.dtype(dtype) if dtype else _dtype_of(x))


def _dtype_of(x: Any) -> np.dtype:
    if isinstance(x, Tracer):
        return x.dtype
    return np.asarray(x).dtype


def arange(*args, dtype=None) -> np.ndarray:
    out = np.arange(*args, dtype=dtype)
    if dtype is None:
        out = out.astype(config.canonical_dtype(out.dtype), copy=False)
    return out


def linspace(start, stop, num=50, dtype=None) -> np.ndarray:
    out = np.linspace(start, stop, num, dtype=dtype)
    if dtype is None:
        out = out.astype(config.canonical_dtype(out.dtype), copy=False)
    return out


# --------------------------------------------------------------------------- #
# Elementwise
# --------------------------------------------------------------------------- #


def add(a, b):
    return bind(P.add_p, a, b)


def subtract(a, b):
    return bind(P.subtract_p, a, b)


def multiply(a, b):
    return bind(P.multiply_p, a, b)


def divide(a, b):
    return bind(P.divide_p, a, b)


def floor_divide(a, b):
    return bind(P.floor_divide_p, a, b)


def remainder(a, b):
    return bind(P.remainder_p, a, b)


mod = remainder


def power(a, b):
    return bind(P.power_p, a, b)


def negative(a):
    return bind(P.negative_p, a)


def abs(a):  # noqa: A001 - numpy-compatible name
    return bind(P.abs_p, a)


absolute = abs


def sign(a):
    return bind(P.sign_p, a)


def sqrt(a):
    return bind(P.sqrt_p, a)


def exp(a):
    return bind(P.exp_p, a)


def log(a):
    return bind(P.log_p, a)


def sin(a):
    return bind(P.sin_p, a)


def cos(a):
    return bind(P.cos_p, a)


def tan(a):
    return bind(P.tan_p, a)


def arcsin(a):
    return bind(P.arcsin_p, a)


def arccos(a):
    return bind(P.arccos_p, a)


def arctan(a):
    return bind(P.arctan_p, a)


def arctan2(a, b):
    return bind(P.arctan2_p, a, b)


def floor(a):
    return bind(P.floor_p, a)


def ceil(a):
    return bind(P.ceil_p, a)


def round(a):  # noqa: A001 - numpy-compatible name
    return bind(P.round_p, a)


def minimum(a, b):
    return bind(P.minimum_p, a, b)


def maximum(a, b):
    return bind(P.maximum_p, a, b)


def clip(a, lo, hi):
    return bind(P.clip_p, a, lo, hi)


def less(a, b):
    return bind(P.less_p, a, b)


def less_equal(a, b):
    return bind(P.less_equal_p, a, b)


def greater(a, b):
    return bind(P.greater_p, a, b)


def greater_equal(a, b):
    return bind(P.greater_equal_p, a, b)


def equal(a, b):
    return bind(P.equal_p, a, b)


def not_equal(a, b):
    return bind(P.not_equal_p, a, b)


def logical_and(a, b):
    return bind(P.logical_and_p, a, b)


def logical_or(a, b):
    return bind(P.logical_or_p, a, b)


def logical_not(a):
    return bind(P.logical_not_p, a)


def bitwise_and(a, b):
    return bind(P.bitwise_and_p, a, b)


def bitwise_or(a, b):
    return bind(P.bitwise_or_p, a, b)


def bitwise_xor(a, b):
    return bind(P.bitwise_xor_p, a, b)


def bitwise_not(a):
    return bind(P.bitwise_not_p, a)


def left_shift(a, b):
    return bind(P.left_shift_p, a, b)


def right_shift(a, b):
    return bind(P.right_shift_p, a, b)


def isfinite(a):
    return bind(P.isfinite_p, a)


def isnan(a):
    return bind(P.isnan_p, a)


def where(cond, x, y):
    """Elementwise select: the pure replacement for in-loop branching."""
    return bind(P.where_p, cond, x, y)


def astype(a, dtype):
    return bind(P.astype_p, a, dtype=np.dtype(dtype))


# --------------------------------------------------------------------------- #
# Reductions
# --------------------------------------------------------------------------- #


def sum(a, axis=None):  # noqa: A001 - numpy-compatible name
    return bind(P.reduce_sum_p, a, axis=axis)


def prod(a, axis=None):
    return bind(P.reduce_prod_p, a, axis=axis)


def mean(a, axis=None):
    return bind(P.reduce_mean_p, a, axis=axis)


def min(a, axis=None):  # noqa: A001 - numpy-compatible name
    return bind(P.reduce_min_p, a, axis=axis)


def max(a, axis=None):  # noqa: A001 - numpy-compatible name
    return bind(P.reduce_max_p, a, axis=axis)


def any(a, axis=None):  # noqa: A001 - numpy-compatible name
    return bind(P.reduce_any_p, a, axis=axis)


def all(a, axis=None):  # noqa: A001 - numpy-compatible name
    return bind(P.reduce_all_p, a, axis=axis)


def cumsum(a, axis: int = 0):
    return bind(P.cumsum_p, a, axis=axis)


def diff(a, axis: int = -1):
    """First differences along an axis (static slicing, so traceable)."""
    n = _ndim_of(a)
    ax = axis + n if axis < 0 else axis
    hi = tuple(slice(1, None) if i == ax else slice(None) for i in range(n))
    lo = tuple(slice(None, -1) if i == ax else slice(None) for i in range(n))
    return subtract(bind(P.slice_p, a, idx=hi), bind(P.slice_p, a, idx=lo))


def tile(a, reps: int):
    """Repeat a whole array ``reps`` times along axis 0."""
    if reps < 1:
        raise ValueError("reps must be >= 1")
    return concatenate([a] * reps, axis=0)


# --------------------------------------------------------------------------- #
# Contraction
# --------------------------------------------------------------------------- #


def matmul(a, b):
    return bind(P.matmul_p, a, b)


def dot(a, b):
    """NumPy ``dot`` for the vector/matrix cases TOAST's kernels use."""
    return bind(P.matmul_p, a, b)


# --------------------------------------------------------------------------- #
# Shape manipulation
# --------------------------------------------------------------------------- #


def reshape(a, shape) -> Any:
    return bind(P.reshape_p, a, shape=tuple(np.atleast_1d(shape).tolist()) if not isinstance(shape, tuple) else shape)


def ravel(a):
    return reshape(a, (-1,))


def transpose(a, axes: Optional[Sequence[int]] = None):
    n = _ndim_of(a)
    perm = tuple(axes) if axes is not None else tuple(reversed(range(n)))
    return bind(P.transpose_p, a, perm=perm)


def moveaxis(a, source: int, destination: int):
    n = _ndim_of(a)
    src = source + n if source < 0 else source
    dst = destination + n if destination < 0 else destination
    if not (0 <= src < n and 0 <= dst < n):
        raise ShapeError(f"moveaxis({source}, {destination}) out of range for rank {n}")
    order = [i for i in range(n) if i != src]
    order.insert(dst, src)
    return bind(P.transpose_p, a, perm=tuple(order))


def swapaxes(a, a1: int, a2: int):
    n = _ndim_of(a)
    perm = list(range(n))
    perm[a1], perm[a2] = perm[a2], perm[a1]
    return bind(P.transpose_p, a, perm=tuple(perm))


def expand_dims(a, axis: int):
    s = list(_shape_of(a))
    ax = axis + len(s) + 1 if axis < 0 else axis
    s.insert(ax, 1)
    return bind(P.reshape_p, a, shape=tuple(s))


def squeeze(a, axis: Optional[int] = None):
    s = list(_shape_of(a))
    if axis is None:
        new = [d for d in s if d != 1]
    else:
        ax = axis + len(s) if axis < 0 else axis
        if s[ax] != 1:
            raise ShapeError(f"cannot squeeze axis {axis} of size {s[ax]}")
        new = s[:ax] + s[ax + 1 :]
    return bind(P.reshape_p, a, shape=tuple(new))


def broadcast_to(a, shape):
    return bind(P.broadcast_to_p, a, shape=tuple(shape))


def concatenate(arrays, axis: int = 0):
    if len(arrays) == 0:
        raise ValueError("need at least one array to concatenate")
    return bind(P.concatenate_p, *arrays, axis=axis)


def stack(arrays, axis: int = 0):
    return concatenate([expand_dims(a, axis) for a in arrays], axis=axis)


# --------------------------------------------------------------------------- #
# Gather / scatter / indexing
# --------------------------------------------------------------------------- #


def take(a, indices, axis: int = 0, mode: str = "clip"):
    """Gather along ``axis``.  Out-of-range indices clip, as in JAX."""
    return bind(P.take_p, a, indices, axis=axis, mode=mode)


def scatter_set(a, indices, values):
    """Functional ``a[indices] = values`` along axis 0 (returns a new array)."""
    return bind(P.scatter_p, a, indices, values, mode="set")


def scatter_add(a, indices, values):
    """Functional ``a[indices] += values`` with duplicate accumulation."""
    return bind(P.scatter_p, a, indices, values, mode="add")


def _is_dynamic_index(idx: Any) -> bool:
    if isinstance(idx, Tracer):
        return True
    return isinstance(idx, np.ndarray) and idx.dtype != np.dtype(bool)


def _getitem(x, idx):
    """Indexing dispatch used by ``Tracer.__getitem__``.

    Integer-array (possibly traced) indices become gathers; boolean masks
    are rejected under tracing (dynamic output shape, paper §2.3.2);
    everything static becomes a slice primitive.
    """
    if isinstance(idx, (Tracer, np.ndarray)) and getattr(idx, "dtype", None) == np.dtype(bool):
        raise ShapeError(
            "boolean-mask indexing has a data-dependent output shape, which "
            "static tracing cannot represent; use jnp.where to select "
            "values while keeping the shape fixed (the TOAST port pads "
            "variable-length intervals for the same reason)."
        )
    if _is_dynamic_index(idx):
        return take(x, idx, axis=0)
    if isinstance(idx, tuple):
        if builtins_any(_is_dynamic_index(i) for i in idx):
            if len(idx) == 2 and builtins_all(_is_dynamic_index(i) for i in idx):
                # Two integer-array indices: linearize into a flat gather.
                n0, n1 = _shape_of(x)[0], _shape_of(x)[1]
                flat = reshape(x, (n0 * n1,) + tuple(_shape_of(x)[2:]))
                lin = add(multiply(idx[0], n1), idx[1])
                return take(flat, lin, axis=0)
            raise ShapeError(
                "mixed dynamic/static tuple indexing is not supported; "
                "linearize the index arithmetic explicitly"
            )
        return bind(P.slice_p, x, idx=idx)
    return bind(P.slice_p, x, idx=idx)




class _IndexUpdateRef:
    """``x.at[idx]`` -- pending functional update at a location."""

    def __init__(self, array, idx):
        self._array = array
        self._idx = idx

    def _dispatch(self, values, dyn_mode: str, static_mode: Optional[str] = None):
        idx = self._idx
        if _is_dynamic_index(idx):
            return bind(P.scatter_p, self._array, idx, values, mode=dyn_mode)
        if isinstance(idx, tuple) and builtins_any(_is_dynamic_index(i) for i in idx):
            if len(idx) == 2 and builtins_all(_is_dynamic_index(i) for i in idx):
                shape = _shape_of(self._array)
                n0, n1 = shape[0], shape[1]
                flat = reshape(self._array, (n0 * n1,) + tuple(shape[2:]))
                lin = add(multiply(idx[0], n1), idx[1])
                out = bind(P.scatter_p, flat, lin, values, mode=dyn_mode)
                return reshape(out, shape)
            raise ShapeError(
                "mixed dynamic/static tuple indices in .at[] are not supported"
            )
        mode = static_mode if static_mode is not None else dyn_mode
        return bind(P.scatter_static_p, self._array, values, idx=idx, mode=mode)

    def set(self, values):
        """Pure replacement: returns a copy with ``[idx] = values``."""
        return self._dispatch(values, "set")

    def add(self, values):
        """Pure accumulation; duplicate indices accumulate (scatter-add)."""
        return self._dispatch(values, "add")

    def multiply(self, values):
        return self._dispatch(values, "multiply")

    def min(self, values):
        return self._dispatch(values, "min")

    def max(self, values):
        return self._dispatch(values, "max")


class _IndexUpdateHelper:
    """The ``.at`` property object (also usable on plain NumPy arrays via
    :func:`at`)."""

    def __init__(self, array):
        self._array = array

    def __getitem__(self, idx):
        return _IndexUpdateRef(self._array, idx)


def at(x) -> _IndexUpdateHelper:
    """Functional-update helper for arrays and tracers alike.

    ``jnp.at(x)[idx].add(v)`` is the module-level spelling of JAX's
    ``x.at[idx].add(v)`` that also works on concrete NumPy arrays.
    """
    return _IndexUpdateHelper(x)


# Wire the operator table used by Tracer dunder methods.
import sys as _sys

_this = _sys.modules[__name__]
Tracer._ops.update(
    {
        "add": add,
        "subtract": subtract,
        "multiply": multiply,
        "divide": divide,
        "floor_divide": floor_divide,
        "remainder": remainder,
        "power": power,
        "negative": negative,
        "abs": abs,
        "less": less,
        "less_equal": less_equal,
        "greater": greater,
        "greater_equal": greater_equal,
        "equal": equal,
        "not_equal": not_equal,
        "bitwise_and": bitwise_and,
        "bitwise_or": bitwise_or,
        "bitwise_xor": bitwise_xor,
        "bitwise_not": bitwise_not,
        "left_shift": left_shift,
        "right_shift": right_shift,
        "matmul": matmul,
        "getitem": _getitem,
        "astype": astype,
        "sum": sum,
        "min": min,
        "max": max,
        "mean": mean,
        "reshape": lambda a, shape: bind(P.reshape_p, a, shape=shape),
        "transpose": transpose,
        "at": _IndexUpdateHelper,
    }
)
