"""Error types, with the descriptive messages the paper praises.

Section 3.3 contrasts debugging experiences: OpenMP Target Offload logic
errors "would, at best, result in segmentation faults" while JAX produced
useful error messages.  The shim keeps that property: every restriction of
the programming model raises a targeted, actionable error.
"""


class JaxshimError(Exception):
    """Base class for jaxshim errors."""


class TracerError(JaxshimError):
    """An operation is invalid on a traced (abstract) array."""


class ConcretizationError(TracerError):
    """A traced value was used where a concrete Python value is required.

    Raised by ``bool()``, ``int()``, ``float()``, ``iter()`` and friends on
    tracers -- the cases behind JAX's "loops and conditionals" limitation
    (paper 2.3.2): tracing sees values as unknown, so Python control flow
    cannot depend on them.
    """

    def __init__(self, what: str):
        super().__init__(
            f"{what} on a traced array is not allowed: while tracing, values "
            "are unknown and Python control flow cannot depend on them. "
            "Use jnp.where for data-dependent selection, or hoist the value "
            "out of the jit-compiled function (e.g. as a static argument)."
        )


class TracerArrayConversionError(TracerError):
    """A tracer was converted to a concrete NumPy array."""

    def __init__(self) -> None:
        super().__init__(
            "cannot convert a traced array to a concrete NumPy array inside "
            "a jit-compiled function; return it instead, or mark the "
            "producing computation as outside the jit boundary."
        )


class MutationError(TracerError):
    """In-place mutation of a functional array."""

    def __init__(self) -> None:
        super().__init__(
            "arrays are immutable inside jit-compiled functions (pure "
            "operations only). Instead of `x[idx] = y`, use the functional "
            "update `x = x.at[idx].set(y)` (or `.add(y)` to accumulate)."
        )


class ShapeError(JaxshimError):
    """Shapes are malformed or dynamically data-dependent.

    Raised e.g. by boolean-mask indexing under tracing: the output length
    would depend on the data, violating the static-shape requirement
    (paper 2.3.2); the TOAST port padded variable-length intervals to the
    maximum interval size to satisfy it.
    """
