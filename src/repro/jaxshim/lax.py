"""Structured control-flow primitives (``jax.lax`` counterparts).

Paper §2.3.2: Python loops and conditionals cannot depend on traced
values, but "JAX introduces primitives to work around this limitation".
This module provides the ones numerical ports reach for:

* :func:`select` / :func:`cond` -- data-dependent branching (both branches
  evaluate; the result is selected elementwise, which is exactly what XLA
  lowers branches on GPU lanes to);
* :func:`fori_loop` -- a loop with a *static* trip count, unrolled into
  the graph at trace time;
* :func:`scan` -- carry-and-stack over a leading axis, also unrolled;
* :func:`while_loop` -- supported eagerly; under tracing the condition
  would be data-dependent, so it raises the usual concretization error.
"""

from __future__ import annotations

from typing import Any, Callable, Tuple

import numpy as np

from .core import Tracer, aval_of
from .errors import ConcretizationError, ShapeError
from .numpy_api import stack, where
from .pytree import tree_flatten, tree_unflatten

__all__ = ["select", "cond", "fori_loop", "scan", "while_loop"]


def select(pred: Any, on_true: Any, on_false: Any) -> Any:
    """Elementwise selection (alias of ``jnp.where`` with lax naming)."""
    return where(pred, on_true, on_false)


def cond(
    pred: Any,
    true_fn: Callable,
    false_fn: Callable,
    *operands: Any,
) -> Any:
    """Conditional on a scalar predicate.

    With a concrete predicate only the taken branch runs (free Python
    branching).  With a traced predicate *both* branches are evaluated and
    the outputs selected -- the branch structures must therefore match.
    """
    if not isinstance(pred, Tracer):
        return true_fn(*operands) if np.asarray(pred).item() else false_fn(*operands)

    out_t = true_fn(*operands)
    out_f = false_fn(*operands)
    leaves_t, tree_t = tree_flatten(out_t)
    leaves_f, tree_f = tree_flatten(out_f)
    if tree_t != tree_f:
        raise ShapeError(
            "cond branches returned different structures; under tracing "
            "both branches execute and their outputs must match"
        )
    selected = []
    for lt, lf in zip(leaves_t, leaves_f):
        at, af = aval_of(lt), aval_of(lf)
        if at.shape != af.shape:
            raise ShapeError(
                f"cond branch outputs differ in shape: {at.shape} vs {af.shape}"
            )
        selected.append(where(pred, lt, lf))
    return tree_unflatten(tree_t, selected)


def fori_loop(lower: int, upper: int, body: Callable[[int, Any], Any], init: Any) -> Any:
    """``for i in range(lower, upper): val = body(i, val)``.

    The bounds must be static Python integers (the trip count becomes part
    of the traced graph); traced bounds are exactly the pattern the
    static-shape model cannot express.
    """
    if isinstance(lower, Tracer) or isinstance(upper, Tracer):
        raise ConcretizationError("using traced loop bounds in fori_loop")
    lower, upper = int(lower), int(upper)
    val = init
    for i in range(lower, upper):
        val = body(i, val)
    return val


def scan(
    f: Callable[[Any, Any], Tuple[Any, Any]],
    init: Any,
    xs: Any,
    length: int | None = None,
) -> Tuple[Any, Any]:
    """Carry-and-stack: ``carry, y_i = f(carry, xs[i])`` over axis 0.

    Returns ``(final_carry, ys)`` with each output leaf stacked along a
    new leading axis.  The iteration count comes from the (static) leading
    axis of ``xs`` or from ``length`` when ``xs`` is None.
    """
    if xs is None:
        if length is None:
            raise ValueError("scan needs xs or an explicit length")
        n = int(length)
        slices = [None] * n
    else:
        leaves, treedef = tree_flatten(xs)
        if not leaves:
            raise ValueError("scan needs at least one input leaf")
        lengths = {int(np.shape(l)[0] if not isinstance(l, Tracer) else l.shape[0]) for l in leaves}
        if len(lengths) != 1:
            raise ShapeError(f"scan inputs disagree on the leading axis: {lengths}")
        n = lengths.pop()
        slices = [
            tree_unflatten(treedef, [leaf[i] for leaf in leaves]) for i in range(n)
        ]

    carry = init
    ys_per_step = []
    for x in slices:
        carry, y = f(carry, x)
        ys_per_step.append(y)

    if n == 0:
        raise ShapeError("scan over an empty axis has no output shape")
    y_leaves0, y_tree = tree_flatten(ys_per_step[0])
    stacked = []
    for leaf_idx in range(len(y_leaves0)):
        column = [tree_flatten(y)[0][leaf_idx] for y in ys_per_step]
        stacked.append(stack(column, axis=0))
    return carry, tree_unflatten(y_tree, stacked)


def while_loop(cond_fn: Callable[[Any], Any], body_fn: Callable[[Any], Any], init: Any) -> Any:
    """``while cond_fn(val): val = body_fn(val)``.

    Eager-only: the trip count depends on the data, which a static graph
    cannot represent (the paper's TOAST port avoided this pattern; bounded
    loops were expressed with fori_loop / padding instead).
    """
    val = init
    while True:
        keep = cond_fn(val)
        if isinstance(keep, Tracer):
            raise ConcretizationError(
                "a data-dependent while_loop condition under tracing"
            )
        if not np.asarray(keep).item():
            return val
        val = body_fn(val)
