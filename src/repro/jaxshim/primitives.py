"""Primitive registry: implementations, shape rules, batching rules, costs.

Primitives are the nodes of the static graph (paper §2.3.1: kernels "can be
expressed as a static data dependency graph whose nodes are taken from a
set of primitives").  Each primitive carries:

* a NumPy ``impl`` (eager execution and compiled-graph evaluation),
* a ``shape_rule`` for abstract evaluation while tracing,
* a ``batch_rule`` for :func:`~repro.jaxshim.api.vmap`, written purely in
  terms of :func:`~repro.jaxshim.core.bind` so vmap composes with jit,
* a fusion ``kind`` and per-element flop cost for the device model.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from .config import config
from .core import Primitive, ShapedArray, aval_of, bind
from .errors import ShapeError

__all__ = ["registry", "get_primitive", "batching_coverage", "BATCHING_WAIVERS"]

registry: Dict[str, Primitive] = {}

#: Primitives intentionally shipped without a vmap batching rule.  Empty:
#: every registered primitive batches.  A name added here silences the
#: coverage gate (``repro-bench kernels``) for that primitive only.
BATCHING_WAIVERS: frozenset = frozenset()


def batching_coverage() -> Dict[str, bool]:
    """Primitive name -> whether it carries a vmap batching rule."""
    return {
        name: prim.batch_rule is not None
        for name, prim in sorted(registry.items())
    }


def _register(prim: Primitive) -> Primitive:
    if prim.name in registry:
        raise ValueError(f"duplicate primitive {prim.name}")
    registry[prim.name] = prim
    return prim


def get_primitive(name: str) -> Primitive:
    return registry[name]


def _ndim(x: Any) -> int:
    return getattr(x, "ndim", np.ndim(x))


def _shape(x: Any) -> Tuple[int, ...]:
    return tuple(getattr(x, "shape", np.shape(x)))


# --------------------------------------------------------------------------- #
# Shape-rule helpers
# --------------------------------------------------------------------------- #


def _broadcast_shape(*avals: ShapedArray) -> Tuple[int, ...]:
    try:
        return tuple(np.broadcast_shapes(*(a.shape for a in avals)))
    except ValueError as e:
        raise ShapeError(
            f"incompatible shapes {[a.shape for a in avals]}: {e}"
        ) from None


def _promote_dtype(*avals: ShapedArray) -> np.dtype:
    return np.result_type(*(a.dtype for a in avals))


def _reshape_impl(x, *, shape):
    return np.reshape(x, shape)


def _reshape_batch(args, bdims, *, shape):
    (x,), (d,) = args, bdims
    assert d == 0
    b = _shape(x)[0]
    # Resolve a single -1 against the logical size before prepending batch.
    shape = tuple(shape)
    out = bind(reshape_p, x, shape=(b,) + shape)
    return out, 0


# --------------------------------------------------------------------------- #
# Elementwise primitives
# --------------------------------------------------------------------------- #


def _elementwise_shape_rule(dtype_rule: Callable[..., np.dtype]):
    def rule(*avals: ShapedArray, **params) -> ShapedArray:
        return ShapedArray(_broadcast_shape(*avals), dtype_rule(*avals))

    return rule


def _elementwise_batch_rule(prim_name: str):
    def rule(args: Sequence[Any], bdims: Sequence[Optional[int]], **params):
        prim = registry[prim_name]
        # Logical (unbatched) output rank.
        lr = 0
        for a, d in zip(args, bdims):
            r = _ndim(a) - (1 if d is not None else 0)
            lr = max(lr, r)
        new_args = []
        for a, d in zip(args, bdims):
            if d is None:
                new_args.append(a)
                continue
            assert d == 0, "batch dims are normalized to 0"
            r = _ndim(a) - 1
            if r < lr:
                s = _shape(a)
                a = bind(reshape_p, a, shape=(s[0],) + (1,) * (lr - r) + s[1:])
            new_args.append(a)
        return bind(prim, *new_args, **params), 0

    return rule


def _same_dtype(*avals):
    return _promote_dtype(*avals)


def _bool_dtype(*avals):
    return np.dtype(bool)


def _float_dtype(*avals):
    dt = _promote_dtype(*avals)
    if np.issubdtype(dt, np.floating):
        return dt
    return config.default_float()


def defelementwise(
    name: str,
    impl: Callable[..., np.ndarray],
    dtype_rule: Callable[..., np.dtype] = _same_dtype,
    flops: float = 1.0,
) -> Primitive:
    prim = Primitive(
        name=name,
        impl=impl,
        shape_rule=_elementwise_shape_rule(dtype_rule),
        kind="elementwise",
        flops_per_element=flops,
    )
    prim.batch_rule = _elementwise_batch_rule(name)
    return _register(prim)


# Arithmetic.
add_p = defelementwise("add", np.add)
subtract_p = defelementwise("subtract", np.subtract)
multiply_p = defelementwise("multiply", np.multiply)
divide_p = defelementwise("divide", np.true_divide, dtype_rule=_float_dtype, flops=4.0)
floor_divide_p = defelementwise("floor_divide", np.floor_divide, flops=4.0)
remainder_p = defelementwise("remainder", np.remainder, flops=4.0)
power_p = defelementwise("power", np.power, flops=10.0)
negative_p = defelementwise("negative", np.negative)
abs_p = defelementwise("abs", np.abs)
sign_p = defelementwise("sign", np.sign)
minimum_p = defelementwise("minimum", np.minimum)
maximum_p = defelementwise("maximum", np.maximum)

# Transcendentals (costed heavier for the roofline model).
sqrt_p = defelementwise("sqrt", np.sqrt, dtype_rule=_float_dtype, flops=4.0)
exp_p = defelementwise("exp", np.exp, dtype_rule=_float_dtype, flops=10.0)
log_p = defelementwise("log", np.log, dtype_rule=_float_dtype, flops=10.0)
sin_p = defelementwise("sin", np.sin, dtype_rule=_float_dtype, flops=10.0)
cos_p = defelementwise("cos", np.cos, dtype_rule=_float_dtype, flops=10.0)
tan_p = defelementwise("tan", np.tan, dtype_rule=_float_dtype, flops=12.0)
arcsin_p = defelementwise("arcsin", np.arcsin, dtype_rule=_float_dtype, flops=15.0)
arccos_p = defelementwise("arccos", np.arccos, dtype_rule=_float_dtype, flops=15.0)
arctan_p = defelementwise("arctan", np.arctan, dtype_rule=_float_dtype, flops=15.0)
arctan2_p = defelementwise("arctan2", np.arctan2, dtype_rule=_float_dtype, flops=20.0)
floor_p = defelementwise("floor", np.floor)
ceil_p = defelementwise("ceil", np.ceil)
round_p = defelementwise("round", np.round)

# Comparisons and logic.
less_p = defelementwise("less", np.less, dtype_rule=_bool_dtype)
less_equal_p = defelementwise("less_equal", np.less_equal, dtype_rule=_bool_dtype)
greater_p = defelementwise("greater", np.greater, dtype_rule=_bool_dtype)
greater_equal_p = defelementwise("greater_equal", np.greater_equal, dtype_rule=_bool_dtype)
equal_p = defelementwise("equal", np.equal, dtype_rule=_bool_dtype)
not_equal_p = defelementwise("not_equal", np.not_equal, dtype_rule=_bool_dtype)
logical_and_p = defelementwise("logical_and", np.logical_and, dtype_rule=_bool_dtype)
logical_or_p = defelementwise("logical_or", np.logical_or, dtype_rule=_bool_dtype)
logical_not_p = defelementwise("logical_not", np.logical_not, dtype_rule=_bool_dtype)

# Bit manipulation (the NESTED HEALPix kernel interleaves bits).
bitwise_and_p = defelementwise("bitwise_and", np.bitwise_and)
bitwise_or_p = defelementwise("bitwise_or", np.bitwise_or)
bitwise_xor_p = defelementwise("bitwise_xor", np.bitwise_xor)
bitwise_not_p = defelementwise("bitwise_not", np.bitwise_not)
left_shift_p = defelementwise("left_shift", np.left_shift)
right_shift_p = defelementwise("right_shift", np.right_shift)

# Ternary select: the JAX substitute for in-loop branching (paper §3.1.3:
# the padded out-of-interval lanes do "dummy work" selected away by where).
where_p = defelementwise(
    "where", lambda c, x, y: np.where(c, x, y), dtype_rule=lambda c, x, y: _promote_dtype(x, y)
)

clip_p = defelementwise(
    "clip",
    lambda x, lo, hi: np.clip(x, lo, hi),
    dtype_rule=lambda x, lo, hi: _promote_dtype(x, lo, hi),
    flops=2.0,
)


# --------------------------------------------------------------------------- #
# dtype conversion
# --------------------------------------------------------------------------- #


def _astype_impl(x, *, dtype):
    return np.asarray(x).astype(dtype)


def _astype_shape(aval, *, dtype):
    return ShapedArray(aval.shape, np.dtype(dtype))


def _astype_batch(args, bdims, *, dtype):
    return bind(astype_p, args[0], dtype=dtype), 0


astype_p = _register(
    Primitive(
        "convert",
        impl=_astype_impl,
        shape_rule=_astype_shape,
        batch_rule=_astype_batch,
        kind="elementwise",
        flops_per_element=1.0,
    )
)


# --------------------------------------------------------------------------- #
# Reductions
# --------------------------------------------------------------------------- #


def _normalize_axis(axis, ndim: int) -> Tuple[int, ...]:
    if axis is None:
        return tuple(range(ndim))
    if isinstance(axis, int):
        axis = (axis,)
    out = []
    for a in axis:
        a = int(a)
        if a < 0:
            a += ndim
        if not 0 <= a < ndim:
            raise ShapeError(f"reduction axis {a} out of range for rank {ndim}")
        out.append(a)
    return tuple(sorted(set(out)))


def _reduce_shape_rule(dtype_rule):
    def rule(aval: ShapedArray, *, axis) -> ShapedArray:
        axes = _normalize_axis(axis, aval.ndim)
        shape = tuple(s for i, s in enumerate(aval.shape) if i not in axes)
        return ShapedArray(shape, dtype_rule(aval))

    return rule


def _reduce_batch_rule(prim_name):
    def rule(args, bdims, *, axis):
        (x,), (d,) = args, bdims
        assert d == 0
        axes = _normalize_axis(axis, _ndim(x) - 1)
        shifted = tuple(a + 1 for a in axes)
        return bind(registry[prim_name], x, axis=shifted), 0

    return rule


def defreduction(name, np_fn, dtype_rule=lambda a: a.dtype, flops=1.0):
    prim = Primitive(
        name=name,
        impl=lambda x, *, axis: np_fn(x, axis=axis),
        shape_rule=_reduce_shape_rule(dtype_rule),
        kind="reduction",
        flops_per_element=flops,
    )
    prim.batch_rule = _reduce_batch_rule(name)
    return _register(prim)


reduce_sum_p = defreduction("reduce_sum", np.sum)
reduce_prod_p = defreduction("reduce_prod", np.prod)
reduce_min_p = defreduction("reduce_min", np.min)
reduce_max_p = defreduction("reduce_max", np.max)
reduce_mean_p = defreduction(
    "reduce_mean", np.mean, dtype_rule=lambda a: a.dtype
    if np.issubdtype(a.dtype, np.floating)
    else config.default_float(),
    flops=2.0,
)
reduce_any_p = defreduction("reduce_any", np.any, dtype_rule=lambda a: np.dtype(bool))
reduce_all_p = defreduction("reduce_all", np.all, dtype_rule=lambda a: np.dtype(bool))


# --------------------------------------------------------------------------- #
# Shape manipulation
# --------------------------------------------------------------------------- #


def _reshape_shape(aval: ShapedArray, *, shape) -> ShapedArray:
    shape = tuple(int(s) for s in shape)
    negs = [i for i, s in enumerate(shape) if s == -1]
    if len(negs) > 1:
        raise ShapeError("at most one -1 in a reshape target")
    if negs:
        known = 1
        for s in shape:
            if s != -1:
                known *= s
        if known == 0 or aval.size % known != 0:
            raise ShapeError(f"cannot reshape {aval.shape} into {shape}")
        shape = tuple(aval.size // known if s == -1 else s for s in shape)
    size = 1
    for s in shape:
        size *= s
    if size != aval.size:
        raise ShapeError(f"cannot reshape {aval.shape} (size {aval.size}) into {shape}")
    return ShapedArray(shape, aval.dtype)


reshape_p = _register(
    Primitive(
        "reshape",
        impl=_reshape_impl,
        shape_rule=_reshape_shape,
        batch_rule=_reshape_batch,
        kind="shape",
        flops_per_element=0.0,
    )
)


def _transpose_impl(x, *, perm):
    return np.transpose(x, perm)


def _transpose_shape(aval: ShapedArray, *, perm) -> ShapedArray:
    if sorted(perm) != list(range(aval.ndim)):
        raise ShapeError(f"bad permutation {perm} for rank {aval.ndim}")
    return ShapedArray(tuple(aval.shape[p] for p in perm), aval.dtype)


def _transpose_batch(args, bdims, *, perm):
    (x,), (d,) = args, bdims
    assert d == 0
    new_perm = (0,) + tuple(p + 1 for p in perm)
    return bind(transpose_p, x, perm=new_perm), 0


transpose_p = _register(
    Primitive(
        "transpose",
        impl=_transpose_impl,
        shape_rule=_transpose_shape,
        batch_rule=_transpose_batch,
        kind="shape",
        flops_per_element=0.0,
    )
)


def _broadcast_to_impl(x, *, shape):
    # Materialize: graph values are independent buffers, not views.
    return np.ascontiguousarray(np.broadcast_to(x, shape))


def _broadcast_to_shape(aval: ShapedArray, *, shape) -> ShapedArray:
    out = tuple(int(s) for s in shape)
    if np.broadcast_shapes(aval.shape, out) != out:
        raise ShapeError(f"cannot broadcast {aval.shape} to {out}")
    return ShapedArray(out, aval.dtype)


def _broadcast_to_batch(args, bdims, *, shape):
    (x,), (d,) = args, bdims
    assert d == 0
    b = _shape(x)[0]
    lr = len(shape)
    r = _ndim(x) - 1
    if r < lr:
        s = _shape(x)
        x = bind(reshape_p, x, shape=(b,) + (1,) * (lr - r) + s[1:])
    return bind(broadcast_to_p, x, shape=(b,) + tuple(shape)), 0


broadcast_to_p = _register(
    Primitive(
        "broadcast_to",
        impl=_broadcast_to_impl,
        shape_rule=_broadcast_to_shape,
        batch_rule=_broadcast_to_batch,
        kind="elementwise",
        flops_per_element=0.0,
    )
)


def _concatenate_impl(*xs, axis):
    return np.concatenate(xs, axis=axis)


def _concatenate_shape(*avals: ShapedArray, axis) -> ShapedArray:
    ndim = avals[0].ndim
    axis = axis + ndim if axis < 0 else axis
    if not 0 <= axis < ndim:
        raise ShapeError(f"concatenate axis {axis} out of range")
    base = list(avals[0].shape)
    total = 0
    for a in avals:
        if a.ndim != ndim:
            raise ShapeError("concatenate rank mismatch")
        for i in range(ndim):
            if i != axis and a.shape[i] != base[i]:
                raise ShapeError("concatenate shape mismatch off-axis")
        total += a.shape[axis]
    base[axis] = total
    return ShapedArray(tuple(base), _promote_dtype(*avals))


def _concatenate_batch(args, bdims, *, axis):
    b = None
    for a, d in zip(args, bdims):
        if d is not None:
            b = _shape(a)[0]
            break
    assert b is not None
    new_args = []
    for a, d in zip(args, bdims):
        if d is None:
            a = bind(broadcast_to_p, a, shape=(b,) + _shape(a))
        new_args.append(a)
    ax = axis if axis < 0 else axis + 1
    return bind(concatenate_p, *new_args, axis=ax), 0


concatenate_p = _register(
    Primitive(
        "concatenate",
        impl=_concatenate_impl,
        shape_rule=_concatenate_shape,
        batch_rule=_concatenate_batch,
        kind="shape",
        flops_per_element=0.0,
    )
)


# --------------------------------------------------------------------------- #
# Gather / scatter
# --------------------------------------------------------------------------- #


def _take_impl(operand, indices, *, axis, mode):
    return np.take(operand, indices, axis=axis, mode=mode)


def _take_shape(op_aval: ShapedArray, idx_aval: ShapedArray, *, axis, mode) -> ShapedArray:
    if not np.issubdtype(idx_aval.dtype, np.integer):
        raise ShapeError(f"take indices must be integers, got {idx_aval.dtype}")
    axis = axis + op_aval.ndim if axis < 0 else axis
    if not 0 <= axis < op_aval.ndim:
        raise ShapeError(f"take axis {axis} out of range")
    shape = op_aval.shape[:axis] + idx_aval.shape + op_aval.shape[axis + 1 :]
    return ShapedArray(shape, op_aval.dtype)


def _take_batch(args, bdims, *, axis, mode):
    (op, idx), (dop, didx) = args, bdims
    if axis != 0:
        raise NotImplementedError("vmap of take is implemented for axis=0")
    if dop is None and didx is not None:
        # Unbatched table, batched indices: plain take keeps batch in front.
        return bind(take_p, op, idx, axis=0, mode=mode), 0
    if dop is not None and didx is None:
        b = _shape(op)[0]
        idx_b = bind(broadcast_to_p, idx, shape=(b,) + _shape(idx))
        return _take_batch((op, idx_b), (0, 0), axis=axis, mode=mode)
    # Both batched: flatten the batch into the take axis.
    b = _shape(op)[0]
    n = _shape(op)[1]
    rest = _shape(op)[2:]
    flat_op = bind(reshape_p, op, shape=(b * n,) + rest)
    offs = np.arange(b, dtype=np.int64).reshape((b,) + (1,) * (_ndim(idx) - 1)) * n
    flat_idx = bind(add_p, idx, offs)
    out = bind(take_p, flat_op, flat_idx, axis=0, mode=mode)
    return out, 0


take_p = _register(
    Primitive(
        "gather",
        impl=_take_impl,
        shape_rule=_take_shape,
        batch_rule=_take_batch,
        kind="gather",
        flops_per_element=1.0,
    )
)

_SCATTER_MODES = ("set", "add", "multiply", "min", "max")


def _scatter_impl(operand, indices, updates, *, mode):
    out = np.array(operand, copy=True)
    idx = np.asarray(indices)
    if mode == "set":
        out[idx] = updates
    elif mode == "add":
        np.add.at(out, idx, updates)
    elif mode == "multiply":
        np.multiply.at(out, idx, updates)
    elif mode == "min":
        np.minimum.at(out, idx, updates)
    elif mode == "max":
        np.maximum.at(out, idx, updates)
    else:  # pragma: no cover - guarded at bind time
        raise ValueError(f"unknown scatter mode {mode}")
    return out


def _scatter_shape(
    op_aval: ShapedArray, idx_aval: ShapedArray, upd_aval: ShapedArray, *, mode
) -> ShapedArray:
    if mode not in _SCATTER_MODES:
        raise ShapeError(f"unknown scatter mode {mode!r}; one of {_SCATTER_MODES}")
    if not np.issubdtype(idx_aval.dtype, np.integer):
        raise ShapeError(f"scatter indices must be integers, got {idx_aval.dtype}")
    expected = idx_aval.shape + op_aval.shape[1:]
    if np.broadcast_shapes(upd_aval.shape, expected) != expected:
        raise ShapeError(
            f"scatter updates {upd_aval.shape} do not broadcast to {expected}"
        )
    return ShapedArray(op_aval.shape, op_aval.dtype)


def _scatter_batch(args, bdims, *, mode):
    (op, idx, upd), (dop, didx, dupd) = args, bdims
    # Normalize: batch everything, then flatten batch into the scatter axis.
    bs = [
        _shape(a)[0] for a, d in zip((op, idx, upd), (dop, didx, dupd)) if d is not None
    ]
    b = bs[0]
    if dop is None:
        op = bind(broadcast_to_p, op, shape=(b,) + _shape(op))
    if didx is None:
        idx = bind(broadcast_to_p, idx, shape=(b,) + _shape(idx))
    if dupd is None:
        upd = bind(broadcast_to_p, upd, shape=(b,) + _shape(upd))
    n = _shape(op)[1]
    rest = tuple(_shape(op)[2:])
    flat_op = bind(reshape_p, op, shape=(b * n,) + rest)
    offs = np.arange(b, dtype=np.int64).reshape((b,) + (1,) * (_ndim(idx) - 1)) * n
    flat_idx_shape = (int(np.prod((b,) + _shape(idx)[1:], dtype=np.int64)),)
    flat_idx = bind(reshape_p, bind(add_p, idx, offs), shape=flat_idx_shape)
    # Updates must fill (batch, *idx_logical, *operand_rest) before the
    # batch and index axes are flattened together.
    target = (b,) + tuple(_shape(idx)[1:]) + rest
    if _shape(upd) != target:
        if _ndim(upd) < len(target):
            # Insert singleton axes after the batch axis so the trailing
            # dims right-align under broadcasting.
            s = _shape(upd)
            upd = bind(reshape_p, upd, shape=(b,) + (1,) * (len(target) - _ndim(upd)) + s[1:])
        upd = bind(broadcast_to_p, upd, shape=target)
    flat_upd = bind(reshape_p, upd, shape=flat_idx_shape + rest)
    out = bind(scatter_p, flat_op, flat_idx, flat_upd, mode=mode)
    return bind(reshape_p, out, shape=(b, n) + rest), 0


scatter_p = _register(
    Primitive(
        "scatter",
        impl=_scatter_impl,
        shape_rule=_scatter_shape,
        batch_rule=_scatter_batch,
        kind="scatter",
        flops_per_element=2.0,
    )
)


# --------------------------------------------------------------------------- #
# Static indexing (slices etc.)
# --------------------------------------------------------------------------- #


def _slice_impl(x, *, idx):
    out = x[idx]
    return np.ascontiguousarray(out)


def _slice_shape(aval: ShapedArray, *, idx) -> ShapedArray:
    # Evaluate the indexing expression on a stride-0 dummy of the right
    # shape: no allocation proportional to the operand.
    dummy = np.broadcast_to(np.empty((), dtype=np.int8), aval.shape)
    try:
        out_shape = dummy[idx].shape
    except IndexError as e:
        raise ShapeError(f"bad static index {idx!r} for shape {aval.shape}: {e}") from None
    return ShapedArray(out_shape, aval.dtype)


def _slice_batch(args, bdims, *, idx):
    (x,), (d,) = args, bdims
    assert d == 0
    if not isinstance(idx, tuple):
        idx = (idx,)
    return bind(slice_p, x, idx=(slice(None),) + idx), 0


slice_p = _register(
    Primitive(
        "slice",
        impl=_slice_impl,
        shape_rule=_slice_shape,
        batch_rule=_slice_batch,
        kind="gather",
        flops_per_element=0.0,
    )
)


# --------------------------------------------------------------------------- #
# Contraction
# --------------------------------------------------------------------------- #


def _matmul_shape(a: ShapedArray, b: ShapedArray, **params) -> ShapedArray:
    if a.ndim == 0 or b.ndim == 0:
        raise ShapeError("matmul does not accept scalars")
    if a.ndim == 1 and b.ndim == 1:
        if a.shape[0] != b.shape[0]:
            raise ShapeError(f"matmul contraction mismatch {a.shape} @ {b.shape}")
        return ShapedArray((), _promote_dtype(a, b))
    if a.ndim == 1:
        if a.shape[0] != b.shape[-2]:
            raise ShapeError(f"matmul contraction mismatch {a.shape} @ {b.shape}")
        return ShapedArray(b.shape[:-2] + b.shape[-1:], _promote_dtype(a, b))
    if b.ndim == 1:
        if a.shape[-1] != b.shape[0]:
            raise ShapeError(f"matmul contraction mismatch {a.shape} @ {b.shape}")
        return ShapedArray(a.shape[:-1], _promote_dtype(a, b))
    if a.shape[-1] != b.shape[-2]:
        raise ShapeError(f"matmul contraction mismatch {a.shape} @ {b.shape}")
    batch = np.broadcast_shapes(a.shape[:-2], b.shape[:-2])
    return ShapedArray(batch + (a.shape[-2], b.shape[-1]), _promote_dtype(a, b))


def _matmul_batch(args, bdims, **params):
    (a, b), (da, db) = args, bdims
    a_lr = _ndim(a) - (1 if da is not None else 0)  # logical ranks
    b_lr = _ndim(b) - (1 if db is not None else 0)
    if a_lr == 0 or b_lr == 0:
        raise ShapeError("matmul does not accept scalars")

    if a_lr == 1 and b_lr == 1:
        # Batched inner product: elementwise multiply + reduce.
        batch = _shape(a)[0] if da is not None else _shape(b)[0]
        if da is None:
            a = bind(broadcast_to_p, a, shape=(batch,) + _shape(a))
        if db is None:
            b = bind(broadcast_to_p, b, shape=(batch,) + _shape(b))
        return bind(reduce_sum_p, bind(multiply_p, a, b), axis=(1,)), 0

    if da is not None and db is not None:
        if a_lr == 1:
            s = _shape(a)
            a = bind(reshape_p, a, shape=(s[0], 1, s[1]))
            out, _ = _matmul_batch((a, b), (0, 0), **params)
            os = _shape(out)
            return bind(reshape_p, out, shape=os[:-2] + os[-1:]), 0
        if b_lr == 1:
            s = _shape(b)
            b = bind(reshape_p, b, shape=(s[0], s[1], 1))
            out, _ = _matmul_batch((a, b), (0, 0), **params)
            os = _shape(out)
            return bind(reshape_p, out, shape=os[:-1]), 0
        return bind(matmul_p, a, b), 0

    if da is not None:  # b unbatched
        if a_lr == 1 and b_lr > 2:
            raise NotImplementedError(
                "vmap of matmul with a batched vector against an unbatched "
                "stack of matrices is not supported"
            )
        # (B, ..., m, n) @ (..., n, k), (B, m, n) @ (n,), or (B, n) @ (n, k):
        # NumPy matmul semantics line the batch axis up correctly.
        return bind(matmul_p, a, b), 0

    # a unbatched, b batched.
    if b_lr >= 2:
        return bind(matmul_p, a, b), 0
    # b logical 1-D: promote to a stack of column vectors.
    s = _shape(b)
    b = bind(reshape_p, b, shape=(s[0], s[1], 1))
    out = bind(matmul_p, a, b)
    os = _shape(out)
    return bind(reshape_p, out, shape=os[:-1]), 0


matmul_p = _register(
    Primitive(
        "dot_general",
        impl=lambda a, b: np.matmul(a, b),
        shape_rule=_matmul_shape,
        batch_rule=_matmul_batch,
        kind="contraction",
        flops_per_element=2.0,
    )
)


# --------------------------------------------------------------------------- #
# Counter-based randomness (Threefry, like JAX's own PRNG)
# --------------------------------------------------------------------------- #


def _random_bits_impl(key, *, shape, dist):
    from ..rng import gaussian, uniform01

    key = np.asarray(key, dtype=np.uint64)
    n = int(np.prod(shape, dtype=np.int64)) if shape else 1
    fn = gaussian if dist == "normal" else uniform01
    draws = fn(n, key=(int(key[0]), int(key[1])))
    return draws.reshape(shape)


def _random_bits_shape(key_aval: ShapedArray, *, shape, dist) -> ShapedArray:
    if key_aval.shape != (2,):
        raise ShapeError(f"PRNG keys have shape (2,), got {key_aval.shape}")
    return ShapedArray(tuple(shape), np.dtype(np.float64))


def _random_bits_batch(args, bdims, *, shape, dist):
    # Counter-based draws are keyed per row: slicing out each key and
    # binding the primitive again reproduces exactly the bits the
    # unbatched calls would have produced, so vmap(random) is a pure
    # reordering -- not a different stream.
    (keys,), (d,) = args, bdims
    assert d == 0
    n = _shape(keys)[0]
    shape = tuple(shape)
    rows = []
    for i in range(n):
        key = bind(slice_p, keys, idx=(i,))
        draw = bind(random_bits_p, key, shape=shape, dist=dist)
        rows.append(bind(reshape_p, draw, shape=(1,) + shape))
    if len(rows) == 1:
        return rows[0], 0
    return bind(concatenate_p, *rows, axis=0), 0


random_bits_p = _register(
    Primitive(
        "rng_bits",
        impl=_random_bits_impl,
        shape_rule=_random_bits_shape,
        batch_rule=_random_bits_batch,
        kind="random",
        flops_per_element=40.0,
    )
)


# --------------------------------------------------------------------------- #
# Static-index scatter (functional update with slice/int indices)
# --------------------------------------------------------------------------- #


def _scatter_static_impl(operand, updates, *, idx, mode):
    out = np.array(operand, copy=True)
    if mode == "set":
        out[idx] = updates
    elif mode == "add":
        out[idx] += updates
    elif mode == "multiply":
        out[idx] *= updates
    else:  # pragma: no cover - guarded by the shape rule
        raise ValueError(f"unknown static scatter mode {mode}")
    return out


def _scatter_static_shape(op_aval: ShapedArray, upd_aval: ShapedArray, *, idx, mode):
    if mode not in ("set", "add", "multiply"):
        raise ShapeError(f"unknown static scatter mode {mode!r}")
    dummy = np.broadcast_to(np.empty((), np.int8), op_aval.shape)
    try:
        target_shape = dummy[idx].shape
    except IndexError as e:
        raise ShapeError(f"bad static index {idx!r} for shape {op_aval.shape}: {e}") from None
    if np.broadcast_shapes(upd_aval.shape, target_shape) != target_shape:
        raise ShapeError(
            f"updates {upd_aval.shape} do not broadcast to target {target_shape}"
        )
    return ShapedArray(op_aval.shape, op_aval.dtype)


def _scatter_static_batch(args, bdims, *, idx, mode):
    (op, upd), (dop, dupd) = args, bdims
    b = _shape(op)[0] if dop is not None else _shape(upd)[0]
    if dop is None:
        op = bind(broadcast_to_p, op, shape=(b,) + _shape(op))
    if not isinstance(idx, tuple):
        idx = (idx,)
    new_idx = (slice(None),) + idx
    if dupd is None:
        # Unbatched updates broadcast across the batch axis naturally.
        return bind(scatter_static_p, op, upd, idx=new_idx, mode=mode), 0
    # Batched updates: the update target gains a leading batch axis, and the
    # batched updates already carry theirs at axis 0, so shapes line up.
    return bind(scatter_static_p, op, upd, idx=new_idx, mode=mode), 0


scatter_static_p = _register(
    Primitive(
        "scatter_static",
        impl=_scatter_static_impl,
        shape_rule=_scatter_static_shape,
        batch_rule=_scatter_static_batch,
        kind="scatter",
        flops_per_element=1.0,
    )
)


# --------------------------------------------------------------------------- #
# Remaining elementwise predicates
# --------------------------------------------------------------------------- #

isfinite_p = defelementwise("isfinite", np.isfinite, dtype_rule=_bool_dtype)
isnan_p = defelementwise("isnan", np.isnan, dtype_rule=_bool_dtype)


# --------------------------------------------------------------------------- #
# Prefix operations
# --------------------------------------------------------------------------- #


def _cumsum_impl(x, *, axis):
    return np.cumsum(x, axis=axis)


def _cumsum_shape(aval: ShapedArray, *, axis) -> ShapedArray:
    ax = axis + aval.ndim if axis < 0 else axis
    if not 0 <= ax < max(aval.ndim, 1):
        raise ShapeError(f"cumsum axis {axis} out of range for rank {aval.ndim}")
    return ShapedArray(aval.shape, aval.dtype)


def _cumsum_batch(args, bdims, *, axis):
    (x,), (d,) = args, bdims
    assert d == 0
    ax = axis if axis < 0 else axis + 1
    return bind(cumsum_p, x, axis=ax), 0


cumsum_p = _register(
    Primitive(
        "cumsum",
        impl=_cumsum_impl,
        shape_rule=_cumsum_shape,
        batch_rule=_cumsum_batch,
        # A scan breaks elementwise fusion like a reduction does.
        kind="reduction",
        flops_per_element=1.0,
    )
)
