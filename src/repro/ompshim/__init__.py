"""ompshim -- a miniature OpenMP Target Offload runtime.

The paper's second porting route keeps the C++ kernels and annotates them
with ``#pragma omp target teams distribute parallel for collapse(3)``,
managing device memory manually through ``omp_target_alloc`` and a
hand-written pool.  This package reproduces that programming model over the
simulated device:

* :class:`~repro.ompshim.runtime.OmpTargetRuntime` -- ``omp_target_alloc``/
  ``omp_target_free``/``omp_target_memcpy`` over the device memory pool;
* :mod:`~repro.ompshim.datamap` -- the present table and ``map(to/from/
  tofrom/alloc)`` clause semantics with OpenMP reference counting;
* ``OmpTargetRuntime.target_teams_distribute_parallel_for`` -- the
  collapsed triple-loop launcher: team blocks over (detector, interval),
  SIMD lanes over samples, with the in-loop guard the paper uses for
  variable-length intervals.

Kernels written against this API mutate device views in place (the OpenMP
style), in contrast to jaxshim's pure-functional model -- the exact
contrast the paper studies.
"""

from .errors import OmpError, NotPresentError, MappingError
from .runtime import OmpTargetRuntime
from .datamap import MapClause

__all__ = [
    "OmpError",
    "NotPresentError",
    "MappingError",
    "OmpTargetRuntime",
    "MapClause",
]
