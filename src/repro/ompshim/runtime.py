"""The offload runtime object kernels are written against.

One :class:`OmpTargetRuntime` wraps one simulated device and exposes the
OpenMP device API (``omp_target_alloc``/``free``/``memcpy``), the data
environment (``target_data``, ``target_enter_data``/``exit_data``,
``target_update_*``), and the collapsed-loop kernel launcher.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterable, Iterator, Optional, Sequence, Tuple

import numpy as np

from ..accel import DeviceBuffer, SimulatedDevice
from ..obs import state as obs_state
from ..obs.events import EventType
from ..resilience import state as res_state
from .datamap import MapClause, PresentTable
from .errors import MappingError, TargetRegionError

__all__ = ["OmpTargetRuntime"]


class OmpTargetRuntime:
    """OpenMP Target Offload over a simulated device.

    Parameters
    ----------
    device:
        The accelerator; defaults to a fresh A100-like device.
    default_teams / default_threads:
        The launch geometry used for cost modeling when a kernel does not
        override it (A100: 108 SMs, 1024 threads is a typical pick).
    """

    def __init__(
        self,
        device: Optional[SimulatedDevice] = None,
        default_teams: int = 108,
        default_threads: int = 1024,
    ):
        self.device = device if device is not None else SimulatedDevice()
        self.present = PresentTable(self.device)
        self.default_teams = default_teams
        self.default_threads = default_threads

    def _region_event(self, name: str, **attrs) -> None:
        """A TARGET_REGION instant on the device timeline.

        Callers guard with ``obs_state.active is not None`` so disabled
        tracing never pays the call.
        """
        tr = obs_state.active
        if tr is not None:
            tr.device_event(
                EventType.TARGET_REGION, name, ts=self.device.clock.now, **attrs
            )

    # -- the omp_target_* device API -------------------------------------------

    def omp_get_num_devices(self) -> int:
        return 1

    def omp_target_alloc(self, nbytes: int) -> DeviceBuffer:
        """Raw device allocation (backed by the memory pool)."""
        return self.device.alloc(nbytes)

    def omp_target_free(self, buf: DeviceBuffer) -> None:
        self.device.free(buf)

    def omp_target_memcpy(
        self, dst, src, nbytes: int, direction: str
    ) -> None:
        """Copy ``nbytes`` between host arrays and device buffers.

        ``direction`` is "h2d" or "d2h"; mirrors ``omp_target_memcpy``'s
        explicit device/host operand roles.
        """
        if direction == "h2d":
            if not isinstance(dst, DeviceBuffer) or not isinstance(src, np.ndarray):
                raise MappingError("h2d copy needs (DeviceBuffer, ndarray)")
            if src.nbytes < nbytes or dst.nbytes < nbytes:
                raise MappingError("memcpy size exceeds an operand")
            self.device.update_device(dst, src.view(np.uint8).reshape(-1)[:nbytes])
        elif direction == "d2h":
            if not isinstance(dst, np.ndarray) or not isinstance(src, DeviceBuffer):
                raise MappingError("d2h copy needs (ndarray, DeviceBuffer)")
            if dst.nbytes < nbytes or src.nbytes < nbytes:
                raise MappingError("memcpy size exceeds an operand")
            self.device.update_host(src, dst.view(np.uint8).reshape(-1)[:nbytes])
        else:
            raise MappingError(f"unknown memcpy direction {direction!r}")

    # -- data environment ---------------------------------------------------------

    def target_enter_data(
        self,
        to: Iterable[np.ndarray] = (),
        alloc: Iterable[np.ndarray] = (),
        labels: Optional[dict] = None,
    ) -> None:
        """Map arrays in.  ``labels`` (id(array) -> name) tags the device
        allocations with their owning kernel/field for pool diagnostics."""
        to, alloc = list(to), list(alloc)
        labels = labels or {}
        if obs_state.active is not None:
            self._region_event("target_enter_data", n_to=len(to), n_alloc=len(alloc))
        for arr in to:
            self.present.enter(arr, MapClause.TO, label=labels.get(id(arr)))
        for arr in alloc:
            self.present.enter(arr, MapClause.ALLOC, label=labels.get(id(arr)))

    def target_exit_data(
        self,
        from_: Iterable[np.ndarray] = (),
        release: Iterable[np.ndarray] = (),
        delete: Iterable[np.ndarray] = (),
    ) -> None:
        from_, release, delete = list(from_), list(release), list(delete)
        if obs_state.active is not None:
            self._region_event(
                "target_exit_data",
                n_from=len(from_),
                n_release=len(release),
                n_delete=len(delete),
            )
        for arr in from_:
            self.present.exit(arr, MapClause.FROM)
        for arr in release:
            self.present.exit(arr, MapClause.ALLOC)
        for arr in delete:
            self.present.exit(arr, MapClause.DELETE)

    @contextmanager
    def target_data(
        self,
        to: Iterable[np.ndarray] = (),
        from_: Iterable[np.ndarray] = (),
        tofrom: Iterable[np.ndarray] = (),
        alloc: Iterable[np.ndarray] = (),
    ) -> Iterator["OmpTargetRuntime"]:
        """``#pragma omp target data map(...)`` as a context manager."""
        to, from_, tofrom, alloc = map(list, (to, from_, tofrom, alloc))
        if obs_state.active is not None:
            self._region_event(
                "target_data.enter",
                n_to=len(to),
                n_from=len(from_),
                n_tofrom=len(tofrom),
                n_alloc=len(alloc),
            )
        for arr in to:
            self.present.enter(arr, MapClause.TO)
        for arr in tofrom:
            self.present.enter(arr, MapClause.TOFROM)
        for arr in from_:
            self.present.enter(arr, MapClause.FROM)
        for arr in alloc:
            self.present.enter(arr, MapClause.ALLOC)
        try:
            yield self
        finally:
            if obs_state.active is not None:
                self._region_event(
                    "target_data.exit",
                    n_to=len(to),
                    n_from=len(from_),
                    n_tofrom=len(tofrom),
                    n_alloc=len(alloc),
                )
            for arr in alloc:
                self.present.exit(arr, MapClause.ALLOC)
            for arr in from_:
                self.present.exit(arr, MapClause.FROM)
            for arr in tofrom:
                self.present.exit(arr, MapClause.TOFROM)
            for arr in to:
                self.present.exit(arr, MapClause.ALLOC)  # no copy-back for to:

    def target_update_to(self, *arrays: np.ndarray) -> None:
        for arr in arrays:
            self.present.update_to(arr)

    def target_update_from(self, *arrays: np.ndarray) -> None:
        for arr in arrays:
            self.present.update_from(arr)

    def device_view(self, host: np.ndarray) -> np.ndarray:
        """Dereference a mapped pointer inside a target region."""
        return self.present.device_view(host)

    def is_present(self, host: np.ndarray) -> bool:
        return self.present.is_present(host)

    # -- kernel launch ---------------------------------------------------------------

    def target_teams_distribute_parallel_for(
        self,
        name: str,
        grid: Tuple[int, int, int],
        body: Callable[[int, int, np.ndarray], None],
        flops_per_iteration: float = 10.0,
        bytes_per_iteration: float = 24.0,
        nowait: bool = False,
    ) -> None:
        """``#pragma omp target teams distribute parallel for collapse(3)``.

        The collapsed iteration space is ``grid = (n_outer, n_middle,
        n_inner)`` -- for TOAST kernels (detectors, intervals, padded
        samples).  Teams map onto the two outer axes; the inner axis is the
        thread/SIMD dimension, which this shim executes as one vectorized
        sweep per (outer, middle) pair: ``body(i, j, k_vec)`` receives the
        full inner index vector, mirroring how a GPU executes the lanes of
        the collapsed loop concurrently.

        The guard against out-of-interval lanes (the paper's "test to cut
        work", §3.1.2) belongs inside ``body`` -- typically a boolean mask
        on ``k_vec``.

        The launch charges the device roofline cost for the whole grid.
        With ``nowait=True`` the submission returns immediately (the
        ``nowait`` clause): device time accrues on the device timeline and
        the host must :meth:`taskwait` (or touch mapped data, which syncs)
        before consuming results.
        """
        n_outer, n_middle, n_inner = (int(g) for g in grid)
        if n_outer < 0 or n_middle < 0 or n_inner < 0:
            raise ValueError(f"negative grid {grid}")
        ctrl = res_state.active
        if ctrl is not None:
            spec_fault = ctrl.check(
                "ompshim.target_region", clock=self.device.clock, kernel=name
            )
            if spec_fault is not None:
                # TARGET_FAIL: the offload itself failed before any work or
                # data motion; transient, so dispatch-level retry re-enters.
                raise TargetRegionError(name)
        total = n_outer * n_middle * n_inner
        spec = self.device.spec
        seconds = max(
            total * flops_per_iteration / spec.peak_fp64_flops,
            total * bytes_per_iteration / spec.memory_bandwidth_bps,
        )
        if obs_state.active is not None:
            self._region_event(
                "target_teams." + name,
                grid=[n_outer, n_middle, n_inner],
                teams=self.default_teams,
                threads=self.default_threads,
                nowait=nowait,
            )
        if nowait:
            self.device.launch_async(name, seconds, n_launches=1)
        else:
            self.device.launch(name, seconds, n_launches=1)

        k_vec = np.arange(n_inner, dtype=np.int64)
        for i in range(n_outer):
            for j in range(n_middle):
                body(i, j, k_vec)

    def taskwait(self) -> None:
        """``#pragma omp taskwait``: block until async target work finishes."""
        self.device.synchronize()

    # -- lifecycle ---------------------------------------------------------------------

    def recover_device(self) -> None:
        """Recover from device loss: forget mappings, revive the device.

        Device-resident data is gone (the loss scrambled it), so the
        present table is invalidated without copy-back and the device comes
        back with a fresh, empty pool.  Callers then re-stage what they
        need from host copies -- the pipeline does this from its last
        per-stage checkpoint.
        """
        self.present.invalidate()
        self.device.revive()

    def reset(self) -> None:
        """Drop all mappings and device accounting (test isolation)."""
        self.present.clear()
        self.device.reset_all()
