"""The present table: host <-> device association with OpenMP semantics.

OpenMP's device data environment tracks which host storage is mapped to
device storage, with reference counting so nested ``target data`` regions
compose: mapping an already-present array bumps the count; data moves only
on the 0 -> 1 and 1 -> 0 transitions (``to`` on entry, ``from`` on exit).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict

import numpy as np

from ..accel import DeviceBuffer, SimulatedDevice
from ..obs import state as obs_state
from ..obs.events import EventType
from .errors import MappingError, NotPresentError

__all__ = ["MapClause", "PresentTable", "Association"]


class MapClause(Enum):
    """The map-type of a clause, as in ``map(to: x)``."""

    TO = "to"  # copy host->device on entry
    FROM = "from"  # copy device->host on exit
    TOFROM = "tofrom"  # both
    ALLOC = "alloc"  # allocate only, no copies
    DELETE = "delete"  # force removal on exit


@dataclass
class Association:
    """One present-table entry."""

    host: np.ndarray
    buffer: DeviceBuffer
    refcount: int
    copy_back: bool  # any enclosing clause requested from/tofrom


class PresentTable:
    """Host-array to device-buffer association with reference counts."""

    def __init__(self, device: SimulatedDevice):
        self.device = device
        self._table: Dict[int, Association] = {}

    def __len__(self) -> int:
        return len(self._table)

    def is_present(self, host: np.ndarray) -> bool:
        return id(host) in self._table

    def lookup(self, host: np.ndarray) -> Association:
        try:
            return self._table[id(host)]
        except KeyError:
            raise NotPresentError(f"array of shape {np.shape(host)}") from None

    def enter(
        self, host: np.ndarray, clause: MapClause, label: str | None = None
    ) -> Association:
        """Map an array in (the entry half of a data region).

        ``label`` names the owning kernel/field; it is threaded down to the
        pool allocation so eviction and trace events identify the buffer.
        """
        if clause in (MapClause.FROM, MapClause.DELETE):
            # from-only still allocates on entry (OpenMP alloc-on-entry).
            entry_clause = MapClause.ALLOC if clause is MapClause.FROM else clause
        else:
            entry_clause = clause
        if entry_clause is MapClause.DELETE:
            raise MappingError("map(delete:) is only meaningful on region exit")
        if not isinstance(host, np.ndarray):
            raise MappingError(
                f"only ndarrays can be mapped, got {type(host).__name__}"
            )
        if not host.flags["C_CONTIGUOUS"]:
            raise MappingError("only contiguous arrays can be mapped to the device")

        key = id(host)
        assoc = self._table.get(key)
        fresh = assoc is None
        if assoc is not None:
            if assoc.host.nbytes != host.nbytes:
                raise MappingError("present array remapped with a different size")
            assoc.refcount += 1
        else:
            buf = self.device.alloc(max(1, host.nbytes), label=label)
            assoc = Association(host=host, buffer=buf, refcount=1, copy_back=False)
            self._table[key] = assoc
            if entry_clause in (MapClause.TO, MapClause.TOFROM):
                self.device.update_device(buf, host)
        if clause in (MapClause.FROM, MapClause.TOFROM):
            assoc.copy_back = True
        tr = obs_state.active
        if tr is not None:
            tr.device_event(
                EventType.TARGET_REGION,
                "datamap.enter",
                ts=self.device.clock.now,
                clause=clause.value,
                nbytes=host.nbytes,
                refcount=assoc.refcount,
                mapped=fresh,
            )
        return assoc

    def exit(self, host: np.ndarray, clause: MapClause) -> None:
        """Unmap an array (the exit half of a data region)."""
        assoc = self.lookup(host)
        if clause is MapClause.DELETE:
            assoc.refcount = 0
        else:
            assoc.refcount -= 1
        if assoc.refcount < 0:
            raise MappingError("present-table refcount underflow (unbalanced exit)")
        unmapped = assoc.refcount == 0
        if unmapped:
            if clause in (MapClause.FROM, MapClause.TOFROM) or (
                assoc.copy_back and clause is not MapClause.DELETE
            ):
                self.device.update_host(assoc.buffer, assoc.host)
            self.device.free(assoc.buffer)
            del self._table[id(host)]
        tr = obs_state.active
        if tr is not None:
            tr.device_event(
                EventType.TARGET_REGION,
                "datamap.exit",
                ts=self.device.clock.now,
                clause=clause.value,
                nbytes=assoc.host.nbytes,
                refcount=assoc.refcount,
                unmapped=unmapped,
            )

    def update_to(self, host: np.ndarray) -> None:
        """``target update to(x)``: refresh the device copy."""
        assoc = self.lookup(host)
        self.device.update_device(assoc.buffer, host)

    def update_from(self, host: np.ndarray) -> None:
        """``target update from(x)``: refresh the host copy."""
        assoc = self.lookup(host)
        self.device.update_host(assoc.buffer, host)

    def device_view(self, host: np.ndarray) -> np.ndarray:
        """The device-side typed array for a mapped host array.

        This is what a target region sees when it dereferences the mapped
        pointer; mutating it mutates device memory only.
        """
        assoc = self.lookup(host)
        return assoc.buffer.array(host.dtype, host.shape)

    def clear(self) -> None:
        """Drop every association without copying back (device reset)."""
        for assoc in list(self._table.values()):
            self.device.free(assoc.buffer)
        self._table.clear()

    def invalidate(self) -> None:
        """Forget every association without touching the device.

        Used after device loss: the buffers hold garbage and the pool is
        about to be rebuilt, so neither copy-back nor free is meaningful.
        Host arrays keep whatever data they last had.
        """
        self._table.clear()
