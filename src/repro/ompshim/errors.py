"""Error types for the OpenMP Target Offload shim.

Unlike the real toolchain experience the paper reports (segmentation
faults, "minimalist, often seemingly unrelated, error messages"), the shim
fails loudly and descriptively -- the errors encode the rules of the
programming model.
"""


from ..accel.errors import KernelLaunchError


class OmpError(RuntimeError):
    """Base class for offload runtime errors."""


class NotPresentError(OmpError):
    """A host array was used on the device without being mapped.

    The real-world analogue is dereferencing a host pointer in a target
    region: at best a segfault, at worst silent corruption (paper §3.3).
    """

    def __init__(self, what: str = "array"):
        super().__init__(
            f"{what} is not present on the device: map it first with "
            "target_enter_data(to=[...]) or a target_data region"
        )


class MappingError(OmpError):
    """Inconsistent mapping (size change, double free, bad direction)."""


class TargetRegionError(OmpError, KernelLaunchError):
    """A target region failed to launch on the device.

    Mirrors the offload path's transient failures under multi-process
    device sharing.  Subclasses the accelerator's ``KernelLaunchError`` so
    the recovery plane classifies it transient without importing this shim.
    """

    def __init__(self, region: str = "target region"):
        super().__init__(
            f"target region {region!r} failed to launch on the device "
            "(transient offload failure); the runtime will retry and, if "
            "the failure persists, fall back to the host implementation"
        )
