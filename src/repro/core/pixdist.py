"""Distributed pixel domain: TOAST's submap machinery.

Full-sky maps at science resolutions do not fit per process, so TOAST
splits the pixel domain into fixed-size *submaps*; each process allocates
only the submaps its pointing actually hits and reductions touch only
those.  The kernels' pixel arguments are then *local* indices
(``submap * submap_pixels + offset``) translated through a global-to-local
table -- the "indexing information" the paper's kernel descriptions
mention.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

__all__ = ["PixelDistribution"]


class PixelDistribution:
    """Mapping between global pixels and locally-allocated submaps.

    Parameters
    ----------
    n_pix:
        Global pixel count.
    n_submap:
        Number of submaps the domain is divided into (the last may be
        partial).
    """

    def __init__(self, n_pix: int, n_submap: int = 256):
        if n_pix <= 0:
            raise ValueError("n_pix must be positive")
        if n_submap <= 0 or n_submap > n_pix:
            raise ValueError("n_submap must be in [1, n_pix]")
        self.n_pix = int(n_pix)
        self.n_submap = int(n_submap)
        self.submap_pixels = -(-self.n_pix // self.n_submap)  # ceil
        # global submap -> local submap index, -1 when not allocated.
        self._glob2loc = np.full(self.n_submap, -1, dtype=np.int64)
        self._local_submaps: list[int] = []

    # -- coverage -------------------------------------------------------------

    def submap_of(self, pixels: np.ndarray) -> np.ndarray:
        """Global submap index of each global pixel (-1 passes through)."""
        pixels = np.asarray(pixels, dtype=np.int64)
        if np.any(pixels >= self.n_pix):
            raise ValueError("pixel index beyond the distribution")
        return np.where(pixels < 0, np.int64(-1), pixels // self.submap_pixels)

    def cover(self, pixels: np.ndarray) -> None:
        """Allocate the submaps hit by these (global) pixels."""
        sm = self.submap_of(pixels)
        for s in np.unique(sm[sm >= 0]):
            if self._glob2loc[s] < 0:
                self._glob2loc[s] = len(self._local_submaps)
                self._local_submaps.append(int(s))

    def cover_all(self) -> None:
        """Allocate every submap (a serial run with a full map)."""
        self.cover(np.arange(self.n_pix, dtype=np.int64))

    @property
    def n_local_submaps(self) -> int:
        return len(self._local_submaps)

    @property
    def n_local_pixels(self) -> int:
        return self.n_local_submaps * self.submap_pixels

    @property
    def local_submaps(self) -> np.ndarray:
        return np.array(self._local_submaps, dtype=np.int64)

    def memory_savings(self) -> float:
        """Fraction of full-map storage avoided by the local allocation."""
        full = self.n_submap * self.submap_pixels
        return 1.0 - self.n_local_pixels / full

    # -- translation ------------------------------------------------------------

    def global_to_local(self, pixels: np.ndarray) -> np.ndarray:
        """Translate global pixels to local indices (-1 stays -1).

        Raises if a pixel falls in an uncovered submap (kernels must never
        see unallocated local memory -- the device-pointer analogue).
        """
        pixels = np.asarray(pixels, dtype=np.int64)
        sm = self.submap_of(pixels)
        good = sm >= 0
        loc_sm = np.where(good, self._glob2loc[np.where(good, sm, 0)], -1)
        if np.any(good & (loc_sm < 0)):
            missing = np.unique(sm[good & (loc_sm < 0)])
            raise ValueError(f"pixels hit uncovered submaps {missing.tolist()}")
        offset = pixels - sm * self.submap_pixels
        return np.where(good, loc_sm * self.submap_pixels + offset, np.int64(-1))

    def local_to_global(self, local: np.ndarray) -> np.ndarray:
        """Inverse translation for allocated local indices."""
        local = np.asarray(local, dtype=np.int64)
        if np.any(local >= self.n_local_pixels):
            raise ValueError("local index beyond the allocated submaps")
        loc_sm = np.where(local < 0, 0, local // self.submap_pixels)
        glob_sm = self.local_submaps[loc_sm] if self.n_local_submaps else loc_sm
        offset = local - loc_sm * self.submap_pixels
        out = glob_sm * self.submap_pixels + offset
        return np.where(local < 0, np.int64(-1), np.minimum(out, self.n_pix - 1))

    # -- map storage -------------------------------------------------------------

    def zeros(self, nnz: int = 1, dtype=np.float64) -> np.ndarray:
        """A local map covering only the allocated submaps."""
        shape = (self.n_local_pixels, nnz) if nnz > 1 else (self.n_local_pixels,)
        return np.zeros(shape, dtype=dtype)

    def expand(self, local_map: np.ndarray, fill: float = 0.0) -> np.ndarray:
        """Scatter a local map back onto the full global pixel domain."""
        local_map = np.asarray(local_map)
        if local_map.shape[0] != self.n_local_pixels:
            raise ValueError(
                f"local map has {local_map.shape[0]} pixels, expected {self.n_local_pixels}"
            )
        out_shape = (self.n_pix,) + local_map.shape[1:]
        out = np.full(out_shape, fill, dtype=local_map.dtype)
        for loc, glob in enumerate(self._local_submaps):
            g0 = glob * self.submap_pixels
            g1 = min(g0 + self.submap_pixels, self.n_pix)
            l0 = loc * self.submap_pixels
            out[g0:g1] = local_map[l0 : l0 + (g1 - g0)]
        return out

    def restrict(self, full_map: np.ndarray) -> np.ndarray:
        """Gather a full global map into the local submap layout."""
        full_map = np.asarray(full_map)
        if full_map.shape[0] != self.n_pix:
            raise ValueError(f"map has {full_map.shape[0]} pixels, expected {self.n_pix}")
        out_shape = (self.n_local_pixels,) + full_map.shape[1:]
        out = np.zeros(out_shape, dtype=full_map.dtype)
        for loc, glob in enumerate(self._local_submaps):
            g0 = glob * self.submap_pixels
            g1 = min(g0 + self.submap_pixels, self.n_pix)
            l0 = loc * self.submap_pixels
            out[l0 : l0 + (g1 - g0)] = full_map[g0:g1]
        return out

    def __repr__(self) -> str:
        return (
            f"PixelDistribution({self.n_pix} pixels, "
            f"{self.n_local_submaps}/{self.n_submap} submaps local, "
            f"{self.memory_savings():.0%} saved)"
        )
