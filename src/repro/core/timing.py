"""Coarse timing tools (paper §3.2.3).

TOAST ships a decorator collecting per-function timing that dumps to CSV;
the authors added a script merging several CSVs into a comparative
spreadsheet and call it "the most significant productivity boost throughout
the project".  Both pieces are here: :func:`function_timer`,
:class:`GlobalTimers` with CSV dump, and :func:`merge_timing_csv`.
"""

from __future__ import annotations

import csv
import functools
import io
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..utils.table import Table

__all__ = [
    "Timer",
    "GlobalTimers",
    "global_timers",
    "function_timer",
    "merge_timing_csv",
]


@dataclass
class TimerRecord:
    """Accumulated statistics for one named timer."""

    name: str
    total_seconds: float = 0.0
    calls: int = 0
    max_seconds: float = 0.0

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.calls if self.calls else 0.0


class Timer:
    """A stopwatch usable as a context manager."""

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self.elapsed = 0.0

    def start(self) -> "Timer":
        if self._start is not None:
            raise RuntimeError(
                "timer is already running; stop() it before starting again "
                "(a second start() would silently discard the running interval)"
            )
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("timer was not started")
        self.elapsed += time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


@dataclass
class GlobalTimers:
    """A process-wide table of named timers."""

    records: Dict[str, TimerRecord] = field(default_factory=dict)

    def record(self, name: str, seconds: float) -> None:
        rec = self.records.setdefault(name, TimerRecord(name))
        rec.total_seconds += seconds
        rec.calls += 1
        rec.max_seconds = max(rec.max_seconds, seconds)

    def total(self, name: str) -> float:
        return self.records[name].total_seconds if name in self.records else 0.0

    def calls(self, name: str) -> int:
        return self.records[name].calls if name in self.records else 0

    def clear(self) -> None:
        self.records.clear()

    def dump_csv(self, path: Union[str, Path, io.TextIOBase]) -> None:
        """Write one row per timer: name, total, calls, mean, max."""
        own = isinstance(path, (str, Path))
        fh = open(path, "w", newline="") if own else path
        try:
            writer = csv.writer(fh)
            writer.writerow(["name", "total_seconds", "calls", "mean_seconds", "max_seconds"])
            for name in sorted(self.records):
                r = self.records[name]
                writer.writerow([r.name, r.total_seconds, r.calls, r.mean_seconds, r.max_seconds])
        finally:
            if own:
                fh.close()

    def render(self, title: str = "timers") -> str:
        table = Table(["name", "total [s]", "calls", "mean [s]"], title=title)
        for name in sorted(self.records, key=lambda n: -self.records[n].total_seconds):
            r = self.records[name]
            table.add_row([r.name, r.total_seconds, r.calls, r.mean_seconds])
        return table.render()


#: The default process-wide timer table.
global_timers = GlobalTimers()


def function_timer(fn: Callable) -> Callable:
    """Decorator accumulating wall time under the function's qualname."""
    name = getattr(fn, "__qualname__", getattr(fn, "__name__", "anonymous"))

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        t0 = time.perf_counter()
        try:
            return fn(*args, **kwargs)
        finally:
            global_timers.record(name, time.perf_counter() - t0)

    return wrapper


def merge_timing_csv(
    paths: Sequence[Union[str, Path]],
    labels: Optional[Sequence[str]] = None,
) -> str:
    """Merge several timing CSVs into one comparative table.

    One row per timer name, one column of total seconds per input file,
    plus a ratio column against the first file -- the comparison
    spreadsheet the paper's team used to hunt suspicious slowdowns.
    """
    if not paths:
        raise ValueError("need at least one CSV to merge")
    if labels is None:
        labels = [Path(p).stem for p in paths]
    if len(labels) != len(paths):
        raise ValueError("labels must match paths")

    totals: List[Dict[str, float]] = []
    for p in paths:
        with open(p, newline="") as fh:
            rows = list(csv.DictReader(fh))
        # Timer-name sets may be disjoint across files, and rows written by
        # other tools may carry blank cells; missing entries render as
        # blank cells rather than raising.
        file_totals: Dict[str, float] = {}
        for r in rows:
            name = r.get("name")
            total = r.get("total_seconds")
            if name is None or name == "":
                continue
            if total is None or total == "":
                continue
            file_totals[name] = float(total)
        totals.append(file_totals)

    names = sorted(set().union(*[set(t) for t in totals]))
    columns = ["name"] + [f"{lab} [s]" for lab in labels]
    if len(paths) > 1:
        columns.append(f"{labels[-1]}/{labels[0]}")
    table = Table(columns, title="timing comparison")
    for name in names:
        row: List = [name]
        for t in totals:
            row.append(t.get(name))
        if len(paths) > 1:
            base = totals[0].get(name)
            last = totals[-1].get(name)
            row.append(None if not base or last is None else last / base)
        table.add_row(row)
    return table.render()
