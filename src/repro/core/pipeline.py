"""Pipelines with hybrid CPU/GPU data movement (paper §3.2.2).

The pipeline runs a sequence of operators.  When an accelerator is in play,
it uses the operators' requires/provides traits to keep data resident on
the device across consecutive GPU-enabled operators, staging to/from the
host only when a CPU-only operator touches the data and once at the end of
the pipeline.  The paper measured this residency optimization at ~40% over
the naive transfer-around-every-kernel approach; the NAIVE policy is kept
for exactly that ablation.
"""

from __future__ import annotations

from contextlib import nullcontext
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..accel.errors import DeviceLostError, OutOfDeviceMemoryError
from ..obs import state as obs_state
from ..ompshim import OmpTargetRuntime
from ..resilience import state as res_state
from .data import Data
from .dispatch import (
    ACCEL_IMPLEMENTATIONS,
    ImplementationType,
    default_implementation,
    use_implementation,
)
from .observation import Observation
from .operator import Operator
from .timing import function_timer

__all__ = ["MovementPolicy", "LoopOrder", "Pipeline"]


class MovementPolicy(Enum):
    """How the pipeline stages data to the accelerator."""

    #: Keep data resident across GPU operators (the paper's design).
    HYBRID = "hybrid"
    #: Transfer in/out around every accelerated operator (the strawman the
    #: paper beat by ~40%).
    NAIVE = "naive"


class LoopOrder(Enum):
    """The TOAST looping patterns the movement logic must handle (§3.2.2:
    "looping on detectors, then operators; on operators, then detectors").
    """

    #: Each operator processes every observation before the next operator
    #: runs (all observations resident at once).
    OPERATOR_MAJOR = "operator_major"
    #: Each observation runs through the whole operator chain before the
    #: next observation starts (one observation resident at a time --
    #: lower device memory, more staging of global products).
    OBSERVATION_MAJOR = "observation_major"


class Pipeline(Operator):
    """Run operators in sequence with framework-managed data movement."""

    def __init__(
        self,
        operators: Sequence[Operator],
        name: str = "Pipeline",
        implementation: Optional[ImplementationType] = None,
        accel: Optional[OmpTargetRuntime] = None,
        policy: MovementPolicy = MovementPolicy.HYBRID,
        order: LoopOrder = LoopOrder.OPERATOR_MAJOR,
        plan: str = "eager",
        megabatch_group: Optional[int] = None,
    ):
        super().__init__(name=name)
        if plan not in ("eager", "compiled", "megabatch"):
            raise ValueError(
                f"plan must be 'eager', 'compiled' or 'megabatch', got {plan!r}"
            )
        if megabatch_group is not None and megabatch_group < 1:
            raise ValueError(f"megabatch_group must be >= 1, got {megabatch_group}")
        self.operators: List[Operator] = list(operators)
        self.implementation = implementation
        self.accel = accel
        self.policy = policy
        self.order = order
        #: "eager" stages per operator (the parity oracle); "compiled"
        #: lowers the whole workflow through :mod:`repro.compilepipe` and
        #: executes the planned schedule.  "megabatch" additionally groups
        #: compatible per-observation kernel calls into single stacked
        #: launches (detector x observation batching).  Identical numerics
        #: all three ways.  The compiled/megabatch paths subsume
        #: MovementPolicy (their residency plans are strictly better than
        #: HYBRID), so ``policy`` only affects eager.
        self.plan = plan
        #: Observations per stacked launch group under plan="megabatch"
        #: (None: all observations in one group).  Grouping only affects
        #: how many launches are elided, never the numerics: parity is
        #: bitwise for every group size.
        self.megabatch_group = megabatch_group
        #: The last compiled PipelinePlan executed (for inspection/tests).
        self.last_plan = None

    # -- traits aggregate over the children ------------------------------------

    def requires(self) -> Dict[str, List[str]]:
        out: Dict[str, List[str]] = {"shared": [], "detdata": [], "meta": []}
        provided: set[str] = set()
        for op in self.operators:
            for cat in out:
                for key in op.requires().get(cat, []):
                    if key not in provided and key not in out[cat]:
                        out[cat].append(key)
                provided.update(op.provides().get(cat, []))
        return out

    def provides(self) -> Dict[str, List[str]]:
        out: Dict[str, List[str]] = {"shared": [], "detdata": [], "meta": []}
        for op in self.operators:
            for cat in out:
                for key in op.provides().get(cat, []):
                    if key not in out[cat]:
                        out[cat].append(key)
        return out

    def supports_accel(self) -> bool:
        return any(op.supports_accel() for op in self.operators)

    # -- array resolution ----------------------------------------------------------

    @staticmethod
    def _resolve(
        ob: Observation, traits: Dict[str, List[str]]
    ) -> List[Tuple[str, np.ndarray]]:
        """(key, array) pairs existing in this observation for the traits."""
        out = []
        for key in traits.get("shared", []):
            if key in ob.shared:
                out.append((key, ob.shared[key]))
        for key in traits.get("detdata", []):
            if key in ob.detdata:
                out.append((key, ob.detdata[key]))
        return out

    # -- execution -------------------------------------------------------------------

    @staticmethod
    def observation_units(data: Data) -> List[Data]:
        """One single-observation :class:`Data` view per observation.

        Each view shares the parent's communicator and ``meta`` dict (global
        products such as sky maps and output accumulators), so running the
        views in sequence is equivalent to an OBSERVATION_MAJOR ``exec``.
        The parallel engine uses the same decomposition to ship one
        observation per worker task.
        """
        units: List[Data] = []
        for ob in data.obs:
            sub = Data(comm=data.comm)
            sub.obs = [ob]
            sub.meta = data.meta  # global products are shared
            units.append(sub)
        return units

    @staticmethod
    def megabatch_units(data: Data, group: Optional[int]) -> List[Data]:
        """Chunk observations into stacked-launch groups of ``group``.

        Each chunk is a multi-observation :class:`Data` view sharing the
        parent's communicator and ``meta``; ``group=None`` puts every
        observation in one chunk.  Running chunks in sequence,
        operator-major within each chunk, performs exactly the eager
        OPERATOR_MAJOR kernel sequence -- the megabatch collector then
        stacks each chunk's per-observation calls into one launch.
        """
        if not data.obs:
            return [data]
        g = len(data.obs) if group is None else group
        units: List[Data] = []
        for lo in range(0, len(data.obs), g):
            sub = Data(comm=data.comm)
            sub.obs = list(data.obs[lo : lo + g])
            sub.meta = data.meta
            units.append(sub)
        return units

    def _stage(self, op: Operator, runtime: Optional[OmpTargetRuntime] = None):
        """A PIPELINE_STAGE region around one operator's execution.

        On the accelerated path the stage event lands on the device
        timeline (virtual clock); otherwise it is a host span.  Free when
        tracing is off.
        """
        tr = obs_state.active
        if tr is None:
            return nullcontext()
        clock = runtime.device.clock if runtime is not None else None
        return tr.stage(
            op.name,
            device_clock=clock,
            pipeline=self.name,
            accel=runtime is not None,
        )

    @function_timer
    def exec(self, data: Data, use_accel: bool = False, accel=None) -> None:
        impl = self.implementation if self.implementation is not None else default_implementation()
        runtime = accel if accel is not None else self.accel
        accel_enabled = impl in ACCEL_IMPLEMENTATIONS and runtime is not None

        if self.order is LoopOrder.OBSERVATION_MAJOR:
            work_units = self.observation_units(data)
        else:
            work_units = [data]

        with use_implementation(impl):
            if not accel_enabled:
                if self.plan == "megabatch":
                    self._exec_megabatch_host(data)
                    return
                for unit in work_units:
                    for op in self.operators:
                        op.ensure_outputs(unit)
                        with self._stage(op):
                            op.exec(unit, use_accel=False, accel=None)
                return

            if impl is ImplementationType.JAX:
                from ..jaxshim import attach_device, detach_device

                attach_device(runtime.device)
                try:
                    if self.plan in ("compiled", "megabatch"):
                        self._exec_compiled(data, runtime)
                    else:
                        for unit in work_units:
                            self._exec_accel(unit, runtime)
                finally:
                    detach_device()
            elif self.plan in ("compiled", "megabatch"):
                self._exec_compiled(data, runtime)
            else:
                for unit in work_units:
                    self._exec_accel(unit, runtime)

    def _exec_compiled(self, data: Data, runtime: OmpTargetRuntime) -> None:
        """Whole-workflow compiled execution (one plan spans all units)."""
        from ..compilepipe import execute_compiled

        self.last_plan = execute_compiled(self, data, runtime)

    def _exec_megabatch_host(self, data: Data) -> None:
        """Stacked launches without a device: operator-major over chunks.

        Each operator's per-observation kernel calls within a chunk are
        collected and flushed as single stacked host launches; kernels
        without a stacked implementation replay per observation, so the
        result is bitwise identical to the eager path.
        """
        from ..kernels.megabatch import MegabatchCollector
        from .dispatch import megabatch_collection

        chunks = self.megabatch_units(data, self.megabatch_group)
        for op in self.operators:
            for unit in chunks:
                op.ensure_outputs(unit)
                with self._stage(op):
                    with megabatch_collection(MegabatchCollector()):
                        op.exec(unit, use_accel=False, accel=None)

    def _exec_accel(self, data: Data, runtime: OmpTargetRuntime) -> None:
        ctrl = res_state.active
        if ctrl is not None:
            # The recovery-aware path adds OOM eviction, host fallback, and
            # checkpoint/resume; kept separate so the common path stays free.
            self._exec_accel_resilient(data, runtime, ctrl)
            return
        # Device-resident arrays and whether the device copy is newer.
        mapped: Dict[int, np.ndarray] = {}
        device_dirty: set[int] = set()

        def stage_in(arrays: List[Tuple[str, np.ndarray]]) -> None:
            for key, arr in arrays:
                if id(arr) not in mapped:
                    runtime.target_enter_data(to=[arr], labels={id(arr): key})
                    mapped[id(arr)] = arr

        def stage_out_all() -> None:
            for key in list(mapped):
                arr = mapped[key]
                if key in device_dirty:
                    runtime.target_update_from(arr)
                runtime.target_exit_data(release=[arr])
                del mapped[key]
            device_dirty.clear()

        for op in self.operators:
            op.ensure_outputs(data)
            op_accel = op.supports_accel()
            # Staging sets derive from the operator's kernel-spec argument
            # intents (IN/INOUT -> pull, OUT/INOUT -> push); operators
            # without kernel bindings fall back to requires/provides.
            pull_traits, push_traits = op.staging_intents()
            pull: List[Tuple[str, np.ndarray]] = []
            push: List[Tuple[str, np.ndarray]] = []
            for ob in data.obs:
                pull.extend(self._resolve(ob, pull_traits))
                push.extend(self._resolve(ob, push_traits))

            with self._stage(op, runtime):
                if op_accel:
                    stage_in(pull)
                    op.exec(data, use_accel=True, accel=runtime)
                    for _, arr in push:
                        device_dirty.add(id(arr))
                    if self.policy is MovementPolicy.NAIVE:
                        # Strawman: round-trip everything after every kernel.
                        stage_out_all()
                else:
                    # CPU-only operator: sync device-newer inputs back first.
                    for _, arr in pull:
                        if id(arr) in device_dirty:
                            runtime.target_update_from(arr)
                            device_dirty.discard(id(arr))
                    op.exec(data, use_accel=False, accel=None)
                    # Host copies of mapped outputs are newer: refresh device.
                    for _, arr in push:
                        if id(arr) in mapped:
                            runtime.target_update_to(arr)

        # End of pipeline: "the final output is transferred back to the
        # CPU, any data left on the GPU is deleted."
        stage_out_all()

    #: Device-loss recoveries tolerated per stage before giving up.
    MAX_DEVICE_RECOVERIES = 3

    def _exec_accel_resilient(
        self, data: Data, runtime: OmpTargetRuntime, ctrl
    ) -> None:
        """The accelerated path under an active resilience controller.

        Same movement logic as :meth:`_exec_accel`, plus three recovery
        behaviours:

        * **Device OOM** during a stage: stage out least-recently-used
          mapped arrays outside the stage's working set and retry; with no
          candidates left, back off and retry (external pressure clears);
          as the last resort run the operator on the host.
        * **Device loss**: invalidate mappings, revive the device, and
          re-run only the failed stage -- the per-stage checkpoint sync
          guarantees host copies are current up to the previous stage.
        * **Checkpoints**: after each stage, device-newer arrays are synced
          back and a manifest of provided fields is recorded.
        """
        clock = runtime.device.clock
        mapped: Dict[int, np.ndarray] = {}
        device_dirty: set[int] = set()
        last_used: Dict[int, int] = {}
        labels: Dict[int, str] = {}

        def stage_in(arrays: List[Tuple[str, np.ndarray]]) -> None:
            for key, arr in arrays:
                if id(arr) not in mapped:
                    runtime.target_enter_data(to=[arr], labels={id(arr): key})
                    mapped[id(arr)] = arr
                    labels[id(arr)] = key

        def stage_out_all() -> None:
            for key in list(mapped):
                arr = mapped[key]
                if key in device_dirty:
                    runtime.target_update_from(arr)
                runtime.target_exit_data(release=[arr])
                del mapped[key]
            device_dirty.clear()
            last_used.clear()

        def evict_lru(working: set, op_name: str) -> bool:
            """Stage out the least-recently-used non-working-set array."""
            candidates = [k for k in mapped if k not in working]
            if not candidates:
                return False
            victim = min(candidates, key=lambda k: last_used.get(k, -1))
            arr = mapped[victim]
            if victim in device_dirty:
                runtime.target_update_from(arr)
                device_dirty.discard(victim)
            runtime.target_exit_data(release=[arr])
            del mapped[victim]
            last_used.pop(victim, None)
            ctrl.record_eviction(
                op_name,
                arr.nbytes,
                clock=clock,
                reason="device_oom",
                label=labels.pop(victim, "?"),
                policy="lru",
            )
            return True

        def run_on_host(op, pull, push) -> None:
            """CPU execution of one operator, keeping mapped data coherent."""
            for _, arr in pull:
                if id(arr) in device_dirty:
                    runtime.target_update_from(arr)
                    device_dirty.discard(id(arr))
            op.exec(data, use_accel=False, accel=None)
            for _, arr in push:
                if id(arr) in mapped:
                    runtime.target_update_to(arr)

        for stage_idx, op in enumerate(self.operators):
            op.ensure_outputs(data)
            op_accel = op.supports_accel()
            pull_traits, push_traits = op.staging_intents()
            pull: List[Tuple[str, np.ndarray]] = []
            push: List[Tuple[str, np.ndarray]] = []
            for ob in data.obs:
                pull.extend(self._resolve(ob, pull_traits))
                push.extend(self._resolve(ob, push_traits))
            working = {id(arr) for _, arr in pull}

            oom_backoffs = 0
            device_recoveries = 0
            while True:
                try:
                    with self._stage(op, runtime):
                        if op_accel:
                            stage_in(pull)
                            op.exec(data, use_accel=True, accel=runtime)
                            for _, arr in push:
                                device_dirty.add(id(arr))
                            for key in working:
                                last_used[key] = stage_idx
                            if self.policy is MovementPolicy.NAIVE:
                                stage_out_all()
                        else:
                            run_on_host(op, pull, push)
                    break
                except OutOfDeviceMemoryError as e:
                    if ctrl.config.evict_on_oom and evict_lru(working, op.name):
                        continue  # freed a block; retry the stage
                    if oom_backoffs < ctrl.config.retry.max_attempts - 1:
                        # Nothing left to evict: external pressure -- wait
                        # (virtual time) for it to clear and retry.
                        oom_backoffs += 1
                        ctrl.backoff(f"pipeline.{op.name}", oom_backoffs, e, clock=clock)
                        continue
                    if not op_accel:
                        raise  # the host path itself cannot OOM the device
                    with self._stage(op, runtime):
                        ctrl.record_host_fallback(op.name, "device_oom", clock=clock)
                        run_on_host(op, pull, push)
                    break
                except DeviceLostError:
                    if not ctrl.config.checkpoint:
                        raise  # without checkpoints host copies may be stale
                    if device_recoveries >= self.MAX_DEVICE_RECOVERIES:
                        raise
                    device_recoveries += 1
                    # Mappings are garbage; host copies are current up to
                    # the last checkpoint, so only this stage re-runs.
                    runtime.recover_device()
                    mapped.clear()
                    device_dirty.clear()
                    last_used.clear()
                    ctrl.record_device_recovery(op.name, stage_idx, clock=clock)
                    continue

            if ctrl.config.checkpoint:
                # Sync device-newer arrays back so host copies are current:
                # the resume point if the device is lost in a later stage.
                for key in list(device_dirty):
                    runtime.target_update_from(mapped[key])
                device_dirty.clear()
                ctrl.record_checkpoint(
                    {
                        "pipeline": self.name,
                        "op": op.name,
                        "stage": stage_idx,
                        "fields": sorted(key for key, _ in push),
                    },
                    clock=clock,
                )

        stage_out_all()

    @function_timer
    def finalize(self, data: Data) -> None:
        for op in self.operators:
            op.finalize(data)

    def apply(self, data: Data, use_accel: bool = False, accel=None) -> None:
        self.exec(data, use_accel=use_accel, accel=accel)
        self.finalize(data)

    def __repr__(self) -> str:
        inner = ", ".join(op.name for op in self.operators)
        return f"Pipeline([{inner}], impl={self.implementation}, policy={self.policy.value})"
