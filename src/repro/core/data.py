"""The distributed data container: observations owned by a process group."""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional

from ..mpi import ToastComm
from .observation import Observation

__all__ = ["Data"]


class Data:
    """All observations assigned to this process group, plus global objects.

    ``meta`` holds pipeline-global products (sky maps, template amplitude
    vectors, pixel distributions) keyed by name, like TOAST's ``Data``
    dictionary interface.
    """

    def __init__(self, comm: Optional[ToastComm] = None):
        self.comm = comm if comm is not None else ToastComm()
        self.obs: List[Observation] = []
        self.meta: Dict[str, Any] = {}

    def __iter__(self) -> Iterator[Observation]:
        return iter(self.obs)

    def __len__(self) -> int:
        return len(self.obs)

    def __getitem__(self, key: str) -> Any:
        return self.meta[key]

    def __setitem__(self, key: str, value: Any) -> None:
        self.meta[key] = value

    def __contains__(self, key: str) -> bool:
        return key in self.meta

    @property
    def n_samples_total(self) -> int:
        return sum(ob.n_samples for ob in self.obs)

    def memory_bytes(self) -> int:
        """Total timestream bytes held by this process group."""
        return sum(ob.memory_bytes() for ob in self.obs)

    def clear_meta(self) -> None:
        self.meta.clear()

    def __repr__(self) -> str:
        return f"Data({len(self.obs)} observations, meta={sorted(self.meta)})"
