"""Observations: the unit of data distribution.

An observation holds a contiguous span of time for one telescope: *shared*
arrays common to all detectors (timestamps, boresight pointing, shared
flags), *detdata* arrays with one row per detector (signal, pixel numbers,
Stokes weights, ...), and named *interval* lists marking the valid spans
the kernels iterate over.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..math.intervals import IntervalList
from .focalplane import Focalplane

__all__ = ["Observation"]


class Observation:
    """One observation: shared data, detector data, intervals.

    Parameters
    ----------
    focalplane:
        The instrument; fixes the detector list and ordering.
    n_samples:
        Number of time samples.
    name:
        Unique name; also seeds the observation's RNG key.
    uid:
        Stable integer identity used in counter-based RNG keys; derived
        from the name when omitted.
    """

    def __init__(
        self,
        focalplane: Focalplane,
        n_samples: int,
        name: str = "obs",
        uid: Optional[int] = None,
    ):
        if n_samples <= 0:
            raise ValueError("an observation needs at least one sample")
        self.focalplane = focalplane
        self.name = name
        self.uid = uid if uid is not None else (hash(name) & 0xFFFFFFFF)
        self.n_samples = int(n_samples)
        self.shared: Dict[str, np.ndarray] = {}
        self.detdata: Dict[str, np.ndarray] = {}
        self.intervals: Dict[str, IntervalList] = {}

    # -- detectors ------------------------------------------------------------

    @property
    def detectors(self) -> List[str]:
        return self.focalplane.detectors

    @property
    def n_detectors(self) -> int:
        return self.focalplane.n_detectors

    def detector_index(self, name: str) -> int:
        return self.detectors.index(name)

    # -- shared data ------------------------------------------------------------

    def create_shared(self, key: str, shape: Tuple[int, ...], dtype=np.float64) -> np.ndarray:
        """Allocate a shared (all-detector) array; first axis is samples."""
        if shape[0] != self.n_samples:
            raise ValueError(
                f"shared array leading axis {shape[0]} != n_samples {self.n_samples}"
            )
        if key in self.shared:
            raise KeyError(f"shared key {key!r} already exists")
        self.shared[key] = np.zeros(shape, dtype=dtype)
        return self.shared[key]

    def set_shared(self, key: str, value: np.ndarray) -> None:
        value = np.ascontiguousarray(value)
        if value.shape[0] != self.n_samples:
            raise ValueError("shared array leading axis must be n_samples")
        self.shared[key] = value

    # -- detector data ------------------------------------------------------------

    def create_detdata(
        self, key: str, sample_shape: Tuple[int, ...] = (), dtype=np.float64
    ) -> np.ndarray:
        """Allocate a per-detector array of shape (n_det, n_samples, *extra)."""
        if key in self.detdata:
            raise KeyError(f"detdata key {key!r} already exists")
        shape = (self.n_detectors, self.n_samples) + tuple(sample_shape)
        self.detdata[key] = np.zeros(shape, dtype=dtype)
        return self.detdata[key]

    def ensure_detdata(
        self, key: str, sample_shape: Tuple[int, ...] = (), dtype=np.float64
    ) -> np.ndarray:
        """Get-or-create semantics used by operators providing outputs."""
        if key not in self.detdata:
            return self.create_detdata(key, sample_shape, dtype)
        existing = self.detdata[key]
        expected = (self.n_detectors, self.n_samples) + tuple(sample_shape)
        if existing.shape != expected:
            raise ValueError(
                f"detdata {key!r} exists with shape {existing.shape}, wanted {expected}"
            )
        return existing

    # -- intervals ------------------------------------------------------------

    def set_intervals(self, key: str, intervals: IntervalList) -> None:
        for iv in intervals:
            if iv.last > self.n_samples:
                raise ValueError(
                    f"interval [{iv.first},{iv.last}) exceeds n_samples {self.n_samples}"
                )
        self.intervals[key] = intervals

    def interval_arrays(self, key: Optional[str]) -> Tuple[np.ndarray, np.ndarray]:
        """(starts, stops) arrays for a named interval list.

        ``None`` means "the whole observation" -- a single interval.
        """
        if key is None:
            return (
                np.array([0], dtype=np.int64),
                np.array([self.n_samples], dtype=np.int64),
            )
        return self.intervals[key].as_arrays()

    # -- memory accounting (feeds the footprint model) ----------------------------

    def memory_bytes(self) -> int:
        total = 0
        for arr in self.shared.values():
            total += arr.nbytes
        for arr in self.detdata.values():
            total += arr.nbytes
        return total

    def __repr__(self) -> str:
        return (
            f"Observation({self.name!r}, {self.n_detectors} det x "
            f"{self.n_samples} samp, shared={sorted(self.shared)}, "
            f"detdata={sorted(self.detdata)})"
        )
