"""Operator base class with data-traits (paper §3.2.2).

"Each operator includes information regarding GPU support and a list of
input and output data it handles.  This information allows us to implement
data movement logic within our pipelines."
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .data import Data

__all__ = ["Operator"]


class Operator:
    """A modular data-processing step.

    Subclasses implement :meth:`exec` (per-observation work through the
    kernel dispatch) and optionally :meth:`finalize` (cross-observation
    reductions).  The trait methods drive the pipeline's hybrid data
    movement:

    * :meth:`requires` -- shared/detdata keys read by the operator;
    * :meth:`provides` -- keys written (created if missing);
    * :meth:`supports_accel` -- whether an accelerated kernel exists.
    """

    def __init__(self, name: Optional[str] = None):
        self.name = name if name is not None else type(self).__name__

    # -- data traits --------------------------------------------------------

    def requires(self) -> Dict[str, List[str]]:
        """Keys read: ``{"shared": [...], "detdata": [...], "meta": [...]}``."""
        return {"shared": [], "detdata": [], "meta": []}

    def provides(self) -> Dict[str, List[str]]:
        """Keys written or created."""
        return {"shared": [], "detdata": [], "meta": []}

    def supports_accel(self) -> bool:
        """Whether this operator has a GPU-capable kernel."""
        return False

    # -- execution ------------------------------------------------------------

    def ensure_outputs(self, data: Data) -> None:
        """Create host-side output arrays before execution.

        Called by pipelines ahead of :meth:`exec` so outputs can be mapped
        to the device together with the inputs.
        """

    def exec(self, data: Data, use_accel: bool = False, accel=None) -> None:
        raise NotImplementedError

    def finalize(self, data: Data) -> None:
        """Cross-observation post-processing (e.g. map reductions)."""

    def apply(self, data: Data, use_accel: bool = False, accel=None) -> None:
        """Convenience: ensure outputs, exec, finalize."""
        self.ensure_outputs(data)
        self.exec(data, use_accel=use_accel, accel=accel)
        self.finalize(data)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
