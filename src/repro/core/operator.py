"""Operator base class with data-traits (paper §3.2.2).

"Each operator includes information regarding GPU support and a list of
input and output data it handles.  This information allows us to implement
data movement logic within our pipelines."
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .data import Data

__all__ = ["Operator"]

#: KernelSpec arg roles -> observation data categories.  GLOBAL args are
#: cross-observation products the operator stages itself (pipeline
#: ``meta``); other roles (focalplane, intervals, scalar, derived) never
#: bind observation keys.
_ROLE_CATEGORY = {"detdata": "detdata", "shared": "shared", "global": "meta"}


def _empty_traits() -> Dict[str, List[str]]:
    return {"shared": [], "detdata": [], "meta": []}


class Operator:
    """A modular data-processing step.

    Subclasses implement :meth:`exec` (per-observation work through the
    kernel dispatch) and optionally :meth:`finalize` (cross-observation
    reductions).  The trait methods drive the pipeline's hybrid data
    movement:

    * :meth:`requires` -- shared/detdata keys read by the operator;
    * :meth:`provides` -- keys written (created if missing);
    * :meth:`supports_accel` -- whether an accelerated kernel exists.

    Operators that call dispatched kernels declare
    :meth:`kernel_bindings` instead of hand-maintaining those traits:
    the bindings map each kernel argument to the observation key the
    operator feeds it, and requires/provides/supports_accel derive from
    the kernels' :class:`~repro.kernels.spec.KernelSpec` intents.
    """

    def __init__(self, name: Optional[str] = None):
        self.name = name if name is not None else type(self).__name__

    # -- data traits --------------------------------------------------------

    def kernel_bindings(self) -> Dict[str, Dict[str, Optional[str]]]:
        """Kernel-argument -> observation-key bindings, per kernel name.

        ``{"scan_map": {"map_data": "sky_map", "pixels": "pixels", ...}}``
        binds spec args to the keys this operator feeds them.  Only
        ``detdata``/``shared``/``global``-role args may carry keys; args
        the operator computes internally are simply omitted (or bound to
        ``None``, e.g. an optional flags argument that is configured
        off).  Binding insertion order is preserved into the derived
        traits, so it determines device staging order.
        """
        return {}

    def kernels(self) -> List[str]:
        """The dispatched kernel names this operator calls."""
        return sorted(self.kernel_bindings())

    def _spec_traits(self) -> Optional[Tuple[Dict[str, List[str]], Dict[str, List[str]]]]:
        """(requires, provides) derived from kernel bindings, or None.

        Fails loudly on a binding to an unknown kernel, an unknown spec
        argument, or a non-bindable argument role.
        """
        bindings = self.kernel_bindings()
        if not bindings:
            return None
        from .dispatch import kernel_registry

        if not kernel_registry.kernels():
            from .. import kernels as _kernels  # noqa: F401
        req = _empty_traits()
        prov = _empty_traits()
        for kname in sorted(bindings):
            spec = kernel_registry.spec(kname)
            if spec is None:
                raise KeyError(
                    f"operator {self.name!r} binds kernel {kname!r}, which has "
                    f"no KernelSpec in the registry"
                )
            for arg_name, key in bindings[kname].items():
                arg = spec.arg(arg_name)
                if key is None:
                    continue
                category = _ROLE_CATEGORY.get(arg.role.value)
                if category is None:
                    raise ValueError(
                        f"operator {self.name!r}: kernel {kname!r} argument "
                        f"{arg_name!r} has role {arg.role.value!r}; only "
                        f"detdata/shared/global arguments can bind data keys"
                    )
                if arg.intent.reads and key not in req[category]:
                    req[category].append(key)
                if arg.intent.writes and key not in prov[category]:
                    prov[category].append(key)
        return req, prov

    def requires(self) -> Dict[str, List[str]]:
        """Keys read: ``{"shared": [...], "detdata": [...], "meta": [...]}``."""
        traits = self._spec_traits()
        return traits[0] if traits is not None else _empty_traits()

    def provides(self) -> Dict[str, List[str]]:
        """Keys written or created."""
        traits = self._spec_traits()
        return traits[1] if traits is not None else _empty_traits()

    def supports_accel(self) -> bool:
        """Whether this operator has a GPU-capable kernel.

        Derived from the registry: true when every bound kernel has at
        least one accelerated implementation registered.
        """
        bindings = self.kernel_bindings()
        if not bindings:
            return False
        from .dispatch import ACCEL_IMPLEMENTATIONS, kernel_registry

        if not kernel_registry.kernels():
            from .. import kernels as _kernels  # noqa: F401
        return all(
            any(kernel_registry.has(kname, impl) for impl in ACCEL_IMPLEMENTATIONS)
            for kname in bindings
        )

    def staging_intents(
        self,
    ) -> Tuple[Dict[str, List[str]], Dict[str, List[str]]]:
        """(pull, push) staging sets for accelerated pipelines.

        ``pull`` keys must be valid on the device before :meth:`exec`
        (h2d); ``push`` keys are dirty on the device afterwards (d2h at
        the next sync point).  Derived from spec intents (``IN``/``INOUT``
        pull, ``OUT``/``INOUT`` push) when kernel bindings exist, else
        from the hand-written requires/provides traits.  Only the
        ``shared``/``detdata`` categories stage through the pipeline;
        ``meta`` arrays are staged by the operator itself.
        """
        traits = self._spec_traits()
        if traits is not None:
            req, prov = traits
        else:
            req, prov = self.requires(), self.provides()
        pull = {"shared": [], "detdata": []}
        push = {"shared": [], "detdata": []}
        for category in ("shared", "detdata"):
            for key in list(req.get(category, ())) + list(prov.get(category, ())):
                if key not in pull[category]:
                    pull[category].append(key)
            for key in prov.get(category, ()):
                if key not in push[category]:
                    push[category].append(key)
        return pull, push

    # -- execution ------------------------------------------------------------

    def ensure_outputs(self, data: Data) -> None:
        """Create host-side output arrays before execution.

        Called by pipelines ahead of :meth:`exec` so outputs can be mapped
        to the device together with the inputs.
        """

    def exec(self, data: Data, use_accel: bool = False, accel=None) -> None:
        raise NotImplementedError

    def finalize(self, data: Data) -> None:
        """Cross-observation post-processing (e.g. map reductions)."""

    def apply(self, data: Data, use_accel: bool = False, accel=None) -> None:
        """Convenience: ensure outputs, exec, finalize."""
        self.ensure_outputs(data)
        self.exec(data, use_accel=use_accel, accel=accel)
        self.finalize(data)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
