"""The TOAST-like framework core.

Data model (``Observation`` holding shared telescope data, per-detector
timestreams, and interval lists; ``Data`` holding the observations of a
process group), the operator/pipeline machinery with hybrid CPU/GPU data
movement (paper §3.2), the runtime kernel-dispatch system, and the
CSV-based timing tools (§3.2.3).
"""

from .focalplane import Focalplane, fake_hexagon_focalplane
from .observation import Observation
from .data import Data
from .dispatch import (
    ImplementationType,
    KernelRegistry,
    default_implementation,
    get_kernel,
    kernel_registry,
    use_implementation,
)
from .operator import Operator
from .pipeline import LoopOrder, MovementPolicy, Pipeline
from .pixdist import PixelDistribution
from .timing import GlobalTimers, Timer, function_timer, global_timers

__all__ = [
    "Focalplane",
    "fake_hexagon_focalplane",
    "Observation",
    "Data",
    "ImplementationType",
    "KernelRegistry",
    "kernel_registry",
    "get_kernel",
    "use_implementation",
    "default_implementation",
    "Operator",
    "Pipeline",
    "MovementPolicy",
    "LoopOrder",
    "PixelDistribution",
    "Timer",
    "GlobalTimers",
    "global_timers",
    "function_timer",
]
