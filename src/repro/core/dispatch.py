"""Runtime kernel dispatch (paper §3.2.1).

"We designed a runtime dispatch system over kernels, enabling the selection
of specific implementations for the entire code, individual pipelines, or
kernels."  Kernels register one function per
:class:`ImplementationType`; resolution walks call-site override ->
pipeline override -> global default, and can fall back from an accelerated
implementation to the compiled CPU one when a kernel has no GPU port.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from enum import Enum
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from ..obs import state as obs_state
from ..obs.events import ClockDomain, Event, EventType
from ..resilience import state as res_state

__all__ = [
    "ImplementationType",
    "KernelRegistry",
    "kernel_registry",
    "kernel",
    "megabatch_kernel",
    "get_kernel",
    "use_implementation",
    "default_implementation",
    "FALLBACK_ORDER",
    "fallback_chain",
    "BoundKernel",
    "validate_kernel_calls",
    "kernel_call_validation_active",
    "active_megabatch_collector",
    "megabatch_collection",
]


class ImplementationType(Enum):
    """The four kernel variants the study compares."""

    #: Readable pure-Python loops: the correctness oracle (stands in for
    #: unoptimized reference code).
    PYTHON = "python"
    #: Vectorized NumPy: the "compiled CPU" baseline (the paper's original
    #: OpenMP C++ kernels).
    NUMPY = "numpy"
    #: The jaxshim port: pure/jit/vmap, CPU or simulated GPU.
    JAX = "jax"
    #: The OpenMP Target Offload port over the simulated device.
    OMP_TARGET = "omp_target"


#: Implementations that run on the (simulated) accelerator.
ACCEL_IMPLEMENTATIONS = (ImplementationType.JAX, ImplementationType.OMP_TARGET)

#: Resolution order the recovery plane walks when a kernel keeps failing:
#: fastest accelerated path first, interpreter-speed oracle last.
FALLBACK_ORDER = (
    ImplementationType.JAX,
    ImplementationType.OMP_TARGET,
    ImplementationType.NUMPY,
    ImplementationType.PYTHON,
)


def fallback_chain(
    name: str,
    requested: ImplementationType,
    registry: Optional["KernelRegistry"] = None,
) -> List[ImplementationType]:
    """The implementations to try for ``name``, starting at ``requested``.

    The chain is the requested implementation followed by the remaining
    :data:`FALLBACK_ORDER` entries, filtered to implementations the kernel
    actually registers.

    Kernels whose :class:`~repro.kernels.spec.KernelSpec` declares
    ``fallback_eligible=False`` never fall past the requested
    implementation -- the chain is at most ``[requested]``.
    """
    reg = registry if registry is not None else kernel_registry
    spec = reg.spec(name)
    if spec is not None and not spec.fallback_eligible:
        return [requested] if reg.has(name, requested) else []
    chain = [requested] + [i for i in FALLBACK_ORDER if i is not requested]
    return [i for i in chain if reg.has(name, i)]


class KernelRegistry:
    """Maps (kernel name, implementation) to the callable.

    With ``require_specs`` (the default, and how the process-wide
    registry is built), every kernel must declare a
    :class:`~repro.kernels.spec.KernelSpec` via :meth:`register_spec`
    *before* any implementation registers, and each implementation's
    signature is validated against the spec at registration time -- the
    four backends cannot drift apart silently.
    """

    def __init__(self, require_specs: bool = True) -> None:
        self._impls: Dict[str, Dict[ImplementationType, Callable]] = {}
        self._megabatch: Dict[str, Dict[ImplementationType, Callable]] = {}
        self._specs: Dict[str, Any] = {}
        self.require_specs = require_specs

    # -- specs ---------------------------------------------------------------

    def register_spec(self, spec: Any) -> Any:
        """Register the declarative contract for one kernel name.

        Must happen before any implementation of that kernel registers,
        so that every implementation is validated.
        """
        name = getattr(spec, "name", None)
        if not isinstance(name, str) or not hasattr(spec, "validate_impl"):
            raise TypeError(f"expected a KernelSpec, got {spec!r}")
        if name in self._specs:
            raise ValueError(f"kernel {name!r} already has a KernelSpec")
        if name in self._impls:
            registered = ", ".join(i.value for i in self.implementations(name))
            raise ValueError(
                f"kernel {name!r} already has implementations ({registered}); "
                f"register the KernelSpec before any implementation"
            )
        self._specs[name] = spec
        return spec

    def spec(self, name: str) -> Optional[Any]:
        """The :class:`KernelSpec` for ``name``, or None."""
        return self._specs.get(name)

    def specs(self) -> Dict[str, Any]:
        return dict(self._specs)

    # -- implementations -----------------------------------------------------

    def register(self, name: str, impl: ImplementationType, fn: Callable) -> Callable:
        spec = self._specs.get(name)
        if spec is None and self.require_specs:
            raise ValueError(
                f"kernel {name!r} has no KernelSpec; declare one in "
                f"repro/kernels/specs.py (or register_spec()) before "
                f"registering implementations"
            )
        if spec is not None:
            spec.validate_impl(fn, impl.value)
        table = self._impls.setdefault(name, {})
        if impl in table:
            raise ValueError(f"kernel {name!r} already has a {impl.value} implementation")
        table[impl] = fn
        return fn

    def get(
        self,
        name: str,
        impl: ImplementationType,
        allow_fallback: bool = True,
    ) -> Callable:
        """Resolve an implementation.

        With ``allow_fallback``, a missing accelerated implementation falls
        back to NUMPY (the framework runs un-ported kernels on the CPU --
        the paper notes more than 30 such kernels bound the speedup by
        Amdahl's law).
        """
        return self.resolve(name, impl, allow_fallback)[0]

    def resolve(
        self,
        name: str,
        impl: ImplementationType,
        allow_fallback: bool = True,
    ) -> Tuple[Callable, ImplementationType]:
        """Like :meth:`get`, but also reports which implementation won
        (so callers can see when the CPU fallback kicked in)."""
        if name not in self._impls:
            raise KeyError(f"unknown kernel {name!r}; known: {sorted(self._impls)}")
        table = self._impls[name]
        if impl in table:
            return table[impl], impl
        spec = self._specs.get(name)
        if spec is not None and not spec.fallback_eligible:
            allow_fallback = False
        if allow_fallback and ImplementationType.NUMPY in table:
            return table[ImplementationType.NUMPY], ImplementationType.NUMPY
        registered = ", ".join(i.value for i in sorted(table, key=lambda i: i.value))
        raise KeyError(
            f"kernel {name!r} has no {impl.value} implementation "
            f"(registered: {registered or 'none'})"
        )

    def implementations(self, name: str) -> List[ImplementationType]:
        return sorted(self._impls.get(name, {}), key=lambda i: i.value)

    def kernels(self) -> List[str]:
        return sorted(self._impls)

    def has(self, name: str, impl: ImplementationType) -> bool:
        return impl in self._impls.get(name, {})

    # -- megabatch (observation-stacked) entry paths -------------------------

    def register_megabatch(
        self, name: str, impl: ImplementationType, fn: Callable
    ) -> Callable:
        """Register a stacked (obs-leading) implementation of ``name``.

        The spec must declare ``megabatch=True`` and the stacked function
        must keep the exact per-observation signature -- ``"stack"`` args
        simply carry a leading ``n_obs`` axis and intervals arrive as
        ``(n_obs, n_ivl)`` padded slabs -- so ``validate_impl`` enforces
        the same contract the scalar backends obey.
        """
        spec = self._specs.get(name)
        if spec is None:
            raise ValueError(
                f"kernel {name!r} has no KernelSpec; megabatch "
                f"implementations require one"
            )
        if not getattr(spec, "megabatch", False):
            raise ValueError(
                f"kernel {name!r}: KernelSpec does not declare "
                f"megabatch=True; stacked implementations are not allowed"
            )
        spec.validate_impl(fn, f"{impl.value}+megabatch")
        table = self._megabatch.setdefault(name, {})
        if impl in table:
            raise ValueError(
                f"kernel {name!r} already has a {impl.value} megabatch "
                f"implementation"
            )
        table[impl] = fn
        return fn

    def megabatch_impl(
        self, name: str, impl: ImplementationType
    ) -> Optional[Callable]:
        """The stacked implementation for (name, impl), or None."""
        return self._megabatch.get(name, {}).get(impl)

    def has_megabatch(self, name: str, impl: ImplementationType) -> bool:
        return impl in self._megabatch.get(name, {})

    def megabatch_implementations(self, name: str) -> List[ImplementationType]:
        return sorted(self._megabatch.get(name, {}), key=lambda i: i.value)


#: The process-wide registry all kernel modules register into.
kernel_registry = KernelRegistry()


def kernel(name: str, impl: ImplementationType) -> Callable:
    """Decorator registering a kernel implementation::

        @kernel("scan_map", ImplementationType.NUMPY)
        def scan_map(...): ...
    """

    def deco(fn: Callable) -> Callable:
        return kernel_registry.register(name, impl, fn)

    return deco


def megabatch_kernel(name: str, impl: ImplementationType) -> Callable:
    """Decorator registering a stacked (megabatch) kernel implementation::

        @megabatch_kernel("scan_map", ImplementationType.JAX)
        def scan_map(...): ...  # same signature, obs-leading arrays
    """

    def deco(fn: Callable) -> Callable:
        return kernel_registry.register_megabatch(name, impl, fn)

    return deco


_local = threading.local()


def _stack() -> List[ImplementationType]:
    if not hasattr(_local, "stack"):
        _local.stack = [ImplementationType.NUMPY]
    return _local.stack


def default_implementation() -> ImplementationType:
    """The currently selected implementation (innermost override wins)."""
    return _stack()[-1]


@contextmanager
def use_implementation(impl: ImplementationType) -> Iterator[None]:
    """Select the kernel implementation for a code region.

    Nested uses override outer ones -- the "entire code / individual
    pipelines / kernels" selection levels of the paper map onto nesting
    depth.
    """
    stack = _stack()
    stack.append(impl)
    try:
        yield
    finally:
        stack.pop()


_megabatch_local = threading.local()


def active_megabatch_collector() -> Optional[Any]:
    """The megabatch collector intercepting kernel calls, if any."""
    stack = getattr(_megabatch_local, "stack", None)
    return stack[-1] if stack else None


@contextmanager
def megabatch_collection(collector: Any) -> Iterator[Any]:
    """Install ``collector`` to intercept :class:`BoundKernel` calls.

    While active, every call to a kernel whose spec declares
    ``megabatch=True`` is *offered* to the collector; accepted calls are
    deferred and executed -- stacked across observations where a
    megabatch implementation exists -- when the collector flushes.  The
    collector is flushed on exit (and must also be flushed at every
    operator boundary by the caller).
    """
    stack = getattr(_megabatch_local, "stack", None)
    if stack is None:
        stack = _megabatch_local.stack = []
    stack.append(collector)
    try:
        yield collector
    finally:
        stack.pop()
        collector.flush()


_validation = threading.local()


def kernel_call_validation_active() -> bool:
    """Whether :class:`BoundKernel` calls check args against their spec."""
    return getattr(_validation, "on", False)


@contextmanager
def validate_kernel_calls() -> Iterator[None]:
    """Enable spec dtype/shape checking of every BoundKernel call.

    Off by default so hot paths pay nothing; tests and debugging
    sessions turn it on around the region under scrutiny.
    """
    prev = kernel_call_validation_active()
    _validation.on = True
    try:
        yield
    finally:
        _validation.on = prev


class BoundKernel:
    """The thin callable :func:`get_kernel` returns.

    Wraps the resolved implementation with the kernel's spec attached:
    under :func:`validate_kernel_calls` every call is checked against
    the spec's dtypes/shapes, and with tracing active each call runs in
    a host-side span with bytes-moved counters attributed from the
    spec's argument intents.  The raw implementation is reachable as
    ``.fn`` (also ``.__wrapped__``).
    """

    __slots__ = ("name", "spec", "fn", "impl", "_tracer")

    def __init__(self, name, spec, fn, impl, tracer=None):
        self.name = name
        self.spec = spec
        self.fn = fn
        self.impl = impl
        self._tracer = tracer

    @property
    def __wrapped__(self):
        return self.fn

    def __call__(self, *args, **kwargs):
        if self.spec is not None and kernel_call_validation_active():
            self.spec.validate_call(args, kwargs)
        coll = active_megabatch_collector()
        if coll is not None and coll.offer(self, args, kwargs):
            return None
        tr = self._tracer
        if tr is None:
            return self.fn(*args, **kwargs)
        with tr.span(f"kernel.{self.name}", impl=self.impl.value):
            out = self.fn(*args, **kwargs)
        if self.spec is not None:
            read, written = self.spec.bytes_moved(args, kwargs)
            if read:
                tr.metrics.count(f"kernel.{self.name}.bytes_read", read)
            if written:
                tr.metrics.count(f"kernel.{self.name}.bytes_written", written)
        return out

    def __repr__(self) -> str:
        return f"BoundKernel({self.name!r}, impl={self.impl.value})"


def get_kernel(name: str, impl: Optional[ImplementationType] = None) -> Callable:
    """Resolve a kernel against the active implementation selection.

    Returns a :class:`BoundKernel` carrying the kernel's spec.  With
    tracing active, every resolution emits a KERNEL_RESOLVE event
    (requested vs. resolved implementation, fallback flag) and each call
    runs in a host-side span -- with per-kernel bytes-moved counters
    derived from the spec's intents -- so per-kernel host time appears
    on the trace next to the device timeline.  With a resilience
    controller active, calls walk the implementation fallback chain
    (respecting ``spec.fallback_eligible``) under per-implementation
    circuit breakers and retry-with-backoff.
    """
    if not kernel_registry.kernels():
        # Populate the registry on first use (the kernel modules register
        # themselves at import time).
        from .. import kernels as _kernels  # noqa: F401

    chosen = impl if impl is not None else default_implementation()
    tr = obs_state.active
    ctrl = res_state.active
    spec = kernel_registry.spec(name)
    if tr is None and ctrl is None:
        fn, resolved = kernel_registry.resolve(name, chosen)
        return BoundKernel(name, spec, fn, resolved)

    fn, resolved = kernel_registry.resolve(name, chosen)
    if tr is not None:
        tr.emit(
            Event(
                EventType.KERNEL_RESOLVE,
                name,
                ts=tr.now(),
                clock=ClockDomain.HOST,
                attrs={
                    "requested": chosen.value,
                    "resolved": resolved.value,
                    "fallback": resolved is not chosen,
                },
            )
        )
        if resolved is not chosen:
            tr.metrics.count("dispatch.fallbacks")
        tr.metrics.count("dispatch.resolutions")

    if ctrl is not None:
        chain = fallback_chain(name, resolved)
        fn = ctrl.resilient_kernel(
            name, resolved, kernel_registry, chain, ACCEL_IMPLEMENTATIONS
        )

    return BoundKernel(name, spec, fn, resolved, tracer=tr)
