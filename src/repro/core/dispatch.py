"""Runtime kernel dispatch (paper §3.2.1).

"We designed a runtime dispatch system over kernels, enabling the selection
of specific implementations for the entire code, individual pipelines, or
kernels."  Kernels register one function per
:class:`ImplementationType`; resolution walks call-site override ->
pipeline override -> global default, and can fall back from an accelerated
implementation to the compiled CPU one when a kernel has no GPU port.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from enum import Enum
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..obs import state as obs_state
from ..obs.events import ClockDomain, Event, EventType
from ..resilience import state as res_state

__all__ = [
    "ImplementationType",
    "KernelRegistry",
    "kernel_registry",
    "kernel",
    "get_kernel",
    "use_implementation",
    "default_implementation",
    "FALLBACK_ORDER",
    "fallback_chain",
]


class ImplementationType(Enum):
    """The four kernel variants the study compares."""

    #: Readable pure-Python loops: the correctness oracle (stands in for
    #: unoptimized reference code).
    PYTHON = "python"
    #: Vectorized NumPy: the "compiled CPU" baseline (the paper's original
    #: OpenMP C++ kernels).
    NUMPY = "numpy"
    #: The jaxshim port: pure/jit/vmap, CPU or simulated GPU.
    JAX = "jax"
    #: The OpenMP Target Offload port over the simulated device.
    OMP_TARGET = "omp_target"


#: Implementations that run on the (simulated) accelerator.
ACCEL_IMPLEMENTATIONS = (ImplementationType.JAX, ImplementationType.OMP_TARGET)

#: Resolution order the recovery plane walks when a kernel keeps failing:
#: fastest accelerated path first, interpreter-speed oracle last.
FALLBACK_ORDER = (
    ImplementationType.JAX,
    ImplementationType.OMP_TARGET,
    ImplementationType.NUMPY,
    ImplementationType.PYTHON,
)


def fallback_chain(
    name: str,
    requested: ImplementationType,
    registry: Optional["KernelRegistry"] = None,
) -> List[ImplementationType]:
    """The implementations to try for ``name``, starting at ``requested``.

    The chain is the requested implementation followed by the remaining
    :data:`FALLBACK_ORDER` entries, filtered to implementations the kernel
    actually registers.
    """
    reg = registry if registry is not None else kernel_registry
    chain = [requested] + [i for i in FALLBACK_ORDER if i is not requested]
    return [i for i in chain if reg.has(name, i)]


class KernelRegistry:
    """Maps (kernel name, implementation) to the callable."""

    def __init__(self) -> None:
        self._impls: Dict[str, Dict[ImplementationType, Callable]] = {}

    def register(self, name: str, impl: ImplementationType, fn: Callable) -> Callable:
        table = self._impls.setdefault(name, {})
        if impl in table:
            raise ValueError(f"kernel {name!r} already has a {impl.value} implementation")
        table[impl] = fn
        return fn

    def get(
        self,
        name: str,
        impl: ImplementationType,
        allow_fallback: bool = True,
    ) -> Callable:
        """Resolve an implementation.

        With ``allow_fallback``, a missing accelerated implementation falls
        back to NUMPY (the framework runs un-ported kernels on the CPU --
        the paper notes more than 30 such kernels bound the speedup by
        Amdahl's law).
        """
        return self.resolve(name, impl, allow_fallback)[0]

    def resolve(
        self,
        name: str,
        impl: ImplementationType,
        allow_fallback: bool = True,
    ) -> Tuple[Callable, ImplementationType]:
        """Like :meth:`get`, but also reports which implementation won
        (so callers can see when the CPU fallback kicked in)."""
        if name not in self._impls:
            raise KeyError(f"unknown kernel {name!r}; known: {sorted(self._impls)}")
        table = self._impls[name]
        if impl in table:
            return table[impl], impl
        if allow_fallback and ImplementationType.NUMPY in table:
            return table[ImplementationType.NUMPY], ImplementationType.NUMPY
        registered = ", ".join(i.value for i in sorted(table, key=lambda i: i.value))
        raise KeyError(
            f"kernel {name!r} has no {impl.value} implementation "
            f"(registered: {registered or 'none'})"
        )

    def implementations(self, name: str) -> List[ImplementationType]:
        return sorted(self._impls.get(name, {}), key=lambda i: i.value)

    def kernels(self) -> List[str]:
        return sorted(self._impls)

    def has(self, name: str, impl: ImplementationType) -> bool:
        return impl in self._impls.get(name, {})


#: The process-wide registry all kernel modules register into.
kernel_registry = KernelRegistry()


def kernel(name: str, impl: ImplementationType) -> Callable:
    """Decorator registering a kernel implementation::

        @kernel("scan_map", ImplementationType.NUMPY)
        def scan_map(...): ...
    """

    def deco(fn: Callable) -> Callable:
        return kernel_registry.register(name, impl, fn)

    return deco


_local = threading.local()


def _stack() -> List[ImplementationType]:
    if not hasattr(_local, "stack"):
        _local.stack = [ImplementationType.NUMPY]
    return _local.stack


def default_implementation() -> ImplementationType:
    """The currently selected implementation (innermost override wins)."""
    return _stack()[-1]


@contextmanager
def use_implementation(impl: ImplementationType) -> Iterator[None]:
    """Select the kernel implementation for a code region.

    Nested uses override outer ones -- the "entire code / individual
    pipelines / kernels" selection levels of the paper map onto nesting
    depth.
    """
    stack = _stack()
    stack.append(impl)
    try:
        yield
    finally:
        stack.pop()


def get_kernel(name: str, impl: Optional[ImplementationType] = None) -> Callable:
    """Resolve a kernel against the active implementation selection.

    With tracing active, every resolution emits a KERNEL_RESOLVE event
    (requested vs. resolved implementation, fallback flag) and the
    returned callable is wrapped in a host-side span so per-kernel host
    time appears on the trace next to the device timeline.  With a
    resilience controller active, the returned callable walks the
    implementation fallback chain under per-implementation circuit
    breakers and retry-with-backoff.  With both off the resolved callable
    is returned untouched.
    """
    if not kernel_registry.kernels():
        # Populate the registry on first use (the kernel modules register
        # themselves at import time).
        from .. import kernels as _kernels  # noqa: F401

    chosen = impl if impl is not None else default_implementation()
    tr = obs_state.active
    ctrl = res_state.active
    if tr is None and ctrl is None:
        return kernel_registry.get(name, chosen)

    fn, resolved = kernel_registry.resolve(name, chosen)
    if tr is not None:
        tr.emit(
            Event(
                EventType.KERNEL_RESOLVE,
                name,
                ts=tr.now(),
                clock=ClockDomain.HOST,
                attrs={
                    "requested": chosen.value,
                    "resolved": resolved.value,
                    "fallback": resolved is not chosen,
                },
            )
        )
        if resolved is not chosen:
            tr.metrics.count("dispatch.fallbacks")
        tr.metrics.count("dispatch.resolutions")

    if ctrl is not None:
        chain = fallback_chain(name, resolved)
        fn = ctrl.resilient_kernel(
            name, resolved, kernel_registry, chain, ACCEL_IMPLEMENTATIONS
        )
        if tr is None:
            return fn

    def traced_kernel(*args, **kwargs):
        with tr.span(f"kernel.{name}", impl=resolved.value):
            return fn(*args, **kwargs)

    return traced_kernel
