"""Focalplanes: the detector layout of an instrument.

The benchmark's "typical instrument configuration with a couple thousand
detectors" is a hexagonal focalplane of dual-polarization pixels; this
module builds such layouts with per-detector pointing offsets, polarization
angles, and noise parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..math import qa
from ..noise import AnalyticNoiseModel
from ..utils.constants import DEG2RAD

__all__ = ["Focalplane", "fake_hexagon_focalplane"]


@dataclass
class Focalplane:
    """Detector names, pointing offsets, and noise parameters.

    ``detector_quats[d]`` rotates the boresight frame onto detector ``d``'s
    line of sight and polarization orientation.
    """

    sample_rate: float
    detectors: List[str] = field(default_factory=list)
    detector_quats: Dict[str, np.ndarray] = field(default_factory=dict)
    psi_pol: Dict[str, float] = field(default_factory=dict)
    pol_leakage: Dict[str, float] = field(default_factory=dict)
    net: Dict[str, float] = field(default_factory=dict)
    fknee: Dict[str, float] = field(default_factory=dict)
    fmin: Dict[str, float] = field(default_factory=dict)
    alpha: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.sample_rate <= 0:
            raise ValueError("sample rate must be positive")
        missing = [d for d in self.detectors if d not in self.detector_quats]
        if missing:
            raise ValueError(f"detectors without quaternions: {missing}")

    @property
    def n_detectors(self) -> int:
        return len(self.detectors)

    def quat_array(self) -> np.ndarray:
        """Detector quaternions stacked as (n_det, 4), in detector order."""
        return np.array([self.detector_quats[d] for d in self.detectors])

    def epsilon_array(self) -> np.ndarray:
        """Polarization leakage per detector (0 = ideal)."""
        return np.array([self.pol_leakage.get(d, 0.0) for d in self.detectors])

    def noise_model(self, n_freq: int = 1024) -> AnalyticNoiseModel:
        """The analytic 1/f noise model for these detectors."""
        return AnalyticNoiseModel(
            rate=self.sample_rate,
            detector_names=tuple(self.detectors),
            net={d: self.net.get(d, 1.0) for d in self.detectors},
            fknee={d: self.fknee.get(d, 0.05) for d in self.detectors},
            fmin={d: self.fmin.get(d, 1.0e-5) for d in self.detectors},
            alpha={d: self.alpha.get(d, 1.0) for d in self.detectors},
            n_freq=n_freq,
        )

    def detector_weights(self) -> np.ndarray:
        """Inverse-variance detector weights, ordered like ``detectors``."""
        nm = self.noise_model(n_freq=64)
        return np.array([nm.detector_weight(d) for d in self.detectors])


def _hex_positions(n_pixels: int, width_rad: float) -> np.ndarray:
    """Centers of a rough hexagonal spiral of ``n_pixels`` positions."""
    positions = [(0.0, 0.0)]
    ring = 1
    while len(positions) < n_pixels:
        # Walk the 6 sides of the hexagonal ring.
        corners = [
            (ring * np.cos(np.pi / 3 * k), ring * np.sin(np.pi / 3 * k))
            for k in range(6)
        ]
        for k in range(6):
            x0, y0 = corners[k]
            x1, y1 = corners[(k + 1) % 6]
            for step in range(ring):
                frac = step / ring
                positions.append((x0 + (x1 - x0) * frac, y0 + (y1 - y0) * frac))
                if len(positions) >= n_pixels:
                    break
            if len(positions) >= n_pixels:
                break
        ring += 1
    pos = np.array(positions[:n_pixels])
    if n_pixels > 1:
        scale = width_rad / (2.0 * np.max(np.abs(pos)))
        pos = pos * scale
    return pos


def fake_hexagon_focalplane(
    n_pixels: int = 7,
    sample_rate: float = 50.0,
    field_of_view_deg: float = 5.0,
    net: float = 1.0,
    fknee: float = 0.05,
    fmin: float = 1.0e-5,
    alpha: float = 1.0,
    pol_leakage: float = 0.0,
) -> Focalplane:
    """Build a hexagonal focalplane of dual-polarization pixels.

    Each pixel carries two detectors ("A" at the pixel polarization angle,
    "B" rotated 90 degrees), as in the satellite benchmark instrument; the
    total detector count is ``2 * n_pixels``.
    """
    if n_pixels < 1:
        raise ValueError("need at least one pixel")
    positions = _hex_positions(n_pixels, field_of_view_deg * DEG2RAD)

    detectors: List[str] = []
    quats: Dict[str, np.ndarray] = {}
    psis: Dict[str, float] = {}
    for p, (x, y) in enumerate(positions):
        r = float(np.hypot(x, y))
        phi = float(np.arctan2(y, x))
        # Alternate pixel polarization bases for better angle coverage.
        base_psi = (p % 2) * (np.pi / 4.0)
        for which, psi in (("A", base_psi), ("B", base_psi + np.pi / 2.0)):
            name = f"D{p:03d}{which}"
            detectors.append(name)
            quats[name] = qa.from_angles(r, phi, psi)
            psis[name] = psi

    return Focalplane(
        sample_rate=sample_rate,
        detectors=detectors,
        detector_quats=quats,
        psi_pol=psis,
        pol_leakage={d: pol_leakage for d in detectors},
        net={d: net for d in detectors},
        fknee={d: fknee for d in detectors},
        fmin={d: fmin for d in detectors},
        alpha={d: alpha for d in detectors},
    )
