"""Versioned, checksummed per-observation manifests.

The manifest is the store's source of truth for one observation: array
layout, chunk list with expected generations and CRCs, intervals,
focalplane metadata, and the registered producer.  It is itself protected
the same way the chunks are: a format version, a CRC32 over its canonical
JSON, and an atomic commit that first retains the previous manifest as
``manifest.json.prev`` -- so a torn manifest write is detected at load and
recovery falls back to the retained previous generation.

The ``store.manifest`` fault site lives here: a TORN_WRITE spec truncates
``manifest.json`` after the previous manifest was retained, modeling a
kill mid-overwrite on a filesystem without atomic-rename guarantees.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Dict, Optional, Tuple

from ..resilience import state as res_state
from .format import StoreIntegrityError, StoreTornWrite, _fsync_dir

__all__ = [
    "MANIFEST_VERSION",
    "MANIFEST_NAME",
    "commit_manifest",
    "load_manifest",
]

MANIFEST_VERSION = 1
MANIFEST_NAME = "manifest.json"


def _canonical(doc: Dict[str, object]) -> bytes:
    body = {k: v for k, v in doc.items() if k != "crc32"}
    return json.dumps(body, sort_keys=True).encode("utf-8")


def _sealed(doc: Dict[str, object]) -> Dict[str, object]:
    out = dict(doc)
    out["format"] = MANIFEST_VERSION
    out["crc32"] = zlib.crc32(_canonical(out)) & 0xFFFFFFFF
    return out


def _validate(raw: bytes, source: str) -> Dict[str, object]:
    try:
        doc = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as err:
        raise StoreIntegrityError(f"{source} is not valid JSON: {err}") from None
    version = doc.get("format")
    if version != MANIFEST_VERSION:
        raise StoreIntegrityError(
            f"{source} has format version {version!r}; this build reads "
            f"version {MANIFEST_VERSION}"
        )
    want = doc.get("crc32")
    got = zlib.crc32(_canonical(doc)) & 0xFFFFFFFF
    if want != got:
        raise StoreIntegrityError(
            f"{source} CRC mismatch (stored {want!r}, computed {got:#010x})"
        )
    return doc


def commit_manifest(obs_dir: Path, doc: Dict[str, object]) -> Dict[str, object]:
    """Atomically replace the observation manifest, retaining the old one.

    Protocol: seal (version + CRC), write a same-directory shadow with
    fsync, move the live manifest to ``manifest.json.prev``, rename the
    shadow into place, fsync the directory.  A crash between the two
    renames leaves no ``manifest.json`` but an intact ``.prev`` -- which
    :func:`load_manifest` falls back to.
    """
    obs_dir = Path(obs_dir)
    path = obs_dir / MANIFEST_NAME
    prev = obs_dir / f"{MANIFEST_NAME}.prev"
    sealed = _sealed(doc)
    blob = json.dumps(sealed, sort_keys=True, indent=1).encode("utf-8")

    spec = None
    ctrl = res_state.active
    if ctrl is not None:
        spec = ctrl.check("store.manifest", obs=obs_dir.name)

    shadow = obs_dir / f".shadow-{MANIFEST_NAME}"
    with open(shadow, "wb") as f:
        f.write(blob)
        f.flush()
        os.fsync(f.fileno())
    if path.exists():
        os.replace(path, prev)
    if spec is not None:
        # Model a kill mid-overwrite: a truncated manifest lands while the
        # retained .prev still holds the previous generation.
        torn_at = spec.offset
        if torn_at is None:
            torn_at = ctrl.rng.randrange(1, max(2, len(blob)))
        torn_at = min(int(torn_at), len(blob))
        path.write_bytes(blob[:torn_at])
        shadow.unlink()
        raise StoreTornWrite(
            f"writer killed {torn_at} bytes into manifest for {obs_dir.name!r}; "
            f"previous manifest retained as {prev.name!r}"
        )
    os.replace(shadow, path)
    _fsync_dir(obs_dir)
    return sealed


def load_manifest(obs_dir: Path) -> Tuple[Dict[str, object], Optional[str]]:
    """Load and validate the manifest; returns ``(doc, fallback_reason)``.

    ``fallback_reason`` is ``None`` on the happy path, or a description of
    why ``manifest.json`` was rejected and ``manifest.json.prev`` used
    instead.  Raises :class:`StoreIntegrityError` when neither validates.
    """
    obs_dir = Path(obs_dir)
    path = obs_dir / MANIFEST_NAME
    prev = obs_dir / f"{MANIFEST_NAME}.prev"
    primary_error: Optional[str] = None
    if path.exists():
        try:
            return _validate(path.read_bytes(), f"manifest for {obs_dir.name!r}"), None
        except StoreIntegrityError as err:
            primary_error = str(err)
    else:
        primary_error = f"manifest for {obs_dir.name!r} is missing"
    if prev.exists():
        doc = _validate(prev.read_bytes(), f"previous manifest for {obs_dir.name!r}")
        return doc, primary_error
    raise StoreIntegrityError(
        f"{primary_error}; no previous manifest retained to fall back to"
    )
