"""Windowed streaming execution: pipelines over store-backed windows.

The executor walks each observation window-by-window in ascending sample
order, builds a copy-on-write mmap :class:`Observation` view per window,
and runs the pipeline on it with a **shared** meta dict -- so global
products (the noise-weighted map) accumulate in place across windows and
observations in exactly the order a full in-memory run applies them.
Because every scatter kernel accumulates sample-major, the result is
bitwise identical to the all-in-memory run for any window size.

The window length comes from a host-RSS budget: the largest whole-chunk
multiple whose stored bytes fit the budget.  Pipeline-created detdata
(pixels, weights, quats) scales with the same window length, so the
budget bounds the streamed working set up to that constant factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..core.data import Data
from .store import ObservationStore

__all__ = ["StreamConfig", "plan_windows", "stream_pipeline"]


@dataclass(frozen=True)
class StreamConfig:
    """How much of an observation may be resident at once.

    ``host_budget_bytes`` caps the stored bytes mapped per window (the
    window length is rounded down to a whole number of chunks, never below
    one chunk).  ``window_samples`` overrides the budget with an explicit
    window length.  With neither set, the whole observation is one window.
    """

    host_budget_bytes: Optional[int] = None
    window_samples: Optional[int] = None

    def __post_init__(self) -> None:
        if self.host_budget_bytes is not None and self.host_budget_bytes <= 0:
            raise ValueError("host_budget_bytes must be positive")
        if self.window_samples is not None and self.window_samples <= 0:
            raise ValueError("window_samples must be positive")


def plan_windows(
    store: ObservationStore, iobs: int, config: Optional[StreamConfig] = None
) -> List[Tuple[int, int]]:
    """Chunk-aligned windows for one observation under the config."""
    if config is None:
        config = StreamConfig()
    if config.window_samples is not None:
        ws = config.window_samples
    elif config.host_budget_bytes is not None:
        per_sample = max(1, store.bytes_per_sample(iobs))
        ws = max(1, config.host_budget_bytes // per_sample)
    else:
        ws = int(store.manifest(iobs)["n_samples"])
    return store.windows(iobs, ws)


def stream_pipeline(
    store: ObservationStore,
    pipe,
    meta: Optional[Dict[str, Any]] = None,
    config: Optional[StreamConfig] = None,
    observations: Optional[List[int]] = None,
    use_accel: bool = False,
    accel=None,
) -> Data:
    """Run a pipeline over the store window-by-window; returns the Data.

    Works for eager and compiled plans alike: each window unit goes
    through ``pipe.exec`` (so a compiled pipeline plans residency for the
    window-sized working set), and all units share one meta dict.
    """
    data = Data()
    if meta:
        data.meta.update(meta)
    indices = range(store.n_observations) if observations is None else observations
    n_windows = 0
    for iobs in indices:
        for start, stop in plan_windows(store, iobs, config):
            unit = Data(comm=data.comm)
            unit.meta = data.meta
            unit.obs.append(store.window_observation(iobs, start, stop))
            pipe.exec(unit, use_accel=use_accel, accel=accel)
            n_windows += 1
    pipe.finalize(data)
    data.stream_windows = n_windows
    return data
