"""The chunked, crash-consistent observation store.

Layout on disk::

    root/
      store.json                  versioned + checksummed store index
      meta__<key>.chunk           store-level meta arrays (e.g. the sky map)
      obs_0000/
        manifest.json             versioned + checksummed, .prev retained
        chunks/<kind>__<key>__w0000.chunk
        quarantine/               damaged chunks moved here by the scrub

Every array is chunked along its sample axis (``chunk_samples`` samples
per chunk), each chunk individually committed via shadow-write + fsync +
rename, and the manifest records the expected generation and payload CRC
of every chunk.  Opening a store runs a scrub that detects torn,
truncated, and bit-flipped chunks, quarantines them, and regenerates them
from the observation's registered producer -- or fails with a diagnostic
naming the exact chunk and failure when no producer exists.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from ..core.observation import Observation
from ..io.volumes import _focalplane_from_meta, _focalplane_meta
from ..math.intervals import IntervalList
from ..obs import state as obs_state
from ..obs.events import ClockDomain, Event, EventType
from ..resilience import state as res_state
from .format import (
    PENDING_SHADOWS,
    SEEN_ROOTS,
    SHADOW_PREFIX,
    StoreIntegrityError,
    StoreTornWrite,
    chunk_window,
    commit_chunk,
    read_chunk_header,
    verify_chunk,
)
from .manifest import MANIFEST_NAME, _sealed, _validate, commit_manifest, load_manifest

__all__ = [
    "ObservationStore",
    "ScrubReport",
    "register_producer",
    "producer_names",
    "leak_report",
    "reset_leak_registry",
]

STORE_INDEX = "store.json"

#: How many commit attempts the spill/regeneration layer makes before
#: giving up -- torn writes are transient (the retry rewrites the shadow).
_COMMIT_ATTEMPTS = 4

#: Registered producers: pure functions that rebuild an observation's
#: arrays from scratch, keyed by the name recorded in the manifest.
_PRODUCERS: Dict[str, Callable[..., Observation]] = {}


def register_producer(name: str, fn: Callable[..., Observation]) -> None:
    """Register a pure observation producer for scrub-time regeneration.

    ``fn(**args)`` must return an :class:`Observation` whose arrays are a
    deterministic function of ``args`` alone -- regeneration re-commits
    only damaged chunks and cross-checks their CRCs against the manifest.
    """
    _PRODUCERS[name] = fn


def producer_names() -> List[str]:
    return sorted(_PRODUCERS)


@dataclass
class ScrubReport:
    """What one scrub pass found and did."""

    chunks_checked: int = 0
    #: Chunk names whose shadow files were found and removed -- exactly
    #: the commits that were in flight when the writer died.
    in_flight: List[str] = field(default_factory=list)
    #: ``{"obs", "chunk", "reason"}`` for every damaged chunk.
    quarantined: List[Dict[str, str]] = field(default_factory=list)
    #: Chunk names rebuilt from their observation's producer.
    regenerated: List[str] = field(default_factory=list)
    #: ``{"obs", "reason"}`` when manifest.json was rejected and .prev used.
    manifest_fallbacks: List[Dict[str, str]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not (self.in_flight or self.quarantined or self.manifest_fallbacks)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "chunks_checked": self.chunks_checked,
            "in_flight": list(self.in_flight),
            "quarantined": [dict(q) for q in self.quarantined],
            "regenerated": list(self.regenerated),
            "manifest_fallbacks": [dict(m) for m in self.manifest_fallbacks],
        }


def _note(etype: EventType, name: str, metric: str, amount: float = 1.0, **attrs: Any) -> None:
    tr = obs_state.active
    if tr is not None:
        tr.emit(Event(etype, name, ts=tr.now(), clock=ClockDomain.HOST, attrs=attrs))
        tr.metrics.count(metric, amount)
    ctrl = res_state.active
    if ctrl is not None:
        ctrl.count(metric, int(amount))


def _payload_crc(payload: np.ndarray) -> int:
    return zlib.crc32(np.ascontiguousarray(payload).tobytes()) & 0xFFFFFFFF


def _chunk_file(kind: str, key: str, window: int) -> str:
    return f"{kind}__{key}__w{window:04d}.chunk"


class ObservationStore:
    """Open/create, spill, scrub, and serve mmap-backed windows."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.scrub_report: Optional[ScrubReport] = None
        self._index: Dict[str, Any] = {}
        self._manifests: List[Dict[str, Any]] = []
        SEEN_ROOTS.add(self.root)

    # -- lifecycle -------------------------------------------------------------

    @classmethod
    def create(cls, root: Union[str, Path], chunk_samples: int = 1024) -> "ObservationStore":
        if chunk_samples <= 0:
            raise ValueError("chunk_samples must be positive")
        store = cls(root)
        store.root.mkdir(parents=True, exist_ok=True)
        store._index = {"chunk_samples": int(chunk_samples), "observations": [], "meta": {}}
        store._write_index()
        return store

    @classmethod
    def open(
        cls,
        root: Union[str, Path],
        scrub: bool = True,
        regenerate: bool = True,
    ) -> "ObservationStore":
        """Open an existing store; by default scrub it first.

        Workers re-opening a store the parent already scrubbed can pass
        ``scrub=False`` to skip the integrity pass.
        """
        store = cls(root)
        index_path = store.root / STORE_INDEX
        if not index_path.exists():
            raise StoreIntegrityError(f"no store at {store.root} (missing {STORE_INDEX})")
        store._index = _validate(index_path.read_bytes(), f"store index {STORE_INDEX!r}")
        for obs_name in store._index["observations"]:
            doc, fallback = load_manifest(store.root / obs_name)
            store._manifests.append(doc)
            if fallback is not None:
                # Heal: rewrite a clean manifest from the validated doc.
                commit_manifest(store.root / obs_name, doc)
                report = store.scrub_report or ScrubReport()
                report.manifest_fallbacks.append({"obs": obs_name, "reason": fallback})
                store.scrub_report = report
        if scrub:
            store.scrub(regenerate=regenerate)
        return store

    def _write_index(self) -> None:
        sealed = _sealed(self._index)
        self._index = sealed
        path = self.root / STORE_INDEX
        shadow = self.root / f"{SHADOW_PREFIX}{STORE_INDEX}"
        PENDING_SHADOWS.add(shadow)
        with open(shadow, "wb") as f:
            f.write(json.dumps(sealed, sort_keys=True, indent=1).encode("utf-8"))
            f.flush()
            os.fsync(f.fileno())
        os.replace(shadow, path)
        PENDING_SHADOWS.discard(shadow)

    # -- properties ------------------------------------------------------------

    @property
    def chunk_samples(self) -> int:
        return int(self._index["chunk_samples"])

    @property
    def n_observations(self) -> int:
        return len(self._index["observations"])

    def observation_names(self) -> List[str]:
        return [doc["name"] for doc in self._manifests]

    def manifest(self, iobs: int) -> Dict[str, Any]:
        return self._manifests[iobs]

    def _obs_dir(self, iobs: int) -> Path:
        return self.root / self._index["observations"][iobs]

    def bytes_per_sample(self, iobs: int) -> int:
        """On-disk bytes per time sample: sizes the streaming windows."""
        doc = self._manifests[iobs]
        total = 0
        for entry in doc["arrays"].values():
            shape = entry["shape"]
            itemsize = np.dtype(entry["dtype"]).itemsize
            per = itemsize
            axis = 0 if entry["kind"] == "shared" else 1
            for dim, extent in enumerate(shape):
                if dim != axis:
                    per *= extent
            total += per
        return total

    # -- spill -----------------------------------------------------------------

    def spill_observation(
        self, ob: Observation, producer: Optional[Dict[str, Any]] = None
    ) -> int:
        """Chunk one observation's arrays into the store; returns its index.

        ``producer`` is ``{"name": ..., "args": {...}}`` naming a
        registered producer able to rebuild this observation -- the scrub
        uses it to regenerate damaged chunks.
        """
        iobs = self.n_observations
        obs_name = f"obs_{iobs:04d}"
        obs_dir = self.root / obs_name
        chunks_dir = obs_dir / "chunks"
        chunks_dir.mkdir(parents=True, exist_ok=True)

        cs = self.chunk_samples
        arrays: Dict[str, Any] = {}
        for kind, mapping in (("shared", ob.shared), ("detdata", ob.detdata)):
            for key, arr in mapping.items():
                axis = 0 if kind == "shared" else 1
                entries = []
                for widx, start in enumerate(range(0, ob.n_samples, cs)):
                    stop = min(start + cs, ob.n_samples)
                    payload = arr[start:stop] if axis == 0 else arr[:, start:stop]
                    fname = _chunk_file(kind, key, widx)
                    header = {
                        "key": f"{kind}/{key}",
                        "window": widx,
                        "start": start,
                        "stop": stop,
                        "generation": 1,
                    }
                    self._commit_with_retry(chunks_dir / fname, header, payload)
                    entries.append(
                        {
                            "file": fname,
                            "start": start,
                            "stop": stop,
                            "generation": 1,
                            "crc32": _payload_crc(payload),
                        }
                    )
                arrays[f"{kind}/{key}"] = {
                    "kind": kind,
                    "key": key,
                    "dtype": str(arr.dtype),
                    "shape": list(arr.shape),
                    "chunks": entries,
                }

        doc = {
            "name": ob.name,
            "uid": ob.uid,
            "n_samples": ob.n_samples,
            "chunk_samples": cs,
            "focalplane": _focalplane_meta(ob.focalplane),
            "fp_quats": ob.focalplane.quat_array().tolist(),
            "intervals": {
                key: [list(map(int, s)) for s in ivl.as_arrays()]
                for key, ivl in ob.intervals.items()
            },
            "arrays": arrays,
            "producer": producer,
        }
        self._commit_manifest_with_retry(obs_dir, doc)
        self._manifests.append(doc)
        self._index["observations"].append(obs_name)
        self._write_index()
        return iobs

    def _commit_with_retry(self, path: Path, header: Dict[str, Any], payload) -> None:
        for attempt in range(_COMMIT_ATTEMPTS):
            try:
                commit_chunk(path, header, payload)
                _note(
                    EventType.STORE_COMMIT,
                    path.name,
                    "store.chunks_written",
                    nbytes=int(np.asarray(payload).nbytes),
                )
                return
            except StoreTornWrite:
                if attempt == _COMMIT_ATTEMPTS - 1:
                    raise
                _note(
                    EventType.STORE_COMMIT,
                    path.name,
                    "store.commit_retries",
                    retry=attempt + 1,
                )

    def _commit_manifest_with_retry(self, obs_dir: Path, doc: Dict[str, Any]) -> None:
        for attempt in range(_COMMIT_ATTEMPTS):
            try:
                commit_manifest(obs_dir, doc)
                _note(EventType.STORE_COMMIT, MANIFEST_NAME, "store.manifests_written")
                return
            except StoreTornWrite:
                if attempt == _COMMIT_ATTEMPTS - 1:
                    raise
                _note(
                    EventType.STORE_COMMIT,
                    MANIFEST_NAME,
                    "store.commit_retries",
                    retry=attempt + 1,
                )

    # -- store-level meta arrays -----------------------------------------------

    def save_meta(self, key: str, array: np.ndarray) -> None:
        fname = f"meta__{key}.chunk"
        header = {"key": f"meta/{key}", "window": 0, "start": 0, "stop": 0, "generation": 1}
        self._commit_with_retry(self.root / fname, header, np.asarray(array))
        self._index["meta"][key] = fname
        self._write_index()

    def load_meta(self, key: str) -> np.ndarray:
        fname = self._index["meta"][key]
        path = self.root / fname
        verify_chunk(path)
        header, offset = read_chunk_header(path)
        return np.array(chunk_window(path, header, offset))

    def meta_keys(self) -> List[str]:
        return sorted(self._index["meta"])

    # -- scrub -----------------------------------------------------------------

    def scrub(self, regenerate: bool = True) -> ScrubReport:
        """Validate every chunk; quarantine and regenerate the damaged.

        Shadow files (in-flight commits at the time of a kill) are removed
        and recorded.  A damaged chunk with no registered producer raises
        :class:`StoreIntegrityError` naming the chunk and the failure.
        """
        report = self.scrub_report or ScrubReport()
        for iobs, doc in enumerate(self._manifests):
            obs_dir = self._obs_dir(iobs)
            chunks_dir = obs_dir / "chunks"
            for shadow in sorted(obs_dir.rglob(f"{SHADOW_PREFIX}*")):
                report.in_flight.append(shadow.name[len(SHADOW_PREFIX):])
                shadow.unlink()
                PENDING_SHADOWS.discard(shadow)
            known = set()
            damaged: List[Tuple[str, Dict[str, Any], str]] = []
            for akey, entry in sorted(doc["arrays"].items()):
                for chunk in entry["chunks"]:
                    known.add(chunk["file"])
                    report.chunks_checked += 1
                    reason = self._check_chunk(chunks_dir / chunk["file"], akey, chunk)
                    if reason is not None:
                        damaged.append((akey, chunk, reason))
            # Chunk files the manifest does not know: quarantine as orphans.
            for stray in sorted(chunks_dir.glob("*.chunk")):
                if stray.name not in known:
                    self._quarantine(obs_dir, stray.name, "not referenced by the manifest")
                    report.quarantined.append(
                        {
                            "obs": obs_dir.name,
                            "chunk": stray.name,
                            "reason": "not referenced by the manifest",
                        }
                    )
            for akey, chunk, reason in damaged:
                self._quarantine(obs_dir, chunk["file"], reason)
                report.quarantined.append(
                    {"obs": obs_dir.name, "chunk": chunk["file"], "reason": reason}
                )
            if damaged:
                if not regenerate:
                    names = ", ".join(c["file"] for _, c, _ in damaged)
                    raise StoreIntegrityError(
                        f"{obs_dir.name} has damaged chunks ({names}) and "
                        f"regeneration is disabled"
                    )
                self._regenerate(iobs, [(a, c) for a, c, _ in damaged], damaged[0][2])
                report.regenerated.extend(c["file"] for _, c, _ in damaged)
            _note(
                EventType.STORE_SCRUB,
                obs_dir.name,
                "store.chunks_scrubbed",
                amount=float(sum(len(e["chunks"]) for e in doc["arrays"].values())),
                damaged=len(damaged),
            )
        # Store-level shadows (index/meta commits in flight).
        for shadow in sorted(self.root.glob(f"{SHADOW_PREFIX}*")):
            report.in_flight.append(shadow.name[len(SHADOW_PREFIX):])
            shadow.unlink()
            PENDING_SHADOWS.discard(shadow)
        self.scrub_report = report
        return report

    def _check_chunk(self, path: Path, akey: str, entry: Dict[str, Any]) -> Optional[str]:
        """Return a failure description, or ``None`` when the chunk is sound."""
        try:
            header = verify_chunk(path)
        except StoreIntegrityError as err:
            return str(err)
        if header.get("key") != akey:
            return f"chunk holds {header.get('key')!r}, manifest expected {akey!r}"
        if int(header.get("generation", -1)) != int(entry["generation"]):
            return (
                f"generation {header.get('generation')} on disk, manifest "
                f"expected {entry['generation']}"
            )
        if int(header["payload_crc32"]) != int(entry["crc32"]):
            return (
                f"payload CRC {int(header['payload_crc32']):#010x} on disk, "
                f"manifest expected {int(entry['crc32']):#010x}"
            )
        return None

    def _quarantine(self, obs_dir: Path, fname: str, reason: str) -> None:
        qdir = obs_dir / "quarantine"
        qdir.mkdir(exist_ok=True)
        src = obs_dir / "chunks" / fname
        if src.exists():
            os.replace(src, qdir / fname)
        _note(EventType.STORE_QUARANTINE, fname, "store.chunks_quarantined", reason=reason)

    def _regenerate(
        self, iobs: int, damaged: List[Tuple[str, Dict[str, Any]]], reason: str
    ) -> None:
        """Rebuild damaged chunks from the observation's registered producer."""
        doc = self._manifests[iobs]
        obs_dir = self._obs_dir(iobs)
        producer = doc.get("producer")
        names = ", ".join(c["file"] for _, c in damaged)
        if not producer:
            raise StoreIntegrityError(
                f"{obs_dir.name} chunk(s) {names} failed validation "
                f"({reason}) and no producer is registered to regenerate them"
            )
        fn = _PRODUCERS.get(producer["name"])
        if fn is None:
            raise StoreIntegrityError(
                f"{obs_dir.name} chunk(s) {names} failed validation "
                f"({reason}); producer {producer['name']!r} is not registered "
                f"in this process (known: {', '.join(producer_names()) or 'none'})"
            )
        ob = fn(**producer["args"])
        for akey, chunk in damaged:
            kind, key = akey.split("/", 1)
            arr = (ob.shared if kind == "shared" else ob.detdata)[key]
            start, stop = int(chunk["start"]), int(chunk["stop"])
            payload = arr[start:stop] if kind == "shared" else arr[:, start:stop]
            crc = _payload_crc(payload)
            if crc != int(chunk["crc32"]):
                raise StoreIntegrityError(
                    f"producer {producer['name']!r} rebuilt {chunk['file']!r} "
                    f"with CRC {crc:#010x}, manifest expects "
                    f"{int(chunk['crc32']):#010x}: producer is not deterministic"
                )
            widx = int(chunk["file"].rsplit("__w", 1)[1].split(".")[0])
            header = {
                "key": akey,
                "window": widx,
                "start": start,
                "stop": stop,
                "generation": int(chunk["generation"]),
            }
            self._commit_with_retry(obs_dir / "chunks" / chunk["file"], header, payload)
            _note(EventType.STORE_REGENERATE, chunk["file"], "store.chunks_regenerated")

    # -- windowed reads --------------------------------------------------------

    def windows(self, iobs: int, window_samples: Optional[int] = None) -> List[Tuple[int, int]]:
        """Chunk-aligned ``(start, stop)`` windows covering the observation."""
        doc = self._manifests[iobs]
        n = int(doc["n_samples"])
        cs = int(doc["chunk_samples"])
        if window_samples is None:
            window_samples = cs
        w = max(cs, (int(window_samples) // cs) * cs)
        return [(s, min(s + w, n)) for s in range(0, n, w)]

    def window_observation(self, iobs: int, start: int, stop: int) -> Observation:
        """An :class:`Observation` view of samples ``[start, stop)``.

        Arrays resolve to copy-on-write mmap windows of the underlying
        chunks (zero-copy when the window covers exactly one chunk);
        intervals are clipped to the window and shifted to its origin.
        """
        doc = self._manifests[iobs]
        if not (0 <= start < stop <= int(doc["n_samples"])):
            raise ValueError(
                f"window [{start},{stop}) out of range for "
                f"{doc['n_samples']} samples"
            )
        fp = _focalplane_from_meta(doc["focalplane"], np.array(doc["fp_quats"], dtype=np.float64))
        ob = Observation(fp, stop - start, name=doc["name"], uid=doc["uid"])
        for akey, entry in doc["arrays"].items():
            kind, key = akey.split("/", 1)
            arr = self._read_window(iobs, akey, entry, start, stop)
            if kind == "shared":
                ob.shared[key] = arr
            else:
                ob.detdata[key] = arr
        window_ivl = IntervalList([(start, stop)])
        for key, (ivl_starts, ivl_stops) in doc["intervals"].items():
            ivl = IntervalList.from_arrays(ivl_starts, ivl_stops)
            ob.set_intervals(key, ivl.intersection(window_ivl).shift(-start))
        return ob

    def load_observation(self, iobs: int) -> Observation:
        """The whole observation, materialized (for oracles and tests)."""
        doc = self._manifests[iobs]
        return self.window_observation(iobs, 0, int(doc["n_samples"]))

    def _read_window(
        self, iobs: int, akey: str, entry: Dict[str, Any], start: int, stop: int
    ) -> np.ndarray:
        axis = 0 if entry["kind"] == "shared" else 1
        parts: List[np.ndarray] = []
        for chunk in entry["chunks"]:
            c0, c1 = int(chunk["start"]), int(chunk["stop"])
            if c1 <= start or c0 >= stop:
                continue
            view = self._chunk_payload(iobs, akey, chunk)
            lo, hi = max(start, c0) - c0, min(stop, c1) - c0
            if axis == 0:
                parts.append(view[lo:hi])
            else:
                parts.append(view[:, lo:hi])
        if len(parts) == 1:
            return parts[0]
        return np.concatenate(parts, axis=axis)

    def _chunk_payload(self, iobs: int, akey: str, chunk: Dict[str, Any]) -> np.ndarray:
        """One chunk's payload as a copy-on-write mmap.

        The fast path trusts the open-time scrub and skips per-read CRC
        work.  Under an active resilience controller the ``store.read``
        fault site is polled (BIT_FLIP corrupts a payload byte on disk)
        and the payload is CRC-verified; detection quarantines the chunk
        and regenerates it from the producer before re-reading.
        """
        path = self._obs_dir(iobs) / "chunks" / chunk["file"]
        ctrl = res_state.active
        if ctrl is not None:
            spec = ctrl.check("store.read", chunk=chunk["file"])
            if spec is not None:
                self._flip_byte(path, spec, ctrl)
            try:
                verify_chunk(path)
            except StoreIntegrityError as err:
                self._quarantine(self._obs_dir(iobs), chunk["file"], str(err))
                self._regenerate(iobs, [(akey, chunk)], str(err))
                verify_chunk(path)
        header, offset = read_chunk_header(path)
        return chunk_window(path, header, offset)

    @staticmethod
    def _flip_byte(path: Path, spec, ctrl) -> None:
        """Seeded bit rot: XOR one payload byte of the on-disk chunk."""
        header, offset = read_chunk_header(path)
        nbytes = int(header["payload_nbytes"])
        k = spec.offset
        if k is None:
            k = ctrl.rng.randrange(nbytes)
        k = min(int(k), nbytes - 1)
        with open(path, "r+b") as f:
            f.seek(offset + k)
            byte = f.read(1)
            f.seek(offset + k)
            f.write(bytes([byte[0] ^ 0x40]))
            f.flush()
            os.fsync(f.fileno())


def leak_report() -> List[str]:
    """Orphaned store state left behind by this process (for the sentinel).

    Flags shadow files still on disk (commits that never completed or were
    never scrubbed away) and chunk files no manifest references.
    """
    problems: List[str] = []
    for shadow in sorted(PENDING_SHADOWS):
        if shadow.exists():
            problems.append(f"undrained shadow file {shadow}")
    for root in sorted(SEEN_ROOTS):
        if not root.exists():
            continue
        for shadow in sorted(root.rglob(f"{SHADOW_PREFIX}*")):
            problems.append(f"orphaned shadow file {shadow}")
        for obs_dir in sorted(root.glob("obs_*")):
            manifest_path = obs_dir / MANIFEST_NAME
            if not manifest_path.exists():
                continue
            try:
                doc, _ = load_manifest(obs_dir)
            except StoreIntegrityError:
                continue
            known = {
                c["file"] for e in doc["arrays"].values() for c in e["chunks"]
            }
            for stray in sorted((obs_dir / "chunks").glob("*.chunk")):
                if stray.name not in known:
                    problems.append(f"orphaned chunk file {stray}")
    return problems


def reset_leak_registry() -> None:
    """Forget tracked roots/shadows (each test starts from a clean slate)."""
    PENDING_SHADOWS.clear()
    SEEN_ROOTS.clear()
