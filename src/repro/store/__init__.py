"""repro.store: a crash-consistent, out-of-core observation store.

Chunked on-disk detdata with end-to-end integrity (per-chunk CRCs,
generation numbers, checksummed manifests), atomic shadow-write + rename
commits, an open-time scrub that quarantines and regenerates damaged
chunks, and windowed streaming execution that keeps pipeline results
bitwise identical to all-in-memory runs.  See ``docs/storage.md``.
"""

from .format import (
    CHUNK_MAGIC,
    SHADOW_PREFIX,
    StoreError,
    StoreIntegrityError,
    StoreTornWrite,
    commit_chunk,
    read_chunk_header,
    verify_chunk,
)
from .manifest import MANIFEST_VERSION, commit_manifest, load_manifest
from .store import (
    ObservationStore,
    ScrubReport,
    leak_report,
    producer_names,
    register_producer,
    reset_leak_registry,
)
from .stream import StreamConfig, plan_windows, stream_pipeline

__all__ = [
    "CHUNK_MAGIC",
    "SHADOW_PREFIX",
    "MANIFEST_VERSION",
    "StoreError",
    "StoreIntegrityError",
    "StoreTornWrite",
    "ObservationStore",
    "ScrubReport",
    "StreamConfig",
    "commit_chunk",
    "commit_manifest",
    "load_manifest",
    "leak_report",
    "plan_windows",
    "producer_names",
    "read_chunk_header",
    "register_producer",
    "reset_leak_registry",
    "stream_pipeline",
    "verify_chunk",
]
