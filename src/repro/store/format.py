"""Chunk binary format and the crash-consistent commit protocol.

One chunk holds one sample-window of one array.  On-disk layout::

    MAGIC (4 bytes) | u32 header_len | header JSON | u32 header_crc | payload

The header carries the array key, window bounds, generation number, dtype,
shape, and the payload's CRC32 -- enough to detect truncation, torn
writes, and bit flips without any other file.

Commits are atomic: the chunk is written to a same-directory shadow file,
flushed and fsynced, then renamed over the destination (never overwriting
a live chunk's bytes in place), and the directory is fsynced so the rename
itself is durable.  A crash at any point leaves either the old generation
or the new one -- plus possibly a shadow file, which the open-time scrub
removes.

The ``store.write`` fault site lives here: a TORN_WRITE spec makes the
commit write only a prefix of the shadow and raise
:class:`StoreTornWrite`, modeling a kill mid-write.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Dict, Set, Tuple

import numpy as np

from ..resilience import state as res_state

__all__ = [
    "CHUNK_MAGIC",
    "SHADOW_PREFIX",
    "StoreError",
    "StoreTornWrite",
    "StoreIntegrityError",
    "encode_chunk",
    "commit_chunk",
    "read_chunk_header",
    "verify_chunk",
    "chunk_window",
]

CHUNK_MAGIC = b"RSC1"
SHADOW_PREFIX = ".shadow-"

#: Shadow files created but not yet renamed (or cleaned) by this process;
#: the test-suite leak sentinel checks this drains back to empty.
PENDING_SHADOWS: Set[Path] = set()

#: Every store root this process has touched; the leak sentinel sweeps
#: these for orphaned shadow files after each test.
SEEN_ROOTS: Set[Path] = set()


class StoreError(RuntimeError):
    """Base class for observation-store failures."""


class StoreTornWrite(StoreError):
    """The writer died mid-commit; only a prefix of the shadow landed."""


class StoreIntegrityError(StoreError):
    """A chunk or manifest failed validation; the message says exactly how."""


def encode_chunk(header: Dict[str, object], payload: np.ndarray) -> bytes:
    """Serialize a chunk: magic, framed header, header CRC, raw payload."""
    payload = np.ascontiguousarray(payload)
    body = payload.tobytes()
    full_header = dict(header)
    full_header["dtype"] = str(payload.dtype)
    full_header["shape"] = list(payload.shape)
    full_header["payload_nbytes"] = len(body)
    full_header["payload_crc32"] = zlib.crc32(body) & 0xFFFFFFFF
    hdr = json.dumps(full_header, sort_keys=True).encode("utf-8")
    hdr_crc = zlib.crc32(hdr) & 0xFFFFFFFF
    return b"".join(
        [
            CHUNK_MAGIC,
            np.uint32(len(hdr)).tobytes(),
            hdr,
            np.uint32(hdr_crc).tobytes(),
            body,
        ]
    )


def _fsync_dir(directory: Path) -> None:
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def commit_chunk(path: Path, header: Dict[str, object], payload: np.ndarray) -> None:
    """Atomically commit one chunk: shadow write + fsync + rename.

    The live chunk at ``path`` (if any) is never opened for writing; a
    kill at any byte of this function leaves it bitwise intact.  Raises
    :class:`StoreTornWrite` when a TORN_WRITE fault fires at
    ``store.write`` -- the torn shadow stays on disk for the scrub to
    find, exactly as a real kill would leave it.
    """
    path = Path(path)
    blob = encode_chunk(header, payload)
    shadow = path.parent / f"{SHADOW_PREFIX}{path.name}"

    torn_at = None
    ctrl = res_state.active
    if ctrl is not None:
        spec = ctrl.check("store.write", chunk=path.name)
        if spec is not None:
            torn_at = spec.offset
            if torn_at is None:
                torn_at = ctrl.rng.randrange(1, max(2, len(blob)))
            torn_at = min(int(torn_at), len(blob))

    PENDING_SHADOWS.add(shadow)
    with open(shadow, "wb") as f:
        if torn_at is not None:
            f.write(blob[:torn_at])
            f.flush()
            os.fsync(f.fileno())
            raise StoreTornWrite(
                f"writer killed {torn_at} bytes into the shadow for "
                f"{path.name!r}; live chunk untouched"
            )
        f.write(blob)
        f.flush()
        os.fsync(f.fileno())
    os.replace(shadow, path)
    PENDING_SHADOWS.discard(shadow)
    _fsync_dir(path.parent)


def read_chunk_header(path: Path) -> Tuple[Dict[str, object], int]:
    """Validate framing and return ``(header, payload_offset)``.

    Checks magic, header length, and header CRC; payload bytes are not
    read.  Raises :class:`StoreIntegrityError` naming the exact failure.
    """
    path = Path(path)
    try:
        size = path.stat().st_size
    except FileNotFoundError:
        raise StoreIntegrityError(f"chunk {path.name!r} is missing") from None
    with open(path, "rb") as f:
        magic = f.read(4)
        if magic != CHUNK_MAGIC:
            raise StoreIntegrityError(
                f"chunk {path.name!r} has bad magic {magic!r} "
                f"(expected {CHUNK_MAGIC!r})"
            )
        raw_len = f.read(4)
        if len(raw_len) < 4:
            raise StoreIntegrityError(f"chunk {path.name!r} truncated in header frame")
        hdr_len = int(np.frombuffer(raw_len, dtype=np.uint32)[0])
        hdr = f.read(hdr_len)
        raw_crc = f.read(4)
        if len(hdr) < hdr_len or len(raw_crc) < 4:
            raise StoreIntegrityError(f"chunk {path.name!r} truncated in header frame")
        want_crc = int(np.frombuffer(raw_crc, dtype=np.uint32)[0])
        got_crc = zlib.crc32(hdr) & 0xFFFFFFFF
        if got_crc != want_crc:
            raise StoreIntegrityError(
                f"chunk {path.name!r} header CRC mismatch "
                f"(stored {want_crc:#010x}, computed {got_crc:#010x})"
            )
        header = json.loads(hdr.decode("utf-8"))
        payload_offset = 4 + 4 + hdr_len + 4
    expected = payload_offset + int(header["payload_nbytes"])
    if size != expected:
        raise StoreIntegrityError(
            f"chunk {path.name!r} payload truncated: file is {size} bytes, "
            f"header promises {expected}"
        )
    return header, payload_offset


def verify_chunk(path: Path) -> Dict[str, object]:
    """Full validation including the payload CRC; returns the header."""
    header, offset = read_chunk_header(path)
    with open(path, "rb") as f:
        f.seek(offset)
        body = f.read()
    got = zlib.crc32(body) & 0xFFFFFFFF
    want = int(header["payload_crc32"])
    if got != want:
        raise StoreIntegrityError(
            f"chunk {path.name!r} payload CRC mismatch "
            f"(stored {want:#010x}, computed {got:#010x}): bit rot or torn write"
        )
    return header


def chunk_window(path: Path, header: Dict[str, object], payload_offset: int) -> np.ndarray:
    """Zero-copy, copy-on-write view of a chunk's payload.

    ``mode="c"`` gives operators an array they may mutate (e.g. in-place
    noise weighting) without the pages ever writing back to the store.
    """
    return np.memmap(
        path,
        dtype=np.dtype(header["dtype"]),
        mode="c",
        offset=payload_offset,
        shape=tuple(header["shape"]),
    )
