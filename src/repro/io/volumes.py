"""Observation and map serialization to ``.npz`` volumes.

Layout: one file per observation holding the shared arrays, detector data,
interval lists, and enough focalplane metadata to rebuild the instrument;
one directory-level index for a :class:`~repro.core.data.Data` container.

Integrity: format 2 headers record a CRC32 per stored array, verified on
load -- a bit-flipped or truncated volume fails with the corrupt key named
instead of flowing silently into the pipeline.  Format 1 volumes (no
checksums) still load; versions this build does not know are rejected with
an error naming both the written and the supported versions.
"""

from __future__ import annotations

import json
import zlib
from pathlib import Path
from typing import Union

import numpy as np

from ..core.data import Data
from ..core.focalplane import Focalplane
from ..core.observation import Observation
from ..math.intervals import IntervalList

__all__ = [
    "save_observation",
    "load_observation",
    "save_data",
    "load_data",
    "save_map",
    "load_map",
]

_FORMAT_VERSION = 2

#: Formats this build can read.  Version 1 predates per-array checksums.
_SUPPORTED_VERSIONS = (1, 2)


def _array_crc(arr: np.ndarray) -> int:
    return zlib.crc32(np.ascontiguousarray(arr).tobytes()) & 0xFFFFFFFF


def _check_version(written: object, source: str) -> int:
    if written not in _SUPPORTED_VERSIONS:
        supported = ", ".join(str(v) for v in _SUPPORTED_VERSIONS)
        raise ValueError(
            f"{source} was written with format version {written!r}; this "
            f"build reads versions {{{supported}}}"
        )
    return int(written)  # type: ignore[arg-type]


def _check_crc(arr: np.ndarray, want: int, key: str, source: str) -> None:
    got = _array_crc(arr)
    if got != want:
        raise ValueError(
            f"{source} is corrupt: array {key!r} CRC mismatch "
            f"(stored {want:#010x}, computed {got:#010x})"
        )


def _focalplane_meta(fp: Focalplane) -> dict:
    return {
        "sample_rate": fp.sample_rate,
        "detectors": fp.detectors,
        "psi_pol": fp.psi_pol,
        "pol_leakage": fp.pol_leakage,
        "net": fp.net,
        "fknee": fp.fknee,
        "fmin": fp.fmin,
        "alpha": fp.alpha,
    }


def _focalplane_from_meta(meta: dict, quats: np.ndarray) -> Focalplane:
    detectors = list(meta["detectors"])
    return Focalplane(
        sample_rate=float(meta["sample_rate"]),
        detectors=detectors,
        detector_quats={d: quats[i] for i, d in enumerate(detectors)},
        psi_pol={k: float(v) for k, v in meta["psi_pol"].items()},
        pol_leakage={k: float(v) for k, v in meta["pol_leakage"].items()},
        net={k: float(v) for k, v in meta["net"].items()},
        fknee={k: float(v) for k, v in meta["fknee"].items()},
        fmin={k: float(v) for k, v in meta["fmin"].items()},
        alpha={k: float(v) for k, v in meta["alpha"].items()},
    )


def save_observation(ob: Observation, path: Union[str, Path]) -> Path:
    """Write one observation to a compressed ``.npz`` volume."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    arrays: dict[str, np.ndarray] = {
        "_fp_quats": ob.focalplane.quat_array(),
    }
    for key, arr in ob.shared.items():
        arrays[f"shared/{key}"] = arr
    for key, arr in ob.detdata.items():
        arrays[f"detdata/{key}"] = arr
    for key, ivl in ob.intervals.items():
        starts, stops = ivl.as_arrays()
        arrays[f"intervals/{key}"] = np.stack([starts, stops])
    header = {
        "format": _FORMAT_VERSION,
        "name": ob.name,
        "uid": ob.uid,
        "n_samples": ob.n_samples,
        "focalplane": _focalplane_meta(ob.focalplane),
        "shared": sorted(ob.shared),
        "detdata": sorted(ob.detdata),
        "intervals": sorted(ob.intervals),
        "checksums": {key: _array_crc(arr) for key, arr in arrays.items()},
    }
    arrays["_header"] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)
    return path


def load_observation(path: Union[str, Path]) -> Observation:
    """Read an observation volume written by :func:`save_observation`."""
    path = Path(path)
    with np.load(path) as volume:
        header = json.loads(bytes(volume["_header"].tobytes()).decode("utf-8"))
        _check_version(header.get("format"), f"observation volume {path.name!r}")
        checksums = header.get("checksums", {})

        def _load(key: str) -> np.ndarray:
            arr = np.array(volume[key])
            if key in checksums:
                _check_crc(
                    arr, checksums[key], key, f"observation volume {path.name!r}"
                )
            return arr

        fp = _focalplane_from_meta(header["focalplane"], _load("_fp_quats"))
        ob = Observation(fp, int(header["n_samples"]), name=header["name"], uid=header["uid"])
        for key in header["shared"]:
            ob.set_shared(key, _load(f"shared/{key}"))
        for key in header["detdata"]:
            ob.detdata[key] = _load(f"detdata/{key}")
        for key in header["intervals"]:
            pair = _load(f"intervals/{key}")
            ob.set_intervals(key, IntervalList.from_arrays(pair[0], pair[1]))
    return ob


def save_data(data: Data, directory: Union[str, Path]) -> Path:
    """Write every observation plus array-valued meta to a directory."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    index = {"format": _FORMAT_VERSION, "observations": [], "meta": []}
    for ob in data.obs:
        fname = f"obs_{ob.name}.npz"
        save_observation(ob, directory / fname)
        index["observations"].append(fname)
    for key, value in data.meta.items():
        if isinstance(value, np.ndarray):
            fname = f"meta_{key}.npy"
            np.save(directory / fname, value)
            index["meta"].append(
                {"key": key, "file": fname, "crc32": _array_crc(value)}
            )
    (directory / "index.json").write_text(json.dumps(index, indent=2))
    return directory


def load_data(directory: Union[str, Path]) -> Data:
    """Read a directory written by :func:`save_data`."""
    directory = Path(directory)
    index = json.loads((directory / "index.json").read_text())
    _check_version(index.get("format"), f"data volume index in {directory.name!r}")
    data = Data()
    for fname in index["observations"]:
        data.obs.append(load_observation(directory / fname))
    for entry in index["meta"]:
        value = np.load(directory / entry["file"])
        if "crc32" in entry:
            _check_crc(
                value,
                entry["crc32"],
                entry["key"],
                f"data volume meta file {entry['file']!r}",
            )
        data[entry["key"]] = value
    return data


def save_map(map_data: np.ndarray, path: Union[str, Path], nside: int, nest: bool = True) -> Path:
    """Write a pixelized map with its HEALPix metadata."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    np.savez_compressed(
        path,
        map=np.asarray(map_data),
        nside=np.int64(nside),
        nest=np.bool_(nest),
    )
    return path


def load_map(path: Union[str, Path]) -> tuple[np.ndarray, int, bool]:
    """Read a map volume; returns ``(map, nside, nest)``."""
    with np.load(Path(path)) as volume:
        return np.array(volume["map"]), int(volume["nside"]), bool(volume["nest"])
