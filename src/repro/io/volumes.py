"""Observation and map serialization to ``.npz`` volumes.

Layout: one file per observation holding the shared arrays, detector data,
interval lists, and enough focalplane metadata to rebuild the instrument;
one directory-level index for a :class:`~repro.core.data.Data` container.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from ..core.data import Data
from ..core.focalplane import Focalplane
from ..core.observation import Observation
from ..math.intervals import IntervalList

__all__ = [
    "save_observation",
    "load_observation",
    "save_data",
    "load_data",
    "save_map",
    "load_map",
]

_FORMAT_VERSION = 1


def _focalplane_meta(fp: Focalplane) -> dict:
    return {
        "sample_rate": fp.sample_rate,
        "detectors": fp.detectors,
        "psi_pol": fp.psi_pol,
        "pol_leakage": fp.pol_leakage,
        "net": fp.net,
        "fknee": fp.fknee,
        "fmin": fp.fmin,
        "alpha": fp.alpha,
    }


def _focalplane_from_meta(meta: dict, quats: np.ndarray) -> Focalplane:
    detectors = list(meta["detectors"])
    return Focalplane(
        sample_rate=float(meta["sample_rate"]),
        detectors=detectors,
        detector_quats={d: quats[i] for i, d in enumerate(detectors)},
        psi_pol={k: float(v) for k, v in meta["psi_pol"].items()},
        pol_leakage={k: float(v) for k, v in meta["pol_leakage"].items()},
        net={k: float(v) for k, v in meta["net"].items()},
        fknee={k: float(v) for k, v in meta["fknee"].items()},
        fmin={k: float(v) for k, v in meta["fmin"].items()},
        alpha={k: float(v) for k, v in meta["alpha"].items()},
    )


def save_observation(ob: Observation, path: Union[str, Path]) -> Path:
    """Write one observation to a compressed ``.npz`` volume."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    arrays: dict[str, np.ndarray] = {
        "_fp_quats": ob.focalplane.quat_array(),
    }
    header = {
        "format": _FORMAT_VERSION,
        "name": ob.name,
        "uid": ob.uid,
        "n_samples": ob.n_samples,
        "focalplane": _focalplane_meta(ob.focalplane),
        "shared": sorted(ob.shared),
        "detdata": sorted(ob.detdata),
        "intervals": sorted(ob.intervals),
    }
    arrays["_header"] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    )
    for key, arr in ob.shared.items():
        arrays[f"shared/{key}"] = arr
    for key, arr in ob.detdata.items():
        arrays[f"detdata/{key}"] = arr
    for key, ivl in ob.intervals.items():
        starts, stops = ivl.as_arrays()
        arrays[f"intervals/{key}"] = np.stack([starts, stops])
    np.savez_compressed(path, **arrays)
    return path


def load_observation(path: Union[str, Path]) -> Observation:
    """Read an observation volume written by :func:`save_observation`."""
    with np.load(Path(path)) as volume:
        header = json.loads(bytes(volume["_header"].tobytes()).decode("utf-8"))
        if header.get("format") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported observation volume format {header.get('format')!r}"
            )
        fp = _focalplane_from_meta(header["focalplane"], volume["_fp_quats"])
        ob = Observation(fp, int(header["n_samples"]), name=header["name"], uid=header["uid"])
        for key in header["shared"]:
            ob.set_shared(key, volume[f"shared/{key}"])
        for key in header["detdata"]:
            ob.detdata[key] = np.array(volume[f"detdata/{key}"])
        for key in header["intervals"]:
            pair = volume[f"intervals/{key}"]
            ob.set_intervals(key, IntervalList.from_arrays(pair[0], pair[1]))
    return ob


def save_data(data: Data, directory: Union[str, Path]) -> Path:
    """Write every observation plus array-valued meta to a directory."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    index = {"format": _FORMAT_VERSION, "observations": [], "meta": []}
    for ob in data.obs:
        fname = f"obs_{ob.name}.npz"
        save_observation(ob, directory / fname)
        index["observations"].append(fname)
    for key, value in data.meta.items():
        if isinstance(value, np.ndarray):
            fname = f"meta_{key}.npy"
            np.save(directory / fname, value)
            index["meta"].append({"key": key, "file": fname})
    (directory / "index.json").write_text(json.dumps(index, indent=2))
    return directory


def load_data(directory: Union[str, Path]) -> Data:
    """Read a directory written by :func:`save_data`."""
    directory = Path(directory)
    index = json.loads((directory / "index.json").read_text())
    if index.get("format") != _FORMAT_VERSION:
        raise ValueError(f"unsupported data volume format {index.get('format')!r}")
    data = Data()
    for fname in index["observations"]:
        data.obs.append(load_observation(directory / fname))
    for entry in index["meta"]:
        data[entry["key"]] = np.load(directory / entry["file"])
    return data


def save_map(map_data: np.ndarray, path: Union[str, Path], nside: int, nest: bool = True) -> Path:
    """Write a pixelized map with its HEALPix metadata."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    np.savez_compressed(
        path,
        map=np.asarray(map_data),
        nside=np.int64(nside),
        nest=np.bool_(nest),
    )
    return path


def load_map(path: Union[str, Path]) -> tuple[np.ndarray, int, bool]:
    """Read a map volume; returns ``(map, nside, nest)``."""
    with np.load(Path(path)) as volume:
        return np.array(volume["map"]), int(volume["nside"]), bool(volume["nest"])
