"""Data import/export.

The paper's reported runtimes include "everything from the time needed to
load the data to the time needed to export the outputs"; this package
provides that I/O surface: observations and maps round-trip through
compressed ``.npz`` volumes (the dependency-free stand-in for TOAST's
HDF5 format).
"""

from .volumes import (
    load_data,
    load_map,
    load_observation,
    save_data,
    save_map,
    save_observation,
)

__all__ = [
    "save_observation",
    "load_observation",
    "save_data",
    "load_data",
    "save_map",
    "load_map",
]
