"""Per-client quotas and admission control for the serving plane.

Multi-tenancy needs a bouncer: one greedy client must not starve the
others or melt a node.  Admission is checked at the broker before any
routing happens, against three per-client limits:

* **in-flight cap** -- how many requests a client may have open at once;
* **budget** -- an optional total-request allowance for the session;
* **abuse breaker** -- a :class:`repro.resilience.CircuitBreaker` per
  client: every rejection counts as a failure, so a client that hammers
  past its limits trips the breaker and is then refused outright (cheap,
  no quota math) until the cooldown lapses.  This is the same breaker
  machinery the kernel dispatch and the broker's node health tracking
  use -- one resilience vocabulary across the stack.

Rejections raise :class:`QuotaExceededError` and emit a SERVE_REJECT
event, so load shedding is visible in the trace, not silent.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional

from ..resilience.recovery import BreakerState, CircuitBreaker

__all__ = ["QuotaExceededError", "QuotaPolicy", "QuotaLedger"]


class QuotaExceededError(RuntimeError):
    """A request was refused by admission control (not a server fault)."""

    wire_kind = "quota"

    def __init__(self, client: str, reason: str, detail: str):
        super().__init__(f"client {client!r} rejected ({reason}): {detail}")
        self.client = client
        self.reason = reason


@dataclass(frozen=True)
class QuotaPolicy:
    """The per-client limits every client of a broker gets by default."""

    #: Concurrent open requests allowed per client.
    max_inflight: int = 8
    #: Total requests allowed per client (``None`` = unmetered).
    max_requests: Optional[int] = None
    #: Consecutive rejections before the client's breaker opens.
    breaker_threshold: int = 3
    #: Admissions-clock ticks an open client breaker waits before a
    #: half-open probe (the ledger's clock advances one tick per check).
    breaker_cooldown: float = 16.0

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.max_requests is not None and self.max_requests < 0:
            raise ValueError("max_requests must be non-negative")


class _ClientState:
    __slots__ = ("inflight", "total", "rejected", "breaker")

    def __init__(self, client: str, policy: QuotaPolicy):
        self.inflight = 0
        self.total = 0
        self.rejected = 0
        self.breaker = CircuitBreaker(
            f"serve.client:{client}",
            failure_threshold=policy.breaker_threshold,
            cooldown_s=policy.breaker_cooldown,
        )


class QuotaLedger:
    """Thread-safe admission state for all clients of one broker.

    Deterministic by construction: the breaker clock is a monotone
    counter advanced once per admission check, never wall time, so quota
    tests and replays behave identically everywhere.
    """

    def __init__(self, policy: Optional[QuotaPolicy] = None):
        self.policy = policy if policy is not None else QuotaPolicy()
        self._lock = threading.Lock()
        self._clients: Dict[str, _ClientState] = {}
        self._ticks = 0.0

    def _state(self, client: str) -> _ClientState:
        st = self._clients.get(client)
        if st is None:
            st = self._clients[client] = _ClientState(client, self.policy)
        return st

    def admit(self, client: str) -> None:
        """Admit one request or raise :class:`QuotaExceededError`.

        On success the client's in-flight count is up; the caller must
        pair this with :meth:`release` (the broker does so in a
        ``finally``).
        """
        policy = self.policy
        with self._lock:
            self._ticks += 1.0
            st = self._state(client)
            if not st.breaker.allow(self._ticks):
                st.rejected += 1
                raise QuotaExceededError(
                    client,
                    "breaker_open",
                    f"abuse breaker is {st.breaker.state.value}; "
                    f"retry after cooldown",
                )
            reason = None
            if st.inflight >= policy.max_inflight:
                reason, detail = "inflight", (
                    f"{st.inflight} requests already open "
                    f"(limit {policy.max_inflight})"
                )
            elif policy.max_requests is not None and st.total >= policy.max_requests:
                reason, detail = "budget", (
                    f"request budget exhausted ({st.total} of "
                    f"{policy.max_requests})"
                )
            if reason is not None:
                st.rejected += 1
                st.breaker.record_failure(self._ticks)
                raise QuotaExceededError(client, reason, detail)
            st.breaker.record_success()
            st.inflight += 1
            st.total += 1

    def release(self, client: str) -> None:
        """Close out one admitted request."""
        with self._lock:
            st = self._clients.get(client)
            if st is not None and st.inflight > 0:
                st.inflight -= 1

    def client_stats(self) -> Dict[str, Dict[str, object]]:
        with self._lock:
            return {
                name: {
                    "inflight": st.inflight,
                    "total": st.total,
                    "rejected": st.rejected,
                    "breaker": st.breaker.state.value,
                }
                for name, st in sorted(self._clients.items())
            }

    def breaker_state(self, client: str) -> BreakerState:
        with self._lock:
            return self._state(client).breaker.state

    def __repr__(self) -> str:
        with self._lock:
            return f"QuotaLedger({len(self._clients)} clients, {self.policy})"
