"""Request coalescing: N concurrent requests, one pipeline run.

The multi-tenant contract: when many clients ask for overlapping slices of
the same :class:`~repro.serve.handles.ProductKey` at once, exactly one
pipeline run happens.  The first request in becomes the **leader** and
computes; everyone else becomes a **follower** and blocks on the leader's
completion event; completed results stay in a bounded LRU cache so late
arrivals don't even wait.  Because producers are pure functions, a
follower's bytes are the leader's bytes -- coalescing is invisible except
in the trace (one SERVE_PRODUCE, many SERVE_COALESCE) and the bill.

The table is deliberately generic (keys are any hashable, values any
object): the node coalesces pipeline runs with it and the broker coalesces
handle resolutions with the same class.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

__all__ = ["CoalesceEntry", "CoalesceTable"]

#: How long a follower waits for its leader before giving up (seconds).
DEFAULT_WAIT_S = 120.0


class CoalesceEntry:
    """One in-flight or completed computation."""

    __slots__ = ("key", "done", "value", "error", "followers")

    def __init__(self, key: Hashable):
        self.key = key
        self.done = threading.Event()
        self.value: Any = None
        self.error: Optional[BaseException] = None
        self.followers = 0


class CoalesceTable:
    """Thread-safe leader election + result cache per key.

    :meth:`run` is the whole API most callers need: it returns the cached
    or freshly-computed value and whether this call led the computation.
    A leader whose ``compute`` raises propagates the error to every
    follower of that flight and clears the entry, so the next request
    elects a new leader instead of caching the failure.
    """

    def __init__(self, max_cached: int = 32, wait_s: float = DEFAULT_WAIT_S):
        if max_cached < 0:
            raise ValueError("cache bound must be non-negative")
        self.max_cached = max_cached
        self.wait_s = wait_s
        self._lock = threading.Lock()
        self._entries: Dict[Hashable, CoalesceEntry] = {}
        self._order: List[Hashable] = []  # completed keys, oldest first
        #: Completed computations per key (the determinism tests pin
        #: ``sum(runs.values()) == 1`` for N coalesced clients).
        self.runs: Dict[Hashable, int] = {}
        self.coalesced = 0
        self.evicted = 0

    # -- internals -------------------------------------------------------------

    def _lease(self, key: Hashable) -> Tuple[CoalesceEntry, bool]:
        """The entry for ``key`` plus leadership; creates one if needed."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                entry.followers += 1
                self.coalesced += 1
                return entry, False
            entry = CoalesceEntry(key)
            self._entries[key] = entry
            return entry, True

    def _complete(self, key: Hashable, value: Any) -> None:
        with self._lock:
            entry = self._entries[key]
            entry.value = value
            self.runs[key] = self.runs.get(key, 0) + 1
            self._order.append(key)
            evict = None
            if len(self._order) > self.max_cached:
                evict = self._order.pop(0)
            entry.done.set()
            if evict is not None and evict != key:
                self._entries.pop(evict, None)
                self.evicted += 1
        # max_cached == 0: nothing is retained past the in-flight window.
        if evict == key:
            with self._lock:
                self._entries.pop(key, None)
                self.evicted += 1

    def _fail(self, key: Hashable, error: BaseException) -> None:
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is not None:
                entry.error = error
                entry.done.set()

    # -- the public surface ----------------------------------------------------

    def run(self, key: Hashable, compute: Callable[[], Any]) -> Tuple[Any, bool]:
        """Return ``(value, led)`` for ``key``, computing at most once.

        ``led`` is ``True`` when this call executed ``compute`` (cache
        miss and leader), ``False`` when it rode an in-flight run or hit
        the cache.
        """
        entry, leader = self._lease(key)
        if leader:
            try:
                value = compute()
            except BaseException as e:
                self._fail(key, e)
                raise
            self._complete(key, value)
            return value, True
        if not entry.done.wait(self.wait_s):
            raise TimeoutError(
                f"coalesced request for {key!r} timed out after {self.wait_s}s "
                "waiting for its leader"
            )
        if entry.error is not None:
            raise entry.error
        return entry.value, False

    def cached(self, key: Hashable) -> Optional[CoalesceEntry]:
        """The completed entry for ``key``, or ``None`` (never blocks)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry.done.is_set() and entry.error is None:
                return entry
            return None

    def invalidate(self, key: Hashable) -> bool:
        """Drop a completed entry (e.g. its node died); in-flight stays."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or not entry.done.is_set():
                return False
            del self._entries[key]
            if key in self._order:
                self._order.remove(key)
            return True

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "runs": sum(self.runs.values()),
                "keys": len(self.runs),
                "coalesced": self.coalesced,
                "cached": len(self._order),
                "evicted": self.evicted,
            }

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"CoalesceTable(runs={s['runs']}, coalesced={s['coalesced']}, "
            f"cached={s['cached']})"
        )
