"""repro.serve — a multi-tenant array-serving plane over the map stack.

The paper's pipelines are batch programs: run, write maps, exit.  This
package turns the same stack into a long-running service: **nodes** (one
:class:`ServeNode` per process, each wrapping a SimWorld + pipeline
executor) register the map products they can make with a **broker**, and
**clients** resolve :class:`ProductKey`\\ s into :class:`ArrayHandle`\\ s,
then fetch :class:`SliceSpec` windows of the arrays on demand -- handles
travel, bytes only move when sliced.

The design leans on three properties the rest of the repo already
guarantees:

* producers are *pure* (counter-based seeds, fixed reduction order), so
  concurrent requests for one key can **coalesce** into a single pipeline
  run and any node's answer is bitwise identical to any other's -- which
  is also what makes failover sound;
* the **resilience** plane supplies per-node and per-client circuit
  breakers, deterministic fault injection (``serve.request`` drops,
  ``serve.node`` crashes), and virtual-clock backoff;
* the **obs** plane supplies SERVE_* events and per-request trace ids, so
  one request is followable broker → node → kernel in a single exported
  trace.

Quick start (in-process; see ``repro-bench serve --smoke`` for the
multi-process drill)::

    from repro.serve import local_plane, ProductKey, SliceSpec

    with local_plane(n_nodes=2) as (broker, nodes, make_client):
        client = make_client("me")
        zmap = client.request(ProductKey("satellite/zmap", "tiny"))
        band = client.request(
            ProductKey("satellite/zmap", "tiny"), SliceSpec.rows(0, 128)
        )
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator, List, Optional, Tuple

from .broker import Broker, BrokerServer, NoNodesError, route_order
from .client import IntegrityError, ServeClient
from .coalesce import CoalesceTable
from .handles import ArrayHandle, ProductKey, SliceSpec
from .node import NodeLostError, NodeServer, ServeNode, UnknownHandleError
from .quota import QuotaExceededError, QuotaLedger, QuotaPolicy
from .smoke import SmokeFailure, run_serve_smoke
from .wire import PeerUnavailableError, RemoteCallError, RpcServer, call

__all__ = [
    "ProductKey",
    "SliceSpec",
    "ArrayHandle",
    "CoalesceTable",
    "QuotaPolicy",
    "QuotaLedger",
    "QuotaExceededError",
    "Broker",
    "BrokerServer",
    "NoNodesError",
    "route_order",
    "ServeNode",
    "NodeServer",
    "NodeLostError",
    "UnknownHandleError",
    "ServeClient",
    "IntegrityError",
    "RpcServer",
    "RemoteCallError",
    "PeerUnavailableError",
    "call",
    "SmokeFailure",
    "run_serve_smoke",
    "local_plane",
]


@contextmanager
def local_plane(
    n_nodes: int = 2,
    policy: Optional[QuotaPolicy] = None,
    node_prefix: str = "node",
    max_cached_products: int = 8,
) -> Iterator[Tuple[Broker, List[ServeNode], Callable[[str], ServeClient]]]:
    """A whole serving plane in one process: broker, nodes, client factory.

    Everything runs on direct object calls (no sockets), which keeps unit
    tests fast and lets client threads share the ambient tracer -- the
    coalescing-determinism tests count SERVE_PRODUCE events exactly
    because of this.  Node slabs are unlinked on exit.
    """
    if n_nodes < 1:
        raise ValueError("a plane needs at least one node")
    broker = Broker(policy=policy)
    nodes = [
        ServeNode(f"{node_prefix}-{chr(ord('a') + i)}", max_cached_products=max_cached_products)
        for i in range(n_nodes)
    ]
    for node in nodes:
        broker.register_local_node(node)
    try:
        yield broker, nodes, lambda client_id: ServeClient(client_id, broker)
    finally:
        for node in nodes:
            node.shutdown()
