"""The wire layer: a minimal request/response RPC over stdlib sockets.

``multiprocessing.connection`` gives authenticated, pickling message
sockets with zero new dependencies -- enough for a broker/node control
plane at this scale.  Every call is one connection: dial, send one request
dict, read one response dict, close.  That trades a little latency for a
property the resilience story needs: a dead peer fails *fast* (connection
refused / EOF) instead of poisoning a pooled connection, and there is no
session state to reconcile after a failover.

Requests are ``{"op": ..., "trace_id": ..., **payload}``; responses are
``{"ok": True, "value": ...}`` or ``{"ok": False, "error": ..., "kind":
...}``.  :class:`RpcServer` runs one daemon thread per connection so
concurrent requests actually overlap inside a node -- which is what lets
the coalescing table see them as concurrent.
"""

from __future__ import annotations

import threading
from multiprocessing.connection import Client, Listener
from typing import Any, Callable, Dict, Optional, Tuple

__all__ = [
    "AUTHKEY",
    "RemoteCallError",
    "PeerUnavailableError",
    "RpcServer",
    "call",
]

#: Shared secret for ``multiprocessing.connection`` HMAC handshakes.
AUTHKEY = b"repro-serve"

#: Errors that mean "the peer is gone", as one tuple so call sites and
#: the client's failover path classify identically.
_DEAD_PEER_ERRORS = (
    ConnectionRefusedError,
    ConnectionResetError,
    BrokenPipeError,
    EOFError,
    OSError,
)


class RemoteCallError(RuntimeError):
    """The peer answered, but with an application error."""

    def __init__(self, kind: str, message: str):
        super().__init__(message)
        self.kind = kind


class PeerUnavailableError(ConnectionError):
    """The peer is unreachable or died mid-call."""


def call(
    address: Tuple[str, int],
    op: str,
    /,
    timeout_s: float = 30.0,
    **payload: Any,
) -> Any:
    """One round-trip: returns the response value or raises.

    :class:`PeerUnavailableError` means the node/broker is gone (the
    caller's failover path owns that); :class:`RemoteCallError` carries an
    application-level refusal (unknown handle, quota, ...) with its
    ``kind`` intact across the wire.
    """
    request = {"op": op, **payload}
    try:
        with Client(tuple(address), authkey=AUTHKEY) as conn:
            conn.send(request)
            if not conn.poll(timeout_s):
                raise PeerUnavailableError(
                    f"{address}: no response to {op!r} within {timeout_s}s"
                )
            response = conn.recv()
    except _DEAD_PEER_ERRORS as e:
        raise PeerUnavailableError(f"{address}: {op!r} failed: {e}") from e
    if not isinstance(response, dict) or "ok" not in response:
        raise PeerUnavailableError(f"{address}: malformed response to {op!r}")
    if response["ok"]:
        return response.get("value")
    raise RemoteCallError(
        response.get("kind", "error"), response.get("error", "remote error")
    )


class RpcServer:
    """Accept loop + one handler thread per connection.

    ``handler(request_dict) -> value`` runs on a daemon thread; whatever
    it returns is shipped as ``{"ok": True, "value": ...}``, and any
    exception becomes ``{"ok": False, "kind": type_name, "error": str}``
    -- except exceptions carrying a ``wire_kind`` attribute, which keep
    that kind (so e.g. quota refusals classify stably for clients).
    """

    def __init__(self, handler: Callable[[Dict[str, Any]], Any], host: str = "127.0.0.1"):
        self._handler = handler
        self._listener = Listener((host, 0), authkey=AUTHKEY)
        self.address: Tuple[str, int] = self._listener.address
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "RpcServer":
        self._thread = threading.Thread(
            target=self._accept_loop, name=f"rpc-{self.address[1]}", daemon=True
        )
        self._thread.start()
        return self

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn = self._listener.accept()
            except (OSError, EOFError, *_DEAD_PEER_ERRORS):
                if self._stop.is_set():
                    return
                continue
            threading.Thread(
                target=self._serve_one, args=(conn,), daemon=True
            ).start()

    def _serve_one(self, conn) -> None:
        try:
            request = conn.recv()
            try:
                value = self._handler(request)
                response = {"ok": True, "value": value}
            except BaseException as e:  # must answer; the client is waiting
                response = {
                    "ok": False,
                    "kind": getattr(e, "wire_kind", type(e).__name__),
                    "error": str(e),
                }
            conn.send(response)
        except _DEAD_PEER_ERRORS:
            pass  # the caller hung up; nothing to answer
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def stop(self) -> None:
        """Stop accepting; in-flight handler threads drain on their own."""
        self._stop.set()
        try:
            self._listener.close()
        except OSError:
            pass
        # Unblock a pending accept() by dialing it once.
        try:
            Client(self.address, authkey=AUTHKEY).close()
        except _DEAD_PEER_ERRORS:
            pass
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    def __repr__(self) -> str:
        return f"RpcServer({self.address}, stopped={self._stop.is_set()})"
