"""The broker: the control plane of the serving layer.

Nodes register here (id, namespaces served, data-plane address); clients
ask here to *resolve* a :class:`~repro.serve.handles.ProductKey` into an
:class:`~repro.serve.handles.ArrayHandle`.  The broker never touches
array bytes -- after a resolve, clients fetch slices straight from the
node named in the handle.

Three policies live here and nowhere else:

* **Routing** is rendezvous hashing (:func:`route_order`): every broker
  (and every test, and the smoke driver) computes the same node order for
  a key from pure string hashes, so placement is deterministic without
  shared state, and losing one node only remaps that node's keys.
* **Admission** delegates to :class:`~repro.serve.quota.QuotaLedger`:
  per-client in-flight caps, budgets, and abuse breakers, checked before
  any routing work.
* **Health** is one :class:`~repro.resilience.CircuitBreaker` per node,
  fed by broker-observed produce failures and client ``node_failed``
  reports.  A node with an open breaker is skipped during routing, which
  is exactly the failover path: the next node in the rendezvous order
  takes over, and the map is recomputed there.
"""

from __future__ import annotations

import threading
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..obs import state as obs_state
from ..obs.events import ClockDomain, Event, EventType
from ..resilience.recovery import CircuitBreaker
from .coalesce import CoalesceTable
from .handles import ArrayHandle, ProductKey
from .node import BadRequestError, NodeLostError, ServeNode
from .quota import QuotaLedger, QuotaPolicy
from .wire import PeerUnavailableError, RemoteCallError, RpcServer, call

__all__ = ["route_order", "NoNodesError", "Broker", "BrokerServer"]


def route_order(key_str: str, node_ids: Sequence[str]) -> List[str]:
    """Rendezvous (highest-random-weight) order of ``node_ids`` for a key.

    Pure function of its arguments: any party that knows the key string
    and the node ids -- the broker, a test, the smoke driver planting a
    fault on the primary -- computes the same order.
    """
    scored = sorted(
        ((zlib.crc32(f"{key_str}|{nid}".encode("utf-8")), nid) for nid in node_ids),
        key=lambda pair: (-pair[0], pair[1]),
    )
    return [nid for _, nid in scored]


class NoNodesError(RuntimeError):
    """No registered, healthy node can serve the requested namespace."""

    wire_kind = "no_nodes"


@dataclass
class _NodeRef:
    """One registered node as the broker sees it."""

    node_id: str
    namespaces: Tuple[str, ...]
    address: Optional[Tuple[str, int]] = None
    obj: Optional[ServeNode] = None  # in-process transport
    breaker: CircuitBreaker = field(default=None)  # type: ignore[assignment]
    produces: int = 0
    failures: int = 0


class Broker:
    """Node registry + admission + routing.  Thread-safe.

    ``node_failure_threshold`` / ``node_cooldown`` parameterise the
    per-node health breakers; the cooldown is measured in broker resolve
    ticks (a deterministic monotone counter), never wall time.
    """

    def __init__(
        self,
        policy: Optional[QuotaPolicy] = None,
        node_failure_threshold: int = 1,
        node_cooldown: float = 64.0,
    ):
        self.ledger = QuotaLedger(policy)
        self.node_failure_threshold = node_failure_threshold
        self.node_cooldown = node_cooldown
        self.coalesce = CoalesceTable(max_cached=64)
        self.address: Optional[Tuple[str, int]] = None
        self._lock = threading.Lock()
        self._nodes: Dict[str, _NodeRef] = {}
        self._resolved: Dict[ProductKey, ArrayHandle] = {}
        self._ticks = 0.0
        self.counters: Dict[str, int] = {}

    # -- registry --------------------------------------------------------------

    def register_node(
        self,
        node_id: str,
        namespaces: Sequence[str],
        address: Optional[Tuple[str, int]] = None,
        obj: Optional[ServeNode] = None,
    ) -> Dict[str, Any]:
        """Register (or re-register) a node; returns the roster snapshot."""
        if address is None and obj is None:
            raise ValueError("a node needs an address or an in-process object")
        ref = _NodeRef(
            node_id=node_id,
            namespaces=tuple(sorted(namespaces)),
            address=tuple(address) if address is not None else None,
            obj=obj,
            breaker=CircuitBreaker(
                f"serve.node:{node_id}",
                failure_threshold=self.node_failure_threshold,
                cooldown_s=self.node_cooldown,
            ),
        )
        with self._lock:
            self._nodes[node_id] = ref
        self._count("registrations")
        return self.roster()

    def register_local_node(self, node: ServeNode) -> Dict[str, Any]:
        """Shorthand for in-process planes (unit tests, demos)."""
        return self.register_node(
            node.node_id, node.namespaces(), address=node.address, obj=node
        )

    def roster(self) -> Dict[str, Any]:
        with self._lock:
            return {
                nid: {
                    "namespaces": list(ref.namespaces),
                    "address": ref.address,
                    "breaker": ref.breaker.state.value,
                }
                for nid, ref in sorted(self._nodes.items())
            }

    # -- helpers ---------------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + amount

    def _emit(self, etype: EventType, name: str, metric: str, **attrs: Any) -> None:
        tr = obs_state.active
        if tr is None:
            return
        tr.emit(Event(etype, name, ts=tr.now(), clock=ClockDomain.HOST, attrs=attrs))
        tr.metrics.count(metric)

    def _candidates(self, key: ProductKey, now: float) -> List[_NodeRef]:
        """Healthy nodes serving the key's namespace, in rendezvous order."""
        with self._lock:
            eligible = {
                nid: ref
                for nid, ref in self._nodes.items()
                if key.namespace in ref.namespaces
            }
        ordered = route_order(key.describe(), sorted(eligible))
        return [eligible[nid] for nid in ordered if eligible[nid].breaker.allow(now)]

    def _mark_failed(self, ref: _NodeRef, now: float, why: str) -> None:
        ref.breaker.record_failure(now)
        with self._lock:
            ref.failures += 1
            stale = [k for k, h in self._resolved.items() if h.node == ref.node_id]
            for k in stale:
                del self._resolved[k]
        for k in stale:
            self.coalesce.invalidate(k)
        self._count("node_failures")
        self._emit(
            EventType.SERVE_FAILOVER,
            ref.node_id,
            "serve.failovers",
            node=ref.node_id,
            breaker=ref.breaker.state.value,
            why=why,
        )

    def _produce_on(
        self, ref: _NodeRef, key: ProductKey, trace_id: Optional[str]
    ) -> ArrayHandle:
        if ref.obj is not None:
            return ref.obj.produce(key, trace_id=trace_id)
        return call(ref.address, "produce", key=key, trace_id=trace_id)

    # -- the client surface ----------------------------------------------------

    def resolve(
        self,
        key: ProductKey,
        client: str,
        trace_id: Optional[str] = None,
        fresh: bool = False,
    ) -> ArrayHandle:
        """Admit, route, and produce: a handle for ``key`` on some node.

        Concurrent resolves of equal keys coalesce broker-side (one
        routing + produce round for all of them; the node coalesces the
        pipeline run again as a second line of defense).  Produce
        failures walk down the rendezvous order -- that *is* failover.

        ``fresh`` bypasses the broker's cached handle for the key --
        clients set it after a fetch came back ``unknown_handle`` (the
        node evicted the product), which must force a re-produce rather
        than hand the same stale handle back out.
        """
        if fresh:
            self.coalesce.invalidate(key)
            with self._lock:
                self._resolved.pop(key, None)
        tr = obs_state.active
        if tr is not None and trace_id is not None:
            with tr.trace_context(trace_id):
                return self._resolve_traced(key, client, trace_id)
        return self._resolve_traced(key, client, trace_id)

    def _resolve_traced(
        self, key: ProductKey, client: str, trace_id: Optional[str]
    ) -> ArrayHandle:
        try:
            self.ledger.admit(client)
        except Exception as e:
            self._count("rejections")
            self._emit(
                EventType.SERVE_REJECT,
                key.product,
                "serve.rejections",
                client=client,
                key=key.describe(),
                reason=getattr(e, "reason", "quota"),
            )
            raise
        try:
            handle, led = self.coalesce.run(
                key, lambda: self._route_and_produce(key, client, trace_id)
            )
            if not led:
                self._count("coalesced_resolves")
                self._emit(
                    EventType.SERVE_COALESCE,
                    key.product,
                    "serve.coalesced",
                    where="broker",
                    client=client,
                    key=key.describe(),
                    handle=handle.handle_id,
                )
            return handle
        finally:
            self.ledger.release(client)

    def _route_and_produce(
        self, key: ProductKey, client: str, trace_id: Optional[str]
    ) -> ArrayHandle:
        with self._lock:
            self._ticks += 1.0
            now = self._ticks
        candidates = self._candidates(key, now)
        if not candidates:
            raise NoNodesError(
                f"no healthy node serves namespace {key.namespace!r} "
                f"(roster: {sorted(self._nodes) or 'empty'})"
            )
        last_error: Optional[Exception] = None
        for ref in candidates:
            try:
                handle = self._produce_on(ref, key, trace_id)
            except (PeerUnavailableError, NodeLostError) as e:
                self._mark_failed(ref, now, type(e).__name__)
                last_error = e
                continue
            except RemoteCallError as e:
                if e.kind == "node_lost":
                    self._mark_failed(ref, now, e.kind)
                    last_error = e
                    continue
                raise  # bad request etc.: the node is fine, the ask is not
            ref.breaker.record_success()
            with self._lock:
                ref.produces += 1
                self._resolved[key] = handle
            self._count("resolves")
            self._emit(
                EventType.SERVE_RESOLVE,
                key.product,
                "serve.resolves",
                client=client,
                key=key.describe(),
                node=ref.node_id,
                handle=handle.handle_id,
            )
            return handle
        raise NoNodesError(
            f"every candidate node failed for {key.describe()}: {last_error}"
        )

    def node_failed(self, node_id: str, client: str, why: str = "client_report") -> bool:
        """A client found a node dead (fetch failed); count it against the
        node's breaker so routing stops sending work there."""
        with self._lock:
            self._ticks += 1.0
            now = self._ticks
            ref = self._nodes.get(node_id)
        if ref is None:
            return False
        self._mark_failed(ref, now, f"{why} (from {client})")
        return True

    # -- introspection ---------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            counters = dict(self.counters)
            nodes = {
                nid: {
                    "breaker": ref.breaker.state.value,
                    "produces": ref.produces,
                    "failures": ref.failures,
                }
                for nid, ref in sorted(self._nodes.items())
            }
        return {
            "nodes": nodes,
            "counters": counters,
            "coalesce": self.coalesce.stats(),
            "clients": self.ledger.client_stats(),
        }

    def __repr__(self) -> str:
        with self._lock:
            return f"Broker({len(self._nodes)} nodes, {self.ledger!r})"


class BrokerServer:
    """A :class:`Broker` behind an :class:`~repro.serve.wire.RpcServer`."""

    def __init__(self, broker: Optional[Broker] = None):
        self.broker = broker if broker is not None else Broker()
        self._shutdown = threading.Event()
        self.server = RpcServer(self._handle)
        self.broker.address = self.server.address

    @property
    def address(self) -> Tuple[str, int]:
        return self.server.address

    def start(self) -> "BrokerServer":
        self.server.start()
        return self

    def _handle(self, request: Dict[str, Any]) -> Any:
        op = request.get("op")
        if op == "register":
            return self.broker.register_node(
                request["node_id"], request["namespaces"], address=request["address"]
            )
        if op == "resolve":
            return self.broker.resolve(
                request["key"],
                request["client"],
                trace_id=request.get("trace_id"),
                fresh=request.get("fresh", False),
            )
        if op == "node_failed":
            return self.broker.node_failed(
                request["node_id"],
                request.get("client", "?"),
                request.get("why", "client_report"),
            )
        if op == "roster":
            return self.broker.roster()
        if op == "stats":
            return self.broker.stats()
        if op == "ping":
            return {"broker": True}
        if op == "shutdown":
            self._shutdown.set()
            return True
        raise BadRequestError(f"unknown op {op!r}")

    def wait_for_shutdown(self, timeout_s: Optional[float] = None) -> bool:
        return self._shutdown.wait(timeout_s)

    def stop(self) -> None:
        self.server.stop()
