"""The serving client: resolve handles, fetch slices, survive failures.

:class:`ServeClient` is the whole tenant-side API: ``request(key,
window)`` returns the requested slice as a numpy array, and everything
between -- resolving through the broker, fetching from the owning node,
retrying dropped responses, reporting dead nodes and failing over to a
re-resolved handle -- is transparent.  Every request mints a
deterministic trace id (``{client_id}-{seq:04d}``) that rides the RPC
payloads and stamps every span and event the request touches, broker to
node to kernel, so one grep over an exported trace reconstructs the whole
request path.

Failure handling is two nested loops: the *fetch* loop retries transient
request drops (the ``serve.request`` fault site) with deterministic
backoff against the same handle; the *request* loop catches a dead node
(connection refused, unknown handle after an eviction or crash), reports
it to the broker -- feeding the node's health breaker -- and re-resolves,
which routes to the next node in the rendezvous order.
"""

from __future__ import annotations

import threading
import zlib
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from ..obs import state as obs_state
from ..obs.events import ClockDomain, Event, EventType
from ..resilience import state as res_state
from .broker import Broker
from .handles import ArrayHandle, ProductKey, SliceSpec
from .node import NodeLostError, ServeNode, UnknownHandleError
from .quota import QuotaExceededError
from .wire import PeerUnavailableError, RemoteCallError, call

__all__ = ["IntegrityError", "ServeClient"]

#: RemoteCallError kinds that mean "this node can no longer serve the
#: handle" -- the client fails over rather than failing the request.
_FAILOVER_KINDS = ("node_lost", "unknown_handle")


class IntegrityError(RuntimeError):
    """A full-array read did not match the handle's checksum."""


class ServeClient:
    """One tenant of the serving plane.

    ``broker`` is either an in-process :class:`~repro.serve.broker.Broker`
    (unit tests, demos: the client then also fetches via in-process node
    objects) or a ``(host, port)`` broker address (the smoke driver and
    any real deployment: resolve and fetch both go over RPC).
    """

    def __init__(
        self,
        client_id: str,
        broker: Union[Broker, Tuple[str, int]],
        max_failovers: int = 3,
        max_drop_retries: int = 4,
    ):
        self.client_id = client_id
        self._broker = broker if isinstance(broker, Broker) else None
        self._broker_address = None if isinstance(broker, Broker) else tuple(broker)
        self.max_failovers = max_failovers
        self.max_drop_retries = max_drop_retries
        self._lock = threading.Lock()
        self._seq = 0
        self._handles: Dict[ProductKey, ArrayHandle] = {}
        self.counters: Dict[str, int] = {}

    # -- bookkeeping -----------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + amount

    def _next_trace_id(self) -> str:
        with self._lock:
            self._seq += 1
            return f"{self.client_id}-{self._seq:04d}"

    # -- transport -------------------------------------------------------------

    def _resolve(
        self, key: ProductKey, trace_id: str, fresh: bool = False
    ) -> ArrayHandle:
        if self._broker is not None:
            return self._broker.resolve(
                key, self.client_id, trace_id=trace_id, fresh=fresh
            )
        try:
            return call(
                self._broker_address,
                "resolve",
                key=key,
                client=self.client_id,
                trace_id=trace_id,
                fresh=fresh,
            )
        except RemoteCallError as e:
            if e.kind == "quota":
                raise QuotaExceededError(self.client_id, "quota", str(e)) from e
            raise

    def _local_node(self, node_id: str) -> Optional[ServeNode]:
        if self._broker is None:
            return None
        with self._broker._lock:
            ref = self._broker._nodes.get(node_id)
        return ref.obj if ref is not None else None

    def _fetch_from(
        self, handle: ArrayHandle, window: SliceSpec, trace_id: str
    ) -> np.ndarray:
        node = self._local_node(handle.node)
        if node is not None:
            return node.fetch(handle.handle_id, window, trace_id=trace_id)
        if handle.address is None:
            raise UnknownHandleError(
                f"handle {handle.handle_id!r} has no address and no local node"
            )
        return call(
            handle.address,
            "fetch",
            handle_id=handle.handle_id,
            window=window,
            trace_id=trace_id,
        )

    def _report_node_failed(self, node_id: str, why: str) -> None:
        self._count("node_reports")
        try:
            if self._broker is not None:
                self._broker.node_failed(node_id, self.client_id, why=why)
            else:
                call(
                    self._broker_address,
                    "node_failed",
                    node_id=node_id,
                    client=self.client_id,
                    why=why,
                )
        except PeerUnavailableError:
            pass  # broker gone too; the re-resolve below will say so

    # -- the fetch loop (transient drops) --------------------------------------

    def _fetch_with_retries(
        self, handle: ArrayHandle, window: SliceSpec, trace_id: str
    ) -> np.ndarray:
        """Fetch one window, retrying injected request drops in place."""
        ctrl = res_state.active
        attempt = 0
        while True:
            attempt += 1
            if ctrl is not None:
                spec = ctrl.check(
                    "serve.request",
                    client=self.client_id,
                    handle=handle.handle_id,
                    attempt=attempt,
                )
                if spec is not None:  # the response "got lost"
                    self._count("drops")
                    if attempt >= self.max_drop_retries:
                        raise PeerUnavailableError(
                            f"request to {handle.node} dropped "
                            f"{attempt} time(s); giving up"
                        )
                    ctrl.backoff(
                        "serve.request",
                        attempt,
                        ConnectionError("injected request drop"),
                    )
                    continue
            return self._fetch_from(handle, window, trace_id)

    # -- the request loop (failover) -------------------------------------------

    def request(
        self,
        key: ProductKey,
        window: Optional[SliceSpec] = None,
        verify: Optional[bool] = None,
    ) -> np.ndarray:
        """The tenant API: the requested slice of the requested product.

        ``verify`` controls checksum verification of the returned bytes
        against the handle; default is on for full-array reads (where the
        handle's crc32 applies) and off for windows.
        """
        window = window if window is not None else SliceSpec()
        trace_id = self._next_trace_id()
        tr = obs_state.active
        if tr is None:
            return self._request_inner(key, window, verify, trace_id)
        with tr.trace_context(trace_id):
            t0 = tr.now()
            result = self._request_inner(key, window, verify, trace_id)
            tr.emit(
                Event(
                    EventType.SERVE_REQUEST,
                    key.product,
                    ts=t0,
                    dur=tr.now() - t0,
                    clock=ClockDomain.HOST,
                    attrs={
                        "client": self.client_id,
                        "key": key.describe(),
                        "window": window.describe(),
                        "nbytes": int(result.nbytes),
                    },
                )
            )
            tr.metrics.count("serve.requests")
        return result

    def _request_inner(
        self,
        key: ProductKey,
        window: SliceSpec,
        verify: Optional[bool],
        trace_id: str,
    ) -> np.ndarray:
        self._count("requests")
        failovers = 0
        fresh = False
        with self._lock:
            handle = self._handles.get(key)
        while True:
            if handle is None:
                handle = self._resolve(key, trace_id, fresh=fresh)
                with self._lock:
                    self._handles[key] = handle
            try:
                data = self._fetch_with_retries(handle, window, trace_id)
            except (PeerUnavailableError, NodeLostError, UnknownHandleError) as e:
                handle = self._failover(key, handle, failovers, e)
                failovers, fresh = failovers + 1, True
                continue
            except RemoteCallError as e:
                if e.kind in _FAILOVER_KINDS:
                    handle = self._failover(key, handle, failovers, e)
                    failovers, fresh = failovers + 1, True
                    continue
                raise
            return self._verified(handle, window, verify, data)

    def _failover(
        self,
        key: ProductKey,
        handle: ArrayHandle,
        failovers: int,
        error: Exception,
    ) -> None:
        """Forget the handle (and report a dead node); the loop re-resolves.

        An ``unknown_handle`` means the node is alive but evicted the
        product -- that forces a fresh resolve without feeding the node's
        health breaker; everything else means the node itself is gone.
        """
        if failovers + 1 >= self.max_failovers:
            raise PeerUnavailableError(
                f"{key.describe()}: {failovers + 1} failovers without a "
                f"healthy node (last: {error})"
            ) from error
        self._count("failovers")
        why = getattr(error, "kind", None) or getattr(
            error, "wire_kind", type(error).__name__
        )
        if why != "unknown_handle":
            self._report_node_failed(handle.node, why)
        with self._lock:
            self._handles.pop(key, None)
        return None

    def _verified(
        self,
        handle: ArrayHandle,
        window: SliceSpec,
        verify: Optional[bool],
        data: np.ndarray,
    ) -> np.ndarray:
        full_read = data.size == handle.n_elements
        if verify is None:
            verify = full_read
        if verify:
            if not full_read:
                raise ValueError(
                    "checksum verification needs a full-array read "
                    f"(got {data.size} of {handle.n_elements} elements)"
                )
            crc = zlib.crc32(np.ascontiguousarray(data).tobytes())
            if crc != handle.crc32:
                raise IntegrityError(
                    f"{handle.describe()}: crc32 mismatch "
                    f"(got {crc:#010x}, handle says {handle.crc32:#010x})"
                )
            self._count("verified")
        return data

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "client": self.client_id,
                "counters": dict(self.counters),
                "handles": len(self._handles),
                "requests_minted": self._seq,
            }

    def __repr__(self) -> str:
        mode = "inproc" if self._broker is not None else f"rpc{self._broker_address}"
        return f"ServeClient({self.client_id!r}, {mode})"
