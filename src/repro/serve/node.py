"""A serving node: SimWorld + pipeline executor behind an RPC surface.

A :class:`ServeNode` owns one modeled world and can materialise any
product it advertises: a ``produce`` request runs the registered pipeline
producer (once -- concurrent requests coalesce), lands the result in a
shared-memory slab, and answers with an :class:`~repro.serve.handles.
ArrayHandle`; ``fetch`` requests then read slices straight out of the
slab.  Handles-not-bytes is the design center: producing is expensive and
cached, fetching is cheap and per-client.

Slab lifetime is leak-proof by construction: creation runs under
:func:`repro.parallel.slab_until_registered`, so a crash anywhere between
allocating the segment and registering it in the product store unlinks it
in the ``finally`` instead of stranding it in ``/dev/shm``.  The node's
own failure mode is the ``serve.node`` fault site: an injected NODE_CRASH
kills the process mid-request, exactly like a production OOM-kill.
"""

from __future__ import annotations

import threading
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..core import ImplementationType
from ..mpi.simworld import SimWorld
from ..obs import state as obs_state
from ..obs.events import ClockDomain, Event, EventType
from ..parallel.engine import CRASH_EXIT_CODE
from ..parallel.shm import SharedSlab, slab_until_registered
from ..resilience import state as res_state
from ..workflows.products import ProductSpec, get_product, product_names
from ..workflows.satellite import SIZES
from .coalesce import CoalesceTable
from .handles import ArrayHandle, ProductKey, SliceSpec
from .wire import RpcServer

__all__ = ["NodeLostError", "UnknownHandleError", "ServeNode", "NodeServer"]


class NodeLostError(RuntimeError):
    """This node is (simulating) death; callers should fail over."""

    wire_kind = "node_lost"


class UnknownHandleError(KeyError):
    """The handle does not live on this node (expired or failed over)."""

    wire_kind = "unknown_handle"

    def __str__(self) -> str:  # KeyError quotes its repr; keep it readable
        return self.args[0] if self.args else "unknown handle"


class BadRequestError(ValueError):
    """The request named an unknown product, size, or backend."""

    wire_kind = "bad_request"


@dataclass
class _StoredProduct:
    """One materialised product: its slab and the handle describing it."""

    handle: ArrayHandle
    slab: SharedSlab

    @property
    def array(self) -> np.ndarray:
        return self.slab.array("data")


class ServeNode:
    """One worker node of the serving plane.

    ``products`` restricts what this node advertises (default: the whole
    registry); ``world`` is the modeled rank layout its pipeline runs
    stand in for; ``max_cached_products`` bounds slab memory -- the
    oldest product is unlinked when the store overflows (clients holding
    its handle transparently re-resolve).  ``exit_on_crash`` picks the
    injected-NODE_CRASH behaviour: ``True`` (process mode) dies with
    ``os._exit``, ``False`` (in-process tests) raises
    :class:`NodeLostError` and refuses all further requests.

    ``elastic_workers > 0`` routes pipeline runs of products that declare
    an ``elastic_producer`` through the work-stealing
    :class:`~repro.parallel.elastic.ElasticPool` with that many workers --
    so node-level faults (NODE_CRASH) and worker-level faults
    (WORKER_CRASH / HEARTBEAT_LOSS / TASK_STALL) compose in one plan, and
    the served bytes still match the serial path exactly.
    """

    def __init__(
        self,
        node_id: str,
        products: Optional[List[str]] = None,
        world: Optional[SimWorld] = None,
        max_cached_products: int = 8,
        exit_on_crash: bool = False,
        elastic_workers: int = 0,
    ):
        if max_cached_products < 1:
            raise ValueError("a node must cache at least one product")
        if elastic_workers < 0:
            raise ValueError("elastic_workers must be >= 0 (0 = serial)")
        self.node_id = node_id
        names = products if products is not None else product_names()
        self.products: Dict[str, ProductSpec] = {n: get_product(n) for n in names}
        self.world = world if world is not None else SimWorld(n_nodes=1, procs_per_node=1)
        self.max_cached_products = max_cached_products
        self.exit_on_crash = exit_on_crash
        self.elastic_workers = elastic_workers
        self.coalesce = CoalesceTable(max_cached=max_cached_products)
        self.address: Optional[Tuple[str, int]] = None
        self._lock = threading.Lock()
        self._store: Dict[str, _StoredProduct] = {}
        self._store_order: List[str] = []  # handle ids, oldest first
        self._by_key: Dict[ProductKey, str] = {}
        self._seq = 0
        self._dead = False
        self.counters: Dict[str, int] = {}

    # -- small helpers ---------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + amount

    def _emit(self, etype: EventType, name: str, metric: str, **attrs: Any) -> None:
        tr = obs_state.active
        if tr is None:
            return
        tr.emit(
            Event(etype, name, ts=tr.now(), clock=ClockDomain.HOST, attrs=attrs)
        )
        tr.metrics.count(metric)

    def namespaces(self) -> List[str]:
        return sorted({spec.namespace for spec in self.products.values()})

    def _check_alive(self) -> None:
        if self._dead:
            raise NodeLostError(f"node {self.node_id} is down")

    def _poll_crash(self, op: str, detail: str) -> None:
        """The ``serve.node`` fault site: die here if the plan says so."""
        ctrl = res_state.active
        if ctrl is None:
            return
        spec = ctrl.check("serve.node", node=self.node_id, op=op, what=detail)
        if spec is None:
            return
        self._dead = True
        if self.exit_on_crash:
            import os

            os._exit(CRASH_EXIT_CODE)
        raise NodeLostError(
            f"node {self.node_id} crashed (injected) during {op} of {detail}"
        )

    # -- produce ---------------------------------------------------------------

    def _resolve_request(self, key: ProductKey):
        spec = self.products.get(key.product)
        if spec is None:
            raise BadRequestError(
                f"node {self.node_id} does not serve {key.product!r} "
                f"(serves: {', '.join(sorted(self.products))})"
            )
        if key.size not in SIZES:
            raise BadRequestError(
                f"unknown size {key.size!r}; known: {', '.join(sorted(SIZES))}"
            )
        try:
            impl = ImplementationType(key.backend)
        except ValueError:
            raise BadRequestError(
                f"unknown backend {key.backend!r}; known: "
                f"{', '.join(i.value for i in ImplementationType)}"
            ) from None
        return spec, SIZES[key.size], impl

    def produce(self, key: ProductKey, trace_id: Optional[str] = None) -> ArrayHandle:
        """Materialise ``key`` (or join/reuse a run) and hand back a handle."""
        self._check_alive()
        self._poll_crash("produce", key.describe())
        spec, size, impl = self._resolve_request(key)
        tr = obs_state.active

        elastic = self.elastic_workers > 0 and spec.elastic_producer is not None

        def compute() -> ArrayHandle:
            t0 = tr.now() if tr is not None else 0.0
            if elastic:
                # Per-observation tasks on the work-stealing pool: the
                # elastic producer's bitwise-parity contract means the
                # served bytes are indistinguishable from the serial path.
                array = spec.elastic_producer(
                    size, impl, key.realization, self.elastic_workers
                )
                self._count("elastic_produces")
            else:
                array = spec.producer(size, impl, key.realization)
            handle = self._register(key, spec, array, trace_id)
            if tr is not None:
                tr.emit(
                    Event(
                        EventType.SERVE_PRODUCE,
                        key.product,
                        ts=t0,
                        dur=tr.now() - t0,
                        clock=ClockDomain.HOST,
                        attrs={
                            "node": self.node_id,
                            "key": key.describe(),
                            "handle": handle.handle_id,
                            "nbytes": int(array.nbytes),
                            "elastic_workers": self.elastic_workers if elastic else 0,
                        },
                    )
                )
                tr.metrics.count("serve.produces")
            self._count("produces")
            return handle

        handle, led = self.coalesce.run(key, compute)
        if not led:
            self._count("coalesced")
            self._emit(
                EventType.SERVE_COALESCE,
                key.product,
                "serve.coalesced",
                node=self.node_id,
                key=key.describe(),
                handle=handle.handle_id,
            )
        return handle

    def _register(
        self,
        key: ProductKey,
        spec: ProductSpec,
        array: np.ndarray,
        trace_id: Optional[str],
    ) -> ArrayHandle:
        """Copy a produced array into a slab and enter it in the store.

        The slab guard is the leak fix in action: any failure before
        ``mark_registered`` (a crash injected mid-registration, an
        eviction error) unlinks the segment on the way out.
        """
        with slab_until_registered({"data": (array.shape, array.dtype)}) as slab:
            slab.array("data")[...] = array
            with self._lock:
                self._seq += 1
                handle_id = f"{self.node_id}-h{self._seq:04d}"
            handle = ArrayHandle(
                handle_id=handle_id,
                key=key,
                shape=tuple(int(s) for s in array.shape),
                dtype=np.dtype(array.dtype).str,
                node=self.node_id,
                address=self.address,
                crc32=zlib.crc32(np.ascontiguousarray(array).tobytes()),
                trace_id=trace_id,
            )
            evicted: Optional[_StoredProduct] = None
            with self._lock:
                self._store[handle_id] = _StoredProduct(handle=handle, slab=slab)
                self._store_order.append(handle_id)
                self._by_key[key] = handle_id
                if len(self._store_order) > self.max_cached_products:
                    old_id = self._store_order.pop(0)
                    evicted = self._store.pop(old_id, None)
                    if evicted is not None:
                        self._by_key.pop(evicted.handle.key, None)
            slab.mark_registered()
        if evicted is not None:
            self.coalesce.invalidate(evicted.handle.key)
            evicted.slab.close()
            evicted.slab.unlink()
            self._count("evicted_products")
        return handle

    # -- fetch -----------------------------------------------------------------

    def fetch(
        self,
        handle_id: str,
        window: Optional[SliceSpec] = None,
        trace_id: Optional[str] = None,
    ) -> np.ndarray:
        """A copy of one slice of a stored product."""
        self._check_alive()
        with self._lock:
            stored = self._store.get(handle_id)
        if stored is None:
            raise UnknownHandleError(
                f"node {self.node_id} has no handle {handle_id!r} "
                "(evicted, or produced on another node)"
            )
        window = window if window is not None else SliceSpec()
        out = np.array(stored.array[window.as_slices()], copy=True)
        self._count("slices")
        self._emit(
            EventType.SERVE_SLICE,
            stored.handle.key.product,
            "serve.slices",
            node=self.node_id,
            handle=handle_id,
            window=window.describe(),
            nbytes=int(out.nbytes),
        )
        return out

    # -- lifecycle -------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            counters = dict(self.counters)
            stored = len(self._store)
        return {
            "node": self.node_id,
            "namespaces": self.namespaces(),
            "products_stored": stored,
            "counters": counters,
            "coalesce": self.coalesce.stats(),
            "world": {
                "n_nodes": self.world.n_nodes,
                "procs_per_node": self.world.procs_per_node,
            },
        }

    def shutdown(self) -> None:
        """Unlink every stored slab; the node serves nothing afterwards."""
        with self._lock:
            stored = list(self._store.values())
            self._store.clear()
            self._store_order.clear()
            self._by_key.clear()
            self._dead = True
        for item in stored:
            item.slab.close()
            item.slab.unlink()

    def __repr__(self) -> str:
        return (
            f"ServeNode({self.node_id!r}, namespaces={self.namespaces()}, "
            f"stored={len(self._store)})"
        )


class NodeServer:
    """A :class:`ServeNode` behind an :class:`~repro.serve.wire.RpcServer`."""

    def __init__(self, node: ServeNode):
        self.node = node
        self._shutdown = threading.Event()
        self.server = RpcServer(self._handle)
        node.address = self.server.address

    @property
    def address(self) -> Tuple[str, int]:
        return self.server.address

    def start(self) -> "NodeServer":
        self.server.start()
        return self

    def _handle(self, request: Dict[str, Any]) -> Any:
        op = request.get("op")
        trace_id = request.get("trace_id")
        if op == "produce":
            return self.node.produce(request["key"], trace_id=trace_id)
        if op == "fetch":
            return self.node.fetch(
                request["handle_id"], request.get("window"), trace_id=trace_id
            )
        if op == "stats":
            return self.node.stats()
        if op == "ping":
            return {"node": self.node.node_id}
        if op == "shutdown":
            self._shutdown.set()
            return True
        raise BadRequestError(f"unknown op {op!r}")

    def wait_for_shutdown(self, timeout_s: Optional[float] = None) -> bool:
        return self._shutdown.wait(timeout_s)

    def stop(self) -> None:
        self.server.stop()
        self.node.shutdown()
