"""Product keys, array handles, and slice specs -- the wire vocabulary.

The serving plane never ships whole arrays around by default.  A client
asks the broker to *resolve* a :class:`ProductKey` and gets back an
:class:`ArrayHandle` -- a small description of a materialised array living
on some node -- then *fetches* :class:`SliceSpec` windows of it on demand.
Handles are what make multi-tenancy cheap: a thousand clients can hold
handles to the same cached map while only the slices they actually read
cross the wire.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = ["ProductKey", "SliceSpec", "ArrayHandle"]


@dataclass(frozen=True)
class ProductKey:
    """What a client is asking for: the coalescing unit.

    Two requests with equal keys are the *same* computation -- same
    product, same problem size, same backend, same realization -- so the
    plane runs the pipeline once and serves both.  Sky patches are
    deliberately **not** part of the key: overlapping patches of one
    product share the underlying run and differ only in the slices
    fetched afterwards.
    """

    product: str
    size: str
    backend: str = "numpy"
    realization: int = 0

    def __post_init__(self) -> None:
        if "/" not in self.product:
            raise ValueError(
                f"product {self.product!r} must be 'namespace/product'"
            )
        if self.realization < 0:
            raise ValueError("realization must be non-negative")

    @property
    def namespace(self) -> str:
        """The routing unit: nodes advertise namespaces, not products."""
        return self.product.split("/", 1)[0]

    def describe(self) -> str:
        return f"{self.product}@{self.size}/{self.backend}/r{self.realization}"


@dataclass(frozen=True)
class SliceSpec:
    """A rectangular window: one ``(start, stop)`` pair per leading axis.

    Trailing axes without a bound are taken whole, so ``((lo, hi),)`` on a
    ``(npix, 3)`` map is a band of pixel rows with all Stokes components.
    ``None`` bounds mean "from the edge", as in python slicing.
    """

    bounds: Tuple[Tuple[Optional[int], Optional[int]], ...] = ()

    def __post_init__(self) -> None:
        for lo, hi in self.bounds:
            if lo is not None and lo < 0:
                raise ValueError("slice starts must be non-negative")
            if lo is not None and hi is not None and hi < lo:
                raise ValueError(f"empty-or-negative slice ({lo}, {hi})")

    def as_slices(self) -> Tuple[slice, ...]:
        return tuple(slice(lo, hi) for lo, hi in self.bounds)

    def describe(self) -> str:
        if not self.bounds:
            return "[:]"
        parts = [
            f"{'' if lo is None else lo}:{'' if hi is None else hi}"
            for lo, hi in self.bounds
        ]
        return "[" + ", ".join(parts) + "]"

    @classmethod
    def rows(cls, lo: Optional[int], hi: Optional[int]) -> "SliceSpec":
        """The common case: a band of leading-axis rows (a sky patch)."""
        return cls(bounds=((lo, hi),))


@dataclass(frozen=True)
class ArrayHandle:
    """A resolved product: where the bytes live and how to check them.

    ``handle_id`` is unique per materialisation; ``node`` and ``address``
    locate the serving node (the data plane -- clients fetch slices there
    directly, bypassing the broker); ``crc32`` is the checksum of the full
    array so any client can verify a complete read.  A handle for a dead
    node fails fetches fast, and the client transparently re-resolves.
    """

    handle_id: str
    key: ProductKey
    shape: Tuple[int, ...]
    dtype: str
    node: str
    address: Optional[Tuple[str, int]] = None
    crc32: int = 0
    trace_id: Optional[str] = None
    attrs: Tuple[Tuple[str, str], ...] = field(default=())

    @property
    def n_elements(self) -> int:
        n = 1
        for s in self.shape:
            n *= int(s)
        return n

    def describe(self) -> str:
        where = self.node if self.address is None else f"{self.node}@{self.address}"
        return f"{self.key.describe()} -> {self.handle_id} on {where}"
